# Astra (Go reproduction) — common developer entry points.

GO ?= go

.PHONY: all build test test-short vet bench experiments experiments-quick cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -short -cover ./...

# Reduced per-table benchmarks (batch 16/32), with allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate every paper table/figure (takes tens of minutes).
experiments:
	$(GO) run ./cmd/astra-bench -experiment all

experiments-quick:
	$(GO) run ./cmd/astra-bench -experiment all -quick

clean:
	$(GO) clean ./...
