# Astra (Go reproduction) — common developer entry points.

GO ?= go

.PHONY: all build test test-short vet verify lint escape-check escape-baseline race bench bench-json experiments experiments-quick cover cover-check analyze whatif serve serve-smoke costmodel clean

all: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + static checks; fails listing the unformatted files, if any.
# astra-lint is the in-tree static-analysis suite (internal/lint, see
# docs/LINT.md): the determinism rule family, lock discipline over the
# concurrent packages, and the //astra:hotpath allocation rule — all rules,
# every internal/ and cmd/ package, one worker per CPU (output is
# byte-identical to a serial run).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/astra-lint -parallel 0

# Escape-analysis regression gate: compile with -gcflags=-m and diff the
# heap-allocation notes inside //astra:hotpath functions against the
# committed baseline. New escapes fail; after a deliberate change,
# regenerate with `make escape-baseline`.
escape-check:
	$(GO) run ./cmd/astra-escape -baseline .github/escape-baseline.txt

escape-baseline:
	$(GO) run ./cmd/astra-escape -baseline .github/escape-baseline.txt -update

# Plan verifier sweep: prove every model x preset x worker-count
# combination free of races, deadlocks, aliasing and illegal fusion.
verify:
	$(GO) run ./cmd/astra-vet

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass: the telemetry layer (internal/obs) is shared across
# goroutines when dispatch goes concurrent; keep it provably race-free.
# -short skips the multi-minute paper-table regenerations, which exceed the
# test timeout under the detector's ~20x slowdown; every package still runs.
race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -short -cover ./...

# Coverage gate: total -short statement coverage must stay at or above the
# checked-in baseline (.github/coverage-baseline.txt). Raise the baseline
# when a PR durably improves coverage; never lower it to make CI pass.
COVER_OUT ?= coverage.out
cover-check:
	$(GO) test -short -coverprofile=$(COVER_OUT) ./...
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ {sub("%","",$$3); print $$3}'); \
	base=$$(cat .github/coverage-baseline.txt); \
	echo "total coverage: $$total% (baseline $$base%)"; \
	ok=$$(awk -v t="$$total" -v b="$$base" 'BEGIN { print (t+0 >= b+0) ? "yes" : "no" }'); \
	if [ "$$ok" != "yes" ]; then echo "FAIL: coverage $$total% dropped below baseline $$base%"; exit 1; fi

# Trace-analytics smoke: run a tiny instrumented session, audit the
# analyzer's exactness invariants on its event log, and prove the output
# byte-identical at -parallel 1 vs 4 (CI's analyze-smoke job runs this).
ANALYZE_EVENTS ?= /tmp/astra-analyze-smoke.jsonl
analyze:
	$(GO) run ./cmd/astra-run -model sublstm -level F -steps 2 -events-out $(ANALYZE_EVENTS) > /dev/null
	$(GO) run ./cmd/astra-analyze -events $(ANALYZE_EVENTS) -check
	$(GO) run ./cmd/astra-analyze -events $(ANALYZE_EVENTS) -report all -parallel 1 > $(ANALYZE_EVENTS).p1
	$(GO) run ./cmd/astra-analyze -events $(ANALYZE_EVENTS) -report all -parallel 4 > $(ANALYZE_EVENTS).p4
	cmp $(ANALYZE_EVENTS).p1 $(ANALYZE_EVENTS).p4
	@echo "analyze: reconciliation exact, output byte-identical at -parallel 1 vs 4"

# What-if smoke: record a two-worker run, replay the fabric × ring-size
# scenario matrix, validate every prediction against ground-truth
# re-simulation within 5%, and prove the matrix output byte-identical at
# -parallel 1 vs 4 (CI's whatif-smoke job runs this).
WHATIF_EVENTS ?= /tmp/astra-whatif-smoke.jsonl
whatif:
	$(GO) run ./cmd/astra-run -model sublstm -level FK -steps 2 -workers 2 -fabric pcie3 -events-out $(WHATIF_EVENTS) > /dev/null
	$(GO) run ./cmd/astra-whatif -events $(WHATIF_EVENTS) -matrix -fabrics pcie3,nvlink1 -workers-list 1,2,4,8 -check -tolerance 5
	$(GO) run ./cmd/astra-whatif -events $(WHATIF_EVENTS) -matrix -fabrics pcie3,nvlink1 -workers-list 1,2,4,8 -json -parallel 1 > $(WHATIF_EVENTS).p1
	$(GO) run ./cmd/astra-whatif -events $(WHATIF_EVENTS) -matrix -fabrics pcie3,nvlink1 -workers-list 1,2,4,8 -json -parallel 4 > $(WHATIF_EVENTS).p4
	cmp $(WHATIF_EVENTS).p1 $(WHATIF_EVENTS).p4
	@echo "whatif: predictions within tolerance, output byte-identical at -parallel 1 vs 4"

# Exploration service: run the multi-tenant astra-serve daemon locally
# (HTTP/JSON API on 127.0.0.1:7411; see docs/SERVE.md).
serve:
	$(GO) run ./cmd/astra-serve

# Service smoke (CI's serve-smoke job): drive the standard tenant mix
# through the real HTTP stack twice — a cold pass, then a fully-warm repeat
# that must score a 100% hit rate with zero wired-time drift — and finish
# with a graceful drain. Then the ext-serve harness run: 1024 sessions
# across 32 tenants against one shared fleet store, every result checked
# against its solo baseline.
serve-smoke:
	$(GO) run ./cmd/astra-serve -smoke -smoke-tenants 8 -smoke-jobs 3
	$(GO) run ./cmd/astra-bench -experiment ext-serve -parallel -1

# Cost-model gate (CI's costmodel-smoke job; see docs/COSTMODEL.md): the
# ext-costmodel harness trains the model from a donor session and proves the
# prior-seeded exploration converges in >= 25% fewer trials on at least 3 of
# 4 model/fabric cells, never prunes a cold-run winner, and stays within
# 0.1% of both the cold run and the exhaustive comm sweep — then proves the
# whole table byte-identical at -parallel 1 vs 4.
COSTMODEL_OUT ?= /tmp/astra-costmodel
costmodel:
	$(GO) run ./cmd/astra-bench -experiment ext-costmodel -parallel 1 > $(COSTMODEL_OUT).p1
	$(GO) run ./cmd/astra-bench -experiment ext-costmodel -parallel 4 > $(COSTMODEL_OUT).p4
	cmp $(COSTMODEL_OUT).p1 $(COSTMODEL_OUT).p4
	@echo "costmodel: acceptance gates green, output byte-identical at -parallel 1 vs 4"

# Reduced per-table benchmarks (batch 16/32), with allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Machine-readable benchmark trajectory: the fast experiment subset, quick
# sweeps, one worker per CPU, timings+allocations as JSON. CI's bench-smoke
# job runs this against the committed BENCH_PR5.json (see docs/PERFORMANCE.md).
BENCH_SMOKE_IDS ?= table1,sec32,fig2,table3,table9,inventory,ablation-profiling
BENCH_JSON_OUT ?= bench.json
bench-json:
	$(GO) run ./cmd/astra-bench -experiment $(BENCH_SMOKE_IDS) -quick -parallel -1 -json-out $(BENCH_JSON_OUT)

# Regenerate every paper table/figure (takes tens of minutes).
experiments:
	$(GO) run ./cmd/astra-bench -experiment all

experiments-quick:
	$(GO) run ./cmd/astra-bench -experiment all -quick -parallel -1

clean:
	$(GO) clean ./...
