package astra

// Allocation budgets for the simulator/profile hot path. The pooled event
// machinery (gpusim free-lists, head-index stream queues, reusable dispatch
// state) and the sharded profile index are supposed to keep the inner loop
// almost allocation-free at steady state; these tests pin that property so
// a regression fails `go test` rather than quietly showing up as GC time.
// Budgets carry headroom over the measured steady state (recorded in
// docs/PERFORMANCE.md) — they catch structural regressions, not noise.

import (
	"testing"

	"astra/internal/costmodel"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/kernels"
	"astra/internal/models"
	"astra/internal/profile"
	"astra/internal/wire"
)

// TestSimulatorBatchAllocBudget drives a 200-kernel two-stream batch with
// cross-stream events through Reset/Launch/Synchronize. After the pools
// warm up, a whole batch must stay within a handful of allocations
// (measured steady state: ~0 per batch).
func TestSimulatorBatchAllocBudget(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.P100())
	dev.EnsureStreams(2)
	spec := kernels.GEMM(kernels.CuBLAS, kernels.GEMMShape{M: 64, K: 512, N: 512})
	batch := func() {
		dev.Reset()
		for i := 0; i < 200; i++ {
			s := i % 2
			dev.Launch(s, spec)
			if i%16 == 15 {
				ev := dev.RecordEvent(s)
				dev.WaitEvent(1-s, ev)
			}
		}
		dev.Synchronize()
	}
	batch() // size the pools
	batch()
	avg := testing.AllocsPerRun(20, batch)
	const budget = 32.0 // per 200-kernel batch
	if avg > budget {
		t.Errorf("simulator batch allocates %.1f/run, budget %.0f", avg, budget)
	}
	reused, allocated := dev.PoolCounters()
	if reused == 0 || reused < allocated {
		t.Errorf("pools not reusing: reused=%d allocated=%d", reused, allocated)
	}
}

// TestProfileRecordAllocBudget pins the index write path: recording into
// existing keys must not allocate (measured steady state: 0).
func TestProfileRecordAllocBudget(t *testing.T) {
	ix := profile.NewIndex()
	keys := []profile.Key{
		profile.K("ctx", "v0", "a"), profile.K("ctx", "v0", "b"),
		profile.K("ctx", "v1", "a"), profile.K("ctx", "v1", "b"),
	}
	for _, k := range keys {
		ix.Record(k, 100)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i, k := range keys {
			ix.Record(k, float64(100+i))
		}
	})
	if avg > 1 {
		t.Errorf("Record allocates %.1f per 4-key round, budget 1", avg)
	}
}

// TestWiredStepAllocBudget pins the full wired mini-batch (dispatch + DES
// simulation) for the paper-scale subLSTM. Measured steady state is ~2.3k
// allocations per step (down from ~13.3k before pooling); the budget fails
// the test if the hot path regresses toward the old profile.
func TestWiredStepAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("explores a paper-scale model")
	}
	build, _ := models.Get("sublstm")
	m := build(models.DefaultConfig("sublstm", 16))
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetFK),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	s.Explore()
	s.Step()
	avg := testing.AllocsPerRun(10, func() { s.Step() })
	const budget = 4000.0
	if avg > budget {
		t.Errorf("wired step allocates %.0f/run, budget %.0f", avg, budget)
	}
}

// TestCostModelPredictAllocBudget pins the cost-model prediction hot path:
// once trained, Predict hashes feature tuples straight into the bucket
// table and must not allocate at all (measured steady state: 0). The
// explorer consults it once per (variable, context), but the serve layer's
// shared models field many concurrent sessions — a per-call allocation
// here becomes fleet-wide GC pressure.
func TestCostModelPredictAllocBudget(t *testing.T) {
	m := costmodel.NewModel()
	meta := costmodel.Meta{Model: "sublstm", Scale: "default", Batch: 16, Workers: 4, Fabric: "pcie3"}
	labels := []string{"1", "2", "4", "8"}
	for _, l := range labels {
		m.Observe(meta, "g0.chunk", l, 100)
	}
	cold := costmodel.Meta{Model: "unseen", Batch: 64}
	avg := testing.AllocsPerRun(100, func() {
		for _, l := range labels {
			m.Predict(meta, "g0.chunk", l)  // L0 hit
			m.Predict(cold, "g0.chunk", l)  // L2 backoff
			m.Predict(cold, "mystery.x", l) // full miss
		}
	})
	if avg > 0 {
		t.Errorf("Predict allocates %.1f per 12-call round, budget 0", avg)
	}
}
