package main

import (
	"bytes"
	"strings"
	"testing"
)

func runTrace(args ...string) (string, string, int) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestUnknownShowListsOptionsAndFails(t *testing.T) {
	stdout, stderr, code := runTrace("-model", "scrnn", "-tiny", "-show", "bogus")
	if code == 0 {
		t.Fatal("unknown -show exited zero")
	}
	if stdout != "" {
		t.Fatalf("unknown -show produced output:\n%s", stdout)
	}
	for _, name := range showNames {
		if !strings.Contains(stderr, name) {
			t.Fatalf("error message does not list %q: %s", name, stderr)
		}
	}
}

func TestUnknownModelFails(t *testing.T) {
	_, stderr, code := runTrace("-model", "nosuchmodel")
	if code == 0 {
		t.Fatal("unknown model exited zero")
	}
	if !strings.Contains(stderr, "nosuchmodel") {
		t.Fatalf("error does not name the model: %s", stderr)
	}
}

func TestValidShows(t *testing.T) {
	// Every documented -show value must succeed on a tiny model. (The
	// convergence view runs a full exploration; tiny keeps it fast.)
	for _, name := range showNames {
		stdout, stderr, code := runTrace("-model", "sublstm", "-tiny", "-show", name)
		if code != 0 {
			t.Fatalf("-show %s: exit %d, stderr: %s", name, code, stderr)
		}
		if stdout == "" {
			t.Fatalf("-show %s produced no output", name)
		}
	}
}
