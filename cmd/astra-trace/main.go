// Command astra-trace dumps a model's training graph in the paper's
// textual trace format, or the enumerator's view of it: fusion groups,
// allocation strategies, super-epoch/epoch structure, or the exploration
// update tree.
//
// Usage:
//
//	astra-trace -model scrnn                  # the %N = op(...) trace
//	astra-trace -model scrnn -show groups
//	astra-trace -model stackedlstm -show tree
//	astra-trace -model gnmt -show epochs
//	astra-trace -model sublstm -show allocs
//	astra-trace -model sublstm -show convergence   # runs exploration
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"astra"
	"astra/internal/enumerate"
)

func main() {
	model := flag.String("model", "scrnn", "model: "+strings.Join(astra.ModelNames(), ", "))
	batch := flag.Int("batch", 16, "mini-batch size")
	tiny := flag.Bool("tiny", false, "use the unit-test-scale configuration")
	show := flag.String("show", "trace", "trace, groups, allocs, epochs, tree or convergence")
	flag.Parse()

	m, err := astra.BuildModel(*model, astra.ModelConfig{Batch: *batch, Tiny: *tiny})
	if err != nil {
		fmt.Fprintln(os.Stderr, "astra-trace:", err)
		os.Exit(1)
	}
	if *show == "trace" {
		fmt.Print(m.Trace())
		return
	}
	if *show == "convergence" {
		showConvergence(m)
		return
	}
	p := enumerate.Enumerate(m.Internal().G, enumerate.PresetOptions(enumerate.PresetAll))
	switch *show {
	case "groups":
		for _, g := range p.Groups {
			req := g.ReqID
			if req == "" {
				req = "(none)"
			}
			fmt.Printf("%-8s %-12s members=%-3d shared=%v contiguity-request=%s\n",
				g.ID, g.Kind, len(g.GEMMs), g.Shared, req)
		}
		st := p.Stats()
		fmt.Printf("\n%d groups covering %d of %d GEMMs\n", st.Groups, st.GroupedGEMMs, m.GEMMs())
	case "allocs":
		for _, a := range p.Allocs {
			fmt.Printf("%s: satisfies {%s}, arena %d bytes\n",
				a.Name, strings.Join(a.SatisfiedIDs(), ","), a.ArenaSize())
		}
	case "epochs":
		for _, se := range p.Supers {
			fmt.Printf("super-epoch %d: %d epochs, %d Mflop\n",
				se.Index, len(se.Epochs), se.Flops/1e6)
			for _, ep := range se.Epochs[:min(3, len(se.Epochs))] {
				fmt.Printf("  epoch %d: %d units in %d equivalence classes\n",
					ep.Index, len(ep.Units), len(ep.Classes))
			}
			if len(se.Epochs) > 3 {
				fmt.Printf("  ... %d more epochs\n", len(se.Epochs)-3)
			}
		}
	case "tree":
		if p.Tree == nil {
			fmt.Println("(no adaptive variables)")
			return
		}
		fmt.Print(p.Tree.Render())
	default:
		fmt.Fprintf(os.Stderr, "astra-trace: unknown -show %q\n", *show)
		os.Exit(1)
	}
}

// showConvergence runs an instrumented exploration and prints the
// exploration-convergence timeline: the trial at which each adaptive
// variable froze at its measured best (the §6.3/Table 7 view).
func showConvergence(m *astra.Model) {
	sess := astra.Compile(m, astra.Options{})
	sess.Instrument()
	stats := sess.Explore()
	ws := sess.Internal()
	if ws.Exp == nil {
		fmt.Println("(no adaptive variables)")
		return
	}
	fmt.Printf("exploration converged after %d trials (%.0f us simulated)\n\n", stats.Configs, ws.ClockUs)
	fmt.Printf("%7s  %-40s %s\n", "trial", "variable", "wired choice")
	byID := map[string]string{}
	for _, v := range ws.Exp.Vars() {
		byID[v.ID] = v.CurrentLabel()
	}
	for _, p := range ws.Exp.ConvergenceTimeline() {
		fmt.Printf("%7d  %-40s %s\n", p.Trial, p.VarID, byID[p.VarID])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
