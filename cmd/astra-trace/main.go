// Command astra-trace dumps a model's training graph in the paper's
// textual trace format, or the enumerator's view of it: fusion groups,
// allocation strategies, super-epoch/epoch structure, or the exploration
// update tree.
//
// Usage:
//
//	astra-trace -model scrnn                  # the %N = op(...) trace
//	astra-trace -model scrnn -show groups
//	astra-trace -model stackedlstm -show tree
//	astra-trace -model gnmt -show epochs
//	astra-trace -model sublstm -show allocs
//	astra-trace -model sublstm -show convergence   # runs exploration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"astra"
	"astra/internal/enumerate"
)

// showNames lists the valid -show values, in the order they are documented.
var showNames = []string{"trace", "groups", "allocs", "epochs", "tree", "convergence"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "scrnn", "model: "+strings.Join(astra.ModelNames(), ", "))
	batch := fs.Int("batch", 16, "mini-batch size")
	tiny := fs.Bool("tiny", false, "use the unit-test-scale configuration")
	show := fs.String("show", "trace", strings.Join(showNames, ", "))
	if err := fs.Parse(args); err != nil {
		return 2
	}

	valid := false
	for _, name := range showNames {
		if *show == name {
			valid = true
			break
		}
	}
	if !valid {
		fmt.Fprintf(stderr, "astra-trace: unknown -show %q (valid: %s)\n",
			*show, strings.Join(showNames, ", "))
		return 2
	}

	m, err := astra.BuildModel(*model, astra.ModelConfig{Batch: *batch, Tiny: *tiny})
	if err != nil {
		fmt.Fprintln(stderr, "astra-trace:", err)
		return 1
	}
	switch *show {
	case "trace":
		fmt.Fprint(stdout, m.Trace())
		return 0
	case "convergence":
		showConvergence(stdout, m)
		return 0
	}
	p := enumerate.Enumerate(m.Internal().G, enumerate.PresetOptions(enumerate.PresetAll))
	switch *show {
	case "groups":
		for _, g := range p.Groups {
			req := g.ReqID
			if req == "" {
				req = "(none)"
			}
			fmt.Fprintf(stdout, "%-8s %-12s members=%-3d shared=%v contiguity-request=%s\n",
				g.ID, g.Kind, len(g.GEMMs), g.Shared, req)
		}
		st := p.Stats()
		fmt.Fprintf(stdout, "\n%d groups covering %d of %d GEMMs\n", st.Groups, st.GroupedGEMMs, m.GEMMs())
	case "allocs":
		for _, a := range p.Allocs {
			fmt.Fprintf(stdout, "%s: satisfies {%s}, arena %d bytes\n",
				a.Name, strings.Join(a.SatisfiedIDs(), ","), a.ArenaSize())
		}
	case "epochs":
		for _, se := range p.Supers {
			fmt.Fprintf(stdout, "super-epoch %d: %d epochs, %d Mflop\n",
				se.Index, len(se.Epochs), se.Flops/1e6)
			for _, ep := range se.Epochs[:min(3, len(se.Epochs))] {
				fmt.Fprintf(stdout, "  epoch %d: %d units in %d equivalence classes\n",
					ep.Index, len(ep.Units), len(ep.Classes))
			}
			if len(se.Epochs) > 3 {
				fmt.Fprintf(stdout, "  ... %d more epochs\n", len(se.Epochs)-3)
			}
		}
	case "tree":
		if p.Tree == nil {
			fmt.Fprintln(stdout, "(no adaptive variables)")
			return 0
		}
		fmt.Fprint(stdout, p.Tree.Render())
	}
	return 0
}

// showConvergence runs an instrumented exploration and prints the
// exploration-convergence timeline: the trial at which each adaptive
// variable froze at its measured best (the §6.3/Table 7 view).
func showConvergence(stdout io.Writer, m *astra.Model) {
	sess := astra.Compile(m, astra.Options{})
	sess.Instrument()
	stats := sess.Explore()
	ws := sess.Internal()
	if ws.Exp == nil {
		fmt.Fprintln(stdout, "(no adaptive variables)")
		return
	}
	fmt.Fprintf(stdout, "exploration converged after %d trials (%.0f us simulated)\n\n", stats.Configs, ws.ClockUs)
	fmt.Fprintf(stdout, "%7s  %-40s %s\n", "trial", "variable", "wired choice")
	byID := map[string]string{}
	for _, v := range ws.Exp.Vars() {
		byID[v.ID] = v.CurrentLabel()
	}
	for _, p := range ws.Exp.ConvergenceTimeline() {
		fmt.Fprintf(stdout, "%7d  %-40s %s\n", p.Trial, p.VarID, byID[p.VarID])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
