package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"astra/internal/serve"
)

// syncBuffer lets the daemon goroutine write output while the test reads
// it looking for the listen address.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunSmokeMode(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-smoke", "-smoke-tenants", "3", "-smoke-jobs", "2"},
		context.Background(), &out, &errs)
	if code != 0 {
		t.Fatalf("smoke exit %d\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
	for _, want := range []string{"pass 1:", "pass 2:", "smoke OK", "clean drain"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlagsAndFiles(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-no-such-flag"}, context.Background(), &out, &errs); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	errs.Reset()
	if code := run([]string{"-profile-in", "/no/such/file.json"}, context.Background(), &out, &errs); code != 1 {
		t.Fatalf("missing profile-in exit %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "astra-serve:") {
		t.Fatalf("missing profile-in error not reported: %q", errs.String())
	}
	// A corrupt snapshot is refused, not half-loaded.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	errs.Reset()
	if code := run([]string{"-profile-in", bad}, context.Background(), &out, &errs); code != 1 {
		t.Fatalf("corrupt profile-in exit %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "seeding fleet store") {
		t.Fatalf("corrupt profile-in error not reported: %q", errs.String())
	}
}

// TestDaemonLifecycle boots the real daemon on an ephemeral port, submits a
// job over HTTP, shuts it down via context cancellation (the signal path),
// and checks the store snapshot written on exit seeds a fresh server.
func TestDaemonLifecycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fleet.json")
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	var errs bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-profile-out", snap}, ctx, out, &errs)
	}()

	// The daemon prints its bound address; wait for it.
	addrRe := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	var base string
	for i := 0; i < 1e6 && base == ""; i++ {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		}
	}
	if base == "" {
		t.Fatalf("daemon never reported its address:\n%s", out.String())
	}

	cl := &serve.Client{BaseURL: base, Stream: true}
	res, err := cl.Submit(context.Background(), serve.Job{Tenant: "ci", Model: "scrnn", Level: "F"}, nil)
	if err != nil {
		t.Fatalf("submit to daemon: %v", err)
	}
	if res.WiredUs <= 0 || res.Trials == 0 {
		t.Fatalf("daemon result implausible: %+v", res)
	}

	cancel() // SIGINT equivalent
	if code := <-done; code != 0 {
		t.Fatalf("daemon exit %d\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
	for _, want := range []string{"draining", "saved to", "clean shutdown"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("shutdown output missing %q:\n%s", want, out.String())
		}
	}

	// The exit snapshot must seed warm starts in a fresh server.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	defer f.Close()
	s2 := serve.NewServer(serve.Config{})
	if err := s2.Fleet().Load(f); err != nil {
		t.Fatalf("snapshot unloadable: %v", err)
	}
	res2, err := s2.Submit(context.Background(), serve.Job{Model: "scrnn", Level: "F"}, nil)
	if err != nil {
		t.Fatalf("seeded submit: %v", err)
	}
	if !res2.WarmStart || res2.Trials != 0 || res2.WiredUs != res.WiredUs {
		t.Fatalf("snapshot did not transfer warmth: %+v vs wired %v", res2, res.WiredUs)
	}
}
