// Command astra-serve runs the Astra exploration service: an HTTP/JSON
// daemon that accepts wiring jobs from many tenants, explores each on the
// simulated substrate with the wire.Session machinery, and streams back
// convergence events and the wired schedule. All sessions share one fleet
// profile store, so a shape any tenant has explored warm-starts every
// later submission of it — from any tenant — with an identical result.
//
// Usage:
//
//	astra-serve -addr 127.0.0.1:7411
//	astra-serve -inflight 8 -queue 128 -max-store-keys 262144
//	astra-serve -profile-in fleet.json -profile-out fleet.json
//	astra-serve -smoke            # self-contained load test, then exit
//
// API (see docs/SERVE.md):
//
//	POST /v1/jobs     {"tenant":"alice","model":"sublstm","level":"FK"}
//	                  → NDJSON event stream (?stream=0 for one JSON result)
//	GET  /v1/stats    server stats        GET /v1/profile   store snapshot
//	GET  /metrics     Prometheus text     POST /v1/profile  snapshot import
//	GET  /healthz     liveness (503 while draining)
//
// SIGINT/SIGTERM triggers a graceful drain: new jobs are refused, queued
// jobs bounce, in-flight sessions finish, then the store is snapshotted to
// -profile-out if set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"astra/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(os.Args[1:], ctx, os.Stdout, os.Stderr))
}

// run is main minus the process concerns: ctx cancellation plays the role
// of SIGINT/SIGTERM, and the exit status is returned instead of exited.
func run(args []string, ctx context.Context, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	inflight := fs.Int("inflight", 4, "max concurrently exploring sessions")
	queue := fs.Int("queue", 64, "max queued jobs waiting for a session slot (negative: no queue)")
	maxKeys := fs.Int("max-store-keys", 1<<18, "fleet profile store key ceiling (LRU signature eviction above it)")
	profileIn := fs.String("profile-in", "", "seed the fleet store from this snapshot at startup")
	profileOut := fs.String("profile-out", "", "write the fleet store snapshot here on shutdown")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight sessions on shutdown")
	smoke := fs.Bool("smoke", false, "run the built-in load smoke against an ephemeral instance and exit")
	smokeTenants := fs.Int("smoke-tenants", 8, "smoke: concurrent tenants")
	smokeJobs := fs.Int("smoke-jobs", 3, "smoke: jobs per tenant")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	s := serve.NewServer(serve.Config{
		MaxInFlight:  *inflight,
		MaxQueue:     *queue,
		MaxStoreKeys: *maxKeys,
	})
	if *profileIn != "" {
		f, err := os.Open(*profileIn)
		if err != nil {
			return fail(stderr, err)
		}
		err = s.Fleet().Load(f)
		f.Close()
		if err != nil {
			return fail(stderr, fmt.Errorf("seeding fleet store: %w", err))
		}
		fmt.Fprintf(stdout, "astra-serve: seeded fleet store with %d measurements from %s\n", s.Fleet().Len(), *profileIn)
	}

	if *smoke {
		if err := runSmoke(s, *smokeTenants, *smokeJobs, *drainTimeout, stdout); err != nil {
			return fail(stderr, err)
		}
		return 0
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(stdout, "astra-serve: listening on http://%s (inflight %d, queue %d, store ceiling %d keys)\n",
		ln.Addr(), *inflight, *queue, *maxKeys)

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case err := <-done:
		return fail(stderr, err)
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "astra-serve: draining (in-flight sessions finish, queued jobs bounce)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "astra-serve: drain incomplete: %v\n", err)
	}
	_ = httpSrv.Shutdown(dctx)
	if *profileOut != "" {
		if err := saveSnapshot(s, *profileOut); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "astra-serve: fleet store (%d measurements) saved to %s\n", s.Fleet().Len(), *profileOut)
	}
	st := s.StatsSnapshot()
	fmt.Fprintf(stdout, "astra-serve: served %d jobs (%d warm hits, %d cold), %d signatures, clean shutdown\n",
		int(st.Completed), int(st.WarmHits), int(st.WarmMisses), len(st.Signatures))
	return 0
}

func saveSnapshot(s *serve.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Fleet().Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSmoke spins the server on an ephemeral port, drives the standard load
// mix through the real HTTP stack twice (cold pass, then a fully-warm
// repeat), checks the serving guarantees and drains. An error means a
// violated guarantee — this is the CI gate.
func runSmoke(s *serve.Server, tenants, jobs int, drainTimeout time.Duration, stdout io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "astra-serve: smoke on %s — %d tenants x %d jobs, two passes\n", base, tenants, jobs)

	cl := &serve.Client{BaseURL: base, Stream: true}
	cfg := serve.LoadConfig{Tenants: tenants, JobsPerTenant: jobs}
	var total, warm int
	for pass := 1; pass <= 2; pass++ {
		rep, err := serve.RunLoad(context.Background(), cl, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  pass %d: %d/%d completed, %d warm hits (rate %.2f), %d trials, max warm delta %.4f%%\n",
			pass, rep.Completed, rep.Submitted, rep.WarmHits, rep.HitRate, rep.Trials, rep.MaxWarmDeltaPct)
		if rep.Completed != rep.Submitted {
			return fmt.Errorf("smoke pass %d: %d of %d jobs did not complete (%d queue-full, %d errors: %s)",
				pass, rep.Submitted-rep.Completed, rep.Submitted, rep.RejectedQueueFull, rep.Errors, rep.FirstError)
		}
		if rep.GateViolations > 0 || rep.MaxWarmDeltaPct > 0.1 {
			return fmt.Errorf("smoke pass %d: warm results drifted (max %.4f%%, %d gate violations)",
				pass, rep.MaxWarmDeltaPct, rep.GateViolations)
		}
		if pass == 2 && rep.HitRate != 1 {
			return fmt.Errorf("smoke pass 2: hit rate %.2f, want 1.0 (fully warm repeat)", rep.HitRate)
		}
		total += rep.Completed
		warm += rep.WarmHits
	}
	if warm == 0 {
		return errors.New("smoke: no warm hits across both passes")
	}

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		return fmt.Errorf("smoke: drain failed: %w", err)
	}
	if _, err := cl.Submit(context.Background(), serve.Job{Model: "sublstm"}, nil); !errors.Is(err, serve.ErrDraining) {
		return fmt.Errorf("smoke: post-drain submit error = %v, want ErrDraining", err)
	}
	_ = httpSrv.Shutdown(dctx)
	fmt.Fprintf(stdout, "astra-serve: smoke OK — %d jobs, %d warm hits (rate %.2f), clean drain\n",
		total, warm, float64(warm)/float64(total))
	return nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "astra-serve: %v\n", err)
	return 1
}
