package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/wire"
)

// genEvents records a small instrumented session (explore + two wired
// batches) and writes its JSONL event log to dir.
func genEvents(t *testing.T, dir string, workers int, fabric string) string {
	t.Helper()
	build, ok := models.Get("sublstm")
	if !ok {
		t.Fatal("model sublstm")
	}
	opts := enumerate.PresetOptions(enumerate.PresetFK)
	var comm wire.CommConfig
	if workers >= 2 {
		ic, ok := distsim.FabricByName(fabric)
		if !ok {
			t.Fatalf("fabric %q", fabric)
		}
		comm = wire.CommConfig{Workers: workers, BytesPerUs: ic.BytesPerUs, LatencyUs: ic.LatencyUs, Fabric: ic.Name}
		opts.CommAdapt = true
		opts.Workers = workers
	}
	s := wire.NewSession(build(models.TinyConfig("sublstm", 4)), wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: opts,
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		Comm:    comm,
	})
	tel := obs.NewTelemetry()
	var sink bytes.Buffer
	tel.SetEventSink(&sink)
	s.Instrument(tel)
	s.Explore()
	s.Step()
	s.Step()
	path := filepath.Join(dir, "run.jsonl")
	if err := os.WriteFile(path, sink.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// TestFlagValidation: malformed perturbation specs and misuse must error
// with the valid choices named, never silently no-op.
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, 1, "")
	cases := []struct {
		args     []string
		code     int
		inStderr string
	}{
		{[]string{}, 2, "no event log"},
		{[]string{"-events", events, "stray.jsonl"}, 2, "unexpected arguments"},
		{[]string{"-events", events, "-speedup", "class=gemm"}, 2, "both class= and factor= are required"},
		{[]string{"-events", events, "-speedup", "class=bogus,factor=2"}, 2, "unknown kernel class"},
		{[]string{"-events", events, "-speedup", "class=gemm,factor=2,turbo=yes"}, 2, "unknown key"},
		{[]string{"-events", events, "-speedup", "class=gemm,factor=0"}, 2, "must be positive"},
		{[]string{"-events", events, "-speedup", "class=gemm,factor=nope"}, 2, "not a number"},
		{[]string{"-events", events, "-matrix", "-speedup", "class=gemm,factor=2"}, 2, "-matrix builds its own scenario grid"},
		{[]string{"-events", events, "-matrix", "-workers-list", "1,zero"}, 2, "bad -workers-list entry"},
		{[]string{"-events", events, "-matrix", "-workers-list", "0"}, 2, "bad -workers-list entry"},
		{[]string{"-events", events, "-matrix", "-fabrics", ","}, 2, "at least one fabric"},
		{[]string{"-events", events, "-fabric", "infiniband"}, 1, "unknown fabric"},
		{[]string{"-events", events, "-workers", "4"}, 1, "single-GPU"},
		{[]string{"-events", filepath.Join(dir, "missing.jsonl")}, 1, "missing.jsonl"},
	}
	for _, tc := range cases {
		_, stderr, code := runCLI(t, tc.args...)
		if code != tc.code {
			t.Errorf("%v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr)
		}
		if !strings.Contains(stderr, tc.inStderr) {
			t.Errorf("%v: stderr %q missing %q", tc.args, stderr, tc.inStderr)
		}
	}
}

// TestIdentityCLI: the no-perturbation invocation reports a 1.000x
// speedup with predicted == recorded.
func TestIdentityCLI(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, 1, "")
	stdout, stderr, code := runCLI(t, "-events", events)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "scenario: identity") || !strings.Contains(stdout, "(1.000x)") {
		t.Fatalf("identity output:\n%s", stdout)
	}
}

// TestSpeedupCLI: a GEMM speedup on a GEMM-heavy model predicts a win and
// reports the blame table.
func TestSpeedupCLI(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, 1, "")
	stdout, stderr, code := runCLI(t, "-events", events, "-speedup", "class=gemm,factor=2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "scenario: gemm x2") || !strings.Contains(stdout, "critical-path blame") {
		t.Fatalf("speedup output:\n%s", stdout)
	}
}

// TestMatrixParallelByteIdentical: matrix mode is deterministic across
// -parallel, and JSON mode emits every scenario.
func TestMatrixParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, 2, "pcie3")
	args := []string{"-events", events, "-matrix", "-fabrics", "pcie3,nvlink1", "-workers-list", "1,2,4", "-json"}
	out1, stderr, code := runCLI(t, append(args, "-parallel", "1")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	out4, _, code := runCLI(t, append(args, "-parallel", "4")...)
	if code != 0 {
		t.Fatalf("parallel 4 exit %d", code)
	}
	if out1 != out4 {
		t.Fatal("matrix output differs between -parallel 1 and -parallel 4")
	}
	for _, want := range []string{`"identity"`, `"fabric=nvlink1+workers=4"`, `"fabric=pcie3+workers=1"`} {
		if !strings.Contains(out1, want) {
			t.Fatalf("matrix JSON missing %s", want)
		}
	}
}

// TestCheckCLI: -check on a fresh multi-worker recording passes within the
// default tolerance and prints the cell table.
func TestCheckCLI(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, 2, "pcie3")
	stdout, stderr, code := runCLI(t, "-events", events,
		"-matrix", "-fabrics", "pcie3,nvlink1", "-workers-list", "1,2,4", "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, stderr, stdout)
	}
	if !strings.Contains(stdout, "all 7 cells within tolerance") {
		t.Fatalf("check output:\n%s", stdout)
	}
	// Bucket scenarios are replay-only; -check must refuse them.
	_, stderr, code = runCLI(t, "-events", events, "-bucket", "2", "-check")
	if code != 1 || !strings.Contains(stderr, "replay-only") {
		t.Fatalf("bucket -check: exit %d, stderr: %s", code, stderr)
	}
}
