// Command astra-whatif is the trace-replay what-if engine (internal/whatif)
// as a tool: it loads a recorded run's JSONL event log — the file astra-run
// writes with -events-out — and predicts how the run would have performed
// under a hypothetical change, without re-running exploration.
//
// Usage:
//
//	astra-whatif -events run.jsonl -speedup class=gemm,factor=2
//	astra-whatif -events run.jsonl -fabric nvlink1 -workers 8
//	astra-whatif -events run.jsonl -launch-overhead 0.5 -bucket 2
//	astra-whatif -events run.jsonl -matrix -fabrics pcie3,nvlink1 -workers-list 1,2,4,8
//	astra-whatif -events run.jsonl -matrix ... -check -tolerance 5
//
// -check validates every scenario against ground truth: the session is
// rebuilt from the log's metadata, re-explored, and each scenario
// re-simulated with the real simulator; predictions must land within
// -tolerance percent (the identity scenario must be exact). Output is
// byte-identical for a given log regardless of -parallel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"astra/internal/obs"
	"astra/internal/whatif"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-whatif", flag.ContinueOnError)
	fs.SetOutput(stderr)
	events := fs.String("events", "", "JSONL event log to replay (see astra-run -events-out)")
	var pert whatif.Perturbation
	fs.Func("speedup", "class speedup spec `class=gemm,factor=2` (repeatable)", func(spec string) error {
		class, factor, err := whatif.ParseSpeedup(spec)
		if err != nil {
			return err
		}
		if pert.Speedups == nil {
			pert.Speedups = map[string]float64{}
		}
		pert.Speedups[class] = factor
		return nil
	})
	fs.StringVar(&pert.Fabric, "fabric", "", "swap the gradient-exchange fabric (pcie3, nvlink1)")
	fs.IntVar(&pert.Workers, "workers", 0, "re-size the data-parallel ring (1 removes the exchange)")
	fs.Float64Var(&pert.LaunchFactor, "launch-overhead", 0, "scale the CPU kernel-launch overhead (0.5 = twice as fast)")
	fs.Float64Var(&pert.BucketFactor, "bucket", 0, "scale the gradient-bucket size (replay-only; rejected by -check)")
	matrix := fs.Bool("matrix", false, "scenario-matrix mode: identity plus every -fabrics x -workers-list cell")
	fabricsCSV := fs.String("fabrics", "pcie3,nvlink1", "comma-separated fabrics for -matrix")
	workersCSV := fs.String("workers-list", "1,2,4,8", "comma-separated ring sizes for -matrix")
	check := fs.Bool("check", false, "validate predictions against ground-truth re-simulation")
	tol := fs.Float64("tolerance", 5, "-check failure threshold, percent")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	par := fs.Int("parallel", 1, "prediction goroutines; <1 one per CPU (output is byte-identical either way)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "astra-whatif: unexpected arguments %q; the event log is passed with -events\n", fs.Args())
		return 2
	}
	if *events == "" {
		fmt.Fprintln(stderr, "astra-whatif: no event log; pass -events run.jsonl (see astra-run -events-out)")
		return 2
	}
	if *matrix && !pert.Identity() {
		fmt.Fprintln(stderr, "astra-whatif: -matrix builds its own scenario grid; drop -speedup/-fabric/-workers/-launch-overhead/-bucket or drop -matrix")
		return 2
	}

	var scenarios []whatif.Scenario
	if *matrix {
		fabrics := splitCSV(*fabricsCSV)
		if len(fabrics) == 0 {
			fmt.Fprintln(stderr, "astra-whatif: -matrix needs at least one fabric in -fabrics")
			return 2
		}
		var workers []int
		for _, s := range splitCSV(*workersCSV) {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				fmt.Fprintf(stderr, "astra-whatif: bad -workers-list entry %q: want positive integers\n", s)
				return 2
			}
			workers = append(workers, n)
		}
		if len(workers) == 0 {
			fmt.Fprintln(stderr, "astra-whatif: -matrix needs at least one ring size in -workers-list")
			return 2
		}
		scenarios = whatif.MatrixScenarios(fabrics, workers)
	} else {
		scenarios = []whatif.Scenario{whatif.NewScenario(pert)}
	}

	f, err := os.Open(*events)
	if err != nil {
		fmt.Fprintln(stderr, "astra-whatif:", err)
		return 1
	}
	evs, err := obs.ReadTrialEvents(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "astra-whatif: %s: %v\n", *events, err)
		return 1
	}

	if *check {
		rep, err := whatif.Check(evs, scenarios, *tol, *par)
		if err != nil {
			fmt.Fprintln(stderr, "astra-whatif:", err)
			return 1
		}
		if *jsonOut {
			if code := emitJSON(stdout, stderr, rep); code != 0 {
				return code
			}
		} else {
			whatif.WriteCheckReport(stdout, rep)
		}
		if !rep.OK() {
			return 1
		}
		return 0
	}

	preds, err := whatif.PredictMatrix(evs, scenarios, *par)
	if err != nil {
		fmt.Fprintln(stderr, "astra-whatif:", err)
		return 1
	}
	if *jsonOut {
		return emitJSON(stdout, stderr, preds)
	}
	if len(preds) == 1 && preds[0] != nil {
		whatif.WritePrediction(stdout, preds[0])
		return 0
	}
	whatif.WritePredictions(stdout, preds)
	return 0
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func emitJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, "astra-whatif:", err)
		return 1
	}
	return 0
}
