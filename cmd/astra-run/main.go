// Command astra-run trains one zoo model end-to-end with a chosen
// dispatcher and prints a timing/exploration report.
//
// Usage:
//
//	astra-run -model sublstm -batch 16 -level All
//	astra-run -model stackedlstm -dispatcher cudnn
//	astra-run -model scrnn -dispatcher native
//	astra-run -model sublstm -trace-out session.json -events-out trials.jsonl -metrics
//	astra-run -model scrnn -workers 4 -fabric nvlink1
//
// With -trace-out the whole session (every exploration trial plus the
// wired batches) exports as one multi-track Chrome/Perfetto trace: device
// streams, launch queues, the CPU dispatch timeline and the exploration
// counter tracks. -events-out writes one JSONL record per mini-batch, and
// -metrics prints the Prometheus text exposition at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"astra"
	"astra/internal/baselines"
	"astra/internal/distsim"
	"astra/internal/gpusim"
)

func main() {
	model := flag.String("model", "sublstm", "model: "+strings.Join(astra.ModelNames(), ", "))
	batch := flag.Int("batch", 16, "mini-batch size")
	level := flag.String("level", "All", "adaptation level for the astra dispatcher: F, FK, FKS, All")
	dispatcher := flag.String("dispatcher", "astra", "astra, native, tf, xla or cudnn")
	batches := flag.Int("steps", 3, "post-exploration mini-batches to run")
	report := flag.Bool("report", false, "print the wired schedule report (astra dispatcher only)")
	traceOut := flag.String("trace-out", "", "write the session-wide multi-track Chrome/Perfetto trace to this file")
	eventsOut := flag.String("events-out", "", "write the JSONL exploration event log to this file")
	metrics := flag.Bool("metrics", false, "print the Prometheus metrics exposition at exit")
	timeline := flag.String("timeline", "", "write a Chrome trace of the last mini-batch only (device view)")
	jitter := flag.Float64("jitter", 0, "autoboost clock-jitter amplitude (e.g. 0.08); >0 leaves autoboost on")
	samples := flag.Int("samples", 1, "measurements per configuration before a choice can freeze")
	driftAt := flag.Int("drift-at", 0, "inject a sustained clock throttle from this batch on and enable the drift watchdog")
	workers := flag.Int("workers", 1, "data-parallel workers; >=2 simulates a multi-GPU session with explored gradient bucketing (astra dispatcher only)")
	fabric := flag.String("fabric", "pcie3", "gradient-exchange interconnect for -workers >= 2: pcie3 or nvlink1")
	flag.Parse()

	m, err := astra.BuildModel(*model, astra.ModelConfig{Batch: *batch})
	if err != nil {
		fail(err)
	}
	fmt.Printf("model %s: %d graph nodes, %d GEMMs, batch %d\n", m.Name(), m.Nodes(), m.GEMMs(), *batch)

	switch *dispatcher {
	case "astra":
		opts := astra.Options{
			Level:   astra.Level(*level),
			Jitter:  *jitter,
			Samples: *samples,
			Workers: *workers,
			Fabric:  *fabric,
		}
		if *workers >= 2 {
			if _, ok := distsim.FabricByName(*fabric); !ok {
				fmt.Fprintf(os.Stderr, "astra-run: unknown fabric %q (have pcie3, nvlink1)\n", *fabric)
				os.Exit(1)
			}
			fmt.Printf("data-parallel: %d workers over %s, per-device batch %d\n",
				*workers, *fabric, *batch)
		}
		if *driftAt > 0 {
			opts.Watchdog = true
			opts.Faults.ThrottleStartBatch = *driftAt
		}
		runAstra(m, opts, *batches, *report, *traceOut, *eventsOut, *metrics, *timeline)
	case "native", "tf":
		fw := baselines.PyTorch()
		if *dispatcher == "tf" {
			fw = baselines.TensorFlow()
		}
		for i := 0; i < *batches; i++ {
			res := baselines.RunNative(m.Internal().G, gpusim.NewDevice(gpusim.P100()), fw, nil, nil)
			fmt.Printf("  step %d: %.0f us (%d kernels)\n", i+1, res.TimeUs, res.Kernels)
		}
	case "xla":
		for i := 0; i < *batches; i++ {
			res := baselines.RunXLA(m.Internal().G, gpusim.NewDevice(gpusim.P100()), nil, nil)
			fmt.Printf("  step %d: %.0f us (%d kernels)\n", i+1, res.TimeUs, res.Kernels)
		}
	case "cudnn":
		for i := 0; i < *batches; i++ {
			res, ok := baselines.RunCuDNN(m.Internal(), gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
			if !ok {
				fmt.Fprintf(os.Stderr, "astra-run: cuDNN has no kernels for %s (long-tail model)\n", m.Name())
				os.Exit(1)
			}
			fmt.Printf("  step %d: %.0f us (%d kernels)\n", i+1, res.TimeUs, res.Kernels)
		}
	default:
		fmt.Fprintf(os.Stderr, "astra-run: unknown dispatcher %q\n", *dispatcher)
		os.Exit(1)
	}
}

func runAstra(m *astra.Model, opts astra.Options, batches int, report bool, traceOut, eventsOut string, metrics bool, timeline string) {
	sess := astra.Compile(m, opts)

	// Telemetry must attach before Explore so the trace and event log
	// cover every exploration trial.
	observing := traceOut != "" || eventsOut != "" || metrics
	var eventsFile *os.File
	if observing {
		tel := sess.Instrument()
		if eventsOut != "" {
			f, err := os.Create(eventsOut)
			if err != nil {
				fail(err)
			}
			eventsFile = f
			tel.SetEventSink(f)
		}
	}

	stats := sess.Explore()
	if err := sess.Err(); err != nil {
		fail(fmt.Errorf("exploration failed: %w", err))
	}
	fmt.Printf("explored %d configurations across %d allocation strategies\n",
		stats.Configs, stats.AllocStrategies)
	fmt.Printf("wired mini-batch: %.0f us (native PyTorch: %.0f us) -> speedup %.2fx\n",
		stats.WiredBatchUs, stats.NativeBatchUs, stats.Speedup)
	if stats.Workers > 1 {
		fmt.Printf("cluster step (%d workers): %.0f us, gradient exchange %.0f us link-busy\n",
			stats.Workers, stats.WiredBatchUs, stats.CommUs)
	}
	fmt.Printf("always-on profiling overhead: %.3f%%\n", stats.ProfilingOverhead*100)
	for i := 0; i < batches; i++ {
		fmt.Printf("  step %d: %.0f us\n", i+1, sess.Step())
		if !sess.Done() {
			// A drift event thawed the explorer mid-wired-phase:
			// re-explore in-session and continue wired.
			fmt.Printf("  drift detected -> re-exploring\n")
			re := sess.Explore()
			if err := sess.Err(); err != nil {
				fail(fmt.Errorf("re-exploration failed: %w", err))
			}
			fmt.Printf("  re-wired after %d total configurations: %.0f us\n",
				re.Configs, re.WiredBatchUs)
		}
	}
	if n := sess.DriftEvents(); n > 0 {
		fmt.Printf("drift events: %d\n", n)
	}
	if report {
		fmt.Println()
		fmt.Print(sess.Internal().Report())
	}

	ws := sess.Internal()
	if observing {
		ws.CloseTelemetry()
		tel := sess.Telemetry()

		// End-of-run metrics summary: the §6.4 check over the whole
		// session, exploration included.
		overheadPct := 0.0
		if ws.ClockUs > 0 {
			overheadPct = ws.ProfOverheadUs / ws.ClockUs * 100
		}
		fmt.Printf("\ntelemetry summary: %d batches (%d exploration trials), %.0f us simulated\n",
			ws.Batches, ws.Trials, ws.ClockUs)
		fmt.Printf("profiling overhead: %.0f us = %.3f%% of total simulated time\n",
			ws.ProfOverheadUs, overheadPct)
		fmt.Printf("profile index: %d entries, hit rate %.2f\n", ws.Ix.Len(), ws.Ix.HitRate())

		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				fail(err)
			}
			if err := tel.Trace.WriteChromeTrace(f); err != nil {
				fail(err)
			}
			f.Close()
			fmt.Printf("session trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", traceOut)
		}
		if eventsFile != nil {
			n := tel.Events.Count()
			if err := eventsFile.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("event log written to %s (%d records)\n", eventsOut, n)
		}
		if metrics {
			fmt.Println()
			if err := tel.Metrics.WriteProm(os.Stdout); err != nil {
				fail(err)
			}
		}
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			fail(err)
		}
		if err := ws.Runner.Dev.WriteChromeTrace(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("last-batch timeline written to %s (open in chrome://tracing)\n", timeline)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "astra-run:", err)
	os.Exit(1)
}
