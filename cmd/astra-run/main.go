// Command astra-run trains one zoo model end-to-end with a chosen
// dispatcher and prints a timing/exploration report.
//
// Usage:
//
//	astra-run -model sublstm -batch 16 -level All
//	astra-run -model stackedlstm -dispatcher cudnn
//	astra-run -model scrnn -dispatcher native
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"astra"
	"astra/internal/baselines"
	"astra/internal/gpusim"
)

func main() {
	model := flag.String("model", "sublstm", "model: "+strings.Join(astra.ModelNames(), ", "))
	batch := flag.Int("batch", 16, "mini-batch size")
	level := flag.String("level", "All", "adaptation level for the astra dispatcher: F, FK, FKS, All")
	dispatcher := flag.String("dispatcher", "astra", "astra, native, tf, xla or cudnn")
	batches := flag.Int("steps", 3, "post-exploration mini-batches to run")
	report := flag.Bool("report", false, "print the wired schedule report (astra dispatcher only)")
	traceOut := flag.String("timeline", "", "write a Chrome trace-event JSON of the last mini-batch to this file")
	flag.Parse()

	m, err := astra.BuildModel(*model, astra.ModelConfig{Batch: *batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "astra-run:", err)
		os.Exit(1)
	}
	fmt.Printf("model %s: %d graph nodes, %d GEMMs, batch %d\n", m.Name(), m.Nodes(), m.GEMMs(), *batch)

	switch *dispatcher {
	case "astra":
		sess := astra.Compile(m, astra.Options{Level: astra.Level(*level)})
		stats := sess.Explore()
		fmt.Printf("explored %d configurations across %d allocation strategies\n",
			stats.Configs, stats.AllocStrategies)
		fmt.Printf("wired mini-batch: %.0f us (native PyTorch: %.0f us) -> speedup %.2fx\n",
			stats.WiredBatchUs, stats.NativeBatchUs, stats.Speedup)
		fmt.Printf("always-on profiling overhead: %.3f%%\n", stats.ProfilingOverhead*100)
		for i := 0; i < *batches; i++ {
			fmt.Printf("  step %d: %.0f us\n", i+1, sess.Step())
		}
		if *report {
			fmt.Println()
			fmt.Print(sess.Internal().Report())
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "astra-run:", err)
				os.Exit(1)
			}
			if err := sess.Internal().Runner.Dev.WriteChromeTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, "astra-run:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("timeline written to %s (open in chrome://tracing)\n", *traceOut)
		}
	case "native", "tf":
		fw := baselines.PyTorch()
		if *dispatcher == "tf" {
			fw = baselines.TensorFlow()
		}
		for i := 0; i < *batches; i++ {
			res := baselines.RunNative(m.Internal().G, gpusim.NewDevice(gpusim.P100()), fw, nil, nil)
			fmt.Printf("  step %d: %.0f us (%d kernels)\n", i+1, res.TimeUs, res.Kernels)
		}
	case "xla":
		for i := 0; i < *batches; i++ {
			res := baselines.RunXLA(m.Internal().G, gpusim.NewDevice(gpusim.P100()), nil, nil)
			fmt.Printf("  step %d: %.0f us (%d kernels)\n", i+1, res.TimeUs, res.Kernels)
		}
	case "cudnn":
		for i := 0; i < *batches; i++ {
			res, ok := baselines.RunCuDNN(m.Internal(), gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
			if !ok {
				fmt.Fprintf(os.Stderr, "astra-run: cuDNN has no kernels for %s (long-tail model)\n", m.Name())
				os.Exit(1)
			}
			fmt.Printf("  step %d: %.0f us (%d kernels)\n", i+1, res.TimeUs, res.Kernels)
		}
	default:
		fmt.Fprintf(os.Stderr, "astra-run: unknown dispatcher %q\n", *dispatcher)
		os.Exit(1)
	}
}
