// Command astra-analyze runs the trace-analytics engine (internal/analyze)
// over a session's JSONL event log — the file astra-run writes with
// -events-out — and reports what bound the run.
//
// Usage:
//
//	astra-analyze -events run.jsonl -report path        # critical-path blame
//	astra-analyze -events run.jsonl -report util        # idle-gap taxonomy
//	astra-analyze -events run.jsonl -report overlap     # comm/compute overlap
//	astra-analyze -events run.jsonl -report converge    # exploration analytics
//	astra-analyze -events run.jsonl -report all -json   # everything, as JSON
//	astra-analyze -diff a.jsonl b.jsonl                 # run-vs-run blame
//	astra-analyze -events run.jsonl -check              # exactness audit only
//
// Output is byte-identical for a given log regardless of -parallel: batches
// are analyzed independently, merged in batch order, and every report
// iterates sorted keys with fixed-width formatting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"astra/internal/analyze"
	"astra/internal/obs"
)

var reportNames = []string{"path", "util", "overlap", "converge", "all"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	events := fs.String("events", "", "JSONL event log to analyze (see astra-run -events-out)")
	report := fs.String("report", "path", strings.Join(reportNames, ", "))
	diff := fs.Bool("diff", false, "diff mode: two positional logs A B; attribute the delta B−A")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	par := fs.Int("parallel", 1, "analyzer goroutines; <1 one per CPU (output is byte-identical either way)")
	check := fs.Bool("check", false, "audit the exactness invariants (critical-path and taxonomy reconciliation) and report")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reportSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "report" {
			reportSet = true
		}
	})

	if *diff {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "astra-analyze: -diff needs exactly two logs: astra-analyze -diff a.jsonl b.jsonl")
			return 2
		}
		if reportSet {
			// -report would be silently meaningless here; refuse instead.
			fmt.Fprintln(stderr, "astra-analyze: -report cannot be combined with -diff (the diff is its own report)")
			return 2
		}
		if *events != "" {
			fmt.Fprintln(stderr, "astra-analyze: -diff takes its two logs as positional arguments, not -events")
			return 2
		}
		ra, err := loadRun(fs.Arg(0), *par, *check)
		if err != nil {
			fmt.Fprintln(stderr, "astra-analyze:", err)
			return 1
		}
		rb, err := loadRun(fs.Arg(1), *par, *check)
		if err != nil {
			fmt.Fprintln(stderr, "astra-analyze:", err)
			return 1
		}
		d := analyze.Diff(ra, rb)
		if *jsonOut {
			return emitJSON(stdout, stderr, d)
		}
		if err := analyze.WriteDiffReport(stdout, d); err != nil {
			fmt.Fprintln(stderr, "astra-analyze:", err)
			return 1
		}
		return 0
	}

	path := *events
	switch {
	case path != "" && fs.NArg() > 0:
		fmt.Fprintf(stderr, "astra-analyze: unexpected arguments %q alongside -events %s\n", fs.Args(), path)
		return 2
	case path == "" && fs.NArg() == 1:
		path = fs.Arg(0)
	case path == "" && fs.NArg() > 1:
		fmt.Fprintf(stderr, "astra-analyze: got %d event logs; analyze one at a time, or compare two with -diff\n", fs.NArg())
		return 2
	}
	if path == "" {
		fmt.Fprintln(stderr, "astra-analyze: no event log; pass -events run.jsonl (see astra-run -events-out)")
		return 2
	}
	run, err := loadRun(path, *par, *check)
	if err != nil {
		fmt.Fprintln(stderr, "astra-analyze:", err)
		return 1
	}
	if *check {
		fmt.Fprintf(stdout, "ok: %d batches reconcile exactly (%.2f µs analyzed)\n",
			len(run.Batches), run.AnalyzedUs)
		if !reportSet && !*jsonOut {
			// -check alone is a complete invocation; don't tack on the
			// default report unless one was asked for.
			return 0
		}
	}
	if *jsonOut {
		return emitJSON(stdout, stderr, run)
	}
	var werr error
	switch *report {
	case "path":
		werr = analyze.WritePathReport(stdout, run)
	case "util":
		werr = analyze.WriteUtilReport(stdout, run)
	case "overlap":
		werr = analyze.WriteOverlapReport(stdout, run)
	case "converge":
		werr = analyze.WriteConvergeReport(stdout, run)
	case "all":
		for _, emit := range []func(io.Writer, *analyze.Run) error{
			analyze.WritePathReport, analyze.WriteUtilReport,
			analyze.WriteOverlapReport, analyze.WriteConvergeReport,
		} {
			if werr = emit(stdout, run); werr != nil {
				break
			}
		}
	default:
		fmt.Fprintf(stderr, "astra-analyze: unknown -report %q (valid: %s)\n",
			*report, strings.Join(reportNames, ", "))
		return 2
	}
	if werr != nil {
		fmt.Fprintln(stderr, "astra-analyze:", werr)
		return 1
	}
	return 0
}

// loadRun parses and analyzes one event log, optionally auditing the
// exactness invariants.
func loadRun(path string, workers int, check bool) (*analyze.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := obs.ReadTrialEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	run, err := analyze.AnalyzeRun(events, workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if check {
		if err := analyze.Verify(run); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	}
	return run, nil
}

func emitJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, "astra-analyze:", err)
		return 1
	}
	return 0
}
