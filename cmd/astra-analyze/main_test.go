package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// genEvents runs a small instrumented session (explore to convergence plus
// two wired batches) and writes its JSONL event log to dir. The simulated
// clock makes the log — and therefore every golden below — byte-stable.
// The model is wide enough to be GPU-bound (so kernel-class effects show up
// in wall time) while the FK preset keeps exploration short.
func genEvents(t *testing.T, dir string, faults gpusim.FaultConfig, name string) string {
	t.Helper()
	build, ok := models.Get("sublstm")
	if !ok {
		t.Fatal("model sublstm")
	}
	mcfg := models.Config{Batch: 16, SeqLen: 3, Hidden: 1024, Embed: 128,
		Vocab: 100, Embedding: true, Backward: true}
	dev := gpusim.P100()
	dev.Faults = faults
	s := wire.NewSession(build(mcfg), wire.SessionConfig{
		Device:  dev,
		Options: enumerate.PresetOptions(enumerate.PresetF),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	tel := obs.NewTelemetry()
	var sink bytes.Buffer
	tel.SetEventSink(&sink)
	s.Instrument(tel)
	s.Explore()
	s.Step()
	s.Step()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, sink.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// genCommEvents is genEvents for a two-worker data-parallel session over
// pcie3, so the overlap golden sees real communication kernels.
func genCommEvents(t *testing.T, dir, name string) string {
	t.Helper()
	build, ok := models.Get("sublstm")
	if !ok {
		t.Fatal("model sublstm")
	}
	opts := enumerate.PresetOptions(enumerate.PresetFK)
	opts.CommAdapt = true
	opts.Workers = 2
	s := wire.NewSession(build(models.TinyConfig("sublstm", 2)), wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: opts,
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		Comm:    wire.CommConfig{Workers: 2, BytesPerUs: 11000, LatencyUs: 8, Fabric: "pcie3"},
	})
	tel := obs.NewTelemetry()
	var sink bytes.Buffer
	tel.SetEventSink(&sink)
	s.Instrument(tel)
	s.Explore()
	s.Step()
	s.Step()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, sink.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes run() and returns (stdout, stderr, exit code).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/astra-analyze -run TestGolden -update)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (regenerate with -update if the change is intended)\ngot:\n%s", path, got)
	}
}

func TestGoldenReports(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, gpusim.FaultConfig{}, "run.jsonl")
	for _, report := range []string{"path", "util", "overlap", "converge"} {
		report := report
		t.Run(report, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, "-events", events, "-report", report, "-check")
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			checkGolden(t, report+".golden", stdout)
		})
	}
	t.Run("json", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, "-events", events, "-report", "all", "-json")
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		checkGolden(t, "run.json.golden", stdout)
	})
	t.Run("overlap-comm", func(t *testing.T) {
		comm := genCommEvents(t, dir, "comm.jsonl")
		stdout, stderr, code := runCLI(t, "-events", comm, "-report", "overlap", "-check")
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		if !strings.Contains(stdout, "fabric pcie3") {
			t.Fatalf("overlap report missing fabric:\n%s", stdout)
		}
		checkGolden(t, "overlap_comm.golden", stdout)
	})
}

func TestGoldenDiff(t *testing.T) {
	dir := t.TempDir()
	a := genEvents(t, dir, gpusim.FaultConfig{}, "a.jsonl")
	// Count run A's exploration trials from its own log so the throttle
	// window in run B covers exactly the wired batches.
	f, err := os.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadTrialEvents(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	trials := 0
	for _, ev := range evs {
		if ev.Phase == "explore" {
			trials++
		}
	}
	b := genEvents(t, dir, gpusim.FaultConfig{
		ThrottleStartBatch: trials + 1,
		ThrottleBatches:    2,
		ThrottleFactor:     3,
		ThrottleClass:      "gemm",
	}, "b.jsonl")
	stdout, stderr, code := runCLI(t, "-diff", "-check", a, b)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "blame: gemm") {
		t.Fatalf("diff did not blame gemm:\n%s", stdout)
	}
	checkGolden(t, "diff.golden", stdout)
}

func TestParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, gpusim.FaultConfig{}, "run.jsonl")
	for _, mode := range [][]string{
		{"-report", "all"},
		{"-report", "all", "-json"},
	} {
		out1, _, code1 := runCLI(t, append([]string{"-events", events, "-parallel", "1"}, mode...)...)
		out4, _, code4 := runCLI(t, append([]string{"-events", events, "-parallel", "4"}, mode...)...)
		if code1 != 0 || code4 != 0 {
			t.Fatalf("exit codes %d/%d for %v", code1, code4, mode)
		}
		if out1 != out4 {
			t.Fatalf("output differs between -parallel 1 and 4 for %v", mode)
		}
	}
}

func TestCheckOnly(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, gpusim.FaultConfig{}, "run.jsonl")
	stdout, stderr, code := runCLI(t, "-events", events, "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.HasPrefix(stdout, "ok: ") || strings.Contains(stdout, "critical path —") {
		t.Fatalf("-check alone should print only the audit line:\n%s", stdout)
	}
}

func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	events := genEvents(t, dir, gpusim.FaultConfig{}, "run.jsonl")
	cases := []struct {
		args     []string
		code     int
		inStderr string
	}{
		{[]string{"-events", events, "-report", "bogus"}, 2, "valid: path, util, overlap, converge, all"},
		{[]string{}, 2, "no event log"},
		{[]string{"-diff", events}, 2, "exactly two logs"},
		{[]string{"-events", filepath.Join(dir, "missing.jsonl")}, 1, "missing.jsonl"},
		{[]string{"-events", events, "stray.jsonl"}, 2, "unexpected arguments"},
		{[]string{events, events}, 2, "analyze one at a time"},
		{[]string{"-diff", "-report", "util", events, events}, 2, "-report cannot be combined with -diff"},
		{[]string{"-diff", "-events", events, events, events}, 2, "positional arguments, not -events"},
	}
	for _, tc := range cases {
		_, stderr, code := runCLI(t, tc.args...)
		if code != tc.code {
			t.Errorf("%v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr)
		}
		if !strings.Contains(stderr, tc.inStderr) {
			t.Errorf("%v: stderr %q missing %q", tc.args, stderr, tc.inStderr)
		}
	}
}

func TestMalformedLog(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"batch\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runCLI(t, "-events", bad)
	if code != 1 {
		t.Fatalf("exit %d for malformed log", code)
	}
	if !strings.Contains(stderr, "line 2") {
		t.Fatalf("error does not locate the bad line: %s", stderr)
	}
}
