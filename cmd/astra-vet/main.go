// Command astra-vet runs the plan verifier (internal/verify) standalone:
// for every requested model × preset × worker-count combination it
// enumerates the plan and proves the schedule-unit graph, every allocation
// strategy and one schedule per structurally distinct configuration safe —
// no cross-stream races, no wait-cycle deadlocks, no aliasing buffers, no
// fused chunk reading non-contiguous operands without a gather copy, and a
// gradient exchange that covers every gradient exactly once.
//
// Usage:
//
//	astra-vet                                  # all models × presets × {1,2,4} workers
//	astra-vet -model scrnn -preset Astra_all   # one combination
//	astra-vet -workers 2 -v                    # list every finding
//
// The exit status is 0 only when every combination verifies clean, so the
// command slots directly into CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"astra/internal/enumerate"
	"astra/internal/models"
	"astra/internal/parallel"
	"astra/internal/verify"
)

// combo is one cell of the sweep matrix.
type combo struct {
	model   string
	preset  enumerate.Preset
	workers int
}

// result is one verified cell, kept in sweep order for deterministic output.
type result struct {
	combo
	report  *verify.Report
	elapsed time.Duration
}

var presets = []enumerate.Preset{
	enumerate.PresetF, enumerate.PresetFK, enumerate.PresetFKS, enumerate.PresetAll,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "all", "model to verify, or \"all\": "+strings.Join(models.Names(), ", "))
	preset := fs.String("preset", "all", "preset to verify, or \"all\": Astra_F, Astra_FK, Astra_FKS, Astra_all")
	workers := fs.String("workers", "1,2,4", "comma-separated data-parallel worker counts")
	batch := fs.Int("batch", 16, "mini-batch size")
	jobs := fs.Int("j", -1, "combinations verified concurrently; <1 means one per CPU")
	verbose := fs.Bool("v", false, "print every finding (default: first 5 per combination)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	combos, err := buildMatrix(*model, *preset, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "astra-vet: %v\n", err)
		return 2
	}

	// The matrix fans out on the order-preserving pool: results land in
	// sweep order regardless of -j, so the report below is byte-stable
	// across worker counts (only the elapsed column varies).
	results := make([]result, len(combos))
	parallel.ForEach(*jobs, len(combos), func(i int) error {
		start := time.Now()
		results[i] = result{combo: combos[i], report: vetOne(combos[i], *batch), elapsed: time.Since(start)}
		return nil
	})

	failed := 0
	totalConfigs, totalFindings := 0, 0
	for _, r := range results {
		totalConfigs += r.report.Configs
		totalFindings += len(r.report.Findings)
		status := "ok  "
		if !r.report.OK() {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "%s %-12s %-10s workers=%d  configs=%-5d findings=%-3d %s\n",
			status, r.model, r.preset, r.workers, r.report.Configs,
			len(r.report.Findings), r.elapsed.Round(time.Millisecond))
		limit := 5
		if *verbose {
			limit = len(r.report.Findings)
		}
		for i, f := range r.report.Findings {
			if i >= limit {
				fmt.Fprintf(stdout, "      ... and %d more (rerun with -v)\n", len(r.report.Findings)-limit)
				break
			}
			fmt.Fprintf(stdout, "      %s\n", f)
		}
	}
	fmt.Fprintf(stdout, "\n%d combination(s), %d configuration(s) checked, %d finding(s)\n",
		len(results), totalConfigs, totalFindings)
	if failed > 0 {
		fmt.Fprintf(stdout, "FAIL: %d combination(s) with findings\n", failed)
		return 1
	}
	fmt.Fprintln(stdout, "PASS")
	return 0
}

// vetOne enumerates and verifies one matrix cell.
func vetOne(c combo, batch int) *verify.Report {
	build, ok := models.Get(c.model)
	if !ok {
		r := &verify.Report{}
		r.Add("vet.model", "", fmt.Sprintf("model %q not registered", c.model))
		return r
	}
	m := build(models.DefaultConfig(c.model, batch))
	opts := enumerate.PresetOptions(c.preset)
	if c.workers >= 2 {
		opts.CommAdapt = true
		opts.Workers = c.workers
	}
	p := enumerate.Enumerate(m.G, opts)
	return verify.VerifyPlan(p, verify.Spec{Workers: c.workers})
}

// buildMatrix expands the flag selections into the sweep, in deterministic
// model → preset → workers order.
func buildMatrix(model, preset, workers string) ([]combo, error) {
	var ms []string
	if model == "all" {
		ms = models.Names()
	} else {
		if _, ok := models.Get(model); !ok {
			return nil, fmt.Errorf("unknown model %q (have %s)", model, strings.Join(models.Names(), ", "))
		}
		ms = []string{model}
	}
	var ps []enumerate.Preset
	if preset == "all" {
		ps = presets
	} else {
		found := false
		for _, p := range presets {
			if string(p) == preset {
				ps = []enumerate.Preset{p}
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown preset %q", preset)
		}
	}
	var ws []int
	for _, s := range strings.Split(workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", s)
		}
		ws = append(ws, w)
	}
	var out []combo
	for _, m := range ms {
		for _, p := range ps {
			for _, w := range ws {
				out = append(out, combo{model: m, preset: p, workers: w})
			}
		}
	}
	return out, nil
}
