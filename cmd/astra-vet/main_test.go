package main

import (
	"strings"
	"testing"
)

func TestBuildMatrix(t *testing.T) {
	all, err := buildMatrix("all", "all", "1,2,4")
	if err != nil {
		t.Fatal(err)
	}
	// 7 models × 4 presets × 3 worker counts.
	if len(all) != 7*4*3 {
		t.Fatalf("full matrix has %d cells, want %d", len(all), 7*4*3)
	}
	one, err := buildMatrix("scrnn", "Astra_F", "2")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].model != "scrnn" || one[0].workers != 2 {
		t.Fatalf("single cell: got %+v", one)
	}
	for _, bad := range [][3]string{
		{"nosuch", "all", "1"},
		{"scrnn", "nosuch", "1"},
		{"scrnn", "Astra_F", "zero"},
		{"scrnn", "Astra_F", "0"},
	} {
		if _, err := buildMatrix(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("buildMatrix(%q, %q, %q) accepted bad input", bad[0], bad[1], bad[2])
		}
	}
}

func TestVetOneUnknownModel(t *testing.T) {
	r := vetOne(combo{model: "nosuch"}, 16)
	if r.OK() {
		t.Fatal("unknown model verified clean")
	}
}

func TestRunSingleCombination(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-model", "scrnn", "-preset", "Astra_F", "-workers", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	got := out.String()
	for _, want := range []string{"ok  ", "scrnn", "PASS", "configuration(s) checked, 0 finding(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-model", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown model: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown model") {
		t.Errorf("stderr: %s", errOut.String())
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// stripElapsed removes the per-combination wall-clock column — the only
// part of the report that legitimately varies between runs.
func stripElapsed(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.LastIndex(line, " "); i >= 0 && strings.Contains(line, "configs=") {
			line = line[:i]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestOutputOrderStableAcrossJobs(t *testing.T) {
	args := []string{"-model", "scrnn", "-workers", "1,2,4"}
	var serial, par strings.Builder
	if code := run(append([]string{"-j", "1"}, args...), &serial, &serial); code != 0 {
		t.Fatalf("-j 1 exit %d:\n%s", code, serial.String())
	}
	if code := run(append([]string{"-j", "4"}, args...), &par, &par); code != 0 {
		t.Fatalf("-j 4 exit %d:\n%s", code, par.String())
	}
	if stripElapsed(serial.String()) != stripElapsed(par.String()) {
		t.Errorf("output differs between -j 1 and -j 4:\n--- j=1 ---\n%s\n--- j=4 ---\n%s",
			serial.String(), par.String())
	}
}
