package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// escapeFixture builds a throwaway module with one annotated function whose
// pooled record escapes — the smallest shape of the real launch path.
func escapeFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fix\n\ngo 1.22\n")
	write("internal/pool/pool.go", `package pool

type Rec struct{ N int }

var sink *Rec

//astra:hotpath
func Grow() *Rec {
	r := &Rec{}
	sink = r
	return r
}
`)
	return root
}

func TestUpdateThenGatePasses(t *testing.T) {
	root := escapeFixture(t)
	baseline := filepath.Join(root, "baseline.txt")

	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "-baseline", baseline, "-update"}, &out, &errOut); code != 0 {
		t.Fatalf("-update exit %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "internal/pool/pool.go:Grow: &Rec{} escapes to heap") {
		t.Fatalf("baseline missing the fixture escape:\n%s", raw)
	}

	errOut.Reset()
	if code := run([]string{"-root", root, "-baseline", baseline}, &out, &errOut); code != 0 {
		t.Fatalf("gate exit %d against fresh baseline: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no regressions") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

// TestInjectedEscapeFailsGate is the CLI-level version of the guard's core
// promise: add one allocation to an annotated function and the gate must
// exit nonzero naming it.
func TestInjectedEscapeFailsGate(t *testing.T) {
	root := escapeFixture(t)
	baseline := filepath.Join(root, "baseline.txt")
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "-baseline", baseline, "-update"}, &out, &errOut); code != 0 {
		t.Fatalf("-update exit %d: %s", code, errOut.String())
	}

	injected := `package pool

type Rec struct{ N int }

var sink *Rec
var leak []int

//astra:hotpath
func Grow() *Rec {
	r := &Rec{}
	sink = r
	leak = make([]int, r.N)
	return r
}
`
	if err := os.WriteFile(filepath.Join(root, "internal", "pool", "pool.go"), []byte(injected), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"-root", root, "-baseline", baseline}, &out, &errOut); code != 1 {
		t.Fatalf("gate exit %d after injection, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "Grow") || !strings.Contains(errOut.String(), "escapes to heap") {
		t.Errorf("failure does not name the injected escape: %s", errOut.String())
	}
}

func TestListPrintsReport(t *testing.T) {
	root := escapeFixture(t)
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "internal/pool/pool.go:Grow:") {
		t.Errorf("report missing fixture line:\n%s", out.String())
	}
}

func TestOperationalErrors(t *testing.T) {
	root := escapeFixture(t)
	var out, errOut strings.Builder
	if code := run([]string{"-root", root}, &out, &errOut); code != 2 {
		t.Fatalf("missing -baseline: exit %d, want 2", code)
	}
	if code := run([]string{"-root", root, "-baseline", filepath.Join(root, "absent.txt")}, &out, &errOut); code != 2 {
		t.Fatalf("absent baseline: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-update to create it") {
		t.Errorf("stderr: %s", errOut.String())
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
