// astra-escape is the compiler-backed escape-analysis regression guard for
// //astra:hotpath functions. It compiles the module with -gcflags=-m,
// keeps the heap-allocation notes that land inside annotated functions,
// and diffs the normalized report against a committed baseline:
//
//	astra-escape -baseline .github/escape-baseline.txt          # CI gate
//	astra-escape -baseline .github/escape-baseline.txt -update  # accept changes
//	astra-escape -list                                          # current report
//
// Exit status 1 means a new escape appeared in an annotated function — an
// allocation the zero-alloc launch path did not have when the baseline was
// committed. Escapes that vanished do not fail the gate; the tool prints
// them with a reminder to refresh the baseline so the guard stays tight.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"astra/internal/lint/escape"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-escape", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root to analyze")
	baseline := fs.String("baseline", "", "baseline file to diff against")
	update := fs.Bool("update", false, "rewrite the baseline with the current report")
	list := fs.Bool("list", false, "print the current report and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spans, err := escape.Functions(*root, ".", "internal", "cmd")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	out, err := escape.BuildDiagnostics(*root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	report := escape.Report(escape.ParseDiagnostics(out), spans)

	if *list {
		for _, l := range report {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintf(stderr, "astra-escape: %d escape(s) across %d annotated function(s)\n",
			len(report), len(spans))
		return 0
	}
	if *baseline == "" {
		fmt.Fprintln(stderr, "astra-escape: -baseline (or -list) is required")
		return 2
	}
	if *update {
		content := "# Escape-analysis baseline for //astra:hotpath functions.\n" +
			"# One line per compiler-reported heap allocation inside an annotated\n" +
			"# function (go build -gcflags=-m), normalized to file:function: note.\n" +
			"# Regenerate with: make escape-baseline\n"
		if len(report) > 0 {
			content += strings.Join(report, "\n") + "\n"
		}
		if err := os.WriteFile(*baseline, []byte(content), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "astra-escape: wrote %d line(s) to %s\n", len(report), *baseline)
		return 0
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "astra-escape: read baseline: %v (run with -update to create it)\n", err)
		return 2
	}
	added, removed := escape.Diff(escape.ParseBaseline(string(raw)), report)
	for _, l := range removed {
		fmt.Fprintf(stderr, "astra-escape: note: escape no longer present (refresh baseline with make escape-baseline):\n  %s\n", l)
	}
	if len(added) > 0 {
		fmt.Fprintf(stderr, "astra-escape: %d new escape(s) in hotpath functions:\n", len(added))
		for _, l := range added {
			fmt.Fprintf(stderr, "  %s\n", l)
		}
		fmt.Fprintln(stderr, "astra-escape: fix the allocation or, if deliberate, refresh the baseline with make escape-baseline")
		return 1
	}
	fmt.Fprintf(stderr, "astra-escape: ok — %d baselined escape(s), %d annotated function(s), no regressions\n",
		len(report), len(spans))
	return 0
}
