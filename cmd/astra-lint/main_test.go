package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRoot builds a throwaway module with one dirty package covering
// every rule family: a determinism violation, a lock-discipline violation
// and a hot-path allocation, plus one suppressed finding.
func fixtureRoot(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fix\n\ngo 1.22\n")
	write("pkg/bad.go", `package pkg

import (
	"fmt"
	"sync"
	"time"
)

var mu sync.Mutex
var ch = make(chan int)

func Stamp() int64 { return time.Now().UnixNano() }

func Blocked() {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}

//astra:hotpath
func Hot(n int) string {
	return fmt.Sprintf("%d", n)
}

func Quiet(m map[string]int) int {
	s := 0
	for _, v := range m { // lint:ok map-range commutative sum
		s += v
	}
	return s
}
`)
	return root
}

// golden is the expected text rendering of the fixture, root-relative and
// in canonical order. Serial and parallel runs must both produce exactly
// these bytes.
const golden = `pkg/bad.go:12:29: [time-now] time.Now breaks replay; use the session's simulated clock
pkg/bad.go:16:2: [lockcheck] mu held across channel send in Blocked; release the lock before blocking
pkg/bad.go:22:9: [hotpath] fmt.Sprintf allocates and boxes its operands in hotpath function Hot
3 finding(s)
`

func TestGoldenText(t *testing.T) {
	root := fixtureRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-root", root, "-force", "pkg"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if out.String() != golden {
		t.Errorf("got:\n%s\nwant:\n%s", out.String(), golden)
	}
	if strings.Contains(out.String(), root) {
		t.Errorf("output leaks absolute path: %s", out.String())
	}
}

func TestGoldenJSON(t *testing.T) {
	root := fixtureRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-root", root, "-force", "-json", "pkg"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		`"file": "pkg/bad.go"`,
		`"rule": "time-now"`,
		`"rule": "lockcheck"`,
		`"rule": "hotpath"`,
		`"line": 12`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("JSON missing %s:\n%s", want, got)
		}
	}
	if strings.Contains(got, "map-range") {
		t.Errorf("suppressed finding leaked into JSON:\n%s", got)
	}
}

func TestParallelByteIdentical(t *testing.T) {
	root := fixtureRoot(t)
	outputs := make([]string, 0, 3)
	for _, par := range []string{"1", "2", "0"} {
		var out, errOut strings.Builder
		code := run([]string{"-root", root, "-force", "-parallel", par, "pkg"}, &out, &errOut)
		if code != 1 {
			t.Fatalf("-parallel %s: exit %d; stderr: %s", par, code, errOut.String())
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Errorf("parallel output differs from serial:\n%q\n%q\n%q", outputs[0], outputs[1], outputs[2])
	}
}

func TestRuleSelection(t *testing.T) {
	root := fixtureRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-root", root, "-force", "-rules", "time-now", "pkg"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "lockcheck") || !strings.Contains(out.String(), "time-now") {
		t.Errorf("-rules time-now output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-root", root, "-rules", "nope", "pkg"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestScopedRunSkipsOutOfScopePackage(t *testing.T) {
	root := fixtureRoot(t)
	// Without -force, pkg/ is outside every scoped rule; only the
	// annotation-driven hotpath rule (and the suppression meta-rule) apply.
	var out, errOut strings.Builder
	code := run([]string{"-root", root, "pkg"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "time-now") || strings.Contains(out.String(), "lockcheck") {
		t.Errorf("scoped rules ran outside their scope: %s", out.String())
	}
	if !strings.Contains(out.String(), "hotpath") {
		t.Errorf("annotation-driven rule missing: %s", out.String())
	}
}

func TestListCatalog(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, rule := range []string{"time-now", "wall-clock", "env-read", "global-rand", "map-range", "lockcheck", "hotpath"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("catalog missing %s:\n%s", rule, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	root := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "missing"}, &out, &errOut); code != 2 {
		t.Fatalf("missing go.mod: exit %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestRepoIsClean lints the real repository exactly as `make lint` does:
// every rule over every internal/ and cmd/ package, zero unsuppressed
// findings.
func TestRepoIsClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-root", "../.."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("repository has findings (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}
