package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixture(t *testing.T, root, dir, name, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagsFindings(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "dirty", "dirty.go", `package dirty

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	var out, errOut strings.Builder
	code := run([]string{"-root", root, "dirty"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "time-now") || !strings.Contains(got, "1 finding(s)") {
		t.Errorf("output: %s", got)
	}
	// Paths must be root-relative for stable output across checkouts.
	if strings.Contains(got, root) {
		t.Errorf("output leaks absolute path: %s", got)
	}
}

func TestRunCleanPackage(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "clean", "clean.go", "package clean\n\nfunc Ok() int { return 1 }\n")
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "clean"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	root := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "missing"}, &out, &errOut); code != 2 {
		t.Fatalf("missing dir: exit %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestRunDefaultDirs lints the real deterministic core exactly as `make
// lint` does: the tree must stay clean.
func TestRunDefaultDirs(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-root", "../.."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("deterministic core has findings (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}
