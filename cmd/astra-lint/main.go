// astra-lint runs Astra's static-analysis rule suite (internal/lint) over
// the repository's packages: the determinism family (time-now, wall-clock,
// env-read, global-rand, map-range), the lock-discipline rule (lockcheck)
// and the hot-path allocation rule (hotpath).
//
//	astra-lint                      # all rules, every internal/ and cmd/ package
//	astra-lint internal/wire        # explicit package dirs (root-relative)
//	astra-lint -rules map-range     # a rule subset
//	astra-lint -json                # machine-readable findings
//	astra-lint -parallel 0          # one worker per CPU; output is byte-identical
//	astra-lint -force testdata/x    # ignore rule scopes (fixture dirs)
//	astra-lint -list                # the rule catalog
//
// Every rule encodes its own scope (Applies); the driver visits every
// package and lets the rules decide, so "lint the whole tree" and "each
// rule owns its packages" are the same run. Findings print root-relative
// in file:line:col: [rule] message form and exit status 1; loader or usage
// errors exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"astra/internal/lint"
	_ "astra/internal/lint/hotpath"
	_ "astra/internal/lint/lockcheck"
	_ "astra/internal/lint/nodeterm"
	"astra/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root to lint")
	rulesFlag := fs.String("rules", "", "comma-separated rule subset (default: every registered rule)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	par := fs.Int("parallel", 1, "package-loading workers; values below 1 mean one per CPU")
	force := fs.Bool("force", false, "run the selected rules on every package, ignoring rule scopes")
	list := fs.Bool("list", false, "print the rule catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	rules := lint.Rules()
	if *rulesFlag != "" {
		var err error
		rules, err = lint.ByNames(strings.Split(*rulesFlag, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	absRoot, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	dirs := fs.Args()
	if len(dirs) == 0 {
		dirs, err = lint.PackageDirs(absRoot, ".", "internal", "cmd")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	// One loader per concurrent worker, recycled through a pool: a Loader is
	// single-threaded but memoizes type-checked imports, so reuse matters.
	// Findings depend only on package content — which loader checks which
	// package cannot change the output, so -parallel N is byte-identical to
	// serial for every N.
	pool := sync.Pool{New: func() any { return lint.NewLoader(absRoot, modPath) }}
	perDir, err := parallel.Map(*par, len(dirs), func(i int) ([]lint.Finding, error) {
		ld := pool.Get().(*lint.Loader)
		defer pool.Put(ld)
		rel := filepath.ToSlash(dirs[i])
		p, err := ld.Load(filepath.Join(absRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return lint.Run(p, rules, rel, *force), nil
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings := []lint.Finding{}
	for _, fs := range perDir {
		findings = append(findings, fs...)
	}
	// Root-relative paths: stable output across checkouts and CI runners.
	for i := range findings {
		if rel, err := filepath.Rel(absRoot, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	lint.SortFindings(findings)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []lint.Finding `json:"findings"`
		}{findings}); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "%d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// modulePath reads the module path from go.mod — the loader needs it to
// resolve module-local imports from source.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("astra-lint: no module line in %s/go.mod", root)
}
