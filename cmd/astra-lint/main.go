// Command astra-lint runs the determinism linter (internal/lint/nodeterm)
// over the packages whose behaviour must replay bit-identically: the
// simulated device, the enumerator, the wirer and the multi-worker
// stepper. It flags wall-clock reads (time.Now), draws from the global
// math/rand source, and range statements over maps — each a way
// non-determinism sneaks into schedules, measurements or reports.
//
// Usage:
//
//	astra-lint                      # lint the default deterministic core
//	astra-lint internal/obs ...     # lint specific package directories
//	astra-lint -tests               # include *_test.go files
//
// Suppress an intentional site with a justified marker comment:
//
//	for k, v := range bindings { // nodeterm:ok order-independent copy
//
// Exit status 1 when any finding survives, so `make lint` and CI gate on
// it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

import "astra/internal/lint/nodeterm"

// defaultDirs is the deterministic core: the packages whose output feeds
// schedules, measurements or reports.
var defaultDirs = []string{
	"internal/gpusim",
	"internal/wire",
	"internal/distsim",
	"internal/enumerate",
	"internal/parallel",
	"internal/analyze",
	"internal/whatif",
	"internal/serve",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "lint *_test.go files too")
	root := fs.String("root", ".", "module root directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	absRoot, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintf(stderr, "astra-lint: %v\n", err)
		return 2
	}
	c := nodeterm.NewChecker(absRoot, "astra")
	c.IncludeTests = *tests

	dirs := fs.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	total := 0
	for _, d := range dirs {
		findings, err := c.CheckDir(filepath.Join(absRoot, d))
		if err != nil {
			fmt.Fprintf(stderr, "astra-lint: %s: %v\n", d, err)
			return 2
		}
		for _, f := range findings {
			// Print paths relative to the root so output is stable across
			// checkouts.
			if rel, err := filepath.Rel(absRoot, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(stdout, "astra-lint: %d finding(s)\n", total)
		return 1
	}
	return 0
}
