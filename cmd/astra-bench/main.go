// Command astra-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated substrate.
//
// Usage:
//
//	astra-bench -experiment table2        # one experiment
//	astra-bench -experiment all           # everything (takes a while)
//	astra-bench -experiment all -quick    # reduced sweeps, same shapes
//	astra-bench -list
//	astra-bench -experiment table2 -prom-out -   # harness metrics to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"astra/internal/harness"
	"astra/internal/obs"
)

func main() {
	exp := flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
	quick := flag.Bool("quick", false, "reduced batch sweeps; same qualitative shapes")
	verbose := flag.Bool("v", false, "print per-cell progress")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	promOut := flag.String("prom-out", "", "write harness metrics (Prometheus text) to this file at exit ('-' for stdout)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Names(), "\n"))
		return
	}
	opts := harness.Options{Quick: *quick}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.Names()
	}
	reg := obs.NewRegistry()
	runs := reg.Counter("harness.runs", "experiments executed")
	wall := reg.Histogram("harness.run_seconds", "experiment wall time",
		1, 5, 10, 30, 60, 120, 300, 600, 1800)
	for _, id := range ids {
		start := time.Now()
		t, err := harness.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "astra-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		runs.Inc()
		wall.Observe(secs)
		reg.Gauge("harness.last_run_seconds."+id, "wall time of the last run").Set(secs)
		fmt.Println(t)
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n\n", id, secs)
	}
	if *promOut != "" {
		w := os.Stdout
		if *promOut != "-" {
			f, err := os.Create(*promOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "astra-bench:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteProm(w); err != nil {
			fmt.Fprintln(os.Stderr, "astra-bench:", err)
			os.Exit(1)
		}
	}
}
