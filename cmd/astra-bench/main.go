// Command astra-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated substrate.
//
// Usage:
//
//	astra-bench -experiment table2        # one experiment
//	astra-bench -experiment all           # everything (takes a while)
//	astra-bench -experiment all -quick    # reduced sweeps, same shapes
//	astra-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"astra/internal/harness"
)

func main() {
	exp := flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
	quick := flag.Bool("quick", false, "reduced batch sweeps; same qualitative shapes")
	verbose := flag.Bool("v", false, "print per-cell progress")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Names(), "\n"))
		return
	}
	opts := harness.Options{Quick: *quick}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.Names()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := harness.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "astra-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(t)
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
