// Command astra-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated substrate.
//
// Usage:
//
//	astra-bench -experiment table2        # one experiment
//	astra-bench -experiment all           # everything (takes a while)
//	astra-bench -experiment all -quick    # reduced sweeps, same shapes
//	astra-bench -experiment all -parallel 4        # 4 workers per experiment
//	astra-bench -json-out BENCH.json               # machine-readable timings
//	astra-bench -json-out - -baseline BENCH_PR5.json  # fail on >20% regression
//	astra-bench -list
//	astra-bench -experiment table2 -prom-out -   # harness metrics to stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"astra/internal/analyze"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/harness"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/parallel"
	"astra/internal/wire"
)

// ExperimentBench is one experiment's cost in a benchmark report: wall
// clock plus the allocator's view of the run (heap allocations and bytes,
// from runtime.MemStats deltas — experiments run one after another, so the
// deltas attribute cleanly even when cells inside an experiment fan out).
type ExperimentBench struct {
	ID     string  `json:"id"`
	WallNs int64   `json:"wall_ns"`
	Allocs uint64  `json:"allocs"`
	Bytes  uint64  `json:"bytes"`
	WallS  float64 `json:"wall_s"`
}

// BenchReport is the -json-out schema (committed as BENCH_PR5.json and
// compared by CI's bench-smoke job).
type BenchReport struct {
	GoOS        string            `json:"goos"`
	GoArch      string            `json:"goarch"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Quick       bool              `json:"quick"`
	Parallel    int               `json:"parallel"`
	Experiments []ExperimentBench `json:"experiments"`
	TotalWallNs int64             `json:"total_wall_ns"`
	// Attribution is the analyzer's view of a fixed probe session (see
	// attributionProbe): where simulated time goes, by critical-path class
	// and idle-gap category. It is computed on the simulated clock, so a
	// baseline diff that moves these numbers is a behavior change in the
	// simulator or dispatcher, never machine noise.
	Attribution *AttributionReport `json:"attribution,omitempty"`
}

// AttributionReport summarizes analyze.AnalyzeRun over the probe session.
type AttributionReport struct {
	Model       string             `json:"model"`
	Batches     int                `json:"batches"`
	AnalyzedUs  float64            `json:"analyzed_us"`
	PathBlameUs map[string]float64 `json:"path_blame_us"`
	BusyUs      map[string]float64 `json:"busy_us"`
	IdleUs      map[string]float64 `json:"idle_us"`
}

// attributionProbe runs a small instrumented session (GPU-bound sublstm,
// fusion preset, explore to convergence plus two wired batches), analyzes
// its event log, and verifies the exact-reconciliation invariants before
// reporting. Everything is on the simulated clock: byte-stable across
// machines and worker counts.
func attributionProbe() (*AttributionReport, error) {
	build, ok := models.Get("sublstm")
	if !ok {
		return nil, fmt.Errorf("attribution probe: model sublstm missing")
	}
	mcfg := models.Config{Batch: 16, SeqLen: 3, Hidden: 1024, Embed: 128,
		Vocab: 100, Embedding: true, Backward: true}
	s := wire.NewSession(build(mcfg), wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetF),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	tel := obs.NewTelemetry()
	var sink bytes.Buffer
	tel.SetEventSink(&sink)
	s.Instrument(tel)
	s.Explore()
	s.Step()
	s.Step()
	events, err := obs.ReadTrialEvents(&sink)
	if err != nil {
		return nil, fmt.Errorf("attribution probe: %v", err)
	}
	run, err := analyze.AnalyzeRun(events, 1)
	if err != nil {
		return nil, fmt.Errorf("attribution probe: %v", err)
	}
	if err := analyze.Verify(run); err != nil {
		return nil, fmt.Errorf("attribution probe: %v", err)
	}
	return &AttributionReport{
		Model:       "sublstm",
		Batches:     len(run.Batches),
		AnalyzedUs:  run.AnalyzedUs,
		PathBlameUs: run.PathBlame,
		BusyUs:      run.BusyUs,
		IdleUs:      run.IdleUs,
	}, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("astra-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("experiment", "all", "experiment ID (see -list), comma-separated IDs, or 'all'")
	quick := fs.Bool("quick", false, "reduced batch sweeps; same qualitative shapes")
	par := fs.Int("parallel", 0, "workers per experiment's independent cells; 0 serial, <0 one per CPU (tables are byte-identical either way)")
	verbose := fs.Bool("v", false, "print per-cell progress")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	promOut := fs.String("prom-out", "", "write harness metrics (Prometheus text) to this file at exit ('-' for stdout)")
	jsonOut := fs.String("json-out", "", "write a BenchReport JSON to this file ('-' for stdout)")
	baseline := fs.String("baseline", "", "compare against this BenchReport JSON; exit 1 on regression")
	tolerance := fs.Float64("tolerance", 0.20, "relative wall/allocs regression allowed vs -baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(harness.Names(), "\n"))
		return 0
	}
	opts := harness.Options{Quick: *quick, Parallel: *par}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(stderr, "  ..", s) }
	}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = harness.Names()
	}
	reg := obs.NewRegistry()
	runs := reg.Counter("harness.runs", "experiments executed")
	wall := reg.Histogram("harness.run_seconds", "experiment wall time",
		1, 5, 10, 30, 60, 120, 300, 600, 1800)
	report := BenchReport{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Parallel:   *par,
	}
	var ms0, ms1 runtime.MemStats
	for _, id := range ids {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		t, err := harness.Run(id, opts)
		if err != nil {
			fmt.Fprintf(stderr, "astra-bench: %s: %v\n", id, err)
			return 1
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		secs := elapsed.Seconds()
		runs.Inc()
		wall.Observe(secs)
		reg.Gauge("harness.last_run_seconds."+id, "wall time of the last run").Set(secs)
		report.Experiments = append(report.Experiments, ExperimentBench{
			ID:     id,
			WallNs: elapsed.Nanoseconds(),
			WallS:  secs,
			Allocs: ms1.Mallocs - ms0.Mallocs,
			Bytes:  ms1.TotalAlloc - ms0.TotalAlloc,
		})
		report.TotalWallNs += elapsed.Nanoseconds()
		fmt.Fprintln(stdout, t)
		fmt.Fprintf(stderr, "[%s took %.1fs]\n\n", id, secs)
	}
	ps := parallel.Stats()
	reg.Counter("parallel.tasks_total", "tasks executed by the worker pool").Add(float64(ps.Tasks))
	reg.Gauge("parallel.max_in_flight", "high-water mark of concurrent pool tasks").Set(float64(ps.MaxInFlight))
	if *promOut != "" {
		if err := writeTo(*promOut, stdout, reg.WriteProm); err != nil {
			fmt.Fprintln(stderr, "astra-bench:", err)
			return 1
		}
	}
	if *jsonOut != "" {
		attr, err := attributionProbe()
		if err != nil {
			fmt.Fprintln(stderr, "astra-bench:", err)
			return 1
		}
		report.Attribution = attr
		err = writeTo(*jsonOut, stdout, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(report)
		})
		if err != nil {
			fmt.Fprintln(stderr, "astra-bench:", err)
			return 1
		}
	}
	if *baseline != "" {
		regressions, err := compareBaseline(*baseline, report, *tolerance)
		if err != nil {
			fmt.Fprintln(stderr, "astra-bench:", err)
			return 1
		}
		for _, r := range regressions {
			fmt.Fprintln(stderr, "astra-bench: REGRESSION:", r)
		}
		if len(regressions) > 0 {
			return 1
		}
		fmt.Fprintf(stderr, "astra-bench: no regression vs %s (tolerance %.0f%%)\n", *baseline, *tolerance*100)
	}
	return 0
}

// writeTo runs emit against the named file, or stdout when path is "-".
func writeTo(path string, stdout io.Writer, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// wallFloorNs exempts sub-100ms experiments from the wall-clock guard:
// at that scale scheduler noise dwarfs any real regression, and the
// allocation count (which is deterministic) still covers them.
const wallFloorNs = int64(100 * time.Millisecond)

// compareBaseline diffs the current report against a committed one.
// Wall-clock and allocation counts may regress by at most `tol` (relative)
// per experiment; experiments only present on one side are skipped, so a
// quick-subset smoke run can be held against a full baseline.
func compareBaseline(path string, cur BenchReport, tol float64) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	baseBy := make(map[string]ExperimentBench, len(base.Experiments))
	for _, e := range base.Experiments {
		baseBy[e.ID] = e
	}
	var regressions []string
	for _, e := range cur.Experiments {
		b, ok := baseBy[e.ID]
		if !ok {
			continue
		}
		if b.WallNs >= wallFloorNs && float64(e.WallNs) > float64(b.WallNs)*(1+tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: wall %.2fs vs baseline %.2fs (>%.0f%% slower)",
				e.ID, e.WallS, b.WallS, tol*100))
		}
		if b.Allocs > 0 && float64(e.Allocs) > float64(b.Allocs)*(1+tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs vs baseline %d (>%.0f%% more)",
				e.ID, e.Allocs, b.Allocs, tol*100))
		}
	}
	return regressions, nil
}
