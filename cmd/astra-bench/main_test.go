package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONOutAndBaseline(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-experiment", "table1", "-quick", "-json-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "table1" {
		t.Fatalf("report experiments: %+v", rep.Experiments)
	}
	if rep.Experiments[0].WallNs <= 0 || rep.Experiments[0].Allocs == 0 {
		t.Fatalf("empty measurements: %+v", rep.Experiments[0])
	}
	// -json-out reports carry analyzer attribution, not just wall time.
	if rep.Attribution == nil {
		t.Fatal("report has no attribution block")
	}
	if rep.Attribution.Batches == 0 || rep.Attribution.AnalyzedUs <= 0 {
		t.Fatalf("empty attribution: %+v", rep.Attribution)
	}
	if len(rep.Attribution.PathBlameUs) == 0 || len(rep.Attribution.IdleUs) == 0 {
		t.Fatalf("attribution missing blame/taxonomy: %+v", rep.Attribution)
	}

	// A fresh run held against its own numbers is within tolerance.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-experiment", "table1", "-quick", "-baseline", out, "-tolerance", "5"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-baseline exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no regression") {
		t.Errorf("stderr missing verdict: %s", stderr.String())
	}
}

func TestBaselineDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// A baseline claiming table1 once ran in 1ns with 1 alloc: any real run
	// regresses against it.
	rep := BenchReport{Experiments: []ExperimentBench{{ID: "table1", WallNs: 1, Allocs: 1}}}
	raw, _ := json.Marshal(rep)
	if err := os.WriteFile(base, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-experiment", "table1", "-quick", "-baseline", base}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (regression); stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("stderr missing REGRESSION: %s", stderr.String())
	}
}

func TestCompareBaselineSkipsMissingExperiments(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	rep := BenchReport{Experiments: []ExperimentBench{{ID: "other", WallNs: 1, Allocs: 1}}}
	raw, _ := json.Marshal(rep)
	if err := os.WriteFile(base, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cur := BenchReport{Experiments: []ExperimentBench{{ID: "table1", WallNs: 1 << 40, Allocs: 1 << 30}}}
	regs, err := compareBaseline(base, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestListExits(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout.String(), "table2") {
		t.Errorf("list output: %s", stdout.String())
	}
}
