// Package astra is a Go reproduction of "Astra: Exploiting Predictability
// to Optimize Deep Learning" (Sivathanu, Chugh, Singapuram, Zhou —
// ASPLOS 2019): a compilation-and-execution framework that optimizes deep
// learning training by exploring an enumerated optimization state space
// online, one configuration per mini-batch, instead of ranking
// configurations with a static cost model.
//
// The package exposes the end-to-end pipeline over a simulated P100-class
// GPU (see DESIGN.md for the substitution argument):
//
//	model := astra.BuildModel("sublstm", astra.ModelConfig{Batch: 16})
//	sess := astra.Compile(model, astra.Options{Level: astra.LevelAll})
//	stats := sess.Explore()              // online, work-conserving search
//	fmt.Println(stats.Speedup)           // vs the native eager framework
//
// Lower-level building blocks (graph IR, autodiff, the enumerator, the
// adaptive-variable explorer, the GPU simulator) live in internal packages;
// this package is the stable surface a downstream user drives.
package astra

import (
	"fmt"
	"io"

	"astra/internal/baselines"
	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/profile"
	"astra/internal/wire"
)

// Level selects the cumulative adaptation dimensions, matching the ablation
// columns of the paper's tables.
type Level string

// Adaptation levels.
const (
	// LevelF adapts GEMM fusion granularity only (Astra_F).
	LevelF Level = "F"
	// LevelFK adds GEMM kernel-library selection (Astra_FK).
	LevelFK Level = "FK"
	// LevelFKS adds multi-stream scheduling (Astra_FKS).
	LevelFKS Level = "FKS"
	// LevelAll adds memory-allocation strategy adaptation (Astra_all).
	LevelAll Level = "All"
)

func (l Level) preset() enumerate.Preset {
	switch l {
	case LevelF:
		return enumerate.PresetF
	case LevelFK:
		return enumerate.PresetFK
	case LevelFKS:
		return enumerate.PresetFKS
	case LevelAll, "":
		return enumerate.PresetAll
	}
	panic(fmt.Sprintf("astra: unknown level %q", l))
}

// ModelConfig sizes a model from the built-in zoo. Zero fields take the
// paper's evaluation-scale defaults.
type ModelConfig struct {
	Batch  int
	SeqLen int
	Hidden int
	Vocab  int
	Layers int
	// Embedding toggles token-id inputs through an embedding table
	// (default true; the XLA comparison uses the dense variant).
	NoEmbedding bool
	// Tiny shrinks the model to unit-test scale.
	Tiny bool
}

// Model wraps a built training graph.
type Model struct{ m *models.Model }

// ModelNames lists the built-in model zoo: the five models of the paper's
// evaluation (§6.1).
func ModelNames() []string { return models.Names() }

// BuildModel constructs a training graph (forward + autodiff backward) for
// a zoo model.
func BuildModel(name string, cfg ModelConfig) (*Model, error) {
	build, ok := models.Get(name)
	if !ok {
		return nil, fmt.Errorf("astra: unknown model %q (have %v)", name, models.Names())
	}
	batch := cfg.Batch
	if batch == 0 {
		batch = 32
	}
	var mc models.Config
	if cfg.Tiny {
		mc = models.TinyConfig(name, batch)
	} else {
		mc = models.DefaultConfig(name, batch)
	}
	if cfg.SeqLen > 0 {
		mc.SeqLen = cfg.SeqLen
	}
	if cfg.Hidden > 0 {
		mc.Hidden = cfg.Hidden
	}
	if cfg.Vocab > 0 {
		mc.Vocab = cfg.Vocab
	}
	if cfg.Layers > 0 {
		mc.Layers = cfg.Layers
	}
	mc.Embedding = !cfg.NoEmbedding
	return &Model{m: build(mc)}, nil
}

// Name returns the model's zoo name.
func (m *Model) Name() string { return m.m.Name }

// Nodes returns the operator count of the training graph.
func (m *Model) Nodes() int { return len(m.m.G.Nodes) }

// GEMMs returns the count of matrix-multiply nodes.
func (m *Model) GEMMs() int { return m.m.G.Stats().MatMuls }

// Trace renders the training graph in the paper's textual trace format.
func (m *Model) Trace() string { return m.m.G.TraceString() }

// Internal returns the underlying model for advanced use (the cmd tools
// and the experiment harness).
func (m *Model) Internal() *models.Model { return m.m }

// Options configures compilation.
type Options struct {
	// Level selects the adaptation dimensions (default LevelAll).
	Level Level
	// Streams is the stream count for stream adaptation (default 2).
	Streams int
	// EvalValues computes real tensor values through the CPU oracle on
	// every mini-batch (slow; for tests and demonstrations of value
	// preservation).
	EvalValues bool
	// LearningRate enables SGD updates when EvalValues is set.
	LearningRate float64
	// Autoboost leaves GPU clock boosting on, violating the repeatability
	// requirement of §7 — exploration still works but picks noisy winners.
	Autoboost bool
	// Jitter overrides the autoboost jitter amplitude (default 0.08 when
	// Autoboost is on).
	Jitter float64
	// Samples requires each measurement to be the mean of this many
	// repeated trials before a choice can freeze (default 1, the paper's
	// first-measurement-wins rule). Raise it when Autoboost is on so the
	// explorer averages out clock noise.
	Samples int
	// Watchdog enables the wired-phase drift watchdog: sustained deviation
	// of wired batch times from the wired expectation thaws the explorer
	// and re-explores in-session.
	Watchdog bool
	// Faults injects deterministic hardware misbehavior into the simulated
	// device (straggler kernels, clock-throttle windows) for testing the
	// noise-robustness machinery.
	Faults gpusim.FaultConfig
	// Workers >= 2 compiles a data-parallel session: that many simulated
	// devices step identical replicas of the model, exchanging gradients
	// with an event-level ring all-reduce whose bucket size and stream
	// placement are explored online like every other schedule choice.
	Workers int
	// Fabric names the gradient-exchange interconnect for multi-worker
	// sessions: "pcie3" (default) or "nvlink1".
	Fabric string
	// ProfileSnapshot warm-starts the session from a profile index saved
	// by Session.SaveProfile in an earlier run of the same job.
	ProfileSnapshot io.Reader
}

// Session is a compiled training job: the enumerated plan plus the online
// explorer, bound to a fresh simulated device.
type Session struct {
	s     *wire.Session
	model *Model
}

// Compile runs the enumerator over the model and prepares the runtime.
// A multi-worker configuration (Options.Workers >= 2) with an unknown
// fabric name panics; use distsim's fabric names ("pcie3", "nvlink1").
func Compile(m *Model, opts Options) *Session {
	dev := gpusim.P100()
	dev.Autoboost = opts.Autoboost
	if opts.Jitter > 0 {
		dev.Autoboost = true
		dev.BoostJitter = opts.Jitter
	}
	dev.Faults = opts.Faults
	eopts := enumerate.PresetOptions(opts.Level.preset())
	if opts.Streams > 0 {
		eopts.NumStreams = opts.Streams
	}
	var comm wire.CommConfig
	if opts.Workers >= 2 {
		fabric := opts.Fabric
		if fabric == "" {
			fabric = "pcie3"
		}
		ic, ok := distsim.FabricByName(fabric)
		if !ok {
			panic(fmt.Sprintf("astra: unknown fabric %q", fabric))
		}
		comm = wire.CommConfig{
			Workers:    opts.Workers,
			BytesPerUs: ic.BytesPerUs,
			LatencyUs:  ic.LatencyUs,
			Fabric:     ic.Name,
		}
		eopts.CommAdapt = true
		eopts.Workers = opts.Workers
	}
	ix := profile.NewIndex()
	if opts.Samples > 1 {
		ix.SetPolicy(profile.FixedSamples(opts.Samples))
	}
	if opts.ProfileSnapshot != nil {
		// Best-effort warm start: a corrupt snapshot leaves a cold index.
		_ = ix.Load(opts.ProfileSnapshot)
	}
	cfg := wire.SessionConfig{
		Device:       dev,
		Options:      eopts,
		Runner:       wire.RunnerConfig{PerOpCPUUs: 2},
		EvalValues:   opts.EvalValues,
		LearningRate: opts.LearningRate,
		Comm:         comm,
		Index:        ix,
	}
	s := wire.NewSession(m.m, cfg)
	s.Drift = wire.DriftConfig{Enabled: opts.Watchdog}
	return &Session{s: s, model: m}
}

// ExploreStats reports a completed exploration.
type ExploreStats struct {
	// Configs is the number of configurations explored (one mini-batch
	// each — the Table 7 metric).
	Configs int
	// WiredBatchUs is the mini-batch time under the chosen configuration.
	WiredBatchUs float64
	// NativeBatchUs is the same mini-batch under the stock eager
	// framework on an identical device.
	NativeBatchUs float64
	// Speedup is NativeBatchUs / WiredBatchUs.
	Speedup float64
	// AllocStrategies is the size of the memory-allocation fork.
	AllocStrategies int
	// ProfilingOverhead is the fraction of batch time spent on profiling
	// events (always-on; §6.4 claims <0.5%).
	ProfilingOverhead float64
	// Workers is the data-parallel degree (1 for single-GPU sessions) and
	// CommUs the wired batch's measured gradient-exchange link-busy time.
	Workers int
	CommUs  float64
}

// Explore runs exploration mini-batches until every adaptive variable is
// frozen at its measured best, then reports the outcome.
func (s *Session) Explore() ExploreStats {
	s.s.Explore()
	res := s.s.Step()
	nat := baselines.RunNative(s.model.m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
	stats := ExploreStats{
		Configs:         s.s.Trials,
		WiredBatchUs:    res.TotalUs,
		NativeBatchUs:   nat.TimeUs,
		AllocStrategies: len(s.s.Plan.Allocs),
		Workers:         len(s.s.Peers) + 1,
		CommUs:          res.CommUs,
	}
	if res.TotalUs > 0 {
		stats.Speedup = nat.TimeUs / res.TotalUs
		stats.ProfilingOverhead = res.ProfilingOverheadUs() / res.TotalUs
	}
	return stats
}

// Step runs one training mini-batch (exploring until converged, then
// wired) and returns its simulated duration in microseconds.
func (s *Session) Step() float64 { return s.s.Step().TotalUs }

// Done reports whether exploration has converged.
func (s *Session) Done() bool { return s.s.Done() }

// Err reports a failed exploration: non-nil when the explorer got stuck
// (active variables were never measured). Done() is also true then, so
// callers must check Err before trusting the wired schedule.
func (s *Session) Err() error { return s.s.Err() }

// DriftEvents counts wired-phase drift-watchdog firings (thaw +
// re-exploration) so far in the session.
func (s *Session) DriftEvents() int { return s.s.DriftEvents }

// Loss returns the current loss value; it requires EvalValues.
func (s *Session) Loss() (float64, error) {
	if !s.s.EvalValues {
		return 0, fmt.Errorf("astra: Loss requires Options.EvalValues")
	}
	res := s.s.Step()
	return res.Env[s.model.m.G.Loss].Data()[0], nil
}

// UpdateTree renders the exploration update tree (Figure 2's structure).
func (s *Session) UpdateTree() string {
	if s.s.Plan.Tree == nil {
		return "(no adaptive variables)"
	}
	return s.s.Plan.Tree.Render()
}

// SaveProfile snapshots the profile index so a later session of the same
// job can warm-start (Options.ProfileSnapshot) instead of re-exploring.
func (s *Session) SaveProfile(w io.Writer) error { return s.s.Ix.Save(w) }

// Instrument attaches a fresh telemetry bundle — session-wide trace,
// metrics registry, JSONL event log — to the whole pipeline and returns
// it. Call before Explore so the trace covers every trial; attach an event
// sink with Telemetry.SetEventSink to enable the JSONL log.
func (s *Session) Instrument() *obs.Telemetry {
	tel := obs.NewTelemetry()
	s.s.Instrument(tel)
	return tel
}

// Telemetry returns the attached bundle (nil when Instrument was not
// called).
func (s *Session) Telemetry() *obs.Telemetry { return s.s.Obs }

// Internal exposes the underlying session for the experiment harness.
func (s *Session) Internal() *wire.Session { return s.s }
