package astra

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its experiment via
// the internal harness in Quick mode (batch sizes 16/32 — the sizes the
// paper says matter for long-tail experimentation) and reports headline
// numbers as custom metrics. The full sweeps live behind
// `go run ./cmd/astra-bench -experiment all`.
//
// Substrate micro-benchmarks at the bottom measure the simulator and
// explorer machinery itself.

import (
	"strconv"
	"testing"

	"astra/internal/adapt"
	"astra/internal/baselines"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/harness"
	"astra/internal/kernels"
	"astra/internal/models"
	"astra/internal/profile"
	"astra/internal/wire"
)

// runExperiment regenerates one paper table/figure per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := harness.Run(id, harness.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1GEMMLibraries(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkSection32FusionAnomaly(b *testing.B)    { runExperiment(b, "sec32") }
func BenchmarkFigure1AllocationConflict(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFigure2UpdateTree(b *testing.B)         { runExperiment(b, "fig2") }
func BenchmarkTable2SCRNN(b *testing.B)               { runExperiment(b, "table2") }
func BenchmarkTable3MILSTM(b *testing.B)              { runExperiment(b, "table3") }
func BenchmarkTable4SubLSTM(b *testing.B)             { runExperiment(b, "table4") }
func BenchmarkTable5StackedLSTMvsCuDNN(b *testing.B)  { runExperiment(b, "table5") }
func BenchmarkTable6GNMTvsCuDNN(b *testing.B)         { runExperiment(b, "table6") }
func BenchmarkTable7StateSpace(b *testing.B)          { runExperiment(b, "table7") }
func BenchmarkTable8Bucketing(b *testing.B)           { runExperiment(b, "table8") }
func BenchmarkTable9XLA(b *testing.B)                 { runExperiment(b, "table9") }

// BenchmarkEndToEnd reports, per model, the paper's headline metric as
// custom benchmark outputs: wired speedup over native PyTorch and the
// number of configurations explored.
func BenchmarkEndToEnd(b *testing.B) {
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			build, _ := models.Get(name)
			m := build(models.DefaultConfig(name, 16))
			var speedup float64
			var configs int
			for i := 0; i < b.N; i++ {
				nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
				s := wire.NewSession(m, wire.SessionConfig{
					Device:  gpusim.P100(),
					Options: enumerate.PresetOptions(enumerate.PresetFKS),
					Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
				})
				s.Explore()
				speedup = nat.TimeUs / s.WiredTimeUs()
				configs = s.Trials
			}
			b.ReportMetric(speedup, "speedup")
			b.ReportMetric(float64(configs), "configs")
		})
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkSimulatorLaunch measures the discrete-event engine's kernel
// throughput: launches + drain for a mixed two-stream workload.
func BenchmarkSimulatorLaunch(b *testing.B) {
	dev := gpusim.NewDevice(gpusim.P100())
	dev.EnsureStreams(2)
	spec := kernels.GEMM(kernels.CuBLAS, kernels.GEMMShape{M: 64, K: 512, N: 512})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			dev.Reset()
		}
		dev.Launch(i%2, spec)
		if i%100 == 99 {
			dev.Synchronize()
		}
	}
}

// BenchmarkGEMMCostModel measures the analytic kernel-spec computation.
func BenchmarkGEMMCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = kernels.GEMM(kernels.Library(i%3), kernels.GEMMShape{M: 8 + i%512, K: 1024, N: 1024})
	}
}

// BenchmarkExplorerTrial measures the update-tree walk per exploration
// trial on a 64-variable parallel tree.
func BenchmarkExplorerTrial(b *testing.B) {
	leaves := make([]*adapt.Tree, 64)
	vars := make([]*adapt.Var, 64)
	for i := range leaves {
		vars[i] = adapt.NewVar("v"+strconv.Itoa(i), "a", "b", "c")
		leaves[i] = adapt.LeafNode(vars[i])
	}
	metrics := map[string]float64{}
	for i, v := range vars {
		metrics[v.ID] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := profile.NewIndex()
		e := adapt.NewExplorer(adapt.NewNode("root", adapt.Parallel, leaves...), ix)
		for !e.Done() {
			e.Observe(metrics)
			e.Advance()
		}
	}
}

// BenchmarkEnumerate measures whole-graph compilation (fusion mining,
// partitioning, tree construction) for the paper-scale SC-RNN.
func BenchmarkEnumerate(b *testing.B) {
	build, _ := models.Get("scrnn")
	m := build(models.DefaultConfig("scrnn", 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enumerate.Enumerate(m.G, enumerate.PresetOptions(enumerate.PresetAll))
	}
}

// BenchmarkMiniBatchDispatch measures one wired mini-batch dispatch+DES
// simulation for the paper-scale subLSTM.
func BenchmarkMiniBatchDispatch(b *testing.B) {
	build, _ := models.Get("sublstm")
	m := build(models.DefaultConfig("sublstm", 16))
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetFK),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	s.Explore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// benchKeys is a realistic profile key population: a few hundred distinct
// (context, variable, choice) signatures, as a paper-scale session produces.
func benchKeys() []profile.Key {
	keys := make([]profile.Key, 0, 512)
	for ctx := 0; ctx < 16; ctx++ {
		for v := 0; v < 8; v++ {
			for c := 0; c < 4; c++ {
				keys = append(keys, profile.K(
					"ctx"+strconv.Itoa(ctx), "var"+strconv.Itoa(v), "choice"+strconv.Itoa(c)))
			}
		}
	}
	return keys
}

// BenchmarkProfileIndexRecord measures concurrent Record throughput on the
// sharded index — the write path every exploration trial hits.
func BenchmarkProfileIndexRecord(b *testing.B) {
	ix := profile.NewIndex()
	keys := benchKeys()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ix.Record(keys[i%len(keys)], float64(100+i%7))
			i++
		}
	})
}

// BenchmarkProfileIndexBest measures concurrent Best lookups — the explorer's
// read path when freezing winners — against a populated index.
func BenchmarkProfileIndexBest(b *testing.B) {
	ix := profile.NewIndex()
	labels := []string{"choice0", "choice1", "choice2", "choice3"}
	for _, k := range benchKeys() {
		ix.Record(k, float64(len(k)))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ix.Best("ctx"+strconv.Itoa(i%16), "var"+strconv.Itoa(i%8), labels)
			i++
		}
	})
}

// BenchmarkSimulatorEventLoop measures the pooled event machinery:
// cross-stream RecordEvent/WaitEvent dependencies around every launch, the
// pattern the wirer emits for barrier-parallel exploration.
func BenchmarkSimulatorEventLoop(b *testing.B) {
	dev := gpusim.NewDevice(gpusim.P100())
	dev.EnsureStreams(4)
	spec := kernels.GEMM(kernels.CuBLAS, kernels.GEMMShape{M: 64, K: 512, N: 512})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 0 {
			dev.Synchronize()
			dev.Reset()
		}
		src, dst := i%4, (i+1)%4
		dev.Launch(src, spec)
		ev := dev.RecordEvent(src)
		dev.WaitEvent(dst, ev)
		dev.Launch(dst, spec)
	}
	dev.Synchronize()
}
