package astra

import (
	"fmt"

	"astra/internal/autodiff"
	"astra/internal/data"
	"astra/internal/graph"
	"astra/internal/models"
	"astra/internal/tensor"
)

// Tensor is a symbolic tensor value in a model under construction.
type Tensor struct{ v *graph.Value }

// ModelBuilder builds a custom training graph through the public API — the
// way a researcher would define a novel cell that no hand-optimized library
// covers. Operators mirror a small PyTorch-like surface; provenance scopes
// and timesteps drive the enumerator's fusion and equivalence analysis, so
// structure your cell code with InScope/AtStep the way you would structure
// Python modules and unrolled loops.
type ModelBuilder struct {
	name string
	g    *graph.Graph
	b    *graph.Builder
	rng  *tensor.RNG
	m    *models.Model
	done bool
}

// NewModelBuilder starts a custom model named name.
func NewModelBuilder(name string) *ModelBuilder {
	g := graph.New()
	mb := &ModelBuilder{
		name: name,
		g:    g,
		b:    graph.NewBuilder(g),
		rng:  tensor.NewRNG(0xa57a),
	}
	mb.m = &models.Model{Name: name, G: g}
	return mb
}

// Input declares a per-mini-batch input of shape [rows, cols].
func (mb *ModelBuilder) Input(name string, rows, cols int) Tensor {
	return Tensor{mb.g.Input(name, rows, cols)}
}

// Param declares a trainable weight of shape [rows, cols], randomly
// initialized (deterministically).
func (mb *ModelBuilder) Param(name string, rows, cols int) Tensor {
	return Tensor{mb.g.Param(name, tensor.Randn(mb.rng, 0.08, rows, cols))}
}

// Zeros declares a constant zero matrix (e.g. an initial recurrent state).
func (mb *ModelBuilder) Zeros(name string, rows, cols int) Tensor {
	return Tensor{mb.g.Const(name, tensor.New(rows, cols))}
}

// InScope runs fn under a nested provenance scope.
func (mb *ModelBuilder) InScope(scope string, fn func()) { mb.b.InScope(scope, fn) }

// AtStep runs fn at a recurrence timestep.
func (mb *ModelBuilder) AtStep(t int, fn func()) { mb.b.AtStep(t, fn) }

// MatMul emits x × y.
func (mb *ModelBuilder) MatMul(x, y Tensor) Tensor { return Tensor{mb.b.MatMul(x.v, y.v)} }

// Add emits x + y elementwise.
func (mb *ModelBuilder) Add(x, y Tensor) Tensor { return Tensor{mb.b.Add(x.v, y.v)} }

// Sub emits x − y elementwise.
func (mb *ModelBuilder) Sub(x, y Tensor) Tensor { return Tensor{mb.b.Sub(x.v, y.v)} }

// Mul emits x ⊙ y elementwise.
func (mb *ModelBuilder) Mul(x, y Tensor) Tensor { return Tensor{mb.b.Mul(x.v, y.v)} }

// Scale emits s·x.
func (mb *ModelBuilder) Scale(x Tensor, s float64) Tensor { return Tensor{mb.b.Scale(x.v, s)} }

// Sigmoid emits the logistic nonlinearity.
func (mb *ModelBuilder) Sigmoid(x Tensor) Tensor { return Tensor{mb.b.Sigmoid(x.v)} }

// Tanh emits tanh.
func (mb *ModelBuilder) Tanh(x Tensor) Tensor { return Tensor{mb.b.Tanh(x.v)} }

// ReLU emits max(0, x).
func (mb *ModelBuilder) ReLU(x Tensor) Tensor { return Tensor{mb.b.ReLU(x.v)} }

// AddBias broadcasts a [1,n] bias row over x.
func (mb *ModelBuilder) AddBias(x, bias Tensor) Tensor { return Tensor{mb.b.AddBias(x.v, bias.v)} }

// Softmax emits a row-wise softmax.
func (mb *ModelBuilder) Softmax(x Tensor) Tensor { return Tensor{mb.b.Softmax(x.v)} }

// ConcatRows stacks tensors along the row dimension.
func (mb *ModelBuilder) ConcatRows(xs ...Tensor) Tensor {
	vs := make([]*graph.Value, len(xs))
	for i, x := range xs {
		vs[i] = x.v
	}
	return Tensor{mb.b.ConcatRows(vs...)}
}

// ConcatCols concatenates tensors along the column dimension.
func (mb *ModelBuilder) ConcatCols(xs ...Tensor) Tensor {
	vs := make([]*graph.Value, len(xs))
	for i, x := range xs {
		vs[i] = x.v
	}
	return Tensor{mb.b.ConcatCols(vs...)}
}

// SliceCols extracts columns [lo, hi).
func (mb *ModelBuilder) SliceCols(x Tensor, lo, hi int) Tensor {
	return Tensor{mb.b.SliceCols(x.v, lo, hi)}
}

// Lookup gathers embedding-table rows by token id.
func (mb *ModelBuilder) Lookup(table, ids Tensor) Tensor {
	return Tensor{mb.b.Lookup(table.v, ids.v)}
}

// CrossEntropyLoss attaches the softmax + mean-NLL loss over per-row class
// targets; every model must end with it.
func (mb *ModelBuilder) CrossEntropyLoss(logits, targets Tensor) Tensor {
	return Tensor{mb.b.CrossEntropy(logits.v, targets.v)}
}

// Finish validates the graph, runs reverse-mode autodiff to append the
// backward pass, and returns the compiled-ready model.
func (mb *ModelBuilder) Finish() (*Model, error) {
	if mb.done {
		return nil, fmt.Errorf("astra: Finish called twice")
	}
	mb.done = true
	if err := mb.g.Validate(); err != nil {
		return nil, fmt.Errorf("astra: invalid model: %w", err)
	}
	if mb.g.Loss == nil {
		return nil, fmt.Errorf("astra: model has no loss; call CrossEntropyLoss")
	}
	if _, err := autodiff.Backward(mb.g); err != nil {
		return nil, fmt.Errorf("astra: autodiff: %w", err)
	}
	// A custom model has no standard input synthesis; derive a config from
	// its shapes for the session plumbing that needs one.
	mb.m.Cfg = models.Config{Backward: true, Vocab: 2}
	return &Model{m: mb.m}, nil
}

// SampleSentenceLengths draws n sentence lengths from the synthetic PTB
// length distribution used by the dynamic-graph experiment (§5.5).
func SampleSentenceLengths(n int, seed uint64) []int { return data.SampleLengths(n, seed) }

// LengthBuckets computes k equal-frequency bucket boundaries from sampled
// lengths; BucketFor maps a length to its (nearest larger) bucket.
func LengthBuckets(lengths []int, k int) []int { return data.Buckets(lengths, k) }

// BucketFor maps a sentence length to its bucket boundary.
func BucketFor(buckets []int, length int) int { return data.BucketFor(buckets, length) }
