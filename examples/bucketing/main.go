// Bucketing: dynamic graphs (variable sentence lengths) violate Astra's
// mini-batch predictability assumption. Following §5.5 of the paper, this
// example calibrates five equal-frequency length buckets on the PTB
// distribution, explores one configuration space per bucket, and compares
// steady-state throughput against the native dynamic-graph framework.
package main

import (
	"fmt"

	"astra"
)

func main() {
	// Calibrate buckets on the corpus length distribution; on the
	// synthetic PTB distribution this yields the paper's 13/18/24/30/83.
	sample := astra.SampleSentenceLengths(20000, 42)
	buckets := astra.LengthBuckets(sample, 5)
	fmt.Println("calibrated buckets:", buckets)

	const batch = 16
	wired := map[int]float64{}
	native := map[int]float64{}
	for _, bl := range buckets {
		m, err := astra.BuildModel("scrnn", astra.ModelConfig{Batch: batch, SeqLen: bl})
		if err != nil {
			panic(err)
		}
		sess := astra.Compile(m, astra.Options{Level: astra.LevelFK})
		stats := sess.Explore()
		wired[bl] = stats.WiredBatchUs
		native[bl] = stats.NativeBatchUs
		fmt.Printf("  bucket %2d: explored %3d configs, %.1f ms/batch wired\n",
			bl, stats.Configs, stats.WiredBatchUs/1000)
	}

	// Steady state over a stream of variable-length batches: the native
	// framework rebuilds per length; Astra pads to the nearest bucket
	// (a small amount of extra computation, §6.5).
	lengths := astra.SampleSentenceLengths(40, 7)
	var astraTotal, nativeApprox float64
	for _, l := range lengths {
		b := astra.BucketFor(buckets, l)
		astraTotal += wired[b]
		// Native dynamic-graph cost scales with the actual length; the
		// per-bucket native measurement interpolates it.
		nativeApprox += native[b] * float64(l) / float64(b)
	}
	fmt.Printf("\n%d variable-length batches: native dynamic %.0f ms, astra+bucketing %.0f ms -> %.2fx\n",
		len(lengths), nativeApprox/1000, astraTotal/1000, nativeApprox/astraTotal)
}
