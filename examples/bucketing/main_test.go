package main

import "testing"

// TestMainRuns executes the example end-to-end in-process, so a drifting
// public API or a panicking exploration breaks the build, not the README.
func TestMainRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run")
	}
	main()
}
