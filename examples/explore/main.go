// Explore: a look inside the exploration machinery. Shows the update tree
// the enumerator builds (Figure 2's structure), watches a few exploration
// steps change configuration, and demonstrates that exploration is
// work-conserving: every exploration batch computes the same loss the
// unoptimized framework would.
package main

import (
	"fmt"
	"strings"

	"astra"
)

func main() {
	m, err := astra.BuildModel("scrnn", astra.ModelConfig{Batch: 4, Tiny: true})
	if err != nil {
		panic(err)
	}

	// EvalValues runs the CPU value oracle alongside the simulated device,
	// and LearningRate makes this an actual training loop.
	sess := astra.Compile(m, astra.Options{
		Level:        astra.LevelAll,
		EvalValues:   true,
		LearningRate: 0.1,
	})

	fmt.Println("update tree (first lines):")
	for i, line := range strings.Split(sess.UpdateTree(), "\n") {
		if i >= 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + line)
	}

	fmt.Println("\nexploring while training (loss falls as schedules vary):")
	step := 0
	for !sess.Done() && step < 2000 {
		loss, err := sess.Loss() // runs one exploration mini-batch
		if err != nil {
			panic(err)
		}
		if step%50 == 0 {
			fmt.Printf("  batch %4d: loss %.4f\n", step, loss)
		}
		step++
	}
	fmt.Printf("exploration converged after %d mini-batches\n", step)

	loss, _ := sess.Loss()
	fmt.Printf("wired schedule, training continues: loss %.4f\n", loss)
}
