// Quickstart: compile a long-tail model (subLSTM — no cuDNN kernel exists
// for it), let Astra explore its optimization state space online, and
// compare the wired schedule against the native eager framework.
package main

import (
	"fmt"

	"astra"
)

func main() {
	model, err := astra.BuildModel("sublstm", astra.ModelConfig{Batch: 16})
	if err != nil {
		panic(err)
	}
	fmt.Printf("subLSTM: %d operators, %d GEMMs\n", model.Nodes(), model.GEMMs())

	// Compile enumerates the optimization state space: GEMM fusion
	// chunkings, kernel libraries, stream assignments, allocation
	// strategies. No cost model ranks them — the runtime will measure.
	sess := astra.Compile(model, astra.Options{Level: astra.LevelAll})

	// Explore runs one configuration per training mini-batch (making real
	// training progress the whole time) until every adaptive variable has
	// settled on its measured best.
	stats := sess.Explore()
	fmt.Printf("explored %d configurations (%d allocation strategies)\n",
		stats.Configs, stats.AllocStrategies)
	fmt.Printf("wired schedule: %.1f ms/batch vs native %.1f ms/batch -> %.2fx speedup\n",
		stats.WiredBatchUs/1000, stats.NativeBatchUs/1000, stats.Speedup)
	fmt.Printf("always-on profiling overhead: %.3f%% (paper bound: 0.5%%)\n",
		stats.ProfilingOverhead*100)

	// Training continues at the wired configuration.
	for i := 0; i < 3; i++ {
		fmt.Printf("  post-exploration step: %.1f ms\n", sess.Step()/1000)
	}
}
