// Custom cell: the paper's core motivation is that researchers invent
// long-tail architectures no hand-optimized library covers, and those are
// exactly the models that need speed for trial-and-error iteration.
//
// This example invents such a cell — a "peephole gated residual unit" —
// through the public ModelBuilder API, and shows Astra optimizing it with
// no cell-specific engineering: the enumerator mines its fusion groups from
// the traced graph, and the custom-wirer measures its way to a schedule.
package main

import (
	"fmt"

	"astra"
)

const (
	batch  = 16
	seqLen = 24
	embed  = 256
	hidden = 768
	vocab  = 5000
)

func main() {
	mb := astra.NewModelBuilder("pgru")

	table := mb.Param("embedding", vocab, embed)
	wr := mb.Param("Wr", embed, hidden)
	ur := mb.Param("Ur", hidden, hidden)
	wz := mb.Param("Wz", embed, hidden)
	uz := mb.Param("Uz", hidden, hidden)
	wc := mb.Param("Wc", embed, hidden)
	uc := mb.Param("Uc", hidden, hidden)
	peep := mb.Param("peephole", hidden, hidden)
	bias := mb.Param("bias", 1, hidden)
	wo := mb.Param("Wout", hidden, vocab)

	h := mb.Zeros("h0", batch, hidden)
	cell := mb.Zeros("c0", batch, hidden)
	var tops []astra.Tensor
	for t := 0; t < seqLen; t++ {
		t := t
		ids := mb.Input(fmt.Sprintf("ids%d", t), batch, 1)
		mb.InScope("pgru", func() {
			mb.AtStep(t, func() {
				x := mb.Lookup(table, ids)
				// Two sigmoid gates with a shared input GEMM pattern —
				// fusion candidates the enumerator should find on its own.
				r := mb.Sigmoid(mb.Add(mb.MatMul(x, wr), mb.MatMul(h, ur)))
				z := mb.Sigmoid(mb.Add(mb.MatMul(x, wz), mb.MatMul(h, uz)))
				// A peephole from the slow cell state — the "esoteric"
				// twist no library kernel implements.
				c := mb.Tanh(mb.AddBias(
					mb.Add(mb.Add(mb.MatMul(x, wc), mb.MatMul(mb.Mul(r, h), uc)),
						mb.MatMul(cell, peep)), bias))
				cell = mb.Add(mb.Scale(cell, 0.9), mb.Scale(c, 0.1))
				// Gated residual update: h = z⊙h + (1−z)⊙c, spelled the
				// naive way model code does: z⊙h + c − z⊙c.
				h = mb.Add(mb.Mul(z, h), mb.Sub(c, mb.Mul(z, c)))
			})
		})
		tops = append(tops, h)
	}
	var logits astra.Tensor
	mb.InScope("head", func() {
		logits = mb.MatMul(mb.ConcatRows(tops...), wo)
	})
	targets := mb.Input("targets", batch*seqLen, 1)
	mb.CrossEntropyLoss(logits, targets)

	model, err := mb.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Printf("custom cell 'pgru': %d operators, %d GEMMs (no cuDNN kernel exists for this)\n",
		model.Nodes(), model.GEMMs())

	sess := astra.Compile(model, astra.Options{Level: astra.LevelAll})
	stats := sess.Explore()
	fmt.Printf("explored %d configurations -> %.2fx over the native framework\n",
		stats.Configs, stats.Speedup)
	fmt.Println("\nexploration update tree (head):")
	tree := sess.UpdateTree()
	for i, line := 0, 0; i < len(tree) && line < 12; i++ {
		fmt.Print(string(tree[i]))
		if tree[i] == '\n' {
			line++
		}
	}
}
