package astra

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildModelZoo(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := BuildModel(name, ModelConfig{Batch: 2, Tiny: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Nodes() == 0 || m.GEMMs() == 0 {
			t.Fatalf("%s: empty model", name)
		}
		if !strings.Contains(m.Trace(), "mm(") {
			t.Fatalf("%s: trace has no GEMMs", name)
		}
	}
	if _, err := BuildModel("bogus", ModelConfig{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelConfigOverrides(t *testing.T) {
	m, err := BuildModel("scrnn", ModelConfig{Batch: 4, SeqLen: 3, Hidden: 16, Vocab: 20, Tiny: true})
	if err != nil {
		t.Fatal(err)
	}
	im := m.Internal()
	if im.Cfg.SeqLen != 3 || im.Cfg.Hidden != 16 || im.Cfg.Vocab != 20 || im.Cfg.Batch != 4 {
		t.Fatalf("overrides not applied: %+v", im.Cfg)
	}
}

func TestCompileExploreTiny(t *testing.T) {
	m, err := BuildModel("sublstm", ModelConfig{Batch: 2, Tiny: true})
	if err != nil {
		t.Fatal(err)
	}
	sess := Compile(m, Options{Level: LevelAll})
	stats := sess.Explore()
	if stats.Configs <= 0 {
		t.Fatal("no configurations explored")
	}
	if stats.Speedup <= 1 {
		t.Fatalf("speedup %v <= 1", stats.Speedup)
	}
	if !sess.Done() {
		t.Fatal("not converged")
	}
	if sess.Step() <= 0 {
		t.Fatal("step time not positive")
	}
}

func TestLevelsOrdering(t *testing.T) {
	m, _ := BuildModel("scrnn", ModelConfig{Batch: 2, Tiny: true})
	var prev float64
	for i, l := range []Level{LevelF, LevelFK, LevelFKS, LevelAll} {
		sess := Compile(m, Options{Level: l})
		stats := sess.Explore()
		if i > 0 && stats.WiredBatchUs > prev*1.02 {
			t.Fatalf("level %s wired time %v worse than previous %v", l, stats.WiredBatchUs, prev)
		}
		prev = stats.WiredBatchUs
	}
}

func TestLossRequiresEvalValues(t *testing.T) {
	m, _ := BuildModel("scrnn", ModelConfig{Batch: 2, Tiny: true})
	sess := Compile(m, Options{Level: LevelF})
	if _, err := sess.Loss(); err == nil {
		t.Fatal("Loss without EvalValues should error")
	}
}

func TestTrainingThroughPublicAPI(t *testing.T) {
	m, _ := BuildModel("scrnn", ModelConfig{Batch: 2, Tiny: true})
	sess := Compile(m, Options{Level: LevelFK, EvalValues: true, LearningRate: 0.1})
	// Each step draws a fresh mini-batch, so compare averaged windows.
	var early, late float64
	const steps, window = 80, 10
	for i := 0; i < steps; i++ {
		loss, err := sess.Loss()
		if err != nil {
			t.Fatal(err)
		}
		if i < window {
			early += loss
		}
		if i >= steps-window {
			late += loss
		}
	}
	if late >= early {
		t.Fatalf("training did not reduce loss: avg %v -> %v", early/window, late/window)
	}
}

func TestUpdateTreeRendering(t *testing.T) {
	m, _ := BuildModel("stackedlstm", ModelConfig{Batch: 2, Tiny: true})
	sess := Compile(m, Options{Level: LevelAll})
	tree := sess.UpdateTree()
	for _, want := range []string{"chunk", "lib", "(parallel)"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestCustomModelBuilder(t *testing.T) {
	mb := NewModelBuilder("toy")
	x := mb.Input("x", 4, 8)
	targets := mb.Input("targets", 4, 1)
	w1 := mb.Param("w1", 8, 16)
	w2 := mb.Param("w2", 8, 16)
	wo := mb.Param("wo", 16, 5)
	bias := mb.Param("b", 1, 16)
	var logits Tensor
	mb.InScope("layer", func() {
		h := mb.Add(mb.MatMul(x, w1), mb.MatMul(x, w2))
		h = mb.Tanh(mb.AddBias(h, bias))
		h = mb.Mul(h, mb.Sigmoid(h))
		logits = mb.MatMul(h, wo)
	})
	mb.CrossEntropyLoss(logits, targets)
	m, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if m.GEMMs() < 3 {
		t.Fatalf("GEMMs = %d", m.GEMMs())
	}
	sess := Compile(m, Options{Level: LevelAll, EvalValues: true, LearningRate: 0.2})
	stats := sess.Explore()
	if stats.Configs <= 0 || stats.Speedup <= 0 {
		t.Fatalf("bad stats %+v", stats)
	}
	loss, err := sess.Loss()
	if err != nil || loss <= 0 {
		t.Fatalf("loss = %v, %v", loss, err)
	}
}

func TestCustomModelBuilderErrors(t *testing.T) {
	mb := NewModelBuilder("noloss")
	mb.Input("x", 2, 2)
	if _, err := mb.Finish(); err == nil {
		t.Fatal("model without loss accepted")
	}
	mb2 := NewModelBuilder("twice")
	x := mb2.Input("x", 2, 2)
	tg := mb2.Input("t", 2, 1)
	mb2.CrossEntropyLoss(mb2.MatMul(x, mb2.Param("w", 2, 3)), tg)
	if _, err := mb2.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := mb2.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestRecurrentCustomModel(t *testing.T) {
	// A small unrolled recurrence through the public API must survive the
	// whole pipeline with value evaluation (schedule-dependency check).
	mb := NewModelBuilder("rnn")
	const b, d, T = 2, 6, 3
	wx := mb.Param("wx", d, d)
	wh := mb.Param("wh", d, d)
	wo := mb.Param("wo", d, 4)
	h := mb.Zeros("h0", b, d)
	var tops []Tensor
	for t0 := 0; t0 < T; t0++ {
		t0 := t0
		x := mb.Input("x", b, d)
		mb.InScope("cell", func() {
			mb.AtStep(t0, func() {
				h = mb.Tanh(mb.Add(mb.MatMul(x, wx), mb.MatMul(h, wh)))
			})
		})
		tops = append(tops, h)
	}
	logits := mb.MatMul(mb.ConcatRows(tops...), wo)
	mb.CrossEntropyLoss(logits, mb.Input("targets", b*T, 1))
	m, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sess := Compile(m, Options{Level: LevelAll, EvalValues: true})
	sess.Explore()
	if _, err := sess.Loss(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoboostOptionStillConverges(t *testing.T) {
	m, _ := BuildModel("scrnn", ModelConfig{Batch: 2, Tiny: true})
	sess := Compile(m, Options{Level: LevelFK, Autoboost: true})
	stats := sess.Explore()
	if stats.Configs <= 0 {
		t.Fatal("no exploration under autoboost")
	}
}

func TestBucketHelpers(t *testing.T) {
	ls := SampleSentenceLengths(5000, 42)
	bs := LengthBuckets(ls, 5)
	if len(bs) != 5 {
		t.Fatalf("buckets = %v", bs)
	}
	if BucketFor(bs, 1) != bs[0] {
		t.Fatal("short sentence should map to first bucket")
	}
}

func TestLevelPresetPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad level accepted")
		}
	}()
	Level("nope").preset()
}

func TestWarmStartThroughPublicAPI(t *testing.T) {
	m, _ := BuildModel("scrnn", ModelConfig{Batch: 2, Tiny: true})
	cold := Compile(m, Options{Level: LevelFKS})
	coldStats := cold.Explore()
	var buf bytes.Buffer
	if err := cold.SaveProfile(&buf); err != nil {
		t.Fatal(err)
	}
	m2, _ := BuildModel("scrnn", ModelConfig{Batch: 2, Tiny: true})
	warm := Compile(m2, Options{Level: LevelFKS, ProfileSnapshot: &buf})
	warmStats := warm.Explore()
	if warmStats.Configs != 0 {
		t.Fatalf("warm start explored %d configs", warmStats.Configs)
	}
	if warmStats.WiredBatchUs != coldStats.WiredBatchUs {
		t.Fatalf("warm wired %v != cold wired %v", warmStats.WiredBatchUs, coldStats.WiredBatchUs)
	}
}

func TestModelBuilderFullOpSurface(t *testing.T) {
	// Exercise every public builder operator in one model and push it
	// through the full pipeline with values on.
	mb := NewModelBuilder("kitchen")
	const b, v, e = 3, 9, 6
	ids := mb.Input("ids", b, 1)
	table := mb.Param("emb", v, e)
	x := mb.Lookup(table, ids)
	w := mb.Param("w", e, e)
	h := mb.ReLU(mb.MatMul(x, w))
	h = mb.Add(h, mb.Scale(x, 0.5))
	h = mb.Mul(h, mb.Softmax(h))
	h = mb.Sub(h, mb.Sigmoid(x))
	wide := mb.ConcatCols(h, x)
	h = mb.SliceCols(wide, 0, e)
	h = mb.Add(h, mb.Zeros("z", b, e))
	stack := mb.ConcatRows(h, h)
	logits := mb.MatMul(stack, mb.Param("wo", e, 4))
	mb.CrossEntropyLoss(logits, mb.Input("targets", 2*b, 1))
	m, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sess := Compile(m, Options{Level: LevelAll, EvalValues: true})
	sess.Explore()
	loss, err := sess.Loss()
	if err != nil || loss <= 0 {
		t.Fatalf("loss %v err %v", loss, err)
	}
}

func TestGEMMFreeCustomModel(t *testing.T) {
	// A model with a single GEMM and no fusion surface still compiles;
	// the update tree may be tiny but the pipeline must hold together.
	mb := NewModelBuilder("mini")
	x := mb.Input("x", 2, 3)
	logits := mb.MatMul(mb.Tanh(x), mb.Param("w", 3, 2))
	mb.CrossEntropyLoss(logits, mb.Input("t", 2, 1))
	m, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sess := Compile(m, Options{Level: LevelFK})
	sess.Explore()
	if sess.Step() <= 0 {
		t.Fatal("no simulated time")
	}
	_ = sess.UpdateTree()
}

func TestStreamsOptionPlumbs(t *testing.T) {
	m, _ := BuildModel("sublstm", ModelConfig{Batch: 2, Tiny: true})
	sess := Compile(m, Options{Level: LevelFKS, Streams: 4})
	sess.Explore()
	if got := sess.Internal().Runner.Dev.NumStreams(); got < 4 {
		t.Fatalf("streams = %d", got)
	}
}

func TestCompileMultiWorker(t *testing.T) {
	m, err := BuildModel("sublstm", ModelConfig{Batch: 2, Tiny: true})
	if err != nil {
		t.Fatal(err)
	}
	sess := Compile(m, Options{Level: LevelFK, Workers: 4, Fabric: "nvlink1"})
	stats := sess.Explore()
	if err := sess.Err(); err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Fatalf("Workers = %d", stats.Workers)
	}
	if stats.CommUs <= 0 {
		t.Fatalf("no gradient exchange measured: %+v", stats)
	}
	// The update tree must show the comm dimension.
	for _, want := range []string{"comm.bucket_kb", "comm.place"} {
		if !strings.Contains(sess.UpdateTree(), want) {
			t.Fatalf("update tree missing %s:\n%s", want, sess.UpdateTree())
		}
	}
	// Default fabric resolves; an unknown one panics.
	if s2 := Compile(m, Options{Level: LevelFK, Workers: 2}); s2 == nil {
		t.Fatal("default fabric failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown fabric did not panic")
		}
	}()
	Compile(m, Options{Workers: 2, Fabric: "token-ring"})
}
