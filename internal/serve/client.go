package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Submitter runs one job to completion. *Server implements it in-process;
// *Client implements it over the HTTP API. The load generator drives either.
type Submitter interface {
	Submit(ctx context.Context, job Job, emit func(Event)) (*Result, error)
}

// Client submits jobs to a remote astra-serve over its HTTP API.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Stream selects the NDJSON event stream (events are forwarded to
	// emit); false uses the single-shot ?stream=0 form.
	Stream bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decodeError maps a transport-level rejection back onto the server's
// sentinel errors so callers handle local and remote submission uniformly.
func decodeError(status int, body string) error {
	body = strings.TrimSpace(body)
	switch status {
	case http.StatusBadRequest:
		return &ValidationError{msg: strings.TrimPrefix(body, "serve: ")}
	case http.StatusTooManyRequests:
		return ErrQueueFull
	case http.StatusServiceUnavailable:
		return ErrDraining
	default:
		return fmt.Errorf("serve: server returned %d: %s", status, body)
	}
}

// codeError maps a stream error event's code onto the sentinel errors.
func codeError(ev Event) error {
	switch ev.Code {
	case "queue_full":
		return ErrQueueFull
	case "draining":
		return ErrDraining
	default:
		return fmt.Errorf("serve: job failed: %s", ev.Error)
	}
}

// Submit runs one job on the remote server, forwarding stream events to
// emit (which may be nil) when Stream is set.
func (c *Client) Submit(ctx context.Context, job Job, emit func(Event)) (*Result, error) {
	if emit == nil {
		emit = func(Event) {}
	}
	payload, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding job: %w", err)
	}
	url := c.BaseURL + "/v1/jobs"
	if !c.Stream {
		url += "?stream=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, decodeError(resp.StatusCode, string(body))
	}
	if !c.Stream {
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return nil, fmt.Errorf("serve: decoding result: %w", err)
		}
		return &res, nil
	}
	// NDJSON stream: forward events; the terminal line is either a
	// "result" (success) or an "error" (rejection or mid-session failure).
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("serve: bad stream line %q: %w", line, err)
		}
		emit(ev)
		switch ev.Type {
		case "result":
			if ev.Result == nil {
				return nil, fmt.Errorf("serve: result event without a result")
			}
			return ev.Result, nil
		case "error":
			return nil, codeError(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: stream broken: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("serve: stream ended without a result")
}
