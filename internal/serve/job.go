package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/models"
)

// Job is one wiring request a tenant submits: which model at which scale,
// which adaptation preset, how many data-parallel workers over which
// fabric. The server explores it on the shared simulated substrate and
// streams back convergence events plus the wired result.
type Job struct {
	// Tenant names the submitting client (reporting only; default "anon").
	Tenant string `json:"tenant,omitempty"`
	// Model is a zoo model name (models.Names).
	Model string `json:"model"`
	// Scale sizes the model: "tiny" (default; the test scale) or
	// "default" (the paper's §6.1 evaluation scale — minutes per cold job).
	Scale string `json:"scale,omitempty"`
	// Batch is the per-device mini-batch size (default 4).
	Batch int `json:"batch,omitempty"`
	// Level selects the adaptation dimensions: F, FK, FKS or All
	// (default FK).
	Level string `json:"level,omitempty"`
	// Streams overrides the preset's stream count (0 keeps the preset's).
	Streams int `json:"streams,omitempty"`
	// Workers is the data-parallel degree (default 1; 2..8 simulates a
	// multi-GPU session with explored gradient bucketing).
	Workers int `json:"workers,omitempty"`
	// Fabric names the gradient-exchange interconnect for Workers >= 2:
	// pcie3 (default) or nvlink1.
	Fabric string `json:"fabric,omitempty"`
	// Steps is how many wired mini-batches to run after convergence
	// (default 1; the last one's time is the reported WiredUs).
	Steps int `json:"steps,omitempty"`
	// Prior opts the session into cost-model guidance (see
	// docs/COSTMODEL.md): the tenant's shared model re-ranks and prunes
	// candidate visits, typically cutting trials-to-freeze on shapes the
	// tenant has explored neighbours of. Off by default — every session
	// still trains the tenant's model either way, but only opted-in jobs
	// let it shape exploration, so the fleet's exact warm-start guarantees
	// (shared == solo, byte-identical results) are untouched unless a
	// tenant asks.
	Prior bool `json:"prior,omitempty"`
}

// Job-field limits: hostile requests must not be able to queue unbounded
// work behind one admission slot.
const (
	maxTenantLen = 64
	maxBatch     = 512
	maxStreams   = 8
	maxWorkers   = 8
	maxSteps     = 64
)

var levels = map[string]enumerate.Preset{
	"F":   enumerate.PresetF,
	"FK":  enumerate.PresetFK,
	"FKS": enumerate.PresetFKS,
	"All": enumerate.PresetAll,
}

func levelNames() []string {
	out := make([]string, 0, len(levels))
	for l := range levels { // nodeterm:ok sorted below
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func fabricNames() []string {
	fabrics := distsim.Fabrics()
	out := make([]string, 0, len(fabrics))
	for _, f := range fabrics {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}

// ValidationError rejects a malformed job; it always names the valid
// choices for the offending field so a client can self-correct.
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return "serve: " + e.msg }

func invalidf(format string, args ...interface{}) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// ParseJob decodes and validates a job request. Unknown fields, trailing
// garbage and out-of-range values are all rejected with a *ValidationError
// naming the valid choices; defaults are applied to omitted fields. It
// never panics, whatever the input.
func ParseJob(data []byte) (Job, error) {
	var j Job
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Job{}, invalidf("bad job JSON: %v (want an object like {\"model\":\"sublstm\",\"level\":\"FK\"})", err)
	}
	if dec.More() {
		return Job{}, invalidf("bad job JSON: trailing data after the job object")
	}
	return j.withDefaults()
}

// Normalize validates the job and returns it with defaults applied — the
// exact normalization Submit performs on intake, for callers that need the
// canonical shape (e.g. to compute its Signature) without submitting.
func (j Job) Normalize() (Job, error) { return j.withDefaults() }

// withDefaults validates the job and fills omitted fields.
func (j Job) withDefaults() (Job, error) {
	if j.Tenant == "" {
		j.Tenant = "anon"
	}
	if len(j.Tenant) > maxTenantLen {
		return Job{}, invalidf("tenant name longer than %d bytes", maxTenantLen)
	}
	if strings.ContainsAny(j.Tenant, "#\n\r") {
		return Job{}, invalidf("tenant name must not contain '#' or newlines")
	}
	if _, ok := models.Get(j.Model); !ok {
		return Job{}, invalidf("unknown model %q (valid models: %s)", j.Model, strings.Join(models.Names(), ", "))
	}
	switch j.Scale {
	case "":
		j.Scale = "tiny"
	case "tiny", "default":
	default:
		return Job{}, invalidf("unknown scale %q (valid scales: default, tiny)", j.Scale)
	}
	if j.Batch == 0 {
		j.Batch = 4
	}
	if j.Batch < 1 || j.Batch > maxBatch {
		return Job{}, invalidf("batch %d out of range (valid: 1..%d)", j.Batch, maxBatch)
	}
	if j.Level == "" {
		j.Level = "FK"
	}
	if _, ok := levels[j.Level]; !ok {
		return Job{}, invalidf("unknown level %q (valid levels: %s)", j.Level, strings.Join(levelNames(), ", "))
	}
	if j.Streams < 0 || j.Streams > maxStreams {
		return Job{}, invalidf("streams %d out of range (valid: 0..%d, 0 = preset default)", j.Streams, maxStreams)
	}
	if j.Workers == 0 {
		j.Workers = 1
	}
	if j.Workers < 1 || j.Workers > maxWorkers {
		return Job{}, invalidf("workers %d out of range (valid: 1..%d)", j.Workers, maxWorkers)
	}
	if j.Workers >= 2 {
		if j.Fabric == "" {
			j.Fabric = "pcie3"
		}
		if _, ok := distsim.FabricByName(j.Fabric); !ok {
			return Job{}, invalidf("unknown fabric %q (valid fabrics: %s)", j.Fabric, strings.Join(fabricNames(), ", "))
		}
	} else if j.Fabric != "" {
		if _, ok := distsim.FabricByName(j.Fabric); !ok {
			return Job{}, invalidf("unknown fabric %q (valid fabrics: %s)", j.Fabric, strings.Join(fabricNames(), ", "))
		}
		j.Fabric = "" // single-worker sessions have no exchange
	}
	if j.Steps == 0 {
		j.Steps = 1
	}
	if j.Steps < 1 || j.Steps > maxSteps {
		return Job{}, invalidf("steps %d out of range (valid: 1..%d)", j.Steps, maxSteps)
	}
	return j, nil
}

// Signature is the job's shape identity: every field that affects what the
// exploration measures, and nothing else (the tenant is deliberately
// excluded — cross-tenant reuse is the point). It doubles as the base
// profile context namespacing the job's keys in the fleet store, so it must
// never be a string prefix of a different signature: the trailing ';' after
// every field guarantees that (batch=1; vs batch=12; differ at the ';').
func (j Job) Signature() string {
	return fmt.Sprintf("model=%s;scale=%s;batch=%d;level=%s;streams=%d;workers=%d;fabric=%s;",
		j.Model, j.Scale, j.Batch, j.Level, j.Streams, j.Workers, j.Fabric)
}
