package serve

import (
	"context"
	"testing"
)

// TestSoakConcurrentTenantsMatchSolo is the multi-tenant soak: many
// concurrent tenants hammer one server — and therefore one shared profile
// store — with a mixed rotation of shapes, twice. The guarantees under
// test, all under the race detector via `make race`:
//
//  1. Sharing the store never changes results: every completed job's wired
//     mini-batch time equals the solo baseline of its shape (a fresh
//     server, one job) exactly — not within the 0.1% gate, byte-identical.
//  2. Warm starts are free but faithful: zero gate violations, zero warm
//     delta.
//  3. The second, fully-warm pass scores a 100% hit rate (every signature
//     completed in pass one), pushing the cumulative rate past the 50%
//     serving target.
func TestSoakConcurrentTenantsMatchSolo(t *testing.T) {
	tenants, jobs := 16, 4
	if testing.Short() {
		tenants, jobs = 8, 2 // the -race CI lane runs -short
	}
	mix := DefaultMix()

	// Solo ground truth: each distinct shape on its own private server.
	solo := map[string]float64{}
	for _, j := range mix {
		jd, err := j.withDefaults()
		if err != nil {
			t.Fatalf("mix shape invalid: %v", err)
		}
		if _, done := solo[jd.Signature()]; done {
			continue
		}
		res, err := NewServer(Config{}).Submit(context.Background(), j, nil)
		if err != nil {
			t.Fatalf("solo %s failed: %v", jd.Signature(), err)
		}
		solo[res.Signature] = res.WiredUs
	}

	shared := NewServer(Config{MaxInFlight: 4, MaxQueue: tenants * jobs})
	cfg := LoadConfig{Tenants: tenants, JobsPerTenant: jobs, Mix: mix}

	pass1, err := RunLoad(context.Background(), shared, cfg)
	if err != nil {
		t.Fatalf("pass 1: %v", err)
	}
	if pass1.Completed != tenants*jobs || pass1.Errors != 0 ||
		pass1.RejectedQueueFull != 0 || pass1.RejectedDraining != 0 {
		t.Fatalf("pass 1 not fully served: %+v", pass1)
	}
	if pass1.MaxWarmDeltaPct != 0 || pass1.GateViolations != 0 {
		t.Fatalf("pass 1 warm results drifted: max delta %v%%, %d gate violations",
			pass1.MaxWarmDeltaPct, pass1.GateViolations)
	}
	for sig, wired := range pass1.ColdWiredUs {
		if want, ok := solo[sig]; !ok || wired != want {
			t.Fatalf("shared cold wired %v for %s, solo says %v", wired, sig, want)
		}
	}
	if pass1.WarmHits+pass1.WarmMisses != pass1.Completed {
		t.Fatalf("warm split %d+%d != completed %d", pass1.WarmHits, pass1.WarmMisses, pass1.Completed)
	}

	// Pass 2 on the now-fully-warm store: every job must warm-start with
	// zero trials of its own and the identical wired time.
	pass2, err := RunLoad(context.Background(), shared, cfg)
	if err != nil {
		t.Fatalf("pass 2: %v", err)
	}
	if pass2.Completed != tenants*jobs || pass2.Errors != 0 {
		t.Fatalf("pass 2 not fully served: %+v", pass2)
	}
	if pass2.WarmHits != pass2.Completed || pass2.HitRate != 1 {
		t.Fatalf("pass 2 hit rate %v (%d/%d), want 1.0", pass2.HitRate, pass2.WarmHits, pass2.Completed)
	}
	if pass2.Trials != 0 {
		t.Fatalf("pass 2 ran %d exploration trials, want 0 (fully warm)", pass2.Trials)
	}
	if pass2.MaxWarmDeltaPct != 0 {
		t.Fatalf("pass 2 warm delta %v%%, want exactly 0", pass2.MaxWarmDeltaPct)
	}

	st := shared.StatsSnapshot()
	total := st.WarmHits + st.WarmMisses
	if rate := st.WarmHits / total; rate < 0.5 {
		t.Fatalf("cumulative warm hit rate %v, want >= 0.5", rate)
	}
	if len(st.Signatures) != len(solo) {
		t.Fatalf("server tracks %d signatures, want %d", len(st.Signatures), len(solo))
	}
}

// TestSoakSameShapeStampede: every tenant submits the *same* shape at once
// — the worst case for the shared store, with concurrent cold explorations
// racing to record the same keys. First-measurement-wins plus a
// deterministic substrate means every session must still wire the
// identical schedule.
func TestSoakSameShapeStampede(t *testing.T) {
	tenants := 12
	if testing.Short() {
		tenants = 6
	}
	job := Job{Model: "sublstm", Level: "FK"}
	jd, _ := job.withDefaults()

	baseline, err := NewServer(Config{}).Submit(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("solo baseline: %v", err)
	}

	shared := NewServer(Config{MaxInFlight: 4, MaxQueue: tenants})
	rep, err := RunLoad(context.Background(), shared, LoadConfig{
		Tenants: tenants, JobsPerTenant: 1, Mix: []Job{job},
	})
	if err != nil {
		t.Fatalf("stampede: %v", err)
	}
	if rep.Completed != tenants || rep.Errors != 0 {
		t.Fatalf("stampede not fully served: %+v", rep)
	}
	if rep.MaxWarmDeltaPct != 0 || rep.GateViolations != 0 {
		t.Fatalf("stampede warm drift: %+v", rep)
	}
	if wired, ok := rep.ColdWiredUs[jd.Signature()]; !ok || wired != baseline.WiredUs {
		t.Fatalf("stampede cold wired %v, solo %v", wired, baseline.WiredUs)
	}
}
