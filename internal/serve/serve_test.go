package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestJobValidationRejectsWithValidChoices(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error, naming the valid choices
	}{
		{"not json", `nope`, "bad job JSON"},
		{"trailing garbage", `{"model":"sublstm"} extra`, "trailing data"},
		{"unknown field", `{"model":"sublstm","turbo":true}`, "bad job JSON"},
		{"unknown model", `{"model":"resnet50"}`, "valid models: attlstm, gnmt, milstm, rhn, scrnn, stackedlstm, sublstm"},
		{"unknown scale", `{"model":"sublstm","scale":"huge"}`, "valid scales: default, tiny"},
		{"unknown level", `{"model":"sublstm","level":"FX"}`, "valid levels: All, F, FK, FKS"},
		{"unknown fabric", `{"model":"sublstm","workers":2,"fabric":"infiniband"}`, "valid fabrics: nvlink1, pcie3"},
		{"batch too big", `{"model":"sublstm","batch":100000}`, "valid: 1..512"},
		{"negative batch", `{"model":"sublstm","batch":-3}`, "valid: 1..512"},
		{"workers too big", `{"model":"sublstm","workers":64}`, "valid: 1..8"},
		{"streams too big", `{"model":"sublstm","streams":99}`, "valid: 0..8"},
		{"steps too big", `{"model":"sublstm","steps":1000}`, "valid: 1..64"},
		{"tenant hash", `{"model":"sublstm","tenant":"a#b"}`, "must not contain"},
		{"tenant huge", `{"model":"sublstm","tenant":"` + strings.Repeat("x", 200) + `"}`, "longer than 64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJob([]byte(tc.body))
			if err == nil {
				t.Fatalf("ParseJob(%q) accepted, want rejection", tc.body)
			}
			var ve *ValidationError
			if ok := AsValidation(err, &ve); !ok {
				t.Fatalf("ParseJob(%q) error %T, want *ValidationError", tc.body, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseJob(%q) error %q does not name valid choices %q", tc.body, err, tc.want)
			}
		})
	}
}

func TestJobDefaultsAndSignature(t *testing.T) {
	j, err := ParseJob([]byte(`{"model":"sublstm"}`))
	if err != nil {
		t.Fatalf("minimal job rejected: %v", err)
	}
	if j.Tenant != "anon" || j.Scale != "tiny" || j.Batch != 4 || j.Level != "FK" ||
		j.Workers != 1 || j.Fabric != "" || j.Steps != 1 {
		t.Fatalf("defaults wrong: %+v", j)
	}
	want := "model=sublstm;scale=tiny;batch=4;level=FK;streams=0;workers=1;fabric=;"
	if got := j.Signature(); got != want {
		t.Fatalf("Signature() = %q, want %q", got, want)
	}

	// Distributed defaults: fabric appears only with workers >= 2.
	d, err := ParseJob([]byte(`{"model":"scrnn","workers":2}`))
	if err != nil {
		t.Fatalf("workers job rejected: %v", err)
	}
	if d.Fabric != "pcie3" {
		t.Fatalf("workers>=2 default fabric = %q, want pcie3", d.Fabric)
	}
	// A fabric on a single-worker job is validated, then dropped from the
	// signature: it cannot split otherwise-identical shapes.
	s1, err := ParseJob([]byte(`{"model":"scrnn","fabric":"nvlink1"}`))
	if err != nil {
		t.Fatalf("single-worker fabric rejected: %v", err)
	}
	s2, _ := ParseJob([]byte(`{"model":"scrnn"}`))
	if s1.Signature() != s2.Signature() {
		t.Fatalf("idle fabric split signatures: %q vs %q", s1.Signature(), s2.Signature())
	}

	// The tenant must never leak into the signature (cross-tenant reuse).
	a, _ := ParseJob([]byte(`{"model":"sublstm","tenant":"alice"}`))
	b, _ := ParseJob([]byte(`{"model":"sublstm","tenant":"bob"}`))
	if a.Signature() != b.Signature() {
		t.Fatalf("tenant leaked into signature: %q vs %q", a.Signature(), b.Signature())
	}

	// No signature may be a prefix of a different shape's (eviction works
	// by prefix).
	p1, _ := (Job{Model: "sublstm", Batch: 1}).withDefaults()
	p2, _ := (Job{Model: "sublstm", Batch: 12}).withDefaults()
	if strings.HasPrefix(p2.Signature(), p1.Signature()) {
		t.Fatalf("signature %q is a prefix of %q", p1.Signature(), p2.Signature())
	}
}

// AsValidation adapts errors.As for the test table.
func AsValidation(err error, target **ValidationError) bool {
	ve, ok := err.(*ValidationError)
	if ok {
		*target = ve
	}
	return ok
}

// TestSubmitColdThenWarm is the service's core guarantee: the first job of
// a shape explores cold; any later job of the same shape — from any tenant
// — warm-starts off the fleet store, converges with zero trials of its own,
// and wires the exact same schedule.
func TestSubmitColdThenWarm(t *testing.T) {
	s := NewServer(Config{})
	job := Job{Tenant: "alice", Model: "sublstm", Level: "FK"}

	var events []Event
	cold, err := s.Submit(context.Background(), job, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("cold submit failed: %v", err)
	}
	if cold.WarmStart {
		t.Fatal("first job of a shape reported WarmStart")
	}
	if cold.Trials == 0 {
		t.Fatal("cold job reported zero exploration trials")
	}
	if cold.WiredUs <= 0 {
		t.Fatalf("cold WiredUs = %v, want > 0", cold.WiredUs)
	}
	if len(events) < 3 || events[0].Type != "queued" || events[1].Type != "start" ||
		events[len(events)-1].Type != "result" {
		t.Fatalf("cold event stream malformed: %d events, first %q, last %q",
			len(events), events[0].Type, events[len(events)-1].Type)
	}
	trials, wired := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case "trial":
			trials++
		case "wired":
			wired++
		}
	}
	if trials != cold.Trials || wired != 1 {
		t.Fatalf("stream had %d trial / %d wired events, want %d / 1", trials, wired, cold.Trials)
	}

	job.Tenant = "bob"
	warm, err := s.Submit(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("warm submit failed: %v", err)
	}
	if !warm.WarmStart {
		t.Fatal("second job of the shape did not warm-start")
	}
	if warm.Trials != 0 {
		t.Fatalf("warm job ran %d trials, want 0", warm.Trials)
	}
	if warm.WiredUs != cold.WiredUs {
		t.Fatalf("warm wired %v != cold wired %v (must be byte-identical)", warm.WiredUs, cold.WiredUs)
	}
	if warm.WarmDeltaPct != 0 {
		t.Fatalf("WarmDeltaPct = %v, want exactly 0", warm.WarmDeltaPct)
	}
	if warm.ColdWiredUs != cold.WiredUs {
		t.Fatalf("warm ColdWiredUs = %v, want %v", warm.ColdWiredUs, cold.WiredUs)
	}

	st := s.StatsSnapshot()
	if st.WarmHits != 1 || st.WarmMisses != 1 || st.Completed != 2 {
		t.Fatalf("stats = hits %v misses %v completed %v, want 1/1/2", st.WarmHits, st.WarmMisses, st.Completed)
	}
	if st.WarmHitRate != 0.5 {
		t.Fatalf("WarmHitRate = %v, want 0.5", st.WarmHitRate)
	}
	if len(st.Signatures) != 1 || !st.Signatures[0].Completed || st.Signatures[0].ColdWiredUs != cold.WiredUs {
		t.Fatalf("signature stats wrong: %+v", st.Signatures)
	}
}

// TestSharedStoreDoesNotPerturbResults: a shape explored on a busy shared
// server must wire the same schedule and the same mini-batch time as the
// same shape explored solo on a fresh server — the shared store may only
// accelerate, never change results.
func TestSharedStoreDoesNotPerturbResults(t *testing.T) {
	jobs := []Job{
		{Model: "sublstm", Level: "FK"},
		{Model: "scrnn", Level: "F"},
		{Model: "scrnn", Level: "FK", Workers: 2},
	}
	solo := map[string]float64{}
	for _, j := range jobs {
		s := NewServer(Config{})
		res, err := s.Submit(context.Background(), j, nil)
		if err != nil {
			t.Fatalf("solo %+v failed: %v", j, err)
		}
		solo[res.Signature] = res.WiredUs
	}
	shared := NewServer(Config{})
	for round := 0; round < 2; round++ {
		for _, j := range jobs {
			res, err := shared.Submit(context.Background(), j, nil)
			if err != nil {
				t.Fatalf("shared %+v failed: %v", j, err)
			}
			if res.WiredUs != solo[res.Signature] {
				t.Fatalf("round %d %s: shared wired %v != solo wired %v",
					round, res.Signature, res.WiredUs, solo[res.Signature])
			}
			if round == 1 && !res.WarmStart {
				t.Fatalf("round 1 %s did not warm-start", res.Signature)
			}
		}
	}
}

// TestProfileSnapshotSeedsWarmStarts: exporting a fleet snapshot and
// importing it into a fresh server transfers the warmth — the import-seeded
// server converges the shape with zero trials and the identical wired time.
func TestProfileSnapshotSeedsWarmStarts(t *testing.T) {
	a := NewServer(Config{})
	job := Job{Model: "milstm", Level: "FK"}
	cold, err := a.Submit(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("cold submit failed: %v", err)
	}

	var snap bytes.Buffer
	if err := a.Fleet().Save(&snap); err != nil {
		t.Fatalf("snapshot export failed: %v", err)
	}
	b := NewServer(Config{})
	if err := b.Fleet().Load(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("snapshot import failed: %v", err)
	}
	if b.Fleet().Len() != a.Fleet().Len() {
		t.Fatalf("import kept %d keys, want %d", b.Fleet().Len(), a.Fleet().Len())
	}
	warm, err := b.Submit(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("seeded submit failed: %v", err)
	}
	if !warm.WarmStart || warm.Trials != 0 {
		t.Fatalf("seeded job: WarmStart=%v Trials=%d, want warm with 0 trials", warm.WarmStart, warm.Trials)
	}
	if warm.WiredUs != cold.WiredUs {
		t.Fatalf("seeded wired %v != origin wired %v", warm.WiredUs, cold.WiredUs)
	}
}

// TestPriorGuidedJobs covers the per-tenant cost-model path end to end
// (docs/COSTMODEL.md): every session trains its tenant's model, an opted-in
// job of a *neighbour* shape is ranked/pruned by it without changing the
// wired result, an opted-in job from a tenant with no history degrades to
// exactly cold behaviour, and the prior-quality rollup lands in Stats.
func TestPriorGuidedJobs(t *testing.T) {
	teach := Job{Tenant: "alice", Model: "sublstm", Level: "FK", Batch: 4}
	target := Job{Tenant: "alice", Model: "sublstm", Level: "FK", Batch: 8}

	// Cold reference for the target shape, on a fresh server.
	ref := NewServer(Config{})
	cold, err := ref.Submit(context.Background(), target, nil)
	if err != nil {
		t.Fatalf("cold reference failed: %v", err)
	}

	s := NewServer(Config{})
	if _, err := s.Submit(context.Background(), teach, nil); err != nil {
		t.Fatalf("teacher job failed: %v", err)
	}

	// Same tenant, neighbour shape (batch 8 vs 4 — a different signature, so
	// no fleet-store warm start), opted into guidance: every prediction comes
	// through the model's neighbour-shape backoff.
	guided := target
	guided.Prior = true
	res, err := s.Submit(context.Background(), guided, nil)
	if err != nil {
		t.Fatalf("guided submit failed: %v", err)
	}
	if res.WarmStart {
		t.Fatal("guided job warm-started; the shapes must differ for this test")
	}
	if !res.Prior {
		t.Fatal("result did not echo the prior opt-in")
	}
	if res.PriorHits+res.PriorMisses == 0 && res.PriorPruned == 0 {
		t.Fatalf("guided job shows no model engagement: %+v", res)
	}
	if res.Trials > cold.Trials {
		t.Fatalf("guided exploration took %d trials, cold took %d", res.Trials, cold.Trials)
	}
	// The serving guarantee extends to guided jobs: guidance may only change
	// the path to the answer, never the answer.
	if res.WiredUs != cold.WiredUs {
		t.Fatalf("guided wired %v != cold wired %v", res.WiredUs, cold.WiredUs)
	}

	// A tenant with no history opting in: the model starts empty but trains
	// online from the session's own early trials, so later variables still
	// get (self-)guidance. The invariant is safety, not inertness: the wired
	// result must match cold exactly.
	fresh := Job{Tenant: "carol", Model: "sublstm", Level: "FK", Batch: 8, Prior: true}
	f := NewServer(Config{})
	fres, err := f.Submit(context.Background(), fresh, nil)
	if err != nil {
		t.Fatalf("fresh-tenant guided submit failed: %v", err)
	}
	if fres.WiredUs != cold.WiredUs {
		t.Fatalf("no-history guided wired %v != cold wired %v", fres.WiredUs, cold.WiredUs)
	}
	if fres.Trials > cold.Trials {
		t.Fatalf("no-history guided exploration took %d trials, cold took %d", fres.Trials, cold.Trials)
	}

	// Stats rollup: the guided job and the model sizes are visible.
	st := s.StatsSnapshot()
	if st.PriorJobs != 1 {
		t.Fatalf("PriorJobs = %v, want 1", st.PriorJobs)
	}
	if st.PriorHits != float64(res.PriorHits) || st.PriorMisses != float64(res.PriorMisses) ||
		st.PriorPruned != float64(res.PriorPruned) {
		t.Fatalf("stats prior counters %v/%v/%v do not match result %d/%d/%d",
			st.PriorHits, st.PriorMisses, st.PriorPruned, res.PriorHits, res.PriorMisses, res.PriorPruned)
	}
	if n := st.PriorHits + st.PriorMisses; n > 0 && st.PriorHitRate != st.PriorHits/n {
		t.Fatalf("PriorHitRate = %v, want %v", st.PriorHitRate, st.PriorHits/n)
	}
	if st.ModelTenants != 1 {
		t.Fatalf("ModelTenants = %d, want 1 (alice)", st.ModelTenants)
	}
	if st.ModelUpdates == 0 {
		t.Fatal("ModelUpdates = 0 after two explored sessions")
	}
}

// TestDefaultJobsUnchangedByTenantModel: a default (non-Prior) job must be
// byte-identical whether or not its tenant has a trained cost model —
// ModeTrain only learns, it never plans, so the fleet's exact-reuse
// guarantees hold with no opt-in.
func TestDefaultJobsUnchangedByTenantModel(t *testing.T) {
	target := Job{Tenant: "alice", Model: "scrnn", Level: "FK", Batch: 8}

	ref := NewServer(Config{})
	cold, err := ref.Submit(context.Background(), target, nil)
	if err != nil {
		t.Fatalf("reference failed: %v", err)
	}

	s := NewServer(Config{})
	// Train alice's model on two neighbour shapes first.
	for _, b := range []int{2, 4} {
		j := target
		j.Batch = b
		if _, err := s.Submit(context.Background(), j, nil); err != nil {
			t.Fatalf("teacher batch %d failed: %v", b, err)
		}
	}
	res, err := s.Submit(context.Background(), target, nil)
	if err != nil {
		t.Fatalf("default submit failed: %v", err)
	}
	if res.Trials != cold.Trials || res.WiredUs != cold.WiredUs {
		t.Fatalf("default job perturbed by tenant model: %d trials / %v µs, want %d / %v",
			res.Trials, res.WiredUs, cold.Trials, cold.WiredUs)
	}
	if res.Prior || res.PriorHits+res.PriorMisses+res.PriorPruned != 0 {
		t.Fatalf("default job reported prior activity: %+v", res)
	}
	if st := s.StatsSnapshot(); st.PriorJobs != 0 {
		t.Fatalf("PriorJobs = %v after default-only jobs, want 0", st.PriorJobs)
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: streaming submit,
// single-shot submit, stats, metrics, health and the profile round trip —
// through a real HTTP server and the package's own client.
func TestHTTPEndToEnd(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Streaming client: events arrive, result matches.
	cl := &Client{BaseURL: ts.URL, Stream: true}
	var events []Event
	res, err := cl.Submit(context.Background(), Job{Tenant: "alice", Model: "sublstm"}, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("stream submit failed: %v", err)
	}
	if res.WarmStart || res.Trials == 0 {
		t.Fatalf("cold stream result wrong: %+v", res)
	}
	if len(events) == 0 || events[len(events)-1].Type != "result" {
		t.Fatalf("stream events malformed: %d events", len(events))
	}

	// Single-shot client: warm now, identical wired time.
	cl2 := &Client{BaseURL: ts.URL}
	res2, err := cl2.Submit(context.Background(), Job{Tenant: "bob", Model: "sublstm"}, nil)
	if err != nil {
		t.Fatalf("single-shot submit failed: %v", err)
	}
	if !res2.WarmStart || res2.WiredUs != res.WiredUs {
		t.Fatalf("warm single-shot: %+v, want warm with wired %v", res2, res.WiredUs)
	}

	// Invalid jobs come back 400 with the valid choices, as a
	// *ValidationError through the client.
	_, err = cl2.Submit(context.Background(), Job{Model: "resnet50"}, nil)
	var ve *ValidationError
	if !AsValidation(err, &ve) || !strings.Contains(err.Error(), "valid models") {
		t.Fatalf("invalid model error = %v, want ValidationError naming valid models", err)
	}

	// Stats reflect the two completions.
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if st.Completed != 2 || st.WarmHits != 1 {
		t.Fatalf("stats = %+v, want completed 2 warm hits 1", st)
	}

	// Metrics exposition carries the serve.* family.
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	prom := new(bytes.Buffer)
	_, _ = prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_jobs_completed 2", "serve_warm_hits 1", "serve_store_keys"} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, prom.String())
		}
	}

	// Health is OK while serving.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v status %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Profile round trip over HTTP: export, import into a second server,
	// and the seeded server warm-starts the shape.
	resp, err = ts.Client().Get(ts.URL + "/v1/profile")
	if err != nil {
		t.Fatalf("profile export: %v", err)
	}
	snap := new(bytes.Buffer)
	_, _ = snap.ReadFrom(resp.Body)
	resp.Body.Close()

	s2 := NewServer(Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Post(ts2.URL+"/v1/profile", "application/json", snap)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("profile import = %v status %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()
	res3, err := (&Client{BaseURL: ts2.URL}).Submit(context.Background(), Job{Model: "sublstm"}, nil)
	if err != nil {
		t.Fatalf("seeded submit failed: %v", err)
	}
	if !res3.WarmStart || res3.Trials != 0 || res3.WiredUs != res.WiredUs {
		t.Fatalf("HTTP-seeded job: %+v, want warm, 0 trials, wired %v", res3, res.WiredUs)
	}
}
