package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// LoadConfig shapes a load-generation run. The schedule is fully
// deterministic: tenant t's j-th job is Mix[(t*7+j) % len(Mix)] — a fixed
// stride that interleaves every shape across tenants — so two runs of the
// same config submit exactly the same multiset of jobs.
type LoadConfig struct {
	// Tenants is the number of concurrent tenants (default 8). Each runs
	// its jobs sequentially; tenants run against the server in parallel.
	Tenants int
	// JobsPerTenant is each tenant's job count (default 4).
	JobsPerTenant int
	// Mix is the job-shape rotation (DefaultMix() when empty). Tenant
	// names in the mix are overwritten with the generated tenant id.
	Mix []Job
	// GatePct is the warm-result acceptance gate: a warm-started job whose
	// wired time differs from the signature's cold baseline by more than
	// this percentage counts as a GateViolation (default 0.1, the serving
	// guarantee).
	GatePct float64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 4
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.GatePct <= 0 {
		c.GatePct = 0.1
	}
	return c
}

// DefaultMix is the standard multi-tenant shape rotation: three zoo models
// across adaptation levels, batch sizes, stream counts and data-parallel
// degrees — eight distinct signatures, all tiny scale so a load run is
// seconds, not hours.
func DefaultMix() []Job {
	return []Job{
		{Model: "sublstm", Level: "FK"},
		{Model: "scrnn", Level: "F"},
		{Model: "milstm", Level: "FK"},
		{Model: "sublstm", Level: "F", Batch: 8},
		{Model: "scrnn", Level: "FK", Workers: 2},
		{Model: "sublstm", Level: "FK", Workers: 2, Fabric: "nvlink1"},
		{Model: "milstm", Level: "F", Batch: 2},
		{Model: "scrnn", Level: "FK", Streams: 4},
	}
}

// LoadReport aggregates a load run. Counts are deterministic for a given
// (server config, load config) pair; which tenant scored the warm hits is
// scheduling-dependent, their total split cold/warm is not once every
// signature completes cold exactly once (no eviction mid-run).
type LoadReport struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	// RejectedQueueFull / RejectedDraining count admission bounces;
	// Errors counts everything else (with FirstError as the sample).
	RejectedQueueFull int    `json:"rejected_queue_full"`
	RejectedDraining  int    `json:"rejected_draining"`
	Errors            int    `json:"errors"`
	FirstError        string `json:"first_error,omitempty"`
	// WarmHits / WarmMisses split the completed jobs; HitRate is the warm
	// share of completions.
	WarmHits   int     `json:"warm_hits"`
	WarmMisses int     `json:"warm_misses"`
	HitRate    float64 `json:"hit_rate"`
	// MaxWarmDeltaPct is the worst warm-vs-cold wired-time deviation seen;
	// GateViolations counts warm results beyond GatePct.
	MaxWarmDeltaPct float64 `json:"max_warm_delta_pct"`
	GateViolations  int     `json:"gate_violations"`
	// Trials sums exploration mini-batches across completions; SimTimeUs
	// sums simulated time.
	Trials    int     `json:"trials"`
	SimTimeUs float64 `json:"sim_time_us"`
	// ColdWiredUs maps each signature to its cold-exploration wired
	// mini-batch time — the deterministic ground truth of the run.
	ColdWiredUs map[string]float64 `json:"cold_wired_us"`
}

// Signatures returns the report's signatures, sorted.
func (r *LoadReport) Signatures() []string {
	out := make([]string, 0, len(r.ColdWiredUs))
	for sig := range r.ColdWiredUs { // nodeterm:ok sorted below
		out = append(out, sig)
	}
	sort.Strings(out)
	return out
}

// RunLoad drives cfg.Tenants concurrent tenants against sub (an in-process
// *Server or a *Client) and aggregates the outcome. It returns an error
// only for setup problems; per-job failures are counted in the report.
func RunLoad(ctx context.Context, sub Submitter, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	for i, j := range cfg.Mix {
		if _, err := j.withDefaults(); err != nil {
			return nil, fmt.Errorf("serve: load mix entry %d: %w", i, err)
		}
	}
	rep := &LoadReport{ColdWiredUs: map[string]float64{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for jn := 0; jn < cfg.JobsPerTenant; jn++ {
				job := cfg.Mix[(t*7+jn)%len(cfg.Mix)]
				job.Tenant = fmt.Sprintf("tenant-%03d", t)
				res, err := sub.Submit(ctx, job, nil)
				mu.Lock()
				rep.Submitted++
				switch {
				case err == nil:
					rep.Completed++
					rep.Trials += res.Trials
					rep.SimTimeUs += res.SimTimeUs
					if res.WarmStart {
						rep.WarmHits++
						if res.WarmDeltaPct > rep.MaxWarmDeltaPct {
							rep.MaxWarmDeltaPct = res.WarmDeltaPct
						}
						if res.WarmDeltaPct > cfg.GatePct {
							rep.GateViolations++
						}
					} else {
						rep.WarmMisses++
						// Concurrent cold explorations of one shape must
						// agree exactly; a split is a determinism breach.
						if prev, ok := rep.ColdWiredUs[res.Signature]; ok && prev != res.WiredUs {
							rep.GateViolations++
						}
						rep.ColdWiredUs[res.Signature] = res.WiredUs
					}
				case errors.Is(err, ErrQueueFull):
					rep.RejectedQueueFull++
				case errors.Is(err, ErrDraining):
					rep.RejectedDraining++
				default:
					rep.Errors++
					if rep.FirstError == "" {
						rep.FirstError = err.Error()
					}
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	if rep.Completed > 0 {
		rep.HitRate = float64(rep.WarmHits) / float64(rep.Completed)
	}
	return rep, nil
}
