package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMethodDiscipline(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/jobs"},
		{http.MethodPost, "/v1/stats"},
		{http.MethodDelete, "/v1/profile"},
		{http.MethodPost, "/metrics"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", c.method, c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s = %d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
	// Corrupt snapshot import is a 400, not a crash or a half-load.
	resp, err := ts.Client().Post(ts.URL+"/v1/profile", "application/json", strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatalf("corrupt import: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt import = %d, want 400", resp.StatusCode)
	}
	if s.Fleet().Len() != 0 {
		t.Fatalf("corrupt import half-loaded %d keys", s.Fleet().Len())
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{invalidf("nope"), http.StatusBadRequest},
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrDraining, http.StatusServiceUnavailable},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := httpStatus(c.err); got != c.want {
			t.Fatalf("httpStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestClientMapsRejections: the HTTP client must hand back the same
// sentinel errors an in-process caller gets, on both transports — status
// codes for single-shot, in-band error events for streams.
func TestClientMapsRejections(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blocker := submitAsync(s, context.Background(), "blocker")
	if got := <-started; got != "blocker" {
		t.Fatalf("first start = %q, want blocker", got)
	}

	// Queue full: 429 on the single-shot form.
	oneshot := &Client{BaseURL: ts.URL, HTTP: ts.Client()}
	if _, err := oneshot.Submit(context.Background(), Job{Model: "sublstm"}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("single-shot queue-full error = %v, want ErrQueueFull", err)
	}
	release <- nil
	if out := <-blocker; out.err != nil {
		t.Fatalf("blocker failed: %v", out.err)
	}

	// Draining: 503 single-shot, in-band "draining" event on the stream.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := oneshot.Submit(context.Background(), Job{Model: "sublstm"}, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("single-shot draining error = %v, want ErrDraining", err)
	}
	streamer := &Client{BaseURL: ts.URL, Stream: true}
	if _, err := streamer.Submit(context.Background(), Job{Model: "sublstm"}, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("stream draining error = %v, want ErrDraining", err)
	}
}

func TestNormalizeAndAccessors(t *testing.T) {
	j, err := (Job{Model: "sublstm", Workers: 2}).Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if j.Fabric != "pcie3" || j.Batch != 4 {
		t.Fatalf("Normalize defaults wrong: %+v", j)
	}
	if _, err := (Job{Model: "nope"}).Normalize(); err == nil {
		t.Fatal("Normalize accepted an unknown model")
	}
	s := NewServer(Config{})
	if s.Registry() == nil {
		t.Fatal("Registry() = nil")
	}
	rep := &LoadReport{ColdWiredUs: map[string]float64{"b;": 1, "a;": 2}}
	if sigs := rep.Signatures(); len(sigs) != 2 || sigs[0] != "a;" {
		t.Fatalf("Signatures() = %v, want sorted [a; b;]", sigs)
	}
}

func TestRunLoadRejectsBadMix(t *testing.T) {
	_, err := RunLoad(context.Background(), NewServer(Config{}), LoadConfig{
		Mix: []Job{{Model: "sublstm"}, {Model: "resnet50"}},
	})
	if err == nil || !strings.Contains(err.Error(), "load mix entry 1") {
		t.Fatalf("bad mix error = %v, want entry-1 rejection", err)
	}
}
