package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"

	"astra/internal/profile"
)

// newStubServer replaces the session executor with a channel-driven stub:
// each admitted job announces itself on started (its tenant name) and then
// blocks until the test sends its outcome on release — or its context dies.
// Every admission edge case below is driven by channel handoffs alone; no
// test sleeps.
func newStubServer(cfg Config) (s *Server, started chan string, release chan error) {
	s = NewServer(cfg)
	started = make(chan string)
	release = make(chan error)
	s.exec = func(ctx context.Context, j Job, sig string, emit func(Event)) (*sessionOutcome, error) {
		select {
		case started <- j.Tenant:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		select {
		case err := <-release:
			if err != nil {
				return nil, err
			}
			return &sessionOutcome{trials: 3, wiredUs: 100, simTimeUs: 500}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, started, release
}

// waitQueued spins (yielding) until the admission queue holds want jobs —
// bounded so a regression fails the test instead of hanging it.
func waitQueued(t *testing.T, s *Server, want int) {
	t.Helper()
	for i := 0; i < 1e8; i++ {
		if _, q := s.adm.Counts(); q == want {
			return
		}
		runtime.Gosched()
	}
	_, q := s.adm.Counts()
	t.Fatalf("admission queue stuck at %d, want %d", q, want)
}

type submitOutcome struct {
	res *Result
	err error
}

func submitAsync(s *Server, ctx context.Context, tenant string) chan submitOutcome {
	ch := make(chan submitOutcome, 1)
	go func() {
		res, err := s.Submit(ctx, Job{Tenant: tenant, Model: "sublstm"}, nil)
		ch <- submitOutcome{res, err}
	}()
	return ch
}

func TestAdmissionQueueFullRejects(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: 1})

	a := submitAsync(s, context.Background(), "a")
	if got := <-started; got != "a" {
		t.Fatalf("first start = %q, want a", got)
	}
	b := submitAsync(s, context.Background(), "b")
	waitQueued(t, s, 1)

	// The queue is at capacity: the next submission bounces immediately.
	if _, err := s.Submit(context.Background(), Job{Tenant: "c", Model: "sublstm"}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit error = %v, want ErrQueueFull", err)
	}
	if v := s.mRejQueue.Value(); v != 1 {
		t.Fatalf("rejected_queue_full = %v, want 1", v)
	}

	// The running and the queued job are unharmed.
	release <- nil
	if out := <-a; out.err != nil {
		t.Fatalf("job a failed: %v", out.err)
	}
	if got := <-started; got != "b" {
		t.Fatalf("second start = %q, want b", got)
	}
	release <- nil
	if out := <-b; out.err != nil {
		t.Fatalf("job b failed: %v", out.err)
	}
}

func TestAdmissionQueueIsFIFO(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: 8})
	a := submitAsync(s, context.Background(), "a")
	if got := <-started; got != "a" {
		t.Fatalf("first start = %q, want a", got)
	}
	// Queue b, c, d strictly in order (each enqueue is confirmed before
	// the next submission).
	outs := map[string]chan submitOutcome{}
	for i, tenant := range []string{"b", "c", "d"} {
		outs[tenant] = submitAsync(s, context.Background(), tenant)
		waitQueued(t, s, i+1)
	}
	release <- nil
	<-a
	for _, want := range []string{"b", "c", "d"} {
		if got := <-started; got != want {
			t.Fatalf("start order got %q, want %q", got, want)
		}
		release <- nil
		if out := <-outs[want]; out.err != nil {
			t.Fatalf("job %s failed: %v", want, out.err)
		}
	}
}

func TestClientDisconnectMidSession(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: 4})

	// Disconnect while the session runs: the context dies, the session
	// aborts, the slot frees for the next tenant.
	ctxA, cancelA := context.WithCancel(context.Background())
	a := submitAsync(s, ctxA, "a")
	if got := <-started; got != "a" {
		t.Fatalf("first start = %q, want a", got)
	}
	cancelA()
	if out := <-a; !errors.Is(out.err, context.Canceled) {
		t.Fatalf("disconnected job error = %v, want context.Canceled", out.err)
	}
	if v := s.mAborted.Value(); v != 1 {
		t.Fatalf("aborted = %v, want 1", v)
	}

	// Disconnect while queued: the waiter leaves the queue without ever
	// starting, and does not consume the slot.
	b := submitAsync(s, context.Background(), "b")
	if got := <-started; got != "b" {
		t.Fatalf("second start = %q, want b", got)
	}
	ctxC, cancelC := context.WithCancel(context.Background())
	c := submitAsync(s, ctxC, "c")
	waitQueued(t, s, 1)
	cancelC()
	if out := <-c; !errors.Is(out.err, context.Canceled) {
		t.Fatalf("queued-disconnect error = %v, want context.Canceled", out.err)
	}
	waitQueued(t, s, 0)
	// b is unaffected; after it, a fresh job still gets the slot.
	release <- nil
	if out := <-b; out.err != nil {
		t.Fatalf("job b failed: %v", out.err)
	}
	d := submitAsync(s, context.Background(), "d")
	if got := <-started; got != "d" {
		t.Fatalf("post-disconnect start = %q, want d", got)
	}
	release <- nil
	if out := <-d; out.err != nil {
		t.Fatalf("job d failed: %v", out.err)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := submitAsync(s, context.Background(), "a")
	if got := <-started; got != "a" {
		t.Fatalf("first start = %q, want a", got)
	}
	b := submitAsync(s, context.Background(), "b")
	waitQueued(t, s, 1)

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()

	// The queued job is bounced immediately — it never started, so no
	// work is lost.
	if out := <-b; !errors.Is(out.err, ErrDraining) {
		t.Fatalf("queued job during drain error = %v, want ErrDraining", out.err)
	}
	// New submissions are refused while draining.
	if _, err := s.Submit(context.Background(), Job{Tenant: "c", Model: "sublstm"}, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain error = %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false during drain")
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("healthz during drain = %v status %d, want 503", err, resp.StatusCode)
	}
	resp.Body.Close()

	// The in-flight job runs to completion and the drain then finishes.
	release <- nil
	if out := <-a; out.err != nil || out.res == nil {
		t.Fatalf("in-flight job during drain: %v, want clean completion", out.err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown returned %v, want nil", err)
	}
}

func TestDrainDeadlineExpires(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: 4})
	a := submitAsync(s, context.Background(), "a")
	if got := <-started; got != "a" {
		t.Fatalf("first start = %q, want a", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed: drain must not wait for a
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired drain error = %v, want context.Canceled", err)
	}
	// The in-flight job still finishes cleanly afterwards.
	release <- nil
	if out := <-a; out.err != nil {
		t.Fatalf("job a after failed drain: %v", out.err)
	}
}

// TestStreamQueueFullEvent: on the NDJSON stream the 200 status is already
// committed when admission rejects, so the rejection travels in-band as an
// error event with a machine-readable code — and the client maps it back to
// ErrQueueFull.
func TestStreamQueueFullEvent(t *testing.T) {
	s, started, release := newStubServer(Config{MaxInFlight: 1, MaxQueue: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := submitAsync(s, context.Background(), "a")
	if got := <-started; got != "a" {
		t.Fatalf("first start = %q, want a", got)
	}
	cl := &Client{BaseURL: ts.URL, Stream: true}
	var last Event
	_, err := cl.Submit(context.Background(), Job{Tenant: "b", Model: "sublstm"}, func(ev Event) { last = ev })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("stream submit error = %v, want ErrQueueFull", err)
	}
	if last.Type != "error" || last.Code != "queue_full" {
		t.Fatalf("terminal stream event = %+v, want error/queue_full", last)
	}
	release <- nil
	if out := <-a; out.err != nil {
		t.Fatalf("job a failed: %v", out.err)
	}
}

// TestEvictionUnderCeiling drives the fleet store over its key ceiling and
// checks the LRU-by-signature eviction: oldest completed signature goes
// first, signatures with active sessions are never evicted, and an evicted
// signature loses its warm baseline (the next job of that shape is cold).
func TestEvictionUnderCeiling(t *testing.T) {
	const keysPerJob = 6
	s := NewServer(Config{MaxInFlight: 2, MaxQueue: 8, MaxStoreKeys: 10})
	block := make(chan struct{})
	recorded := make(chan struct{})
	s.exec = func(ctx context.Context, j Job, sig string, emit func(Event)) (*sessionOutcome, error) {
		for i := 0; i < keysPerJob; i++ {
			s.fleet.Record(profile.K(sig, "v", fmt.Sprintf("%d", i)), float64(i))
		}
		if j.Tenant == "blocker" {
			close(recorded)
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &sessionOutcome{trials: 1, wiredUs: 50}, nil
	}

	sig := func(model string, batch int) string {
		j, err := (Job{Model: model, Batch: batch}).withDefaults()
		if err != nil {
			t.Fatalf("bad shape: %v", err)
		}
		return j.Signature()
	}

	// Job 1 (6 keys) fits; job 2 (12 total) crosses the ceiling and must
	// evict job 1's signature — the least recently used completed one.
	if _, err := s.Submit(context.Background(), Job{Model: "sublstm", Batch: 1}, nil); err != nil {
		t.Fatalf("job1: %v", err)
	}
	if n := s.fleet.Len(); n != keysPerJob {
		t.Fatalf("after job1: %d keys, want %d", n, keysPerJob)
	}
	if _, err := s.Submit(context.Background(), Job{Model: "sublstm", Batch: 2}, nil); err != nil {
		t.Fatalf("job2: %v", err)
	}
	if n := s.fleet.Len(); n != keysPerJob {
		t.Fatalf("after job2: %d keys, want %d (job1's signature evicted)", n, keysPerJob)
	}
	if s.fleet.Has(profile.K(sig("sublstm", 1), "v", "0")) {
		t.Fatal("evicted signature's keys still present")
	}
	if !s.fleet.Has(profile.K(sig("sublstm", 2), "v", "0")) {
		t.Fatal("surviving signature's keys gone")
	}
	if v := s.mEvictions.Value(); v != 1 {
		t.Fatalf("store_evictions = %v, want 1", v)
	}
	st := s.StatsSnapshot()
	if len(st.Signatures) != 1 || st.Signatures[0].Signature != sig("sublstm", 2) {
		t.Fatalf("signature table after eviction: %+v", st.Signatures)
	}

	// An active session's signature is sacrosanct: while "blocker" holds
	// batch=3 active, a completing job can only evict inactive completed
	// signatures — here its own, leaving the active keys untouched.
	blocker := submitAsync2(s, Job{Tenant: "blocker", Model: "sublstm", Batch: 3})
	<-recorded
	if _, err := s.Submit(context.Background(), Job{Model: "sublstm", Batch: 4}, nil); err != nil {
		t.Fatalf("job4: %v", err)
	}
	if !s.fleet.Has(profile.K(sig("sublstm", 3), "v", "0")) {
		t.Fatal("active signature was evicted")
	}
	close(block)
	if out := <-blocker; out.err != nil {
		t.Fatalf("blocker failed: %v", out.err)
	}
	if n, max := s.fleet.Len(), 10; n > max+keysPerJob {
		t.Fatalf("store far over ceiling: %d keys", n)
	}

	// The evicted shape resubmits cold: its warm baseline is gone.
	res, err := s.Submit(context.Background(), Job{Model: "sublstm", Batch: 1}, nil)
	if err != nil {
		t.Fatalf("re-submit after eviction: %v", err)
	}
	if res.WarmStart {
		t.Fatal("job of an evicted signature reported WarmStart")
	}
}

func submitAsync2(s *Server, j Job) chan submitOutcome {
	ch := make(chan submitOutcome, 1)
	go func() {
		res, err := s.Submit(context.Background(), j, nil)
		ch <- submitOutcome{res, err}
	}()
	return ch
}
