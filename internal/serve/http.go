package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxJobBytes bounds a job request body; real jobs are a few hundred bytes.
const maxJobBytes = 1 << 16

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs     submit a job; NDJSON event stream (?stream=0 for a
//	                  single JSON result). 400 invalid, 429 queue full,
//	                  503 draining.
//	GET  /v1/stats    point-in-time server stats (JSON).
//	GET  /v1/profile  fleet profile store snapshot (download).
//	POST /v1/profile  import a snapshot into the fleet store (merge;
//	                  live entries and counters are preserved).
//	GET  /metrics     Prometheus text exposition of the serve.* metrics.
//	GET  /healthz     200 "ok", or 503 "draining" during shutdown.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/profile", s.handleProfile)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// httpStatus maps a Submit error onto its transport status.
func httpStatus(err error) int {
	var ve *ValidationError
	switch {
	case errors.As(err, &ve):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "serve: POST a job to /v1/jobs", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBytes))
	if err != nil {
		http.Error(w, "serve: request body unreadable or over "+
			"64KiB", http.StatusBadRequest)
		return
	}
	job, err := ParseJob(body)
	if err != nil {
		s.mRejInvalid.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	stream := r.URL.Query().Get("stream") != "0"
	if !stream {
		// Single-shot: run the job, answer with the result object alone.
		res, err := s.Submit(r.Context(), job, nil)
		if err != nil {
			if r.Context().Err() != nil {
				return // client is gone; nothing to tell it
			}
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(res)
		return
	}

	// NDJSON stream: one event object per line, flushed as they happen, so
	// a tenant watches convergence live. Submit emits synchronously from
	// this goroutine, so writes need no locking; a vanished client cancels
	// r.Context() and the session aborts between steps.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if _, err := s.Submit(r.Context(), job, emit); err != nil && r.Context().Err() == nil {
		// The status line is already committed; the error event emitted by
		// Submit is the in-band signal. Rejections before the session
		// started (queue full / draining) never emitted one, so do it here.
		switch {
		case errors.Is(err, ErrQueueFull):
			emit(Event{Type: "error", Code: "queue_full", Error: err.Error()})
		case errors.Is(err, ErrDraining):
			emit(Event{Type: "error", Code: "draining", Error: err.Error()})
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "serve: GET /v1/stats", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.StatsSnapshot())
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		if err := s.fleet.Save(w); err != nil && r.Context().Err() == nil {
			http.Error(w, "serve: snapshot failed: "+err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPost:
		// Merge-mode import (set in NewServer): live entries win, fleet
		// hit/trial counters survive.
		if err := s.fleet.Load(http.MaxBytesReader(w, r.Body, 1<<30)); err != nil {
			http.Error(w, "serve: snapshot rejected: "+err.Error(), http.StatusBadRequest)
			return
		}
		s.updateGauges()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"store_keys": s.fleet.Len()})
	default:
		http.Error(w, "serve: GET or POST /v1/profile", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "serve: GET /metrics", http.StatusMethodNotAllowed)
		return
	}
	s.updateGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.cfg.Registry.WriteProm(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}
