package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission-control outcomes. Handlers map them onto HTTP statuses (429 for
// a full queue, 503 while draining).
var (
	// ErrQueueFull rejects a job because MaxInFlight sessions are running
	// and the wait queue is at MaxQueue.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining rejects a job because the server is shutting down.
	ErrDraining = errors.New("serve: server draining")
)

// admission is a bounded-concurrency gate with a fair FIFO wait queue. It
// is deliberately timer-free: waiters block on channels and give up only
// through their context, so tests drive every edge case without sleeping.
type admission struct {
	mu       sync.Mutex
	max      int
	maxQueue int
	inflight int
	queue    []chan error // FIFO; a waiter owns a 1-buffered channel
	closed   bool
	idle     chan struct{} // non-nil while a drain waits for inflight == 0
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{max: maxInFlight, maxQueue: maxQueue}
}

// Acquire blocks until an in-flight slot is granted, the queue overflows
// (ErrQueueFull), the server drains (ErrDraining) or ctx is cancelled.
// Queue order is strictly first-come-first-served.
func (a *admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrDraining
	}
	if a.inflight < a.max {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return ErrQueueFull
	}
	w := make(chan error, 1)
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case err := <-w:
		return err
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// A grant raced the cancellation: the slot is ours, so give it
		// back before reporting the cancel.
		if err := <-w; err == nil {
			a.Release()
		}
		return ctx.Err()
	}
}

// Release returns an in-flight slot, handing it to the oldest queued waiter
// if any.
func (a *admission) Release() {
	a.mu.Lock()
	if len(a.queue) > 0 && !a.closed {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		w <- nil // slot transfers; inflight count is unchanged
		return
	}
	a.inflight--
	if a.inflight == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
}

// Counts reports the current in-flight and queued totals.
func (a *admission) Counts() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, len(a.queue)
}

// Drain closes admission (new Acquires fail with ErrDraining), rejects
// every queued waiter, and blocks until the in-flight jobs release or ctx
// expires — the queued jobs never started, so rejecting them loses no work,
// while started jobs run to completion.
func (a *admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	a.closed = true
	queued := a.queue
	a.queue = nil
	var idle chan struct{}
	if a.inflight > 0 {
		if a.idle == nil {
			a.idle = make(chan struct{})
		}
		idle = a.idle
	}
	a.mu.Unlock()
	for _, w := range queued {
		w <- ErrDraining
	}
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
