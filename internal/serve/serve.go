// Package serve is Astra's exploration-as-a-service layer: a long-running
// multi-tenant session server that accepts wiring jobs (model / scale /
// preset / workers / fabric), runs each one on the existing wire.Session
// machinery, and streams back convergence events, metrics and the wired
// schedule.
//
// Every session shares one sharded profile.Index — the paper's §5 "shared
// profile store across jobs" taken to production scale. Each job's keys are
// namespaced under its shape signature (wire.SessionConfig.ProfileContext),
// so mixed tenants never collide, while a tenant submitting a shape the
// fleet has already measured finds every key present and warm-starts:
// exploration converges in zero trials and goes straight to the wired
// schedule. Determinism of the simulated substrate makes this reuse exact —
// a warm-started job wires the same schedule the cold exploration did.
//
// The server owns admission control (bounded in-flight sessions with a fair
// FIFO queue), per-tenant isolation (each session has its own explorer and
// policy state; only measurements are shared), snapshot eviction under a
// memory ceiling (least-recently-used signatures are dropped whole), and
// graceful shutdown that drains in-flight jobs.
package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"astra/internal/adapt"
	"astra/internal/costmodel"
	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/profile"
	"astra/internal/wire"
)

// Config sizes the server.
type Config struct {
	// MaxInFlight bounds concurrently exploring sessions (default 4).
	MaxInFlight int
	// MaxQueue bounds jobs waiting for an in-flight slot (default 64,
	// negative for no queue at all); beyond it submissions fail fast with
	// ErrQueueFull.
	MaxQueue int
	// MaxStoreKeys is the fleet profile store's memory ceiling, in stored
	// measurements (default 1 << 18). When a completed job pushes the
	// store above it, least-recently-used signatures are evicted whole
	// until the store fits (signatures with active sessions are never
	// evicted).
	MaxStoreKeys int
	// Registry receives the serve.* metrics (a fresh registry when nil);
	// expose it with obs.Registry.WriteProm.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxStoreKeys <= 0 {
		c.MaxStoreKeys = 1 << 18
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Event is one line of a job's progress stream.
type Event struct {
	// Type is "queued", "start", "trial", "wired", "result" or "error".
	Type       string  `json:"type"`
	Tenant     string  `json:"tenant,omitempty"`
	Signature  string  `json:"signature,omitempty"`
	WarmStart  bool    `json:"warm_start,omitempty"`
	Trial      int     `json:"trial,omitempty"`
	Step       int     `json:"step,omitempty"`
	BatchUs    float64 `json:"batch_us,omitempty"`
	FrozenVars int     `json:"frozen_vars,omitempty"`
	TotalVars  int     `json:"total_vars,omitempty"`
	// Code machine-tags an "error" event: "queue_full", "draining" or ""
	// (session failure / client cancel); stream clients map it back onto
	// the sentinel errors.
	Code   string  `json:"code,omitempty"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Result is a completed job's wired outcome.
type Result struct {
	Tenant    string `json:"tenant"`
	Signature string `json:"signature"`
	// WarmStart reports whether the fleet store had already completed
	// this signature when the job was admitted.
	WarmStart bool `json:"warm_start"`
	// Trials is the number of exploration mini-batches this session ran
	// itself (0 for a fully warm-started job).
	Trials int `json:"trials"`
	// WiredUs is the wired schedule's mini-batch time (the last wired
	// step's).
	WiredUs float64 `json:"wired_us"`
	// ColdWiredUs is the wired time of this signature's first (cold)
	// completion — the ground truth a warm-started result is gated
	// against.
	ColdWiredUs float64 `json:"cold_wired_us"`
	// WarmDeltaPct is |WiredUs−ColdWiredUs|/ColdWiredUs·100; the serving
	// guarantee holds it ≤ 0.1 (in practice it is exactly 0: the substrate
	// is deterministic).
	WarmDeltaPct float64 `json:"warm_delta_pct"`
	// SimTimeUs is the simulated time the session consumed end to end.
	SimTimeUs float64 `json:"sim_time_us"`
	// StoreKeys is the fleet store size after the job completed.
	StoreKeys int `json:"store_keys"`
	// FleetHitRate is the fleet store's cumulative lookup hit rate.
	FleetHitRate float64 `json:"fleet_hit_rate"`
	// Workers echoes the job's data-parallel degree.
	Workers int `json:"workers"`
	// Prior echoes whether the job opted into cost-model guidance; the
	// counters below score the model's plans over this session (see
	// docs/COSTMODEL.md). They are zero for default jobs: ModeTrain never
	// plans, it only learns.
	Prior       bool `json:"prior,omitempty"`
	PriorHits   int  `json:"prior_hits,omitempty"`
	PriorMisses int  `json:"prior_misses,omitempty"`
	PriorPruned int  `json:"prior_pruned,omitempty"`
}

// sessionOutcome is what one executed session reports back to Submit.
type sessionOutcome struct {
	trials    int
	wiredUs   float64
	simTimeUs float64
	prior     adapt.PriorStats
}

// sigState is the fleet store's per-signature bookkeeping.
type sigState struct {
	completed   bool
	coldWiredUs float64
	active      int   // sessions currently exploring this signature
	lastUsed    int64 // LRU tick of the last admission
}

// Server is the exploration service. Construct with NewServer; it is safe
// for concurrent use by any number of tenants.
type Server struct {
	cfg   Config
	fleet *profile.Index
	adm   *admission

	mu   sync.Mutex
	sigs map[string]*sigState
	seq  int64
	// priors holds one shared cost model per tenant namespace (see
	// docs/COSTMODEL.md): every session trains its tenant's model, and
	// sessions submitted with Job.Prior let it rank and prune exploration.
	// Bounded at maxPriorTenants; overflow tenants get a private throwaway
	// model so a tenant-name flood cannot grow server memory.
	priors map[string]*costmodel.Model

	// exec runs one admitted session; tests substitute it to drive
	// admission and eviction edge cases without real explorations.
	exec func(ctx context.Context, j Job, sig string, emit func(Event)) (*sessionOutcome, error)

	mAccepted, mCompleted, mAborted   *obs.Counter
	mRejQueue, mRejInvalid, mRejDrain *obs.Counter
	mWarmHits, mWarmMisses            *obs.Counter
	mEvictions, mEvictedKeys, mTrials *obs.Counter
	mInflight, mQueued                *obs.Gauge
	mStoreKeys, mStoreHitRate         *obs.Gauge
	mWiredUs                          *obs.Histogram

	mPriorJobs, mPriorHits    *obs.Counter
	mPriorMisses, mPriorPrune *obs.Counter
}

// maxPriorTenants bounds the per-tenant cost-model map.
const maxPriorTenants = 64

// NewServer builds a server with an empty fleet store.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		fleet:  profile.NewIndex(),
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		sigs:   map[string]*sigState{},
		priors: map[string]*costmodel.Model{},
	}
	// Mid-run snapshot imports must merge and preserve the fleet counters;
	// the historical replace+reset Load semantics would silently zero the
	// hit-rate metrics of a live server.
	s.fleet.SetLoadMode(profile.LoadMerge)
	s.exec = s.runSession
	reg := cfg.Registry
	s.fleet.Instrument(reg)
	s.mAccepted = reg.Counter("serve.jobs_accepted", "jobs admitted past admission control")
	s.mCompleted = reg.Counter("serve.jobs_completed", "jobs that returned a wired result")
	s.mAborted = reg.Counter("serve.jobs_aborted", "admitted jobs that failed or lost their client")
	s.mRejQueue = reg.Counter("serve.jobs_rejected_queue_full", "jobs rejected because the admission queue was full")
	s.mRejInvalid = reg.Counter("serve.jobs_rejected_invalid", "jobs rejected by request validation")
	s.mRejDrain = reg.Counter("serve.jobs_rejected_draining", "jobs rejected during graceful shutdown")
	s.mWarmHits = reg.Counter("serve.warm_hits", "completed jobs whose signature the fleet had already measured")
	s.mWarmMisses = reg.Counter("serve.warm_misses", "completed jobs that explored cold")
	s.mEvictions = reg.Counter("serve.store_evictions", "signatures evicted from the fleet store")
	s.mEvictedKeys = reg.Counter("serve.store_evicted_keys", "measurements dropped by fleet-store eviction")
	s.mTrials = reg.Counter("serve.trials", "exploration mini-batches run across all sessions")
	s.mInflight = reg.Gauge("serve.inflight", "sessions currently exploring")
	s.mQueued = reg.Gauge("serve.queued", "jobs waiting for an in-flight slot")
	s.mStoreKeys = reg.Gauge("serve.store_keys", "measurements in the fleet profile store")
	s.mStoreHitRate = reg.Gauge("serve.store_hit_rate", "fleet profile store lookup hit rate")
	s.mWiredUs = reg.Histogram("serve.wired_us", "wired mini-batch times of completed jobs")
	s.mPriorJobs = reg.Counter("serve.prior_jobs", "completed jobs that opted into cost-model guidance")
	s.mPriorHits = reg.Counter("serve.prior_hits", "freezes where the cost model's top prediction was the measured best")
	s.mPriorMisses = reg.Counter("serve.prior_misses", "freezes where the cost model's top prediction lost to a measurement")
	s.mPriorPrune = reg.Counter("serve.prior_pruned", "candidate measurements skipped by cost-model pruning")
	return s
}

// priorModel returns tenant's shared cost model, creating it on first use.
// Past maxPriorTenants distinct tenants, new tenants get a private model that
// is not retained — guidance still works within the session, but nothing
// accumulates, and server memory stays bounded.
func (s *Server) priorModel(tenant string) *costmodel.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.priors[tenant]; ok {
		return m
	}
	m := costmodel.NewModel()
	if len(s.priors) < maxPriorTenants {
		s.priors[tenant] = m
	}
	return m
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// Fleet returns the shared profile store (snapshot with Save; import with
// Load, which merges and preserves counters on a live server).
func (s *Server) Fleet() *profile.Index { return s.fleet }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.adm.mu.Lock()
	defer s.adm.mu.Unlock()
	return s.adm.closed
}

func (s *Server) updateGauges() {
	inflight, queued := s.adm.Counts()
	s.mInflight.Set(float64(inflight))
	s.mQueued.Set(float64(queued))
	s.mStoreKeys.Set(float64(s.fleet.Len()))
	s.mStoreHitRate.Set(s.fleet.HitRate())
}

// Submit validates, admits and runs one job, emitting progress events to
// emit (which may be nil). It blocks until the job completes, is rejected
// (ErrQueueFull, ErrDraining, *ValidationError) or ctx is cancelled — a
// cancelled ctx mid-session abandons the session (its measurements so far
// stay in the fleet store; they are exact and reusable).
func (s *Server) Submit(ctx context.Context, job Job, emit func(Event)) (*Result, error) {
	if emit == nil {
		emit = func(Event) {}
	}
	j, err := job.withDefaults()
	if err != nil {
		s.mRejInvalid.Inc()
		return nil, err
	}
	sig := j.Signature()
	emit(Event{Type: "queued", Tenant: j.Tenant, Signature: sig})
	if err := s.adm.Acquire(ctx); err != nil {
		switch err {
		case ErrQueueFull:
			s.mRejQueue.Inc()
		case ErrDraining:
			s.mRejDrain.Inc()
		}
		s.updateGauges()
		return nil, err
	}
	defer func() {
		s.adm.Release()
		s.updateGauges()
	}()
	s.mAccepted.Inc()
	s.updateGauges()

	s.mu.Lock()
	st := s.sigs[sig]
	if st == nil {
		st = &sigState{}
		s.sigs[sig] = st
	}
	warm := st.completed
	st.active++
	s.seq++
	st.lastUsed = s.seq
	s.mu.Unlock()

	emit(Event{Type: "start", Tenant: j.Tenant, Signature: sig, WarmStart: warm})
	out, err := s.exec(ctx, j, sig, emit)

	s.mu.Lock()
	st.active--
	if err == nil && !st.completed {
		st.completed = true
		st.coldWiredUs = out.wiredUs
	}
	var cold float64
	if err == nil {
		cold = st.coldWiredUs
	}
	s.mu.Unlock()

	if err != nil {
		s.mAborted.Inc()
		emit(Event{Type: "error", Tenant: j.Tenant, Signature: sig, Error: err.Error()})
		return nil, err
	}

	// A session that converged without a single exploration trial found
	// every key already in the fleet store — warm in effect even if this
	// server never completed the signature (e.g. a snapshot import seeded
	// it).
	if out.trials == 0 {
		warm = true
	}
	if warm {
		s.mWarmHits.Inc()
	} else {
		s.mWarmMisses.Inc()
	}
	s.mCompleted.Inc()
	s.mTrials.Add(float64(out.trials))
	s.mWiredUs.Observe(out.wiredUs)
	if j.Prior {
		s.mPriorJobs.Inc()
	}
	s.mPriorHits.Add(float64(out.prior.Hits))
	s.mPriorMisses.Add(float64(out.prior.Misses))
	s.mPriorPrune.Add(float64(out.prior.Pruned))
	s.maybeEvict()

	res := &Result{
		Tenant:       j.Tenant,
		Signature:    sig,
		WarmStart:    warm,
		Trials:       out.trials,
		WiredUs:      out.wiredUs,
		ColdWiredUs:  cold,
		SimTimeUs:    out.simTimeUs,
		StoreKeys:    s.fleet.Len(),
		FleetHitRate: s.fleet.HitRate(),
		Workers:      j.Workers,
		Prior:        j.Prior,
		PriorHits:    out.prior.Hits,
		PriorMisses:  out.prior.Misses,
		PriorPruned:  out.prior.Pruned,
	}
	if cold > 0 {
		res.WarmDeltaPct = 100 * math.Abs(out.wiredUs-cold) / cold
	}
	emit(Event{Type: "result", Tenant: j.Tenant, Signature: sig, Result: res})
	return res, nil
}

// runSession is the real executor: build the model, compile a session
// bound to the shared fleet store under the job's signature namespace,
// explore with per-trial events, then run the wired steps.
func (s *Server) runSession(ctx context.Context, j Job, sig string, emit func(Event)) (*sessionOutcome, error) {
	build, ok := models.Get(j.Model)
	if !ok {
		return nil, invalidf("unknown model %q", j.Model) // unreachable after validation
	}
	var mc models.Config
	if j.Scale == "tiny" {
		mc = models.TinyConfig(j.Model, j.Batch)
	} else {
		mc = models.DefaultConfig(j.Model, j.Batch)
	}
	m := build(mc)
	eopts := enumerate.PresetOptions(levels[j.Level])
	if j.Streams > 0 {
		eopts.NumStreams = j.Streams
	}
	var comm wire.CommConfig
	if j.Workers >= 2 {
		ic, _ := distsim.FabricByName(j.Fabric)
		comm = wire.CommConfig{
			Workers:    j.Workers,
			BytesPerUs: ic.BytesPerUs,
			LatencyUs:  ic.LatencyUs,
			Fabric:     ic.Name,
		}
		eopts.CommAdapt = true
		eopts.Workers = j.Workers
	}
	// Every session trains its tenant's cost model (ModeTrain plans nothing,
	// so default jobs behave exactly as before this model existed); a job
	// submitted with Prior lets the model rank and margin-prune candidates.
	mode := costmodel.ModeTrain
	if j.Prior {
		mode = costmodel.ModeFull
	}
	planner := costmodel.NewPlanner(s.priorModel(j.Tenant), costmodel.MetaFromSignature(sig),
		costmodel.PlannerConfig{Mode: mode})
	sess := wire.NewSession(m, wire.SessionConfig{
		Device:         gpusim.P100(),
		Options:        eopts,
		Runner:         wire.RunnerConfig{PerOpCPUUs: 2},
		Comm:           comm,
		Index:          s.fleet,
		ProfileContext: sig,
		Prior:          planner,
	})
	out := &sessionOutcome{}
	for !sess.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := sess.Step()
		out.simTimeUs += res.TotalUs
		frozen, total := 0, 0
		if sess.Exp != nil {
			frozen, total = sess.Exp.FrozenCount()
		}
		emit(Event{
			Type: "trial", Tenant: j.Tenant, Trial: sess.Trials,
			BatchUs: res.TotalUs, FrozenVars: frozen, TotalVars: total,
		})
	}
	if err := sess.Err(); err != nil {
		return nil, fmt.Errorf("serve: exploration failed: %w", err)
	}
	for i := 1; i <= j.Steps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := sess.Step()
		out.simTimeUs += res.TotalUs
		out.wiredUs = res.TotalUs
		emit(Event{Type: "wired", Tenant: j.Tenant, Step: i, BatchUs: res.TotalUs})
	}
	out.trials = sess.Trials
	if sess.Exp != nil {
		out.prior = sess.Exp.PriorStats()
	}
	return out, nil
}

// maybeEvict enforces the fleet store's memory ceiling: while the store is
// over MaxStoreKeys, the least-recently-used completed signature with no
// active sessions is evicted whole (its namespace prefix makes that one
// call). Evicted signatures lose their warm-start baseline; the next job of
// that shape explores cold and repopulates the store.
func (s *Server) maybeEvict() {
	if s.fleet.Len() <= s.cfg.MaxStoreKeys {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	type cand struct {
		sig  string
		used int64
	}
	var cands []cand
	for sig, st := range s.sigs { // nodeterm:ok sorted below before use
		if st.completed && st.active == 0 {
			cands = append(cands, cand{sig, st.lastUsed})
		}
	}
	sort.Slice(cands, func(i, k int) bool { return cands[i].used < cands[k].used })
	for _, c := range cands {
		if s.fleet.Len() <= s.cfg.MaxStoreKeys {
			break
		}
		delete(s.sigs, c.sig)
		n := s.fleet.EvictPrefix(c.sig)
		s.mEvictions.Inc()
		s.mEvictedKeys.Add(float64(n))
	}
	s.mStoreKeys.Set(float64(s.fleet.Len()))
}

// SigStats is one signature's entry in a Stats snapshot.
type SigStats struct {
	Signature   string  `json:"signature"`
	Completed   bool    `json:"completed"`
	ColdWiredUs float64 `json:"cold_wired_us"`
	Active      int     `json:"active"`
}

// Stats is a point-in-time view of the server.
type Stats struct {
	InFlight     int        `json:"inflight"`
	Queued       int        `json:"queued"`
	Draining     bool       `json:"draining"`
	StoreKeys    int        `json:"store_keys"`
	FleetHitRate float64    `json:"fleet_hit_rate"`
	Completed    float64    `json:"completed"`
	Aborted      float64    `json:"aborted"`
	WarmHits     float64    `json:"warm_hits"`
	WarmMisses   float64    `json:"warm_misses"`
	WarmHitRate  float64    `json:"warm_hit_rate"`
	Trials       float64    `json:"trials"`
	Signatures   []SigStats `json:"signatures"`
	// Prior-quality rollup across all sessions (see docs/COSTMODEL.md):
	// PriorHitRate is hits/(hits+misses) — how often the cost model's top
	// prediction was the measured best at freeze time. ModelTenants and
	// ModelUpdates size the per-tenant cost models (every session trains
	// one, whether or not it opted into guidance).
	PriorJobs    float64 `json:"prior_jobs"`
	PriorHits    float64 `json:"prior_hits"`
	PriorMisses  float64 `json:"prior_misses"`
	PriorHitRate float64 `json:"prior_hit_rate"`
	PriorPruned  float64 `json:"prior_pruned"`
	ModelTenants int     `json:"model_tenants"`
	ModelUpdates int64   `json:"model_updates"`
}

// StatsSnapshot captures the server's current state (signatures sorted).
func (s *Server) StatsSnapshot() Stats {
	inflight, queued := s.adm.Counts()
	st := Stats{
		InFlight:     inflight,
		Queued:       queued,
		Draining:     s.Draining(),
		StoreKeys:    s.fleet.Len(),
		FleetHitRate: s.fleet.HitRate(),
		Completed:    s.mCompleted.Value(),
		Aborted:      s.mAborted.Value(),
		WarmHits:     s.mWarmHits.Value(),
		WarmMisses:   s.mWarmMisses.Value(),
		Trials:       s.mTrials.Value(),
		PriorJobs:    s.mPriorJobs.Value(),
		PriorHits:    s.mPriorHits.Value(),
		PriorMisses:  s.mPriorMisses.Value(),
		PriorPruned:  s.mPriorPrune.Value(),
	}
	if n := st.WarmHits + st.WarmMisses; n > 0 {
		st.WarmHitRate = st.WarmHits / n
	}
	if n := st.PriorHits + st.PriorMisses; n > 0 {
		st.PriorHitRate = st.PriorHits / n
	}
	s.mu.Lock()
	st.ModelTenants = len(s.priors)
	for _, m := range s.priors { // nodeterm:ok order-independent sum
		st.ModelUpdates += m.Updates()
	}
	for sig, e := range s.sigs { // nodeterm:ok sorted below
		st.Signatures = append(st.Signatures, SigStats{
			Signature: sig, Completed: e.completed, ColdWiredUs: e.coldWiredUs, Active: e.active,
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Signatures, func(i, k int) bool { return st.Signatures[i].Signature < st.Signatures[k].Signature })
	return st
}

// Shutdown begins graceful shutdown: new submissions are rejected with
// ErrDraining, queued jobs are bounced (they never started, so no work is
// lost), and the call blocks until every in-flight session completes or ctx
// expires.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.adm.Drain(ctx)
	s.updateGauges()
	return err
}
