package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzServeRequest hardens the job intake: arbitrary bytes — hostile JSON,
// deep nesting, huge numbers, unicode, truncations — must either parse into
// a fully-validated job or come back as a *ValidationError that names the
// valid choices. Never a panic, and through the HTTP handler never a 5xx.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"model":"sublstm"}`))
	f.Add([]byte(`{"model":"sublstm","level":"FK","workers":2,"fabric":"nvlink1","steps":3}`))
	f.Add([]byte(`{"model":"resnet50"}`))
	f.Add([]byte(`{"model":"sublstm","batch":-1}`))
	f.Add([]byte(`{"model":"sublstm","batch":1e30}`))
	f.Add([]byte(`{"model":"sublstm","unknown_field":1}`))
	f.Add([]byte(`{"model":"sublstm"} {"model":"scrnn"}`))
	f.Add([]byte(`{"tenant":"` + strings.Repeat("№", 99) + `","model":"sublstm"}`))
	f.Add([]byte(`{"tenant":"a#b","model":"sublstm"}`))
	f.Add([]byte(`[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]`))
	f.Add([]byte(`{"model":{"nested":"object"}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\x01\x02"))

	// One stub-backed server shared by all fuzz iterations: valid jobs
	// must also survive the full HTTP round trip without real exploration.
	s := NewServer(Config{MaxInFlight: 4, MaxQueue: 1 << 16})
	s.exec = func(ctx context.Context, j Job, sig string, emit func(Event)) (*sessionOutcome, error) {
		return &sessionOutcome{trials: 1, wiredUs: 10}, nil
	}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := ParseJob(data)
		if err != nil {
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("ParseJob returned %T (%v), want *ValidationError", err, err)
			}
			if !strings.HasPrefix(err.Error(), "serve: ") || len(err.Error()) < 10 {
				t.Fatalf("rejection message unhelpful: %q", err.Error())
			}
		} else {
			// Accepted: every field must be inside its documented range and
			// the signature well-formed for prefix eviction.
			if j.Tenant == "" || len(j.Tenant) > maxTenantLen || strings.ContainsAny(j.Tenant, "#\n\r") {
				t.Fatalf("accepted job has bad tenant %q", j.Tenant)
			}
			if j.Batch < 1 || j.Batch > maxBatch || j.Workers < 1 || j.Workers > maxWorkers ||
				j.Steps < 1 || j.Steps > maxSteps || j.Streams < 0 || j.Streams > maxStreams {
				t.Fatalf("accepted job out of range: %+v", j)
			}
			if _, ok := levels[j.Level]; !ok {
				t.Fatalf("accepted job has bad level %q", j.Level)
			}
			if j.Workers == 1 && j.Fabric != "" {
				t.Fatalf("single-worker job kept fabric %q", j.Fabric)
			}
			sig := j.Signature()
			if !strings.HasSuffix(sig, ";") || !strings.HasPrefix(sig, "model=") {
				t.Fatalf("malformed signature %q", sig)
			}
		}

		// Same bytes through the HTTP intake: 200 for valid jobs (stub
		// executor), 4xx otherwise; a 5xx or a panic fails the fuzz.
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs?stream=0", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch {
		case rec.Code == http.StatusOK && err == nil:
		case rec.Code == http.StatusBadRequest && err != nil:
			if !strings.Contains(rec.Body.String(), "serve: ") {
				t.Fatalf("400 body lacks the validation message: %q", rec.Body.String())
			}
		default:
			t.Fatalf("HTTP intake: status %d with parse err %v\nbody: %s", rec.Code, err, rec.Body.String())
		}
	})
}
