package verify

import (
	"fmt"
	"sort"

	"astra/internal/graph"
	"astra/internal/memory"
)

// CheckStrategy verifies one allocation strategy against the graph's values
// and the contiguity requests it claims to satisfy: every value is placed
// inside the arena, no two buffers overlap (the training graph is static,
// so every buffer is live for the whole batch — any overlap is aliasing),
// and every satisfied request's block really is contiguous, members packed
// back-to-back in request order.
func CheckStrategy(s *memory.Strategy, values []*graph.Value, requests []memory.Request) *Report {
	r := &Report{}
	if s == nil {
		r.Add("alloc.place", "", "nil strategy")
		return r
	}

	type block struct {
		v      *graph.Value
		lo, hi int64
	}
	var blocks []block
	for _, v := range values {
		off, ok := s.Offset(v)
		if !ok {
			r.Add("alloc.place", "", fmt.Sprintf("strategy %s places no buffer for %s", s.Name, v))
			continue
		}
		bytes := int64(v.Shape.NumElements()) * 8
		if off < 0 || off+bytes > s.ArenaSize() {
			r.Add("alloc.place", "", fmt.Sprintf("strategy %s places %s at [%d,%d) outside arena of %d bytes", s.Name, v, off, off+bytes, s.ArenaSize()))
		}
		if bytes > 0 {
			blocks = append(blocks, block{v: v, lo: off, hi: off + bytes})
		}
	}

	// Aliasing: sort by offset and check each neighbour pair — with all
	// buffers live simultaneously, interval overlap is exactly aliasing.
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].lo != blocks[j].lo {
			return blocks[i].lo < blocks[j].lo
		}
		return blocks[i].v.ID < blocks[j].v.ID
	})
	for i := 1; i < len(blocks); i++ {
		prev, cur := blocks[i-1], blocks[i]
		if cur.lo < prev.hi {
			r.Add("alloc.alias", "", fmt.Sprintf("strategy %s: %s [%d,%d) overlaps %s [%d,%d)", s.Name, prev.v, prev.lo, prev.hi, cur.v, cur.lo, cur.hi))
		}
	}

	// Contiguity claims: a satisfied request's members must sit back-to-back
	// in request order. The custom-wirer skips gather copies on the strength
	// of this claim, so a false claim silently feeds a fused GEMM garbage.
	byID := map[string]memory.Request{}
	for _, req := range requests {
		byID[req.ID] = req
	}
	for _, id := range s.SatisfiedIDs() {
		req, ok := byID[id]
		if !ok {
			r.Add("alloc.contig", "", fmt.Sprintf("strategy %s satisfies unknown request %q", s.Name, id))
			continue
		}
		for i := 1; i < len(req.Values); i++ {
			prev, cur := req.Values[i-1], req.Values[i]
			po, pok := s.Offset(prev)
			co, cok := s.Offset(cur)
			if !pok || !cok {
				continue // placement failure already reported
			}
			if want := po + int64(prev.Shape.NumElements())*8; co != want {
				r.Add("alloc.contig", "", fmt.Sprintf("strategy %s claims request %q contiguous, but %s at %d follows %s ending at %d", s.Name, id, cur, co, prev, want))
			}
		}
	}
	return r
}
