package verify

import (
	"testing"

	"astra/internal/enumerate"
	"astra/internal/graph"
	"astra/internal/memory"
	"astra/internal/models"
	"astra/internal/tensor"
)

// The mutation tests corrupt schedules, strategies and graphs on purpose
// and assert each analysis catches its corruption. A verifier that passes
// clean plans proves nothing on its own — these tests are the evidence the
// analyses have teeth.

// planFor enumerates a model under the richest preset plus a two-worker
// gradient exchange, so every analysis has structure to bite on.
func planFor(t *testing.T, model string) *enumerate.Plan {
	t.Helper()
	build, ok := models.Get(model)
	if !ok {
		t.Fatalf("model %s not registered", model)
	}
	m := build(models.DefaultConfig(model, 16))
	opts := enumerate.PresetOptions(enumerate.PresetAll)
	opts.CommAdapt = true
	opts.Workers = 2
	return enumerate.Enumerate(m.G, opts)
}

func hasCheck(r *Report, id string) bool {
	for _, c := range r.Checks() {
		if c == id {
			return true
		}
	}
	return false
}

// resetVars drives every adaptive variable to its default choice.
func resetVars(p *enumerate.Plan) {
	if p.Tree == nil {
		return
	}
	for _, v := range p.Tree.Vars() {
		v.SetChoice(0)
	}
}

// bindMultiStream additionally drives every stream variable to its last
// (most spread-out) choice so the schedule genuinely uses several streams.
func bindMultiStream(p *enumerate.Plan) {
	resetVars(p)
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			for _, cls := range ep.Classes {
				if v := p.StreamVars[cls]; v != nil {
					v.SetChoice(len(v.Labels) - 1)
				}
			}
		}
	}
}

// --- graph analyses ---

func addNode(g *graph.Graph, op graph.Op, out *graph.Value, ins ...*graph.Value) *graph.Node {
	n := &graph.Node{Op: op, Inputs: ins, Out: out, Prov: graph.Provenance{Timestep: -1}}
	out.Producer = n
	g.Nodes = append(g.Nodes, n)
	return n
}

func TestCheckGraphDetectsCycle(t *testing.T) {
	g := graph.New()
	x := g.NewValue(tensor.Shape{2, 2}, "x")
	g.Inputs = append(g.Inputs, x)
	a := g.NewValue(tensor.Shape{2, 2}, "a")
	b := g.NewValue(tensor.Shape{2, 2}, "b")
	addNode(g, graph.OpAdd, a, b, x) // a needs b ...
	addNode(g, graph.OpAdd, b, a, x) // ... and b needs a
	r := CheckGraph(g)
	if !hasCheck(r, "graph.cycle") {
		t.Fatalf("cycle not detected; findings: %v", r.Findings)
	}
}

func TestCheckGraphDetectsDoubleDefinition(t *testing.T) {
	g := graph.New()
	x := g.NewValue(tensor.Shape{2, 2}, "x")
	g.Inputs = append(g.Inputs, x)
	out := g.NewValue(tensor.Shape{2, 2}, "out")
	addNode(g, graph.OpReLU, out, x)
	addNode(g, graph.OpTanh, out, x) // second definition of the same value
	r := CheckGraph(g)
	if !hasCheck(r, "graph.ssa") {
		t.Fatalf("double definition not detected; findings: %v", r.Findings)
	}
}

func TestCheckGraphDetectsShapeMismatch(t *testing.T) {
	g := graph.New()
	x := g.NewValue(tensor.Shape{2, 3}, "x")
	w := g.NewValue(tensor.Shape{3, 4}, "w")
	g.Inputs = append(g.Inputs, x, w)
	out := g.NewValue(tensor.Shape{5, 5}, "out") // mm gives [2x4]
	addNode(g, graph.OpMatMul, out, x, w)
	r := CheckGraph(g)
	if !hasCheck(r, "graph.shape") {
		t.Fatalf("shape mismatch not detected; findings: %v", r.Findings)
	}
}

// --- allocation analyses ---

func TestCheckStrategyDetectsAliasing(t *testing.T) {
	g := graph.New()
	v1 := g.NewValue(tensor.Shape{4}, "v1") // 32 bytes
	v2 := g.NewValue(tensor.Shape{4}, "v2")
	s := memory.ManualStrategy("mutant", nil,
		map[*graph.Value]int64{v1: 0, v2: 16}, 64) // v2 starts inside v1
	r := CheckStrategy(s, g.Values, nil)
	if !hasCheck(r, "alloc.alias") {
		t.Fatalf("aliasing not detected; findings: %v", r.Findings)
	}
}

func TestCheckStrategyDetectsFalseContiguityClaim(t *testing.T) {
	g := graph.New()
	v1 := g.NewValue(tensor.Shape{4}, "v1") // 32 bytes
	v2 := g.NewValue(tensor.Shape{4}, "v2")
	req := memory.Request{ID: "r0", Values: []*graph.Value{v1, v2}}
	s := memory.ManualStrategy("mutant", []string{"r0"},
		map[*graph.Value]int64{v1: 0, v2: 64}, 128) // gap: not contiguous
	r := CheckStrategy(s, g.Values, []memory.Request{req})
	if !hasCheck(r, "alloc.contig") {
		t.Fatalf("false contiguity claim not detected; findings: %v", r.Findings)
	}
}

// --- schedule analyses ---

const mutSpecWorkers = 2

func mutSpec() Spec { return Spec{Workers: mutSpecWorkers} }

func TestCheckScheduleDetectsDeadlock(t *testing.T) {
	p := planFor(t, "scrnn")
	bindMultiStream(p)
	s := BuildSchedule(p, mutSpec())
	mutated := false
	for st := range s.Streams {
		for i := range s.Streams[st] {
			if s.Streams[st][i].Kind == OpWait {
				// Point the wait at an event nothing ever records: the
				// symbolic device hangs exactly like the real one would.
				s.Streams[st][i].Event = s.NumEvents
				s.NumEvents++
				mutated = true
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Fatal("schedule has no waits to corrupt")
	}
	r := CheckSchedule(p, s, "mutant")
	if !hasCheck(r, "sched.deadlock") {
		t.Fatalf("deadlock not detected; findings: %v", r.Findings)
	}
}

func TestCheckScheduleDetectsRace(t *testing.T) {
	p := planFor(t, "scrnn")
	bindMultiStream(p)
	if r := CheckSchedule(p, BuildSchedule(p, mutSpec()), "base"); !r.OK() {
		t.Fatalf("baseline schedule not clean: %v", r.Findings)
	}
	// Drop synchronization edges one at a time (a wait becomes an inert
	// record): at least one dropped wait must surface as a cross-stream
	// race, or the race analysis is blind.
	base := BuildSchedule(p, mutSpec())
	for st := range base.Streams {
		for i, op := range base.Streams[st] {
			if op.Kind != OpWait {
				continue
			}
			s := BuildSchedule(p, mutSpec())
			s.Streams[st][i] = Op{Kind: OpRecord, Name: "dropped-wait", Event: s.NumEvents, Bucket: -1}
			s.NumEvents++
			if r := CheckSchedule(p, s, "mutant"); hasCheck(r, "sched.race") {
				return // detected
			}
		}
	}
	t.Fatal("no dropped wait produced a sched.race finding")
}

func TestCheckScheduleDetectsIllegalFusion(t *testing.T) {
	p := planFor(t, "scrnn")
	resetVars(p)
	// Maximal chunking so fused multi-member kernels exist.
	for _, grp := range p.Groups {
		if v := p.ChunkVars[grp]; v != nil {
			v.SetChoice(len(v.Labels) - 1)
		}
	}
	s := BuildSchedule(p, mutSpec())
	fused := 0
	for _, ops := range s.Streams {
		for _, op := range ops {
			if op.Kind == OpKernel && op.Group != nil && op.Members >= 2 {
				fused++
			}
		}
	}
	if fused == 0 {
		t.Fatal("no fused kernels under maximal chunking")
	}
	if r := CheckSchedule(p, s, "base"); !r.OK() {
		t.Fatalf("baseline schedule not clean: %v", r.Findings)
	}
	// Mutation 1: swap in an allocation strategy that satisfies no
	// contiguity request. Fused chunks built without gather copies (on the
	// strength of the old strategy's layout) are now reading garbage.
	s.Alloc = memory.ManualStrategy("satisfies-nothing", nil, nil, 0)
	if r := CheckSchedule(p, s, "mutant-alloc"); hasCheck(r, "sched.fusion") {
		return
	}
	// Mutation 2: detach a gather copy from its group — the fused chunk
	// right after it loses its staged operands.
	s = BuildSchedule(p, mutSpec())
	detached := false
	for st := range s.Streams {
		for i := range s.Streams[st] {
			if s.Streams[st][i].Kind == OpCopy && s.Streams[st][i].Group != nil {
				s.Streams[st][i].Group = nil
				detached = true
				break
			}
		}
		if detached {
			break
		}
	}
	if detached {
		if r := CheckSchedule(p, s, "mutant-copy"); hasCheck(r, "sched.fusion") {
			return
		}
	}
	t.Fatal("neither alloc swap nor copy detachment produced a sched.fusion finding")
}

func TestCheckScheduleDetectsBucketCorruption(t *testing.T) {
	p := planFor(t, "scrnn")
	resetVars(p)
	s := BuildSchedule(p, mutSpec())
	if len(s.Buckets) == 0 {
		t.Fatal("schedule has no comm buckets")
	}
	if r := CheckSchedule(p, s, "base"); !r.OK() {
		t.Fatalf("baseline schedule not clean: %v", r.Findings)
	}
	s.Buckets = s.Buckets[:len(s.Buckets)-1] // a bucket's gradients vanish
	r := CheckSchedule(p, s, "mutant")
	if !hasCheck(r, "comm.coverage") {
		t.Fatalf("bucket corruption not detected; findings: %v", r.Findings)
	}
}

func TestCheckScheduleDetectsEarlyBucketLaunch(t *testing.T) {
	p := planFor(t, "scrnn")
	resetVars(p)
	base := BuildSchedule(p, mutSpec())
	if len(base.Buckets) == 0 {
		t.Fatal("schedule has no comm buckets")
	}
	// Drop the readiness waits ahead of ring steps one at a time: the
	// exchange must be seen launching before its producers complete.
	for st := range base.Streams {
		for i, op := range base.Streams[st] {
			if op.Kind != OpWait {
				continue
			}
			// Only waits immediately ahead of a comm step are candidates.
			ahead := false
			for j := i + 1; j < len(base.Streams[st]) && j <= i+4; j++ {
				if base.Streams[st][j].Kind == OpKernel && base.Streams[st][j].Bucket >= 0 {
					ahead = true
					break
				}
			}
			if !ahead {
				continue
			}
			s := BuildSchedule(p, mutSpec())
			s.Streams[st][i] = Op{Kind: OpRecord, Name: "dropped-ready-wait", Event: s.NumEvents, Bucket: -1}
			s.NumEvents++
			if r := CheckSchedule(p, s, "mutant"); hasCheck(r, "comm.order") {
				return
			}
		}
	}
	t.Fatal("no dropped readiness wait produced a comm.order finding")
}

func TestCheckScheduleDetectsMissingEndSync(t *testing.T) {
	p := planFor(t, "scrnn")
	bindMultiStream(p)
	s := BuildSchedule(p, mutSpec())
	// Decapitate the batch-end marker: the schedule no longer proves the
	// device drained before the batch is declared done.
	last := len(s.Streams[0]) - 1
	if last < 0 || s.Streams[0][last].Kind != OpEnd {
		t.Fatal("schedule has no batch-end marker")
	}
	s.Streams[0][last] = Op{Kind: OpRecord, Name: "not-an-end", Event: s.NumEvents, Bucket: -1}
	s.NumEvents++
	r := CheckSchedule(p, s, "mutant")
	if !hasCheck(r, "sched.endsync") {
		t.Fatalf("missing end marker not detected; findings: %v", r.Findings)
	}
}

// --- unit analyses ---

func TestCheckUnitsDetectsDroppedDependency(t *testing.T) {
	p := planFor(t, "scrnn")
	var victim *enumerate.Unit
	var saved []*enumerate.Unit
	for _, u := range p.Units {
		if len(u.Deps) > 0 {
			victim = u
			saved = u.Deps
			break
		}
	}
	if victim == nil {
		t.Fatal("no unit with dependencies")
	}
	victim.Deps = nil
	defer func() { victim.Deps = saved }()
	r := CheckUnits(p)
	if !hasCheck(r, "units.dep") {
		t.Fatalf("dropped dependency not detected; findings: %v", r.Findings)
	}
}
