package verify

import (
	"testing"

	"astra/internal/enumerate"
	"astra/internal/models"
)

func TestSmokeSCRNNAllPreset(t *testing.T) {
	build, ok := models.Get("scrnn")
	if !ok {
		t.Fatal("scrnn not registered")
	}
	m := build(models.DefaultConfig("scrnn", 16))
	opts := enumerate.PresetOptions(enumerate.PresetAll)
	opts.CommAdapt = true
	opts.Workers = 2
	p := enumerate.Enumerate(m.G, opts)
	r := VerifyPlan(p, Spec{Workers: 2})
	for _, f := range r.Findings {
		t.Errorf("finding: %s", f)
	}
	t.Logf("checked %d configs", r.Configs)
}
