package verify

import (
	"fmt"

	"astra/internal/enumerate"
	"astra/internal/graph"
)

// CheckUnits verifies the schedule-unit graph against the training graph:
// every non-view node belongs to exactly one unit, unit dependencies agree
// with the value-level edges (seen through folded view transposes), and the
// super-epoch/epoch partition dispatches units in topological order.
func CheckUnits(p *enumerate.Plan) *Report {
	r := &Report{}
	views := enumerate.Views(p.G)

	// Coverage: each non-view node in exactly one unit.
	owner := map[*graph.Node]*enumerate.Unit{}
	for _, u := range p.Units {
		for _, n := range u.Nodes {
			if prev, ok := owner[n]; ok {
				r.Add("units.cover", "", fmt.Sprintf("node %s claimed by units %s and %s", n, prev.ID, u.ID))
				continue
			}
			owner[n] = u
			if views[n] {
				r.Add("units.cover", "", fmt.Sprintf("view transpose %s scheduled in unit %s", n, u.ID))
			}
		}
	}
	for _, n := range p.G.Nodes {
		if views[n] {
			continue
		}
		if owner[n] == nil {
			r.Add("units.cover", "", fmt.Sprintf("node %s not covered by any schedule unit", n))
		}
	}

	// Dependencies: every cross-unit value edge must appear in Deps; every
	// Deps entry must be justified by at least one value edge.
	producer := map[*graph.Value]*enumerate.Unit{}
	for _, u := range p.Units {
		for _, n := range u.Nodes {
			producer[n.Out] = u
		}
	}
	for _, u := range p.Units {
		deps := map[*enumerate.Unit]bool{}
		for _, d := range u.Deps {
			deps[d] = true
		}
		needed := map[*enumerate.Unit]bool{}
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				src := in
				if in.Producer != nil && views[in.Producer] {
					src = in.Producer.Inputs[0]
				}
				pu := producer[src]
				if pu == nil || pu == u {
					continue
				}
				needed[pu] = true
				if !deps[pu] {
					r.Add("units.dep", "", fmt.Sprintf("unit %s reads %s from unit %s without a dependency edge", u.ID, src, pu.ID))
				}
			}
		}
		for d := range deps {
			if !needed[d] {
				r.Add("units.dep", "", fmt.Sprintf("unit %s declares dependency on %s without a value edge", u.ID, d.ID))
			}
		}
	}

	// Partition: the super-epoch/epoch walk is the dispatch order; every
	// dependency must dispatch strictly earlier, and each unit's recorded
	// epoch/super-epoch must match its position.
	order := map[*enumerate.Unit]int{}
	seq := 0
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			for _, u := range ep.Units {
				if _, ok := order[u]; ok {
					r.Add("units.epoch", "", fmt.Sprintf("unit %s dispatched twice by the partition", u.ID))
				}
				order[u] = seq
				seq++
				if u.Epoch != ep.Index {
					r.Add("units.epoch", "", fmt.Sprintf("unit %s records epoch %d but sits in epoch %d", u.ID, u.Epoch, ep.Index))
				}
				if u.SuperEpoch != se.Index {
					r.Add("units.epoch", "", fmt.Sprintf("unit %s records super-epoch %d but sits in super-epoch %d", u.ID, u.SuperEpoch, se.Index))
				}
			}
			// Classes partition the epoch's units.
			inClass := map[*enumerate.Unit]int{}
			for _, cls := range ep.Classes {
				for _, u := range cls.Units {
					inClass[u]++
				}
			}
			for _, u := range ep.Units {
				if inClass[u] != 1 {
					r.Add("units.epoch", "", fmt.Sprintf("unit %s appears in %d equivalence classes of epoch %d", u.ID, inClass[u], ep.Index))
				}
			}
		}
	}
	for _, u := range p.Units {
		if _, ok := order[u]; !ok {
			r.Add("units.epoch", "", fmt.Sprintf("unit %s missing from the super-epoch partition", u.ID))
			continue
		}
		for _, d := range u.Deps {
			od, ok := order[d]
			if !ok {
				continue // reported above
			}
			if od >= order[u] {
				r.Add("units.epoch", "", fmt.Sprintf("unit %s dispatches at %d before its dependency %s at %d", u.ID, order[u], d.ID, od))
			}
		}
	}
	return r
}
