// Package verify is Astra's static safety net: a set of analyses that prove
// each point of the enumerated configuration space is semantically safe
// before the runtime spends a mini-batch measuring it (§4.4–§4.5 of the
// paper enumerate the space; this package closes the "trusted by
// construction" gap).
//
// The analyses split into two layers:
//
//   - Plan-level (run once at wire time): the graph IR itself — SSA
//     single-definition, acyclicity, shape consistency along every edge,
//     provenance sanity — plus the schedule-unit graph (every node covered
//     exactly once, dependencies consistent with value edges, topological
//     dispatch order) and every allocation strategy (all values placed, no
//     two buffers aliasing, satisfied contiguity requests actually
//     contiguous).
//
//   - Configuration-level (run per binding of the adaptive variables): a
//     symbolic schedule is built by mirroring the custom-wirer's dispatch —
//     kernels, RecordEvent/WaitEvent edges, gather copies, comm buckets —
//     and checked with a vector-clock happens-before analysis for
//     cross-stream races and wait-cycle deadlocks, fusion legality
//     (contiguous-or-copied operands for every fused chunk), end-of-batch
//     synchronization, and comm-bucket coverage and ordering.
//
// Every analysis returns Findings rather than errors so callers can collect
// the complete picture; Report.Err() folds a non-empty report into a single
// *verify.Error for the session's sticky error path.
package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Finding is one verification failure.
type Finding struct {
	// Check identifies the analysis, e.g. "graph.shape", "sched.race".
	Check string
	// Config describes the variable bindings the finding occurred under;
	// empty for plan-level (binding-independent) findings.
	Config string
	// Detail is the human-readable description.
	Detail string
}

// String renders the finding on one line.
func (f Finding) String() string {
	if f.Config == "" {
		return fmt.Sprintf("[%s] %s", f.Check, f.Detail)
	}
	return fmt.Sprintf("[%s] (%s) %s", f.Check, f.Config, f.Detail)
}

// Report accumulates findings across analyses and configurations.
type Report struct {
	Findings []Finding
	// Configs counts the distinct variable bindings that were checked.
	Configs int
}

// Add appends a finding.
func (r *Report) Add(check, config, detail string) {
	r.Findings = append(r.Findings, Finding{Check: check, Config: config, Detail: detail})
}

// Merge appends another report's findings and config count.
func (r *Report) Merge(o *Report) {
	r.Findings = append(r.Findings, o.Findings...)
	r.Configs += o.Configs
}

// OK reports whether no analysis found anything.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// Checks returns the sorted distinct check IDs that fired.
func (r *Report) Checks() []string {
	set := map[string]bool{}
	for _, f := range r.Findings {
		set[f.Check] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Err returns nil for a clean report and a *Error otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Findings: append([]Finding{}, r.Findings...)}
}

// Error is the distinguishable error type a failed verification folds into:
// sessions store it as their sticky error, and callers unwrap it with
// errors.As to tell a safety violation from an exploration failure.
type Error struct {
	Findings []Finding
}

// Error summarises the findings: the count, the distinct checks, and the
// first finding in full.
func (e *Error) Error() string {
	checks := map[string]bool{}
	for _, f := range e.Findings {
		checks[f.Check] = true
	}
	ids := make([]string, 0, len(checks))
	for c := range checks {
		ids = append(ids, c)
	}
	sort.Strings(ids)
	msg := fmt.Sprintf("verify: %d finding(s) [%s]", len(e.Findings), strings.Join(ids, ","))
	if len(e.Findings) > 0 {
		msg += ": " + e.Findings[0].String()
	}
	return msg
}
