package verify

import (
	"fmt"
	"strconv"

	"astra/internal/enumerate"
	"astra/internal/memory"
)

// Spec fixes the schedule parameters that live outside the plan's adaptive
// variables, mirroring wire.RunnerConfig / wire.CommConfig.
type Spec struct {
	// Workers is the data-parallel degree; below 2 the schedule has no
	// gradient exchange.
	Workers int
	// BucketKB is the gradient-bucket cap used when the plan has no
	// comm.bucket_kb variable (0 = one bucket for everything).
	BucketKB int
	// Placement is the comm placement used when the plan has no comm.place
	// variable ("comm" or "main"; empty means "comm").
	Placement string
	// MaxFusion pins groups at their maximal chunk when the plan has no
	// chunk variables (the static-fusion baseline policy).
	MaxFusion bool
}

// OpKind classifies symbolic schedule operations.
type OpKind int

// Schedule operation kinds.
const (
	// OpKernel is a compute or communication kernel launch.
	OpKernel OpKind = iota
	// OpCopy is a gather copy staging a fused chunk's operands.
	OpCopy
	// OpRecord records a synchronization event on its stream.
	OpRecord
	// OpWait makes its stream wait for an event recorded elsewhere.
	OpWait
	// OpEnd marks the end of the batch on stream 0.
	OpEnd
)

// Op is one operation in a stream's FIFO program.
type Op struct {
	Kind OpKind
	Name string
	// Event is the identifier an OpRecord defines and an OpWait awaits.
	Event int
	// Unit attributes compute kernels and copies to their schedule unit.
	Unit *enumerate.Unit
	// Group and Members describe fused GEMM chunks (Members >= 2) and the
	// gather copies staged for them.
	Group   *enumerate.FusionGroup
	Members int
	// Bucket indexes the comm bucket a ring step belongs to; -1 otherwise.
	Bucket int
}

// Bucket is one gradient bucket of the symbolic schedule.
type Bucket struct {
	Bytes int64
	Grads int
	// Units are the distinct schedule units producing this bucket's
	// gradients, in dispatch order.
	Units []*enumerate.Unit
}

// Pos addresses one op in the schedule.
type Pos struct{ Stream, Index int }

// Schedule is the symbolic multi-stream program for one configuration: the
// exact sequence of kernels, gather copies, and RecordEvent/WaitEvent edges
// the custom-wirer would issue for the plan's current variable bindings.
// It captures the binding-dependent context (allocation strategy, bucket
// cap) so the analyses check the schedule against what it was built for.
type Schedule struct {
	Streams [][]Op
	// NumEvents counts the synchronization events recorded.
	NumEvents int
	// Alloc is the allocation strategy active when the schedule was built.
	Alloc *memory.Strategy
	// Buckets, CommStream, Workers and BucketCapBytes describe the gradient
	// exchange (Buckets is nil when the schedule has none).
	Buckets        []Bucket
	CommStream     int
	Workers        int
	BucketCapBytes int64
	// FirstOp and LastOp locate each unit's first and last issued op.
	FirstOp, LastOp map[*enumerate.Unit]Pos
}

// scheduleBuilder mirrors wire.Runner's dispatch, emitting symbolic ops
// instead of launching simulated kernels. Any divergence between this walk
// and the runner's is itself a bug the verifier's checks would surface (a
// race the runner synchronizes, or a copy it inserts, would show up here as
// a finding on a clean plan).
type scheduleBuilder struct {
	p    *enumerate.Plan
	spec Spec
	s    *Schedule

	eventSeq    int
	usedStreams map[int]bool
	prevEvents  []int
	prevStreams []int
	// barrierEvents holds the latest super-epoch barrier's records; a
	// stream first used after the barrier waits on them (the barrier's
	// all-pairs synchronization only covered the streams used so far).
	barrierEvents  []int
	barrierStreams []int
	unitStream     map[*enumerate.Unit]int
	// comm bucketing state
	atUnit map[*enumerate.Unit][]int
}

// BuildSchedule constructs the symbolic schedule for the plan's current
// variable bindings under the given spec.
func BuildSchedule(p *enumerate.Plan, spec Spec) *Schedule {
	b := &scheduleBuilder{
		p:           p,
		spec:        spec,
		usedStreams: map[int]bool{0: true},
		unitStream:  map[*enumerate.Unit]int{},
		atUnit:      map[*enumerate.Unit][]int{},
	}
	compute := 1
	if p.Opts.StreamAdapt {
		compute = p.Opts.NumStreams
	}
	total := compute
	commEnabled := spec.Workers >= 2 && len(p.Grads) > 0
	commStream := -1
	if commEnabled {
		commStream = compute
		total = compute + 1
	}
	b.s = &Schedule{
		Streams:    make([][]Op, total),
		Alloc:      p.Alloc(),
		CommStream: commStream,
		Workers:    spec.Workers,
		FirstOp:    map[*enumerate.Unit]Pos{},
		LastOp:     map[*enumerate.Unit]Pos{},
	}
	if commEnabled {
		b.prepareComm()
	}
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			b.dispatchEpoch(ep)
		}
		b.superEpochBarrier()
	}
	if commEnabled && b.commStreamIdx() != 0 {
		done := b.record(b.commStreamIdx())
		b.wait(0, done)
	}
	b.emit(0, Op{Kind: OpEnd, Name: "batch-end", Bucket: -1})
	return b.s
}

func (b *scheduleBuilder) emit(stream int, op Op) Pos {
	pos := Pos{Stream: stream, Index: len(b.s.Streams[stream])}
	b.s.Streams[stream] = append(b.s.Streams[stream], op)
	if op.Unit != nil && (op.Kind == OpKernel || op.Kind == OpCopy) {
		if _, ok := b.s.FirstOp[op.Unit]; !ok {
			b.s.FirstOp[op.Unit] = pos
		}
		b.s.LastOp[op.Unit] = pos
	}
	return pos
}

func (b *scheduleBuilder) record(stream int) int {
	ev := b.eventSeq
	b.eventSeq++
	b.s.NumEvents++
	b.emit(stream, Op{Kind: OpRecord, Name: fmt.Sprintf("record e%d", ev), Event: ev, Bucket: -1})
	return ev
}

func (b *scheduleBuilder) wait(stream, ev int) {
	b.emit(stream, Op{Kind: OpWait, Name: fmt.Sprintf("wait e%d", ev), Event: ev, Bucket: -1})
}

func (b *scheduleBuilder) kernel(stream int, op Op) {
	b.emit(stream, op)
}

func (b *scheduleBuilder) multiStream() bool {
	return b.p.Opts.StreamAdapt && b.p.Opts.NumStreams >= 2
}

func (b *scheduleBuilder) commStreamIdx() int {
	// Comm kernels run on the dedicated stream or stream 0, per placement.
	if b.placement() == "comm" {
		return b.s.CommStream
	}
	return 0
}

func (b *scheduleBuilder) placement() string {
	if v := b.p.CommPlaceVar; v != nil {
		return v.CurrentLabel()
	}
	if b.spec.Placement != "" {
		return b.spec.Placement
	}
	return "comm"
}

func (b *scheduleBuilder) bucketCapBytes() int64 {
	if v := b.p.CommBucketVar; v != nil {
		label := v.CurrentLabel()
		if label == "all" {
			return 0
		}
		kb, err := strconv.ParseInt(label, 10, 64)
		if err != nil || kb <= 0 {
			return 0
		}
		return kb * 1024
	}
	return int64(b.spec.BucketKB) * 1024
}

// prepareComm packs gradients into buckets in dispatch order, mirroring the
// wirer: a bucket closes when its payload reaches the cap, and fires once
// its last producing unit has dispatched.
func (b *scheduleBuilder) prepareComm() {
	capBytes := b.bucketCapBytes()
	b.s.BucketCapBytes = capBytes
	var cur Bucket
	var lastUnit *enumerate.Unit
	flush := func() {
		if cur.Grads == 0 {
			return
		}
		b.atUnit[lastUnit] = append(b.atUnit[lastUnit], len(b.s.Buckets))
		b.s.Buckets = append(b.s.Buckets, cur)
		cur = Bucket{}
		lastUnit = nil
	}
	for _, g := range b.p.Grads {
		cur.Bytes += g.Bytes
		cur.Grads++
		if len(cur.Units) == 0 || cur.Units[len(cur.Units)-1] != g.Unit {
			cur.Units = append(cur.Units, g.Unit)
		}
		lastUnit = g.Unit
		if capBytes > 0 && cur.Bytes >= capBytes {
			flush()
		}
	}
	flush()
}

// streamAssignment mirrors wire.Runner.streamAssignment: each class
// variable says how many of the class's units move off stream 0, spread
// round-robin over the auxiliary streams.
func (b *scheduleBuilder) streamAssignment(ep *enumerate.Epoch) map[*enumerate.Unit]int {
	out := map[*enumerate.Unit]int{}
	if !b.multiStream() {
		for _, u := range ep.Units {
			out[u] = 0
		}
		return out
	}
	aux := b.p.Opts.NumStreams - 1
	for _, cls := range ep.Classes {
		v := b.p.StreamVars[cls]
		k := 0
		if v != nil {
			k, _ = strconv.Atoi(v.CurrentLabel())
		}
		for i, u := range cls.Units {
			if i < k {
				out[u] = 1 + i%aux
			} else {
				out[u] = 0
			}
		}
	}
	return out
}

func (b *scheduleBuilder) dispatchEpoch(ep *enumerate.Epoch) {
	assign := b.streamAssignment(ep)
	waited := map[int]bool{}
	ensureOrdered := func(stream int) {
		if waited[stream] {
			return
		}
		waited[stream] = true
		if !b.usedStreams[stream] {
			for i, ev := range b.barrierEvents {
				if b.barrierStreams[i] != stream {
					b.wait(stream, ev)
				}
			}
		}
		for i, ev := range b.prevEvents {
			if b.prevStreams[i] != stream {
				b.wait(stream, ev)
			}
		}
	}
	streamsUsed := map[int]bool{}
	for _, u := range ep.Units {
		stream := assign[u]
		ensureOrdered(stream)
		streamsUsed[stream] = true
		b.usedStreams[stream] = true
		b.unitStream[u] = stream
		b.dispatchUnit(u, stream)
		for _, bi := range b.atUnit[u] {
			b.launchBucket(bi)
		}
	}
	if b.multiStream() {
		b.prevEvents = b.prevEvents[:0]
		b.prevStreams = b.prevStreams[:0]
		for s := 0; s < b.p.Opts.NumStreams; s++ {
			if !streamsUsed[s] {
				continue
			}
			ev := b.record(s)
			b.prevEvents = append(b.prevEvents, ev)
			b.prevStreams = append(b.prevStreams, s)
		}
	}
}

// superEpochBarrier mirrors the wirer's all-pairs force synchronization of
// the used compute streams (the comm stream deliberately stays out, exactly
// as in the runner: syncing the exchange at every barrier would serialize
// it behind compute again).
func (b *scheduleBuilder) superEpochBarrier() {
	if !b.multiStream() {
		return
	}
	streams := make([]int, 0, len(b.usedStreams))
	for s := range b.usedStreams {
		streams = append(streams, s)
	}
	// Sorted for determinism, matching the runner.
	for i := 1; i < len(streams); i++ {
		for j := i; j > 0 && streams[j] < streams[j-1]; j-- {
			streams[j], streams[j-1] = streams[j-1], streams[j]
		}
	}
	evs := make([]int, len(streams))
	for i, s := range streams {
		evs[i] = b.record(s)
	}
	for i, s := range streams {
		for j, ev := range evs {
			if j == i {
				continue
			}
			b.wait(s, ev)
		}
	}
	b.prevEvents = nil
	b.prevStreams = nil
	b.barrierEvents = append(b.barrierEvents[:0], evs...)
	b.barrierStreams = append(b.barrierStreams[:0], streams...)
}

func (b *scheduleBuilder) chunkSize(u *enumerate.Unit) int {
	if v := b.p.ChunkVars[u.Group]; v != nil {
		c, err := strconv.Atoi(v.CurrentLabel())
		if err != nil || c < 1 {
			return 1
		}
		return c
	}
	if b.spec.MaxFusion {
		return len(u.Group.GEMMs)
	}
	return 1
}

func (b *scheduleBuilder) dispatchUnit(u *enumerate.Unit, stream int) {
	switch u.Kind {
	case enumerate.UnitSingle:
		b.kernel(stream, Op{Name: u.Nodes[0].Op.String(), Unit: u, Bucket: -1})
	case enumerate.UnitEWChain:
		b.kernel(stream, Op{Name: fmt.Sprintf("ew-chain[%d]", len(u.Nodes)), Unit: u, Bucket: -1})
	case enumerate.UnitGEMMGroup:
		b.dispatchGroup(u, stream)
	}
}

func (b *scheduleBuilder) dispatchGroup(u *enumerate.Unit, stream int) {
	grp := u.Group
	chunk := b.chunkSize(u)
	contiguous := grp.ReqID != "" && b.s.Alloc.Contiguous(grp.ReqID)
	n := len(grp.GEMMs)
	numChunks := (n + chunk - 1) / chunk
	for c := 0; c < numChunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		members := hi - lo
		if members == 1 {
			b.kernel(stream, Op{Name: "gemm", Unit: u, Bucket: -1})
			continue
		}
		if !contiguous {
			b.kernel(stream, Op{Kind: OpCopy, Name: "gather " + grp.ID, Unit: u, Group: grp, Members: members, Bucket: -1})
		}
		b.kernel(stream, Op{Name: "fused-gemm " + grp.ID, Unit: u, Group: grp, Members: members, Bucket: -1})
	}
	if grp.Kind == enumerate.Ladder && numChunks > 1 {
		for i := 0; i < numChunks-1; i++ {
			b.kernel(stream, Op{Name: "add", Unit: u, Bucket: -1})
		}
	}
}

// launchBucket issues one bucket's ring all-reduce: a readiness event on
// every stream that produced one of the bucket's gradients, cross-stream
// waits onto the comm stream, then 2·(n−1) ring step kernels.
func (b *scheduleBuilder) launchBucket(idx int) {
	bkt := b.s.Buckets[idx]
	cs := b.commStreamIdx()
	seen := map[int]bool{}
	for _, u := range bkt.Units {
		s, ok := b.unitStream[u]
		if !ok || seen[s] {
			continue
		}
		seen[s] = true
		ev := b.record(s)
		if cs != s {
			b.wait(cs, ev)
		}
	}
	steps := 2 * (b.spec.Workers - 1)
	for k := 0; k < steps; k++ {
		b.emit(cs, Op{Kind: OpKernel, Name: fmt.Sprintf("allreduce.b%d.s%d", idx, k), Bucket: idx})
	}
}
