package verify

import (
	"fmt"

	"astra/internal/graph"
)

// CheckGraph verifies the structural invariants of the graph IR itself,
// independently of Graph.Validate (which trusts emission order): SSA
// single-definition, acyclicity by explicit topological sort, shape
// consistency of every node against operator semantics, provenance sanity,
// and the loss/gradient bookkeeping.
func CheckGraph(g *graph.Graph) *Report {
	r := &Report{}
	if g == nil {
		r.Add("graph.nil", "", "nil graph")
		return r
	}

	// SSA: every value is defined exactly once — at most one producing node,
	// and the producer back-pointer agrees with the node list.
	producers := map[*graph.Value]*graph.Node{}
	for _, n := range g.Nodes {
		if n.Out == nil {
			r.Add("graph.ssa", "", fmt.Sprintf("node %s has no output value", n))
			continue
		}
		if prev, ok := producers[n.Out]; ok {
			r.Add("graph.ssa", "", fmt.Sprintf("value %s defined by both %s and %s", n.Out, prev, n))
			continue
		}
		producers[n.Out] = n
		if n.Out.Producer != n {
			r.Add("graph.ssa", "", fmt.Sprintf("value %s producer back-pointer disagrees with node %s", n.Out, n))
		}
	}
	leaves := map[*graph.Value]bool{}
	for _, v := range g.Inputs {
		leaves[v] = true
	}
	for _, v := range g.Params {
		leaves[v] = true
	}
	for _, v := range g.Values {
		if v.ConstData != nil {
			leaves[v] = true
		}
	}
	for _, v := range g.Values {
		if leaves[v] && producers[v] != nil {
			r.Add("graph.ssa", "", fmt.Sprintf("leaf value %s also produced by %s", v, producers[v]))
		}
	}

	// Acyclicity: Kahn's algorithm over node->node edges through values.
	// This deliberately ignores the emission order — a loaded graph whose
	// Nodes slice is shuffled but acyclic passes; a genuine cycle fails.
	indeg := map[*graph.Node]int{}
	consumers := map[*graph.Node][]*graph.Node{}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == nil {
				r.Add("graph.shape", "", fmt.Sprintf("node %s has nil input", n))
				continue
			}
			if p := producers[in]; p != nil {
				indeg[n]++
				consumers[p] = append(consumers[p], n)
			} else if !leaves[in] {
				r.Add("graph.ssa", "", fmt.Sprintf("node %s reads %s, which is neither a leaf nor produced", n, in))
			}
		}
	}
	var ready []*graph.Node
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	emitted := 0
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		emitted++
		for _, c := range consumers[n] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if emitted != len(g.Nodes) {
		r.Add("graph.cycle", "", fmt.Sprintf("dependency cycle: %d of %d nodes unreachable by topological sort", len(g.Nodes)-emitted, len(g.Nodes)))
	}

	// Shape consistency: re-derive every node's output shape from operator
	// semantics and compare with the recorded one.
	for _, n := range g.Nodes {
		if n.Out == nil || hasNilInput(n) {
			continue
		}
		want, err := graph.InferShape(n.Op, n.Attr, n.Inputs)
		if err != nil {
			r.Add("graph.shape", "", fmt.Sprintf("node %s: %v", n, err))
			continue
		}
		if !want.Equal(n.Out.Shape) {
			r.Add("graph.shape", "", fmt.Sprintf("node %s output shape %v, operator semantics give %v", n, n.Out.Shape, want))
		}
	}

	// Provenance sanity: pass is one of the two known passes, and a
	// recurrent timestep is -1 (not recurrent) or non-negative.
	for _, n := range g.Nodes {
		if n.Prov.Pass != graph.Forward && n.Prov.Pass != graph.Backward {
			r.Add("graph.prov", "", fmt.Sprintf("node %s has unknown pass %d", n, n.Prov.Pass))
		}
		if n.Prov.Timestep < -1 {
			r.Add("graph.prov", "", fmt.Sprintf("node %s has timestep %d", n, n.Prov.Timestep))
		}
	}

	// Loss and gradient bookkeeping: the loss is a known scalar; every
	// gradient is keyed by a parameter and shaped like it.
	known := map[*graph.Value]bool{}
	for _, v := range g.Values {
		known[v] = true
	}
	if g.Loss != nil {
		if !known[g.Loss] {
			r.Add("graph.grad", "", "loss value is not in the graph")
		} else if g.Loss.Shape.NumElements() != 1 {
			r.Add("graph.grad", "", fmt.Sprintf("loss %s has shape %v, want scalar", g.Loss, g.Loss.Shape))
		}
	}
	params := map[*graph.Value]bool{}
	for _, v := range g.Params {
		params[v] = true
	}
	for p, gv := range g.Grads {
		if p == nil || gv == nil {
			r.Add("graph.grad", "", "nil entry in gradient map")
			continue
		}
		if !params[p] {
			r.Add("graph.grad", "", fmt.Sprintf("gradient keyed by non-parameter %s", p))
		}
		if !known[gv] {
			r.Add("graph.grad", "", fmt.Sprintf("gradient %s of %s is not in the graph", gv, p))
		} else if !gv.Shape.Equal(p.Shape) {
			r.Add("graph.grad", "", fmt.Sprintf("gradient %s shape %v, parameter %s shape %v", gv, gv.Shape, p, p.Shape))
		}
	}
	return r
}

func hasNilInput(n *graph.Node) bool {
	for _, in := range n.Inputs {
		if in == nil {
			return true
		}
	}
	return false
}
