package verify

import (
	"fmt"
)

// hbResult holds the outcome of executing a symbolic schedule under FIFO
// stream semantics with vector clocks.
type hbResult struct {
	// post[s][i] is the vector clock immediately after op i of stream s
	// executed: post[s][i][t] counts the ops of stream t known (via program
	// order and record/wait edges) to have executed before that point.
	post [][][]int
	// deadlocked reports that execution stalled before draining every
	// stream; blocked describes the stuck waits.
	deadlocked bool
	blocked    []string
}

// simulate executes the schedule: each stream is a FIFO, a Wait op can only
// execute once the matching Record has, and everything else executes when
// it reaches the head of its stream. A stall with ops remaining is a
// synchronization deadlock — exactly the condition under which the real
// device would hang (cudaStreamWaitEvent on an event never recorded, or a
// wait cycle between streams).
func simulate(s *Schedule) *hbResult {
	nStreams := len(s.Streams)
	res := &hbResult{post: make([][][]int, nStreams)}
	next := make([]int, nStreams)
	clock := make([][]int, nStreams)
	for i := range clock {
		clock[i] = make([]int, nStreams)
		res.post[i] = make([][]int, len(s.Streams[i]))
	}
	recorded := map[int][]int{} // event -> clock snapshot at its record

	remaining := 0
	for _, ops := range s.Streams {
		remaining += len(ops)
	}
	for remaining > 0 {
		progress := false
		for st := 0; st < nStreams; st++ {
			for next[st] < len(s.Streams[st]) {
				op := s.Streams[st][next[st]]
				if op.Kind == OpWait {
					snap, ok := recorded[op.Event]
					if !ok {
						break // blocked: the event has not been recorded yet
					}
					for t, v := range snap {
						if v > clock[st][t] {
							clock[st][t] = v
						}
					}
				}
				clock[st][st]++
				snap := make([]int, nStreams)
				copy(snap, clock[st])
				res.post[st][next[st]] = snap
				if op.Kind == OpRecord {
					recorded[op.Event] = snap
				}
				next[st]++
				remaining--
				progress = true
			}
		}
		if !progress {
			res.deadlocked = true
			for st := 0; st < nStreams; st++ {
				if next[st] < len(s.Streams[st]) {
					op := s.Streams[st][next[st]]
					res.blocked = append(res.blocked, fmt.Sprintf("stream %d blocked at op %d (%s)", st, next[st], op.Name))
				}
			}
			return res
		}
	}
	return res
}

// happensBefore reports whether op a is ordered before op b by program
// order and the record/wait synchronization edges.
func (h *hbResult) happensBefore(a, b Pos) bool {
	if b.Index >= len(h.post[b.Stream]) || h.post[b.Stream][b.Index] == nil {
		return false // b never executed (deadlock path)
	}
	return h.post[b.Stream][b.Index][a.Stream] >= a.Index+1
}
