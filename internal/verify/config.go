package verify

import (
	"fmt"
	"strings"

	"astra/internal/adapt"
	"astra/internal/enumerate"
)

// CheckSchedule runs the configuration-level analyses over a symbolic
// schedule: deadlock, cross-stream races, end-of-batch synchronization,
// fusion legality, and comm-bucket coverage and ordering. The config string
// labels findings with the variable bindings the schedule was built under.
func CheckSchedule(p *enumerate.Plan, s *Schedule, config string) *Report {
	r := &Report{}
	hb := simulate(s)
	if hb.deadlocked {
		for _, bl := range hb.blocked {
			r.Add("sched.deadlock", config, bl)
		}
		// With streams stalled, no other temporal property is meaningful.
		return r
	}

	// Races: every unit dependency needs a happens-before edge from the
	// dependency's last op to the dependent's first.
	for _, u := range p.Units {
		first, ok := s.FirstOp[u]
		if !ok {
			r.Add("sched.race", config, fmt.Sprintf("unit %s never dispatched", u.ID))
			continue
		}
		for _, d := range u.Deps {
			last, ok := s.LastOp[d]
			if !ok {
				continue // reported as never-dispatched above
			}
			if !hb.happensBefore(last, first) {
				r.Add("sched.race", config, fmt.Sprintf("unit %s (stream %d) reads unit %s (stream %d) without a happens-before edge", u.ID, first.Stream, d.ID, last.Stream))
			}
		}
	}

	// End-of-batch synchronization: every kernel must be ordered before the
	// batch-end marker on stream 0 — the super-epoch barriers join the
	// compute streams and the explicit comm join covers the exchange; a
	// dropped barrier shows up here.
	end := Pos{Stream: 0, Index: len(s.Streams[0]) - 1}
	if end.Index < 0 || s.Streams[0][end.Index].Kind != OpEnd {
		r.Add("sched.endsync", config, "schedule has no batch-end marker on stream 0")
	} else {
		for st, ops := range s.Streams {
			for i, op := range ops {
				if op.Kind != OpKernel && op.Kind != OpCopy {
					continue
				}
				if st == 0 && i < end.Index {
					continue // program order
				}
				if !hb.happensBefore(Pos{Stream: st, Index: i}, end) {
					r.Add("sched.endsync", config, fmt.Sprintf("kernel %q on stream %d is not synchronized before batch end", op.Name, st))
				}
			}
		}
	}

	// Fusion legality: a fused chunk reads its operands as one block, which
	// is only sound if the active strategy lays the group's request out
	// contiguously or a gather copy staged the chunk immediately before.
	for st, ops := range s.Streams {
		for i, op := range ops {
			if op.Kind != OpKernel || op.Group == nil || op.Members < 2 {
				continue
			}
			if op.Group.ReqID != "" && s.Alloc.Contiguous(op.Group.ReqID) {
				continue
			}
			if i > 0 && ops[i-1].Kind == OpCopy && ops[i-1].Group == op.Group {
				continue
			}
			r.Add("sched.fusion", config, fmt.Sprintf("fused chunk of %s (%d members, stream %d) has non-contiguous operands and no gather copy", op.Group.ID, op.Members, st))
		}
	}

	r.Merge(checkComm(p, s, hb, config))
	return r
}

// checkComm validates the gradient exchange: every gradient in exactly one
// bucket (the schedule's packing must match an independent repacking), each
// bucket issuing exactly 2·(n−1) ring steps on one stream, and each
// bucket's first step ordered after every one of its producing units.
func checkComm(p *enumerate.Plan, s *Schedule, hb *hbResult, config string) *Report {
	r := &Report{}
	if s.Workers < 2 || len(p.Grads) == 0 {
		if len(s.Buckets) > 0 {
			r.Add("comm.coverage", config, fmt.Sprintf("schedule has %d buckets but no gradient exchange is configured", len(s.Buckets)))
		}
		return r
	}
	want := packBuckets(p, s.BucketCapBytes)
	if len(s.Buckets) != len(want) {
		r.Add("comm.coverage", config, fmt.Sprintf("schedule packs %d buckets, repacking gives %d", len(s.Buckets), len(want)))
	}
	var gotGrads, wantGrads int
	for _, b := range s.Buckets {
		gotGrads += b.Grads
	}
	for _, b := range want {
		wantGrads += b.Grads
	}
	if gotGrads != len(p.Grads) || wantGrads != len(p.Grads) {
		r.Add("comm.coverage", config, fmt.Sprintf("buckets cover %d gradients, plan has %d", gotGrads, len(p.Grads)))
	}
	for i := range s.Buckets {
		if i < len(want) && (s.Buckets[i].Bytes != want[i].Bytes || s.Buckets[i].Grads != want[i].Grads) {
			r.Add("comm.coverage", config, fmt.Sprintf("bucket %d packs %d gradients / %d bytes, repacking gives %d / %d", i, s.Buckets[i].Grads, s.Buckets[i].Bytes, want[i].Grads, want[i].Bytes))
		}
	}

	// Ring steps: collect each bucket's step kernels.
	steps := make(map[int][]Pos)
	for st, ops := range s.Streams {
		for i, op := range ops {
			if op.Kind == OpKernel && op.Bucket >= 0 {
				steps[op.Bucket] = append(steps[op.Bucket], Pos{Stream: st, Index: i})
			}
		}
	}
	wantSteps := 2 * (s.Workers - 1)
	for i, b := range s.Buckets {
		ps := steps[i]
		if len(ps) != wantSteps {
			r.Add("comm.steps", config, fmt.Sprintf("bucket %d has %d ring steps, want %d", i, len(ps), wantSteps))
		}
		if len(ps) == 0 {
			continue
		}
		stream := ps[0].Stream
		first := ps[0]
		for _, pos := range ps[1:] {
			if pos.Stream != stream {
				r.Add("comm.steps", config, fmt.Sprintf("bucket %d spreads ring steps over streams %d and %d", i, stream, pos.Stream))
			}
			if pos.Index < first.Index && pos.Stream == first.Stream {
				first = pos
			}
		}
		// Launch-after-producer: the first ring step must be ordered after
		// the last op of every unit producing a gradient in the bucket.
		for _, u := range b.Units {
			last, ok := s.LastOp[u]
			if !ok {
				continue
			}
			if !hb.happensBefore(last, first) {
				r.Add("comm.order", config, fmt.Sprintf("bucket %d launches before its producer %s (stream %d) completes", i, u.ID, last.Stream))
			}
		}
	}
	for bi := range steps {
		if bi >= len(s.Buckets) {
			r.Add("comm.coverage", config, fmt.Sprintf("ring steps reference unknown bucket %d", bi))
		}
	}
	return r
}

// packBuckets independently repacks the plan's gradients under a byte cap,
// mirroring the wirer's dispatch-order packing. The schedule builder and
// the coverage check both use it; wire has its own copy, so a packing bug
// there diverges from this one and fails the comparison.
func packBuckets(p *enumerate.Plan, capBytes int64) []Bucket {
	var out []Bucket
	var cur Bucket
	flush := func() {
		if cur.Grads == 0 {
			return
		}
		out = append(out, cur)
		cur = Bucket{}
	}
	for _, g := range p.Grads {
		cur.Bytes += g.Bytes
		cur.Grads++
		if len(cur.Units) == 0 || cur.Units[len(cur.Units)-1] != g.Unit {
			cur.Units = append(cur.Units, g.Unit)
		}
		if capBytes > 0 && cur.Bytes >= capBytes {
			flush()
		}
	}
	flush()
	return out
}

// CheckConfig verifies the plan's *current* variable bindings: it builds
// the symbolic schedule the wirer would dispatch and runs every
// configuration-level analysis on it.
func CheckConfig(p *enumerate.Plan, spec Spec) *Report {
	s := BuildSchedule(p, spec)
	r := CheckSchedule(p, s, BindingLabel(p))
	r.Configs = 1
	return r
}

// Signature returns a compact key of the plan's current variable choices,
// used to deduplicate configuration checks across a sweep or a session.
func Signature(p *enumerate.Plan) string {
	if p.Tree == nil {
		return "static"
	}
	var sig strings.Builder
	for _, v := range p.Tree.Vars() {
		fmt.Fprintf(&sig, "%d,", v.Current())
	}
	return sig.String()
}

// BindingLabel renders the plan's current non-default variable bindings
// compactly ("defaults" when every variable sits at choice 0).
func BindingLabel(p *enumerate.Plan) string {
	if p.Tree == nil {
		return "static"
	}
	var parts []string
	for _, v := range p.Tree.Vars() {
		if v.Current() != 0 {
			parts = append(parts, v.ID+"="+v.CurrentLabel())
		}
	}
	if len(parts) == 0 {
		return "defaults"
	}
	return strings.Join(parts, " ")
}

// VerifyPlan runs the complete analysis suite: the plan-level checks
// (graph, units, every allocation strategy) plus a structural sweep of the
// configuration space.
func VerifyPlan(p *enumerate.Plan, spec Spec) *Report {
	r := CheckGraph(p.G)
	r.Merge(CheckUnits(p))
	for _, a := range p.Allocs {
		r.Merge(CheckStrategy(a, p.G.Values, p.Requests))
	}
	r.Merge(SweepConfigs(p, spec))
	return r
}

// SweepConfigs checks one configuration per structurally distinct point of
// the space, dimension by dimension: every allocation strategy crossed with
// every fusion-chunk choice (their product decides where gather copies go),
// every within-epoch stream-assignment tuple (the Exhaustive products the
// explorer walks), and every comm bucket × placement pair. Kernel-library
// variables are skipped: the library changes which kernel runs, never the
// schedule's structure. Variable bindings are restored on return.
func SweepConfigs(p *enumerate.Plan, spec Spec) *Report {
	r := &Report{}
	var vars []*adapt.Var
	if p.Tree != nil {
		vars = p.Tree.Vars()
	}
	saved := make([]int, len(vars))
	for i, v := range vars {
		saved[i] = v.Current()
	}
	defer func() {
		for i, v := range vars {
			v.SetChoice(saved[i])
		}
	}()
	for _, v := range vars {
		v.SetChoice(0)
	}

	seen := map[string]bool{}
	check := func() {
		sig := Signature(p)
		if seen[sig] {
			return
		}
		seen[sig] = true
		r.Configs++
		s := BuildSchedule(p, spec)
		r.Merge(CheckSchedule(p, s, BindingLabel(p)))
	}

	check() // all-defaults baseline

	// Allocation × fusion chunking: copy insertion depends on both.
	allocN := 1
	if p.AllocVar != nil {
		allocN = len(p.AllocVar.Labels)
	}
	for ai := 0; ai < allocN; ai++ {
		if p.AllocVar != nil {
			p.AllocVar.SetChoice(ai)
		}
		check()
		for _, grp := range p.Groups {
			cv := p.ChunkVars[grp]
			if cv == nil {
				continue
			}
			for ci := range cv.Labels {
				cv.SetChoice(ci)
				check()
			}
			cv.SetChoice(0)
		}
	}
	if p.AllocVar != nil {
		p.AllocVar.SetChoice(0)
	}

	// Stream assignment: the full Exhaustive tuple product within each
	// epoch (bounded by MaxEpochTuples at enumeration time), other epochs
	// at their defaults — matching the explorer's one-epoch-at-a-time walk.
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			var evs []*adapt.Var
			for _, cls := range ep.Classes {
				if v := p.StreamVars[cls]; v != nil {
					evs = append(evs, v)
				}
			}
			if len(evs) == 0 {
				continue
			}
			idx := make([]int, len(evs))
			for {
				for i, v := range evs {
					v.SetChoice(idx[i])
				}
				check()
				k := 0
				for k < len(idx) {
					idx[k]++
					if idx[k] < len(evs[k].Labels) {
						break
					}
					idx[k] = 0
					k++
				}
				if k == len(idx) {
					break
				}
			}
			for _, v := range evs {
				v.SetChoice(0)
			}
		}
	}

	// Communication: every bucket cap × placement.
	if p.CommBucketVar != nil && p.CommPlaceVar != nil {
		for bi := range p.CommBucketVar.Labels {
			p.CommBucketVar.SetChoice(bi)
			for pi := range p.CommPlaceVar.Labels {
				p.CommPlaceVar.SetChoice(pi)
				check()
			}
		}
		p.CommBucketVar.SetChoice(0)
		p.CommPlaceVar.SetChoice(0)
	}
	return r
}
