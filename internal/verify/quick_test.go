package verify

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickStrategiesAliasFree is the property form of the arena-aliasing
// analysis: whichever allocation strategy the planner emits, no two live
// buffers may overlap and every satisfied contiguity claim must hold.
func TestQuickStrategiesAliasFree(t *testing.T) {
	for _, model := range []string{"scrnn", "sublstm"} {
		p := planFor(t, model)
		if len(p.Allocs) == 0 {
			t.Fatalf("%s: plan has no allocation strategies", model)
		}
		f := func(pick uint8) bool {
			s := p.Allocs[int(pick)%len(p.Allocs)]
			return CheckStrategy(s, p.G.Values, p.Requests).OK()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 32, Rand: rand.New(rand.NewSource(7))}); err != nil {
			t.Errorf("%s: %v", model, err)
		}
	}
}

// TestQuickRandomBindingsScheduleSafe samples the configuration space at
// random — every adaptive variable set to an arbitrary choice, far beyond
// the per-dimension sweep astra-vet walks — and requires the symbolic
// schedule to stay free of deadlocks, races, illegal fusion and exchange
// corruption at every sampled point.
func TestQuickRandomBindingsScheduleSafe(t *testing.T) {
	p := planFor(t, "scrnn")
	if p.Tree == nil {
		t.Fatal("plan has no adaptive variables")
	}
	vars := p.Tree.Vars()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, v := range vars {
			v.SetChoice(rng.Intn(len(v.Labels)))
		}
		s := BuildSchedule(p, Spec{Workers: 2})
		r := CheckSchedule(p, s, "quick")
		if !r.OK() {
			t.Logf("seed %d: %v", seed, r.Findings)
		}
		return r.OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}
