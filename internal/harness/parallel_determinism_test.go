package harness

import (
	"bytes"
	"fmt"
	"testing"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/parallel"
	"astra/internal/wire"
)

// probeArtifacts is everything one run of the probe experiment produces:
// the rendered table plus, per cell, the profile-index snapshot and the
// Chrome trace export. Byte-identity of all three across Parallel values
// is the determinism contract Options.Parallel documents.
type probeArtifacts struct {
	table string
	index [][]byte
	trace [][]byte
}

// runDeterminismProbe registers a tiny multi-cell experiment (removed
// again before returning, so Names() keeps its canonical set), runs it
// through harness.Run with the given Parallel setting, and captures the
// per-cell artifacts. Each cell is a real exploration episode on a tiny
// model — the same code path the paper tables use, scaled down so the
// whole probe stays fast enough for `go test -race -short`.
func runDeterminismProbe(t *testing.T, par int) probeArtifacts {
	t.Helper()
	const id = "determinism-probe"
	cells := []struct {
		model string
		batch int
	}{
		{"scrnn", 8}, {"scrnn", 16}, {"sublstm", 8}, {"sublstm", 16},
	}
	index := make([][]byte, len(cells))
	trace := make([][]byte, len(cells))
	experiments[id] = func(o Options) (*Table, error) {
		tbl := &Table{
			ID:     id,
			Title:  "parallel determinism probe",
			Header: []string{"model", "batch", "trials", "wired (us)"},
		}
		rows, err := parallel.Map(o.workers(), len(cells), func(i int) ([]string, error) {
			c := cells[i]
			build, _ := models.Get(c.model)
			cfg := models.DefaultConfig(c.model, c.batch)
			cfg.SeqLen = 2
			m := build(cfg)
			tel := obs.NewTelemetry()
			s := wire.NewSession(m, wire.SessionConfig{
				Device:  gpusim.P100(),
				Options: enumerate.PresetOptions(enumerate.PresetFK),
				Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
			})
			s.Instrument(tel)
			s.Explore()
			var ib, tb bytes.Buffer
			if err := s.Ix.Save(&ib); err != nil {
				return nil, err
			}
			if err := tel.Trace.WriteChromeTrace(&tb); err != nil {
				return nil, err
			}
			index[i] = ib.Bytes()
			trace[i] = tb.Bytes()
			return []string{
				c.model, fmt.Sprint(c.batch), fmt.Sprint(s.Trials),
				fmt.Sprintf("%.3f", s.WiredTimeUs()),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		tbl.Rows = rows
		return tbl, nil
	}
	defer delete(experiments, id)

	tbl, err := Run(id, Options{Parallel: par})
	if err != nil {
		t.Fatalf("Run(%s, Parallel=%d): %v", id, par, err)
	}
	return probeArtifacts{table: tbl.String(), index: index, trace: trace}
}

// TestParallelRunsAreByteIdentical is the determinism regression test for
// the parallel exploration engine: harness.Run with Parallel: 4 must
// produce byte-identical table rows, trace output and profile.Index
// snapshots to the serial run. It runs un-skipped under `make race`
// (-race -short), where it also exercises parallel.Map, the sharded
// profile.Index and the pooled simulator hot path for data races.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	serial := runDeterminismProbe(t, 1)
	par := runDeterminismProbe(t, 4)

	if serial.table != par.table {
		t.Errorf("table differs between Parallel=1 and Parallel=4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.table, par.table)
	}
	for i := range serial.index {
		if !bytes.Equal(serial.index[i], par.index[i]) {
			t.Errorf("cell %d: profile.Index snapshot differs between Parallel=1 and Parallel=4", i)
		}
		if !bytes.Equal(serial.trace[i], par.trace[i]) {
			t.Errorf("cell %d: session trace differs between Parallel=1 and Parallel=4", i)
		}
	}

	// The table must not be degenerate — every cell explored something.
	if len(serial.index) == 0 || len(serial.index[0]) == 0 {
		t.Fatal("probe produced no profile snapshot")
	}
}
