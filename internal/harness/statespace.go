package harness

import (
	"fmt"
	"strings"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/memory"
	"astra/internal/models"
	"astra/internal/parallel"
	"astra/internal/profile"
	"astra/internal/wire"
)

// Table7 reproduces the paper's Table 7: the size of the exploration state
// space post-pruning (configurations explored, one mini-batch each) for
// Astra_FKS and Astra_all, plus the always-on profiling overhead (§6.4).
func Table7(o Options) (*Table, error) {
	t := &Table{
		ID:     "table7",
		Title:  "Exploration state space post-pruning (configs = exploration mini-batches)",
		Header: []string{"Model", "Astra_FKS", "Astra_all", "alloc strategies", "profiling overhead"},
		Notes: []string{
			"paper: scrnn 303/1672, stackedlstm 1219/1219, milstm 1191/1191, sublstm 3207/5439, gnmt 2280/9303",
		},
	}
	batch := 16
	names := []string{"scrnn", "stackedlstm", "milstm", "sublstm", "gnmt"}
	if o.Quick {
		names = []string{"scrnn", "milstm", "sublstm"}
	}
	rows, err := parallel.Map(o.workers(), len(names), func(i int) ([]string, error) {
		name := names[i]
		m := buildModel(name, batch)
		_, fks, _ := exploreWired(m, enumerate.PresetFKS)
		o.progress("table7 %s FKS done", name)
		s := wire.NewSession(m, wire.SessionConfig{
			Device:  gpusim.P100(),
			Options: enumerate.PresetOptions(enumerate.PresetAll),
			Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		})
		s.Explore()
		res := s.Step()
		frac := res.ProfilingOverheadUs() / res.TotalUs
		o.progress("table7 %s All done", name)
		return []string{
			name, fmt.Sprint(fks), fmt.Sprint(s.Trials), fmt.Sprint(len(s.Plan.Allocs)),
			fmt.Sprintf("%.3f%%", frac*100),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Figure1 demonstrates the conflicting fusion/allocation choice of the
// paper's Figure 1 on the SC-RNN backward pass: conflicting contiguity
// requests fork the allocation strategy, and the custom-wirer picks the
// strategy whose validated end-to-end time wins.
func Figure1(o Options) (*Table, error) {
	m := buildModel("scrnn", 16)
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetAll),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	p := s.Plan
	t := &Table{
		ID:     "fig1",
		Title:  "Conflicting fusion allocations in SC-RNN (forward vs backward groups)",
		Header: []string{"strategy", "satisfied requests", "validated e2e (us)"},
	}
	conflicts := 0
	for i := range p.Requests {
		for j := i + 1; j < len(p.Requests); j++ {
			if memory.Conflicts(p.Requests[i], p.Requests[j]) {
				conflicts++
			}
		}
	}
	if p.AllocVar == nil {
		return nil, fmt.Errorf("harness: scrnn produced no allocation fork (%d conflicts)", conflicts)
	}
	s.Explore()
	for i, a := range p.Allocs {
		mUs, ok := s.Ix.Lookup(profile.K("", p.AllocVar.ID, p.AllocVar.Labels[i]))
		val := "-"
		if ok {
			val = fmt.Sprintf("%.0f", mUs.ValueUs)
		}
		marker := ""
		if p.AllocVar.Current() == i {
			marker = " <== chosen"
		}
		t.Rows = append(t.Rows, []string{
			a.Name + marker,
			strings.Join(a.SatisfiedIDs(), ","),
			val,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d contiguity requests, %d conflicting pairs -> %d allocation strategies",
			len(p.Requests), conflicts, len(p.Allocs)))
	return t, nil
}

// Figure2 renders the exploration update tree (truncated) for the stacked
// LSTM, the structure the paper draws in Figure 2: super-epochs explored in
// parallel, prefix order across epochs, exhaustive class variables within.
func Figure2(o Options) (*Table, error) {
	m := buildModel("stackedlstm", 16)
	p := enumerate.Enumerate(m.G, enumerate.PresetOptions(enumerate.PresetAll))
	if p.Tree == nil {
		return nil, fmt.Errorf("harness: no update tree")
	}
	lines := strings.Split(p.Tree.Render(), "\n")
	t := &Table{
		ID:     "fig2",
		Title:  "Astra exploration update tree (stacked LSTM, excerpt)",
		Header: []string{"tree"},
	}
	// Head of the tree (fork + first fusion-group subtrees)...
	for i := 0; i < len(lines) && i < 16; i++ {
		if lines[i] != "" {
			t.Rows = append(t.Rows, []string{lines[i]})
		}
	}
	// ...then the stream-exploration section: super-epochs in parallel,
	// prefix across epochs, exhaustive class variables within each.
	for i, l := range lines {
		if strings.Contains(l, "+ streams") {
			t.Rows = append(t.Rows, []string{"..."})
			for j := i; j < len(lines) && j < i+18; j++ {
				if lines[j] != "" {
					t.Rows = append(t.Rows, []string{lines[j]})
				}
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("... (%d lines total)", len(lines))})
			break
		}
	}
	st := p.Stats()
	t.Notes = append(t.Notes, fmt.Sprintf(
		"units=%d fusion groups=%d super-epochs=%d epochs=%d adaptive variables=%d",
		st.Units, st.Groups, st.SuperEpochs, st.Epochs, st.Variables))
	_ = models.Names
	_ = gpusim.P100
	return t, nil
}
