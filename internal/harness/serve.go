package harness

import (
	"context"
	"fmt"

	"astra/internal/parallel"
	"astra/internal/serve"
)

func init() {
	experiments["ext-serve"] = ExtServe
}

// ExtServe load-tests the exploration service: a fleet of concurrent
// tenants drives the standard shape mix through one in-process server —
// one shared fleet profile store — and every completed session is held to
// the serving guarantee: wired times identical to a solo exploration of
// the same shape on a private server, warm-started or not.
//
// Full mode runs 32 tenants x 32 jobs (1024 sessions over 8 distinct
// shapes, warm-start hit rate well above the 50% serving target); quick
// mode runs 8 x 4. Table rows report only deterministic facts (the solo
// baselines and the fixed submission schedule); the scheduling-dependent
// hit split is printed as progress and enforced only as a floor.
func ExtServe(o Options) (*Table, error) {
	tenants, jobsPer := 32, 32
	if o.Quick {
		tenants, jobsPer = 8, 4
	}
	mix := serve.DefaultMix()

	// Solo ground truth: each shape on its own private server. These rows
	// are fully deterministic — any Parallel value, any run.
	type baseline struct {
		job serve.Job
		sig string
		res *serve.Result
	}
	bases, err := parallel.Map(o.workers(), len(mix), func(i int) (baseline, error) {
		res, err := serve.NewServer(serve.Config{}).Submit(context.Background(), mix[i], nil)
		if err != nil {
			return baseline{}, fmt.Errorf("ext-serve solo %d: %w", i, err)
		}
		o.progress("ext-serve solo %s done (%d trials, wired %.0fµs)", res.Signature, res.Trials, res.WiredUs)
		return baseline{job: mix[i], sig: res.Signature, res: res}, nil
	})
	if err != nil {
		return nil, err
	}
	solo := map[string]*serve.Result{}
	for _, b := range bases {
		solo[b.sig] = b.res
	}

	// The shared run: one server, one fleet store, everyone at once.
	srv := serve.NewServer(serve.Config{MaxInFlight: o.workers(), MaxQueue: tenants * jobsPer})
	rep, err := serve.RunLoad(context.Background(), srv, serve.LoadConfig{
		Tenants: tenants, JobsPerTenant: jobsPer, Mix: mix,
	})
	if err != nil {
		return nil, err
	}
	o.progress("ext-serve load: %d/%d completed, hit rate %.2f, %d trials, max warm delta %.4f%%",
		rep.Completed, rep.Submitted, rep.HitRate, rep.Trials, rep.MaxWarmDeltaPct)

	// The serving guarantees, enforced as hard failures.
	if rep.Completed != tenants*jobsPer || rep.Errors != 0 ||
		rep.RejectedQueueFull != 0 || rep.RejectedDraining != 0 {
		return nil, fmt.Errorf("ext-serve: %d of %d sessions did not complete (%d queue-full, %d errors: %s)",
			rep.Submitted-rep.Completed, rep.Submitted, rep.RejectedQueueFull, rep.Errors, rep.FirstError)
	}
	if rep.GateViolations != 0 || rep.MaxWarmDeltaPct != 0 {
		return nil, fmt.Errorf("ext-serve: warm results drifted from cold (max %.4f%%, %d gate violations)",
			rep.MaxWarmDeltaPct, rep.GateViolations)
	}
	for sig, wired := range rep.ColdWiredUs {
		want, ok := solo[sig]
		if !ok {
			return nil, fmt.Errorf("ext-serve: unexpected signature %s in load report", sig)
		}
		if wired != want.WiredUs {
			return nil, fmt.Errorf("ext-serve %s: shared cold wired %.3fµs != solo %.3fµs (store sharing perturbed results)",
				sig, wired, want.WiredUs)
		}
	}
	minRate := 0.5
	if o.Quick {
		minRate = 0.25 // 32 sessions over 8 shapes: at least the repeats hit
	}
	if rep.HitRate < minRate {
		return nil, fmt.Errorf("ext-serve: warm-start hit rate %.2f below the %.2f serving target", rep.HitRate, minRate)
	}

	// The deterministic submission schedule: tenant t's j-th job is
	// mix[(t*7+j) % len(mix)].
	sessions := map[string]int{}
	for t := 0; t < tenants; t++ {
		for j := 0; j < jobsPer; j++ {
			jd, err := mix[(t*7+j)%len(mix)].Normalize()
			if err != nil {
				return nil, err
			}
			sessions[jd.Signature()]++
		}
	}

	tbl := &Table{
		ID: "ext-serve",
		Title: fmt.Sprintf("Exploration service: %d tenants x %d jobs over one shared fleet store (tiny scale)",
			tenants, jobsPer),
		Header: []string{"Model", "level", "batch", "workers", "fabric", "sessions", "solo trials", "wired µs", "verdict"},
		Notes: []string{
			"wired µs: solo-exploration baseline; every shared-run session (cold or warm-started) matched it exactly",
			"sessions: submissions of the shape across all tenants (fixed schedule mix[(t*7+j)%8])",
			"warm-start hit split is scheduling-dependent and therefore reported as progress output, not table rows",
			fmt.Sprintf("gate: warm wired within 0.1%% of cold (this run enforced an exact match), hit rate >= %.2f", minRate),
		},
	}
	for _, b := range bases {
		jd, err := b.job.Normalize()
		if err != nil {
			return nil, err
		}
		fab := jd.Fabric
		if fab == "" {
			fab = "-"
		}
		tbl.Rows = append(tbl.Rows, []string{
			jd.Model, jd.Level, fmt.Sprintf("%d", jd.Batch), fmt.Sprintf("%d", jd.Workers), fab,
			fmt.Sprintf("%d", sessions[b.sig]),
			fmt.Sprintf("%d", b.res.Trials),
			fmt.Sprintf("%.0f", b.res.WiredUs),
			"PASS",
		})
	}
	return tbl, nil
}
