package harness

import (
	"fmt"
	"strconv"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/parallel"
	"astra/internal/profile"
	"astra/internal/tensor"
	"astra/internal/wire"
)

// AblationProfiling compares Astra's fine-grained parallel exploration
// against an OpenTuner-style baseline that can only measure end-to-end
// latency and therefore mutates one variable per mini-batch (§4.3, §4.5.1:
// with black-box measurement "the state space exploration can only happen
// one mutation at a time").
//
// Both explorers get the same enumerated variable set on the same model;
// the table reports the wired batch time each reaches and the number of
// mini-batches spent.
func AblationProfiling(o Options) (*Table, error) {
	model := "scrnn"
	batch := 16
	m := buildModel(model, batch)

	// Astra: parallel exploration with fine-grained profiling.
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetFK),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	s.Explore()
	astraWired := s.WiredTimeUs()
	astraTrials := s.Trials
	o.progress("ablation astra done (%d trials)", astraTrials)

	// Mutation baseline: same variables, end-to-end measurement only,
	// random single-variable mutations with greedy accept.
	m2 := buildModel(model, batch)
	plan := enumerate.Enumerate(m2.G, enumerate.PresetOptions(enumerate.PresetFK))
	runner := wire.NewRunner(plan, gpusim.NewDevice(gpusim.P100()), wire.RunnerConfig{PerOpCPUUs: 2})
	vars := plan.Tree.Vars()
	rng := tensor.NewRNG(99)

	measure := func() float64 { return runner.RunBatch(nil, nil).TotalUs }
	best := measure()
	budget := astraTrials * 4 // four times Astra's budget
	reachedAt := -1
	for trial := 1; trial <= budget; trial++ {
		v := vars[rng.Intn(len(vars))]
		old := v.Current()
		next := rng.Intn(len(v.Labels))
		if next == old {
			continue
		}
		v.SetChoice(next)
		t := measure()
		if t < best {
			best = t
		} else {
			v.SetChoice(old)
		}
		if reachedAt < 0 && best <= astraWired*1.02 {
			reachedAt = trial
		}
	}
	o.progress("ablation mutation done")

	t := &Table{
		ID:     "ablation-profiling",
		Title:  "Fine-grained parallel exploration vs end-to-end random mutation (SC-RNN, batch 16, FK space)",
		Header: []string{"explorer", "mini-batches", "wired batch (us)"},
		Rows: [][]string{
			{"Astra (fine-grained, parallel)", fmt.Sprint(astraTrials), fmt.Sprintf("%.0f", astraWired)},
			{fmt.Sprintf("mutation (e2e only, %dx budget)", budget/astraTrials), fmt.Sprint(budget), fmt.Sprintf("%.0f", best)},
		},
	}
	if reachedAt >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("mutation matched Astra's schedule after %d mini-batches (%.1fx Astra's budget)",
			reachedAt, float64(reachedAt)/float64(astraTrials)))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("mutation never matched Astra's schedule within %d mini-batches", budget))
	}
	return t, nil
}

// AblationAutoboost quantifies §7's predictable-execution requirement: with
// GPU clock autoboost left on, per-kernel measurements are noisy, the
// explorer freezes on unlucky winners, and the wired schedule (re-measured
// with a pinned clock for fairness) degrades. The third row shows the
// mitigation when the clock cannot be pinned: requiring several samples per
// configuration averages the noise away at the cost of a longer exploration.
func AblationAutoboost(o Options) (*Table, error) {
	model := "sublstm"
	batch := 16
	t := &Table{
		ID:     "ablation-autoboost",
		Title:  "Exploration quality with and without GPU clock autoboost (§7)",
		Header: []string{"clock", "configs", "wired batch at pinned clock (us)"},
	}
	type variant struct {
		label   string
		boost   bool
		samples int
	}
	variants := []variant{
		{"pinned (base clock)", false, 1},
		{"autoboost on", true, 1},
		{"autoboost on, 5 samples", true, 5},
	}
	type outcome struct {
		row   []string
		wired float64
	}
	outs, err := parallel.Map(o.workers(), len(variants), func(i int) (outcome, error) {
		v := variants[i]
		m := buildModel(model, batch)
		dev := gpusim.P100()
		dev.Autoboost = v.boost
		ix := profile.NewIndex()
		if v.samples > 1 {
			ix.SetPolicy(profile.FixedSamples(v.samples))
		}
		s := wire.NewSession(m, wire.SessionConfig{
			Device:  dev,
			Options: enumerate.PresetOptions(enumerate.PresetFKS),
			Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
			Index:   ix,
		})
		s.Explore()
		// Re-measure the chosen configuration with the clock pinned, so
		// the comparison isolates decision quality from clock luck.
		pinned := wire.NewRunner(s.Plan, gpusim.NewDevice(gpusim.P100()), wire.RunnerConfig{PerOpCPUUs: 2})
		wired := pinned.RunBatch(nil, nil).TotalUs
		o.progress("ablation autoboost=%v samples=%d done", v.boost, v.samples)
		return outcome{
			row:   []string{v.label, fmt.Sprint(s.Trials), fmt.Sprintf("%.0f", wired)},
			wired: wired,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var pinnedWired float64
	for i, out := range outs {
		if !variants[i].boost {
			pinnedWired = out.wired
		}
		t.Rows = append(t.Rows, out.row)
	}
	if len(t.Rows) == 3 && pinnedWired > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"pinned-clock exploration wired %s us; autoboost exploration wired %s us (paper: static clock was key to the wins)",
			t.Rows[0][2], t.Rows[1][2]))
		multi, _ := strconv.ParseFloat(t.Rows[2][2], 64)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"5-sample exploration under autoboost wired within %.1f%% of the pinned-clock choice",
			(multi/pinnedWired-1)*100))
	}
	return t, nil
}

// AblationBarrier sweeps the super-epoch granularity (§4.5.3): smaller
// super-epochs mean more barrier-parallel exploration (fewer exploration
// mini-batches) at the cost of extra synchronization in the schedule;
// one giant super-epoch serializes the whole stream exploration.
func AblationBarrier(o Options) (*Table, error) {
	model := "sublstm"
	batch := 16
	t := &Table{
		ID:     "ablation-barrier",
		Title:  "Barrier exploration: super-epoch size vs state space and schedule quality",
		Header: []string{"super-epoch budget (us)", "super-epochs", "configs", "wired batch (us)"},
	}
	budgets := []float64{500, 2000, 8000, 1e12}
	rows, err := parallel.Map(o.workers(), len(budgets), func(i int) ([]string, error) {
		budget := budgets[i]
		m := buildModel(model, batch)
		opts := enumerate.PresetOptions(enumerate.PresetFKS)
		opts.SuperEpochUs = budget
		s := wire.NewSession(m, wire.SessionConfig{
			Device:  gpusim.P100(),
			Options: opts,
			Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		})
		s.Explore()
		label := fmt.Sprintf("%.0f", budget)
		if budget >= 1e12 {
			label = "unbounded (no barriers)"
		}
		o.progress("ablation barrier budget=%.0f done", budget)
		return []string{
			label, fmt.Sprint(len(s.Plan.Supers)), fmt.Sprint(s.Trials),
			fmt.Sprintf("%.0f", s.WiredTimeUs()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
