package harness

import (
	"fmt"

	"astra/internal/baselines"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/parallel"
)

func init() {
	experiments["extra-models"] = ExtraModels
}

// ExtraModels extends the evaluation to the other two long-tail structures
// the paper's introduction names — Recurrent Highway Networks [39] and
// LSTM with Attention [35] — showing that the same machinery speeds up
// architectures it has never seen, with zero model-specific engineering
// (the paper's §6.7 claim: "add to the library of exploration, and models
// get automatic robust speedup").
func ExtraModels(o Options) (*Table, error) {
	t := &Table{
		ID:     "extra-models",
		Title:  "Long-tail models from the paper's introduction (no cuDNN kernels exist)",
		Header: []string{"Model", "Mini-batch", "PyT", "Astra_FK", "Astra_all", "configs"},
	}
	batches := []int{16, 32}
	names := []string{"rhn", "attlstm"}
	rows, err := parallel.Map(o.workers(), len(names)*len(batches), func(i int) ([]string, error) {
		name, batch := names[i/len(batches)], batches[i%len(batches)]
		m := buildModel(name, batch)
		nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		wiredFK, _, _ := exploreWired(m, enumerate.PresetFK)
		wiredAll, trials, _ := exploreWired(m, enumerate.PresetAll)
		o.progress("extra-models %s-%d done", name, batch)
		return []string{
			name, fmt.Sprint(batch), "1",
			f2(nat.TimeUs / wiredFK), f2(nat.TimeUs / wiredAll), fmt.Sprint(trials),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
