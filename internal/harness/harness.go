// Package harness regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate. Each experiment returns a
// Table that prints in the same row/column structure as the paper, so
// EXPERIMENTS.md can put measured values side by side with published ones.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"astra/internal/parallel"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options scales the experiments.
type Options struct {
	// Quick restricts batch-size sweeps to {16, 32} and uses lighter
	// adaptation levels where the full experiment would take minutes;
	// the qualitative shapes are unchanged.
	Quick bool
	// Parallel bounds the worker count for an experiment's independent
	// cells (exploration episodes). 0 or 1 runs serially; negative means
	// one worker per available CPU. Every cell builds its own model,
	// session and simulated device, and results merge in canonical cell
	// order, so any Parallel value produces byte-identical tables.
	Parallel int
	// Progress, when non-nil, receives one line per completed cell. With
	// Parallel > 1 it is called from multiple goroutines and must be safe
	// for concurrent use; line order then depends on scheduling (the table
	// itself never does).
	Progress func(string)
}

func (o Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// workers resolves Options.Parallel for parallel.Map: the default 0 stays
// serial so existing callers keep their exact execution profile.
func (o Options) workers() int {
	if o.Parallel == 0 {
		return 1
	}
	return o.Parallel
}

func (o Options) batches() []int {
	if o.Quick {
		return []int{16, 32}
	}
	return []int{8, 16, 32, 64, 128, 256}
}

// Runner is an experiment generator.
type Runner func(Options) (*Table, error)

var experiments = map[string]Runner{
	"table1": Table1,
	"sec32":  Section32,
	"fig1":   Figure1,
	"fig2":   Figure2,
	"table2": func(o Options) (*Table, error) { return speedupTable("table2", "scrnn", o) },
	"table3": func(o Options) (*Table, error) { return speedupTable("table3", "milstm", o) },
	"table4": func(o Options) (*Table, error) { return speedupTable("table4", "sublstm", o) },
	"table5": func(o Options) (*Table, error) { return cudnnTable("table5", "stackedlstm", o) },
	"table6": func(o Options) (*Table, error) { return cudnnTable("table6", "gnmt", o) },
	"table7": Table7,
	"table8": Table8,
	"table9": Table9,
	// Ablations of Astra's own design choices (not in the paper's tables;
	// they back the claims of §4.3, §4.5.3 and §7).
	"ablation-profiling": AblationProfiling,
	"ablation-autoboost": AblationAutoboost,
	"ablation-barrier":   AblationBarrier,
}

// Names lists the experiment IDs in canonical order.
func Names() []string {
	out := make([]string, 0, len(experiments))
	for k := range experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, o Options) (*Table, error) {
	r, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Names())
	}
	return r(o)
}

// RunAll executes the given experiments (all of them when ids is empty) with
// up to o.Parallel experiments in flight at once, on top of the per-cell
// parallelism each experiment already has. Tables return in the canonical
// order of ids regardless of scheduling; the error is the first failing
// experiment's, by that same order.
func RunAll(ids []string, o Options) ([]*Table, error) {
	if len(ids) == 0 {
		ids = Names()
	}
	return parallel.Map(o.workers(), len(ids), func(i int) (*Table, error) {
		return Run(ids[i], o)
	})
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
