package harness

import (
	"fmt"

	"astra/internal/enumerate"
	"astra/internal/obs"
	"astra/internal/parallel"
	"astra/internal/whatif"
)

func init() {
	experiments["ext-whatif"] = ExtWhatIf
}

// ExtWhatIf validates the trace-replay what-if engine end to end: for each
// model, record a fresh two-worker session, replay a scenario panel over
// its event log, and Check every prediction against ground-truth
// re-simulation. Each row is one scenario cell with its predicted and
// simulated wired-batch times and the prediction error; the identity row
// must be exact (0% by construction, not within tolerance).
func ExtWhatIf(o Options) (*Table, error) {
	const tolerancePct = 5.0
	t := &Table{
		ID:    "ext-whatif",
		Title: "Trace-replay what-if predictions vs ground-truth re-simulation, 2 workers (µs)",
		Header: []string{
			"Model", "scenario", "predicted", "simulated", "err", "verdict",
		},
		Notes: []string{
			"predicted: wired-batch time from replaying the recorded dependency graph under the scenario",
			"simulated: the same scenario re-run through gpusim (cost overrides + re-costed exchange)",
			fmt.Sprintf("verdict: PASS when the error is within %.0f%% (identity must be exactly 0)", tolerancePct),
		},
	}
	scenarios := []whatif.Scenario{
		{Name: "identity"},
		whatif.NewScenario(whatif.Perturbation{Speedups: map[string]float64{obs.ClassGEMM: 2}}),
		whatif.NewScenario(whatif.Perturbation{Speedups: map[string]float64{obs.ClassEW: 2}}),
		whatif.NewScenario(whatif.Perturbation{LaunchFactor: 0.5}),
		whatif.NewScenario(whatif.Perturbation{Fabric: "nvlink1"}),
		whatif.NewScenario(whatif.Perturbation{Workers: 4}),
		whatif.NewScenario(whatif.Perturbation{Workers: 1}),
	}
	models := []string{"scrnn", "sublstm"}
	if !o.Quick {
		models = append(models, "milstm", "stackedlstm", "gnmt")
	}
	reports, err := parallel.Map(o.workers(), len(models), func(i int) (*whatif.CheckReport, error) {
		rep, err := whatif.SelfCheck(models[i], 4, 2, "pcie3", enumerate.PresetFK, true, 2, scenarios, tolerancePct)
		if err != nil {
			return nil, fmt.Errorf("ext-whatif %s: %w", models[i], err)
		}
		o.progress("ext-whatif %s done (%d cells)", models[i], len(rep.Cells))
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rep := range reports {
		for _, c := range rep.Cells {
			verdict := "PASS"
			if !c.Pass {
				verdict = "FAIL"
			}
			t.Rows = append(t.Rows, []string{
				models[i], c.Scenario,
				fmt.Sprintf("%.0f", c.PredictedUs),
				fmt.Sprintf("%.0f", c.SimulatedUs),
				fmt.Sprintf("%.2f%%", c.ErrPct),
				verdict,
			})
		}
		if !rep.OK() {
			return nil, fmt.Errorf("ext-whatif %s: %d prediction(s) out of tolerance: %v",
				models[i], len(rep.Failures), rep.Failures)
		}
	}
	return t, nil
}
