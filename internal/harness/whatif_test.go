package harness

import (
	"strings"
	"testing"
)

// TestExtWhatIfQuick runs the what-if validation experiment in quick mode:
// every scenario cell of every model must land within tolerance, with the
// identity rows exact.
func TestExtWhatIfQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-session experiment")
	}
	tab, err := ExtWhatIf(Options{Quick: true, Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	identities := 0
	for _, row := range tab.Rows {
		if row[len(row)-1] != "PASS" {
			t.Errorf("cell failed: %v", row)
		}
		if row[1] == "identity" {
			identities++
			if row[4] != "0.00%" {
				t.Errorf("identity row not exact: %v", row)
			}
			if row[2] != row[3] {
				t.Errorf("identity predicted != simulated: %v", row)
			}
		}
	}
	if identities == 0 {
		t.Error("no identity rows")
	}
	if !strings.Contains(tab.String(), "ext-whatif") {
		t.Error("table does not render its ID")
	}
}
