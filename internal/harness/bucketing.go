package harness

import (
	"fmt"

	"astra/internal/baselines"
	"astra/internal/data"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/parallel"
	"astra/internal/wire"
)

// Table8 reproduces the dynamic-graph experiment (§5.5, Table 8): variable
// sentence lengths violate mini-batch predictability, so Astra buckets the
// input lengths (five equal-frequency buckets calibrated on the PTB length
// distribution: 13, 18, 24, 30, 83), explores independently per bucket, and
// pads each batch to its bucket. The baseline is the native dynamic-graph
// framework, which rebuilds and eagerly dispatches a graph per length.
func Table8(o Options) (*Table, error) {
	const numBatches = 60
	lengths := data.SampleLengths(numBatches, 1234)
	buckets := data.Buckets(data.SampleLengths(20000, 42), 5)

	preset := enumerate.PresetFKS
	if o.Quick {
		preset = enumerate.PresetFK
	}

	t := &Table{
		ID:     "table8",
		Title:  "Astra bucketed adaptation vs native PyTorch dynamic graphs",
		Header: []string{"Model", "Dynamic graph", "Astra + bucketing"},
		Notes: []string{
			fmt.Sprintf("buckets (equal-frequency over the PTB length distribution): %v", buckets),
			fmt.Sprintf("%d mini-batches sampled; Astra pads each batch to its nearest larger bucket", numBatches),
			"paper: SCRNN-16 1.61, SCRNN-32 1.43, subLSTM-16 2.47, subLSTM-32 2.13, StackedLSTM-16 2.44, StackedLSTM-32 2.22",
		},
	}

	type cell struct {
		model string
		batch int
	}
	cells := []cell{
		{"scrnn", 16}, {"scrnn", 32},
		{"sublstm", 16}, {"sublstm", 32},
		{"stackedlstm", 16}, {"stackedlstm", 32},
	}
	if o.Quick {
		cells = []cell{{"scrnn", 16}, {"sublstm", 16}}
	}

	// The expensive work — one exploration episode per (cell, bucket) —
	// flattens into independent tasks so a 4-worker run keeps every core on
	// an episode; the cheap native baselines parallelize per cell.
	wired, err := parallel.Map(o.workers(), len(cells)*len(buckets), func(i int) (float64, error) {
		c, bLen := cells[i/len(buckets)], buckets[i%len(buckets)]
		build, _ := models.Get(c.model)
		cfg := models.DefaultConfig(c.model, c.batch)
		cfg.SeqLen = bLen
		m := build(cfg)
		s := wire.NewSession(m, wire.SessionConfig{
			Device:  gpusim.P100(),
			Options: enumerate.PresetOptions(preset),
			Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		})
		s.Explore()
		o.progress("table8 %s-%d bucket %d done", c.model, c.batch, bLen)
		return s.WiredTimeUs(), nil
	})
	if err != nil {
		return nil, err
	}
	natives, err := parallel.Map(o.workers(), len(cells), func(i int) (float64, error) {
		c := cells[i]
		build, _ := models.Get(c.model)
		// Native dynamic graphs: one eager dispatch per distinct length.
		nativeTime := map[int]float64{}
		var nativeTotal float64
		for _, l := range lengths {
			if _, ok := nativeTime[l]; !ok {
				cfg := models.DefaultConfig(c.model, c.batch)
				cfg.SeqLen = l
				m := build(cfg)
				res := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
				nativeTime[l] = res.TimeUs
			}
			nativeTotal += nativeTime[l]
		}
		return nativeTotal, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cells {
		// Astra with bucketing: one session per bucket, each explored
		// independently (the profile-index keys are per bucket: separate
		// sessions realize the 5x state-space increase of §5.5); steady
		// state runs every batch at its bucket's wired configuration.
		wiredTime := map[int]float64{}
		for bi, bLen := range buckets {
			wiredTime[bLen] = wired[ci*len(buckets)+bi]
		}
		var astraTotal float64
		for _, l := range lengths {
			astraTotal += wiredTime[data.BucketFor(buckets, l)]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s-%d", c.model, c.batch), "1", f2(natives[ci] / astraTotal),
		})
	}
	return t, nil
}
