package harness

import (
	"testing"

	"astra/internal/distsim"
)

func TestCostModelComparisonMath(t *testing.T) {
	c := CostModelComparison{ColdTrials: 20, PriorTrials: 13, PriorUs: 1001, ExhaustiveUs: 1000}
	if got := c.ReductionPct(); got != 35 {
		t.Fatalf("ReductionPct = %v, want 35", got)
	}
	if got := c.GapPct(); got < 0.09 || got > 0.11 {
		t.Fatalf("GapPct = %v, want ~0.1", got)
	}
	// Degenerate denominators report zero, not NaN/Inf.
	var zero CostModelComparison
	if zero.ReductionPct() != 0 || zero.GapPct() != 0 {
		t.Fatalf("zero comparison = %v%% / %v%%", zero.ReductionPct(), zero.GapPct())
	}
}

func TestBindingFlips(t *testing.T) {
	a := []string{"u=1", "v=a", "w=x"}
	b := []string{"u=1", "v=b", "w=y"}
	if got := bindingFlips(a, b); got != 2 {
		t.Fatalf("bindingFlips = %d, want 2", got)
	}
	if got := bindingFlips(a, a); got != 0 {
		t.Fatalf("identical lists flips = %d, want 0", got)
	}
}

func TestRelDiffPct(t *testing.T) {
	if got := relDiffPct(101, 100); got < 0.99 || got > 1.01 {
		t.Fatalf("relDiffPct(101,100) = %v, want ~1", got)
	}
	if got := relDiffPct(99, 100); got < 0.99 || got > 1.01 {
		t.Fatalf("relDiffPct is not symmetric: %v", got)
	}
	if got := relDiffPct(5, 0); got != 0 {
		t.Fatalf("relDiffPct with zero base = %v, want 0", got)
	}
}

// TestCompareCostModelSingleCell runs one real ext-costmodel cell in short
// mode: donor batch 32 trains the model, the batch-64 target explores cold
// and seeded, and CompareCostModel's internal gates (pruned-winner audit,
// 0.1% step and exhaustive-gap bounds) must all hold.
func TestCompareCostModelSingleCell(t *testing.T) {
	c, err := CompareCostModel("scrnn", distsim.PCIe(), 64, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.DonorTrials == 0 || c.ColdTrials == 0 || c.PriorTrials == 0 {
		t.Fatalf("implausible trial counts: %+v", c)
	}
	if c.PriorTrials >= c.ColdTrials {
		t.Fatalf("seeded run took %d trials vs cold %d — prior saved nothing", c.PriorTrials, c.ColdTrials)
	}
	if c.Prior.Hits+c.Prior.Misses == 0 {
		t.Fatalf("prior never planned: %+v", c.Prior)
	}
}
