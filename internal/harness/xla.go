package harness

import (
	"fmt"

	"astra/internal/baselines"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/parallel"
	"astra/internal/wire"
)

// Table9 reproduces the TensorFlow comparison (§6.6, Table 9): Astra_FK
// (the TF prototype supports only fusion + kernel selection) against native
// TF, TF+XLA and cuDNN where applicable. As in the paper, the models are
// evaluated with the embedding operation removed, because XLA's embedding
// handling bounces through the host and is up to 3x *worse* than native TF
// — that pathological variant is reported in the notes.
func Table9(o Options) (*Table, error) {
	t := &Table{
		ID:     "table9",
		Title:  "TensorFlow prototype: factor speedups relative to native TF (embeddings removed)",
		Header: []string{"Model", "TF", "TF+XLA", "Astra_FK", "cuDNN"},
		Notes: []string{
			"paper (batch 16/32 rows): XLA 0.98-1.45, Astra_FK 1.32-2.0, cuDNN only for stacked LSTM and GNMT",
		},
	}
	type cell struct {
		model string
		batch int
	}
	cells := []cell{
		{"scrnn", 16}, {"scrnn", 32},
		{"milstm", 16}, {"milstm", 32},
		{"sublstm", 16}, {"sublstm", 32},
		{"stackedlstm", 16}, {"stackedlstm", 32},
		{"gnmt", 16}, {"gnmt", 32},
	}
	if o.Quick {
		cells = []cell{{"scrnn", 16}, {"sublstm", 16}, {"stackedlstm", 16}}
	}
	tf := baselines.TensorFlow()
	rows, err := parallel.Map(o.workers(), len(cells), func(i int) ([]string, error) {
		c := cells[i]
		build, _ := models.Get(c.model)
		cfg := models.DefaultConfig(c.model, c.batch)
		cfg.Embedding = false
		m := build(cfg)

		nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), tf, nil, nil)
		xla := baselines.RunXLA(m.G, gpusim.NewDevice(gpusim.P100()), nil, nil)

		s := wire.NewSession(m, wire.SessionConfig{
			Device:  gpusim.P100(),
			Options: enumerate.PresetOptions(enumerate.PresetFK),
			// The TF build interposes at the graph executor: same per-op
			// cost as the XLA executor.
			Runner: wire.RunnerConfig{PerOpCPUUs: 3},
		})
		s.Explore()
		astra := s.WiredTimeUs()

		cudnnCol := "-"
		if cud, ok := baselines.RunCuDNN(m, gpusim.NewDevice(gpusim.P100()), tf, nil, nil); ok {
			cudnnCol = f2(nat.TimeUs / cud.TimeUs)
		}
		o.progress("table9 %s-%d done", c.model, c.batch)
		return []string{
			fmt.Sprintf("%s (%d)", c.model, c.batch),
			"1",
			f2(nat.TimeUs / xla.TimeUs),
			fmt.Sprintf("%s (%s)", f2(nat.TimeUs/astra), f2(xla.TimeUs/astra)),
			cudnnCol,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows

	// The embedding pathology the paper describes in prose: XLA with
	// embeddings present is worse than native TF.
	m := buildModel("scrnn", 16)
	natE := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), tf, nil, nil)
	xlaE := baselines.RunXLA(m.G, gpusim.NewDevice(gpusim.P100()), nil, nil)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"with embeddings present, XLA runs at %.2fx native TF on SCRNN (paper: ~3x worse) — host round-trips per lookup",
		natE.TimeUs/xlaE.TimeUs))
	return t, nil
}
