package harness

import (
	"strconv"
	"strings"
	"testing"
)

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := Run(id, Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	return tab
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	s = strings.Fields(s)[0] // strip annotations like "(1.23)"
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell [%d][%d] = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestNamesAndUnknown(t *testing.T) {
	if len(Names()) != 21 {
		t.Fatalf("experiments = %v", Names())
	}
	if _, err := Run("tableX", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	tab := mustRun(t, "table1")
	// Row 0 (64x1024x4096): oai1 < cublas << oai2. Row 1: cublas best.
	if !(cellF(t, tab, 0, 2) < cellF(t, tab, 0, 1)) {
		t.Fatal("row 0: oai1 should beat cublas")
	}
	if !(cellF(t, tab, 0, 3) > 3*cellF(t, tab, 0, 1)) {
		t.Fatal("row 0: oai2 should be pathological")
	}
	if !(cellF(t, tab, 1, 1) < cellF(t, tab, 1, 2) && cellF(t, tab, 1, 1) < cellF(t, tab, 1, 3)) {
		t.Fatal("row 1: cublas should win")
	}
}

func TestSection32Shape(t *testing.T) {
	tab := mustRun(t, "sec32")
	par := cellF(t, tab, 0, 1)
	fused := cellF(t, tab, 1, 1)
	if par >= fused {
		t.Fatalf("anomaly not reproduced: parallel %v vs fused %v", par, fused)
	}
	ratio := fused / par
	if ratio < 1.05 || ratio > 2.0 {
		t.Fatalf("fused/parallel ratio %v implausible (paper: 211/172 = 1.23)", ratio)
	}
}

func TestAutoboostAblationMultiSampleClosesGap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	// Acceptance check for the noise-robustness work: on sublstm/16 with
	// BoostJitter=0.08, single-sample exploration under autoboost picks a
	// measurably worse configuration than pinned-clock exploration, and
	// 5-sample averaging recovers to within 2% of the pinned choice.
	tab, err := AblationAutoboost(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	pinned := cellF(t, tab, 0, 2)
	noisy := cellF(t, tab, 1, 2)
	multi := cellF(t, tab, 2, 2)
	if noisy <= pinned {
		t.Fatalf("autoboost exploration (%v) not worse than pinned (%v); ablation lost its signal", noisy, pinned)
	}
	if multi > pinned*1.02 {
		t.Fatalf("5-sample exploration wired %v us, more than 2%% above pinned %v us", multi, pinned)
	}
	if multi >= noisy {
		t.Fatalf("5-sample exploration (%v) no better than single-sample (%v)", multi, noisy)
	}
	// Multi-sampling pays in exploration length: 5 samples per config.
	if c1, c5 := cellF(t, tab, 1, 1), cellF(t, tab, 2, 1); c5 < 4*c1 {
		t.Fatalf("5-sample exploration used %v configs vs %v — sampling policy not applied", c5, c1)
	}
}

func TestSpeedupTableShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	for _, id := range []string{"table2", "table4"} {
		tab := mustRun(t, id)
		for r := range tab.Rows {
			f := cellF(t, tab, r, 2)
			fk := cellF(t, tab, r, 3)
			fks := cellF(t, tab, r, 4)
			all := cellF(t, tab, r, 5)
			if f <= 1.0 {
				t.Errorf("%s row %d: Astra_F %v <= 1", id, r, f)
			}
			if fk < f*0.98 || fks < fk*0.98 || all < fks*0.98 {
				t.Errorf("%s row %d: presets not monotone: %v %v %v %v", id, r, f, fk, fks, all)
			}
			if all > 5 {
				t.Errorf("%s row %d: speedup %v beyond the paper's band", id, r, all)
			}
		}
		// Speedups shrink as batch grows (launch overhead amortizes).
		if len(tab.Rows) >= 2 {
			first := cellF(t, tab, 0, 5)
			last := cellF(t, tab, len(tab.Rows)-1, 5)
			if last > first {
				t.Errorf("%s: speedup did not shrink with batch size (%v -> %v)", id, first, last)
			}
		}
	}
}

func TestCuDNNTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	tab := mustRun(t, "table5")
	for r := range tab.Rows {
		pyt := cellF(t, tab, r, 1)
		if pyt >= 1 {
			t.Errorf("row %d: native PyTorch (%v) should lose to cuDNN", r, pyt)
		}
		all := cellF(t, tab, r, 5)
		if all < 0.85 || all > 2 {
			t.Errorf("row %d: Astra_all rel-cuDNN %v outside plausible band", r, all)
		}
		if all <= pyt {
			t.Errorf("row %d: Astra (%v) should beat native (%v)", r, all, pyt)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	tab := mustRun(t, "table7")
	for _, row := range tab.Rows {
		fks, _ := strconv.Atoi(row[1])
		all, _ := strconv.Atoi(row[2])
		if fks <= 0 || all < fks {
			t.Errorf("%s: configs FKS=%d All=%d", row[0], fks, all)
		}
		if all > 20000 {
			t.Errorf("%s: state space %d not 'a few thousand'", row[0], all)
		}
		ov := strings.TrimSuffix(row[4], "%")
		frac, _ := strconv.ParseFloat(ov, 64)
		if frac >= 0.5 {
			t.Errorf("%s: profiling overhead %v%% >= 0.5%%", row[0], frac)
		}
	}
}

func TestTable8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	tab := mustRun(t, "table8")
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if v <= 1 {
			t.Errorf("%s: bucketing speedup %v <= 1", row[0], v)
		}
		if v > 4 {
			t.Errorf("%s: bucketing speedup %v beyond the paper's band", row[0], v)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	tab := mustRun(t, "table9")
	for r, row := range tab.Rows {
		xla := cellF(t, tab, r, 2)
		astra := cellF(t, tab, r, 3)
		if astra <= xla*0.95 {
			t.Errorf("%s: Astra_FK (%v) should beat XLA (%v)", row[0], astra, xla)
		}
		if astra <= 1 {
			t.Errorf("%s: Astra_FK (%v) should beat native TF", row[0], astra)
		}
	}
	// The embedding-pathology note must report XLA < 1x native.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "with embeddings present") {
			found = true
			var v float64
			if _, err := fmt_Sscanf(n, &v); err == nil && v >= 1 {
				t.Errorf("embedding pathology not reproduced: %v", v)
			}
		}
	}
	if !found {
		t.Error("missing embedding-pathology note")
	}
}

// fmt_Sscanf pulls the first float out of the note text.
func fmt_Sscanf(s string, v *float64) (int, error) {
	for _, f := range strings.Fields(s) {
		f = strings.TrimSuffix(f, "x")
		if x, err := strconv.ParseFloat(f, 64); err == nil {
			*v = x
			return 1, nil
		}
	}
	return 0, strconv.ErrSyntax
}

func TestFigureExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	fig1 := mustRun(t, "fig1")
	if len(fig1.Rows) < 2 {
		t.Fatal("fig1: expected at least two allocation strategies")
	}
	chosen := 0
	for _, row := range fig1.Rows {
		if strings.Contains(row[0], "chosen") {
			chosen++
		}
	}
	if chosen != 1 {
		t.Fatalf("fig1: %d chosen strategies", chosen)
	}
	fig2 := mustRun(t, "fig2")
	joined := ""
	for _, r := range fig2.Rows {
		joined += r[0] + "\n"
	}
	for _, want := range []string{"(parallel)", "(prefix)", "(exhaustive)", "(fork)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("fig2: update tree missing %s", want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"hello"},
	}
	s := tab.String()
	for _, want := range []string{"## x — demo", "long-header", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}
