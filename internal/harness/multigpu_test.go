package harness

import (
	"testing"

	"astra/internal/distsim"
)

// TestMultiGPUExplorationMatchesExhaustive is the acceptance bar of the
// event-level comm dimension: for two models on both fabrics, the online
// explorer's frozen bucket/placement schedule must land within 2% of the
// best schedule found by exhaustively measuring the whole space, and the
// overlap must beat the bulk-synchronous baseline on at least one pair.
func TestMultiGPUExplorationMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	models := []string{"scrnn", "sublstm"}
	overlapWins := 0
	for _, name := range models {
		for _, fabric := range distsim.Fabrics() {
			c, err := CompareMultiGPU(name, fabric, 64, 4)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, fabric.Name, err)
			}
			if gap := c.GapPct(); gap > 2.0 {
				t.Errorf("%s/%s: explored %v (bucket=%s place=%s) is %.2f%% off exhaustive best %v (bucket=%s place=%s)",
					name, fabric.Name, c.ExploredUs, c.ExploredBucket, c.ExploredPlace,
					gap, c.ExhaustiveUs, c.ExhaustiveBucket, c.ExhaustivePlace)
			}
			if c.ExploredUs < c.BulkSyncUs {
				overlapWins++
			}
			t.Logf("%s/%s: bulk=%.0f explored=%.0f (gain %.1f%%) exhaustive=%.0f (gap %.2f%%) schedule=%s/%s",
				name, fabric.Name, c.BulkSyncUs, c.ExploredUs, c.OverlapGainPct(),
				c.ExhaustiveUs, c.GapPct(), c.ExploredBucket, c.ExploredPlace)
		}
	}
	if overlapWins == 0 {
		t.Error("overlapped gradient exchange never beat the bulk-synchronous baseline")
	}
}
