package harness

import (
	"fmt"

	"astra/internal/enumerate"
	"astra/internal/models"
	"astra/internal/parallel"
)

func init() {
	experiments["inventory"] = Inventory
}

// Inventory characterizes every zoo model's training graph and what the
// enumerator finds in it — the structural context behind the evaluation
// tables (graph sizes, fusion surface, schedule partitioning, variables).
func Inventory(o Options) (*Table, error) {
	t := &Table{
		ID:    "inventory",
		Title: "Model and enumerator inventory (batch 16)",
		Header: []string{
			"Model", "nodes", "GEMMs", "units", "groups", "grouped GEMMs",
			"requests", "allocs", "super-epochs", "epochs", "variables",
		},
	}
	names := models.Names()
	rows, err := parallel.Map(o.workers(), len(names), func(i int) ([]string, error) {
		name := names[i]
		m := buildModel(name, 16)
		p := enumerate.Enumerate(m.G, enumerate.PresetOptions(enumerate.PresetAll))
		st := p.Stats()
		gs := m.G.Stats()
		o.progress("inventory %s done", name)
		return []string{
			name,
			fmt.Sprint(gs.Nodes), fmt.Sprint(gs.MatMuls),
			fmt.Sprint(st.Units), fmt.Sprint(st.Groups), fmt.Sprint(st.GroupedGEMMs),
			fmt.Sprint(st.Requests), fmt.Sprint(st.Allocs),
			fmt.Sprint(st.SuperEpochs), fmt.Sprint(st.Epochs), fmt.Sprint(st.Variables),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
