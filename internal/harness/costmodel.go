package harness

import (
	"fmt"

	"astra/internal/costmodel"
	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/parallel"
)

func init() {
	experiments["ext-costmodel"] = ExtCostModel
}

// CostModelComparison is one ext-costmodel cell: the same model/fabric pair
// explored cold and prior-seeded, with the exhaustive comm sweep as ground
// truth. The prior is trained only by a donor session at a *different*
// batch size, so every prediction the seeded run uses came through the
// cost model's neighbour-shape (L1) transfer, never from an exact-shape
// replay of the target exploration.
type CostModelComparison struct {
	Model   string
	Fabric  string
	Workers int
	// DonorTrials is what the batch-32 teacher session spent (ModeTrain:
	// behaviour identical to a prior-free run, it only feeds the model).
	DonorTrials int
	// ColdTrials/ColdUs are the prior-free target exploration; PriorTrials/
	// PriorUs the same target exploration seeded with the donor-trained
	// model (ModeFull: rank + margin prune).
	ColdTrials  int
	ColdUs      float64
	PriorTrials int
	PriorUs     float64
	// ExhaustiveUs is the best fixed comm schedule from the offline sweep.
	ExhaustiveUs float64
	// BindingFlips counts variables the cold and seeded runs froze
	// differently. Reordering visits changes which configurations share a
	// trial, so near-tie variables may flip either way; the step-time
	// gates prove the flips are cost-neutral, and the pruned-winner audit
	// proves none of them was forced by pruning.
	BindingFlips int
	// Prior counts the seeded run's plan quality (hits/misses/prunes).
	Prior struct {
		Hits, Misses, Pruned, RankInv int
	}
}

// ReductionPct is the trials-to-freeze saving of the seeded run.
func (c CostModelComparison) ReductionPct() float64 {
	if c.ColdTrials == 0 {
		return 0
	}
	return 100 * (1 - float64(c.PriorTrials)/float64(c.ColdTrials))
}

// GapPct is the seeded run's distance from the exhaustive comm optimum.
func (c CostModelComparison) GapPct() float64 {
	if c.ExhaustiveUs == 0 {
		return 0
	}
	return 100 * (c.PriorUs/c.ExhaustiveUs - 1)
}

// CompareCostModel runs one cell. donorBatch trains the model (ModeTrain),
// globalBatch is explored cold and then seeded (ModeFull); the two target
// runs must freeze identical bindings — the K-survivor valve and margin
// guarantee the measured best is never pruned away — and the seeded result
// must stay within 0.1% of both the cold result and the exhaustive sweep.
func CompareCostModel(model string, fabric distsim.Interconnect, globalBatch, donorBatch, workers int) (CostModelComparison, error) {
	out := CostModelComparison{Model: model, Fabric: fabric.Name, Workers: workers}
	shared := costmodel.NewModel()
	meta := func(batch int) costmodel.Meta {
		return costmodel.Meta{
			Model: model, Scale: "default", Batch: batch / workers,
			Workers: workers, Fabric: fabric.Name,
		}
	}

	// Donor: a neighbour-shape session teaches the model. ModeTrain plans
	// nothing, so this is exactly a cold exploration that happens to be
	// observed.
	donor := &distsim.Cluster{
		Interconnect: fabric, Preset: enumerate.PresetFK,
		Prior: costmodel.NewPlanner(shared, meta(donorBatch), costmodel.PlannerConfig{Mode: costmodel.ModeTrain}),
	}
	dres, err := donor.Step(model, donorBatch, workers)
	if err != nil {
		return out, fmt.Errorf("donor: %w", err)
	}
	out.DonorTrials = dres.Trials

	// Cold reference at the target shape: no prior at all.
	cold := &distsim.Cluster{Interconnect: fabric, Preset: enumerate.PresetFK}
	cres, err := cold.Step(model, globalBatch, workers)
	if err != nil {
		return out, fmt.Errorf("cold: %w", err)
	}
	out.ColdTrials, out.ColdUs = cres.Trials, cres.StepUs

	// Seeded: same target shape, donor-trained model, rank + prune. The
	// target batch bucket was never observed, so every plan comes from the
	// L1 neighbour-shape backoff.
	seeded := &distsim.Cluster{
		Interconnect: fabric, Preset: enumerate.PresetFK,
		Prior: costmodel.NewPlanner(shared, meta(globalBatch), costmodel.PlannerConfig{Mode: costmodel.ModeFull}),
	}
	pres, err := seeded.Step(model, globalBatch, workers)
	if err != nil {
		return out, fmt.Errorf("seeded: %w", err)
	}
	out.PriorTrials, out.PriorUs = pres.Trials, pres.StepUs
	out.Prior.Hits, out.Prior.Misses = pres.Prior.Hits, pres.Prior.Misses
	out.Prior.Pruned, out.Prior.RankInv = pres.Prior.Pruned, pres.Prior.RankInversions

	// Ground truth: the offline exhaustive comm sweep.
	exh := &distsim.Cluster{Interconnect: fabric, Preset: enumerate.PresetFK}
	sweep, best, err := exh.Exhaustive(model, globalBatch, workers)
	if err != nil {
		return out, fmt.Errorf("exhaustive: %w", err)
	}
	out.ExhaustiveUs = sweep[best].StepUs

	// Safety gates, per cell. First the pruning audit: no binding the cold
	// run froze may ever have been pruned by the seeded run's plans — the
	// prior is allowed to reorder the path to the answer, never to make
	// the reference answer unmeasurable.
	pruned := make(map[string]bool, len(pres.PrunedChoices))
	for _, pc := range pres.PrunedChoices {
		pruned[pc] = true
	}
	for _, b := range cres.Bindings {
		if pruned[b] {
			return out, fmt.Errorf("%s/%s: seeded exploration pruned the cold run's winner %q", model, fabric.Name, b)
		}
	}
	out.BindingFlips = bindingFlips(cres.Bindings, pres.Bindings)
	if diff := relDiffPct(pres.StepUs, cres.StepUs); diff > 0.1 {
		return out, fmt.Errorf("%s/%s: seeded step %.1fµs vs cold %.1fµs (%.3f%% apart, gate 0.1%%)",
			model, fabric.Name, pres.StepUs, cres.StepUs, diff)
	}
	if gap := out.GapPct(); gap > 0.1 {
		return out, fmt.Errorf("%s/%s: seeded step %.1fµs is %.3f%% off exhaustive %.1fµs (gate 0.1%%)",
			model, fabric.Name, pres.StepUs, gap, out.ExhaustiveUs)
	}
	return out, nil
}

// bindingFlips counts "var=label" entries present in exactly one of two
// sorted binding lists, per variable (a flip counts once, not twice).
func bindingFlips(a, b []string) int {
	in := make(map[string]bool, len(a))
	for _, s := range a {
		in[s] = true
	}
	flips := 0
	for _, s := range b {
		if !in[s] {
			flips++
		}
	}
	return flips
}

func relDiffPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := 100 * (a/b - 1)
	if d < 0 {
		d = -d
	}
	return d
}

// ExtCostModel measures the cost-model prior end to end: for each
// model/fabric pair a donor session at batch 32 trains the model, and the
// batch-64 target exploration runs cold vs prior-seeded. The headline
// number is trials-to-freeze; the safety columns prove the seeded run
// froze the identical schedule and stayed within 0.1% of the exhaustive
// comm optimum. The acceptance gate is a ≥25% trial reduction on at least
// 3 of the 4 cells.
func ExtCostModel(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext-costmodel",
		Title: "Prior-seeded vs cold exploration, 4 workers, donor batch 32 → target batch 64 (trials to freeze)",
		Header: []string{
			"Model", "fabric", "cold trials", "seeded trials", "reduction",
			"cold µs", "seeded µs", "exhaustive µs", "gap", "hits/misses", "pruned", "flips",
		},
		Notes: []string{
			"donor: a batch-32 session trains the cost model (ModeTrain — behaviour identical to cold)",
			"seeded: batch-64 exploration re-ranked and margin-pruned by the donor-trained model (L1 neighbour-shape transfer)",
			"safety: no cold-run winner was ever pruned (asserted), and the seeded step is within 0.1% of cold",
			"gap: seeded wired step vs the offline exhaustive comm sweep (gate 0.1%)",
			"flips: near-tie variables frozen differently under the reordered visit schedule (cost-neutral by the gates above)",
		},
	}
	models := []string{"scrnn", "sublstm"}
	fabrics := distsim.Fabrics()
	type cell struct {
		row []string
		cmp CostModelComparison
	}
	cells, err := parallel.Map(o.workers(), len(models)*len(fabrics), func(i int) (cell, error) {
		name, fabric := models[i/len(fabrics)], fabrics[i%len(fabrics)]
		c, err := CompareCostModel(name, fabric, 64, 32, 4)
		if err != nil {
			return cell{}, err
		}
		o.progress("ext-costmodel %s %s done (%d -> %d trials)", name, fabric.Name, c.ColdTrials, c.PriorTrials)
		return cell{
			row: []string{
				name, fabric.Name,
				fmt.Sprintf("%d", c.ColdTrials),
				fmt.Sprintf("%d", c.PriorTrials),
				fmt.Sprintf("%.0f%%", c.ReductionPct()),
				fmt.Sprintf("%.0f", c.ColdUs),
				fmt.Sprintf("%.0f", c.PriorUs),
				fmt.Sprintf("%.0f", c.ExhaustiveUs),
				fmt.Sprintf("%.2f%%", c.GapPct()),
				fmt.Sprintf("%d/%d", c.Prior.Hits, c.Prior.Misses),
				fmt.Sprintf("%d", c.Prior.Pruned),
				fmt.Sprintf("%d", c.BindingFlips),
			},
			cmp: c,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	hit := 0
	for _, c := range cells {
		if c.cmp.ReductionPct() >= 25 {
			hit++
		}
		t.Rows = append(t.Rows, c.row)
	}
	if hit < 3 {
		return nil, fmt.Errorf("ext-costmodel: only %d of %d cells reached a 25%% trial reduction", hit, len(cells))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("acceptance: %d of %d cells at >= 25%% trial reduction (gate: 3)", hit, len(cells)))
	return t, nil
}
