package harness

import (
	"fmt"
	"math"

	"astra/internal/gpusim"
	"astra/internal/kernels"
)

// Table1 reproduces the paper's Table 1: per-library times for the two
// GEMM shapes from an LSTM run (a forward-pass fused GEMM and a backward
// GEMM), showing that the best library depends on the shape.
func Table1(o Options) (*Table, error) {
	shapes := []kernels.GEMMShape{
		{M: 64, K: 1024, N: 4096},
		{M: 64, K: 4096, N: 1024},
	}
	t := &Table{
		ID:     "table1",
		Title:  "GEMM library times (ms) on the simulated P100",
		Header: []string{"Size", "cuBlas", "OAI_1", "OAI_2"},
		Notes: []string{
			"paper: 64x1024x4096 -> 0.156 / 0.125 / 0.938; 64x4096x1024 -> 0.138 / 0.172 / 0.141",
		},
	}
	for _, s := range shapes {
		row := []string{s.String()}
		for _, lib := range kernels.Libraries() {
			dev := gpusim.NewDevice(gpusim.P100())
			rec := dev.Launch(0, kernels.GEMM(lib, s))
			dev.Synchronize()
			row = append(row, fmt.Sprintf("%.3f", rec.DurationUs()/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Section32 reproduces the §3.2 anomaly: two (256x1024)x(1024x1024) GEMMs
// on two streams finish before the fused (512x1024)x(1024x1024) GEMM.
func Section32(o Options) (*Table, error) {
	cfg := gpusim.P100()
	small := kernels.GEMM(kernels.CuBLAS, kernels.GEMMShape{M: 256, K: 1024, N: 1024})

	par := gpusim.NewDevice(cfg)
	par.EnsureStreams(2)
	par.Launch(0, small)
	par.Launch(1, small)
	par.Synchronize()
	parEnd := 0.0
	for _, r := range par.Records() {
		parEnd = math.Max(parEnd, r.EndUs)
	}

	fused := gpusim.NewDevice(cfg)
	rec := fused.Launch(0, kernels.GEMM(kernels.CuBLAS, kernels.GEMMShape{M: 512, K: 1024, N: 1024}))
	fused.Synchronize()

	t := &Table{
		ID:     "sec32",
		Title:  "Fusion anomaly: parallel streams vs fused GEMM",
		Header: []string{"configuration", "time (us)"},
		Rows: [][]string{
			{"2x (256x1024)x(1024x1024), 2 streams", fmt.Sprintf("%.0f", parEnd)},
			{"1x (512x1024)x(1024x1024), fused", fmt.Sprintf("%.0f", rec.EndUs)},
		},
		Notes: []string{"paper: 172 us parallel vs 211 us fused (P100, CUDA 9.2)"},
	}
	if parEnd >= rec.EndUs {
		t.Notes = append(t.Notes, "ANOMALY NOT REPRODUCED")
	}
	return t, nil
}
