package harness

import (
	"fmt"

	"astra/internal/baselines"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/wire"
)

// exploreWired compiles the model at the preset, explores to convergence
// and returns (wired batch time, exploration trials, alloc strategies).
func exploreWired(m *models.Model, preset enumerate.Preset) (float64, int, int) {
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(preset),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	s.Explore()
	return s.WiredTimeUs(), s.Trials, len(s.Plan.Allocs)
}

func buildModel(name string, batch int) *models.Model {
	build, ok := models.Get(name)
	if !ok {
		panic("harness: unknown model " + name)
	}
	return build(models.DefaultConfig(name, batch))
}

// speedupTable renders Tables 2–4: factor speedup relative to native
// PyTorch for the cumulative Astra presets across mini-batch sizes.
func speedupTable(id, model string, o Options) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s speedup vs native PyTorch", model),
		Header: []string{"Mini-batch", "PyT", "Astra_F", "Astra_FK", "Astra_FKS", "Astra_all"},
	}
	presets := []enumerate.Preset{enumerate.PresetF, enumerate.PresetFK, enumerate.PresetFKS, enumerate.PresetAll}
	for _, batch := range o.batches() {
		m := buildModel(model, batch)
		nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		row := []string{fmt.Sprint(batch), "1"}
		for _, p := range presets {
			wired, _, _ := exploreWired(m, p)
			row = append(row, f2(nat.TimeUs/wired))
			o.progress("%s %s batch=%d %s done", id, model, batch, p)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// cudnnTable renders Tables 5–6: performance relative to PyTorch+cuDNN for
// the models (partially) covered by the hand-optimized compound kernels.
func cudnnTable(id, model string, o Options) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s performance relative to cuDNN", model),
		Header: []string{"Mini-batch", "PyT", "cuDNN", "Astra_F", "Astra_FK", "Astra_all"},
	}
	presets := []enumerate.Preset{enumerate.PresetF, enumerate.PresetFK, enumerate.PresetAll}
	for _, batch := range o.batches() {
		m := buildModel(model, batch)
		nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		cud, ok := baselines.RunCuDNN(m, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		if !ok {
			return nil, fmt.Errorf("harness: cuDNN does not cover %s", model)
		}
		row := []string{fmt.Sprint(batch), f2(cud.TimeUs / nat.TimeUs), "1"}
		for _, p := range presets {
			wired, _, _ := exploreWired(m, p)
			row = append(row, f2(cud.TimeUs/wired))
			o.progress("%s %s batch=%d %s done", id, model, batch, p)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
