package harness

import (
	"fmt"

	"astra/internal/baselines"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/parallel"
	"astra/internal/wire"
)

// exploreWired compiles the model at the preset, explores to convergence
// and returns (wired batch time, exploration trials, alloc strategies).
func exploreWired(m *models.Model, preset enumerate.Preset) (float64, int, int) {
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(preset),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	})
	s.Explore()
	return s.WiredTimeUs(), s.Trials, len(s.Plan.Allocs)
}

func buildModel(name string, batch int) *models.Model {
	build, ok := models.Get(name)
	if !ok {
		panic("harness: unknown model " + name)
	}
	return build(models.DefaultConfig(name, batch))
}

// speedupTable renders Tables 2–4: factor speedup relative to native
// PyTorch for the cumulative Astra presets across mini-batch sizes. Every
// (batch, preset) cell is an independent exploration episode — its own
// model build, native baseline and session — so the cells fan out across
// Options.Parallel workers and merge back in canonical order.
func speedupTable(id, model string, o Options) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s speedup vs native PyTorch", model),
		Header: []string{"Mini-batch", "PyT", "Astra_F", "Astra_FK", "Astra_FKS", "Astra_all"},
	}
	presets := []enumerate.Preset{enumerate.PresetF, enumerate.PresetFK, enumerate.PresetFKS, enumerate.PresetAll}
	batches := o.batches()
	cells, err := parallel.Map(o.workers(), len(batches)*len(presets), func(i int) (string, error) {
		batch, p := batches[i/len(presets)], presets[i%len(presets)]
		m := buildModel(model, batch)
		nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		wired, _, _ := exploreWired(m, p)
		o.progress("%s %s batch=%d %s done", id, model, batch, p)
		return f2(nat.TimeUs / wired), nil
	})
	if err != nil {
		return nil, err
	}
	for bi, batch := range batches {
		row := []string{fmt.Sprint(batch), "1"}
		row = append(row, cells[bi*len(presets):(bi+1)*len(presets)]...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// cudnnTable renders Tables 5–6: performance relative to PyTorch+cuDNN for
// the models (partially) covered by the hand-optimized compound kernels.
// Cells parallelize exactly like speedupTable's.
func cudnnTable(id, model string, o Options) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s performance relative to cuDNN", model),
		Header: []string{"Mini-batch", "PyT", "cuDNN", "Astra_F", "Astra_FK", "Astra_all"},
	}
	presets := []enumerate.Preset{enumerate.PresetF, enumerate.PresetFK, enumerate.PresetAll}
	batches := o.batches()
	type cell struct{ pyt, val string }
	cells, err := parallel.Map(o.workers(), len(batches)*len(presets), func(i int) (cell, error) {
		batch, p := batches[i/len(presets)], presets[i%len(presets)]
		m := buildModel(model, batch)
		nat := baselines.RunNative(m.G, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		cud, ok := baselines.RunCuDNN(m, gpusim.NewDevice(gpusim.P100()), baselines.PyTorch(), nil, nil)
		if !ok {
			return cell{}, fmt.Errorf("harness: cuDNN does not cover %s", model)
		}
		wired, _, _ := exploreWired(m, p)
		o.progress("%s %s batch=%d %s done", id, model, batch, p)
		return cell{pyt: f2(cud.TimeUs / nat.TimeUs), val: f2(cud.TimeUs / wired)}, nil
	})
	if err != nil {
		return nil, err
	}
	for bi, batch := range batches {
		row := []string{fmt.Sprint(batch), cells[bi*len(presets)].pyt, "1"}
		for pi := range presets {
			row = append(row, cells[bi*len(presets)+pi].val)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
