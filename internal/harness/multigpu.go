package harness

import (
	"fmt"

	"astra/internal/distsim"
	"astra/internal/enumerate"
)

func init() {
	experiments["ext-multigpu"] = ExtMultiGPU
}

// ExtMultiGPU demonstrates the §3.4/§6.7 extension dimension: picking the
// data-parallel degree by measurement. For each model and fabric, every
// candidate worker count is actually run (each worker Astra-wired for its
// per-device batch) and the measured throughputs decide — no communication
// or scaling model involved, in keeping with Astra's philosophy.
func ExtMultiGPU(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext-multigpu",
		Title: "Measured data-parallel scaling (global batch 64, rows/ms, best marked *)",
		Header: []string{
			"Model", "fabric", "n=1", "n=2", "n=4", "n=8", "best",
		},
		Notes: []string{
			"per-worker compute is Astra_FK-wired for its per-device batch; gradients ring-all-reduced",
			"the paper lists degree-of-parallelism as a natural extra adaptation dimension (§3.4, §6.7)",
		},
	}
	models := []string{"scrnn", "sublstm"}
	if !o.Quick {
		models = append(models, "milstm", "stackedlstm")
	}
	cands := []int{1, 2, 4, 8}
	for _, name := range models {
		for _, fabric := range []distsim.Interconnect{distsim.PCIe(), distsim.NVLink()} {
			c := &distsim.Cluster{Interconnect: fabric, Preset: enumerate.PresetFK}
			results, best, err := c.BestWorkers(name, 64, cands)
			if err != nil {
				return nil, err
			}
			row := []string{name, fabric.Name}
			for i, r := range results {
				cell := fmt.Sprintf("%.1f", r.ThroughputRows)
				if i == best {
					cell += "*"
				}
				row = append(row, cell)
			}
			row = append(row, fmt.Sprintf("n=%d", results[best].Workers))
			t.Rows = append(t.Rows, row)
			o.progress("ext-multigpu %s %s done", name, fabric.Name)
		}
	}
	return t, nil
}
