package harness

import (
	"fmt"

	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/parallel"
)

func init() {
	experiments["ext-multigpu"] = ExtMultiGPU
}

// MultiGPUComparison is the structured result behind one ext-multigpu row:
// the bulk-synchronous baseline, the online-explored schedule, and the
// offline exhaustive optimum for one model/fabric pair.
type MultiGPUComparison struct {
	Model   string
	Fabric  string
	Workers int
	// BulkSyncUs is the step with one bucket serialized on the main stream.
	BulkSyncUs float64
	// ExploredUs is the step under the explorer's frozen comm schedule,
	// with its chosen bucket/placement labels.
	ExploredUs     float64
	ExploredBucket string
	ExploredPlace  string
	// ExhaustiveUs is the best fixed schedule from measuring the whole
	// bucket × placement space offline.
	ExhaustiveUs     float64
	ExhaustiveBucket string
	ExhaustivePlace  string
}

// OverlapGainPct is how much the explored schedule beats bulk-sync by.
func (c MultiGPUComparison) OverlapGainPct() float64 {
	if c.BulkSyncUs == 0 {
		return 0
	}
	return 100 * (1 - c.ExploredUs/c.BulkSyncUs)
}

// GapPct is the explored schedule's distance from the exhaustive optimum
// (>= 0 up to measurement identity; the acceptance bar is 2%).
func (c MultiGPUComparison) GapPct() float64 {
	if c.ExhaustiveUs == 0 {
		return 0
	}
	return 100 * (c.ExploredUs/c.ExhaustiveUs - 1)
}

// CompareMultiGPU measures one model/fabric pair at a fixed worker count:
// bulk-sync baseline, online-explored schedule, and the exhaustive sweep.
func CompareMultiGPU(model string, fabric distsim.Interconnect, globalBatch, workers int) (MultiGPUComparison, error) {
	c := &distsim.Cluster{Interconnect: fabric, Preset: enumerate.PresetFK}
	bulk, err := c.StepBulkSync(model, globalBatch, workers)
	if err != nil {
		return MultiGPUComparison{}, err
	}
	explored, err := c.Step(model, globalBatch, workers)
	if err != nil {
		return MultiGPUComparison{}, err
	}
	sweep, best, err := c.Exhaustive(model, globalBatch, workers)
	if err != nil {
		return MultiGPUComparison{}, err
	}
	return MultiGPUComparison{
		Model:            model,
		Fabric:           fabric.Name,
		Workers:          workers,
		BulkSyncUs:       bulk.StepUs,
		ExploredUs:       explored.StepUs,
		ExploredBucket:   explored.Bucket,
		ExploredPlace:    explored.Placement,
		ExhaustiveUs:     sweep[best].StepUs,
		ExhaustiveBucket: sweep[best].Bucket,
		ExhaustivePlace:  sweep[best].Placement,
	}, nil
}

// ExtMultiGPU demonstrates the §3.4/§6.7 extension dimension at the event
// level: gradient exchange is simulated as ring all-reduce kernels on a
// per-worker comm stream, and the bucket size / stream placement are
// explored online per mini-batch like every other schedule choice. Each row
// compares the bulk-synchronous baseline (what the old closed-form model
// described), the explorer's frozen schedule, and the offline exhaustive
// optimum over the same choice space.
func ExtMultiGPU(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext-multigpu",
		Title: "Event-level data-parallel step, 4 workers, global batch 64 (µs, lower is better)",
		Header: []string{
			"Model", "fabric", "bulk-sync", "explored", "gain", "exhaustive", "gap", "schedule",
		},
		Notes: []string{
			"bulk-sync: one bucket on the main stream, exchange strictly after compute",
			"explored: bucket size and comm-stream placement chosen online by the explorer",
			"exhaustive: best fixed schedule from measuring the whole bucket × placement space",
			"schedule: the explorer's frozen choice (bucket KB / stream)",
		},
	}
	models := []string{"scrnn", "sublstm"}
	if !o.Quick {
		models = append(models, "milstm", "stackedlstm")
	}
	fabrics := distsim.Fabrics()
	rows, err := parallel.Map(o.workers(), len(models)*len(fabrics), func(i int) ([]string, error) {
		name, fabric := models[i/len(fabrics)], fabrics[i%len(fabrics)]
		c, err := CompareMultiGPU(name, fabric, 64, 4)
		if err != nil {
			return nil, err
		}
		o.progress("ext-multigpu %s %s done", name, fabric.Name)
		return []string{
			name, fabric.Name,
			fmt.Sprintf("%.0f", c.BulkSyncUs),
			fmt.Sprintf("%.0f", c.ExploredUs),
			fmt.Sprintf("%.1f%%", c.OverlapGainPct()),
			fmt.Sprintf("%.0f", c.ExhaustiveUs),
			fmt.Sprintf("%.2f%%", c.GapPct()),
			c.ExploredBucket + "/" + c.ExploredPlace,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
