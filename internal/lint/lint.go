// Package lint is Astra's static-analysis framework: a shared go/ast +
// go/types package loader, a rule registry, a unified Finding type and a
// per-rule suppression convention. It is the static mirror of the repo's
// dynamic guards — `make race` proves a run raced or it didn't, the
// AllocsPerRun budgets prove a benchmark allocated or it didn't, but both
// only speak about the executions they saw. The rules here prove the same
// invariants over every path at build time, the way internal/verify proves
// schedule safety without running schedules.
//
// The framework builds with the standard library alone (no external
// analysis framework): rules receive a type-checked *Package and return
// findings; the driver (cmd/astra-lint) loads packages, fans them across
// internal/parallel, filters suppressions and renders text or JSON.
//
// # Suppressions
//
// A finding is suppressed by a marker comment on the flagged line or the
// line above, naming the rule and carrying a written reason:
//
//	for k, v := range bindings { // lint:ok map-range order-independent copy
//
// A marker with no reason text is itself reported (rule "suppression"):
// justify-suppress is the contract, silence is not. The historical marker
// "nodeterm:ok <reason>" is kept as an alias covering the determinism rule
// family, so the existing suppressions in the tree keep working.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the file:line:col: style editors understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// NewFinding builds a Finding from a token position.
func NewFinding(pos token.Position, rule, message string) Finding {
	return Finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: rule, Message: message}
}

// SortFindings orders findings by file, line, column, then rule — the
// canonical order every output mode uses, so parallel and serial runs render
// byte-identically.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// Rule is one static analysis. Implementations are stateless: Check may be
// called from multiple goroutines on different packages.
type Rule interface {
	// Name is the identifier used by -rules selection and lint:ok markers.
	Name() string
	// Doc is a one-line description for the rule catalog.
	Doc() string
	// Applies reports whether the rule covers the package at the given
	// root-relative, slash-separated directory (e.g. "internal/wire").
	// Scoped rules encode *why* they cover a package: the determinism rules
	// own the deterministic core, the lock rules own the concurrent
	// packages, annotation-driven rules apply everywhere.
	Applies(rel string) bool
	// Check analyzes one loaded package and returns its raw findings;
	// suppression filtering happens in Run.
	Check(p *Package) []Finding
}

// registry holds the registered rules, keyed by name.
var registry = map[string]Rule{}

// Register adds a rule to the global registry. Rules register from init
// functions of their packages; the driver imports them for effect.
func Register(r Rule) {
	if _, dup := registry[r.Name()]; dup {
		panic("lint: duplicate rule " + r.Name())
	}
	registry[r.Name()] = r
}

// Rules returns every registered rule sorted by name.
func Rules() []Rule {
	names := make([]string, 0, len(registry))
	for n := range registry { // lint:ok map-range keys sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Rule, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByNames resolves a comma-style rule selection against the registry.
func ByNames(names []string) ([]Rule, error) {
	out := make([]Rule, 0, len(names))
	for _, n := range names {
		r, ok := registry[n]
		if !ok {
			all := make([]string, 0, len(registry))
			for k := range registry { // lint:ok map-range keys sorted below
				all = append(all, k)
			}
			sort.Strings(all)
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", n, strings.Join(all, ", "))
		}
		out = append(out, r)
	}
	return out, nil
}

// InScope is the prefix matcher scoped rules share: rel is in scope when it
// equals a scope entry or sits beneath one.
func InScope(rel string, scope []string) bool {
	for _, s := range scope {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// ---- suppression markers ----

// Marker is the current suppression spelling; LegacyMarker the historical
// nodeterm one, kept so the tree's existing justified suppressions survive
// the framework migration.
const (
	Marker       = "lint:ok"
	LegacyMarker = "nodeterm:ok"
)

// LegacyRules is the determinism family the nodeterm:ok alias covers.
var LegacyRules = map[string]bool{
	"time-now":    true,
	"global-rand": true,
	"map-range":   true,
	"wall-clock":  true,
	"env-read":    true,
}

// suppression is one parsed marker comment.
type suppression struct {
	rule      string // "" means the legacy whole-family marker
	hasReason bool
	pos       token.Position
}

// suppressions parses every marker comment of a file into a line →
// markers map covering the marker's own line and the one below it (so a
// marker can sit on the flagged line or just above).
func suppressionsOf(fset *token.FileSet, f *ast.File) map[int][]suppression {
	out := map[int][]suppression{}
	for _, cg := range f.Comments {
		for _, cmt := range cg.List {
			text := cmt.Text
			var sup suppression
			if i := strings.Index(text, LegacyMarker); i >= 0 {
				rest := strings.Fields(text[i+len(LegacyMarker):])
				sup = suppression{rule: "", hasReason: len(rest) >= 1}
			} else if i := strings.Index(text, Marker); i >= 0 {
				rest := strings.Fields(text[i+len(Marker):])
				sup = suppression{hasReason: len(rest) >= 2}
				if len(rest) >= 1 {
					sup.rule = rest[0]
				}
			} else {
				continue
			}
			sup.pos = fset.Position(cmt.Pos())
			line := sup.pos.Line
			out[line] = append(out[line], sup)
			out[line+1] = append(out[line+1], sup)
		}
	}
	return out
}

// knownRule reports whether a name denotes a registered rule (or a
// determinism-family name, which is registered whenever the nodeterm
// package is linked in).
func knownRule(name string) bool {
	if _, ok := registry[name]; ok {
		return true
	}
	return LegacyRules[name]
}

// covers reports whether the marker suppresses findings of the given rule.
// A marker without a written reason covers nothing: the justification is
// the price of the suppression.
func (s suppression) covers(rule string) bool {
	if !s.hasReason {
		return false
	}
	if s.rule == "" {
		return LegacyRules[rule]
	}
	return s.rule == rule
}

// Run executes every applicable rule on the package, filters suppressed
// findings, reports reason-less markers (rule "suppression"), and returns
// the survivors in canonical order. rel is the package directory relative
// to the module root.
func Run(p *Package, rules []Rule, rel string, force bool) []Finding {
	var raw []Finding
	for _, r := range rules {
		if !force && !r.Applies(rel) {
			continue
		}
		raw = append(raw, r.Check(p)...)
	}

	sups := map[int][]suppression{}
	seen := map[token.Position]bool{}
	var out []Finding
	for _, f := range p.Files {
		for line, list := range suppressionsOf(p.Fset, f) { // lint:ok map-range merged into map keyed by line
			sups[line] = append(sups[line], list...)
		}
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				pos := p.Fset.Position(cmt.Pos())
				if seen[pos] {
					continue
				}
				seen[pos] = true
				text := cmt.Text
				if i := strings.Index(text, LegacyMarker); i >= 0 {
					if len(strings.Fields(text[i+len(LegacyMarker):])) == 0 {
						out = append(out, NewFinding(pos, "suppression", "nodeterm:ok marker without a written reason"))
					}
				} else if i := strings.Index(text, Marker); i >= 0 {
					// Only a marker that names a real rule is held to the
					// reason requirement: prose that mentions the spelling
					// ("… lint:ok markers …") is not a suppression — and a
					// misspelled rule name never suppresses anything, so the
					// finding it meant to silence still surfaces.
					rest := strings.Fields(text[i+len(Marker):])
					if len(rest) == 0 || (knownRule(rest[0]) && len(rest) < 2) {
						out = append(out, NewFinding(pos, "suppression", "lint:ok marker must name a rule and carry a written reason: lint:ok <rule> <reason>"))
					}
				}
			}
		}
	}

	for _, fnd := range raw {
		suppressed := false
		for _, sup := range sups[fnd.Line] {
			if sup.covers(fnd.Rule) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, fnd)
		}
	}
	SortFindings(out)
	return out
}
