package linttest_test

import (
	"go/ast"
	"reflect"
	"testing"

	"astra/internal/lint"
	"astra/internal/lint/linttest"
)

// callFlagger flags every call expression — enough to prove the harness
// loads fixtures through the real loader and filters suppressions.
type callFlagger struct{}

func (callFlagger) Name() string            { return "call-flagger" }
func (callFlagger) Doc() string             { return "test rule: flags every call" }
func (callFlagger) Applies(rel string) bool { return false } // harness bypasses scope
func (callFlagger) Check(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				out = append(out, lint.NewFinding(p.Position(call.Pos()), "call-flagger", "call site"))
			}
			return true
		})
	}
	return out
}

func TestCheckLoadsFixtureAndFilters(t *testing.T) {
	findings := linttest.Check(t, []lint.Rule{callFlagger{}}, `package pkg

func a() {}

func Use() {
	a()
	a() // lint:ok call-flagger fixture, second call is justified
}
`)
	if n := linttest.CountRule(findings, "call-flagger"); n != 1 {
		t.Fatalf("want 1 surviving finding, got %d: %v", n, findings)
	}
	if !linttest.HasMessage(findings, "call site") {
		t.Errorf("HasMessage miss: %v", findings)
	}
	if linttest.HasMessage(findings, "no such text") {
		t.Error("HasMessage false positive")
	}
	if got := linttest.RuleNames(findings); !reflect.DeepEqual(got, []string{"call-flagger"}) {
		t.Errorf("RuleNames: %v", got)
	}
	if linttest.CountRule(findings, "absent") != 0 {
		t.Error("CountRule counted a foreign rule")
	}
}
