// Package linttest holds the shared fixture harness for rule tests: write
// one Go source string into a throwaway module, load it through the real
// internal/lint loader, run a rule set over it and return the surviving
// findings. Every rule package's mutation fixtures (seed a violation,
// assert the rule catches it; add a justified suppression, assert it goes
// quiet) go through this path, so the tests exercise the same loader,
// suppression filter and ordering the astra-lint driver uses.
package linttest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"astra/internal/lint"
)

// Check loads src as package fix/pkg in a fresh temp module and runs the
// given rules over it with scope checks bypassed (fixtures live outside any
// real rule scope). It returns the findings after suppression filtering, in
// canonical order.
func Check(t *testing.T, rules []lint.Rule, src string) []lint.Finding {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ld := lint.NewLoader(root, "fix")
	p, err := ld.Load(dir)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return lint.Run(p, rules, "pkg", true)
}

// RuleNames returns the distinct rule names present in the findings.
func RuleNames(fs []lint.Finding) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range fs {
		if !seen[f.Rule] {
			seen[f.Rule] = true
			out = append(out, f.Rule)
		}
	}
	return out
}

// HasMessage reports whether any finding's message contains substr.
func HasMessage(fs []lint.Finding, substr string) bool {
	for _, f := range fs {
		if strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

// CountRule returns the number of findings carrying the rule name.
func CountRule(fs []lint.Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
		}
	}
	return n
}
