package nodeterm

import (
	"os"
	"path/filepath"
	"testing"
)

const fixture = `package pkg

import (
	"math/rand"
	"time"
)

func Bad() int {
	t := time.Now().Nanosecond() // finding: time-now
	n := rand.Intn(10)           // finding: global-rand
	m := map[string]int{"a": 1}
	s := 0
	for _, v := range m { // finding: map-range
		s += v
	}
	for _, v := range m { // nodeterm:ok summing is commutative
		s += v
	}
	// nodeterm:ok marker on the preceding line also suppresses
	for _, v := range m {
		s += v
	}
	r := rand.New(rand.NewSource(1)) // ok: explicit seeded source
	return t + n + s + r.Intn(3)     // ok: method on *rand.Rand, not the package
}
`

func TestCheckerFindsAndSuppresses(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(root, "m")
	findings, err := c.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"time-now", "global-rand", "map-range"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(want), findings)
	}
	for i, rule := range want {
		if findings[i].Rule != rule {
			t.Errorf("finding %d: rule %s, want %s (%s)", i, findings[i].Rule, rule, findings[i])
		}
	}
}

func TestCheckerSkipsTestFilesByDefault(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	clean := "package pkg\n\nfunc Ok() int { return 1 }\n"
	dirty := "package pkg\n\nfunc Sum(m map[string]int) int {\n\ts := 0\n\tfor _, v := range m {\n\t\ts += v\n\t}\n\treturn s\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg_test.go"), []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(root, "m")
	findings, err := c.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("test file linted by default: %v", findings)
	}
	c2 := NewChecker(root, "m")
	c2.IncludeTests = true
	findings, err = c2.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Rule != "map-range" {
		t.Fatalf("IncludeTests: got %v, want one map-range finding", findings)
	}
}

// TestCheckerOnRealPackage smoke-checks the module-local importer path: the
// wire package imports enumerate, gpusim, graph and friends, all of which
// must resolve through the custom importer for range-over-map types to be
// known.
func TestCheckerOnRealPackage(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(root, "astra")
	findings, err := c.CheckDir(filepath.Join(root, "internal", "wire"))
	if err != nil {
		t.Fatal(err)
	}
	// The tree is kept lint-clean; what matters here is that the checker
	// resolved the package without error. Any findings mean a regression
	// either in wire or in the checker itself.
	if len(findings) != 0 {
		t.Errorf("internal/wire has findings: %v", findings)
	}
}
