package nodeterm_test

import (
	"testing"

	"astra/internal/lint"
	"astra/internal/lint/linttest"
	"astra/internal/lint/nodeterm"
)

func rules(t *testing.T, names ...string) []lint.Rule {
	t.Helper()
	rs, err := lint.ByNames(names)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func family(t *testing.T) []lint.Rule {
	return rules(t, "time-now", "wall-clock", "env-read", "global-rand", "map-range")
}

func TestTimeNow(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
import "time"
func Stamp() int64 { return time.Now().UnixNano() }
`)
	if linttest.CountRule(fs, "time-now") != 1 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestWallClock(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
import "time"
var t0 time.Time
func Since() time.Duration { return time.Since(t0) }
func Until() time.Duration { return time.Until(t0) }
`)
	if linttest.CountRule(fs, "wall-clock") != 2 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestEnvRead(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
import "os"
func Cfg() string {
	v, _ := os.LookupEnv("B")
	_ = os.Environ()
	return os.Getenv("A") + v
}
`)
	if linttest.CountRule(fs, "env-read") != 3 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestGlobalRand(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
import "math/rand"
func Draw() int { return rand.Intn(10) }
func Seeded() *rand.Rand { return rand.New(rand.NewSource(1)) } // constructors are the fix
`)
	if linttest.CountRule(fs, "global-rand") != 1 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestMapRange(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	for i := 0; i < 3; i++ { // not a map: stays silent
		s += i
	}
	return s
}
`)
	if linttest.CountRule(fs, "map-range") != 1 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestSuppressionModernAndLegacy(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // lint:ok map-range order-independent sum
		s += v
	}
	for _, v := range m { // nodeterm:ok commutative fold
		s += v
	}
	return s
}
`)
	if len(fs) != 0 {
		t.Fatalf("suppressed fixture still has findings: %v", fs)
	}
}

func TestSuppressionNeedsReason(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // lint:ok map-range
		s += v
	}
	return s
}
`)
	// The reason-less marker does not suppress, and is itself a finding.
	if linttest.CountRule(fs, "map-range") != 1 || linttest.CountRule(fs, "suppression") != 1 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestSuppressionWrongRuleDoesNotCover(t *testing.T) {
	fs := linttest.Check(t, family(t), `package pkg
import "time"
func Stamp() int64 {
	// lint:ok map-range wrong rule name on purpose
	return time.Now().UnixNano()
}
`)
	if linttest.CountRule(fs, "time-now") != 1 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestScope(t *testing.T) {
	for _, r := range family(t) {
		if !r.Applies("internal/gpusim") || !r.Applies("internal/wire/sub") {
			t.Errorf("%s must apply to the deterministic core", r.Name())
		}
		if r.Applies("cmd/astra-bench") {
			t.Errorf("%s must not apply outside the core", r.Name())
		}
		if r.Doc() == "" {
			t.Errorf("%s has no catalog doc line", r.Name())
		}
	}
	if !lint.InScope("internal/lint", nodeterm.Scope) {
		t.Error("the lint framework itself is part of the deterministic core")
	}
}
