// Package nodeterm is Astra's determinism linter. The whole reproduction
// rests on bit-identical replay — the simulated device, the enumerator and
// the explorer must produce the same schedule and the same measurements on
// every run — so the runtime packages must not consult wall-clock time, the
// global (unseeded) math/rand source, or Go's randomized map iteration
// order where the order can leak into results.
//
// Three rules, checked with go/types over the package source (no external
// analysis framework, so the linter builds with the stdlib alone):
//
//   - time-now: any call to time.Now. Simulated time lives on the session
//     clock; wall-clock reads make traces and reports non-reproducible.
//   - global-rand: package-level math/rand calls (rand.Intn, rand.Float64,
//     …), which draw from the global, seed-racy source. Deterministic code
//     threads an explicit *rand.Rand from rand.New(rand.NewSource(seed)).
//   - map-range: a range statement over a map value. Go randomizes the
//     order on purpose; ranging is only safe when the body is provably
//     order-independent, which the linter cannot see — sort the keys, or
//     suppress with a justification.
//
// A finding is suppressed by a comment containing "nodeterm:ok" on the
// flagged line or the line above, conventionally with a reason:
//
//	for k, v := range bindings { // nodeterm:ok order-independent copy
package nodeterm

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	Pos     token.Position
	Rule    string // "time-now", "global-rand" or "map-range"
	Message string
}

// String renders the finding in the file:line:col: style editors understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Checker lints packages of one module. It owns the file set and the
// memoized type-checked imports, so linting several packages shares work.
type Checker struct {
	// Root is the module root directory; ModulePath its import path prefix
	// (e.g. "astra").
	Root       string
	ModulePath string
	// IncludeTests lints *_test.go files too (off by default: tests may
	// range maps freely — they assert, they don't schedule).
	IncludeTests bool

	fset *token.FileSet
	pkgs map[string]*types.Package
	std  types.Importer
}

// NewChecker prepares a checker for the module rooted at root.
func NewChecker(root, modulePath string) *Checker {
	return &Checker{
		Root:       root,
		ModulePath: modulePath,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*types.Package{},
	}
}

// CheckDir lints one package directory and returns its findings sorted by
// position. Type-check errors in imports are tolerated where possible; an
// unparseable target package is an error.
func (c *Checker) CheckDir(dir string) ([]Finding, error) {
	files, err := c.parseDir(dir, c.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: c,
		// The linter reads types, it does not gate the build: collect
		// everything it can even if an import fails to fully check.
		Error: func(error) {},
	}
	path := c.importPathFor(dir)
	_, _ = conf.Check(path, c.fset, files, info)

	var out []Finding
	for _, f := range files {
		ok := suppressedLines(c.fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fnd, hit := c.checkCall(n, info); hit && !ok[fnd.Pos.Line] {
					out = append(out, fnd)
				}
			case *ast.RangeStmt:
				if fnd, hit := c.checkRange(n, info); hit && !ok[fnd.Pos.Line] {
					out = append(out, fnd)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// checkCall flags time.Now and package-level math/rand calls.
func (c *Checker) checkCall(call *ast.CallExpr, info *types.Info) (Finding, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Finding{}, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return Finding{}, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return Finding{}, false
	}
	switch pn.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			return Finding{
				Pos:     c.fset.Position(call.Pos()),
				Rule:    "time-now",
				Message: "time.Now breaks replay; use the session's simulated clock",
			}, true
		}
	case "math/rand", "math/rand/v2":
		// Constructors of explicit sources are the fix, not the bug.
		if sel.Sel.Name == "New" || sel.Sel.Name == "NewSource" || sel.Sel.Name == "NewPCG" || sel.Sel.Name == "NewZipf" {
			return Finding{}, false
		}
		return Finding{
			Pos:     c.fset.Position(call.Pos()),
			Rule:    "global-rand",
			Message: fmt.Sprintf("rand.%s uses the global source; thread a *rand.Rand from rand.New(rand.NewSource(seed))", sel.Sel.Name),
		}, true
	}
	return Finding{}, false
}

// checkRange flags range statements over map values.
func (c *Checker) checkRange(rng *ast.RangeStmt, info *types.Info) (Finding, bool) {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return Finding{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return Finding{}, false
	}
	return Finding{
		Pos:     c.fset.Position(rng.Pos()),
		Rule:    "map-range",
		Message: fmt.Sprintf("range over map %s iterates in randomized order; sort the keys or justify with nodeterm:ok", types.TypeString(tv.Type, nil)),
	}, true
}

// suppressedLines collects the line numbers a nodeterm:ok comment covers:
// the comment's own line and the one below it (so the marker can sit on the
// flagged line or just above).
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, cmt := range cg.List {
			if !strings.Contains(cmt.Text, "nodeterm:ok") {
				continue
			}
			line := fset.Position(cmt.Pos()).Line
			out[line] = true
			out[line+1] = true
		}
	}
	return out
}

// Import implements types.Importer: module-local paths type-check from
// source under Root (go/build knows nothing about this module's layout);
// everything else — in practice the stdlib — delegates to the stdlib
// source importer, which honours build constraints.
func (c *Checker) Import(path string) (*types.Package, error) {
	if pkg, ok := c.pkgs[path]; ok {
		return pkg, nil
	}
	if path != c.ModulePath && !strings.HasPrefix(path, c.ModulePath+"/") {
		if c.std == nil {
			c.std = importer.ForCompiler(c.fset, "source", nil)
		}
		pkg, err := c.std.Import(path)
		if pkg != nil {
			c.pkgs[path] = pkg
		}
		return pkg, err
	}
	dir := c.Root
	if path != c.ModulePath {
		dir = filepath.Join(c.Root, filepath.FromSlash(strings.TrimPrefix(path, c.ModulePath+"/")))
	}
	files, err := c.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("nodeterm: no Go files for %q in %s", path, dir)
	}
	conf := types.Config{Importer: c, Error: func(error) {}}
	pkg, err := conf.Check(path, c.fset, files, nil)
	if pkg != nil {
		// Memoize even a partially checked package: the linter only reads
		// identities and map-ness, which survive most downstream errors.
		c.pkgs[path] = pkg
	}
	return pkg, err
}

// importPathFor inverts dirFor for a directory under Root.
func (c *Checker) importPathFor(dir string) string {
	rel, err := filepath.Rel(c.Root, dir)
	if err != nil || rel == "." {
		return c.ModulePath
	}
	return c.ModulePath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the buildable Go files of one directory.
func (c *Checker) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
