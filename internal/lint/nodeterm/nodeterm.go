// Package nodeterm holds Astra's determinism rule family. The whole
// reproduction rests on bit-identical replay — the simulated device, the
// enumerator and the explorer must produce the same schedule and the same
// measurements on every run — so the runtime packages must not consult the
// wall clock, the process environment, the global (unseeded) math/rand
// source, or Go's randomized map iteration order where the order can leak
// into results.
//
// Five rules, checked with go/types over the package source (the shared
// internal/lint loader; no external analysis framework, so the linter
// builds with the stdlib alone):
//
//   - time-now: any call to time.Now. Simulated time lives on the session
//     clock; wall-clock reads make traces and reports non-reproducible.
//   - wall-clock: time.Since / time.Until — the same wall-clock read with
//     the subtraction hidden inside, and the form that actually sneaks
//     into timing code ("just measure this once...").
//   - env-read: os.Getenv / os.LookupEnv / os.Environ. Behaviour keyed on
//     ambient environment differs machine to machine; configuration enters
//     through explicit options, never through the environment.
//   - global-rand: package-level math/rand calls (rand.Intn, rand.Float64,
//     …), which draw from the global, seed-racy source. Deterministic code
//     threads an explicit *rand.Rand from rand.New(rand.NewSource(seed)).
//   - map-range: a range statement over a map value. Go randomizes the
//     order on purpose; ranging is only safe when the body is provably
//     order-independent, which the linter cannot see — sort the keys, or
//     suppress with a justification.
//
// A finding is suppressed by a marker on the flagged line or the line
// above, conventionally with a reason (the legacy nodeterm:ok spelling
// still covers the whole family):
//
//	for k, v := range bindings { // lint:ok map-range order-independent copy
package nodeterm

import (
	"fmt"
	"go/ast"
	"go/types"

	"astra/internal/lint"
)

// Scope is the deterministic core: the packages whose output feeds
// schedules, measurements or reports, held to bit-identical replay. The
// lint framework itself is included — order-stable linter output is a
// determinism contract too.
var Scope = []string{
	"internal/gpusim",
	"internal/wire",
	"internal/distsim",
	"internal/enumerate",
	"internal/parallel",
	"internal/analyze",
	"internal/whatif",
	"internal/serve",
	"internal/costmodel",
	"internal/lint",
}

func init() {
	lint.Register(timeNowRule{})
	lint.Register(wallClockRule{})
	lint.Register(envReadRule{})
	lint.Register(globalRandRule{})
	lint.Register(mapRangeRule{})
}

// pkgCallRule is the shared shape of the call-matching rules: flag calls
// pkg.Fn for a fixed (package, function) → message table.
func checkCalls(p *lint.Package, rule string, match func(pkgPath, fn string) (string, bool)) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn, ok := p.CalleePkgFunc(call)
			if !ok {
				return true
			}
			if msg, hit := match(pkgPath, fn); hit {
				out = append(out, lint.NewFinding(p.Position(call.Pos()), rule, msg))
			}
			return true
		})
	}
	return out
}

type timeNowRule struct{}

func (timeNowRule) Name() string { return "time-now" }
func (timeNowRule) Doc() string {
	return "wall-clock read via time.Now in the deterministic core; use the session's simulated clock"
}
func (timeNowRule) Applies(rel string) bool { return lint.InScope(rel, Scope) }
func (timeNowRule) Check(p *lint.Package) []lint.Finding {
	return checkCalls(p, "time-now", func(pkgPath, fn string) (string, bool) {
		if pkgPath == "time" && fn == "Now" {
			return "time.Now breaks replay; use the session's simulated clock", true
		}
		return "", false
	})
}

type wallClockRule struct{}

func (wallClockRule) Name() string { return "wall-clock" }
func (wallClockRule) Doc() string {
	return "hidden wall-clock read via time.Since/time.Until in the deterministic core"
}
func (wallClockRule) Applies(rel string) bool { return lint.InScope(rel, Scope) }
func (wallClockRule) Check(p *lint.Package) []lint.Finding {
	return checkCalls(p, "wall-clock", func(pkgPath, fn string) (string, bool) {
		if pkgPath == "time" && (fn == "Since" || fn == "Until") {
			return fmt.Sprintf("time.%s reads the wall clock; derive durations from the simulated clock", fn), true
		}
		return "", false
	})
}

type envReadRule struct{}

func (envReadRule) Name() string { return "env-read" }
func (envReadRule) Doc() string {
	return "ambient environment read via os.Getenv/os.LookupEnv/os.Environ in the deterministic core"
}
func (envReadRule) Applies(rel string) bool { return lint.InScope(rel, Scope) }
func (envReadRule) Check(p *lint.Package) []lint.Finding {
	return checkCalls(p, "env-read", func(pkgPath, fn string) (string, bool) {
		if pkgPath == "os" && (fn == "Getenv" || fn == "LookupEnv" || fn == "Environ") {
			return fmt.Sprintf("os.%s makes behaviour depend on the ambient environment; thread configuration through explicit options", fn), true
		}
		return "", false
	})
}

type globalRandRule struct{}

func (globalRandRule) Name() string { return "global-rand" }
func (globalRandRule) Doc() string {
	return "draw from the global math/rand source; thread a seeded *rand.Rand instead"
}
func (globalRandRule) Applies(rel string) bool { return lint.InScope(rel, Scope) }
func (globalRandRule) Check(p *lint.Package) []lint.Finding {
	return checkCalls(p, "global-rand", func(pkgPath, fn string) (string, bool) {
		if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
			return "", false
		}
		// Constructors of explicit sources are the fix, not the bug.
		switch fn {
		case "New", "NewSource", "NewPCG", "NewZipf":
			return "", false
		}
		return fmt.Sprintf("rand.%s uses the global source; thread a *rand.Rand from rand.New(rand.NewSource(seed))", fn), true
	})
}

type mapRangeRule struct{}

func (mapRangeRule) Name() string { return "map-range" }
func (mapRangeRule) Doc() string {
	return "range over a map iterates in randomized order; sort the keys or justify the suppression"
}
func (mapRangeRule) Applies(rel string) bool { return lint.InScope(rel, Scope) }
func (mapRangeRule) Check(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			out = append(out, lint.NewFinding(p.Position(rng.Pos()), "map-range",
				fmt.Sprintf("range over map %s iterates in randomized order; sort the keys or justify with lint:ok map-range", types.TypeString(tv.Type, nil))))
			return true
		})
	}
	return out
}
