package escape

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseDiagnostics(t *testing.T) {
	out := `# astra/internal/gpusim
internal/gpusim/gpusim.go:301:7: &KernelRecord{} escapes to heap
internal/gpusim/gpusim.go:290:6: can inline (*Device).newRecord with cost 42
internal/wire/runner.go:500:20: moved to heap: t0
internal/wire/runner.go:501:9: func literal escapes to heap
not-a-diagnostic line
internal/wire/runner.go:bad:9: x escapes to heap
`
	got := ParseDiagnostics(out)
	want := []Diag{
		{File: "internal/gpusim/gpusim.go", Line: 301, Msg: "&KernelRecord{} escapes to heap"},
		{File: "internal/wire/runner.go", Line: 500, Msg: "moved to heap: t0"},
		{File: "internal/wire/runner.go", Line: 501, Msg: "func literal escapes to heap"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestReportIntersectsSpansAndNormalizes(t *testing.T) {
	spans := []Span{
		{File: "a.go", Name: "(*T).Hot", StartLine: 10, EndLine: 20},
		{File: "b.go", Name: "Free", StartLine: 1, EndLine: 5},
	}
	diags := []Diag{
		{File: "a.go", Line: 15, Msg: "x escapes to heap"},
		{File: "a.go", Line: 15, Msg: "x escapes to heap"}, // duplicate collapses
		{File: "a.go", Line: 25, Msg: "y escapes to heap"}, // outside every span
		{File: "b.go", Line: 3, Msg: "z escapes to heap"},
		{File: "c.go", Line: 3, Msg: "w escapes to heap"}, // unannotated file
	}
	got := Report(diags, spans)
	want := []string{
		"a.go:(*T).Hot: x escapes to heap",
		"b.go:Free: z escapes to heap",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

// TestReportCatchesInjectedEscape is the guard's core promise as a unit
// test: an allocation note that appears inside an annotated function and is
// absent from the baseline must surface as a regression.
func TestReportCatchesInjectedEscape(t *testing.T) {
	spans := []Span{{File: "hot.go", Name: "Hot", StartLine: 5, EndLine: 30}}
	baseline := Report([]Diag{
		{File: "hot.go", Line: 10, Msg: "&rec{} escapes to heap"},
	}, spans)
	injected := Report([]Diag{
		{File: "hot.go", Line: 10, Msg: "&rec{} escapes to heap"},
		{File: "hot.go", Line: 22, Msg: "make([]int, n) escapes to heap"},
	}, spans)
	added, removed := Diff(baseline, injected)
	if len(added) != 1 || added[0] != "hot.go:Hot: make([]int, n) escapes to heap" {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 0 {
		t.Fatalf("removed = %v", removed)
	}
}

func TestDiffDirections(t *testing.T) {
	added, removed := Diff(
		[]string{"a", "b", "c"},
		[]string{"b", "c", "d"},
	)
	if !reflect.DeepEqual(added, []string{"d"}) || !reflect.DeepEqual(removed, []string{"a"}) {
		t.Fatalf("added=%v removed=%v", added, removed)
	}
	added, removed = Diff(nil, nil)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("empty diff: added=%v removed=%v", added, removed)
	}
}

func TestParseBaseline(t *testing.T) {
	got := ParseBaseline("# comment\n\nb.go:F: x escapes to heap\na.go:G: y escapes to heap\n")
	want := []string{"a.go:G: y escapes to heap", "b.go:F: x escapes to heap"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFunctionsFindsAnnotatedSpans(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package pkg

type T struct{}

//astra:hotpath
func Plain() {}

// Method is annotated too.
//
//astra:hotpath
func (t *T) Method() int {
	return 0
}

// Cold mentions //astra:hotpath in prose only.
func Cold() {}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	spans, err := Functions(root, "pkg")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans: %+v", spans)
	}
	if spans[0].Name != "Plain" || spans[0].File != "pkg/p.go" {
		t.Errorf("span 0: %+v", spans[0])
	}
	if spans[1].Name != "(*T).Method" {
		t.Errorf("span 1: %+v", spans[1])
	}
	if spans[1].StartLine >= spans[1].EndLine {
		t.Errorf("span 1 range: %+v", spans[1])
	}
}

// TestRepoBaselineIsCurrent recomputes the real repository's escape report
// and diffs it against the committed baseline — the same check `make
// escape-check` runs in CI, here so `go test ./...` catches a stale
// baseline (or a new escape) without a separate make invocation.
func TestRepoBaselineIsCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short")
	}
	root := "../../.."
	spans, err := Functions(root, ".", "internal", "cmd")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no //astra:hotpath functions found — annotations lost?")
	}
	out, err := BuildDiagnostics(root)
	if err != nil {
		t.Fatal(err)
	}
	report := Report(ParseDiagnostics(out), spans)
	raw, err := os.ReadFile(filepath.Join(root, ".github", "escape-baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	added, removed := Diff(ParseBaseline(string(raw)), report)
	if len(added) > 0 {
		t.Errorf("new escapes in hotpath functions: %v", added)
	}
	if len(removed) > 0 {
		t.Errorf("stale baseline lines (refresh with make escape-baseline): %v", removed)
	}
}
