// Package escape is the compiler-backed half of the hot-path allocation
// guard. The static hotpath rule (internal/lint/hotpath) flags
// allocation-inducing syntax; this package asks the one authority that
// actually decides whether an &T{} lands on the heap — the gc compiler's
// escape analysis — and turns its answer into a regression baseline.
//
// The pipeline:
//
//  1. Functions() parses the module (syntax only, no type check) and
//     collects the line spans of every //astra:hotpath annotated function.
//  2. BuildDiagnostics() runs `go build -gcflags=-m ./...` and captures the
//     compiler's escape notes. The diagnostics replay from the build cache,
//     so repeat runs cost a cache probe, not a rebuild.
//  3. Report() keeps the "escapes to heap" / "moved to heap" notes that
//     land inside an annotated span and normalizes each to one line keyed
//     by file and function name — not line number, so the baseline
//     survives edits that merely shift code.
//  4. Diff() compares the report against the committed baseline
//     (.github/escape-baseline.txt). New lines are regressions and fail
//     the build; vanished lines are improvements and only prompt a
//     baseline refresh.
//
// cmd/astra-escape drives the pipeline; `make escape-check` gates CI on it
// and `make escape-baseline` rewrites the baseline after a deliberate
// change.
package escape

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"astra/internal/lint"
	"astra/internal/lint/hotpath"
)

// Span is one annotated function: its file (root-relative, slash
// separated), its display name, and the inclusive line range of the
// declaration.
type Span struct {
	File      string
	Name      string
	StartLine int
	EndLine   int
}

// Functions collects the spans of every //astra:hotpath function under the
// given subtrees of root (PackageDirs semantics; "." covers root itself).
// Syntax-only parsing: the escape tool must not double-pay the type-check
// the compiler is about to do anyway.
func Functions(root string, subtrees ...string) ([]Span, error) {
	dirs, err := lint.PackageDirs(root, subtrees...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var spans []Span
	for _, rel := range dirs {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") ||
				strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("escape: parse %s/%s: %w", rel, n, err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hotpath.Annotated(fd) {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				file, err := filepath.Rel(root, start.Filename)
				if err != nil {
					file = start.Filename
				}
				spans = append(spans, Span{
					File:      filepath.ToSlash(file),
					Name:      funcName(fd),
					StartLine: start.Line,
					EndLine:   end.Line,
				})
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].File != spans[j].File {
			return spans[i].File < spans[j].File
		}
		return spans[i].StartLine < spans[j].StartLine
	})
	return spans, nil
}

// funcName renders a declaration name the way readers write it:
// "Launch", "(*Device).Launch", "(Config).Check".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	writeType(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeType(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeType(b, e.X)
	case *ast.IndexExpr: // generic receiver T[P]
		writeType(b, e.X)
	default:
		b.WriteString("?")
	}
}

// Diag is one compiler escape note.
type Diag struct {
	File string // as printed by the compiler (cwd-relative, slash separated)
	Line int
	Msg  string
}

// BuildDiagnostics compiles the module with -gcflags=-m and returns the raw
// compiler output. The diagnostics land on stderr; a build failure is an
// error (the linter must not silently pass on code that does not compile).
func BuildDiagnostics(root string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("escape: go build -gcflags=-m failed: %v\n%s", err, out)
	}
	return string(out), nil
}

// ParseDiagnostics extracts the heap-allocation notes — "escapes to heap"
// and "moved to heap" — from compiler -m output. Inlining chatter and
// parameter-leak notes are dropped: the baseline tracks allocations, not
// every analysis fact.
func ParseDiagnostics(out string) []Diag {
	var diags []Diag
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		diags = append(diags, Diag{
			File: filepath.ToSlash(parts[0]),
			Line: ln,
			Msg:  strings.TrimSpace(parts[3]),
		})
	}
	return diags
}

// Report intersects diagnostics with annotated spans and normalizes each
// hit to "file:function: message". Line numbers are deliberately absent —
// unrelated edits above a function must not churn the baseline — and the
// result is deduplicated (one allocation site can emit several identical
// notes across build configurations) and sorted.
func Report(diags []Diag, spans []Span) []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range diags {
		for _, s := range spans {
			if d.File != s.File || d.Line < s.StartLine || d.Line > s.EndLine {
				continue
			}
			line := fmt.Sprintf("%s:%s: %s", s.File, s.Name, d.Msg)
			if !seen[line] {
				seen[line] = true
				out = append(out, line)
			}
			break
		}
	}
	sort.Strings(out)
	return out
}

// Diff compares a report against the committed baseline. added lines are
// regressions (new escapes in annotated functions); removed lines are
// improvements the baseline no longer needs to carry.
func Diff(baseline, current []string) (added, removed []string) {
	base := map[string]bool{}
	for _, l := range baseline {
		base[l] = true
	}
	cur := map[string]bool{}
	for _, l := range current {
		cur[l] = true
		if !base[l] {
			added = append(added, l)
		}
	}
	for _, l := range baseline {
		if !cur[l] {
			removed = append(removed, l)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// ParseBaseline reads baseline file content: one normalized line per line,
// "#" comments and blanks ignored.
func ParseBaseline(content string) []string {
	var out []string
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}
