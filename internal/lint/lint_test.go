package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{File: "a.go", Line: 3, Col: 7, Rule: "r", Message: "m"}
	if got := f.String(); got != "a.go:3:7: [r] m" {
		t.Errorf("got %q", got)
	}
}

func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{File: "b.go", Line: 1, Col: 1, Rule: "z"},
		{File: "a.go", Line: 2, Col: 1, Rule: "z"},
		{File: "a.go", Line: 1, Col: 5, Rule: "z"},
		{File: "a.go", Line: 1, Col: 5, Rule: "a"},
		{File: "a.go", Line: 1, Col: 2, Rule: "z"},
	}
	SortFindings(fs)
	want := []Finding{
		{File: "a.go", Line: 1, Col: 2, Rule: "z"},
		{File: "a.go", Line: 1, Col: 5, Rule: "a"},
		{File: "a.go", Line: 1, Col: 5, Rule: "z"},
		{File: "a.go", Line: 2, Col: 1, Rule: "z"},
		{File: "b.go", Line: 1, Col: 1, Rule: "z"},
	}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("got %v", fs)
	}
}

func TestByNamesUnknown(t *testing.T) {
	if _, err := ByNames([]string{"no-such-rule"}); err == nil {
		t.Error("want error for unknown rule")
	}
}

func TestInScope(t *testing.T) {
	scope := []string{"internal/wire", "internal/gpusim"}
	for rel, want := range map[string]bool{
		"internal/wire":     true,
		"internal/wire/sub": true,
		"internal/wirex":    false,
		"internal":          false,
		"cmd/astra-lint":    false,
		"internal/gpusim":   true,
	} { // lint:ok map-range independent assertions, order-free
		if got := InScope(rel, scope); got != want {
			t.Errorf("InScope(%q) = %v, want %v", rel, got, want)
		}
	}
}

func TestPackageDirs(t *testing.T) {
	root := t.TempDir()
	write := func(rel string) {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte("package x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("root.go")
	write("internal/a/a.go")
	write("internal/a/deep/d.go")
	write("internal/empty/only_test.go") // tests alone do not make a package dir
	write("cmd/tool/main.go")
	got, err := PackageDirs(root, ".", "internal", "cmd")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{".", "cmd/tool", "internal/a", "internal/a/deep"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLoaderResolvesModuleLocalImports(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("lib/lib.go", "package lib\n\ntype T struct{ N int }\n")
	write("app/app.go", `package app

import "fix/lib"

func Use(t lib.T) int { return t.N }
`)
	ld := NewLoader(root, "fix")
	p, err := ld.Load(filepath.Join(root, "app"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "fix/app" {
		t.Errorf("path %q", p.Path)
	}
	// The cross-package type must have resolved: lib.T's field is visible.
	found := false
	for _, tv := range p.Info.Types { // lint:ok map-range search for one entry, order-free
		if tv.Type != nil && tv.Type.String() == "fix/lib.T" {
			found = true
			break
		}
	}
	if !found {
		t.Error("module-local import fix/lib did not type-check from source")
	}
}
