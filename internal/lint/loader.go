package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit every rule's Check
// receives. Type-check errors in imports are tolerated — rules read types
// where they resolved and stay silent where they did not; the build gate is
// `go build`, not the linter.
type Package struct {
	// Path is the import path; Dir the absolute directory.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files are the parsed buildable sources, comments included.
	Files []*ast.File
	// Info carries the type-checker's results for the package sources.
	Info *types.Info
	// Pkg is the (possibly partially) checked package object.
	Pkg *types.Package
}

// Position resolves a token.Pos against the package's file set.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// CalleePkgFunc resolves a call of the form pkg.Fn — the shape every
// package-level call rule (time.Now, rand.Intn, os.Getenv, fmt.Sprintf)
// matches on — to the callee's package path and function name.
func (p *Package) CalleePkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// Loader parses and type-checks packages of one module. It owns the file
// set and the memoized type-checked imports, so loading several packages
// shares work. A Loader is not safe for concurrent use; the parallel driver
// keeps a pool of them (findings depend only on package content, so which
// loader checks which package cannot change the output).
type Loader struct {
	// Root is the module root directory; ModulePath its import path prefix
	// (e.g. "astra").
	Root       string
	ModulePath string
	// IncludeTests loads *_test.go files too (off by default: tests may
	// range maps freely — they assert, they don't schedule).
	IncludeTests bool

	fset *token.FileSet
	pkgs map[string]*types.Package
	std  types.Importer
}

// NewLoader prepares a loader for the module rooted at root.
func NewLoader(root, modulePath string) *Loader {
	return &Loader{
		Root:       root,
		ModulePath: modulePath,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*types.Package{},
	}
}

// Load parses and type-checks the package in one directory.
func (l *Loader) Load(dir string) (*Package, error) {
	files, err := l.parseDir(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		// The linter reads types, it does not gate the build: collect
		// everything it can even if an import fails to fully check.
		Error: func(error) {},
	}
	path := l.importPathFor(dir)
	pkg, _ := conf.Check(path, l.fset, files, info)
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Info: info, Pkg: pkg}, nil
}

// Import implements types.Importer: module-local paths type-check from
// source under Root (go/build knows nothing about this module's layout);
// everything else — in practice the stdlib — delegates to the stdlib
// source importer, which honours build constraints.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		if l.std == nil {
			l.std = importer.ForCompiler(l.fset, "source", nil)
		}
		pkg, err := l.std.Import(path)
		if pkg != nil {
			l.pkgs[path] = pkg
		}
		return pkg, err
	}
	dir := l.Root
	if path != l.ModulePath {
		dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files for %q in %s", path, dir)
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg != nil {
		// Memoize even a partially checked package: rules only read
		// identities and type shapes, which survive most downstream errors.
		l.pkgs[path] = pkg
	}
	return pkg, err
}

// importPathFor inverts Load's directory for a path under Root.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the buildable Go files of one directory.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// PackageDirs walks the named subtrees of root (plus root itself when "."
// is listed) and returns every directory holding at least one buildable
// non-test Go file, as sorted root-relative slash paths. This is the
// driver's default work list: every internal/ and cmd/ package.
func PackageDirs(root string, subtrees ...string) ([]string, error) {
	var out []string
	add := func(rel string, ents []os.DirEntry) {
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				out = append(out, rel)
				return
			}
		}
	}
	for _, sub := range subtrees {
		if sub == "." {
			ents, err := os.ReadDir(root)
			if err != nil {
				return nil, err
			}
			add(".", ents)
			continue
		}
		if _, err := os.Stat(filepath.Join(root, sub)); os.IsNotExist(err) {
			continue // a module without cmd/ (or internal/) is not an error
		}
		err := filepath.WalkDir(filepath.Join(root, sub), func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			add(filepath.ToSlash(rel), ents)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
