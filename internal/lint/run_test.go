package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRule flags every function named Bad — the smallest possible rule,
// enough to drive Run's scope, suppression and ordering machinery without
// dragging a real analysis into the framework tests.
type fakeRule struct {
	name  string
	scope []string
}

func (r fakeRule) Name() string { return r.name }
func (r fakeRule) Doc() string  { return "test rule: flags functions named Bad" }
func (r fakeRule) Applies(rel string) bool {
	return InScope(rel, r.scope)
}
func (r fakeRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Bad" {
				out = append(out, NewFinding(p.Position(fd.Pos()), r.name, "function Bad is flagged"))
			}
		}
	}
	return out
}

func init() {
	Register(fakeRule{name: "fake-bad", scope: []string{"pkg"}})
	// Registered under a determinism-family name so the legacy nodeterm:ok
	// alias tests run against the real covers() path.
	Register(fakeRule{name: "time-now", scope: []string{"pkg"}})
}

// parseFixture builds a Package straight from source — fake rules read only
// syntax, so no type-check is needed.
func parseFixture(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pkg/fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fix/pkg", Dir: "pkg", Fset: fset, Files: []*ast.File{f}}
}

func TestRunScopesAndForce(t *testing.T) {
	p := parseFixture(t, "package pkg\n\nfunc Bad() {}\n")
	rules := []Rule{fakeRule{name: "fake-bad", scope: []string{"pkg"}}}
	if got := Run(p, rules, "other", false); len(got) != 0 {
		t.Errorf("out-of-scope run found %v", got)
	}
	if got := Run(p, rules, "other", true); len(got) != 1 {
		t.Errorf("-force run found %v", got)
	}
	got := Run(p, rules, "pkg", false)
	if len(got) != 1 || got[0].Rule != "fake-bad" || got[0].Line != 3 {
		t.Errorf("in-scope run found %v", got)
	}
}

func TestRunSuppression(t *testing.T) {
	rules := []Rule{fakeRule{name: "fake-bad"}}

	sameLine := parseFixture(t, "package pkg\n\nfunc Bad() {} // lint:ok fake-bad fixture, deliberately quiet\n")
	if got := Run(sameLine, rules, "pkg", true); len(got) != 0 {
		t.Errorf("same-line marker did not suppress: %v", got)
	}

	lineAbove := parseFixture(t, "package pkg\n\n// lint:ok fake-bad fixture, deliberately quiet\nfunc Bad() {}\n")
	if got := Run(lineAbove, rules, "pkg", true); len(got) != 0 {
		t.Errorf("line-above marker did not suppress: %v", got)
	}

	wrongRule := parseFixture(t, "package pkg\n\nfunc Bad() {} // lint:ok otherrule reason text here\n")
	got := Run(wrongRule, rules, "pkg", true)
	if len(got) != 1 || got[0].Rule != "fake-bad" {
		t.Errorf("marker naming another rule suppressed anyway: %v", got)
	}

	noReason := parseFixture(t, "package pkg\n\nfunc Bad() {} // lint:ok fake-bad\n")
	got = Run(noReason, rules, "pkg", true)
	var seen []string
	for _, f := range got {
		seen = append(seen, f.Rule)
	}
	if len(got) != 2 || got[0].Rule != "fake-bad" && got[1].Rule != "fake-bad" ||
		got[0].Rule != "suppression" && got[1].Rule != "suppression" {
		t.Errorf("reason-less marker: want finding + suppression report, got %v", seen)
	}

	bareMarker := parseFixture(t, "package pkg\n\n// lint:ok\nfunc Fine() {}\n")
	got = Run(bareMarker, rules, "pkg", true)
	if len(got) != 1 || got[0].Rule != "suppression" {
		t.Errorf("bare marker: %v", got)
	}

	prose := parseFixture(t, "package pkg\n\n// The lint:ok markers are described in docs/LINT.md.\nfunc Fine() {}\n")
	if got := Run(prose, rules, "pkg", true); len(got) != 0 {
		t.Errorf("prose mention flagged: %v", got)
	}
}

func TestRunLegacyAlias(t *testing.T) {
	rules := []Rule{fakeRule{name: "time-now"}}

	covered := parseFixture(t, "package pkg\n\nfunc Bad() {} // nodeterm:ok historical justification\n")
	if got := Run(covered, rules, "pkg", true); len(got) != 0 {
		t.Errorf("legacy marker did not suppress determinism-family rule: %v", got)
	}

	// The legacy alias covers only the determinism family.
	other := parseFixture(t, "package pkg\n\nfunc Bad() {} // nodeterm:ok historical justification\n")
	if got := Run(other, []Rule{fakeRule{name: "fake-bad"}}, "pkg", true); len(got) != 1 {
		t.Errorf("legacy marker suppressed a non-family rule: %v", got)
	}

	bare := parseFixture(t, "package pkg\n\nfunc Bad() {} // nodeterm:ok\n")
	got := Run(bare, rules, "pkg", true)
	if len(got) != 2 {
		t.Errorf("reason-less legacy marker: %v", got)
	}
}

func TestRegistry(t *testing.T) {
	all := Rules()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Errorf("Rules() not sorted: %s before %s", all[i-1].Name(), all[i].Name())
		}
	}
	found := false
	for _, r := range all {
		if r.Name() == "fake-bad" {
			found = true
			if r.Doc() == "" {
				t.Error("empty Doc")
			}
		}
	}
	if !found {
		t.Error("registered rule missing from Rules()")
	}

	picked, err := ByNames([]string{"fake-bad"})
	if err != nil || len(picked) != 1 || picked[0].Name() != "fake-bad" {
		t.Errorf("ByNames: %v, %v", picked, err)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(fakeRule{name: "fake-bad"})
}

func TestCalleePkgFunc(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package pkg

import "strings"

func helper() string { return "" }

func Use() string {
	s := strings.ToUpper(helper())
	return strings.TrimSpace(s)
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ld := NewLoader(root, "fix")
	p, err := ld.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var pkgCalls []string
	localSeen := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, name, ok := p.CalleePkgFunc(call); ok {
				pkgCalls = append(pkgCalls, pkgPath+"."+name)
			} else {
				localSeen = true
			}
			return true
		})
	}
	want := "strings.ToUpper"
	if len(pkgCalls) != 2 || !strings.Contains(strings.Join(pkgCalls, " "), want) {
		t.Errorf("pkg calls: %v", pkgCalls)
	}
	if !localSeen {
		t.Error("local call resolved as a package call")
	}
}

func TestLoaderErrors(t *testing.T) {
	root := t.TempDir()
	ld := NewLoader(root, "fix")
	if _, err := ld.Load(filepath.Join(root, "missing")); err == nil {
		t.Error("missing dir: want error")
	}
	empty := filepath.Join(root, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Load(empty); err == nil {
		t.Error("no Go files: want error")
	}
	if _, err := ld.Import("fix/missing"); err == nil {
		t.Error("module-local import of missing package: want error")
	}
}
