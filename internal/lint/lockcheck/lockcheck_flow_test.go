package lockcheck_test

import (
	"testing"

	"astra/internal/lint/linttest"
)

// The control-flow fixtures: switch/type-switch merges, loop balance,
// goroutine bodies and read locks — the paths the straight-line fixtures in
// lockcheck_test.go never reach.

func TestSwitchCasesMustAgree(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
func Uneven(n int) {
	switch n {
	case 0:
		mu.Lock()
	default:
	}
	mu.Unlock()
}
`)
	if !linttest.HasMessage(fs, "different locks held") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestSwitchBalancedIsClean(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
var total int
func Tally(n int) {
	mu.Lock()
	switch n {
	case 0:
		total++
	case 1:
		total += 2
	default:
		total--
	}
	mu.Unlock()
}
`)
	if linttest.CountRule(fs, "lockcheck") != 0 {
		t.Fatalf("clean switch flagged: %v", fs)
	}
}

func TestTypeSwitchEarlyReturnHoldingLock(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
func Classify(v any) int {
	mu.Lock()
	switch v.(type) {
	case int:
		return 1
	default:
		mu.Unlock()
		return 0
	}
}
`)
	if !linttest.HasMessage(fs, "returns while holding mu") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestLoopBalance(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
func Leak(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
	}
	mu.Unlock()
}
func LeakRange(xs []int) {
	for range xs {
		mu.Lock()
	}
	mu.Unlock()
}
func Balanced(xs []int) int {
	s := 0
	for _, x := range xs {
		mu.Lock()
		s += x
		mu.Unlock()
	}
	return s
}
`)
	// Each leaking loop yields the balance finding plus the follow-on
	// unmatched-Unlock (analysis continues from the loop's entry state).
	if n := linttest.CountRule(fs, "lockcheck"); n != 4 || !linttest.HasMessage(fs, "changes the held-lock set") {
		t.Fatalf("want 4 findings (2 loops x balance+unmatched-unlock), got %d: %v", n, fs)
	}
}

func TestGoroutineBodyAnalyzedFresh(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
var ch = make(chan int)
func Spawn() {
	go func() {
		mu.Lock()
		ch <- 1
		mu.Unlock()
	}()
	go func() {
		func() {
			mu.Lock()
		}()
	}()
}
`)
	if !linttest.HasMessage(fs, "held across channel send") {
		t.Fatalf("goroutine body not analyzed: %v", fs)
	}
	if !linttest.HasMessage(fs, "returns while holding mu") {
		t.Fatalf("nested literal not analyzed: %v", fs)
	}
}

func TestReadLocks(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var rw sync.RWMutex
var ch = make(chan int)
func Read() int {
	rw.RLock()
	defer rw.RUnlock()
	return 1
}
func ReadBlocked() {
	rw.RLock()
	<-ch
	rw.RUnlock()
}
`)
	if n := linttest.CountRule(fs, "lockcheck"); n != 1 || !linttest.HasMessage(fs, "held across channel receive") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestDocAndScope(t *testing.T) {
	r := rule(t)[0]
	if r.Doc() == "" {
		t.Error("empty Doc")
	}
	for rel, want := range map[string]bool{
		"internal/serve":    true,
		"internal/profile":  true,
		"internal/obs":      true,
		"internal/parallel": true,
		"internal/gpusim":   false,
		"cmd/astra-lint":    false,
	} { // lint:ok map-range independent assertions, order-free
		if got := r.Applies(rel); got != want {
			t.Errorf("Applies(%q) = %v, want %v", rel, got, want)
		}
	}
}
