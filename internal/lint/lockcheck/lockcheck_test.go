package lockcheck_test

import (
	"testing"

	"astra/internal/lint"
	"astra/internal/lint/linttest"
)

func rule(t *testing.T) []lint.Rule {
	t.Helper()
	rs, err := lint.ByNames([]string{"lockcheck"})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestHeldAcrossChannelOps(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
var ch = make(chan int)
func Send() {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
func Recv() {
	mu.Lock()
	<-ch
	mu.Unlock()
}
func Sel() {
	mu.Lock()
	select {
	case <-ch:
	}
	mu.Unlock()
}
`)
	if linttest.CountRule(fs, "lockcheck") != 3 || !linttest.HasMessage(fs, "held across channel send") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestHeldAcrossBlockingCalls(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import (
	"sync"
	"time"
)
var mu sync.Mutex
var wg sync.WaitGroup
func Sleep() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond)
}
func Wait() {
	mu.Lock()
	wg.Wait()
	mu.Unlock()
}
`)
	if linttest.CountRule(fs, "lockcheck") != 2 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestMissingUnlock(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
type S struct{ mu sync.Mutex; n int }
func (s *S) Leak(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // early return leaks the lock
	}
	s.mu.Unlock()
	return s.n
}
func (s *S) Clean() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
`)
	if linttest.CountRule(fs, "lockcheck") != 1 || !linttest.HasMessage(fs, "returns while holding") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestRecursiveAcquisition(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
var rw sync.RWMutex
func Double() {
	mu.Lock()
	mu.Lock() // self-deadlock
	mu.Unlock()
	mu.Unlock()
}
func SharedReaders() int {
	rw.RLock()
	rw.RLock() // RLock under RLock is permitted (shared mode)
	rw.RUnlock()
	rw.RUnlock()
	return 0
}
`)
	if linttest.CountRule(fs, "lockcheck") != 1 || !linttest.HasMessage(fs, "recursive acquisition") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestOrderInversion(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var a, b sync.Mutex
func AB() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}
func BA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
`)
	if linttest.CountRule(fs, "lockcheck") != 1 || !linttest.HasMessage(fs, "ABBA deadlock") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestBranchDisagreement(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
func Uneven(c bool) {
	if c {
		mu.Lock()
	}
	mu.Unlock()
}
`)
	if linttest.CountRule(fs, "lockcheck") == 0 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestUnlockWithoutLock(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
func Bare() { mu.Unlock() }
`)
	if linttest.CountRule(fs, "lockcheck") != 1 || !linttest.HasMessage(fs, "without a matching Lock") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestSuppression(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"
var mu sync.Mutex
var ch = make(chan int, 8)
func Handoff() {
	mu.Lock()
	ch <- 1 // lint:ok lockcheck buffered channel, send cannot block here
	mu.Unlock()
}
`)
	if len(fs) != 0 {
		t.Fatalf("suppressed fixture still has findings: %v", fs)
	}
}

// TestCleanIdioms locks the analyzer's false-positive surface: the repo's
// real patterns — defer unlock, unlock-before-send, sharded lock identity,
// branch-balanced early unlock — must stay quiet.
func TestCleanIdioms(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "sync"

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

type Index struct{ shards [4]shard }

func (ix *Index) Get(k string) int {
	sh := &ix.shards[len(k)%4]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[k]
}

var mu sync.Mutex
var ch = make(chan int)
var state int

func HandoffAfterUnlock() {
	mu.Lock()
	v := state
	mu.Unlock()
	ch <- v
}

func Balanced(c bool) {
	mu.Lock()
	if c {
		state++
	} else {
		state--
	}
	mu.Unlock()
}

func EarlyOut(c bool) {
	mu.Lock()
	if c {
		mu.Unlock()
		return
	}
	state++
	mu.Unlock()
}
`)
	if len(fs) != 0 {
		t.Fatalf("clean idioms flagged: %v", fs)
	}
}
