// Package lockcheck is the lock-discipline rule: a static mirror of `make
// race`. The race detector proves the executions it saw were clean; this
// rule proves discipline over every path the source admits, the same way
// internal/verify proves schedule safety without running schedules.
//
// It builds a static lock graph over sync.Mutex / sync.RWMutex usage —
// lock identity is the declared field or variable, so all 64 profile-store
// shards are one lock statically — and walks every function body with a
// branch-sensitive abstract interpreter tracking the held-lock set. Four
// families of findings:
//
//   - inversion: lock B acquired while A is held in one place, and A
//     acquired while B is held in another — the classic ABBA deadlock.
//   - recursive: re-acquiring a lock already held on the same path
//     (sync.Mutex is not reentrant: guaranteed self-deadlock).
//   - blocking: a lock held across a blocking operation — channel send or
//     receive, select, sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep, or
//     a net/http call. Holding a mutex across any of these turns a slow
//     peer into a stalled lock domain (the serve admission gate hands
//     channels off outside its critical sections for exactly this reason).
//   - missing-unlock: a return path on which a lock is still held with no
//     deferred unlock, and branches or loop bodies that leave the held set
//     in inconsistent states.
//
// The analysis is intra-procedural and flow-sensitive but path-insensitive
// at merges: branches must agree on the held set. Function literals are
// analyzed as separate functions (they run on other goroutines or at defer
// time). The analysis does not follow calls; a justified suppression marker
// is the escape hatch for idioms it cannot see.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"astra/internal/lint"
)

// Scope is the set of packages holding the system's shared mutable state:
// the serve admission machine and signature table, the sharded profile
// store, the telemetry registries, and the parallel pool.
var Scope = []string{
	"internal/serve",
	"internal/profile",
	"internal/obs",
	"internal/parallel",
	"internal/costmodel",
}

func init() { lint.Register(rule{}) }

type rule struct{}

func (rule) Name() string { return "lockcheck" }
func (rule) Doc() string {
	return "static lock discipline: acquisition-order inversions, locks held across blocking operations, missing-unlock paths"
}
func (rule) Applies(rel string) bool { return lint.InScope(rel, Scope) }

func (rule) Check(p *lint.Package) []lint.Finding {
	a := &analyzer{p: p}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.analyzeFunc(fd.Name.Name, fd.Body)
		}
	}
	a.reportInversions()
	return a.findings
}

// lockKey identifies a lock statically: the types.Object of the mutex field
// or variable when it resolves, else the rendered receiver path. A field
// identity deliberately collapses all instances (every profile shard is one
// static lock) — hand-over-hand locking of two instances of one field is
// exactly the ordering hazard the rule exists to flag.
type lockKey any

type held struct {
	key      lockKey
	name     string // display path at acquisition site, e.g. "s.adm.mu"
	read     bool   // RLock
	deferred bool   // a deferred unlock covers it
	pos      token.Pos
}

type state struct{ held []held }

func (s *state) clone() *state {
	c := &state{held: make([]held, len(s.held))}
	copy(c.held, s.held)
	return c
}

// edge records "to acquired while from was held" at pos.
type edge struct {
	from, to         lockKey
	fromName, toName string
	pos              token.Pos
}

type analyzer struct {
	p        *lint.Package
	fn       string // current function, for messages
	findings []lint.Finding
	edges    []edge
	lits     []*ast.FuncLit // queued literals of the current function
}

func (a *analyzer) analyzeFunc(name string, body *ast.BlockStmt) {
	a.fn = name
	st := &state{}
	terminated := a.block(body.List, st)
	if !terminated {
		// Falling off the end returns; held locks without deferred unlocks
		// never release.
		a.checkReturn(body.End(), st)
	}
	// Literals run on their own goroutine or at defer time: fresh state.
	lits := a.lits
	a.lits = nil
	for i := 0; i < len(lits); i++ {
		a.fn = name + ".func"
		lst := &state{}
		if !a.block(lits[i].Body.List, lst) {
			a.checkReturn(lits[i].Body.End(), lst)
		}
		lits = append(lits, a.lits...)
		a.lits = nil
	}
}

func (a *analyzer) report(pos token.Pos, format string, args ...any) {
	a.findings = append(a.findings, lint.NewFinding(a.p.Position(pos), "lockcheck",
		fmt.Sprintf(format, args...)))
}

// pos renders a position compactly for cross-references inside messages.
func (a *analyzer) pos(p token.Pos) string {
	ps := a.p.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(ps.Filename), ps.Line)
}

// ---- statement walker ----

// block walks a statement list; true means control cannot fall out the end.
func (a *analyzer) block(list []ast.Stmt, st *state) bool {
	for _, s := range list {
		if a.stmt(s, st) {
			return true
		}
	}
	return false
}

func (a *analyzer) stmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isPanic(call) {
				a.scanLits(call)
				return true
			}
			if key, name, m, ok := a.lockTarget(call); ok {
				a.applyLockOp(key, name, m, call.Pos(), st)
				return false
			}
		}
		a.expr(s.X, st)
		return false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			a.expr(r, st)
		}
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						a.expr(v, st)
					}
				}
			}
		}
		return false
	case *ast.IncDecStmt, *ast.EmptyStmt:
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.expr(r, st)
		}
		a.checkReturn(s.Pos(), st)
		return true
	case *ast.DeferStmt:
		if key, _, m, ok := a.lockTarget(s.Call); ok && (m == "Unlock" || m == "RUnlock") {
			// The deferred unlock covers the most recent matching hold.
			for i := len(st.held) - 1; i >= 0; i-- {
				if sameKey(st.held[i].key, key) && st.held[i].read == (m == "RUnlock") {
					st.held[i].deferred = true
					break
				}
			}
			return false
		}
		for _, arg := range s.Call.Args {
			a.expr(arg, st)
		}
		a.scanLits(s.Call)
		return false
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			a.expr(arg, st)
		}
		a.scanLits(s.Call)
		return false
	case *ast.SendStmt:
		a.expr(s.Chan, st)
		a.expr(s.Value, st)
		a.checkBlocking(s.Pos(), "channel send", st)
		return false
	case *ast.BlockStmt:
		return a.block(s.List, st)
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; approximate as
		// terminating this path (held-set changes on such paths are caught
		// by the loop-balance check of the enclosing loop's entry state).
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.expr(s.Cond, st)
		thenSt := st.clone()
		t1 := a.block(s.Body.List, thenSt)
		elseSt := st.clone()
		t2 := false
		if s.Else != nil {
			t2 = a.stmt(s.Else, elseSt)
		}
		switch {
		case t1 && t2:
			return true
		case t1:
			*st = *elseSt
			return false
		case t2:
			*st = *thenSt
			return false
		default:
			a.merge(s.Body.Pos(), st, thenSt, elseSt)
			return false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		if s.Cond != nil {
			a.expr(s.Cond, st)
		}
		body := st.clone()
		a.block(s.Body.List, body)
		if s.Post != nil {
			a.stmt(s.Post, body)
		}
		a.checkLoopBalance(s.Pos(), st, body)
		return false
	case *ast.RangeStmt:
		a.expr(s.X, st)
		body := st.clone()
		a.block(s.Body.List, body)
		a.checkLoopBalance(s.Pos(), st, body)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		if s.Tag != nil {
			a.expr(s.Tag, st)
		}
		return a.mergeCases(s.Pos(), st, caseBodies(s.Body), hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		return a.mergeCases(s.Pos(), st, caseBodies(s.Body), hasDefault(s.Body))
	case *ast.SelectStmt:
		// Select blocks until a case is ready; with a lock held that is a
		// lock held across a blocking operation even before any case runs.
		a.checkBlocking(s.Pos(), "select", st)
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// Select always takes exactly one case; there is no fall-through
		// entry state.
		return a.mergeCases(s.Pos(), st, bodies, true)
	default:
		return false
	}
}

// caseBodies extracts the statement lists of a switch body.
func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// mergeCases analyzes each case body from a clone of the entry state and
// requires every continuing path to agree; true means every case
// terminated (and the switch is exhaustive), so control cannot continue.
func (a *analyzer) mergeCases(pos token.Pos, st *state, bodies [][]ast.Stmt, exhaustive bool) bool {
	var outs []*state
	for _, b := range bodies {
		cs := st.clone()
		if !a.block(b, cs) {
			outs = append(outs, cs)
		}
	}
	if !exhaustive {
		outs = append(outs, st.clone())
	}
	if len(outs) == 0 {
		return exhaustive
	}
	acc := outs[0]
	for _, o := range outs[1:] {
		a.merge(pos, acc, acc.clone(), o)
	}
	*st = *acc
	return false
}

// merge requires both branch exits to hold the same lock set; on
// disagreement it reports and continues with the intersection. Deferred
// flags OR together: a defer registered in either branch still runs at
// function return.
func (a *analyzer) merge(pos token.Pos, dst, s1, s2 *state) {
	if !sameHeld(s1, s2) {
		a.report(pos, "branches of %s leave different locks held (%s vs %s); unlock on every path before the merge",
			a.fn, heldNames(s1), heldNames(s2))
	}
	var inter []held
	for _, h1 := range s1.held {
		for _, h2 := range s2.held {
			if sameKey(h1.key, h2.key) && h1.read == h2.read {
				h := h1
				h.deferred = h1.deferred || h2.deferred
				inter = append(inter, h)
				break
			}
		}
	}
	dst.held = inter
}

// checkLoopBalance flags loop bodies whose net lock effect is non-zero: a
// second iteration would double-lock or double-unlock.
func (a *analyzer) checkLoopBalance(pos token.Pos, entry, exit *state) {
	if !sameHeld(entry, exit) {
		a.report(pos, "loop body in %s changes the held-lock set per iteration (%s vs %s); a second iteration double-locks or double-unlocks",
			a.fn, heldNames(entry), heldNames(exit))
	}
}

func (a *analyzer) checkReturn(pos token.Pos, st *state) {
	for _, h := range st.held {
		if !h.deferred {
			a.report(pos, "%s returns while holding %s (locked at %s) with no deferred unlock",
				a.fn, h.name, a.pos(h.pos))
		}
	}
}

func (a *analyzer) checkBlocking(pos token.Pos, what string, st *state) {
	for _, h := range st.held {
		a.report(pos, "%s held across %s in %s; release the lock before blocking", h.name, what, a.fn)
		return // one finding per site, naming the innermost-relevant lock
	}
}

// ---- expression scanning ----

// expr scans an expression for blocking operations performed while locks
// are held and queues function literals for separate analysis.
func (a *analyzer) expr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.lits = append(a.lits, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				a.checkBlocking(n.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			if what, ok := a.blockingCall(n); ok {
				a.checkBlocking(n.Pos(), what, st)
			}
		}
		return true
	})
}

// scanLits queues function literals appearing anywhere in a call.
func (a *analyzer) scanLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			a.lits = append(a.lits, fl)
			return false
		}
		return true
	})
}

// blockingCall recognizes calls that park the goroutine: WaitGroup.Wait,
// Cond.Wait, time.Sleep, and anything from net/http.
func (a *analyzer) blockingCall(call *ast.CallExpr) (string, bool) {
	if pkg, fn, ok := a.p.CalleePkgFunc(call); ok {
		if pkg == "time" && fn == "Sleep" {
			return "time.Sleep", true
		}
		if pkg == "net/http" {
			return "net/http." + fn, true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return "", false
	}
	tv, ok := a.p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" {
		switch n.Obj().Name() {
		case "WaitGroup", "Cond":
			return "sync." + n.Obj().Name() + ".Wait", true
		}
	}
	return "", false
}

// ---- lock-op resolution ----

// lockTarget recognizes X.Lock / X.Unlock / X.RLock / X.RUnlock where X's
// type is sync.Mutex or sync.RWMutex, returning the lock's static identity
// and display path.
func (a *analyzer) lockTarget(call *ast.CallExpr) (lockKey, string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", "", false
	}
	m := sel.Sel.Name
	switch m {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", "", false
	}
	tv, ok := a.p.Info.Types[sel.X]
	if !ok || !isSyncMutex(tv.Type) {
		return nil, "", "", false
	}
	name := exprPath(sel.X)
	var key lockKey
	switch x := sel.X.(type) {
	case *ast.Ident:
		if obj := a.p.Info.ObjectOf(x); obj != nil {
			key = obj
		}
	case *ast.SelectorExpr:
		if obj := a.p.Info.ObjectOf(x.Sel); obj != nil {
			key = obj
		}
	}
	if key == nil {
		key = name
	}
	return key, name, m, true
}

func (a *analyzer) applyLockOp(key lockKey, name, method string, pos token.Pos, st *state) {
	switch method {
	case "Lock", "RLock":
		read := method == "RLock"
		for _, h := range st.held {
			if sameKey(h.key, key) {
				// RLock under RLock of the same lock is legal (though it can
				// starve against a pending writer); every other same-lock
				// re-acquisition self-deadlocks.
				if !(read && h.read) {
					a.report(pos, "recursive acquisition: %s.%s in %s while %s is already held (since %s) — sync mutexes are not reentrant",
						name, method, a.fn, h.name, a.pos(h.pos))
				}
				continue
			}
			a.edges = append(a.edges, edge{from: h.key, to: key, fromName: h.name, toName: name, pos: pos})
		}
		st.held = append(st.held, held{key: key, name: name, read: read, pos: pos})
	case "Unlock", "RUnlock":
		read := method == "RUnlock"
		for i := len(st.held) - 1; i >= 0; i-- {
			if sameKey(st.held[i].key, key) && st.held[i].read == read {
				st.held = append(st.held[:i:i], st.held[i+1:]...)
				return
			}
		}
		a.report(pos, "%s.%s in %s without a matching %s on this path", name, method, a.fn, map[bool]string{false: "Lock", true: "RLock"}[read])
	}
}

// reportInversions finds pairs of locks acquired in both orders.
func (a *analyzer) reportInversions() {
	type pair struct{ from, to lockKey }
	index := map[pair]token.Pos{}
	for _, e := range a.edges {
		p := pair{e.from, e.to}
		if _, ok := index[p]; !ok {
			index[p] = e.pos
		}
	}
	// Walk edges in source order (deterministic) and report each inverted
	// pair once, at its first acquisition site.
	sorted := make([]edge, len(a.edges))
	copy(sorted, a.edges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
	reported := map[pair]bool{}
	for _, e := range sorted {
		rev, ok := index[pair{e.to, e.from}]
		if !ok {
			continue
		}
		p := pair{e.from, e.to}
		q := pair{e.to, e.from}
		if reported[p] || reported[q] {
			continue
		}
		reported[p], reported[q] = true, true
		a.report(e.pos, "lock order inversion: %s acquired while holding %s here, but the opposite order at %s — ABBA deadlock",
			e.toName, e.fromName, a.pos(rev))
	}
}

// ---- helpers ----

func sameKey(a, b lockKey) bool { return a == b }

func sameHeld(s1, s2 *state) bool {
	if len(s1.held) != len(s2.held) {
		return false
	}
	for _, h1 := range s1.held {
		found := false
		for _, h2 := range s2.held {
			if sameKey(h1.key, h2.key) && h1.read == h2.read {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func heldNames(s *state) string {
	if len(s.held) == 0 {
		return "none"
	}
	out := ""
	for i, h := range s.held {
		if i > 0 {
			out += ", "
		}
		out += h.name
	}
	return out
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprPath(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprPath(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return "*" + exprPath(e.X)
	case *ast.CallExpr:
		return exprPath(e.Fun) + "()"
	default:
		return "?"
	}
}
