// Package hotpath is the hot-path allocation rule: the static mirror of
// the AllocsPerRun budgets guarding the zero-alloc launch path (see
// docs/PERFORMANCE.md). The budgets prove the benchmarked execution did not
// allocate; this rule flags allocation-inducing constructs on every path of
// every function annotated with the marker comment
//
//	//astra:hotpath
//
// so a regression is caught at lint time, before a benchmark runs. Flagged
// constructs:
//
//   - fmt.* calls: formatting allocates (and boxes every operand).
//   - non-constant string concatenation, and string↔[]byte/[]rune
//     conversions.
//   - map and slice composite literals, make(...), new(...), and &T{}
//     (heap-allocated when it escapes; the compiler-backed escape guard —
//     make escape-check — tracks which ones actually do).
//   - append to a function-local slice declared without capacity; appends
//     to fields, parameters, or reslices of pooled buffers are assumed
//     amortized (the free-list idiom gpusim uses) and left to the escape
//     guard and alloc budgets.
//   - capturing closures: a func literal referencing enclosing locals
//     allocates its environment (the sort.Slice→slices.SortFunc fix of the
//     PR 5 zero-alloc work was exactly this). Non-capturing literals are
//     free and stay silent.
//   - interface boxing: a non-pointer concrete value converted to an
//     interface (explicitly or by argument passing, including ...any
//     variadics) allocates the boxed copy.
//
// Arguments of panic(...) are exempt: a panicking hot path is already cold.
// Everything else is fix-or-justify: intentional allocations (pool growth,
// first-batch lazy init, trace-detail paths) carry lint:ok hotpath markers
// with written reasons.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"astra/internal/lint"
)

// Annotation is the marker that opts a function into the rule. It sits in
// the function's doc comment; the escape-analysis guard (internal/lint/
// escape) keys off the same marker, so one annotation buys both the static
// rule and the compiler-backed regression baseline.
const Annotation = "astra:hotpath"

func init() { lint.Register(rule{}) }

type rule struct{}

func (rule) Name() string { return "hotpath" }
func (rule) Doc() string {
	return "allocation-inducing constructs in //astra:hotpath annotated functions (static zero-alloc contract)"
}

// Applies is unconditional: the rule fires only inside annotated functions,
// so it is free to run over every package.
func (rule) Applies(rel string) bool { return true }

// Annotated reports whether a function declaration carries the hotpath
// marker. The match is exact — a directive comment line reading
// //astra:hotpath and nothing else — so prose that merely mentions the
// marker (like this sentence) does not annotate its function.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//"+Annotation {
			return true
		}
	}
	return false
}

func (rule) Check(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Annotated(fd) {
				continue
			}
			c := &checker{p: p, fn: fd}
			c.check()
			out = append(out, c.findings...)
		}
	}
	return out
}

type checker struct {
	p        *lint.Package
	fn       *ast.FuncDecl
	findings []lint.Finding
	cold     map[ast.Node]bool // panic call arguments — cold by definition
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, lint.NewFinding(c.p.Position(pos), "hotpath",
		fmt.Sprintf(format, args...)+" in hotpath function "+c.fn.Name.Name))
}

func (c *checker) check() {
	c.cold = map[ast.Node]bool{}
	// First pass: mark panic arguments cold.
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				for _, arg := range call.Args {
					c.cold[arg] = true
				}
			}
		}
		return true
	})
	c.walk(c.fn.Body)
}

// walk inspects the body, pruning panic-argument subtrees: they only
// evaluate on the way to a panic, so nothing in them is hot.
func (c *checker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if c.cold[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isNonConstString(n) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && c.typeIsString(n.Lhs[0]) {
				c.report(n.Pos(), "string += allocates")
			}
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal heap-allocates when it escapes")
					// The literal itself is accounted for by this finding.
					c.walkChildrenSkipping(n)
					return false
				}
			}
		case *ast.FuncLit:
			if c.captures(n) {
				c.report(n.Pos(), "capturing closure allocates its environment")
			}
			// Do not descend: the literal runs in its own context; if it is
			// itself hot it should carry its own accounting via the
			// enclosing annotation review.
			return false
		}
		return true
	})
}

// walkChildrenSkipping re-walks the operand of an &T{} so nested
// allocations inside the literal still surface, without re-reporting the
// literal.
func (c *checker) walkChildrenSkipping(n *ast.UnaryExpr) {
	lit := n.X.(*ast.CompositeLit)
	for _, elt := range lit.Elts {
		c.walk(elt)
	}
}

func (c *checker) call(call *ast.CallExpr) {
	// Builtins and conversions.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if c.p.Info.Uses[id] == nil && c.p.Info.Defs[id] == nil || isBuiltin(c.p.Info.Uses[id]) {
				c.report(call.Pos(), "make allocates")
				return
			}
		case "new":
			if isBuiltin(c.p.Info.Uses[id]) {
				c.report(call.Pos(), "new heap-allocates when it escapes")
				return
			}
		case "append":
			if isBuiltin(c.p.Info.Uses[id]) {
				c.checkAppend(call)
				return
			}
		}
		// Remaining builtins (panic, len, cap, copy, clear, delete, …)
		// either do not allocate or — panic — are cold by definition.
		if isBuiltin(c.p.Info.Uses[id]) {
			return
		}
	}
	if pkg, fn, ok := c.p.CalleePkgFunc(call); ok && pkg == "fmt" {
		c.report(call.Pos(), "fmt."+fn+" allocates and boxes its operands")
		return
	}
	// Conversions: string <-> []byte / []rune copy.
	if tv, ok := c.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if from, ok := c.p.Info.Types[call.Args[0]]; ok && from.Type != nil {
			if isStringByteConv(from.Type.Underlying(), to) {
				c.report(call.Pos(), "string/byte-slice conversion copies and allocates")
			}
			if _, isIface := to.(*types.Interface); isIface && boxes(from.Type) {
				c.report(call.Pos(), "conversion to interface boxes a non-pointer value")
			}
		}
		return
	}
	c.checkBoxing(call)
}

// checkAppend flags append to a local slice that was declared without
// capacity — the one append shape that allocates on every growth with no
// pooled backing to amortize it.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		// Fields, reslices (x[:0]), and chained expressions are the pooled
		// idiom; the escape guard owns them.
		return
	}
	obj := c.p.Info.ObjectOf(id)
	if obj == nil || obj.Parent() == nil {
		return
	}
	decl := c.findDecl(obj)
	if decl == nil {
		return
	}
	switch d := decl.(type) {
	case *ast.ValueSpec:
		if len(d.Values) == 0 {
			c.report(call.Pos(), "append to %s grows from nil (declared without capacity at %s)",
				id.Name, c.pos(d.Pos()))
		}
	case *ast.AssignStmt:
		for i, lhs := range d.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || c.p.Info.ObjectOf(lid) != obj || i >= len(d.Rhs) {
				continue
			}
			if uncapacitated(d.Rhs[i]) {
				c.report(call.Pos(), "append to %s grows from a zero-capacity slice (declared at %s); preallocate with make(..., 0, n) or reuse a pooled buffer",
					id.Name, c.pos(d.Pos()))
			}
		}
	}
}

// uncapacitated reports declarations that pin capacity at zero: an empty
// literal or a two-argument make with length 0.
func uncapacitated(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, isArr := e.Type.(*ast.ArrayType)
		return isArr && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if lit, ok := e.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
			return true
		}
	}
	return false
}

// findDecl locates the declaration node of a local object.
func (c *checker) findDecl(obj types.Object) ast.Node {
	var found ast.Node
	ast.Inspect(c.fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && c.p.Info.Defs[id] == obj {
					found = n
					return false
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if c.p.Info.Defs[name] == obj {
					found = n
					return false
				}
			}
		}
		return found == nil
	})
	return found
}

func (c *checker) composite(lit *ast.CompositeLit) {
	tv, ok := c.p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates its backing array")
	}
}

// checkBoxing flags concrete non-pointer arguments passed to interface
// parameters (including ...any variadics): each one allocates the boxed
// copy. Pointer-shaped values (pointers, maps, chans, funcs) ride in the
// interface word for free and stay silent.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	tv, ok := c.p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := sig.Params().At(np - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := c.p.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if boxes(at.Type) {
			c.report(arg.Pos(), "argument boxes %s into interface parameter", at.Type.String())
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: true for concrete non-pointer-shaped types.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false // already boxed
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped: rides in the interface word
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	default:
		return true
	}
}

func (c *checker) isNonConstString(e *ast.BinaryExpr) bool {
	tv, ok := c.p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // constant-folded at compile time
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) typeIsString(e ast.Expr) bool {
	tv, ok := c.p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) pos(p token.Pos) string {
	ps := c.p.Position(p)
	return fmt.Sprintf("%s:%d", ps.Filename[strings.LastIndex(ps.Filename, "/")+1:], ps.Line)
}

func isStringByteConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32)
}

func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// captures reports whether a function literal references variables declared
// in the enclosing function outside the literal itself — the allocation the
// comparator-closure fix in gpusim.allocateSMs exists to avoid.
func (c *checker) captures(lit *ast.FuncLit) bool {
	capturing := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || capturing {
			return !capturing
		}
		obj := c.p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Declared inside the enclosing function but outside the literal.
		if pos >= c.fn.Pos() && pos < c.fn.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			capturing = true
			return false
		}
		return true
	})
	return capturing
}
