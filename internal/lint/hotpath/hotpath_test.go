package hotpath_test

import (
	"testing"

	"astra/internal/lint"
	"astra/internal/lint/linttest"
)

func rule(t *testing.T) []lint.Rule {
	t.Helper()
	rs, err := lint.ByNames([]string{"hotpath"})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestDocAndScope(t *testing.T) {
	r := rule(t)[0]
	if r.Doc() == "" {
		t.Error("empty Doc")
	}
	// Annotation-driven: the rule applies everywhere and gates on the
	// //astra:hotpath directive instead of a package scope.
	for _, rel := range []string{"internal/gpusim", "cmd/astra-bench", "pkg"} {
		if !r.Applies(rel) {
			t.Errorf("Applies(%q) = false", rel)
		}
	}
}

func TestUnannotatedStaysSilent(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "fmt"
func Cold(n int) string { return fmt.Sprintf("%d", n) }
`)
	if len(fs) != 0 {
		t.Fatalf("unannotated function flagged: %v", fs)
	}
}

func TestProseMentionDoesNotAnnotate(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "fmt"
// Cold documents the //astra:hotpath marker without carrying it.
func Cold(n int) string { return fmt.Sprintf("%d", n) }
`)
	if len(fs) != 0 {
		t.Fatalf("prose mention treated as annotation: %v", fs)
	}
}

func TestFmtAndStringOps(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "fmt"

//astra:hotpath
func Hot(a, b string, n int) string {
	s := fmt.Sprintf("%d", n)
	s += a
	bs := []byte(b)
	_ = bs
	return s + b
}
`)
	want := map[string]bool{
		"fmt.Sprintf allocates":   linttest.HasMessage(fs, "fmt.Sprintf allocates"),
		"string += allocates":     linttest.HasMessage(fs, "string += allocates"),
		"conversion copies":       linttest.HasMessage(fs, "conversion copies"),
		"concatenation allocates": linttest.HasMessage(fs, "concatenation allocates"),
	}
	for msg, ok := range want { // lint:ok map-range assertion iteration, order-free
		if !ok {
			t.Errorf("missing %q finding in: %v", msg, fs)
		}
	}
	if linttest.CountRule(fs, "hotpath") != 4 {
		t.Errorf("want 4 findings, got: %v", fs)
	}
}

func TestConstantConcatIsFree(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg

//astra:hotpath
func Hot() string {
	const pre = "a"
	return pre + "b" // constant-folded, no allocation
}
`)
	if len(fs) != 0 {
		t.Fatalf("constant concat flagged: %v", fs)
	}
}

func TestCompositesAndMake(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg

type rec struct{ a, b int }

//astra:hotpath
func Hot(n int) int {
	m := map[int]int{}
	s := []int{1, 2}
	t := make([]int, n)
	p := &rec{a: 1}
	q := new(rec)
	v := rec{a: 2} // value struct literal: stack, not flagged
	return m[0] + s[0] + t[0] + p.a + q.b + v.a
}
`)
	if linttest.CountRule(fs, "hotpath") != 5 {
		t.Fatalf("want 5 findings (map, slice, make, &lit, new): %v", fs)
	}
}

func TestAppendHeuristic(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg

type buf struct{ xs []int }

//astra:hotpath
func (b *buf) Hot(n int) []int {
	var grow []int
	for i := 0; i < n; i++ {
		grow = append(grow, i) // nil start: allocates on growth
	}
	pre := make([]int, 0, n) // lint:ok hotpath preallocation itself, the thing the rule asks for
	for i := 0; i < n; i++ {
		pre = append(pre, i) // preallocated: amortized, silent
	}
	out := b.xs[:0]
	out = append(out, n) // pooled reslice idiom: silent
	b.xs = append(b.xs, n) // field append: escape guard territory, silent
	return append(pre, out...)
}
`)
	if linttest.CountRule(fs, "hotpath") != 1 || !linttest.HasMessage(fs, "append to grow") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestClosures(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "slices"

//astra:hotpath
func Hot(xs []int, n int) {
	slices.SortFunc(xs, func(a, b int) int { return a - b }) // non-capturing: free
	f := func() int { return n }                             // captures n: allocates
	_ = f
}
`)
	if linttest.CountRule(fs, "hotpath") != 1 || !linttest.HasMessage(fs, "capturing closure") {
		t.Fatalf("findings: %v", fs)
	}
}

func TestInterfaceBoxing(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg

func sink(v any)        {}
func sinks(vs ...any)   {}
func typed(s fmt0) int  { return 0 }

type fmt0 interface{ M() int }
type big struct{ a, b int }
func (big) M() int { return 0 }

//astra:hotpath
func Hot(b big, p *big, n int) int {
	sink(n)     // boxes int
	sink(p)     // pointer-shaped: free
	sinks(n, p) // boxes n only
	return typed(b) // boxes big
}
`)
	if linttest.CountRule(fs, "hotpath") != 3 {
		t.Fatalf("want 3 boxing findings: %v", fs)
	}
}

func TestPanicPathIsCold(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg
import "fmt"

//astra:hotpath
func Hot(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	return n
}
`)
	if len(fs) != 0 {
		t.Fatalf("panic argument flagged: %v", fs)
	}
}

func TestSuppression(t *testing.T) {
	fs := linttest.Check(t, rule(t), `package pkg

type rec struct{ n int }

//astra:hotpath
func Hot(pool []*rec) *rec {
	if len(pool) > 0 {
		return pool[0]
	}
	return &rec{} // lint:ok hotpath pool growth, amortized across reuse
}
`)
	if len(fs) != 0 {
		t.Fatalf("suppressed fixture still has findings: %v", fs)
	}
}
