package data

import (
	"testing"
	"testing/quick"
)

func TestSampleLengthsRange(t *testing.T) {
	ls := SampleLengths(5000, 7)
	for _, l := range ls {
		if l < 4 || l > MaxPTBLength {
			t.Fatalf("length %d out of range", l)
		}
	}
}

func TestSampleLengthsDeterministic(t *testing.T) {
	a := SampleLengths(100, 3)
	b := SampleLengths(100, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling nondeterministic")
		}
	}
	c := SampleLengths(100, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical samples")
	}
}

func TestBucketsReproducePaperBoundaries(t *testing.T) {
	// §6.5: five equal-frequency buckets on the PTB length distribution
	// give 13, 18, 24, 30 and 83.
	ls := SampleLengths(20000, 42)
	got := Buckets(ls, 5)
	want := []int{13, 18, 24, 30, 83}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets = %v, want %v", got, want)
		}
	}
}

func TestBucketForMapsUp(t *testing.T) {
	buckets := []int{13, 18, 24, 30, 83}
	cases := map[int]int{4: 13, 13: 13, 14: 18, 19: 24, 30: 30, 31: 83, 83: 83}
	for l, want := range cases {
		if got := BucketFor(buckets, l); got != want {
			t.Fatalf("BucketFor(%d) = %d, want %d", l, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized length accepted")
		}
	}()
	BucketFor(buckets, 99)
}

func TestBucketsProperty(t *testing.T) {
	// Boundaries are increasing, the last covers the max, and every
	// sampled length maps to some bucket.
	f := func(seed uint64, kRaw uint8) bool {
		k := 2 + int(kRaw%6)
		ls := SampleLengths(500, seed|1)
		bs := Buckets(ls, k)
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				return false
			}
		}
		maxLen := 0
		for _, l := range ls {
			if l > maxLen {
				maxLen = l
			}
		}
		if bs[len(bs)-1] < maxLen {
			return false
		}
		for _, l := range ls {
			if BucketFor(bs, l) < l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenStream(t *testing.T) {
	ts := TokenStream(1000, 50, 9)
	for _, tok := range ts {
		if tok < 0 || tok >= 50 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
	seen := map[int]bool{}
	for _, tok := range ts {
		seen[tok] = true
	}
	if len(seen) < 40 {
		t.Fatalf("only %d distinct tokens of 50", len(seen))
	}
}

func TestBucketsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Buckets accepted empty input")
		}
	}()
	Buckets(nil, 5)
}
