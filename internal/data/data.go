// Package data provides the synthetic workload inputs of the evaluation:
// a Penn-Treebank-like sentence-length distribution (for the dynamic-graph
// bucketing experiment, §5.5 / Table 8) and deterministic token streams.
// Only shapes matter to Astra — the optimizations are value-preserving — so
// a distribution-faithful synthetic corpus exercises the same code paths as
// the real datasets.
package data

import (
	"fmt"
	"sort"

	"astra/internal/tensor"
)

// ptbBands is a piecewise-uniform model of the PTB sentence-length
// distribution, built so that its 20/40/60/80/100% quantiles are the bucket
// boundaries the paper reports: 13, 18, 24, 30 and 83.
var ptbBands = []struct {
	lo, hi int     // inclusive length range
	mass   float64 // probability mass of the band
}{
	{4, 13, 0.20},
	{14, 18, 0.20},
	{19, 24, 0.20},
	{25, 30, 0.20},
	{31, 83, 0.20},
}

// MaxPTBLength is the longest sentence in the synthetic PTB corpus.
const MaxPTBLength = 83

// SampleLengths draws n sentence lengths from the synthetic PTB
// distribution, deterministically from the seed.
func SampleLengths(n int, seed uint64) []int {
	rng := tensor.NewRNG(seed | 1)
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		acc := 0.0
		for _, band := range ptbBands {
			acc += band.mass
			if u < acc || band.hi == MaxPTBLength {
				out[i] = band.lo + rng.Intn(band.hi-band.lo+1)
				break
			}
		}
	}
	return out
}

// Buckets computes k equal-frequency bucket boundaries (the maximum length
// each bucket admits) from a sample of lengths, the calibration the paper
// performs on PTB (§6.5: "5 buckets … calibrated on the distribution of
// input sentence lengths").
func Buckets(lengths []int, k int) []int {
	if k <= 0 || len(lengths) == 0 {
		panic("data: Buckets needs samples and k > 0")
	}
	s := append([]int{}, lengths...)
	sort.Ints(s)
	out := make([]int, k)
	for i := 1; i <= k; i++ {
		idx := i*len(s)/k - 1
		out[i-1] = s[idx]
	}
	// Boundaries must be strictly increasing to be useful.
	for i := 1; i < k; i++ {
		if out[i] <= out[i-1] {
			out[i] = out[i-1] + 1
		}
	}
	return out
}

// BucketFor returns the smallest bucket boundary admitting length, mapping
// to the nearest larger bucket as §5.5 describes. It panics if the length
// exceeds every bucket.
func BucketFor(buckets []int, length int) int {
	for _, b := range buckets {
		if length <= b {
			return b
		}
	}
	panic(fmt.Sprintf("data: length %d exceeds largest bucket %d", length, buckets[len(buckets)-1]))
}

// TokenStream produces n deterministic token ids in [0, vocab).
func TokenStream(n, vocab int, seed uint64) []int {
	rng := tensor.NewRNG(seed*2654435761 + 97)
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(vocab)
	}
	return out
}
