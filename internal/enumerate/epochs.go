package enumerate

import (
	"fmt"
	"sort"
)

// SuperEpoch is a barrier-delimited span of the schedule (§4.5.3): streams
// are force-synchronized at its boundary, resetting scheduling history so
// different super-epochs explore their stream assignments in parallel.
type SuperEpoch struct {
	Index  int
	Epochs []*Epoch
	Flops  int64
}

// Epoch is one dependency level inside a super-epoch (§4.5.4): its units
// are mutually independent and may spread across streams, synchronized
// against the previous epoch with events.
type Epoch struct {
	Index   int // global epoch index
	Units   []*Unit
	Classes []*Class
}

// Class is an equivalence class of interchangeable units within an epoch
// (§4.5.5): same kind, same shapes, same dependency signature. The stream
// choice for a class of n units on two streams is "how many go to stream
// 1" — n+1 choices instead of 2^n.
type Class struct {
	Sig   string
	Units []*Unit
}

// partition assigns every unit an epoch (its dependency level) and groups
// consecutive epochs into super-epochs of roughly superEpochUs worth of
// estimated device time, estimated from static flops (§4.5.3). It also
// re-sorts units into (level, node-id) order: fusion groups can span nodes
// whose consumers sit between the members, so raw emission order is not
// topological at unit granularity.
func partition(units []*Unit, superEpochUs float64, flopsPerUs float64) []*SuperEpoch {
	level := map[*Unit]int{}
	var lvl func(u *Unit) int
	lvl = func(u *Unit) int {
		if l, ok := level[u]; ok {
			return l
		}
		level[u] = 0 // breaks accidental cycles defensively
		l := 0
		for _, d := range u.Deps {
			if dl := lvl(d) + 1; dl > l {
				l = dl
			}
		}
		level[u] = l
		return l
	}
	maxLevel := 0
	for _, u := range units {
		if l := lvl(u); l > maxLevel {
			maxLevel = l
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		if level[units[i]] != level[units[j]] {
			return level[units[i]] < level[units[j]]
		}
		return units[i].Nodes[0].ID < units[j].Nodes[0].ID
	})
	byLevel := make([][]*Unit, maxLevel+1)
	for _, u := range units {
		u.Epoch = level[u]
		byLevel[level[u]] = append(byLevel[level[u]], u)
	}

	var supers []*SuperEpoch
	cur := &SuperEpoch{Index: 0}
	budget := superEpochUs * flopsPerUs
	for li, lvl := range byLevel {
		if len(lvl) == 0 {
			continue
		}
		ep := &Epoch{Index: li, Units: lvl}
		ep.Classes = classify(lvl)
		var f int64
		for _, u := range lvl {
			f += u.Flops()
		}
		cur.Epochs = append(cur.Epochs, ep)
		cur.Flops += f
		for _, u := range lvl {
			u.SuperEpoch = cur.Index
		}
		if float64(cur.Flops) >= budget {
			supers = append(supers, cur)
			cur = &SuperEpoch{Index: cur.Index + 1}
		}
	}
	if len(cur.Epochs) > 0 {
		supers = append(supers, cur)
	}
	return supers
}

// classify groups an epoch's units into equivalence classes by a static
// signature: unit kind, the multiset of (op, output shape) of its nodes,
// and the dependency count. Units with equal signatures are
// interchangeable for stream assignment (§4.5.5).
func classify(units []*Unit) []*Class {
	bySig := map[string]*Class{}
	var order []string
	for _, u := range units {
		sig := classSig(u)
		u.Class = sig
		c, ok := bySig[sig]
		if !ok {
			c = &Class{Sig: sig}
			bySig[sig] = c
			order = append(order, sig)
		}
		c.Units = append(c.Units, u)
	}
	sort.Strings(order)
	out := make([]*Class, 0, len(order))
	for _, sig := range order {
		out = append(out, bySig[sig])
	}
	return out
}

func classSig(u *Unit) string {
	ops := make([]string, 0, len(u.Nodes))
	for _, n := range u.Nodes {
		ops = append(ops, fmt.Sprintf("%s%v", n.Op, n.Out.Shape))
	}
	sort.Strings(ops)
	return fmt.Sprintf("k%d|d%d|%v", u.Kind, len(u.Deps), ops)
}
