package enumerate

import (
	"fmt"
	"sort"

	"astra/internal/graph"
	"astra/internal/memory"
)

// UnitKind classifies schedule units.
type UnitKind int

// Unit kinds.
const (
	// UnitSingle is one operator dispatched as one kernel.
	UnitSingle UnitKind = iota
	// UnitEWChain is a chain of elementwise operators JIT-fused into one
	// kernel (§5.3).
	UnitEWChain
	// UnitGEMMGroup is a fusable group of GEMMs (plus any absorbed
	// accumulator adds for ladder groups); the custom-wirer picks the
	// chunking at runtime (§4.4.1).
	UnitGEMMGroup
)

// GroupKind classifies GEMM fusion groups.
type GroupKind int

// Fusion group kinds.
const (
	// SharedLeft fuses mm(A,B1), mm(A,B2), … into mm(A, [B1 B2 …]).
	SharedLeft GroupKind = iota
	// SharedRight fuses mm(A1,B), mm(A2,B), … into mm([A1;A2…], B).
	SharedRight
	// Ladder fuses the GEMM-accumulator pattern mm+mm+add (§4.4.1) into a
	// single reduction GEMM.
	Ladder
)

// String names the group kind.
func (k GroupKind) String() string {
	switch k {
	case SharedLeft:
		return "shared-left"
	case SharedRight:
		return "shared-right"
	case Ladder:
		return "ladder"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FusionGroup is a set of GEMMs the enumerator proposes for fusion. The
// enumerator finds maximal groups; the custom-wirer picks the actual
// granularity by chunking (§4.4.1).
type FusionGroup struct {
	ID       string
	Kind     GroupKind
	GEMMs    []*graph.Node
	Adds     []*graph.Node  // accumulator adds absorbed by a Ladder group
	Shared   *graph.Value   // the common argument (nil for Ladder)
	Operands []*graph.Value // non-shared operand roots needing contiguity
	ReqID    string         // memory.Request ID, "" if no request needed

	// shrunk records that static conflict resolution already removed a
	// member; a group gives up at most one member statically — further
	// collisions are genuine conflicts that fork the allocation space.
	shrunk bool
}

// Unit is one node of the schedule-level dependency graph.
type Unit struct {
	ID    string
	Kind  UnitKind
	Nodes []*graph.Node
	Group *FusionGroup // for UnitGEMMGroup

	Deps []*Unit
	// Epoch and SuperEpoch are filled by partition().
	Epoch, SuperEpoch int
	// Class is the equivalence-class signature within the epoch (§4.5.5).
	Class string
}

// Flops sums the static flop estimate over the unit's nodes.
func (u *Unit) Flops() int64 {
	var f int64
	for _, n := range u.Nodes {
		f += n.Flops()
	}
	return f
}

// unitBuilder constructs the unit graph from a training graph.
type unitBuilder struct {
	g         *graph.Graph
	cons      map[*graph.Value][]*graph.Node
	views     map[*graph.Node]bool // transposes folded into GEMM op flags
	inGroup   map[*graph.Node]*FusionGroup
	groups    []*FusionGroup
	groupSeq  int
	maxGroup  int
	maxLadder int // ladders may be larger: they absorb accumulator adds
}

// operandRoot sees through view transposes: mm(g, t(W)) reads W directly
// with a transpose flag, so contiguity constraints apply to W itself.
func (ub *unitBuilder) operandRoot(v *graph.Value) *graph.Value {
	if v.Producer != nil && ub.views[v.Producer] {
		return v.Producer.Inputs[0]
	}
	return v
}

// findViews marks transpose nodes all of whose consumers are GEMMs: real
// BLAS libraries absorb those via operand flags, so they cost nothing and
// are excluded from the schedule.
func (ub *unitBuilder) findViews() {
	for _, n := range ub.g.Nodes {
		if n.Op != graph.OpTranspose {
			continue
		}
		consumers := ub.cons[n.Out]
		if len(consumers) == 0 {
			continue
		}
		allGEMM := true
		for _, c := range consumers {
			if c.Op != graph.OpMatMul {
				allGEMM = false
				break
			}
		}
		if allGEMM {
			ub.views[n] = true
		}
	}
}

// provKey buckets nodes by provenance: fusion candidates must share it
// (§4.4.1: "we only consider nodes which have the same provenance").
func provKey(n *graph.Node) string {
	return fmt.Sprintf("%s|%d|%s", n.Prov.Scope, n.Prov.Timestep, n.Prov.Pass)
}

// independentSubset greedily selects a maximal prefix-biased subset of the
// candidate GEMMs with no dependency relation among them (§4.4.1). One
// forward reachability sweep per accepted member marks which later
// candidates it (transitively) feeds; those are rejected.
func (ub *unitBuilder) independentSubset(members []*graph.Node) []*graph.Node {
	if len(members) < 2 {
		return members
	}
	maxID := members[len(members)-1].ID
	isMember := make(map[*graph.Node]bool, len(members))
	for _, m := range members {
		isMember[m] = true
	}
	excluded := map[*graph.Node]bool{}
	var out []*graph.Node
	seen := map[*graph.Node]bool{}
	for _, m := range members {
		if excluded[m] {
			continue
		}
		out = append(out, m)
		// Sweep m's forward cone (bounded by the last candidate's ID),
		// excluding any candidate it reaches.
		clear(seen)
		stack := []*graph.Node{m}
		seen[m] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range ub.cons[n.Out] {
				if c.ID > maxID || seen[c] {
					continue
				}
				seen[c] = true
				if isMember[c] {
					excluded[c] = true
				}
				stack = append(stack, c)
			}
		}
	}
	return out
}

// candidate is a proposed fusion group not yet claimed; the greedy
// selection pass ranks all candidates by size so that, e.g., a 4-gate
// shared-argument group beats the per-gate 2-GEMM ladders competing for the
// same GEMMs.
type candidate struct {
	kind   GroupKind
	shared *graph.Value
	gemms  []*graph.Node
	adds   []*graph.Node // ladders only
	cross  bool          // cross-timestep candidate: claims only leftovers
}

// sortCandidates orders the greedy claim pass: per-step candidates first
// (largest first; ladders win ties because they also absorb their adds),
// then the cross-timestep candidates, which batch whatever per-step fusion
// left unclaimed.
func sortCandidates(cands []candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.cross != b.cross {
			return !a.cross
		}
		if len(a.gemms) != len(b.gemms) {
			return len(a.gemms) > len(b.gemms)
		}
		if (a.kind == Ladder) != (b.kind == Ladder) {
			return a.kind == Ladder
		}
		return a.gemms[0].ID < b.gemms[0].ID
	})
}

// collectSharedArgCandidates mines the §4.4.1 pattern: GEMMs in the same
// provenance bucket sharing one argument.
func (ub *unitBuilder) collectSharedArgCandidates() []candidate {
	byBucket := map[string][]*graph.Node{}
	for _, n := range ub.g.Nodes {
		if n.Op == graph.OpMatMul {
			byBucket[provKey(n)] = append(byBucket[provKey(n)], n)
		}
	}
	buckets := make([]string, 0, len(byBucket))
	for k := range byBucket { // nodeterm:ok keys sorted below
		buckets = append(buckets, k)
	}
	sort.Strings(buckets)
	var cands []candidate
	for _, bk := range buckets {
		gemms := byBucket[bk]
		for _, side := range []int{0, 1} {
			byShared := map[*graph.Value][]*graph.Node{}
			for _, n := range gemms {
				byShared[ub.operandRoot(n.Inputs[side])] = append(byShared[ub.operandRoot(n.Inputs[side])], n)
			}
			kind := SharedLeft
			if side == 1 {
				kind = SharedRight
			}
			// Candidate order decides ties in sortCandidates (and thus
			// which overlapping groups claim first); emit in value-ID
			// order, never map order.
			shared := make([]*graph.Value, 0, len(byShared))
			for v := range byShared { // nodeterm:ok keys sorted below
				shared = append(shared, v)
			}
			sort.Slice(shared, func(i, j int) bool { return shared[i].ID < shared[j].ID })
			for _, v := range shared {
				if ns := byShared[v]; len(ns) >= 2 {
					cands = append(cands, candidate{shared: v, kind: kind, gemms: ns})
				}
			}
		}
	}
	return cands
}

// tryClaim filters a candidate down to free, mutually-independent members
// and registers the group if it stays viable. Ladders must claim all their
// members or none: their absorbed add chain cannot be split.
func (ub *unitBuilder) tryClaim(c candidate) {
	if c.kind == Ladder {
		for _, n := range c.gemms {
			if ub.inGroup[n] != nil {
				return
			}
		}
		for _, a := range c.adds {
			if ub.inGroup[a] != nil {
				return
			}
		}
		if len(c.gemms) < 2 || len(c.gemms) > ub.maxLadder {
			return
		}
		gemms := append([]*graph.Node{}, c.gemms...)
		sort.Slice(gemms, func(i, j int) bool { return gemms[i].ID < gemms[j].ID })
		ub.addGroup(Ladder, nil, gemms, c.adds)
		return
	}
	var free []*graph.Node
	for _, n := range c.gemms {
		if ub.inGroup[n] == nil {
			free = append(free, n)
		}
	}
	if len(free) < 2 {
		return
	}
	if len(free) > ub.maxGroup {
		free = free[:ub.maxGroup] // §4.8: static bound on group size
	}
	independent := ub.independentSubset(free)
	if len(independent) < 2 {
		return
	}
	ub.addGroup(c.kind, c.shared, independent, nil)
}

// collectCrossStepCandidates mines the paper's second ("2-D") fusion
// dimension: GEMMs in different timesteps of the same scope that share a
// weight tensor — mm(x_1, W), mm(x_2, W), … — fuse into one tall GEMM over
// the row-concatenated activations, exactly the cross-timestep batching
// that hand-optimized kernels perform. The resulting contiguity request on
// the per-timestep activations is what conflicts with the backward pass's
// per-step groups, producing the Figure 1 allocation fork.
func (ub *unitBuilder) collectCrossStepCandidates() []candidate {
	type key struct {
		scope  string
		pass   graph.Pass
		shared *graph.Value
	}
	byKey := map[key][]*graph.Node{}
	var order []key
	for _, n := range ub.g.Nodes {
		if n.Op != graph.OpMatMul || n.Prov.Timestep < 0 {
			continue
		}
		w := ub.operandRoot(n.Inputs[1])
		if w.Producer != nil || w.ConstData == nil {
			continue // the shared right operand must be a weight
		}
		k := key{scope: n.Prov.Scope, pass: n.Prov.Pass, shared: w}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], n)
	}
	var cands []candidate
	for _, k := range order {
		gemms := byKey[k]
		steps := map[int]bool{}
		for _, n := range gemms {
			steps[n.Prov.Timestep] = true
		}
		if len(steps) < 2 {
			continue
		}
		cands = append(cands, candidate{shared: k.shared, kind: SharedRight, gemms: gemms, cross: true})
	}
	return cands
}

// findLadders mines GEMM-accumulator ladders: add trees whose leaves are
// findLadders mines GEMM-accumulator ladders: add trees whose leaves are
// single-consumer GEMM outputs of identical shape (§4.4.1).
func (ub *unitBuilder) collectLadderCandidates() []candidate {
	var cands []candidate
	for _, n := range ub.g.Nodes {
		if n.Op != graph.OpAdd {
			continue
		}
		var gemms, adds []*graph.Node
		ok := ub.collectLadder(n, &gemms, &adds)
		if !ok || len(gemms) < 2 {
			continue
		}
		// Take maximal ladders only: skip if n feeds a larger ladder.
		if len(ub.cons[n.Out]) == 1 {
			c := ub.cons[n.Out][0]
			if c.Op == graph.OpAdd && ub.isLadderLeaf(otherInput(c, n.Out)) {
				continue
			}
		}
		if len(gemms) > ub.maxLadder {
			continue
		}
		cands = append(cands, candidate{kind: Ladder, gemms: gemms, adds: adds})
	}
	return cands
}

func otherInput(add *graph.Node, v *graph.Value) *graph.Value {
	if add.Inputs[0] == v {
		return add.Inputs[1]
	}
	return add.Inputs[0]
}

func (ub *unitBuilder) isLadderLeaf(v *graph.Value) bool {
	return v.Producer != nil &&
		(v.Producer.Op == graph.OpMatMul || v.Producer.Op == graph.OpAdd) &&
		len(ub.cons[v]) == 1
}

// collectLadder walks an add tree gathering GEMM leaves; every intermediate
// must have a single consumer and all GEMM outputs the same shape.
func (ub *unitBuilder) collectLadder(n *graph.Node, gemms, adds *[]*graph.Node) bool {
	*adds = append(*adds, n)
	for _, in := range n.Inputs {
		p := in.Producer
		if p == nil || len(ub.cons[in]) != 1 {
			return false
		}
		switch p.Op {
		case graph.OpMatMul:
			if len(*gemms) > 0 && !(*gemms)[0].Out.Shape.Equal(p.Out.Shape) {
				return false
			}
			*gemms = append(*gemms, p)
		case graph.OpAdd:
			if !ub.collectLadder(p, gemms, adds) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (ub *unitBuilder) addGroup(kind GroupKind, shared *graph.Value, gemms []*graph.Node, adds []*graph.Node) {
	g := &FusionGroup{
		ID:     fmt.Sprintf("fuse%d", ub.groupSeq),
		Kind:   kind,
		GEMMs:  gemms,
		Adds:   adds,
		Shared: shared,
	}
	ub.groupSeq++
	// Exactly one non-shared operand per member: the one that must sit
	// adjacent to its neighbours for the fused kernel to read the group as
	// a single matrix. (For ladders the second operand chain matches the
	// weight-gradient layout the paper describes.)
	side := 1
	if kind == SharedRight {
		side = 0
	}
	for _, n := range gemms {
		ub.inGroup[n] = g
		g.Operands = append(g.Operands, ub.operandRoot(n.Inputs[side]))
	}
	for _, a := range adds {
		ub.inGroup[a] = g
	}
	ub.groups = append(ub.groups, g)
}

// requests converts groups' operand lists into memory contiguity requests,
// applying the paper's cheap static conflict resolution first: if two
// groups conflict on exactly one tensor, drop that tensor's GEMM from the
// smaller group (dissolving it if it falls under two members).
func (ub *unitBuilder) requests() []memory.Request {
	reqOf := func(g *FusionGroup) memory.Request {
		return memory.Request{ID: g.ID, Values: canonicalOperands(g.Operands)}
	}
	// Static single-tensor conflict resolution (§4.5.2): when two groups
	// collide on exactly one tensor, drop the offending member from the
	// larger group — but only if both groups stay viable afterwards;
	// otherwise the collision is a real conflict and becomes an
	// allocation-strategy fork.
	for i := 0; i < len(ub.groups); i++ {
		for j := i + 1; j < len(ub.groups); j++ {
			a, b := ub.groups[i], ub.groups[j]
			if len(a.Operands) == 0 || len(b.Operands) == 0 {
				continue
			}
			if operandSig(canonicalOperands(a.Operands)) == operandSig(canonicalOperands(b.Operands)) {
				continue // identical requests coexist
			}
			shared := sharedOperands(a, b)
			if len(shared) != 1 {
				continue
			}
			victim := a
			if len(b.GEMMs) > len(a.GEMMs) {
				victim = b
			}
			if len(victim.GEMMs) <= 2 || victim.shrunk {
				continue // dissolving or re-shrinking: genuine conflict
			}
			victim.dropOperand(shared[0], ub)
		}
	}
	// Deduplicate identical requests (the same weights recur every
	// timestep) and emit the survivors.
	var reqs []memory.Request
	seen := map[string]string{}
	for _, g := range ub.groups {
		if len(g.Operands) < 2 || hasDuplicateValues(g.Operands) {
			continue
		}
		sig := operandSig(canonicalOperands(g.Operands))
		if id, ok := seen[sig]; ok {
			g.ReqID = id
			continue
		}
		seen[sig] = g.ID
		g.ReqID = g.ID
		reqs = append(reqs, reqOf(g))
	}
	return reqs
}

// canonicalOperands returns the operands in value-ID order: the layout only
// needs the block to contain them adjacently; the fused kernel indexes
// members within the block. Canonicalizing lets the forward and backward
// groups over the same weights issue the *same* request instead of
// spuriously conflicting on order.
func canonicalOperands(vals []*graph.Value) []*graph.Value {
	out := append([]*graph.Value{}, vals...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func hasDuplicateValues(vals []*graph.Value) bool {
	seen := map[*graph.Value]bool{}
	for _, v := range vals {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	return false
}

func operandSig(vals []*graph.Value) string {
	s := ""
	for _, v := range vals {
		s += fmt.Sprintf("%d,", v.ID)
	}
	return s
}

func sharedOperands(a, b *FusionGroup) []*graph.Value {
	set := map[*graph.Value]bool{}
	for _, v := range a.Operands {
		set[v] = true
	}
	var out []*graph.Value
	for _, v := range b.Operands {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

// dropOperand removes the GEMM owning the operand from the group; a group
// left with fewer than two members dissolves back to singles.
func (g *FusionGroup) dropOperand(v *graph.Value, ub *unitBuilder) {
	g.shrunk = true
	var keptG []*graph.Node
	var keptOps []*graph.Value
	for i, n := range g.GEMMs {
		if i < len(g.Operands) && g.Operands[i] == v {
			delete(ub.inGroup, n)
			continue
		}
		keptG = append(keptG, n)
		if i < len(g.Operands) {
			keptOps = append(keptOps, g.Operands[i])
		}
	}
	g.GEMMs, g.Operands = keptG, keptOps
	if len(g.GEMMs) < 2 {
		for _, n := range g.GEMMs {
			delete(ub.inGroup, n)
		}
		for _, a := range g.Adds {
			delete(ub.inGroup, a)
		}
		g.GEMMs = nil
	}
}

// buildUnits assembles the final unit list: GEMM groups, JIT-fused
// elementwise chains, and singles for everything else; then wires unit
// dependencies.
func (ub *unitBuilder) buildUnits(ewFusion bool) []*Unit {
	unitOf := map[*graph.Node]*Unit{}
	var units []*Unit
	emitted := map[*FusionGroup]bool{}
	add := func(u *Unit) {
		units = append(units, u)
		for _, n := range u.Nodes {
			unitOf[n] = u
		}
	}

	// Elementwise chains: maximal single-consumer runs in the same
	// provenance bucket, not claimed by a GEMM group.
	chainNext := map[*graph.Node]*graph.Node{}
	chainHasPrev := map[*graph.Node]bool{}
	if ewFusion {
		for _, n := range ub.g.Nodes {
			if !n.Op.IsElementwise() || ub.inGroup[n] != nil {
				continue
			}
			if len(ub.cons[n.Out]) != 1 {
				continue
			}
			c := ub.cons[n.Out][0]
			if !c.Op.IsElementwise() || ub.inGroup[c] != nil || provKey(c) != provKey(n) {
				continue
			}
			if chainHasPrev[c] {
				// c already continues another chain (it has two
				// elementwise producers); it can extend only one.
				continue
			}
			chainNext[n] = c
			chainHasPrev[c] = true
		}
	}

	// A multi-node unit becomes schedulable only once its last node's
	// dependencies exist, so units are emitted at their LAST member's
	// position in the (topological) node order — that keeps the unit list
	// itself topological.
	seq := 0
	groupLast := map[*FusionGroup]*graph.Node{}
	for _, n := range ub.g.Nodes {
		if grp := ub.inGroup[n]; grp != nil {
			groupLast[grp] = n
		}
	}
	chainLast := map[*graph.Node]*graph.Node{} // chain head -> last node
	chainHead := map[*graph.Node]*graph.Node{} // last node -> chain head
	for n := range chainNext {                 // nodeterm:ok writes distinct keys; unit emission follows g.Nodes order
		if chainHasPrev[n] {
			continue // not a head
		}
		last := n
		for c := chainNext[last]; c != nil; c = chainNext[last] {
			last = c
		}
		chainLast[n] = last
		chainHead[last] = n
	}
	for _, n := range ub.g.Nodes {
		switch {
		case ub.views[n]:
			continue // folded into GEMM operand flags
		case ub.inGroup[n] != nil:
			grp := ub.inGroup[n]
			if emitted[grp] || groupLast[grp] != n {
				continue
			}
			emitted[grp] = true
			nodes := append([]*graph.Node{}, grp.GEMMs...)
			nodes = append(nodes, grp.Adds...)
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
			add(&Unit{ID: grp.ID, Kind: UnitGEMMGroup, Nodes: nodes, Group: grp})
		case chainHead[n] != nil:
			head := chainHead[n]
			nodes := []*graph.Node{head}
			for c := chainNext[head]; c != nil; c = chainNext[nodes[len(nodes)-1]] {
				nodes = append(nodes, c)
			}
			add(&Unit{ID: fmt.Sprintf("ew%d", seq), Kind: UnitEWChain, Nodes: nodes})
			seq++
		case chainHasPrev[n] || chainNext[n] != nil:
			continue // chain member; emitted at the chain's last node
		default:
			add(&Unit{ID: fmt.Sprintf("n%d", n.ID), Kind: UnitSingle, Nodes: []*graph.Node{n}})
		}
	}

	// Dependencies: a unit depends on the units producing its inputs.
	producer := map[*graph.Value]*Unit{}
	for _, u := range units {
		for _, n := range u.Nodes {
			producer[n.Out] = u
		}
	}
	for _, u := range units {
		depSet := map[*Unit]bool{}
		inUnit := map[*graph.Node]bool{}
		for _, n := range u.Nodes {
			inUnit[n] = true
		}
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				src := in
				if in.Producer != nil && ub.views[in.Producer] {
					src = in.Producer.Inputs[0] // view: depend on its source
				}
				p := producer[src]
				if p != nil && p != u && !depSet[p] {
					depSet[p] = true
					u.Deps = append(u.Deps, p)
				}
			}
		}
	}
	return units
}

// Views returns the transpose nodes of g that fold into GEMM operand flags
// (every consumer is a GEMM). Baseline dispatchers share this so that the
// comparison with Astra is not skewed by materializing transposes the
// frameworks also treat as views.
func Views(g *graph.Graph) map[*graph.Node]bool {
	ub := &unitBuilder{g: g, cons: g.Consumers(), views: map[*graph.Node]bool{}}
	ub.findViews()
	return ub.views
}
