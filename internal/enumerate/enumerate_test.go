package enumerate

import (
	"testing"

	"astra/internal/graph"
	"astra/internal/models"
	"astra/internal/tensor"
)

func tinyPlan(t *testing.T, name string, preset Preset) (*models.Model, *Plan) {
	t.Helper()
	build, ok := models.Get(name)
	if !ok {
		t.Fatalf("model %q", name)
	}
	m := build(models.TinyConfig(name, 2))
	return m, Enumerate(m.G, PresetOptions(preset))
}

func TestPaperExampleSharedArgFusion(t *testing.T) {
	// §4.4.1: "%10 = mm(%1, %5); %11 = mm(%1, %6)" — two mm sharing %1
	// with no dependence between %5 and %6 fuse into one operation.
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 4, 8) // %1
	w1 := g.Param("w1", tensor.New(8, 16))
	w2 := g.Param("w2", tensor.New(8, 16))
	tgt := g.Input("t", 4, 1)
	h := b.Add(b.MatMul(x, w1), b.MatMul(x, w2))
	b.CrossEntropy(b.MatMul(h, g.Param("wo", tensor.New(16, 3))), tgt)
	p := Enumerate(g, PresetOptions(PresetF))
	if len(p.Groups) == 0 {
		t.Fatal("no fusion groups found")
	}
	// Ladder mining runs first and absorbs the add too; either way the two
	// GEMMs sharing x must land in one group with operands {w1, w2}.
	var found *FusionGroup
	for _, grp := range p.Groups {
		if len(grp.GEMMs) == 2 && grp.Operands[0] == w1 && grp.Operands[1] == w2 {
			found = grp
		}
	}
	if found == nil {
		t.Fatalf("GEMMs sharing x not grouped; groups: %+v", p.Groups)
	}
}

func TestDependentGEMMsNotFused(t *testing.T) {
	// mm(x, mm(x, w)) — the inner feeds the outer; despite sharing x they
	// must not fuse.
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 4, 4)
	w := g.Param("w", tensor.New(4, 4))
	tgt := g.Input("t", 4, 1)
	inner := b.MatMul(x, w)
	outer := b.MatMul(x, inner)
	b.CrossEntropy(outer, tgt)
	p := Enumerate(g, PresetOptions(PresetF))
	for _, grp := range p.Groups {
		if grp.Kind == SharedLeft && grp.Shared == x {
			t.Fatalf("dependent GEMMs fused: %+v", grp)
		}
	}
}

func TestLadderDetection(t *testing.T) {
	// %12 = add(mm(%1,%5), mm(%2,%6)) — the GEMM-accumulator ladder.
	g := graph.New()
	b := graph.NewBuilder(g)
	a1 := g.Input("a1", 4, 8)
	a2 := g.Input("a2", 4, 8)
	w1 := g.Param("w1", tensor.New(8, 8))
	w2 := g.Param("w2", tensor.New(8, 8))
	tgt := g.Input("t", 4, 1)
	sum := b.Add(b.MatMul(a1, w1), b.MatMul(a2, w2))
	b.CrossEntropy(sum, tgt)
	p := Enumerate(g, PresetOptions(PresetF))
	var ladder *FusionGroup
	for _, grp := range p.Groups {
		if grp.Kind == Ladder {
			ladder = grp
		}
	}
	if ladder == nil {
		t.Fatal("ladder not detected")
	}
	if len(ladder.GEMMs) != 2 || len(ladder.Adds) != 1 {
		t.Fatalf("ladder has %d GEMMs, %d adds", len(ladder.GEMMs), len(ladder.Adds))
	}
}

func TestLadderNotDetectedWhenIntermediateShared(t *testing.T) {
	// If a GEMM output is used elsewhere, the ladder cannot absorb it
	// ("if %10 and %11 are not used elsewhere").
	g := graph.New()
	b := graph.NewBuilder(g)
	a1 := g.Input("a1", 4, 8)
	w1 := g.Param("w1", tensor.New(8, 8))
	w2 := g.Param("w2", tensor.New(8, 8))
	tgt := g.Input("t", 4, 1)
	m1 := b.MatMul(a1, w1)
	m2 := b.MatMul(a1, w2) // shares a1: may fuse as shared-left instead
	sum := b.Add(m1, m2)
	extra := b.Tanh(m1) // m1 used elsewhere: no ladder
	b.CrossEntropy(b.Add(sum, extra), tgt)
	p := Enumerate(g, PresetOptions(PresetF))
	for _, grp := range p.Groups {
		if grp.Kind == Ladder {
			t.Fatal("ladder detected despite shared intermediate")
		}
	}
}

func TestViewTransposes(t *testing.T) {
	// Transposes feeding only GEMMs are folded into operand flags and must
	// not appear as schedule units.
	m, p := tinyPlan(t, "stackedlstm", PresetF)
	transposeUnits := 0
	for _, u := range p.Units {
		for _, n := range u.Nodes {
			if n.Op == graph.OpTranspose {
				transposeUnits++
			}
		}
	}
	total := 0
	for _, n := range m.G.Nodes {
		if n.Op == graph.OpTranspose {
			total++
		}
	}
	if total == 0 {
		t.Fatal("expected transposes in backward pass")
	}
	if transposeUnits != 0 {
		t.Fatalf("%d of %d transposes still scheduled as kernels", transposeUnits, total)
	}
}

func TestElementwiseChains(t *testing.T) {
	_, p := tinyPlan(t, "milstm", PresetF)
	chains := 0
	for _, u := range p.Units {
		if u.Kind == UnitEWChain {
			chains++
			if len(u.Nodes) < 2 {
				t.Fatalf("chain with %d nodes", len(u.Nodes))
			}
			for _, n := range u.Nodes {
				if !n.Op.IsElementwise() {
					t.Fatalf("non-elementwise %v in chain", n.Op)
				}
			}
		}
	}
	if chains == 0 {
		t.Fatal("no elementwise chains found in MI-LSTM")
	}
}

func TestEveryNonViewNodeScheduledExactlyOnce(t *testing.T) {
	for _, name := range models.Names() {
		m, p := tinyPlan(t, name, PresetAll)
		count := map[*graph.Node]int{}
		for _, u := range p.Units {
			for _, n := range u.Nodes {
				count[n]++
			}
		}
		views := 0
		for _, n := range m.G.Nodes {
			switch count[n] {
			case 1:
			case 0:
				if n.Op != graph.OpTranspose {
					t.Fatalf("%s: node %v not scheduled", name, n)
				}
				views++
			default:
				t.Fatalf("%s: node %v scheduled %d times", name, n, count[n])
			}
		}
		if views == 0 {
			t.Fatalf("%s: no view transposes (expected in backward)", name)
		}
	}
}

func TestUnitDepsAreAcyclicAndTopological(t *testing.T) {
	for _, name := range models.Names() {
		_, p := tinyPlan(t, name, PresetAll)
		pos := map[*Unit]int{}
		for i, u := range p.Units {
			pos[u] = i
		}
		for _, u := range p.Units {
			for _, d := range u.Deps {
				if pos[d] >= pos[u] {
					t.Fatalf("%s: unit %s depends on later unit %s", name, u.ID, d.ID)
				}
			}
		}
	}
}

func TestEpochsRespectDependencies(t *testing.T) {
	for _, name := range models.Names() {
		_, p := tinyPlan(t, name, PresetAll)
		for _, u := range p.Units {
			for _, d := range u.Deps {
				if d.Epoch >= u.Epoch {
					t.Fatalf("%s: dep epoch %d >= unit epoch %d", name, d.Epoch, u.Epoch)
				}
				if d.SuperEpoch > u.SuperEpoch {
					t.Fatalf("%s: dep super-epoch after unit's", name)
				}
			}
		}
	}
}

func TestSuperEpochPartitioning(t *testing.T) {
	// Paper-scale stacked LSTM must split into multiple super-epochs of a
	// few ms each; the tiny config may fit in one.
	m := models.StackedLSTM(models.DefaultConfig("stackedlstm", 16))
	p := Enumerate(m.G, PresetOptions(PresetFKS))
	if len(p.Supers) < 2 {
		t.Fatalf("paper-scale model has %d super-epochs", len(p.Supers))
	}
	for i, se := range p.Supers[:len(p.Supers)-1] {
		if se.Flops == 0 {
			t.Fatalf("super-epoch %d empty", i)
		}
	}
}

func TestEquivalenceClassesCutStateSpace(t *testing.T) {
	// The 4 gate GEMM units of an unfused LSTM step share shapes and
	// deps; equivalence must group them (§4.5.5's 2^10 -> 5 example).
	m := models.StackedLSTM(models.TinyConfig("stackedlstm", 2))
	opts := PresetOptions(PresetFKS)
	opts.FusionAdapt = false // keep GEMMs unfused so classes show up
	p := Enumerate(m.G, opts)
	found := false
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			for _, c := range ep.Classes {
				if len(c.Units) >= 2 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no equivalence class with >= 2 units")
	}
	_ = p
}

func TestPresetVariableSets(t *testing.T) {
	_, pF := tinyPlan(t, "scrnn", PresetF)
	_, pFK := tinyPlan(t, "scrnn", PresetFK)
	_, pFKS := tinyPlan(t, "scrnn", PresetFKS)
	_, pAll := tinyPlan(t, "scrnn", PresetAll)
	if len(pF.KernelVars) != 0 || len(pF.StreamVars) != 0 || pF.AllocVar != nil {
		t.Fatal("Astra_F should only have chunk vars")
	}
	if len(pFK.KernelVars) == 0 || len(pFK.StreamVars) != 0 {
		t.Fatal("Astra_FK should add kernel vars only")
	}
	if len(pFKS.StreamVars) == 0 {
		t.Fatal("Astra_FKS should add stream vars")
	}
	vF, vFK, vFKS, vAll := pF.Stats().Variables, pFK.Stats().Variables, pFKS.Stats().Variables, pAll.Stats().Variables
	if !(vF < vFK && vFK < vFKS && vFKS <= vAll) {
		t.Fatalf("variable counts not monotone: %d %d %d %d", vF, vFK, vFKS, vAll)
	}
}

func TestChunkLabels(t *testing.T) {
	cases := map[int][]string{
		2: {"1", "2"},
		3: {"1", "2", "3"},
		4: {"1", "2", "4"},
		6: {"1", "2", "4", "6"},
		8: {"1", "2", "4", "8"},
	}
	for n, want := range cases {
		got := chunkLabels(n)
		if len(got) != len(want) {
			t.Fatalf("chunkLabels(%d) = %v", n, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunkLabels(%d) = %v", n, got)
			}
		}
	}
}

func TestTreeBuiltPerPreset(t *testing.T) {
	for _, preset := range []Preset{PresetF, PresetFK, PresetFKS, PresetAll} {
		_, p := tinyPlan(t, "sublstm", preset)
		if p.Tree == nil {
			t.Fatalf("%s: no tree", preset)
		}
		if p.Tree.Size() == 0 {
			t.Fatalf("%s: empty tree", preset)
		}
	}
}

func TestAllocForkOnlyWithConflicts(t *testing.T) {
	for _, name := range models.Names() {
		_, p := tinyPlan(t, name, PresetAll)
		if p.AllocVar != nil && len(p.Allocs) < 2 {
			t.Fatalf("%s: alloc var without alternatives", name)
		}
		if p.Alloc() == nil {
			t.Fatalf("%s: no active allocation", name)
		}
	}
}

func TestModelsHaveFusionOpportunities(t *testing.T) {
	for _, name := range models.Names() {
		_, p := tinyPlan(t, name, PresetF)
		if len(p.Groups) == 0 {
			t.Fatalf("%s: enumerator found no fusion groups", name)
		}
		st := p.Stats()
		if st.GroupedGEMMs < 4 {
			t.Fatalf("%s: only %d GEMMs grouped", name, st.GroupedGEMMs)
		}
	}
}

func TestUnknownPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown preset accepted")
		}
	}()
	PresetOptions("Astra_nope")
}

func TestCrossStepGroupsFormed(t *testing.T) {
	// The "2-D" fusion dimension: per-timestep input GEMMs sharing a
	// weight must batch across timesteps when per-step fusion leaves them
	// unclaimed (mm(x_t, B) in SC-RNN).
	m := models.SCRNN(models.TinyConfig("scrnn", 2))
	p := Enumerate(m.G, PresetOptions(PresetF))
	found := false
	for _, g := range p.Groups {
		if g.Kind != SharedRight || len(g.GEMMs) < 2 {
			continue
		}
		steps := map[int]bool{}
		for _, n := range g.GEMMs {
			steps[n.Prov.Timestep] = true
		}
		if len(steps) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no cross-timestep fusion group")
	}
}

func TestBackwardRecurrentGEMMsNotCrossFused(t *testing.T) {
	// Backward recurrent GEMMs mm(dpre_t, Wh^T) are chained through the
	// hidden-state gradient: cross-step batching must reject them.
	m := models.StackedLSTM(models.TinyConfig("stackedlstm", 2))
	p := Enumerate(m.G, PresetOptions(PresetF))
	byOut := m.G.NodeByOutput()
	_ = byOut
	for _, g := range p.Groups {
		steps := map[int]bool{}
		for _, n := range g.GEMMs {
			steps[n.Prov.Timestep] = true
		}
		if len(steps) < 2 {
			continue
		}
		// Cross-step members must be mutually independent: verify by
		// checking that no member's output transitively feeds another.
		cons := m.G.Consumers()
		members := map[*graph.Node]bool{}
		for _, n := range g.GEMMs {
			members[n] = true
		}
		for _, n := range g.GEMMs {
			stack := []*graph.Node{n}
			seen := map[*graph.Node]bool{n: true}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, c := range cons[cur.Out] {
					if members[c] && c != n {
						t.Fatalf("group %s fused dependent GEMMs across steps", g.ID)
					}
					if !seen[c] {
						seen[c] = true
						stack = append(stack, c)
					}
				}
			}
		}
	}
}

func TestForwardBackwardRequestsDeduped(t *testing.T) {
	// The forward gate groups and the backward dx/dh ladders constrain the
	// same weight tensors; canonical operand ordering must give them the
	// same request instead of a spurious conflict.
	m := models.StackedLSTM(models.TinyConfig("stackedlstm", 2))
	p := Enumerate(m.G, PresetOptions(PresetAll))
	shared := map[string]int{}
	for _, g := range p.Groups {
		if g.ReqID != "" {
			shared[g.ReqID]++
		}
	}
	reused := false
	for _, n := range shared {
		if n >= 2 {
			reused = true
		}
	}
	if !reused {
		t.Fatal("no request shared between groups (dedup broken)")
	}
}

func TestSCRNNHasAllocationFork(t *testing.T) {
	// The Figure 1 situation must arise at paper scale on SC-RNN: at least
	// one genuine conflict survives static resolution.
	m := models.SCRNN(models.DefaultConfig("scrnn", 16))
	p := Enumerate(m.G, PresetOptions(PresetAll))
	if p.AllocVar == nil || len(p.Allocs) < 2 {
		t.Fatalf("no allocation fork for paper-scale SC-RNN (allocs=%d)", len(p.Allocs))
	}
}

func TestLargeLaddersAbsorbAccumulation(t *testing.T) {
	// Weight-gradient accumulation across timesteps (dW = sum_t ...) must
	// fuse into a single large ladder rather than a chain of big adds.
	m := models.StackedLSTM(models.TinyConfig("stackedlstm", 2))
	p := Enumerate(m.G, PresetOptions(PresetF))
	maxLadder := 0
	for _, g := range p.Groups {
		if g.Kind == Ladder && len(g.GEMMs) > maxLadder {
			maxLadder = len(g.GEMMs)
		}
	}
	if maxLadder < m.Cfg.SeqLen {
		t.Fatalf("largest ladder has %d members; want >= seqlen %d", maxLadder, m.Cfg.SeqLen)
	}
}

func TestStreamLabelsBalanced(t *testing.T) {
	// §4.5.5 + §4.8: a 10-unit class gets ~5 roughly balanced splits, not
	// 11; small classes enumerate everything.
	if got := streamLabels(2); len(got) != 3 {
		t.Fatalf("streamLabels(2) = %v", got)
	}
	got := streamLabels(10)
	if len(got) != 5 {
		t.Fatalf("streamLabels(10) = %v, want 5 choices (paper's example)", got)
	}
	want := []string{"0", "2", "5", "7", "10"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streamLabels(10) = %v", got)
		}
	}
	if got := streamLabels(5); len(got) != 5 {
		t.Fatalf("streamLabels(5) = %v (duplicates not collapsed)", got)
	}
}
