// Package enumerate implements Astra's compiler half: the enumerator
// (§4.4). It performs static analysis over the training graph — GEMM
// fusion candidate mining, fusion ladders, elementwise chains, memory
// contiguity requests and allocation strategies, super-epoch/epoch
// partitioning, equivalence classes — and emits (a) a schedule-unit graph
// and (b) an update tree of adaptive variables with exploration-mode
// annotations. It deliberately contains no cost model beyond coarse static
// flop estimates: ranking configurations is the runtime's job.
package enumerate

import (
	"fmt"
	"strconv"

	"astra/internal/adapt"
	"astra/internal/graph"
	"astra/internal/memory"
)

// Options selects the adaptation dimensions, mirroring the ablation columns
// of Tables 2–6: Astra_F (fusion), Astra_FK (+kernel selection), Astra_FKS
// (+streams), Astra_all (+memory allocation).
type Options struct {
	FusionAdapt bool // adapt GEMM fusion chunking
	KernelAdapt bool // adapt GEMM library per group
	StreamAdapt bool // adapt multi-stream assignment
	AllocAdapt  bool // adapt memory-allocation strategy

	// ElementwiseFusion JIT-fuses pointwise chains (§5.3); always on in
	// the paper's prototype.
	ElementwiseFusion bool

	// CommAdapt adds the data-parallel communication dimension (§3.4,
	// §6.7): gradient-bucket size and comm-stream placement become
	// adaptive variables. It only takes effect with Workers >= 2.
	CommAdapt bool
	// Workers is the data-parallel worker count the schedule will run at;
	// it sizes the ring all-reduce the comm variables control.
	Workers int

	// NumStreams is the stream count used when StreamAdapt is set.
	NumStreams int
	// SuperEpochUs is the barrier-exploration granularity (§4.5.3),
	// "a few milliseconds worth of computation".
	SuperEpochUs float64
	// FlopsPerUs converts static flops to estimated device time for
	// super-epoch carving.
	FlopsPerUs float64
	// MaxGroup bounds fusion group size (§4.8: diminishing returns).
	MaxGroup int
	// MaxAllocStrategies bounds the allocation fork width.
	MaxAllocStrategies int
	// MaxEpochTuples bounds the exhaustive product within one epoch;
	// classes beyond it keep the static round-robin stream assignment.
	MaxEpochTuples int

	// Preset records which named preset produced these options (set by
	// PresetOptions, empty for hand-assembled options). It changes no
	// enumeration behaviour; sessions stamp it into their event logs so a
	// log alone suffices to rebuild an equivalent plan.
	Preset string
}

// Preset names the cumulative feature levels of the evaluation tables.
type Preset string

// Presets as reported in the paper's tables.
const (
	PresetF   Preset = "Astra_F"
	PresetFK  Preset = "Astra_FK"
	PresetFKS Preset = "Astra_FKS"
	PresetAll Preset = "Astra_all"
)

// PresetOptions returns the options for a named preset.
func PresetOptions(p Preset) Options {
	o := Options{FusionAdapt: true, ElementwiseFusion: true, Preset: string(p)}
	switch p {
	case PresetF:
	case PresetFK:
		o.KernelAdapt = true
	case PresetFKS:
		o.KernelAdapt = true
		o.StreamAdapt = true
	case PresetAll:
		o.KernelAdapt = true
		o.StreamAdapt = true
		o.AllocAdapt = true
	default:
		panic(fmt.Sprintf("enumerate: unknown preset %q", p))
	}
	return o
}

func (o Options) withDefaults() Options {
	if o.NumStreams == 0 {
		o.NumStreams = 2
	}
	if o.SuperEpochUs == 0 {
		o.SuperEpochUs = 2000
	}
	if o.FlopsPerUs == 0 {
		// Achieved (not peak) throughput of the long-tail models the
		// system targets: they underutilize the GPU, which is the point.
		o.FlopsPerUs = 0.5e6
	}
	if o.MaxGroup == 0 {
		o.MaxGroup = 16
	}
	if o.MaxAllocStrategies == 0 {
		o.MaxAllocStrategies = 6
	}
	if o.MaxEpochTuples == 0 {
		o.MaxEpochTuples = 64
	}
	return o
}

// Plan is the enumerator's output: the templated schedule (§4.4) plus the
// update tree the custom-wirer explores.
type Plan struct {
	G    *graph.Graph
	Opts Options

	Units    []*Unit
	Groups   []*FusionGroup // live groups (>= 2 members)
	Requests []memory.Request
	Allocs   []*memory.Strategy
	Supers   []*SuperEpoch

	// Tree is nil when no adaptation dimension is enabled.
	Tree *adapt.Tree

	AllocVar   *adapt.Var
	ChunkVars  map[*FusionGroup]*adapt.Var
	KernelVars map[*Unit]*adapt.Var
	StreamVars map[*Class]*adapt.Var
	// EpochVarID names the composite (exhaustive) variable measuring each
	// epoch, for metric attribution by the custom-wirer.
	EpochVarID map[*Epoch]string
	// EpochVars holds the composite variables themselves.
	EpochVars map[*Epoch]*adapt.Var

	// Grads locates every parameter gradient in the schedule, in dispatch
	// order — the packing order of the gradient-bucketing comm engine.
	Grads []GradSite
	// CommBucketVar / CommPlaceVar are the communication dimension's
	// adaptive variables (nil unless CommAdapt with Workers >= 2).
	CommBucketVar *adapt.Var
	CommPlaceVar  *adapt.Var
}

// Enumerate runs the compiler over a training graph.
func Enumerate(g *graph.Graph, opts Options) *Plan {
	opts = opts.withDefaults()
	ub := &unitBuilder{
		g:         g,
		cons:      g.Consumers(),
		views:     map[*graph.Node]bool{},
		inGroup:   map[*graph.Node]*FusionGroup{},
		maxGroup:  opts.MaxGroup,
		maxLadder: 4 * opts.MaxGroup,
	}
	// Candidates from all three miners compete in one greedy pass, largest
	// first, so a 4-gate shared-argument group beats the per-gate 2-GEMM
	// ladders for the same GEMMs, and cross-timestep groups pick up
	// whatever per-step fusion left unclaimed.
	ub.findViews()
	cands := ub.collectLadderCandidates()
	cands = append(cands, ub.collectSharedArgCandidates()...)
	cands = append(cands, ub.collectCrossStepCandidates()...)
	sortCandidates(cands)
	for _, c := range cands {
		ub.tryClaim(c)
	}
	requests := ub.requests()
	units := ub.buildUnits(opts.ElementwiseFusion)

	planner := &memory.Planner{MaxStrategies: opts.MaxAllocStrategies}
	allocs := planner.Plan(g.Values, requests)
	if !opts.AllocAdapt {
		allocs = allocs[:1] // the greedy default layout
	}

	supers := partition(units, opts.SuperEpochUs, opts.FlopsPerUs)

	p := &Plan{
		G:          g,
		Opts:       opts,
		Units:      units,
		Requests:   requests,
		Allocs:     allocs,
		Supers:     supers,
		ChunkVars:  map[*FusionGroup]*adapt.Var{},
		KernelVars: map[*Unit]*adapt.Var{},
		StreamVars: map[*Class]*adapt.Var{},
		EpochVarID: map[*Epoch]string{},
		EpochVars:  map[*Epoch]*adapt.Var{},
	}
	for _, u := range units {
		if u.Kind == UnitGEMMGroup {
			p.Groups = append(p.Groups, u.Group)
		}
	}
	p.Grads = p.gradSites()
	p.buildTree()
	return p
}

// chunkLabels enumerates fusion granularities: powers of two up to the
// group size, always including 1 (unfused) and the full group.
func chunkLabels(n int) []string {
	var out []string
	for c := 1; c < n; c *= 2 {
		out = append(out, strconv.Itoa(c))
	}
	return append(out, strconv.Itoa(n))
}

// streamLabels enumerates "k of n units to stream 1" for a class (§4.5.5).
// Small classes enumerate every split; larger classes keep about five
// evenly spaced splits — the paper's worked example gives 10 equivalent
// kernels just 5 choices, using the §4.8 static knowledge that stream work
// should stay roughly balanced.
func streamLabels(n int) []string {
	if n <= 4 {
		out := make([]string, n+1)
		for k := 0; k <= n; k++ {
			out[k] = strconv.Itoa(k)
		}
		return out
	}
	var out []string
	seen := map[int]bool{}
	for _, k := range []int{0, n / 4, n / 2, (3 * n) / 4, n} {
		if !seen[k] {
			seen[k] = true
			out = append(out, strconv.Itoa(k))
		}
	}
	return out
}

var libraryLabels = []string{"cublas", "oai1", "oai2"}

// buildTree assembles the update tree from the enabled dimensions:
//
//	Fork(alloc,
//	  Parallel(
//	    per fusion group: Prefix(chunk, lib),
//	    per standalone GEMM: lib,
//	    Parallel over super-epochs (barrier exploration),
//	      each: Prefix over epochs,
//	        each: Exhaustive over class stream variables))
func (p *Plan) buildTree() {
	var body []*adapt.Tree
	for _, u := range p.Units {
		switch u.Kind {
		case UnitGEMMGroup:
			var children []*adapt.Tree
			if p.Opts.FusionAdapt {
				cv := adapt.NewVar(u.Group.ID+".chunk", chunkLabels(len(u.Group.GEMMs))...)
				p.ChunkVars[u.Group] = cv
				children = append(children, adapt.LeafNode(cv))
			}
			if p.Opts.KernelAdapt {
				kv := adapt.NewVar(u.Group.ID+".lib", libraryLabels...)
				p.KernelVars[u] = kv
				children = append(children, adapt.LeafNode(kv))
			}
			switch len(children) {
			case 0:
			case 1:
				body = append(body, children[0])
			default:
				// Chunking first, then the library for the chosen shape:
				// the best kernel depends on the fused problem size.
				body = append(body, adapt.NewNode(u.Group.ID, adapt.Prefix, children...))
			}
		case UnitSingle:
			if p.Opts.KernelAdapt && u.Nodes[0].Op == graph.OpMatMul {
				kv := adapt.NewVar(u.ID+".lib", libraryLabels...)
				p.KernelVars[u] = kv
				body = append(body, adapt.LeafNode(kv))
			}
		}
	}
	if p.Opts.StreamAdapt && p.Opts.NumStreams >= 2 {
		var supers []*adapt.Tree
		for _, se := range p.Supers {
			var epochs []*adapt.Tree
			for _, ep := range se.Epochs {
				var classes []*adapt.Tree
				product := 1
				for k, cls := range ep.Classes {
					// Cap the within-epoch brute force (§4.5.5 keeps it
					// small; this is the safety valve for wide backward
					// levels). Classes beyond the cap are pinned to the
					// static round-robin assignment.
					if product*(len(cls.Units)+1) > p.Opts.MaxEpochTuples {
						continue
					}
					product *= len(cls.Units) + 1
					sv := adapt.NewVar(fmt.Sprintf("se%d.ep%d.c%d", se.Index, ep.Index, k),
						streamLabels(len(cls.Units))...)
					p.StreamVars[cls] = sv
					classes = append(classes, adapt.LeafNode(sv))
				}
				if len(classes) == 0 {
					continue
				}
				id := fmt.Sprintf("se%d.ep%d", se.Index, ep.Index)
				p.EpochVarID[ep] = id
				node := adapt.NewNode(id, adapt.Exhaustive, classes...)
				p.EpochVars[ep] = node.CompositeVar()
				epochs = append(epochs, node)
			}
			if len(epochs) == 0 {
				continue
			}
			supers = append(supers, adapt.NewNode(fmt.Sprintf("se%d", se.Index), adapt.Prefix, epochs...))
		}
		if len(supers) > 0 {
			// Barrier exploration: super-epochs are independent thanks to
			// the forced synchronization at their boundaries.
			body = append(body, adapt.NewNode("streams", adapt.Parallel, supers...))
		}
	}
	var inner *adapt.Tree
	switch len(body) {
	case 0:
	case 1:
		inner = body[0]
	default:
		inner = adapt.NewNode("body", adapt.Parallel, body...)
	}
	// The communication dimension explores after the compute schedule has
	// frozen (Prefix): its variables are judged on end-to-end batch time,
	// which is only a clean signal once fusion/kernel/stream choices have
	// stopped moving — and the best bucketing genuinely depends on them.
	if p.Opts.CommAdapt && p.Opts.Workers >= 2 && len(p.Grads) > 0 {
		comm := p.buildCommNode()
		if inner == nil {
			inner = comm
		} else {
			inner = adapt.NewNode("sched", adapt.Prefix, inner, comm)
		}
	}
	if inner == nil {
		return
	}
	if p.Opts.AllocAdapt && len(p.Allocs) > 1 {
		labels := make([]string, len(p.Allocs))
		for i, a := range p.Allocs {
			labels[i] = a.Name
		}
		p.AllocVar = adapt.NewVar("alloc", labels...)
		p.Tree = adapt.NewNode("root", adapt.Fork, adapt.LeafNode(p.AllocVar), inner)
		return
	}
	p.Tree = inner
}

// Alloc returns the active allocation strategy given the alloc variable's
// current choice (or the default when allocation is not adapted).
func (p *Plan) Alloc() *memory.Strategy {
	if p.AllocVar == nil {
		return p.Allocs[0]
	}
	return p.Allocs[p.AllocVar.Current()]
}

// Stats summarizes the plan for reports.
type Stats struct {
	Units, Groups, GroupedGEMMs int
	Requests, Allocs            int
	SuperEpochs, Epochs         int
	Variables                   int
}

// Stats computes plan summary statistics.
func (p *Plan) Stats() Stats {
	s := Stats{
		Units:    len(p.Units),
		Groups:   len(p.Groups),
		Requests: len(p.Requests),
		Allocs:   len(p.Allocs),
	}
	for _, g := range p.Groups {
		s.GroupedGEMMs += len(g.GEMMs)
	}
	s.SuperEpochs = len(p.Supers)
	for _, se := range p.Supers {
		s.Epochs += len(se.Epochs)
	}
	if p.Tree != nil {
		s.Variables = len(p.Tree.Vars())
	}
	return s
}
