package enumerate

import (
	"strings"
	"testing"

	"astra/internal/models"
)

func commPlan(t *testing.T, workers int, adapt bool) *Plan {
	t.Helper()
	build, ok := models.Get("sublstm")
	if !ok {
		t.Fatal("model sublstm")
	}
	m := build(models.TinyConfig("sublstm", 2))
	opts := PresetOptions(PresetFK)
	opts.CommAdapt = adapt
	opts.Workers = workers
	return Enumerate(m.G, opts)
}

func TestCommBucketLabels(t *testing.T) {
	// A tiny payload yields only "all".
	if got := CommBucketLabels(1024); len(got) != 1 || got[0] != "all" {
		t.Fatalf("tiny payload labels = %v", got)
	}
	// A large payload yields ascending KB powers of four, capped, plus
	// "all" as the final choice.
	got := CommBucketLabels(1 << 30)
	if got[len(got)-1] != "all" {
		t.Fatalf("labels must end in all: %v", got)
	}
	if len(got) < 3 || len(got) > 5 {
		t.Fatalf("label ladder wrong size: %v", got)
	}
	if got[0] != "256" || got[1] != "1024" {
		t.Fatalf("ladder should start 256, 1024: %v", got)
	}
}

func TestCommNodeInTree(t *testing.T) {
	p := commPlan(t, 4, true)
	if p.CommBucketVar == nil || p.CommPlaceVar == nil {
		t.Fatal("comm variables not enumerated")
	}
	if p.GradBytes() <= 0 {
		t.Fatal("no gradient payload")
	}
	if len(p.Grads) == 0 {
		t.Fatal("no gradient sites")
	}
	r := p.Tree.Render()
	for _, want := range []string{"comm.bucket_kb", "comm.place"} {
		if !strings.Contains(r, want) {
			t.Fatalf("update tree missing %s:\n%s", want, r)
		}
	}
	// Placement labels are fixed; bucket labels come from the payload.
	if got := len(p.CommPlaceVar.Labels); got != 2 {
		t.Fatalf("placement choices = %d", got)
	}
	wantBuckets := len(CommBucketLabels(p.GradBytes()))
	if got := len(p.CommBucketVar.Labels); got != wantBuckets {
		t.Fatalf("bucket choices = %d, want %d", got, wantBuckets)
	}
}

func TestCommNodeGatedOff(t *testing.T) {
	// No CommAdapt: no comm variables, even with workers set.
	p := commPlan(t, 4, false)
	if p.CommBucketVar != nil || p.CommPlaceVar != nil {
		t.Fatal("comm variables enumerated without CommAdapt")
	}
	// CommAdapt but a single worker: still gated off.
	p = commPlan(t, 1, true)
	if p.CommBucketVar != nil || p.CommPlaceVar != nil {
		t.Fatal("comm variables enumerated for one worker")
	}
	// Gradient sites exist regardless (distsim needs the payload size).
	if len(p.Grads) == 0 {
		t.Fatal("gradient sites missing without CommAdapt")
	}
}
