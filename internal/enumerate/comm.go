package enumerate

import (
	"strconv"

	"astra/internal/adapt"
	"astra/internal/graph"
)

// GradSite locates one parameter gradient in the wired schedule: the unit
// whose dispatch completes the gradient, and the all-reduce payload it
// contributes. Sites are ordered by dispatch order (super-epoch, epoch,
// unit), which is the order gradients become ready on the device — the
// order the gradient-bucketing comm engine packs them in.
type GradSite struct {
	Param *graph.Value
	Grad  *graph.Value
	Unit  *Unit
	Bytes int64
}

// GradBytes sums the all-reduce payload over every gradient site.
func (p *Plan) GradBytes() int64 {
	var b int64
	for _, g := range p.Grads {
		b += g.Bytes
	}
	return b
}

// gradSites maps every parameter gradient to the schedule unit that
// produces it and sorts the sites into dispatch order. Gradients whose
// producer was folded away as a view (transposes absorbed into GEMM
// operand flags) attach to the unit of the first real producer found by
// walking the view chain; anything still unresolved attaches to the last
// unit, which can only delay — never break — its exchange.
func (p *Plan) gradSites() []GradSite {
	nodeUnit := map[*graph.Node]*Unit{}
	order := map[*Unit]int{}
	seq := 0
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			for _, u := range ep.Units {
				order[u] = seq
				seq++
				for _, n := range u.Nodes {
					nodeUnit[n] = u
				}
			}
		}
	}
	var last *Unit
	for _, se := range p.Supers {
		for _, ep := range se.Epochs {
			if len(ep.Units) > 0 {
				last = ep.Units[len(ep.Units)-1]
			}
		}
	}
	var sites []GradSite
	for _, param := range p.G.Params {
		gv, ok := p.G.Grads[param]
		if !ok || gv == nil {
			continue
		}
		u := unitProducing(gv, nodeUnit)
		if u == nil {
			u = last
		}
		if u == nil {
			continue
		}
		sites = append(sites, GradSite{
			Param: param,
			Grad:  gv,
			Unit:  u,
			Bytes: int64(gv.Shape.NumElements()) * 8,
		})
	}
	// Dispatch order; ties (one unit producing several gradients) keep the
	// deterministic Params order.
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && order[sites[j].Unit] < order[sites[j-1].Unit]; j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	return sites
}

// unitProducing walks producer links (seeing through units-absorbed views)
// until it finds a node that belongs to a schedule unit.
func unitProducing(v *graph.Value, nodeUnit map[*graph.Node]*Unit) *Unit {
	for hops := 0; v != nil && v.Producer != nil && hops < 8; hops++ {
		if u, ok := nodeUnit[v.Producer]; ok {
			return u
		}
		if len(v.Producer.Inputs) == 0 {
			return nil
		}
		v = v.Producer.Inputs[0]
	}
	return nil
}

// CommPlacementLabels are the comm-stream placement choices: "comm" issues
// all-reduce steps on a dedicated communication stream so gradient exchange
// overlaps the remaining backward compute; "main" issues them on stream 0,
// serializing exchange behind compute (the bulk-synchronous regime when
// combined with a single bucket).
var CommPlacementLabels = []string{"comm", "main"}

// commBucketLabels enumerates gradient-bucket byte caps for a model with
// totalBytes of gradients: powers of four from 256 KB up to (but excluding)
// the total, capped at a handful of choices, plus "all" — one bucket
// holding every gradient.
func commBucketLabels(totalBytes int64) []string {
	var out []string
	for kb := int64(256); kb*1024 < totalBytes && len(out) < 4; kb *= 4 {
		out = append(out, strconv.FormatInt(kb, 10))
	}
	return append(out, "all")
}

// CommBucketLabels returns the explorer's bucket-cap choice set for a given
// gradient payload — exported so exhaustive sweeps (distsim, harness) cover
// exactly the space the online explorer searches.
func CommBucketLabels(totalBytes int64) []string { return commBucketLabels(totalBytes) }

// buildCommNode creates the communication subtree: bucket size explores
// first (placement pinned at its default), then placement under the frozen
// bucket's context — the natural Prefix order, since the value of a
// dedicated stream depends on how much overlap the bucketing exposes.
func (p *Plan) buildCommNode() *adapt.Tree {
	p.CommBucketVar = adapt.NewVar("comm.bucket_kb", commBucketLabels(p.GradBytes())...)
	p.CommPlaceVar = adapt.NewVar("comm.place", CommPlacementLabels...)
	return adapt.NewNode("comm", adapt.Prefix,
		adapt.LeafNode(p.CommBucketVar), adapt.LeafNode(p.CommPlaceVar))
}
