// Package obs is Astra's unified telemetry layer: hierarchical spans on
// the simulated clock (session → trial → batch → fusion-group dispatch), a
// metrics registry with Prometheus text exposition, and a structured JSONL
// event log with one record per mini-batch.
//
// The paper's central observability claims — always-on fine-grained
// profiling under 0.5% overhead (§6.4) and exploration converging in a
// bounded number of mini-batches (§6.3, Table 7) — are only checkable with
// an end-to-end view of a session. This package provides that view: the
// custom-wirer, the explorer, the profile index and the GPU simulator all
// report into one Telemetry bundle, and a whole exploration session exports
// as a single multi-track Chrome/Perfetto trace.
//
// Everything here is safe for concurrent use: future work dispatches onto
// the device from concurrent streams, and the telemetry hot path must not
// be the thing that makes that racy.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing metric (e.g. explore.trials).
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic (counters are monotone).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("obs: counter decrement %v", d))
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can go up and down (e.g. profile.hit_rate).
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by d (either sign).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// DefTimeBuckets is the default histogram bucketing for simulated-time
// metrics, in µs: it spans a cheap fused kernel (~10 µs) to a multi-second
// mini-batch.
var DefTimeBuckets = []float64{
	10, 25, 50, 100, 250, 500,
	1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4,
	1e5, 2.5e5, 5e5, 1e6, 2.5e6,
}

// Histogram is a cumulative-bucket histogram (Prometheus semantics).
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending; +Inf is implicit
	counts  []uint64  // one per bucket (non-cumulative internally)
	inf     uint64
	sum     float64
	n       uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry holds named metrics. Names may use dots as namespace separators
// (explore.trials, batch.total_us); exposition sanitizes them to the
// Prometheus charset.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]interface{} // *Counter | *Gauge | *Histogram
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]interface{}{}, help: map[string]string{}}
}

// Counter returns the counter with the given name, creating it on first
// use. Re-registering an existing name with a different metric kind panics.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic("obs: " + name + " already registered with a different kind")
		}
		return c
	}
	c := &Counter{}
	r.metrics[name] = c
	r.help[name] = help
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic("obs: " + name + " already registered with a different kind")
		}
		return g
	}
	g := &Gauge{}
	r.metrics[name] = g
	r.help[name] = help
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds (DefTimeBuckets when none are given).
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic("obs: " + name + " already registered with a different kind")
		}
		return h
	}
	if len(buckets) == 0 {
		buckets = DefTimeBuckets
	}
	ubs := append([]float64(nil), buckets...)
	sort.Float64s(ubs)
	h := &Histogram{buckets: ubs, counts: make([]uint64, len(ubs))}
	r.metrics[name] = h
	r.help[name] = help
	return h
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// promName maps a dotted metric name onto the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// MetricValue is one entry of a Registry snapshot.
type MetricValue struct {
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value is the counter/gauge value; for histograms, the sum of all
	// observations.
	Value float64
	// Count is the histogram observation count (0 for counters/gauges).
	Count uint64
}

// Snapshot returns a point-in-time copy of every registered metric, keyed
// by the dotted registration name (not the sanitized Prometheus name).
// Analyzers and tests should read values here instead of parsing the text
// exposition.
func (r *Registry) Snapshot() map[string]MetricValue {
	r.mu.Lock()
	metrics := make(map[string]interface{}, len(r.metrics))
	for n, m := range r.metrics {
		metrics[n] = m
	}
	r.mu.Unlock()
	out := make(map[string]MetricValue, len(metrics))
	for n, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			out[n] = MetricValue{Kind: "counter", Value: m.Value()}
		case *Gauge:
			out[n] = MetricValue{Kind: "gauge", Value: m.Value()}
		case *Histogram:
			out[n] = MetricValue{Kind: "histogram", Value: m.Sum(), Count: m.Count()}
		}
	}
	return out
}

// WriteProm renders the registry in the Prometheus text exposition format
// (v0.0.4). The output format is a stable contract:
//
//   - metric families appear in ascending order of their dotted
//     registration name (bytewise, i.e. sort.Strings);
//   - each family renders an optional "# HELP" line (only when help text
//     was registered), then "# TYPE", then its sample lines;
//   - dotted names are sanitized to the Prometheus charset by replacing
//     every character outside [a-zA-Z0-9_:] with '_' (explore.trials →
//     explore_trials);
//   - values are rendered with %g, +Inf as "+Inf";
//   - histograms emit cumulative "_bucket{le="..."}" lines in ascending
//     bound order, a final le="+Inf" bucket, then "_sum" and "_count".
//
// Identical registry contents therefore always produce byte-identical
// output; tools may diff expositions directly. Programs that only need
// values should use Snapshot instead of parsing this text.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		name, help string
		m          interface{}
	}
	entries := make([]entry, 0, len(names))
	for _, n := range names {
		entries = append(entries, entry{n, r.help[n], r.metrics[n]})
	}
	r.mu.Unlock()

	for _, e := range entries {
		pn := promName(e.name)
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, e.help); err != nil {
				return err
			}
		}
		switch m := e.m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", pn, pn, promFloat(m.Value())); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			m.mu.Lock()
			ubs := append([]float64(nil), m.buckets...)
			counts := append([]uint64(nil), m.counts...)
			inf, sum, n := m.inf, m.sum, m.n
			m.mu.Unlock()
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			cum := uint64(0)
			for i, ub := range ubs {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(ub), cum); err != nil {
					return err
				}
			}
			cum += inf
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				pn, cum, pn, promFloat(sum), pn, n); err != nil {
				return err
			}
		}
	}
	return nil
}
