package obs

// KernelSample is the analyzer-facing copy of one simulated kernel
// execution. It carries, besides the observable interval, the exact
// operands of the simulator's start-time rule
//
//	StartUs = max(LaunchUs, FreeUs, WaitUs)
//
// so a trace analyzer can reconstruct — with zero tolerance, since the
// clock is simulated and the values are exact float copies — which
// constraint bound each kernel: CPU dispatch (LaunchUs), the stream FIFO
// (FreeUs), or a cross-stream event wait (WaitUs, with WaitStream/WaitTag
// naming the source stream and the dispatcher's reason for the wait).
type KernelSample struct {
	Name     string  `json:"name"`
	Stream   int     `json:"stream"`
	LaunchUs float64 `json:"launch_us"`
	StartUs  float64 `json:"start_us"`
	EndUs    float64 `json:"end_us"`
	SMTimeUs float64 `json:"sm_time_us"`
	FreeUs   float64 `json:"free_us"`
	WaitUs   float64 `json:"wait_us"`
	// WaitStream is -1 when no event wait constrained the kernel.
	WaitStream int    `json:"wait_stream"`
	WaitTag    string `json:"wait_tag,omitempty"`
}

// DurationUs returns the kernel's device-side duration.
func (k *KernelSample) DurationUs() float64 { return k.EndUs - k.StartUs }

// BatchProfile is one device's complete kernel timeline for one mini-batch,
// in launch order. Multi-GPU sessions attach one per worker. This is the
// substrate of the internal/analyze dependency graph (and of the planned
// what-if replayer): everything the analyzer computes derives from these
// samples plus the batch envelope below.
type BatchProfile struct {
	// Worker is the data-parallel rank (0 for single-GPU sessions).
	Worker int `json:"worker"`
	// Streams is the number of device streams the batch used.
	Streams int `json:"streams"`
	// CommStream is the stream carrying gradient all-reduce kernels, -1
	// when the batch had no communication.
	CommStream int `json:"comm_stream"`
	// CPUUs is the dispatcher's CPU clock at batch end; EndUs the device
	// clock (max kernel EndUs, or CPUUs for a CPU-bound batch). The
	// worker's batch wall time is max(CPUUs, EndUs).
	CPUUs float64 `json:"cpu_us"`
	EndUs float64 `json:"end_us"`
	// NumSMs and SMBusyUs give device occupancy: SMBusyUs is the integral
	// of occupied SMs over device time.
	NumSMs   int     `json:"num_sms"`
	SMBusyUs float64 `json:"sm_busy_us"`
	// Kernels is every kernel the batch launched, in launch order.
	Kernels []KernelSample `json:"kernels"`
}

// WallUs returns the worker's batch wall time: the later of CPU dispatch
// completing and the device draining.
func (p *BatchProfile) WallUs() float64 {
	if p.CPUUs > p.EndUs {
		return p.CPUUs
	}
	return p.EndUs
}
