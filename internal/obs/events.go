package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TrialEvent is one structured record of the session event log: exactly one
// per mini-batch, whether an exploration trial or a wired batch. It is the
// machine-readable form of Table 7's convergence data — what the explorer
// tried, what it measured, and what the batch cost.
type TrialEvent struct {
	// Batch is the 1-based mini-batch number within the session.
	Batch int `json:"batch"`
	// Trial is the 1-based exploration trial number; for wired batches it
	// holds the final trial count.
	Trial int `json:"trial"`
	// Phase is "explore" while the explorer is active, "wired" afterwards.
	Phase string `json:"phase"`
	// StartUs is the batch's start on the session-wide simulated clock.
	StartUs float64 `json:"start_us"`
	// BatchUs is the simulated duration of the mini-batch.
	BatchUs float64 `json:"batch_us"`
	// Kernels and Events count kernel launches and cudaEvent operations.
	Kernels int `json:"kernels"`
	Events  int `json:"events"`
	// ProfOverheadUs is the CPU cost of profiling-only events (§6.4).
	ProfOverheadUs float64 `json:"profiling_overhead_us"`
	// HitRate is the profile index hit rate after the batch.
	HitRate float64 `json:"profile_hit_rate"`
	// FrozenVars/TotalVars track exploration convergence.
	FrozenVars int `json:"frozen_vars"`
	TotalVars  int `json:"total_vars"`
	// Bindings maps adaptive-variable IDs to the choice labels this batch
	// ran with (captured before the explorer advanced).
	Bindings map[string]string `json:"bindings,omitempty"`
	// Metrics holds the per-variable profiled values fed to the explorer.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Drift marks the wired batch on which the drift watchdog fired and
	// thawed the explorer back into exploration.
	Drift bool `json:"drift,omitempty"`
	// Workers is the data-parallel worker count of a multi-GPU session
	// (omitted for single-GPU sessions), CommUs the link-busy time of the
	// batch's gradient exchange, and WorkerUs the per-worker batch times
	// whose max is BatchUs.
	Workers  int       `json:"workers,omitempty"`
	CommUs   float64   `json:"comm_us,omitempty"`
	WorkerUs []float64 `json:"worker_us,omitempty"`
	// VerifyFindings lists plan-verifier findings first surfaced by this
	// batch's configuration (rendered one per line); empty when the
	// binding verified clean or was already checked.
	VerifyFindings []string `json:"verify_findings,omitempty"`
	// Fabric names the interconnect of a multi-GPU session ("pcie3",
	// "nvlink1"); empty for single-GPU sessions.
	Fabric string `json:"fabric,omitempty"`
	// Froze lists the adaptive-variable IDs the explorer froze during this
	// batch, sorted; Reexplorations counts watchdog-triggered re-explore
	// rounds completed so far. Together with FrozenVars/TotalVars these
	// drive the analyzer's convergence report.
	Froze          []string `json:"froze,omitempty"`
	Reexplorations int      `json:"reexplorations,omitempty"`
	// Cost-model prior quality, cumulative as of this batch (all zero when
	// the session ran without a prior): PriorHits counts freezes whose
	// measured best was the prior's top-ranked candidate, PriorMisses the
	// rest, PriorPruned candidates skipped unmeasured, and PriorRankInv the
	// summed rank positions of measured bests on misses (0 = perfect
	// ranking). See docs/COSTMODEL.md.
	PriorHits    int `json:"prior_hits,omitempty"`
	PriorMisses  int `json:"prior_misses,omitempty"`
	PriorPruned  int `json:"prior_pruned,omitempty"`
	PriorRankInv int `json:"prior_rank_inversions,omitempty"`
	// Profiles carries the full per-worker kernel timelines of the batch
	// (one BatchProfile per data-parallel rank). This is what
	// internal/analyze consumes to rebuild the dependency graph, so the
	// record is self-contained: an event log alone suffices to answer
	// "where did this batch's time go".
	Profiles []BatchProfile `json:"profiles,omitempty"`

	// Session-construction metadata, stamped on every record by the wire
	// session: enough for a what-if scenario checker (astra-whatif -check)
	// to rebuild an equivalent session from the event log alone and
	// re-simulate perturbed configurations for ground truth. Model names
	// the zoo model, ModelScale how it was sized ("default", "tiny", or
	// "custom" for hand-built configs the log cannot reconstruct), and
	// PerDeviceBatch the per-worker mini-batch size.
	Model          string `json:"model,omitempty"`
	ModelScale     string `json:"model_scale,omitempty"`
	PerDeviceBatch int    `json:"per_device_batch,omitempty"`
	// Preset is the enumerate preset the plan was built with (empty for
	// hand-assembled Options), and NumStreams the effective stream count.
	Preset     string `json:"preset,omitempty"`
	NumStreams int    `json:"num_streams,omitempty"`
	// Seed, PerOpCPUUs, LaunchOverheadUs and KernelSetupUs pin the cost
	// constants the run simulated under.
	Seed             uint64  `json:"seed,omitempty"`
	PerOpCPUUs       float64 `json:"per_op_cpu_us,omitempty"`
	LaunchOverheadUs float64 `json:"launch_overhead_us,omitempty"`
	KernelSetupUs    float64 `json:"kernel_setup_us,omitempty"`
	// Noisy marks sessions with autoboost jitter or fault injection on;
	// their timings are seed-path dependent and cannot be re-simulated
	// from the log alone.
	Noisy bool `json:"noisy,omitempty"`
}

// EventLog writes TrialEvents as JSON Lines. The zero sink is valid: Emit
// is a no-op until SetSink attaches a writer, so instrumented code never
// needs to branch on whether an event log was requested.
type EventLog struct {
	mu    sync.Mutex
	enc   *json.Encoder
	count int
}

// NewEventLog returns a log writing to w (nil for a disabled log).
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{}
	l.SetSink(w)
	return l
}

// SetSink attaches (or detaches, with nil) the output writer.
func (l *EventLog) SetSink(w io.Writer) {
	l.mu.Lock()
	if w == nil {
		l.enc = nil
	} else {
		l.enc = json.NewEncoder(w)
	}
	l.mu.Unlock()
}

// Enabled reports whether a sink is attached.
func (l *EventLog) Enabled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc != nil
}

// Emit appends one record. Without a sink it is a no-op.
func (l *EventLog) Emit(ev TrialEvent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.enc == nil {
		return nil
	}
	l.count++
	return l.enc.Encode(&ev)
}

// Count returns the number of records emitted to the current sink.
func (l *EventLog) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// ReadTrialEvents parses a JSONL event log back into records — the other
// half of the round trip tests rely on.
func ReadTrialEvents(r io.Reader) ([]TrialEvent, error) {
	var out []TrialEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev TrialEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: event log: %w", err)
	}
	return out, nil
}
