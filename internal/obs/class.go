package obs

import "strings"

// Kernel classes. Classes partition kernel names by the library conventions
// of internal/kernels and internal/wire; they are defined here — below both
// the simulator and the analyzer — so fault injection (gpusim), blame
// attribution (analyze) and cost perturbation (whatif) all agree on what
// "the gemm class" means.
const (
	ClassGEMM      = "gemm"
	ClassEW        = "ew"
	ClassCopy      = "copy"
	ClassAllReduce = "allreduce"
	ClassOther     = "other"
)

// KernelClasses lists every kernel class, sorted — the valid-value list CLI
// flag validation prints.
func KernelClasses() []string {
	return []string{ClassAllReduce, ClassCopy, ClassEW, ClassGEMM, ClassOther}
}

// KernelClass returns the class of a kernel name. Matching is by the
// launch-name conventions ("gemm_*", "ew_*", "copy*", "allreduce.*"); names
// outside them are ClassOther.
//
//astra:hotpath
func KernelClass(name string) string {
	switch {
	case strings.HasPrefix(name, "allreduce."):
		return ClassAllReduce
	case strings.HasPrefix(name, "gemm_"):
		return ClassGEMM
	case strings.HasPrefix(name, "ew_"):
		return ClassEW
	case strings.HasPrefix(name, "copy"):
		return ClassCopy
	default:
		return ClassOther
	}
}
