package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("explore.trials", "exploration mini-batches")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %v", c.Value())
	}
	if r.Counter("explore.trials", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("profile.hit_rate", "")
	g.Set(0.75)
	g.Add(-0.25)
	if g.Value() != 0.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("batch.total_us", "", 10, 100, 1000)
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5555 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestCounterDecrementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter decrement")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("explore.trials", "exploration mini-batches").Add(42)
	r.Gauge("profile.hit_rate", "").Set(0.9)
	h := r.Histogram("batch.total_us", "batch time", 10, 100)
	h.Observe(7)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP explore_trials exploration mini-batches",
		"# TYPE explore_trials counter",
		"explore_trials 42",
		"# TYPE profile_hit_rate gauge",
		"profile_hit_rate 0.9",
		"# TYPE batch_total_us histogram",
		`batch_total_us_bucket{le="10"} 1`,
		`batch_total_us_bucket{le="100"} 2`,
		`batch_total_us_bucket{le="+Inf"} 3`,
		"batch_total_us_sum 5057",
		"batch_total_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Dotted names must be sanitized everywhere.
	if strings.Contains(out, "explore.trials") {
		t.Fatalf("unsanitized name in exposition:\n%s", out)
	}
	// Deterministic output: names sorted.
	if strings.Index(out, "batch_total_us") > strings.Index(out, "explore_trials") {
		t.Fatal("exposition not sorted by name")
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName(PIDDevice, "device")
	tr.SetProcessName(PIDDispatch, "cpu dispatch")
	tr.SetThreadName(PIDDevice, 0, "stream 0")
	tr.AddSpan(PIDDevice, 0, "gemm", "kernel", 10, 5, nil)
	tr.AddSpan(PIDDispatch, TIDBatches, "trial 1", "trial", 0, 20, map[string]interface{}{"v": "a"})
	tr.AddCounter(PIDExplore, "explore.trials", 20, map[string]float64{"trials": 1})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	var meta, spans, counters int
	for _, e := range trace.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
		case "X":
			spans++
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if meta < 3 || spans != 2 || counters != 1 {
		t.Fatalf("meta=%d spans=%d counters=%d", meta, spans, counters)
	}
	// Metadata first, then data events sorted by ts.
	lastMeta := -1
	firstData := len(trace.TraceEvents)
	prevTs := -1.0
	for i, e := range trace.TraceEvents {
		if e.Phase == "M" {
			lastMeta = i
			continue
		}
		if i < firstData {
			firstData = i
		}
		if e.TimeUs < prevTs {
			t.Fatal("data events not sorted by ts")
		}
		prevTs = e.TimeUs
	}
	if lastMeta > firstData {
		t.Fatal("metadata events interleaved with data events")
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	events := []TrialEvent{
		{Batch: 1, Trial: 1, Phase: "explore", BatchUs: 100,
			Bindings: map[string]string{"g0.chunk": "2"},
			Metrics:  map[string]float64{"g0.chunk": 42.5}},
		{Batch: 2, Trial: 2, Phase: "explore", StartUs: 100, BatchUs: 90},
		{Batch: 3, Trial: 2, Phase: "wired", StartUs: 190, BatchUs: 80},
	}
	for _, ev := range events {
		if err := l.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 3 {
		t.Fatalf("Count = %d", l.Count())
	}
	got, err := ReadTrialEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, wrote %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Phase != events[i].Phase || got[i].Batch != events[i].Batch ||
			got[i].BatchUs != events[i].BatchUs {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
	if got[0].Bindings["g0.chunk"] != "2" || got[0].Metrics["g0.chunk"] != 42.5 {
		t.Fatalf("bindings/metrics lost: %+v", got[0])
	}
}

func TestEventLogDisabled(t *testing.T) {
	l := NewEventLog(nil)
	if l.Enabled() {
		t.Fatal("nil-sink log reports enabled")
	}
	if err := l.Emit(TrialEvent{Batch: 1}); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 {
		t.Fatal("disabled log counted an emit")
	}
}

func TestReadTrialEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadTrialEvents(strings.NewReader("{\"batch\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestTelemetryConcurrency exercises the whole hot path from concurrent
// goroutines; `make race` turns this into the race-cleanliness gate the
// future multi-stream dispatcher depends on.
func TestTelemetryConcurrency(t *testing.T) {
	tel := NewTelemetry()
	tel.SetEventSink(&bytes.Buffer{})
	c := tel.Metrics.Counter("explore.trials", "")
	g := tel.Metrics.Gauge("profile.hit_rate", "")
	h := tel.Metrics.Histogram("batch.total_us", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j))
				tel.Trace.AddSpan(PIDDevice, id, "k", "kernel", float64(j), 1, nil)
				tel.Trace.AddCounter(PIDExplore, "explore.trials", float64(j), map[string]float64{"n": float64(j)})
				tel.Trace.SetThreadName(PIDDevice, id, "stream")
				_ = tel.Events.Emit(TrialEvent{Batch: j, Trial: id})
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %v", c.Value())
	}
	if tel.Trace.Len() != 3200 {
		t.Fatalf("trace events = %d", tel.Trace.Len())
	}
	if tel.Events.Count() != 1600 {
		t.Fatalf("event log count = %d", tel.Events.Count())
	}
	var buf bytes.Buffer
	if err := tel.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tel.Metrics.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
}
