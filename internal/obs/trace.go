package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Track process IDs: the fixed pid layout of a session trace. Each pid is
// one Perfetto process group; tids within it are tracks.
const (
	// PIDDevice holds the simulated device's kernel executions, one track
	// per CUDA stream.
	PIDDevice = 0
	// PIDQueue holds launch-to-start "queued" intervals, one track per
	// stream, making launch-overhead-bound schedules visually obvious.
	PIDQueue = 1
	// PIDDispatch is the CPU dispatch timeline: the session/trial hierarchy
	// on tid 0 and the custom-wirer's per-unit dispatch spans on tid 1.
	PIDDispatch = 2
	// PIDExplore carries the exploration counter tracks (trials, frozen
	// variables, batch time, profile hit rate).
	PIDExplore = 3
)

// Dispatch-timeline thread IDs.
const (
	// TIDBatches is the session → trial span track.
	TIDBatches = 0
	// TIDWirer is the custom-wirer's fusion-group dispatch track.
	TIDWirer = 1
)

// PIDStride is the pid-space block one simulated worker occupies: worker w
// of a multi-GPU session uses pids [w·PIDStride, (w+1)·PIDStride), so every
// worker gets its own device / launch-queue process groups in the trace.
const PIDStride = 4

// WorkerPID shifts one of the base pids above into worker w's pid block.
// Worker 0 keeps the base layout, so single-GPU traces are unchanged.
func WorkerPID(base, worker int) int { return base + worker*PIDStride }

// TraceEvent is one event in the Chrome trace-event format. Phases used
// here: "X" (complete span), "C" (counter), "M" (metadata).
type TraceEvent struct {
	Name     string                 `json:"name"`
	Category string                 `json:"cat,omitempty"`
	Phase    string                 `json:"ph"`
	TimeUs   float64                `json:"ts"`
	DurUs    float64                `json:"dur,omitempty"`
	PID      int                    `json:"pid"`
	TID      int                    `json:"tid"`
	Args     map[string]interface{} `json:"args,omitempty"`
}

// ChromeTrace is the object form of the trace-event file: Perfetto reads
// the metadata events into named tracks, and displayTimeUnit controls the
// default zoom unit.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

type trackKey struct{ pid, tid int }

// Tracer accumulates spans and counter samples on the simulated session
// clock. All methods are safe for concurrent use.
type Tracer struct {
	mu        sync.Mutex
	events    []TraceEvent
	processes map[int]string
	threads   map[trackKey]string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{processes: map[int]string{}, threads: map[trackKey]string{}}
}

// SetProcessName names a pid's track group (idempotent).
func (t *Tracer) SetProcessName(pid int, name string) {
	t.mu.Lock()
	t.processes[pid] = name
	t.mu.Unlock()
}

// SetThreadName names one track within a pid (idempotent).
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.mu.Lock()
	t.threads[trackKey{pid, tid}] = name
	t.mu.Unlock()
}

// AddSpan records a complete-duration span.
func (t *Tracer) AddSpan(pid, tid int, name, cat string, startUs, durUs float64, args map[string]interface{}) {
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Category: cat, Phase: "X",
		TimeUs: startUs, DurUs: durUs, PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// AddCounter records a counter sample; Perfetto renders one counter track
// per (pid, name), with one series per key in values.
func (t *Tracer) AddCounter(pid int, name string, tsUs float64, values map[string]float64) {
	args := make(map[string]interface{}, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "C", TimeUs: tsUs, PID: pid, Args: args,
	})
	t.mu.Unlock()
}

// Len returns the number of data events recorded (metadata excluded).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded data events, in insertion order.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteChromeTrace writes the {"traceEvents": [...]} object form: "M"
// metadata events naming every process and thread first, then the data
// events sorted by timestamp. The output loads in Perfetto / chrome://tracing
// with labeled tracks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	out := make([]TraceEvent, 0, len(t.events)+len(t.processes)+len(t.threads))
	pids := make([]int, 0, len(t.processes))
	for pid := range t.processes {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out = append(out, TraceEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]interface{}{"name": t.processes[pid]},
		})
		// process_sort_index keeps the track groups in pid order.
		out = append(out, TraceEvent{
			Name: "process_sort_index", Phase: "M", PID: pid,
			Args: map[string]interface{}{"sort_index": pid},
		})
	}
	tracks := make([]trackKey, 0, len(t.threads))
	for k := range t.threads {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, k := range tracks {
		out = append(out, TraceEvent{
			Name: "thread_name", Phase: "M", PID: k.pid, TID: k.tid,
			Args: map[string]interface{}{"name": t.threads[k]},
		})
	}
	data := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()

	sort.SliceStable(data, func(i, j int) bool { return data[i].TimeUs < data[j].TimeUs })
	out = append(out, data...)
	enc := json.NewEncoder(w)
	if err := enc.Encode(ChromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: trace export: %w", err)
	}
	return nil
}
