package obs

import "io"

// Telemetry bundles the three surfaces one session reports into: the
// multi-track trace, the metrics registry and the JSONL event log. A single
// bundle is shared by the custom-wirer, the explorer, the profile index and
// the device export, so one exploration session produces one coherent view.
type Telemetry struct {
	Trace   *Tracer
	Metrics *Registry
	Events  *EventLog
}

// NewTelemetry returns a bundle with tracing and metrics active and the
// event log disabled until SetEventSink attaches a writer.
func NewTelemetry() *Telemetry {
	return &Telemetry{Trace: NewTracer(), Metrics: NewRegistry(), Events: NewEventLog(nil)}
}

// SetEventSink enables the JSONL event log, writing to w.
func (t *Telemetry) SetEventSink(w io.Writer) { t.Events.SetSink(w) }
