package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestEventLogRoundTripProfiles round-trips a record carrying the full
// analyzer payload — per-worker kernel profiles, freeze lists, fabric —
// and requires exact equality, since analyze depends on the float operands
// surviving JSON unchanged.
func TestEventLogRoundTripProfiles(t *testing.T) {
	ev := TrialEvent{
		Batch: 7, Trial: 5, Phase: "wired",
		StartUs: 1234.5, BatchUs: 321.25,
		Kernels: 3, Events: 6,
		FrozenVars: 2, TotalVars: 2,
		Workers: 2, CommUs: 55.5, WorkerUs: []float64{320, 321.25},
		Fabric:         "pcie3",
		Froze:          []string{"g0.chunk", "g1.fuse"},
		Reexplorations: 1,
		Profiles: []BatchProfile{
			{
				Worker: 0, Streams: 2, CommStream: 1,
				CPUUs: 40.5, EndUs: 320, NumSMs: 56, SMBusyUs: 1000,
				Kernels: []KernelSample{
					{Name: "gemm_a_128", Stream: 0, LaunchUs: 5, StartUs: 5,
						EndUs: 105, SMTimeUs: 560, FreeUs: 0, WaitUs: 0, WaitStream: -1},
					{Name: "allreduce.b0.s0", Stream: 1, LaunchUs: 6, StartUs: 105,
						EndUs: 205, SMTimeUs: 0, FreeUs: 0, WaitUs: 105,
						WaitStream: 0, WaitTag: "bucket"},
				},
			},
			{Worker: 1, Streams: 1, CommStream: -1, CPUUs: 41, EndUs: 321.25,
				NumSMs: 56, SMBusyUs: 999, Kernels: []KernelSample{}},
		},
	}
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	if err := l.Emit(ev); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrialEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d events", len(got))
	}
	if !reflect.DeepEqual(got[0], ev) {
		t.Fatalf("round trip changed the event:\n got %+v\nwant %+v", got[0], ev)
	}
	if s := &got[0].Profiles[0].Kernels[1]; s.DurationUs() != 100 {
		t.Fatalf("sample duration = %v", s.DurationUs())
	}
	if w := got[0].Profiles[0].WallUs(); w != 320 {
		t.Fatalf("worker 0 wall = %v", w)
	}
}

func TestReadTrialEventsMalformedLines(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"truncated object", `{"batch":1,"trial"`},
		{"wrong field type", `{"batch":"seven"}`},
		{"bare word", "wired\n"},
		{"bad line after good", "{\"batch\":1}\n{\"batch\":2}\n[1,2\n"},
		{"bad profile payload", `{"batch":1,"profiles":[{"worker":"zero"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTrialEvents(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
	// The error must name the offending line so a corrupt multi-gigabyte
	// log is debuggable.
	_, err := ReadTrialEvents(strings.NewReader("{\"batch\":1}\n\n{\"batch\":2}\nnope\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error does not locate the bad line: %v", err)
	}
	// Blank lines are tolerated, not records.
	got, err := ReadTrialEvents(strings.NewReader("\n{\"batch\":1}\n\n{\"batch\":2}\n\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("blank-line log: %d events, err %v", len(got), err)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("explore.trials", "").Add(9)
	r.Gauge("profile.hit_rate", "").Set(0.75)
	h := r.Histogram("batch.total_us", "")
	h.Observe(100)
	h.Observe(300)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	if v := snap["explore.trials"]; v.Kind != "counter" || v.Value != 9 {
		t.Fatalf("counter snapshot %+v", v)
	}
	if v := snap["profile.hit_rate"]; v.Kind != "gauge" || v.Value != 0.75 {
		t.Fatalf("gauge snapshot %+v", v)
	}
	if v := snap["batch.total_us"]; v.Kind != "histogram" || v.Value != 400 || v.Count != 2 {
		t.Fatalf("histogram snapshot %+v", v)
	}
	// A snapshot is a copy: later mutation must not leak in.
	r.Counter("explore.trials", "").Inc()
	if snap["explore.trials"].Value != 9 {
		t.Fatal("snapshot aliases live metrics")
	}
}

// TestWritePromStableContract pins the documented exposition contract:
// families sorted by dotted registration name regardless of registration
// order, and byte-identical output for identical contents.
func TestWritePromStableContract(t *testing.T) {
	render := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n, "").Add(1)
		}
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render([]string{"zeta.last", "analyze.critical_path_us", "batch.total_us"})
	b := render([]string{"batch.total_us", "zeta.last", "analyze.critical_path_us"})
	if a != b {
		t.Fatalf("registration order changed exposition:\n%s\nvs\n%s", a, b)
	}
	za := strings.Index(a, "zeta_last")
	ba := strings.Index(a, "batch_total_us")
	aa := strings.Index(a, "analyze_critical_path_us")
	if !(aa < ba && ba < za) {
		t.Fatalf("families not sorted by name:\n%s", a)
	}
}
