// Session-backed property tests. These live in package analyze_test (not
// analyze) because they drive real wire.Sessions, and internal/wire imports
// internal/analyze — an in-package test would be an import cycle.
package analyze_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"astra/internal/analyze"
	"astra/internal/costmodel"
	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/wire"
)

// runEvents explores a session to convergence, runs wiredBatches more
// batches, and returns the session plus its parsed event log.
func runEvents(t *testing.T, model, fabric string, workers, wiredBatches int,
	mod func(*wire.SessionConfig)) (*wire.Session, []obs.TrialEvent) {
	t.Helper()
	build, ok := models.Get(model)
	if !ok {
		t.Fatalf("model %q", model)
	}
	m := build(models.TinyConfig(model, 2))
	cfg := wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetAll),
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
	}
	if workers > 1 {
		ic, ok := distsim.FabricByName(fabric)
		if !ok {
			t.Fatalf("fabric %q", fabric)
		}
		opts := enumerate.PresetOptions(enumerate.PresetFK)
		opts.CommAdapt = true
		opts.Workers = workers
		cfg.Options = opts
		cfg.Comm = wire.CommConfig{
			Workers:    workers,
			BytesPerUs: ic.BytesPerUs,
			LatencyUs:  ic.LatencyUs,
			Fabric:     ic.Name,
		}
	}
	if mod != nil {
		mod(&cfg)
	}
	s := wire.NewSession(m, cfg)
	tel := obs.NewTelemetry()
	var sink bytes.Buffer
	tel.SetEventSink(&sink)
	s.Instrument(tel)
	s.Explore()
	for i := 0; i < wiredBatches; i++ {
		s.Step()
	}
	events, err := obs.ReadTrialEvents(&sink)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("session emitted no events")
	}
	return s, events
}

// TestExactReconciliationProperty is the tentpole guarantee, exercised
// across models × fabrics × worker counts on real sessions: every batch's
// critical path chains exactly from 0 to the batch wall time, and every
// worker×stream timeline partitions [0, wall] with no gaps and no overlaps
// — all comparisons exact, zero tolerance.
func TestExactReconciliationProperty(t *testing.T) {
	cases := []struct {
		model   string
		fabric  string
		workers int
	}{
		{"sublstm", "", 1},
		{"scrnn", "", 1},
		{"stackedlstm", "", 1},
		{"sublstm", "pcie3", 2},
		{"sublstm", "nvlink1", 2},
		{"scrnn", "pcie3", 3},
	}
	for _, tc := range cases {
		tc := tc
		name := tc.model + "/" + tc.fabric
		if tc.fabric == "" {
			name = tc.model + "/local"
		}
		t.Run(name, func(t *testing.T) {
			_, events := runEvents(t, tc.model, tc.fabric, tc.workers, 3, nil)
			run, err := analyze.AnalyzeRun(events, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Batches) == 0 {
				t.Fatal("no profile-bearing batches analyzed")
			}
			if err := analyze.Verify(run); err != nil {
				t.Fatal(err)
			}
			for _, ba := range run.Batches {
				if ba.Workers != tc.workers {
					t.Fatalf("batch %d analyzed %d workers, want %d", ba.Batch, ba.Workers, tc.workers)
				}
			}
			if tc.workers > 1 {
				if run.Fabric != tc.fabric {
					t.Fatalf("run fabric %q, want %q", run.Fabric, tc.fabric)
				}
				if run.Workers != tc.workers {
					t.Fatalf("run workers %d, want %d", run.Workers, tc.workers)
				}
				// A multi-worker run must see communication kernels and
				// account for any exposed time in its taxonomy.
				comm := 0.0
				for _, ba := range run.Batches {
					comm += ba.Overlap.CommBusyUs
				}
				if comm == 0 {
					t.Fatal("no communication kernels recorded")
				}
			}
		})
	}
}

// TestAnalyzeParallelDeterminism: the analyzer's output must be
// byte-identical no matter how many goroutines it shards batches over.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	_, events := runEvents(t, "sublstm", "pcie3", 2, 4, nil)
	run1, err := analyze.AnalyzeRun(events, 1)
	if err != nil {
		t.Fatal(err)
	}
	run4, err := analyze.AnalyzeRun(events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run1.Batches, run4.Batches) {
		t.Fatal("per-batch analyses differ across analyzer worker counts")
	}
	j1, err := json.MarshalIndent(run1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	j4, err := json.MarshalIndent(run4, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatal("JSON output differs across analyzer worker counts")
	}
	renders := []func(*analyze.Run) ([]byte, error){
		func(r *analyze.Run) ([]byte, error) {
			var b bytes.Buffer
			err := analyze.WritePathReport(&b, r)
			return b.Bytes(), err
		},
		func(r *analyze.Run) ([]byte, error) {
			var b bytes.Buffer
			err := analyze.WriteUtilReport(&b, r)
			return b.Bytes(), err
		},
		func(r *analyze.Run) ([]byte, error) {
			var b bytes.Buffer
			err := analyze.WriteOverlapReport(&b, r)
			return b.Bytes(), err
		},
		func(r *analyze.Run) ([]byte, error) {
			var b bytes.Buffer
			err := analyze.WriteConvergeReport(&b, r)
			return b.Bytes(), err
		},
	}
	for i, render := range renders {
		b1, err := render(run1)
		if err != nil {
			t.Fatal(err)
		}
		b4, err := render(run4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b4) {
			t.Fatalf("report %d differs across analyzer worker counts", i)
		}
	}
}

// TestConvergeReportMatchesSession cross-checks the convergence analytics
// against the session's own ground truth.
func TestConvergeReportMatchesSession(t *testing.T) {
	s, events := runEvents(t, "sublstm", "", 1, 5, nil)
	run, err := analyze.AnalyzeRun(events, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := run.Converge
	if c.Trials != s.Trials {
		t.Fatalf("converge trials %d, session ran %d", c.Trials, s.Trials)
	}
	if c.TotalVars != len(s.Exp.Vars()) {
		t.Fatalf("converge vars %d, explorer has %d", c.TotalVars, len(s.Exp.Vars()))
	}
	if c.TrialsToFreeze <= 0 || c.TrialsToFreeze > s.Trials {
		t.Fatalf("trials-to-freeze %d outside (0, %d]", c.TrialsToFreeze, s.Trials)
	}
	if c.WiredBatches != 5 {
		t.Fatalf("wired batches %d, want 5", c.WiredBatches)
	}
	if c.Reexplorations != s.Exp.Reexplorations() {
		t.Fatalf("reexplorations %d, explorer reports %d", c.Reexplorations, s.Exp.Reexplorations())
	}
	// Every adaptive variable must appear in the freeze timeline exactly
	// once (no thaws in this run).
	seen := map[string]int{}
	for _, f := range c.Freezes {
		seen[f.VarID]++
		if f.Trial <= 0 || f.Trial > c.TrialsToFreeze {
			t.Fatalf("freeze %+v outside exploration window", f)
		}
	}
	if len(seen) != c.TotalVars {
		t.Fatalf("freeze timeline names %d vars, want %d", len(seen), c.TotalVars)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("var %s froze %d times", id, n)
		}
	}
	// The regret curve covers every trial and sums to CumRegretUs by
	// construction; best wired time must lower-bound the mean.
	if len(c.Regret) != c.Trials {
		t.Fatalf("regret curve has %d points over %d trials", len(c.Regret), c.Trials)
	}
	if c.BestWiredUs <= 0 || c.BestWiredUs > c.MeanWiredUs {
		t.Fatalf("best wired %v vs mean %v", c.BestWiredUs, c.MeanWiredUs)
	}
	for _, p := range c.Regret {
		if p.RegretUs != p.BatchUs-c.BestWiredUs {
			t.Fatalf("regret point %+v inconsistent with best %v", p, c.BestWiredUs)
		}
	}
}

// TestConvergeReportCarriesPriorCounters closes the telemetry loop for
// cost-model-guided sessions: the explorer's PriorStats must arrive in the
// event log and land, exactly, in the converge report's prior counters.
func TestConvergeReportCarriesPriorCounters(t *testing.T) {
	model := costmodel.NewModel()
	s, events := runEvents(t, "sublstm", "", 1, 2, func(cfg *wire.SessionConfig) {
		// ModeFull with an initially-empty model: the session trains it
		// online, so later variables are planned from earlier measurements.
		cfg.Prior = costmodel.NewPlanner(model,
			costmodel.Meta{Model: "sublstm", Scale: "tiny", Batch: 2, Workers: 1},
			costmodel.PlannerConfig{Mode: costmodel.ModeFull})
	})
	ps := s.Exp.PriorStats()
	if ps.Hits+ps.Misses == 0 {
		t.Fatal("guided session scored no plans; the test exercises nothing")
	}
	run, err := analyze.AnalyzeRun(events, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := run.Converge
	if c.PriorHits != ps.Hits || c.PriorMisses != ps.Misses ||
		c.PriorPruned != ps.Pruned || c.PriorRankInversions != ps.RankInversions {
		t.Fatalf("converge prior counters %d/%d/%d/%d, session reports %d/%d/%d/%d",
			c.PriorHits, c.PriorMisses, c.PriorPruned, c.PriorRankInversions,
			ps.Hits, ps.Misses, ps.Pruned, ps.RankInversions)
	}
	if model.Updates() == 0 {
		t.Fatal("session did not train the attached cost model")
	}
}

// TestDiffAttributesThrottledClass is the acceptance criterion for diff
// mode: run A clean, run B identical except a 3× throttle applied only to
// GEMM kernels and only after exploration ends — so the two runs explore
// identically and diverge purely in wired-phase GEMM time. The diff must
// blame the gemm class for at least 90% of the aligned delta.
func TestDiffAttributesThrottledClass(t *testing.T) {
	// A wide model keeps batches GPU-bound so the GEMM throttle actually
	// moves wall time (a dispatch-bound tiny model would hide it).
	build, ok := models.Get("sublstm")
	if !ok {
		t.Fatal("model sublstm")
	}
	mcfg := models.Config{Batch: 16, SeqLen: 4, Hidden: 1024, Embed: 128,
		Vocab: 100, Embedding: true, Backward: true}
	session := func(faults gpusim.FaultConfig) (*wire.Session, *bytes.Buffer) {
		dev := gpusim.P100()
		dev.Faults = faults
		s := wire.NewSession(build(mcfg), wire.SessionConfig{
			Device:  dev,
			Options: enumerate.PresetOptions(enumerate.PresetAll),
			Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		})
		tel := obs.NewTelemetry()
		var sink bytes.Buffer
		tel.SetEventSink(&sink)
		s.Instrument(tel)
		return s, &sink
	}

	const wired = 4
	sa, sinkA := session(gpusim.FaultConfig{})
	trials := sa.Explore()
	for i := 0; i < wired; i++ {
		sa.Step()
	}
	// Device batches are 1-based; batch trials+1 is the first wired batch.
	sb, sinkB := session(gpusim.FaultConfig{
		ThrottleStartBatch: trials + 1,
		ThrottleBatches:    wired,
		ThrottleFactor:     3,
		ThrottleClass:      "gemm",
	})
	if got := sb.Explore(); got != trials {
		t.Fatalf("runs diverged during exploration: %d vs %d trials", got, trials)
	}
	for i := 0; i < wired; i++ {
		sb.Step()
	}

	analyzeLog := func(sink *bytes.Buffer) *analyze.Run {
		events, err := obs.ReadTrialEvents(sink)
		if err != nil {
			t.Fatal(err)
		}
		run, err := analyze.AnalyzeRun(events, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := analyze.Verify(run); err != nil {
			t.Fatal(err)
		}
		return run
	}
	ra, rb := analyzeLog(sinkA), analyzeLog(sinkB)
	d := analyze.Diff(ra, rb)
	if d.AlignedBatches != len(ra.Batches) {
		t.Fatalf("aligned %d of %d batches", d.AlignedBatches, len(ra.Batches))
	}
	if d.AlignedDeltaUs <= 0 {
		t.Fatalf("throttled run not slower: aligned delta %v", d.AlignedDeltaUs)
	}
	// Per-class deltas partition the aligned delta exactly (telescoped
	// sums, so the only float work is the subtraction per class).
	sum := 0.0
	for _, v := range d.ByClass {
		sum += v
	}
	if diff := sum - d.AlignedDeltaUs; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("class deltas sum to %v, aligned delta %v", sum, d.AlignedDeltaUs)
	}
	if d.TopClass != analyze.ClassGEMM {
		t.Fatalf("diff blamed %q, want %q (by_class=%v)", d.TopClass, analyze.ClassGEMM, d.ByClass)
	}
	if d.TopClassShare < 0.9 {
		t.Fatalf("gemm share %.3f < 0.90 (by_class=%v)", d.TopClassShare, d.ByClass)
	}
	var render bytes.Buffer
	if err := analyze.WriteDiffReport(&render, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(render.Bytes(), []byte("blame: gemm")) {
		t.Fatalf("diff report missing blame line:\n%s", render.String())
	}
}
