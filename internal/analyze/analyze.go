// Package analyze is Astra's trace-analytics engine: it ingests the
// structured event stream a session emits (obs.TrialEvent records carrying
// per-worker obs.BatchProfile kernel timelines) and answers the questions
// raw traces only gesture at — what bound each batch (critical path), where
// every idle microsecond went (utilization taxonomy), how well bucketed
// all-reduce overlapped compute, how exploration converged, and why one run
// was slower than another (diff blame).
//
// Everything is computed on the simulated clock, so every reconciliation is
// exact: the critical-path segments of a batch sum to the batch wall time
// with zero tolerance, and the per-stream taxonomy partitions each stream's
// timeline with no gaps and no overlaps. This works because the simulator
// records, for every kernel, the exact float operands of its start rule
//
//	StartUs = max(LaunchUs, FreeUs, WaitUs)
//
// so the analyzer can rebuild the binding constraint of each kernel by
// exact equality instead of tolerance windows (see obs.KernelSample).
//
// The per-batch dependency walk is the kernel-level dependency graph of a
// recorded run, in the spirit of Daydream's dependency-graph substrate —
// and the same walk is what a future astra-whatif replayer will mutate, so
// the core here (CriticalPath, StreamTimelines, interval unions) is kept
// free of reporting concerns.
package analyze

import (
	"fmt"
	"sort"

	"astra/internal/obs"
	"astra/internal/parallel"
)

// Kernel classes and segment kinds. The classing itself lives in obs
// (obs.KernelClass) so the simulator's fault injection and the what-if
// engine's cost perturbations attribute to exactly the same classes the
// blame reports use; the aliases keep this package's callers unchanged.
const (
	ClassGEMM      = obs.ClassGEMM
	ClassEW        = obs.ClassEW
	ClassCopy      = obs.ClassCopy
	ClassAllReduce = obs.ClassAllReduce
	ClassOther     = obs.ClassOther
	// ClassDispatch labels critical-path time spent on the serial CPU
	// dispatcher rather than any device kernel (analyzer-only: no kernel
	// name maps to it).
	ClassDispatch = "dispatch"
)

// Idle-gap taxonomy categories (see docs/OBSERVABILITY.md for the precise
// definitions). Busy device time is categorized separately by kernel class.
const (
	// IdleLaunchGap: the stream had drained and its next kernel had not
	// been issued by the CPU yet — dispatch-bound idleness.
	IdleLaunchGap = "launch_gap"
	// IdleEpochWait: waiting on the previous epoch's end events
	// (cross-stream ordering between epochs).
	IdleEpochWait = "epoch_wait"
	// IdleBarrierWait: waiting at a super-epoch barrier (including the
	// catch-up waits of a stream entering the schedule after a barrier).
	IdleBarrierWait = "barrier_wait"
	// IdleBucketStall: the comm stream waiting for a gradient bucket's
	// producing streams to finish.
	IdleBucketStall = "bucket_stall"
	// IdleExposedComm: compute (stream 0) waiting for the gradient
	// exchange to drain at batch end — communication not hidden by
	// compute.
	IdleExposedComm = "exposed_comm"
	// IdleSyncWait: an event wait the dispatcher did not label.
	IdleSyncWait = "sync_wait"
	// IdleDrain: the stream finished its work before the worker's batch
	// end and simply had nothing left to do.
	IdleDrain = "drain"
	// IdleStragglerWait: this worker finished before the cluster's slowest
	// worker (multi-GPU only).
	IdleStragglerWait = "straggler_wait"
)

// waitTagCategory maps a dispatcher wait tag (gpusim.WaitEventTag) to its
// taxonomy category.
func waitTagCategory(tag string) string {
	switch tag {
	case "epoch":
		return IdleEpochWait
	case "barrier":
		return IdleBarrierWait
	case "bucket":
		return IdleBucketStall
	case "commjoin":
		return IdleExposedComm
	default:
		return IdleSyncWait
	}
}

// Class returns the kernel class of a recorded kernel name (an alias of
// obs.KernelClass, kept for this package's callers).
func Class(name string) string { return obs.KernelClass(name) }

// Segment is one interval of a critical path or of a stream timeline.
// Critical-path segments chain contiguously from 0 to the batch wall time;
// timeline segments partition one stream's [0, horizon].
type Segment struct {
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
	// Kind is "busy" for kernel execution, ClassDispatch for CPU dispatch
	// time on the critical path, or an Idle* category.
	Kind string `json:"kind"`
	// Class is the kernel class for busy segments ("" otherwise).
	Class string `json:"class,omitempty"`
	// Name is the kernel name for busy segments ("" otherwise).
	Name string `json:"name,omitempty"`
	// Stream and Worker locate the segment (critical paths may hop
	// streams; timelines keep them fixed).
	Stream int `json:"stream"`
	Worker int `json:"worker"`
}

// DurUs returns the segment duration.
func (s *Segment) DurUs() float64 { return s.EndUs - s.StartUs }

// BatchAnalysis is everything the analyzer derives from one batch's
// profiles.
type BatchAnalysis struct {
	Batch   int     `json:"batch"`
	Trial   int     `json:"trial"`
	Phase   string  `json:"phase"`
	WallUs  float64 `json:"wall_us"`
	Workers int     `json:"workers"`
	// PathWorker is the rank whose device bound the batch (the slowest
	// worker); Path is its exact critical path, whose segments sum to
	// WallUs. PathBlame sums path time by kernel class (plus
	// ClassDispatch).
	PathWorker int                `json:"path_worker"`
	Path       []Segment          `json:"path"`
	PathBlame  map[string]float64 `json:"path_blame"`
	// Streams holds every worker×stream timeline partition of [0, WallUs].
	Streams []StreamTimeline `json:"streams"`
	// BusyUs sums device-busy time by kernel class and IdleUs idle time by
	// taxonomy category, across all workers and streams.
	BusyUs map[string]float64 `json:"busy_us"`
	IdleUs map[string]float64 `json:"idle_us"`
	// Overlap reports achieved vs ideal compute/communication overlap.
	Overlap OverlapStats `json:"overlap"`
}

// AnalyzeBatch analyzes one event's profiles. Events without profiles
// return nil (not every producer attaches kernel timelines).
func AnalyzeBatch(ev *obs.TrialEvent) (*BatchAnalysis, error) {
	if len(ev.Profiles) == 0 {
		return nil, nil
	}
	ba := &BatchAnalysis{
		Batch:   ev.Batch,
		Trial:   ev.Trial,
		Phase:   ev.Phase,
		Workers: len(ev.Profiles),
		BusyUs:  map[string]float64{},
		IdleUs:  map[string]float64{},
	}
	// The cluster wall time is the slowest worker's wall; the first such
	// rank (deterministic) carries the critical path.
	wall, pathWorker := 0.0, 0
	for i := range ev.Profiles {
		if w := ev.Profiles[i].WallUs(); w > wall {
			wall, pathWorker = w, i
		}
	}
	ba.WallUs = wall
	ba.PathWorker = ev.Profiles[pathWorker].Worker
	ba.Path = CriticalPath(&ev.Profiles[pathWorker])
	ba.PathBlame = blame(ba.Path)
	for i := range ev.Profiles {
		tls := StreamTimelines(&ev.Profiles[i], wall)
		ba.Streams = append(ba.Streams, tls...)
		for _, tl := range tls {
			for _, seg := range tl.Segments {
				if seg.Kind == "busy" {
					ba.BusyUs[seg.Class] += seg.DurUs()
				} else {
					ba.IdleUs[seg.Kind] += seg.DurUs()
				}
			}
		}
		acc := Overlap(&ev.Profiles[i])
		ba.Overlap.CommBusyUs += acc.CommBusyUs
		ba.Overlap.ComputeBusyUs += acc.ComputeBusyUs
		ba.Overlap.OverlapUs += acc.OverlapUs
		ba.Overlap.IdealUs += acc.IdealUs
	}
	ba.Overlap.finish()
	return ba, nil
}

// blame sums segment durations by class (busy segments) or kind (dispatch).
func blame(path []Segment) map[string]float64 {
	out := map[string]float64{}
	for _, seg := range path {
		key := seg.Class
		if seg.Kind != "busy" {
			key = seg.Kind
		}
		out[key] += seg.DurUs()
	}
	return out
}

// Run is one ingested event log plus its per-batch analyses.
type Run struct {
	// Events is every record of the log, in emission order.
	Events []obs.TrialEvent `json:"-"`
	// Batches holds the analyses of the profile-bearing events, in batch
	// order.
	Batches []*BatchAnalysis `json:"batches"`
	// Fabric and Workers describe the cluster (from the first event that
	// names them; empty/0 for single-GPU runs).
	Fabric  string `json:"fabric,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// TotalUs sums BatchUs over every event (the run's simulated time);
	// AnalyzedUs sums only the profile-bearing batches.
	TotalUs    float64 `json:"total_us"`
	AnalyzedUs float64 `json:"analyzed_us"`
	// PathBlame, BusyUs and IdleUs aggregate the per-batch maps over the
	// run in batch order.
	PathBlame map[string]float64 `json:"path_blame"`
	BusyUs    map[string]float64 `json:"busy_us"`
	IdleUs    map[string]float64 `json:"idle_us"`
	// Converge is the exploration-convergence report.
	Converge *ConvergeReport `json:"converge"`
}

// AnalyzeRun analyzes a whole event log. Batches are analyzed on up to
// `workers` goroutines (<1 means one per CPU); the merged result is
// byte-identical for any worker count because the per-batch analyses are
// independent and merged in batch order.
func AnalyzeRun(events []obs.TrialEvent, workers int) (*Run, error) {
	run := &Run{
		Events:    events,
		PathBlame: map[string]float64{},
		BusyUs:    map[string]float64{},
		IdleUs:    map[string]float64{},
	}
	analyses, err := parallel.Map(workers, len(events), func(i int) (*BatchAnalysis, error) {
		return AnalyzeBatch(&events[i])
	})
	if err != nil {
		return nil, err
	}
	for i := range events {
		ev := &events[i]
		run.TotalUs += ev.BatchUs
		if ev.Fabric != "" && run.Fabric == "" {
			run.Fabric = ev.Fabric
		}
		if ev.Workers > run.Workers {
			run.Workers = ev.Workers
		}
		ba := analyses[i]
		if ba == nil {
			continue
		}
		run.Batches = append(run.Batches, ba)
		run.AnalyzedUs += ba.WallUs
		addMap(run.PathBlame, ba.PathBlame)
		addMap(run.BusyUs, ba.BusyUs)
		addMap(run.IdleUs, ba.IdleUs)
	}
	run.Converge = convergeFromEvents(events)
	return run, nil
}

// addMap accumulates src into dst. Iteration order does not matter: each
// key's additions happen in the caller's (batch) order, and distinct keys
// are independent.
func addMap(dst, src map[string]float64) {
	for k, v := range src { // nodeterm:ok per-key accumulation is order-independent across keys
		dst[k] += v
	}
}

// sortedKeys returns the map's keys in sorted order — the iteration order
// every report emitter uses.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m { // nodeterm:ok keys are sorted before use
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Verify checks the analyzer's exactness guarantees over a run and returns
// the first violation: every batch's critical path must chain contiguously
// from 0 to the batch wall time (which must equal the event's BatchUs), and
// every stream timeline must partition [0, wall] with no gaps or overlaps.
// All comparisons are exact — the clock is simulated, so there is no
// tolerance to hide behind.
func Verify(run *Run) error {
	byBatch := map[int]*obs.TrialEvent{}
	for i := range run.Events {
		byBatch[run.Events[i].Batch] = &run.Events[i]
	}
	for _, ba := range run.Batches {
		ev := byBatch[ba.Batch]
		if ev == nil {
			return fmt.Errorf("analyze: batch %d has no event record", ba.Batch)
		}
		if ba.WallUs != ev.BatchUs {
			return fmt.Errorf("analyze: batch %d wall %v != event batch_us %v",
				ba.Batch, ba.WallUs, ev.BatchUs)
		}
		if err := verifyChain(ba.Path, ba.WallUs); err != nil {
			return fmt.Errorf("analyze: batch %d critical path: %w", ba.Batch, err)
		}
		if got := pathSumUs(ba.Path); got != ba.WallUs {
			return fmt.Errorf("analyze: batch %d path spans %v, wall %v", ba.Batch, got, ba.WallUs)
		}
		for _, tl := range ba.Streams {
			if err := verifyChain(tl.Segments, ba.WallUs); err != nil {
				return fmt.Errorf("analyze: batch %d worker %d stream %d: %w",
					ba.Batch, tl.Worker, tl.Stream, err)
			}
		}
	}
	return nil
}

// verifyChain checks that segments are contiguous, non-overlapping and
// cover exactly [0, horizon].
func verifyChain(segs []Segment, horizon float64) error {
	if len(segs) == 0 {
		if horizon != 0 {
			return fmt.Errorf("empty segment chain for horizon %v", horizon)
		}
		return nil
	}
	if segs[0].StartUs != 0 {
		return fmt.Errorf("first segment starts at %v, not 0", segs[0].StartUs)
	}
	for i := range segs {
		if segs[i].EndUs < segs[i].StartUs {
			return fmt.Errorf("segment %d runs backwards: %+v", i, segs[i])
		}
		if i > 0 && segs[i].StartUs != segs[i-1].EndUs {
			return fmt.Errorf("gap/overlap between segment %d (ends %v) and %d (starts %v)",
				i-1, segs[i-1].EndUs, i, segs[i].StartUs)
		}
	}
	if last := segs[len(segs)-1].EndUs; last != horizon {
		return fmt.Errorf("last segment ends at %v, horizon %v", last, horizon)
	}
	return nil
}

// pathSumUs returns the exact covered span of a contiguous chain: because
// the chain is boundary-contiguous, the sum of its durations telescopes to
// last.End − first.Start with no floating-point residue.
func pathSumUs(segs []Segment) float64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].EndUs - segs[0].StartUs
}
