package analyze

import (
	"encoding/json"
	"strings"
	"testing"

	"astra/internal/obs"
)

func TestClass(t *testing.T) {
	cases := map[string]string{
		"gemm_cublas_64x64x64": ClassGEMM,
		"ew_sigmoid":           ClassEW,
		"copy":                 ClassCopy,
		"allreduce.b0.s3":      ClassAllReduce,
		"mystery":              ClassOther,
	}
	for name, want := range cases {
		if got := Class(name); got != want {
			t.Errorf("Class(%q) = %q, want %q", name, got, want)
		}
	}
}

// synthetic profile: two streams.
//
//	stream 0: gemm [10, 110]   launched at 10, then ew [115, 165] launched
//	          at 12 but FIFO-free at 110 and wait-bound to 115 by an event
//	          on stream 1 (tag "epoch")
//	stream 1: copy [20, 115]   launched at 20
//
// CPU finished dispatching at 30; device drained at 165; wall 165.
func syntheticProfile() obs.BatchProfile {
	return obs.BatchProfile{
		Worker: 0, Streams: 2, CommStream: -1,
		CPUUs: 165, EndUs: 165, NumSMs: 56, SMBusyUs: 0,
		Kernels: []obs.KernelSample{
			{Name: "gemm_cublas_64", Stream: 0, LaunchUs: 10, StartUs: 10, EndUs: 110,
				FreeUs: 0, WaitUs: 0, WaitStream: -1},
			{Name: "copy", Stream: 1, LaunchUs: 20, StartUs: 20, EndUs: 115,
				FreeUs: 0, WaitUs: 0, WaitStream: -1},
			{Name: "ew_add", Stream: 0, LaunchUs: 12, StartUs: 115, EndUs: 165,
				FreeUs: 110, WaitUs: 115, WaitStream: 1, WaitTag: "epoch"},
		},
	}
}

func TestCriticalPathSynthetic(t *testing.T) {
	p := syntheticProfile()
	path := CriticalPath(&p)
	// Expected walk: ew [115,165] → wait bound → copy [20,115] → launch
	// bound → dispatch [0,20].
	if len(path) != 3 {
		t.Fatalf("path has %d segments: %+v", len(path), path)
	}
	if path[0].Kind != ClassDispatch || path[0].StartUs != 0 || path[0].EndUs != 20 {
		t.Fatalf("segment 0 = %+v", path[0])
	}
	if path[1].Name != "copy" || path[2].Name != "ew_add" {
		t.Fatalf("path kernels: %+v", path)
	}
	if err := verifyChain(path, 165); err != nil {
		t.Fatal(err)
	}
	b := blame(path)
	if b[ClassDispatch] != 20 || b[ClassCopy] != 95 || b[ClassEW] != 50 {
		t.Fatalf("blame = %v", b)
	}
}

func TestCriticalPathCPUBound(t *testing.T) {
	p := obs.BatchProfile{Worker: 2, Streams: 1, CommStream: -1, CPUUs: 500, EndUs: 400,
		Kernels: []obs.KernelSample{
			{Name: "ew_x", Stream: 0, LaunchUs: 5, StartUs: 5, EndUs: 400, WaitStream: -1},
		}}
	path := CriticalPath(&p)
	if len(path) != 1 || path[0].Kind != ClassDispatch || path[0].EndUs != 500 {
		t.Fatalf("CPU-bound path = %+v", path)
	}
	if path[0].Worker != 2 {
		t.Fatalf("worker not carried: %+v", path[0])
	}
}

func TestCriticalPathEmptyProfile(t *testing.T) {
	p := obs.BatchProfile{Worker: 0, Streams: 1, CommStream: -1, CPUUs: 42, EndUs: 0}
	path := CriticalPath(&p)
	if len(path) != 1 || path[0].Kind != ClassDispatch || path[0].EndUs != 42 {
		t.Fatalf("kernel-free path = %+v", path)
	}
	empty := obs.BatchProfile{}
	if got := CriticalPath(&empty); got != nil {
		t.Fatalf("zero profile path = %+v", got)
	}
}

func TestStreamTimelinesSynthetic(t *testing.T) {
	p := syntheticProfile()
	tls := StreamTimelines(&p, 200) // cluster horizon beyond this worker's wall
	if len(tls) != 2 {
		t.Fatalf("%d timelines", len(tls))
	}
	for _, tl := range tls {
		if err := verifyChain(tl.Segments, 200); err != nil {
			t.Fatalf("stream %d: %v", tl.Stream, err)
		}
	}
	// Stream 0: launch_gap [0,10], busy gemm, epoch_wait [110,115] (launch
	// was at 12 < free at 110, so the whole gap is the wait), busy ew,
	// straggler_wait [165,200].
	kinds := func(tl StreamTimeline) []string {
		var out []string
		for _, s := range tl.Segments {
			out = append(out, s.Kind)
		}
		return out
	}
	want0 := []string{IdleLaunchGap, "busy", IdleEpochWait, "busy", IdleStragglerWait}
	got0 := kinds(tls[0])
	if len(got0) != len(want0) {
		t.Fatalf("stream 0 kinds = %v", got0)
	}
	for i := range want0 {
		if got0[i] != want0[i] {
			t.Fatalf("stream 0 kinds = %v, want %v", got0, want0)
		}
	}
	if seg := tls[0].Segments[2]; seg.StartUs != 110 || seg.EndUs != 115 {
		t.Fatalf("epoch wait = %+v", seg)
	}
	// Stream 1: launch_gap [0,20], busy copy, drain [115,165],
	// straggler_wait [165,200].
	want1 := []string{IdleLaunchGap, "busy", IdleDrain, IdleStragglerWait}
	got1 := kinds(tls[1])
	if len(got1) != len(want1) {
		t.Fatalf("stream 1 kinds = %v", got1)
	}
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("stream 1 kinds = %v, want %v", got1, want1)
		}
	}
}

func TestWaitTagCategories(t *testing.T) {
	cases := map[string]string{
		"epoch": IdleEpochWait, "barrier": IdleBarrierWait,
		"bucket": IdleBucketStall, "commjoin": IdleExposedComm,
		"": IdleSyncWait, "novel": IdleSyncWait,
	}
	for tag, want := range cases {
		if got := waitTagCategory(tag); got != want {
			t.Errorf("waitTagCategory(%q) = %q, want %q", tag, got, want)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	u := union([]interval{{5, 10}, {0, 6}, {20, 30}, {25, 28}})
	if len(u) != 2 || u[0] != (interval{0, 10}) || u[1] != (interval{20, 30}) {
		t.Fatalf("union = %+v", u)
	}
	if got := lengthUs(u); got != 20 {
		t.Fatalf("length = %v", got)
	}
	x := intersect(u, []interval{{8, 22}})
	if len(x) != 2 || x[0] != (interval{8, 10}) || x[1] != (interval{20, 22}) {
		t.Fatalf("intersect = %+v", x)
	}
	if union(nil) != nil || len(intersect(nil, u)) != 0 {
		t.Fatal("empty interval ops")
	}
}

func TestOverlapStats(t *testing.T) {
	p := obs.BatchProfile{Worker: 0, Streams: 2, CommStream: 1, CPUUs: 100, EndUs: 100,
		Kernels: []obs.KernelSample{
			{Name: "gemm_a_1", Stream: 0, StartUs: 0, EndUs: 60, WaitStream: -1},
			{Name: "allreduce.b0.s0", Stream: 1, StartUs: 40, EndUs: 90, WaitStream: -1},
		}}
	o := Overlap(&p)
	if o.CommBusyUs != 50 || o.ComputeBusyUs != 60 || o.OverlapUs != 20 {
		t.Fatalf("overlap = %+v", o)
	}
	if o.IdealUs != 50 || o.ExposedUs != 30 || o.Efficiency != 0.4 {
		t.Fatalf("derived overlap = %+v", o)
	}
	noComm := Overlap(&obs.BatchProfile{})
	if noComm.Efficiency != 1 || noComm.ExposedUs != 0 {
		t.Fatalf("comm-free overlap = %+v", noComm)
	}
}

func TestDependenciesSynthetic(t *testing.T) {
	p := syntheticProfile()
	deps := Dependencies(&p)
	want := []Dep{
		{FIFO: -1, Wait: -1}, // gemm: first on stream 0, no wait
		{FIFO: -1, Wait: -1}, // copy: first on stream 1, no wait
		{FIFO: 0, Wait: 1},   // ew: after gemm on stream 0, wait on copy's end
	}
	if len(deps) != len(want) {
		t.Fatalf("deps = %+v", deps)
	}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("dep %d = %+v, want %+v", i, deps[i], want[i])
		}
	}
	// A wait whose producer end matches no kernel (event resolved at CPU
	// arrival) yields Wait -1.
	p.Kernels[2].WaitUs = 117
	deps = Dependencies(&p)
	if deps[2].Wait != -1 || deps[2].FIFO != 0 {
		t.Fatalf("unmatched wait dep = %+v", deps[2])
	}
}

// runOf builds a minimal analyzed Run for Diff tests: one aligned batch with
// the given wall time and per-class blame.
func runOf(wall float64, blame map[string]float64) *Run {
	return &Run{
		TotalUs: wall,
		Batches: []*BatchAnalysis{{
			Batch: 1, Phase: "wired", WallUs: wall,
			PathBlame: blame,
			IdleUs:    map[string]float64{},
		}},
	}
}

func TestDiffIdenticalRunsMarshals(t *testing.T) {
	// Regression guard: diffing a run against itself must yield zero deltas
	// with an empty TopClass and share 0 — never NaN, which would make
	// astra-analyze -diff -json fail at json.Marshal.
	a := runOf(100, map[string]float64{ClassGEMM: 60, ClassDispatch: 40})
	d := Diff(a, a)
	if d.DeltaUs != 0 || d.AlignedDeltaUs != 0 || d.AlignedBatches != 1 {
		t.Fatalf("self-diff = %+v", d)
	}
	if d.TopClass != "" || d.TopClassShare != 0 {
		t.Fatalf("self-diff blame = %q/%v, want \"\"/0", d.TopClass, d.TopClassShare)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("self-diff does not marshal: %v", err)
	}
}

func TestDiffCancellingDeltasZeroShare(t *testing.T) {
	// Per-class deltas that cancel exactly (gemm +10, ew −10) leave a zero
	// aligned delta: dividing by it would be ±Inf. No net delta → no blame.
	a := runOf(100, map[string]float64{ClassGEMM: 50, ClassEW: 50})
	b := runOf(100, map[string]float64{ClassGEMM: 60, ClassEW: 40})
	d := Diff(a, b)
	if d.AlignedDeltaUs != 0 {
		t.Fatalf("aligned delta = %v", d.AlignedDeltaUs)
	}
	if d.TopClass != "" || d.TopClassShare != 0 {
		t.Fatalf("cancelling blame = %q/%v, want \"\"/0", d.TopClass, d.TopClassShare)
	}
	if d.ByClass[ClassGEMM] != 10 || d.ByClass[ClassEW] != -10 {
		t.Fatalf("by-class = %v", d.ByClass)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("cancelling diff does not marshal: %v", err)
	}
}

func TestDiffTopClassShareOfAbsoluteDelta(t *testing.T) {
	// A speedup (negative delta) must report the share as a fraction of
	// |AlignedDeltaUs|: gemm −30 of a −30 total is share −1 (sign carries
	// the direction of the top class's own delta).
	a := runOf(100, map[string]float64{ClassGEMM: 60, ClassEW: 40})
	b := runOf(70, map[string]float64{ClassGEMM: 30, ClassEW: 40})
	d := Diff(a, b)
	if d.TopClass != ClassGEMM || d.TopClassShare != -1 {
		t.Fatalf("speedup blame = %q/%v, want %q/-1", d.TopClass, d.TopClassShare, ClassGEMM)
	}
}

func TestConvergePriorCountersFromEvents(t *testing.T) {
	// The prior_* event fields are cumulative, so the report totals are the
	// maxima across the log — and they survive into the converge text only
	// when nonzero (unguided reports must stay byte-identical).
	events := []obs.TrialEvent{
		{Phase: "explore", Trial: 1, BatchUs: 10, TotalVars: 2, FrozenVars: 1,
			PriorHits: 1, PriorPruned: 2},
		{Phase: "explore", Trial: 2, BatchUs: 10, TotalVars: 2, FrozenVars: 2,
			PriorHits: 1, PriorMisses: 1, PriorPruned: 3, PriorRankInv: 2},
		{Phase: "wired", Trial: 2, Batch: 3, BatchUs: 8, TotalVars: 2, FrozenVars: 2,
			PriorHits: 1, PriorMisses: 1, PriorPruned: 3, PriorRankInv: 2},
	}
	c := convergeFromEvents(events)
	if c.PriorHits != 1 || c.PriorMisses != 1 || c.PriorPruned != 3 || c.PriorRankInversions != 2 {
		t.Fatalf("prior counters = %d/%d/%d/%d, want 1/1/3/2",
			c.PriorHits, c.PriorMisses, c.PriorPruned, c.PriorRankInversions)
	}
	var buf strings.Builder
	if err := WriteConvergeReport(&buf, &Run{Converge: c}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(buf.String(), "prior: 1 hit(s) / 1 miss(es) at freeze, 3 candidate(s) pruned, rank inversions 2") {
		t.Fatalf("converge report missing prior line:\n%s", buf.String())
	}

	// An unguided log renders no prior line at all.
	for i := range events {
		events[i].PriorHits, events[i].PriorMisses = 0, 0
		events[i].PriorPruned, events[i].PriorRankInv = 0, 0
	}
	buf.Reset()
	if err := WriteConvergeReport(&buf, &Run{Converge: convergeFromEvents(events)}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if strings.Contains(buf.String(), "prior:") {
		t.Fatalf("unguided converge report grew a prior line:\n%s", buf.String())
	}
}

func TestDiffSurfacesTrialDeltas(t *testing.T) {
	// `-diff cold.jsonl guided.jsonl` must surface the trial saving: the
	// convergence deltas are B − A, negative when the guided run froze
	// earlier.
	a := runOf(100, map[string]float64{ClassGEMM: 100})
	a.Converge = &ConvergeReport{Trials: 17, TrialsToFreeze: 17}
	b := runOf(100, map[string]float64{ClassGEMM: 100})
	b.Converge = &ConvergeReport{Trials: 11, TrialsToFreeze: 11}
	d := Diff(a, b)
	if d.TrialsA != 17 || d.TrialsB != 11 || d.TrialsDelta != -6 {
		t.Fatalf("trials = %d/%d/%d, want 17/11/-6", d.TrialsA, d.TrialsB, d.TrialsDelta)
	}
	if d.TrialsToFreezeDelta != -6 {
		t.Fatalf("to-freeze delta = %d, want -6", d.TrialsToFreezeDelta)
	}
	var buf strings.Builder
	if err := WriteDiffReport(&buf, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(buf.String(), "convergence: trials 17 → 11 (-6), to-freeze 17 → 11 (-6)") {
		t.Fatalf("diff report missing convergence line:\n%s", buf.String())
	}
	// Runs without convergence analytics (nil Converge) stay zero-valued.
	if d0 := Diff(runOf(1, nil), runOf(1, nil)); d0.TrialsDelta != 0 || d0.TrialsA != 0 {
		t.Fatalf("nil-converge diff = %+v", d0)
	}
}

func TestVerifyChainRejects(t *testing.T) {
	bad := [][]Segment{
		{{StartUs: 5, EndUs: 10}},                          // does not start at 0
		{{StartUs: 0, EndUs: 4}, {StartUs: 5, EndUs: 10}},  // gap
		{{StartUs: 0, EndUs: 6}, {StartUs: 5, EndUs: 10}},  // overlap
		{{StartUs: 0, EndUs: 9}},                           // short of horizon
		{{StartUs: 0, EndUs: 10}, {StartUs: 10, EndUs: 9}}, // backwards
	}
	for i, segs := range bad {
		if err := verifyChain(segs, 10); err == nil {
			t.Errorf("case %d accepted: %+v", i, segs)
		}
	}
	if err := verifyChain(nil, 0); err != nil {
		t.Errorf("empty chain at zero horizon: %v", err)
	}
	if err := verifyChain(nil, 1); err == nil {
		t.Error("empty chain accepted for positive horizon")
	}
}
