package analyze

import (
	"sort"

	"astra/internal/obs"
)

// StreamTimeline is one stream's exact partition of [0, horizon]: busy
// segments for its kernels and categorized idle segments for everything
// between them. Segments are contiguous, non-overlapping, and cover the
// horizon exactly — Verify enforces this with zero tolerance.
type StreamTimeline struct {
	Worker   int       `json:"worker"`
	Stream   int       `json:"stream"`
	Segments []Segment `json:"segments"`
}

// StreamTimelines partitions every stream of one worker's batch against
// the cluster horizon (the slowest worker's wall time). Idle time is
// categorized by re-deriving each kernel's start constraint from the exact
// recorded operands:
//
//   - device idle before the kernel was even launched is IdleLaunchGap
//     (the CPU was the holdup);
//   - idle between the launch and the start is the wait that bound the
//     start (StartUs must equal WaitUs there), categorized by the
//     dispatcher's wait tag;
//   - idle after the stream's last kernel until the worker's wall is
//     IdleDrain;
//   - idle between the worker's wall and the cluster horizon is
//     IdleStragglerWait.
func StreamTimelines(p *obs.BatchProfile, horizonUs float64) []StreamTimeline {
	wall := p.WallUs()
	perStream := make([][]obs.KernelSample, p.Streams)
	for _, k := range p.Kernels {
		if k.Stream >= len(perStream) {
			// Defensive: profiles name their stream count, but grow if a
			// record disagrees.
			grown := make([][]obs.KernelSample, k.Stream+1)
			copy(grown, perStream)
			perStream = grown
		}
		perStream[k.Stream] = append(perStream[k.Stream], k)
	}
	out := make([]StreamTimeline, len(perStream))
	for s := range perStream {
		ks := perStream[s]
		// FIFO streams retire in start order; sort for safety (stable on
		// exact-equal starts, preserving launch order).
		sort.SliceStable(ks, func(i, j int) bool { return ks[i].StartUs < ks[j].StartUs })
		tl := StreamTimeline{Worker: p.Worker, Stream: s}
		cursor := 0.0
		add := func(seg Segment) {
			if seg.EndUs > seg.StartUs {
				tl.Segments = append(tl.Segments, seg)
			}
		}
		for i := range ks {
			k := &ks[i]
			if k.StartUs > cursor {
				// Idle gap [cursor, StartUs). The portion before LaunchUs is
				// dispatch-bound; any remainder means the start was bound by
				// an event wait (FreeUs equals the cursor on a FIFO stream),
				// so the wait's tag names the category.
				launchEnd := k.LaunchUs
				if launchEnd > k.StartUs {
					launchEnd = k.StartUs
				}
				if launchEnd > cursor {
					add(Segment{StartUs: cursor, EndUs: launchEnd,
						Kind: IdleLaunchGap, Stream: s, Worker: p.Worker})
					cursor = launchEnd
				}
				if k.StartUs > cursor {
					add(Segment{StartUs: cursor, EndUs: k.StartUs,
						Kind: waitTagCategory(k.WaitTag), Stream: s, Worker: p.Worker})
				}
			}
			add(Segment{StartUs: k.StartUs, EndUs: k.EndUs,
				Kind: "busy", Class: Class(k.Name), Name: k.Name,
				Stream: s, Worker: p.Worker})
			cursor = k.EndUs
		}
		if wall > cursor {
			add(Segment{StartUs: cursor, EndUs: wall,
				Kind: IdleDrain, Stream: s, Worker: p.Worker})
			cursor = wall
		}
		if horizonUs > cursor {
			add(Segment{StartUs: cursor, EndUs: horizonUs,
				Kind: IdleStragglerWait, Stream: s, Worker: p.Worker})
		}
		out[s] = tl
	}
	return out
}
