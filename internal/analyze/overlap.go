package analyze

import (
	"sort"

	"astra/internal/obs"
)

// OverlapStats quantifies how well a batch hid its gradient exchange
// behind compute (§4.5.6 of the paper motivates exploring bucket size and
// placement; this is the measurement that judges the outcome).
type OverlapStats struct {
	// CommBusyUs is the union length of communication-kernel intervals,
	// ComputeBusyUs the union length of all other kernels' intervals.
	CommBusyUs    float64 `json:"comm_busy_us"`
	ComputeBusyUs float64 `json:"compute_busy_us"`
	// OverlapUs is the length of the intersection of the two unions — the
	// communication time actually hidden behind compute.
	OverlapUs float64 `json:"overlap_us"`
	// ExposedUs = CommBusyUs − OverlapUs: communication the batch waited
	// for. IdealUs = min(CommBusyUs, ComputeBusyUs) is the most overlap
	// this batch's workload could have achieved on any schedule.
	ExposedUs float64 `json:"exposed_us"`
	IdealUs   float64 `json:"ideal_us"`
	// Efficiency = OverlapUs/IdealUs (1 when there is nothing to overlap).
	Efficiency float64 `json:"efficiency"`
}

// finish derives the dependent fields after the additive ones are summed.
func (o *OverlapStats) finish() {
	o.ExposedUs = o.CommBusyUs - o.OverlapUs
	o.Efficiency = 1
	if o.IdealUs > 0 {
		o.Efficiency = o.OverlapUs / o.IdealUs
	}
}

// Overlap computes one worker's overlap statistics from its kernel
// timeline.
func Overlap(p *obs.BatchProfile) OverlapStats {
	var comm, compute []interval
	for i := range p.Kernels {
		k := &p.Kernels[i]
		iv := interval{k.StartUs, k.EndUs}
		if Class(k.Name) == ClassAllReduce {
			comm = append(comm, iv)
		} else {
			compute = append(compute, iv)
		}
	}
	commU := union(comm)
	compU := union(compute)
	o := OverlapStats{
		CommBusyUs:    lengthUs(commU),
		ComputeBusyUs: lengthUs(compU),
		OverlapUs:     lengthUs(intersect(commU, compU)),
	}
	o.IdealUs = o.CommBusyUs
	if o.ComputeBusyUs < o.IdealUs {
		o.IdealUs = o.ComputeBusyUs
	}
	o.finish()
	return o
}

type interval struct{ lo, hi float64 }

// union merges intervals into a sorted, disjoint cover.
func union(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	out := []interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// intersect returns the intersection of two disjoint sorted covers.
func intersect(a, b []interval) []interval {
	var out []interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].lo
		if b[j].lo > lo {
			lo = b[j].lo
		}
		hi := a[i].hi
		if b[j].hi < hi {
			hi = b[j].hi
		}
		if hi > lo {
			out = append(out, interval{lo, hi})
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return out
}

func lengthUs(ivs []interval) float64 {
	total := 0.0
	for _, iv := range ivs {
		total += iv.hi - iv.lo
	}
	return total
}
