package analyze

import "sort"

// DiffReport attributes the end-to-end time delta between two runs of the
// same job. Batches are aligned by batch number; for every aligned pair the
// wall-time delta is partitioned by critical-path blame — since each
// batch's blame map partitions its wall time exactly, the per-class deltas
// sum to the aligned delta with zero residue. A regression confined to one
// kernel class (a throttled GEMM library, a slower fabric) therefore lands
// on that class, not on "the run got slower".
type DiffReport struct {
	// TotalAUs/TotalBUs are the runs' full simulated times; DeltaUs their
	// difference (B − A, positive = B slower).
	TotalAUs float64 `json:"total_a_us"`
	TotalBUs float64 `json:"total_b_us"`
	DeltaUs  float64 `json:"delta_us"`
	// AlignedBatches counts batch numbers analyzed in both runs;
	// AlignedDeltaUs is the wall delta over those pairs (equal to the sum
	// of ByClass). UnalignedAUs/UnalignedBUs hold analyzed time that had
	// no partner and is excluded from attribution.
	AlignedBatches int     `json:"aligned_batches"`
	AlignedDeltaUs float64 `json:"aligned_delta_us"`
	UnalignedAUs   float64 `json:"unaligned_a_us"`
	UnalignedBUs   float64 `json:"unaligned_b_us"`
	// ByClass partitions AlignedDeltaUs by critical-path blame class;
	// ByPhase splits it by batch phase; ByCategory diffs the idle-gap
	// taxonomy (informative: idle categories overlap busy classes, so this
	// one is not a partition of the delta).
	ByClass    map[string]float64 `json:"by_class"`
	ByPhase    map[string]float64 `json:"by_phase"`
	ByCategory map[string]float64 `json:"by_category"`
	// Convergence deltas (B − A): exploration effort is where a cost-model
	// prior pays off, so `-diff cold.jsonl guided.jsonl` surfaces the trial
	// saving directly. Zero-valued when neither run carries convergence
	// analytics.
	TrialsA             int `json:"trials_a"`
	TrialsB             int `json:"trials_b"`
	TrialsDelta         int `json:"trials_delta"`
	TrialsToFreezeA     int `json:"trials_to_freeze_a"`
	TrialsToFreezeB     int `json:"trials_to_freeze_b"`
	TrialsToFreezeDelta int `json:"trials_to_freeze_delta"`
	// TopClass is the class with the largest absolute delta and
	// TopClassShare its fraction of |AlignedDeltaUs| (the "blame" line).
	// When the aligned delta is zero — identical runs, or per-class deltas
	// that cancel exactly — there is no meaningful blame: TopClass is empty
	// and TopClassShare 0, never NaN or ±Inf (the JSON encoder rejects
	// those).
	TopClass      string  `json:"top_class"`
	TopClassShare float64 `json:"top_class_share"`
}

// Diff aligns two analyzed runs and attributes their delta.
func Diff(a, b *Run) *DiffReport {
	d := &DiffReport{
		TotalAUs:   a.TotalUs,
		TotalBUs:   b.TotalUs,
		ByClass:    map[string]float64{},
		ByPhase:    map[string]float64{},
		ByCategory: map[string]float64{},
	}
	d.DeltaUs = d.TotalBUs - d.TotalAUs
	inA := map[int]*BatchAnalysis{}
	for _, ba := range a.Batches {
		inA[ba.Batch] = ba
	}
	paired := map[int]bool{}
	for _, bb := range b.Batches {
		ba := inA[bb.Batch]
		if ba == nil {
			d.UnalignedBUs += bb.WallUs
			continue
		}
		paired[bb.Batch] = true
		d.AlignedBatches++
		d.AlignedDeltaUs += bb.WallUs - ba.WallUs
		subMap(d.ByClass, bb.PathBlame, ba.PathBlame)
		phase := bb.Phase
		if ba.Phase != bb.Phase {
			phase = "mixed"
		}
		d.ByPhase[phase] += bb.WallUs - ba.WallUs
		subMap(d.ByCategory, bb.IdleUs, ba.IdleUs)
	}
	for _, ba := range a.Batches {
		if !paired[ba.Batch] {
			d.UnalignedAUs += ba.WallUs
		}
	}
	if a.Converge != nil {
		d.TrialsA, d.TrialsToFreezeA = a.Converge.Trials, a.Converge.TrialsToFreeze
	}
	if b.Converge != nil {
		d.TrialsB, d.TrialsToFreezeB = b.Converge.Trials, b.Converge.TrialsToFreeze
	}
	d.TrialsDelta = d.TrialsB - d.TrialsA
	d.TrialsToFreezeDelta = d.TrialsToFreezeB - d.TrialsToFreezeA
	d.TopClass, d.TopClassShare = topClass(d.ByClass, d.AlignedDeltaUs)
	return d
}

// subMap accumulates (b − a) per key into dst.
func subMap(dst, b, a map[string]float64) {
	for k, v := range b { // nodeterm:ok per-key accumulation is order-independent across keys
		dst[k] += v
	}
	for k, v := range a { // nodeterm:ok per-key accumulation is order-independent across keys
		dst[k] -= v
	}
}

// topClass picks the class with the largest absolute delta (ties break to
// the lexically first name, so the result is deterministic) and its share
// of |total|. A zero total yields ("", 0): dividing by it would produce
// NaN/Inf, which json.Marshal refuses — and with no net delta there is
// nothing to blame even when individual class deltas cancel.
func topClass(byClass map[string]float64, total float64) (string, float64) {
	if total == 0 {
		return "", 0
	}
	names := make([]string, 0, len(byClass))
	for k := range byClass { // nodeterm:ok keys are sorted before use
		names = append(names, k)
	}
	sort.Strings(names)
	top, best := "", 0.0
	for _, k := range names {
		if v := abs(byClass[k]); v > best {
			top, best = k, v
		}
	}
	if top == "" {
		return top, 0
	}
	return top, byClass[top] / abs(total)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
