package analyze

import "astra/internal/obs"

// ConvergeReport is the exploration-convergence account of a run, derived
// purely from its event log: the Table 7-style trials-to-freeze number, the
// per-variable freeze timeline, re-exploration activity, and a regret
// curve.
//
// Regret is measured against the best wired batch time observed in the
// same run — a documented proxy for the exhaustive-search optimum, which
// is infeasible to enumerate for real plans (the search space is the
// product of every adaptive variable's domain). With the simulator's
// deterministic clock the wired schedule replays exactly, so the proxy is
// stable run to run.
type ConvergeReport struct {
	// Trials is the exploration batch count, TotalVars the adaptive
	// variable count, and TrialsToFreeze the trial at which every variable
	// was frozen (0 when the run never converged or had no variables).
	Trials         int `json:"trials"`
	TotalVars      int `json:"total_vars"`
	TrialsToFreeze int `json:"trials_to_freeze"`
	// Reexplorations counts in-session thaw/re-explore rounds;
	// DriftEvents counts wired batches on which the drift watchdog fired.
	Reexplorations int `json:"reexplorations"`
	DriftEvents    int `json:"drift_events"`
	// ExploreUs/WiredUs split the run's simulated time by phase.
	ExploreUs    float64 `json:"explore_us"`
	WiredUs      float64 `json:"wired_us"`
	WiredBatches int     `json:"wired_batches"`
	// BestWiredUs is the regret reference; MeanWiredUs the average wired
	// batch.
	BestWiredUs float64 `json:"best_wired_us"`
	MeanWiredUs float64 `json:"mean_wired_us"`
	// Regret is the per-trial regret curve: each exploration batch's time
	// minus BestWiredUs (how much the trial overpaid against the final
	// schedule). CumRegretUs sums it — the total simulated cost of
	// exploring online instead of already knowing the answer.
	Regret      []RegretPoint `json:"regret,omitempty"`
	CumRegretUs float64       `json:"cum_regret_us"`
	// Freezes is the per-variable freeze timeline reconstructed from the
	// events' Froze fields.
	Freezes []FreezePoint `json:"freezes,omitempty"`
	// Prior-quality counters (docs/COSTMODEL.md), carried cumulatively on
	// the trial events when a cost-model prior guided the run: freezes where
	// the prior's top-ranked candidate won (hits) or lost (misses), candidate
	// measurements pruning skipped, and the summed rank distance of misses.
	// All zero for unguided runs.
	PriorHits           int `json:"prior_hits,omitempty"`
	PriorMisses         int `json:"prior_misses,omitempty"`
	PriorPruned         int `json:"prior_pruned,omitempty"`
	PriorRankInversions int `json:"prior_rank_inversions,omitempty"`
}

// RegretPoint is one exploration trial's regret sample.
type RegretPoint struct {
	Trial    int     `json:"trial"`
	BatchUs  float64 `json:"batch_us"`
	RegretUs float64 `json:"regret_us"`
}

// FreezePoint records one variable freezing (or re-freezing after a thaw).
type FreezePoint struct {
	Trial int    `json:"trial"`
	Batch int    `json:"batch"`
	VarID string `json:"var_id"`
}

// convergeFromEvents builds the report from an event log.
func convergeFromEvents(events []obs.TrialEvent) *ConvergeReport {
	r := &ConvergeReport{}
	for i := range events {
		ev := &events[i]
		if ev.TotalVars > r.TotalVars {
			r.TotalVars = ev.TotalVars
		}
		if ev.Reexplorations > r.Reexplorations {
			r.Reexplorations = ev.Reexplorations
		}
		if ev.Drift {
			r.DriftEvents++
		}
		// The event fields are cumulative, so the run totals are maxima.
		if ev.PriorHits > r.PriorHits {
			r.PriorHits = ev.PriorHits
		}
		if ev.PriorMisses > r.PriorMisses {
			r.PriorMisses = ev.PriorMisses
		}
		if ev.PriorPruned > r.PriorPruned {
			r.PriorPruned = ev.PriorPruned
		}
		if ev.PriorRankInv > r.PriorRankInversions {
			r.PriorRankInversions = ev.PriorRankInv
		}
		for _, id := range ev.Froze {
			r.Freezes = append(r.Freezes, FreezePoint{Trial: ev.Trial, Batch: ev.Batch, VarID: id})
		}
		switch ev.Phase {
		case "explore":
			r.Trials++
			r.ExploreUs += ev.BatchUs
			if r.TrialsToFreeze == 0 && ev.TotalVars > 0 && ev.FrozenVars == ev.TotalVars {
				r.TrialsToFreeze = ev.Trial
			}
		default:
			r.WiredBatches++
			r.WiredUs += ev.BatchUs
			if r.BestWiredUs == 0 || ev.BatchUs < r.BestWiredUs {
				r.BestWiredUs = ev.BatchUs
			}
			// A wired batch can complete convergence after a drift thaw.
			if r.TrialsToFreeze == 0 && ev.TotalVars > 0 && ev.FrozenVars == ev.TotalVars {
				r.TrialsToFreeze = ev.Trial
			}
		}
	}
	if r.WiredBatches > 0 {
		r.MeanWiredUs = r.WiredUs / float64(r.WiredBatches)
	}
	if r.BestWiredUs > 0 {
		for i := range events {
			ev := &events[i]
			if ev.Phase != "explore" {
				continue
			}
			p := RegretPoint{Trial: ev.Trial, BatchUs: ev.BatchUs, RegretUs: ev.BatchUs - r.BestWiredUs}
			r.Regret = append(r.Regret, p)
			r.CumRegretUs += p.RegretUs
		}
	}
	return r
}
