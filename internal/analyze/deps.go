package analyze

import "astra/internal/obs"

// Dep holds the dependency edges of one kernel in a recorded batch profile,
// as indices into BatchProfile.Kernels (-1 = no such edge). These are the
// same edges the critical-path walk re-derives on the fly; exporting them
// lets the what-if replayer mutate kernel costs and re-schedule the batch
// without re-discovering the graph.
type Dep struct {
	// FIFO is the stream-FIFO predecessor: the previous kernel launched on
	// the same stream, whose end is the kernel's FreeUs operand. -1 for the
	// first kernel of a stream (FreeUs 0).
	FIFO int
	// Wait is the producer whose end resolved the kernel's binding event
	// wait: the kernel on WaitStream ending exactly at WaitUs (the latest
	// such launch wins, matching the critical-path tie-break). -1 when the
	// kernel recorded no wait, or when no kernel end matches — the event
	// then resolved at its CPU arrival time (the producing stream had
	// already drained past it), which replay treats as a recorded constant.
	Wait int
}

// Dependencies rebuilds the per-kernel dependency edges of one worker's
// batch from the exact recorded start-rule operands
// (StartUs = max(LaunchUs, FreeUs, WaitUs)); see obs.KernelSample.
func Dependencies(p *obs.BatchProfile) []Dep {
	deps := make([]Dep, len(p.Kernels))
	lastOnStream := map[int]int{}
	endsAt := map[int]map[float64]int{} // stream → end time → latest kernel index
	for i := range p.Kernels {
		k := &p.Kernels[i]
		d := Dep{FIFO: -1, Wait: -1}
		if prev, ok := lastOnStream[k.Stream]; ok {
			d.FIFO = prev
		}
		if k.WaitUs > 0 {
			if j, ok := endsAt[k.WaitStream][k.WaitUs]; ok {
				d.Wait = j
			}
		}
		deps[i] = d
		lastOnStream[k.Stream] = i
		m := endsAt[k.Stream]
		if m == nil {
			m = map[float64]int{}
			endsAt[k.Stream] = m
		}
		m[k.EndUs] = i // latest index wins
	}
	return deps
}
