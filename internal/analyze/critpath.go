package analyze

import "astra/internal/obs"

// CriticalPath reconstructs the exact critical path of one worker's batch:
// a contiguous chain of segments from 0 to the worker's wall time, each
// either a kernel execution or CPU dispatch time. The walk runs backwards
// from the batch end; at every kernel it re-derives the constraint that
// bound the kernel's start by exact float comparison against the recorded
// operands of StartUs = max(LaunchUs, FreeUs, WaitUs):
//
//   - FreeUs binding: the stream FIFO — jump to the predecessor kernel on
//     the same stream (it ended exactly at FreeUs);
//   - WaitUs binding: a cross-stream event — jump to the kernel whose end
//     resolved the event (on WaitStream; the recorded event resolved when
//     that stream drained to it);
//   - LaunchUs binding: the CPU — the dispatcher is serial from batch
//     start, so the path terminates with a dispatch segment [0, LaunchUs].
//
// A batch whose CPU clock outran the device (dispatch-bound end) is a
// single dispatch segment. The chain's segment durations always sum to the
// wall time exactly, because consecutive segments share their boundary.
func CriticalPath(p *obs.BatchProfile) []Segment {
	wall := p.WallUs()
	if wall == 0 {
		return nil
	}
	worker := p.Worker
	dispatch := func(end float64) Segment {
		return Segment{StartUs: 0, EndUs: end, Kind: ClassDispatch, Worker: worker}
	}
	if len(p.Kernels) == 0 || p.CPUUs > p.EndUs {
		// CPU-bound batch: the dispatcher (plus any synchronous host
		// transfers folded into its clock) was the constraint end to end.
		return []Segment{dispatch(wall)}
	}

	var rev []Segment // built back-to-front
	t := wall
	prefer, hasPrefer := 0, false
	for t > 0 {
		k := kernelEndingAt(p, t, prefer, hasPrefer)
		if k == nil {
			// No kernel ends here: the remaining span is CPU time (e.g. an
			// event resolved at its CPU arrival on an idle stream).
			rev = append(rev, dispatch(t))
			break
		}
		rev = append(rev, Segment{
			StartUs: k.StartUs, EndUs: k.EndUs,
			Kind: "busy", Class: Class(k.Name), Name: k.Name,
			Stream: k.Stream, Worker: worker,
		})
		t = k.StartUs
		switch {
		case t == 0:
			// First constraint is the batch start itself.
		case k.FreeUs == t && k.FreeUs > 0:
			prefer, hasPrefer = k.Stream, true
		case k.WaitUs == t && k.WaitUs > 0:
			prefer, hasPrefer = k.WaitStream, true
		default:
			// LaunchUs bound the start: the serial dispatcher worked from
			// batch start to the launch.
			rev = append(rev, dispatch(t))
			t = 0
		}
	}
	// Reverse into chronological order.
	out := make([]Segment, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// kernelEndingAt finds the kernel whose EndUs equals t exactly, preferring
// the given stream (the binding constraint's source), then any stream. Ties
// break to the latest StartUs, then the highest launch index, so the choice
// is deterministic.
func kernelEndingAt(p *obs.BatchProfile, t float64, prefer int, hasPrefer bool) *obs.KernelSample {
	var onPrefer, any *obs.KernelSample
	for i := range p.Kernels {
		k := &p.Kernels[i]
		if k.EndUs != t {
			continue
		}
		if hasPrefer && k.Stream == prefer && better(k, onPrefer) {
			onPrefer = k
		}
		if better(k, any) {
			any = k
		}
	}
	if onPrefer != nil {
		return onPrefer
	}
	return any
}

// better reports whether k wins the deterministic tie-break against cur
// (nil cur always loses). Preferring the latest-starting kernel keeps path
// segments minimal; the pointer comparison resolves exact-equal starts by
// launch order (later index wins, and indices are scanned ascending).
func better(k, cur *obs.KernelSample) bool {
	return cur == nil || k.StartUs >= cur.StartUs
}
