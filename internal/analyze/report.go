package analyze

import (
	"fmt"
	"io"
)

// Report emitters. All iteration is over sorted keys and all numbers use
// fixed-width formatting, so the text output for a given run is
// byte-identical across machines and analyzer worker counts.

// pct renders a share of a total as a percentage (0 total → 0%).
func pct(v, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * v / total
}

// WritePathReport renders the critical-path attribution: run-level blame by
// class, then a per-batch breakdown.
func WritePathReport(w io.Writer, run *Run) error {
	if _, err := fmt.Fprintf(w, "critical path — %d analyzed batches, %.2f µs analyzed time\n",
		len(run.Batches), run.AnalyzedUs); err != nil {
		return err
	}
	for _, k := range sortedKeys(run.PathBlame) {
		v := run.PathBlame[k]
		if _, err := fmt.Fprintf(w, "  %-12s %14.2f µs  %5.1f%%\n", k, v, pct(v, run.AnalyzedUs)); err != nil {
			return err
		}
	}
	for _, ba := range run.Batches {
		if _, err := fmt.Fprintf(w, "batch %d (%s): wall %.2f µs, %d path segments, bound by worker %d\n",
			ba.Batch, ba.Phase, ba.WallUs, len(ba.Path), ba.PathWorker); err != nil {
			return err
		}
		for _, k := range sortedKeys(ba.PathBlame) {
			v := ba.PathBlame[k]
			if _, err := fmt.Fprintf(w, "  %-12s %14.2f µs  %5.1f%%\n", k, v, pct(v, ba.WallUs)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteUtilReport renders the utilization and idle-gap taxonomy.
func WriteUtilReport(w io.Writer, run *Run) error {
	busy, idle := 0.0, 0.0
	for _, k := range sortedKeys(run.BusyUs) {
		busy += run.BusyUs[k]
	}
	for _, k := range sortedKeys(run.IdleUs) {
		idle += run.IdleUs[k]
	}
	total := busy + idle
	if _, err := fmt.Fprintf(w, "utilization — %d analyzed batches, %.2f µs of stream time (%.1f%% busy)\n",
		len(run.Batches), total, pct(busy, total)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "busy by class:"); err != nil {
		return err
	}
	for _, k := range sortedKeys(run.BusyUs) {
		v := run.BusyUs[k]
		if _, err := fmt.Fprintf(w, "  %-15s %14.2f µs  %5.1f%%\n", k, v, pct(v, total)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "idle by category:"); err != nil {
		return err
	}
	for _, k := range sortedKeys(run.IdleUs) {
		v := run.IdleUs[k]
		if _, err := fmt.Fprintf(w, "  %-15s %14.2f µs  %5.1f%%\n", k, v, pct(v, total)); err != nil {
			return err
		}
	}
	return nil
}

// WriteOverlapReport renders per-batch compute/communication overlap
// efficiency.
func WriteOverlapReport(w io.Writer, run *Run) error {
	fabric := run.Fabric
	if fabric == "" {
		fabric = "none"
	}
	if _, err := fmt.Fprintf(w, "overlap — fabric %s, %d workers\n", fabric, run.Workers); err != nil {
		return err
	}
	any := false
	for _, ba := range run.Batches {
		if ba.Overlap.CommBusyUs == 0 {
			continue
		}
		any = true
		o := ba.Overlap
		if _, err := fmt.Fprintf(w,
			"batch %d (%s): comm %.2f µs, compute %.2f µs, overlapped %.2f µs of ideal %.2f µs (%.1f%%), exposed %.2f µs\n",
			ba.Batch, ba.Phase, o.CommBusyUs, o.ComputeBusyUs, o.OverlapUs, o.IdealUs,
			100*o.Efficiency, o.ExposedUs); err != nil {
			return err
		}
	}
	if !any {
		if _, err := fmt.Fprintln(w, "no communication kernels in any analyzed batch"); err != nil {
			return err
		}
	}
	return nil
}

// WriteConvergeReport renders the exploration-convergence analytics.
func WriteConvergeReport(w io.Writer, run *Run) error {
	c := run.Converge
	if _, err := fmt.Fprintf(w,
		"convergence — %d trials over %d vars, converged at trial %d, %d re-exploration(s), %d drift event(s)\n",
		c.Trials, c.TotalVars, c.TrialsToFreeze, c.Reexplorations, c.DriftEvents); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"explore %.2f µs, wired %.2f µs over %d batches (best %.2f µs, mean %.2f µs)\n",
		c.ExploreUs, c.WiredUs, c.WiredBatches, c.BestWiredUs, c.MeanWiredUs); err != nil {
		return err
	}
	// The prior line appears only for cost-model-guided runs, so unguided
	// reports are byte-identical to before priors existed.
	if c.PriorHits+c.PriorMisses+c.PriorPruned > 0 {
		if _, err := fmt.Fprintf(w,
			"prior: %d hit(s) / %d miss(es) at freeze, %d candidate(s) pruned, rank inversions %d\n",
			c.PriorHits, c.PriorMisses, c.PriorPruned, c.PriorRankInversions); err != nil {
			return err
		}
	}
	if len(c.Regret) > 0 {
		if _, err := fmt.Fprintf(w, "cumulative regret vs best wired: %.2f µs\n", c.CumRegretUs); err != nil {
			return err
		}
		for _, p := range c.Regret {
			if _, err := fmt.Fprintf(w, "  trial %3d: %14.2f µs  regret %14.2f µs\n",
				p.Trial, p.BatchUs, p.RegretUs); err != nil {
				return err
			}
		}
	}
	for _, f := range c.Freezes {
		if _, err := fmt.Fprintf(w, "  froze %-30s at trial %d (batch %d)\n", f.VarID, f.Trial, f.Batch); err != nil {
			return err
		}
	}
	return nil
}

// WriteDiffReport renders run-vs-run delta attribution.
func WriteDiffReport(w io.Writer, d *DiffReport) error {
	if _, err := fmt.Fprintf(w, "diff — A %.2f µs, B %.2f µs, delta %+.2f µs\n",
		d.TotalAUs, d.TotalBUs, d.DeltaUs); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "aligned %d batches (delta %+.2f µs; unaligned A %.2f µs, B %.2f µs)\n",
		d.AlignedBatches, d.AlignedDeltaUs, d.UnalignedAUs, d.UnalignedBUs); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "convergence: trials %d → %d (%+d), to-freeze %d → %d (%+d)\n",
		d.TrialsA, d.TrialsB, d.TrialsDelta,
		d.TrialsToFreezeA, d.TrialsToFreezeB, d.TrialsToFreezeDelta); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "delta by critical-path class:"); err != nil {
		return err
	}
	for _, k := range sortedKeys(d.ByClass) {
		if _, err := fmt.Fprintf(w, "  %-12s %+14.2f µs\n", k, d.ByClass[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "delta by phase:"); err != nil {
		return err
	}
	for _, k := range sortedKeys(d.ByPhase) {
		if _, err := fmt.Fprintf(w, "  %-12s %+14.2f µs\n", k, d.ByPhase[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "idle-category delta:"); err != nil {
		return err
	}
	for _, k := range sortedKeys(d.ByCategory) {
		if _, err := fmt.Fprintf(w, "  %-15s %+14.2f µs\n", k, d.ByCategory[k]); err != nil {
			return err
		}
	}
	if d.TopClass != "" {
		if _, err := fmt.Fprintf(w, "blame: %s (%.1f%% of aligned delta)\n",
			d.TopClass, 100*d.TopClassShare); err != nil {
			return err
		}
	}
	return nil
}
