package models

import (
	"fmt"

	"astra/internal/graph"
	"astra/internal/tensor"
)

// GNMT builds a Google-NMT-style sequence-to-sequence model (Table 6): a
// multi-layer LSTM encoder, a multi-layer LSTM decoder, and a global
// attention module between them. The LSTM stacks are the part cuDNN's
// compound kernels cover; the attention — per-step softmax over encoder
// states, column-scaling and accumulation — is exactly the long tail cuDNN
// does not cover, which is why Astra closes the gap on this model.
//
// cfg.Layers is the per-direction depth (encoder and decoder each get
// cfg.Layers LSTM layers), so the model has roughly Layers× the layer count
// of the two-layer stacked LSTM — the property Table 7 uses to argue the
// exploration state space scales.
func GNMT(cfg Config) *Model {
	if cfg.Layers <= 0 {
		cfg.Layers = 4
	}
	m := &Model{Name: "gnmt", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 505)
	T := cfg.SeqLen

	// ---- encoder ----
	encX := inputsFor(m, b, rng, "enc.", T)
	encLayers := make([]lstmParams, cfg.Layers)
	for l := range encLayers {
		in := cfg.Embed
		if l > 0 {
			in = cfg.Hidden
		}
		encLayers[l] = newLSTMParams(m.G, rng, fmt.Sprintf("enc%d", l), in, cfg.Hidden)
	}
	encH := make([]*graph.Value, cfg.Layers)
	encC := make([]*graph.Value, cfg.Layers)
	for l := range encH {
		encH[l] = zeroState(m.G, fmt.Sprintf("ench0_%d", l), cfg.Batch, cfg.Hidden)
		encC[l] = zeroState(m.G, fmt.Sprintf("encc0_%d", l), cfg.Batch, cfg.Hidden)
	}
	encTop := make([]*graph.Value, T) // encoder memory the attention reads
	for t := 0; t < T; t++ {
		x := encX[t]
		for l := 0; l < cfg.Layers; l++ {
			l := l
			b.InScope(fmt.Sprintf("enc.lstm%d", l), func() {
				b.AtStep(t, func() {
					encH[l], encC[l] = lstmCell(b, encLayers[l], x, encH[l], encC[l])
				})
			})
			x = encH[l]
		}
		encTop[t] = x
	}

	// ---- decoder with global attention ----
	decX := inputsFor(m, b, rng, "dec.", T)
	decLayers := make([]lstmParams, cfg.Layers)
	for l := range decLayers {
		in := cfg.Embed
		if l > 0 {
			in = cfg.Hidden
		}
		decLayers[l] = newLSTMParams(m.G, rng, fmt.Sprintf("dec%d", l), in, cfg.Hidden)
	}
	decH := make([]*graph.Value, cfg.Layers)
	decC := make([]*graph.Value, cfg.Layers)
	for l := range decH {
		decH[l] = zeroState(m.G, fmt.Sprintf("dech0_%d", l), cfg.Batch, cfg.Hidden)
		decC[l] = zeroState(m.G, fmt.Sprintf("decc0_%d", l), cfg.Batch, cfg.Hidden)
	}
	Watt := m.G.Param("att.W", tensor.Randn(rng, 0.08, cfg.Hidden, T))
	Wc := m.G.Param("att.Wc", tensor.Randn(rng, 0.08, 2*cfg.Hidden, cfg.Hidden))

	var outs []*graph.Value
	for t := 0; t < T; t++ {
		x := decX[t]
		for l := 0; l < cfg.Layers; l++ {
			l := l
			b.InScope(fmt.Sprintf("dec.lstm%d", l), func() {
				b.AtStep(t, func() {
					decH[l], decC[l] = lstmCell(b, decLayers[l], x, decH[l], decC[l])
				})
			})
			x = decH[l]
		}
		// Global attention over the encoder memory: scores from the top
		// decoder state, softmax over encoder positions, weighted sum of
		// encoder states, then a combining projection — a chain of small
		// kernels that no compound hand-written kernel covers.
		top := x
		t := t
		b.InScope("att", func() {
			b.AtStep(t, func() {
				scores := b.Softmax(b.MatMul(top, Watt)) // [batch, T]
				var ctx *graph.Value
				for s := 0; s < T; s++ {
					w := b.SliceCols(scores, s, s+1)
					term := b.ScaleCols(encTop[s], w)
					if ctx == nil {
						ctx = term
					} else {
						ctx = b.Add(ctx, term)
					}
				}
				combined := b.Tanh(b.MatMul(b.ConcatCols(top, ctx), Wc))
				outs = append(outs, combined)
			})
		})
	}
	emitLMHead(m, b, rng, outs)
	return finish(m)
}
