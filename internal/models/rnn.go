package models

import (
	"fmt"

	"astra/internal/graph"
	"astra/internal/tensor"
)

// lstmParams holds the per-gate weights of one standard LSTM layer, kept as
// separate tensors per gate — the naive model-code structure whose GEMMs
// Astra's enumerator later fuses.
type lstmParams struct {
	wx, wh [4]*graph.Value // input and recurrent weights per gate i,f,o,u
	bias   [4]*graph.Value
}

func newLSTMParams(g *graph.Graph, rng *tensor.RNG, name string, inDim, hid int) lstmParams {
	var p lstmParams
	gates := [4]string{"i", "f", "o", "u"}
	for k, gate := range gates {
		p.wx[k] = g.Param(fmt.Sprintf("%s.W%s", name, gate), tensor.Randn(rng, 0.08, inDim, hid))
		p.wh[k] = g.Param(fmt.Sprintf("%s.U%s", name, gate), tensor.Randn(rng, 0.08, hid, hid))
		p.bias[k] = g.Param(fmt.Sprintf("%s.b%s", name, gate), tensor.Randn(rng, 0.08, 1, hid))
	}
	return p
}

// lstmCell emits one standard LSTM step: four gate pre-activations (two
// GEMMs + bias each), then the cell elementwise math.
func lstmCell(b *graph.Builder, p lstmParams, x, h, c *graph.Value) (hNext, cNext *graph.Value) {
	var pre [4]*graph.Value
	for k := 0; k < 4; k++ {
		gx := b.MatMul(x, p.wx[k])
		gh := b.MatMul(h, p.wh[k])
		pre[k] = b.AddBias(b.Add(gx, gh), p.bias[k])
	}
	i := b.Sigmoid(pre[0])
	f := b.Sigmoid(pre[1])
	o := b.Sigmoid(pre[2])
	u := b.Tanh(pre[3])
	cNext = b.Add(b.Mul(f, c), b.Mul(i, u))
	hNext = b.Mul(o, b.Tanh(cNext))
	return hNext, cNext
}

// StackedLSTM builds the PTB stacked LSTM language model ("large"
// configuration when built with DefaultConfig: 2 layers of 1500 units).
// This is the model fully covered by cuDNN's compound LSTM kernel, used in
// Table 5 to measure how close Astra gets to hand-optimized code.
func StackedLSTM(cfg Config) *Model {
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	m := &Model{Name: "stackedlstm", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 101)

	xs := inputsFor(m, b, rng, "", cfg.SeqLen)
	layers := make([]lstmParams, cfg.Layers)
	for l := range layers {
		in := cfg.Embed
		if l > 0 {
			in = cfg.Hidden
		}
		layers[l] = newLSTMParams(m.G, rng, fmt.Sprintf("lstm%d", l), in, cfg.Hidden)
	}
	h := make([]*graph.Value, cfg.Layers)
	c := make([]*graph.Value, cfg.Layers)
	for l := range h {
		h[l] = zeroState(m.G, fmt.Sprintf("h0_%d", l), cfg.Batch, cfg.Hidden)
		c[l] = zeroState(m.G, fmt.Sprintf("c0_%d", l), cfg.Batch, cfg.Hidden)
	}

	var tops []*graph.Value
	for t := 0; t < cfg.SeqLen; t++ {
		x := xs[t]
		for l := 0; l < cfg.Layers; l++ {
			l := l
			b.InScope(fmt.Sprintf("lstm%d", l), func() {
				b.AtStep(t, func() {
					h[l], c[l] = lstmCell(b, layers[l], x, h[l], c[l])
				})
			})
			x = h[l]
		}
		tops = append(tops, x)
	}
	emitLMHead(m, b, rng, tops)
	return finish(m)
}

// MILSTM builds the multiplicative-integration LSTM of Wu et al. [36] used
// on the Hutter character-level task (Table 3). Each gate combines Wx and
// Uh multiplicatively as well as additively:
//
//	pre = α·(Wx ⊙ Uh) + β1·Wx + β2·Uh + bias
//
// Following the reference implementations, the four gates' weights are a
// single [in, 4·hidden] matrix, so the model code emits two wide GEMMs per
// step plus the multiplicative-integration elementwise math and per-gate
// slices — a structure cuDNN's standard LSTM kernel cannot run, but whose
// GEMM pair Astra can still ladder-fuse and cross-step batch.
func MILSTM(cfg Config) *Model {
	m := &Model{Name: "milstm", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 202)

	xs := inputsFor(m, b, rng, "", cfg.SeqLen)
	wx := m.G.Param("milstm.Wx", tensor.Randn(rng, 0.08, cfg.Embed, 4*cfg.Hidden))
	wh := m.G.Param("milstm.Uh", tensor.Randn(rng, 0.08, cfg.Hidden, 4*cfg.Hidden))
	bias := m.G.Param("milstm.b", tensor.Randn(rng, 0.08, 1, 4*cfg.Hidden))
	const alpha, beta1, beta2 = 1.0, 0.5, 0.5

	h := zeroState(m.G, "h0", cfg.Batch, cfg.Hidden)
	c := zeroState(m.G, "c0", cfg.Batch, cfg.Hidden)
	var tops []*graph.Value
	for t := 0; t < cfg.SeqLen; t++ {
		t := t
		b.InScope("milstm", func() {
			b.AtStep(t, func() {
				gx := b.MatMul(xs[t], wx)
				gh := b.MatMul(h, wh)
				mi := b.Scale(b.Mul(gx, gh), alpha)
				lin := b.Add(b.Scale(gx, beta1), b.Scale(gh, beta2))
				pre := b.AddBias(b.Add(mi, lin), bias)
				hd := cfg.Hidden
				i := b.Sigmoid(b.SliceCols(pre, 0, hd))
				f := b.Sigmoid(b.SliceCols(pre, hd, 2*hd))
				o := b.Sigmoid(b.SliceCols(pre, 2*hd, 3*hd))
				u := b.Tanh(b.SliceCols(pre, 3*hd, 4*hd))
				c = b.Add(b.Mul(f, c), b.Mul(i, u))
				h = b.Mul(o, b.Tanh(c))
			})
		})
		tops = append(tops, h)
	}
	emitLMHead(m, b, rng, tops)
	return finish(m)
}

// SubLSTM builds the subtractive-gating LSTM of Costa et al. [8]
// (Table 4): gates are all sigmoid, and gating is subtractive rather than
// multiplicative:
//
//	c_t = f ⊙ c_{t-1} + z − i
//	h_t = sigmoid(c_t) − o
func SubLSTM(cfg Config) *Model {
	m := &Model{Name: "sublstm", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 303)

	xs := inputsFor(m, b, rng, "", cfg.SeqLen)
	p := newLSTMParams(m.G, rng, "sublstm", cfg.Embed, cfg.Hidden)

	h := zeroState(m.G, "h0", cfg.Batch, cfg.Hidden)
	c := zeroState(m.G, "c0", cfg.Batch, cfg.Hidden)
	var tops []*graph.Value
	for t := 0; t < cfg.SeqLen; t++ {
		t := t
		b.InScope("sublstm", func() {
			b.AtStep(t, func() {
				var gate [4]*graph.Value
				for k := 0; k < 4; k++ {
					gx := b.MatMul(xs[t], p.wx[k])
					gh := b.MatMul(h, p.wh[k])
					gate[k] = b.Sigmoid(b.AddBias(b.Add(gx, gh), p.bias[k]))
				}
				z, i, f, o := gate[3], gate[0], gate[1], gate[2]
				c = b.Add(b.Mul(f, c), b.Sub(z, i))
				h = b.Sub(b.Sigmoid(c), o)
			})
		})
		tops = append(tops, h)
	}
	emitLMHead(m, b, rng, tops)
	return finish(m)
}

// SCRNN builds the structurally-constrained recurrent network of Mikolov
// et al. [22] (Table 2): a slow context state s_t mixed by a fixed decay
// plus a fast sigmoid hidden state.
//
//	s_t = (1−α)·(x_t B) + α·s_{t−1}
//	h_t = sigmoid(P s_t + A x_t + R h_{t−1})
//	y   = U h + V s
func SCRNN(cfg Config) *Model {
	m := &Model{Name: "scrnn", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 404)
	ctxDim := cfg.Hidden / 2
	if ctxDim == 0 {
		ctxDim = 1
	}
	const alpha = 0.95

	xs := inputsFor(m, b, rng, "", cfg.SeqLen)
	B := m.G.Param("scrnn.B", tensor.Randn(rng, 0.08, cfg.Embed, ctxDim))
	A := m.G.Param("scrnn.A", tensor.Randn(rng, 0.08, cfg.Embed, cfg.Hidden))
	P := m.G.Param("scrnn.P", tensor.Randn(rng, 0.08, ctxDim, cfg.Hidden))
	R := m.G.Param("scrnn.R", tensor.Randn(rng, 0.08, cfg.Hidden, cfg.Hidden))
	U := m.G.Param("scrnn.U", tensor.Randn(rng, 0.08, cfg.Hidden, cfg.Vocab))
	V := m.G.Param("scrnn.V", tensor.Randn(rng, 0.08, ctxDim, cfg.Vocab))

	s := zeroState(m.G, "s0", cfg.Batch, ctxDim)
	h := zeroState(m.G, "h0", cfg.Batch, cfg.Hidden)
	var hs, ss []*graph.Value
	for t := 0; t < cfg.SeqLen; t++ {
		t := t
		b.InScope("scrnn", func() {
			b.AtStep(t, func() {
				s = b.Add(b.Scale(b.MatMul(xs[t], B), 1-alpha), b.Scale(s, alpha))
				hPre := b.Add(b.Add(b.MatMul(s, P), b.MatMul(xs[t], A)), b.MatMul(h, R))
				h = b.Sigmoid(hPre)
			})
		})
		hs = append(hs, h)
		ss = append(ss, s)
	}
	var logits *graph.Value
	b.InScope("head", func() {
		hcat := b.ConcatRows(hs...)
		scat := b.ConcatRows(ss...)
		logits = b.Add(b.MatMul(hcat, U), b.MatMul(scat, V))
	})
	m.Targets = m.G.Input("targets", cfg.Batch*cfg.SeqLen, 1)
	b.CrossEntropy(logits, m.Targets)
	return finish(m)
}

// emitLMHead stacks the per-timestep top hidden states, projects to the
// vocabulary and attaches the cross-entropy loss against per-token targets.
func emitLMHead(m *Model, b *graph.Builder, rng *tensor.RNG, tops []*graph.Value) {
	cfg := m.Cfg
	U := m.G.Param("head.U", tensor.Randn(rng, 0.08, cfg.Hidden, cfg.Vocab))
	var logits *graph.Value
	b.InScope("head", func() {
		cat := b.ConcatRows(tops...)
		logits = b.MatMul(cat, U)
	})
	m.Targets = m.G.Input("targets", cfg.Batch*len(tops), 1)
	b.CrossEntropy(logits, m.Targets)
}
