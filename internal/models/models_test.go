package models

import (
	"strings"
	"testing"

	"astra/internal/graph"
	"astra/internal/tensor"
)

func TestAllModelsBuildAndValidateTiny(t *testing.T) {
	for _, name := range Names() {
		build, ok := Get(name)
		if !ok {
			t.Fatalf("Get(%q) failed", name)
		}
		m := build(TinyConfig(name, 2))
		if err := m.G.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.G.Loss == nil {
			t.Errorf("%s: no loss", name)
		}
		if len(m.G.Grads) == 0 {
			t.Errorf("%s: no gradients", name)
		}
		st := m.G.Stats()
		if st.MatMuls == 0 {
			t.Errorf("%s: no GEMMs", name)
		}
	}
}

func TestAllModelsRunTiny(t *testing.T) {
	for _, name := range Names() {
		build, _ := Get(name)
		m := build(TinyConfig(name, 2))
		env := m.G.Run(m.MakeInputs(7), nil)
		loss := env[m.G.Loss].Data()[0]
		if loss <= 0 || loss > 100 {
			t.Errorf("%s: implausible loss %v", name, loss)
		}
		// Every declared gradient must be computed with the params' shapes.
		for p, gv := range m.G.Grads {
			gt := env[gv]
			if gt == nil {
				t.Errorf("%s: gradient of %s not computed", name, p.Name)
				continue
			}
			if !gt.Shape().Equal(p.Shape) {
				t.Errorf("%s: grad shape %v for param %v", name, gt.Shape(), p.Shape)
			}
		}
	}
}

func TestModelsDeterministic(t *testing.T) {
	for _, name := range Names() {
		build, _ := Get(name)
		m1 := build(TinyConfig(name, 2))
		m2 := build(TinyConfig(name, 2))
		l1 := m1.G.Run(m1.MakeInputs(3), nil)[m1.G.Loss].Data()[0]
		l2 := m2.G.Run(m2.MakeInputs(3), nil)[m2.G.Loss].Data()[0]
		if l1 != l2 {
			t.Errorf("%s: nondeterministic build: %v vs %v", name, l1, l2)
		}
	}
}

func TestEmbeddingToggle(t *testing.T) {
	cfg := TinyConfig("scrnn", 2)
	withEmb := SCRNN(cfg)
	if len(withEmb.IDs) != cfg.SeqLen || len(withEmb.Xs) != 0 {
		t.Fatalf("embedding model has %d ids, %d xs", len(withEmb.IDs), len(withEmb.Xs))
	}
	lookups := 0
	for _, n := range withEmb.G.Nodes {
		if n.Op == graph.OpLookup {
			lookups++
		}
	}
	if lookups != cfg.SeqLen {
		t.Fatalf("lookups = %d, want %d", lookups, cfg.SeqLen)
	}

	cfg.Embedding = false
	noEmb := SCRNN(cfg)
	if len(noEmb.IDs) != 0 || len(noEmb.Xs) != cfg.SeqLen {
		t.Fatalf("dense model has %d ids, %d xs", len(noEmb.IDs), len(noEmb.Xs))
	}
	for _, n := range noEmb.G.Nodes {
		if n.Op == graph.OpLookup {
			t.Fatal("dense variant still has lookups")
		}
	}
}

func TestProvenanceTimestepsAndScopes(t *testing.T) {
	m := StackedLSTM(TinyConfig("stackedlstm", 2))
	scopes := map[string]bool{}
	maxStep := -1
	for _, n := range m.G.Nodes {
		scopes[n.Prov.Scope] = true
		if n.Prov.Timestep > maxStep {
			maxStep = n.Prov.Timestep
		}
	}
	if !scopes["lstm0"] || !scopes["lstm1"] || !scopes["head"] {
		t.Fatalf("missing expected scopes: %v", scopes)
	}
	if maxStep != m.Cfg.SeqLen-1 {
		t.Fatalf("max timestep %d, want %d", maxStep, m.Cfg.SeqLen-1)
	}
}

func TestPerGateGEMMStructure(t *testing.T) {
	// The naive stacked LSTM must have 8 GEMMs per layer-step (2 per gate):
	// that is the fusion opportunity Astra exploits.
	cfg := TinyConfig("stackedlstm", 2)
	cfg.Backward = false
	m := StackedLSTM(cfg)
	perStep := map[[2]interface{}]int{}
	for _, n := range m.G.MatMulNodes() {
		if strings.HasPrefix(n.Prov.Scope, "lstm") {
			perStep[[2]interface{}{n.Prov.Scope, n.Prov.Timestep}]++
		}
	}
	for k, c := range perStep {
		if c != 8 {
			t.Fatalf("%v has %d GEMMs, want 8", k, c)
		}
	}
	if len(perStep) != cfg.Layers*cfg.SeqLen {
		t.Fatalf("layer-steps = %d, want %d", len(perStep), cfg.Layers*cfg.SeqLen)
	}
}

func TestGNMTHasAttentionTail(t *testing.T) {
	cfg := TinyConfig("gnmt", 2)
	cfg.Backward = false
	m := GNMT(cfg)
	att := 0
	for _, n := range m.G.Nodes {
		if n.Prov.Scope == "att" {
			att++
		}
	}
	if att == 0 {
		t.Fatal("no attention nodes")
	}
	// Attention emits softmax + per-position scale_cols chains.
	sawSoftmax, sawScale := false, false
	for _, n := range m.G.Nodes {
		if n.Prov.Scope != "att" {
			continue
		}
		if n.Op == graph.OpSoftmax {
			sawSoftmax = true
		}
		if n.Op == graph.OpScaleCols {
			sawScale = true
		}
	}
	if !sawSoftmax || !sawScale {
		t.Fatal("attention structure missing softmax/scale_cols")
	}
}

func TestGNMTDeeperThanStacked(t *testing.T) {
	g := GNMT(TinyConfig("gnmt", 2))
	s := StackedLSTM(TinyConfig("stackedlstm", 2))
	if len(g.G.Nodes) <= 2*len(s.G.Nodes) {
		t.Fatalf("gnmt (%d nodes) should be much larger than stacked (%d)", len(g.G.Nodes), len(s.G.Nodes))
	}
}

func TestSCRNNSharedArgumentGEMMs(t *testing.T) {
	// A·x_t and B·x_t share x_t — the §4.4.1 common-argument fusion
	// candidate pattern must exist in the forward trace.
	cfg := TinyConfig("scrnn", 2)
	cfg.Backward = false
	m := SCRNN(cfg)
	cons := m.G.Consumers()
	found := false
	for v, ns := range cons {
		mm := 0
		for _, n := range ns {
			if n.Op == graph.OpMatMul {
				mm++
			}
		}
		if mm >= 2 && v.Producer != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no value consumed by >= 2 GEMMs")
	}
}

func TestTraceRoundTripForModels(t *testing.T) {
	for _, name := range Names() {
		build, _ := Get(name)
		m := build(TinyConfig(name, 2))
		txt := m.G.TraceString()
		g2, err := graph.ParseTrace(strings.NewReader(txt))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(g2.Nodes) != len(m.G.Nodes) {
			t.Fatalf("%s: trace round-trip lost nodes", name)
		}
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	for _, name := range Names() {
		cfg := DefaultConfig(name, 32)
		if cfg.Batch != 32 || cfg.SeqLen <= 0 || cfg.Hidden <= 0 || cfg.Vocab <= 0 {
			t.Fatalf("%s: bad default config %+v", name, cfg)
		}
		if !cfg.Backward || !cfg.Embedding {
			t.Fatalf("%s: defaults should enable backward+embedding", name)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown model accepted")
			}
		}()
		DefaultConfig("nope", 8)
	}()
}

func TestSGDTrainingConvergesTiny(t *testing.T) {
	// End-to-end sanity: a few SGD steps on the tiny SCRNN reduce loss.
	m := SCRNN(TinyConfig("scrnn", 2))
	inputs := m.MakeInputs(5)
	params := m.G.InitialParams()
	first := m.G.Run(inputs, params)[m.G.Loss].Data()[0]
	var last float64
	for i := 0; i < 10; i++ {
		env := m.G.Run(inputs, params)
		last = env[m.G.Loss].Data()[0]
		applySGD(m.G, env, params, 0.5)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func applySGD(g *graph.Graph, env graph.Env, params graph.Env, lr float64) {
	for _, p := range g.Params {
		gv, ok := g.Grads[p]
		if !ok {
			continue
		}
		pd, gd := params[p].Data(), env[gv].Data()
		for i := range pd {
			pd[i] -= lr * gd[i]
		}
	}
}

func TestMakeInputsWithinVocab(t *testing.T) {
	m := StackedLSTM(TinyConfig("stackedlstm", 2))
	env := m.MakeInputs(9)
	for _, id := range m.IDs {
		for _, v := range env[id].Data() {
			if v < 0 || int(v) >= m.Cfg.Vocab {
				t.Fatalf("id %v out of vocab", v)
			}
		}
	}
	for _, v := range env[m.Targets].Data() {
		if v < 0 || int(v) >= m.Cfg.Vocab {
			t.Fatalf("target %v out of vocab", v)
		}
	}
	_ = tensor.Shape{}
}
