package models

import (
	"fmt"

	"astra/internal/graph"
	"astra/internal/tensor"
)

func init() {
	registry["rhn"] = RHN
	registry["attlstm"] = AttLSTM
}

// RHN builds a Recurrent Highway Network (Zilly et al. [39]) — one of the
// long-tail cells the paper's introduction lists as exactly the kind of
// novel architecture cuDNN will never cover. Each timestep pushes the
// state through Depth highway micro-layers:
//
//	h' = t ⊙ g + (1 − t) ⊙ h
//	t  = sigmoid(x W_t [first layer only] + h R_t + b_t)
//	g  = tanh   (x W_g [first layer only] + h R_g + b_g)
func RHN(cfg Config) *Model {
	depth := cfg.Layers
	if depth <= 0 {
		depth = 3
	}
	m := &Model{Name: "rhn", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 606)

	xs := inputsFor(m, b, rng, "", cfg.SeqLen)
	wt := m.G.Param("rhn.Wt", tensor.Randn(rng, 0.08, cfg.Embed, cfg.Hidden))
	wg := m.G.Param("rhn.Wg", tensor.Randn(rng, 0.08, cfg.Embed, cfg.Hidden))
	rt := make([]*graph.Value, depth)
	rg := make([]*graph.Value, depth)
	bt := make([]*graph.Value, depth)
	bg := make([]*graph.Value, depth)
	for l := 0; l < depth; l++ {
		rt[l] = m.G.Param(fmt.Sprintf("rhn.Rt%d", l), tensor.Randn(rng, 0.08, cfg.Hidden, cfg.Hidden))
		rg[l] = m.G.Param(fmt.Sprintf("rhn.Rg%d", l), tensor.Randn(rng, 0.08, cfg.Hidden, cfg.Hidden))
		bt[l] = m.G.Param(fmt.Sprintf("rhn.bt%d", l), tensor.Randn(rng, 0.08, 1, cfg.Hidden))
		bg[l] = m.G.Param(fmt.Sprintf("rhn.bg%d", l), tensor.Randn(rng, 0.08, 1, cfg.Hidden))
	}

	h := zeroState(m.G, "h0", cfg.Batch, cfg.Hidden)
	var tops []*graph.Value
	for t := 0; t < cfg.SeqLen; t++ {
		t := t
		for l := 0; l < depth; l++ {
			l := l
			b.InScope(fmt.Sprintf("rhn.hw%d", l), func() {
				b.AtStep(t, func() {
					tPre := b.MatMul(h, rt[l])
					gPre := b.MatMul(h, rg[l])
					if l == 0 {
						tPre = b.Add(tPre, b.MatMul(xs[t], wt))
						gPre = b.Add(gPre, b.MatMul(xs[t], wg))
					}
					tGate := b.Sigmoid(b.AddBias(tPre, bt[l]))
					g := b.Tanh(b.AddBias(gPre, bg[l]))
					// h' = t⊙g + (1−t)⊙h, spelled naively: t⊙g + h − t⊙h.
					h = b.Add(b.Mul(tGate, g), b.Sub(h, b.Mul(tGate, h)))
				})
			})
		}
		tops = append(tops, h)
	}
	emitLMHead(m, b, rng, tops)
	return finish(m)
}

// AttLSTM builds an LSTM with an attention module over its own previous
// hidden states (Wu et al. [35]'s attention applied to a language model) —
// another intro-listed long-tail structure: the LSTM body alone would be
// cuDNN-coverable, but the per-step attention chain is not, so the fused
// library kernel cannot be used for the whole model.
func AttLSTM(cfg Config) *Model {
	const window = 8 // attention looks back over the last `window` states
	m := &Model{Name: "attlstm", Cfg: cfg, G: graph.New()}
	b := graph.NewBuilder(m.G)
	rng := tensor.NewRNG(cfg.Seed + 707)

	xs := inputsFor(m, b, rng, "", cfg.SeqLen)
	p := newLSTMParams(m.G, rng, "attcell", cfg.Embed, cfg.Hidden)
	watt := m.G.Param("att.W", tensor.Randn(rng, 0.08, cfg.Hidden, window))
	wc := m.G.Param("att.Wc", tensor.Randn(rng, 0.08, 2*cfg.Hidden, cfg.Hidden))

	h := zeroState(m.G, "h0", cfg.Batch, cfg.Hidden)
	c := zeroState(m.G, "c0", cfg.Batch, cfg.Hidden)
	var history []*graph.Value
	var tops []*graph.Value
	for t := 0; t < cfg.SeqLen; t++ {
		t := t
		b.InScope("attcell", func() {
			b.AtStep(t, func() {
				h, c = lstmCell(b, p, xs[t], h, c)
			})
		})
		history = append(history, h)
		out := h
		if t >= 1 {
			lo := len(history) - 1 - window
			if lo < 0 {
				lo = 0
			}
			past := history[lo : len(history)-1]
			b.InScope("att", func() {
				b.AtStep(t, func() {
					scores := b.Softmax(b.SliceCols(b.MatMul(h, watt), 0, len(past)))
					var ctx *graph.Value
					for i, ph := range past {
						w := b.SliceCols(scores, i, i+1)
						term := b.ScaleCols(ph, w)
						if ctx == nil {
							ctx = term
						} else {
							ctx = b.Add(ctx, term)
						}
					}
					out = b.Tanh(b.MatMul(b.ConcatCols(h, ctx), wc))
				})
			})
		}
		tops = append(tops, out)
	}
	emitLMHead(m, b, rng, tops)
	return finish(m)
}
