// Package models builds the training graphs of the five models evaluated
// in the paper (§6.1): SC-RNN, MI-LSTM, subLSTM, the PTB stacked LSTM
// ("large" configuration), and a GNMT-style encoder/decoder with attention.
//
// The models are written the way a researcher would write them in PyTorch:
// one GEMM per gate, explicit elementwise cell math, a Python-ish module
// scope per layer, per-timestep unrolling. No manual fusion — producing
// exactly the long-tail graphs whose optimization Astra automates. The
// backward pass comes from package autodiff, as in a real framework.
package models

import (
	"fmt"
	"sort"

	"astra/internal/autodiff"
	"astra/internal/graph"
	"astra/internal/tensor"
)

// Config sizes a model build.
type Config struct {
	Batch  int
	SeqLen int
	Hidden int
	Embed  int
	Vocab  int
	Layers int // stacked/GNMT layer count (per direction for GNMT)
	// Embedding selects token-id inputs through an embedding table; the
	// XLA comparison (§6.6) uses Embedding=false variants where the
	// per-step inputs are dense tensors.
	Embedding bool
	// Backward appends the autodiff backward pass (on by default through
	// Build; disable for forward-only studies).
	Backward bool
	Seed     uint64
}

// Model is a built training graph plus the handles needed to feed it.
type Model struct {
	Name string
	Cfg  Config
	G    *graph.Graph

	// IDs holds the per-timestep token-id inputs when Cfg.Embedding; Xs
	// holds the per-timestep dense inputs otherwise. For GNMT both the
	// encoder and decoder sequences are included (encoder first).
	IDs []*graph.Value
	Xs  []*graph.Value
	// Targets is the [rows,1] class-id input of the final cross-entropy.
	Targets *graph.Value
}

// Builder constructs a model graph from a config.
type Builder func(Config) *Model

var registry = map[string]Builder{
	"scrnn":       SCRNN,
	"milstm":      MILSTM,
	"sublstm":     SubLSTM,
	"stackedlstm": StackedLSTM,
	"gnmt":        GNMT,
}

// Names returns the registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the builder for a registered model name.
func Get(name string) (Builder, bool) {
	b, ok := registry[name]
	return b, ok
}

// DefaultConfig returns the evaluation-scale configuration for a model at a
// given mini-batch size, mirroring §6.1: PTB vocabulary for SC-RNN,
// subLSTM and the stacked LSTM; the Hutter character vocabulary for
// MI-LSTM; the stacked LSTM uses the "large" 1500-unit configuration.
func DefaultConfig(name string, batch int) Config {
	switch name {
	case "scrnn":
		return Config{Batch: batch, SeqLen: 35, Hidden: 512, Embed: 256, Vocab: 10000, Embedding: true, Backward: true}
	case "milstm":
		return Config{Batch: batch, SeqLen: 32, Hidden: 2048, Embed: 256, Vocab: 205, Embedding: true, Backward: true}
	case "sublstm":
		return Config{Batch: batch, SeqLen: 35, Hidden: 650, Embed: 256, Vocab: 10000, Embedding: true, Backward: true}
	case "stackedlstm":
		return Config{Batch: batch, SeqLen: 35, Hidden: 1500, Embed: 1500, Vocab: 10000, Layers: 2, Embedding: true, Backward: true}
	case "gnmt":
		return Config{Batch: batch, SeqLen: 18, Hidden: 512, Embed: 512, Vocab: 12000, Layers: 4, Embedding: true, Backward: true}
	case "rhn":
		return Config{Batch: batch, SeqLen: 35, Hidden: 830, Embed: 256, Vocab: 10000, Layers: 3, Embedding: true, Backward: true}
	case "attlstm":
		return Config{Batch: batch, SeqLen: 35, Hidden: 1000, Embed: 512, Vocab: 10000, Embedding: true, Backward: true}
	default:
		panic(fmt.Sprintf("models: no default config for %q", name))
	}
}

// TinyConfig returns a small configuration of the same structure, used by
// value-preservation tests where graphs are executed on the CPU oracle.
func TinyConfig(name string, batch int) Config {
	c := DefaultConfig(name, batch)
	c.SeqLen = 4
	c.Hidden = 8
	c.Embed = 8
	c.Vocab = 11
	if c.Layers > 2 {
		c.Layers = 2
	}
	return c
}

// finish validates the graph and appends the backward pass if requested.
func finish(m *Model) *Model {
	if err := m.G.Validate(); err != nil {
		panic(fmt.Sprintf("models: %s invalid: %v", m.Name, err))
	}
	if m.Cfg.Backward {
		if _, err := autodiff.Backward(m.G); err != nil {
			panic(fmt.Sprintf("models: %s backward: %v", m.Name, err))
		}
	}
	return m
}

// MakeInputs synthesizes a deterministic mini-batch: token ids (or dense
// inputs) and targets drawn from the given seed. The values never affect
// timing (§4.1) but do drive the value-preservation oracle.
//
// Inputs are classified by how the graph consumes them, so it also works
// for custom models built through the public API: an input feeding a
// lookup's id slot or a cross-entropy's target slot gets class ids bounded
// by the consumer's table/logit width; everything else gets dense noise.
func (m *Model) MakeInputs(seed uint64) graph.Env {
	rng := tensor.NewRNG(seed | 1)
	env := graph.Env{}
	cons := m.G.Consumers()
	for _, in := range m.G.Inputs {
		bound := 0
		for _, n := range cons[in] {
			switch {
			case n.Op == graph.OpLookup && n.Inputs[1] == in:
				if b := n.Inputs[0].Shape.Rows(); bound == 0 || b < bound {
					bound = b
				}
			case (n.Op == graph.OpCrossEntropy || n.Op == graph.OpCrossEntropyGrad) && n.Inputs[1] == in:
				// Loss targets are a fixed function of the row index (not
				// of the seed): across fresh mini-batches the task stays
				// learnable, so SGD tests can watch the loss fall.
				t := tensor.New(in.Shape...)
				cols := n.Inputs[0].Shape.Cols()
				for i := range t.Data() {
					t.Data()[i] = float64((i * 131) % cols)
				}
				env[in] = t
				bound = -1
			case n.Op == graph.OpLookupGrad && n.Inputs[0] == in:
				if b := n.Attr.N; bound == 0 || b < bound {
					bound = b
				}
			}
		}
		switch {
		case bound == -1:
			// already bound above (loss targets)
		case bound > 0:
			t := tensor.New(in.Shape...)
			for i := range t.Data() {
				t.Data()[i] = float64(rng.Intn(bound))
			}
			env[in] = t
		default:
			env[in] = tensor.Randn(rng, 0.5, in.Shape...)
		}
	}
	return env
}

// inputsFor declares the per-timestep inputs for a sequence of length T
// under the given scope prefix and returns the dense x_t values, creating
// an embedding table + lookups when cfg.Embedding is set.
func inputsFor(m *Model, b *graph.Builder, rng *tensor.RNG, prefix string, T int) []*graph.Value {
	cfg := m.Cfg
	xs := make([]*graph.Value, T)
	if cfg.Embedding {
		table := m.G.Param(prefix+"emb", tensor.Randn(rng, 0.1, cfg.Vocab, cfg.Embed))
		for t := 0; t < T; t++ {
			ids := m.G.Input(fmt.Sprintf("%sids%d", prefix, t), cfg.Batch, 1)
			m.IDs = append(m.IDs, ids)
			tt := t
			b.InScope("embed", func() {
				b.AtStep(tt, func() {
					xs[tt] = b.Lookup(table, ids)
				})
			})
		}
		return xs
	}
	for t := 0; t < T; t++ {
		x := m.G.Input(fmt.Sprintf("%sx%d", prefix, t), cfg.Batch, cfg.Embed)
		m.Xs = append(m.Xs, x)
		xs[t] = x
	}
	return xs
}

// zeroState returns a constant zero matrix used as the initial hidden and
// cell state.
func zeroState(g *graph.Graph, name string, rows, cols int) *graph.Value {
	return g.Const(name, tensor.New(rows, cols))
}
