// Package profile implements Astra's profile index (§4.6 of the paper):
// a measurement store keyed by mangled strings that encode both the
// adaptive variable being measured and the higher-level context it was
// measured under.
//
// The key mangling is the mechanism that controls re-exploration: when the
// custom-wirer explores a different binding of a higher-level policy (say a
// different memory-allocation strategy), the context prefix changes, the
// lookup misses, and exactly the dependent measurements are re-taken —
// nothing else.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"astra/internal/obs"
)

// Key is a mangled (context, variable, choice) identifier.
type Key string

// K builds a key from a context prefix, a variable ID and a choice label.
// Components are joined with separators that never appear in IDs produced
// by the enumerator, so keys are unambiguous.
func K(context, varID, choice string) Key {
	return Key(context + "#" + varID + "=" + choice)
}

// Measurement is one profiled data point.
type Measurement struct {
	ValueUs float64
	Trial   int // the exploration trial that produced it
}

// Index stores measurements and serves the custom-wirer's lookups.
type Index struct {
	m      map[Key]Measurement
	hits   int
	misses int
	trial  int

	// Optional telemetry, attached by Instrument.
	mHits   *obs.Counter
	mMisses *obs.Counter
	mSize   *obs.Gauge
}

// Instrument attaches a metrics registry: Has updates profile.hits /
// profile.misses, and Record keeps profile.index_size current.
func (ix *Index) Instrument(reg *obs.Registry) {
	ix.mHits = reg.Counter("profile.hits", "profile index lookups that hit")
	ix.mMisses = reg.Counter("profile.misses", "profile index lookups that missed")
	ix.mSize = reg.Gauge("profile.index_size", "measurements stored in the profile index")
	ix.mSize.Set(float64(len(ix.m)))
}

// NewIndex returns an empty profile index.
func NewIndex() *Index { return &Index{m: make(map[Key]Measurement)} }

// SetTrial tags subsequent recordings with the current exploration trial.
func (ix *Index) SetTrial(t int) { ix.trial = t }

// Record stores a measurement unless the key is already present: thanks to
// mini-batch predictability a configuration needs to be measured only once
// (§4.1), so the first measurement wins.
func (ix *Index) Record(k Key, us float64) {
	if _, ok := ix.m[k]; ok {
		return
	}
	ix.m[k] = Measurement{ValueUs: us, Trial: ix.trial}
	if ix.mSize != nil {
		ix.mSize.Set(float64(len(ix.m)))
	}
}

// Has reports whether the key has been measured. It counts toward the
// hit/miss statistics.
func (ix *Index) Has(k Key) bool {
	_, ok := ix.m[k]
	if ok {
		ix.hits++
		if ix.mHits != nil {
			ix.mHits.Inc()
		}
	} else {
		ix.misses++
		if ix.mMisses != nil {
			ix.mMisses.Inc()
		}
	}
	return ok
}

// Lookup returns the measurement for k.
func (ix *Index) Lookup(k Key) (Measurement, bool) {
	m, ok := ix.m[k]
	return m, ok
}

// Best returns the choice with the minimum measured value among the given
// labels for (context, varID). ok is false if none are measured.
func (ix *Index) Best(context, varID string, labels []string) (best int, us float64, ok bool) {
	us = 0
	best = -1
	for i, l := range labels {
		m, found := ix.m[K(context, varID, l)]
		if !found {
			continue
		}
		if best < 0 || m.ValueUs < us {
			best, us = i, m.ValueUs
		}
	}
	return best, us, best >= 0
}

// Len returns the number of stored measurements.
func (ix *Index) Len() int { return len(ix.m) }

// HitRate returns hits/(hits+misses) of Has queries; tests use it to verify
// that context changes invalidate exactly the dependent entries.
func (ix *Index) HitRate() float64 {
	tot := ix.hits + ix.misses
	if tot == 0 {
		return 0
	}
	return float64(ix.hits) / float64(tot)
}

// Dump renders the index sorted by key, for reports and debugging.
func (ix *Index) Dump() string {
	keys := make([]string, 0, len(ix.m))
	for k := range ix.m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s -> %.3fus (trial %d)\n", k, ix.m[Key(k)].ValueUs, ix.m[Key(k)].Trial)
	}
	return b.String()
}

// snapshot is the serialized form of the index.
type snapshot struct {
	Entries map[string]Measurement `json:"entries"`
}

// Save serializes the index as JSON. A saved index warm-starts a later
// session of the same job: the enumerator is deterministic, so the keys
// line up and exploration resumes (or completes) instantly — the
// profile-index analogue of a compilation cache.
func (ix *Index) Save(w io.Writer) error {
	snap := snapshot{Entries: make(map[string]Measurement, len(ix.m))}
	for k, v := range ix.m {
		snap.Entries[string(k)] = v
	}
	return json.NewEncoder(w).Encode(&snap)
}

// Load replaces the index contents from a Save'd snapshot. Query
// statistics and the trial tag are reset: hits and misses accumulated
// before the snapshot was loaded belong to a different session, and keeping
// them would corrupt warm-start hit-rate reporting.
func (ix *Index) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("profile: load: %w", err)
	}
	ix.m = make(map[Key]Measurement, len(snap.Entries))
	for k, v := range snap.Entries {
		ix.m[Key(k)] = v
	}
	ix.hits, ix.misses, ix.trial = 0, 0, 0
	if ix.mSize != nil {
		ix.mSize.Set(float64(len(ix.m)))
	}
	return nil
}
