// Package profile implements Astra's profile index (§4.6 of the paper):
// a measurement store keyed by mangled strings that encode both the
// adaptive variable being measured and the higher-level context it was
// measured under.
//
// The key mangling is the mechanism that controls re-exploration: when the
// custom-wirer explores a different binding of a higher-level policy (say a
// different memory-allocation strategy), the context prefix changes, the
// lookup misses, and exactly the dependent measurements are re-taken —
// nothing else.
//
// The paper's §4.1 "one measurement suffices" assumption holds only with
// the GPU clock pinned. To stay robust on a noisy device the index stores
// multi-sample statistics per key (count, mean, variance via Welford's
// algorithm) and a SamplePolicy decides when a key counts as measured —
// the default FixedSamples(1) policy reproduces the paper's single-sample
// behaviour exactly.
package profile

import (
	"encoding/json"
	"fmt"
	"hash/maphash"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"astra/internal/obs"
)

// Key is a mangled (context, variable, choice) identifier.
type Key string

// K builds a key from a context prefix, a variable ID and a choice label.
// Components are joined with separators that never appear in IDs produced
// by the enumerator, so keys are unambiguous.
func K(context, varID, choice string) Key {
	return Key(context + "#" + varID + "=" + choice)
}

// Parts splits a key back into its context, variable ID and choice label —
// the inverse of K. Eviction uses it to find every context a variable was
// measured under.
func (k Key) Parts() (context, varID, choice string) {
	s := string(k)
	i := strings.Index(s, "#")
	if i < 0 {
		return "", "", s
	}
	context, s = s[:i], s[i+1:]
	j := strings.Index(s, "=")
	if j < 0 {
		return context, s, ""
	}
	return context, s[:j], s[j+1:]
}

// Measurement is the single-value view of a profiled key: the sample mean
// and the trial of the first sample. Callers that only need a point
// estimate (reports, Best) keep using it; Stats carries the full record.
type Measurement struct {
	ValueUs float64
	Trial   int // the exploration trial that produced the first sample
}

// Stats is the per-key multi-sample record: Welford running statistics over
// every sample observed for the key.
type Stats struct {
	// Count is the number of samples recorded.
	Count int
	// Mean is the running sample mean (µs).
	Mean float64
	// M2 is the running sum of squared deviations (Welford); variance
	// derives from it without catastrophic cancellation.
	M2 float64
	// Trial is the exploration trial of the first sample.
	Trial int
}

// Variance returns the unbiased sample variance (0 below two samples).
func (s Stats) Variance() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.M2 / float64(s.Count-1)
}

// StdDev returns the sample standard deviation.
func (s Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CIHalfWidthUs returns the half-width of the ~95% confidence interval of
// the mean (1.96 standard errors; 0 below two samples).
func (s Stats) CIHalfWidthUs() float64 {
	if s.Count < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.Count))
}

// SamplePolicy decides when a key's statistics suffice to treat the key as
// measured. Has reports true — and Record stops accepting samples — only
// once the policy is satisfied, so the explorer keeps a variable recording
// until enough evidence accumulates.
type SamplePolicy interface {
	Satisfied(s Stats) bool
	String() string
}

// FixedSamples is satisfied after N samples. FixedSamples(1) is the
// paper's §4.1 single-measurement regime and the default policy.
type FixedSamples int

// Satisfied implements SamplePolicy.
func (n FixedSamples) Satisfied(s Stats) bool {
	need := int(n)
	if need < 1 {
		need = 1
	}
	return s.Count >= need
}

// String names the policy for reports.
func (n FixedSamples) String() string { return fmt.Sprintf("fixed(%d)", int(n)) }

// CIPolicy is satisfied once the 95% confidence interval of the mean is
// within RelWidth of the mean — tight keys converge fast, noisy keys keep
// sampling — bounded below by MinSamples (default 2) and above by
// MaxSamples (default 8).
type CIPolicy struct {
	// RelWidth is the target CI half-width as a fraction of the mean.
	RelWidth float64
	// MinSamples and MaxSamples bound the per-key sample count.
	MinSamples int
	MaxSamples int
}

// Satisfied implements SamplePolicy.
func (p CIPolicy) Satisfied(s Stats) bool {
	min := p.MinSamples
	if min < 2 {
		min = 2
	}
	if s.Count < min {
		return false
	}
	max := p.MaxSamples
	if max <= 0 {
		max = 8
	}
	if s.Count >= max {
		return true
	}
	if s.Mean == 0 {
		return true
	}
	return s.CIHalfWidthUs() <= p.RelWidth*math.Abs(s.Mean)
}

// String names the policy for reports.
func (p CIPolicy) String() string {
	return fmt.Sprintf("ci(rel=%.2f,min=%d,max=%d)", p.RelWidth, p.MinSamples, p.MaxSamples)
}

// interned is the process-wide canonical-string table: every key stored in
// any index goes through it, so concurrent episodes measuring the same
// (context, variable, choice) signatures share one backing string instead
// of retaining a per-episode copy each.
var interned sync.Map // string -> string

// Intern returns the canonical copy of s. The first caller's copy wins;
// later equal strings resolve to it and their own allocation becomes
// garbage immediately instead of being retained by a long-lived index.
//
//astra:hotpath
func Intern(s string) string {
	if c, ok := interned.Load(s); ok { // lint:ok hotpath sync.Map key boxing, traded for index-wide string dedup
		return c.(string)
	}
	c, _ := interned.LoadOrStore(s, s) // lint:ok hotpath first-sighting slow path, once per distinct key
	return c.(string)
}

// numShards stripes the index: keys hash onto independent mutexes so
// concurrent exploration episodes sharing one store do not serialize on a
// single lock. 64 shards keeps contention negligible for any plausible
// GOMAXPROCS while the per-index footprint stays small.
const numShards = 64

// shardSeed is the maphash seed for key→shard assignment. It is per-process
// random, which is safe: shard choice never affects observable behaviour
// (all iteration goes through sorted snapshots), only lock distribution.
var shardSeed = maphash.MakeSeed()

type shard struct {
	mu sync.Mutex
	m  map[Key]Stats
}

// Index stores measurements and serves the custom-wirer's lookups. It is
// safe for concurrent use: the key space is striped across independent
// mutexes and the query/progress counters are atomics, so concurrent
// exploration episodes can share one store (cross-episode profile reuse)
// while each episode's own lookups stay exact.
type Index struct {
	shards   [numShards]shard
	pol      atomic.Pointer[polBox]
	loadMode atomic.Int32 // LoadMode Load obeys (default LoadReplace)
	hits     atomic.Int64
	misses   atomic.Int64
	trial    atomic.Int64
	samples  atomic.Int64 // samples recorded this session (the explorer's progress signal)
	size     atomic.Int64 // stored keys, maintained on insert/evict/load

	// Optional telemetry, attached by Instrument.
	mHits    *obs.Counter
	mMisses  *obs.Counter
	mSize    *obs.Gauge
	mSamples *obs.Counter
}

// polBox wraps the policy interface so it can live in an atomic.Pointer.
type polBox struct{ p SamplePolicy }

// shardFor hashes a key onto its stripe.
//
//astra:hotpath
func (ix *Index) shardFor(k Key) *shard {
	return &ix.shards[maphash.String(shardSeed, string(k))%numShards]
}

// Instrument attaches a metrics registry: Has updates profile.hits /
// profile.misses, and Record keeps profile.index_size and profile.samples
// current.
func (ix *Index) Instrument(reg *obs.Registry) {
	ix.mHits = reg.Counter("profile.hits", "profile index lookups that hit")
	ix.mMisses = reg.Counter("profile.misses", "profile index lookups that missed")
	ix.mSize = reg.Gauge("profile.index_size", "measurements stored in the profile index")
	ix.mSamples = reg.Counter("profile.samples", "samples recorded into the profile index")
	ix.mSize.Set(float64(ix.size.Load()))
}

// NewIndex returns an empty profile index with the default single-sample
// policy.
func NewIndex() *Index {
	ix := &Index{}
	for i := range ix.shards {
		ix.shards[i].m = make(map[Key]Stats)
	}
	return ix
}

// SetPolicy installs the sample policy (nil restores the default
// FixedSamples(1)). Set it before exploration starts: the policy is part of
// what "measured" means.
func (ix *Index) SetPolicy(p SamplePolicy) {
	if p == nil {
		ix.pol.Store(nil)
		return
	}
	ix.pol.Store(&polBox{p: p})
}

// Policy returns the active sample policy.
func (ix *Index) Policy() SamplePolicy {
	if b := ix.pol.Load(); b != nil {
		return b.p
	}
	return FixedSamples(1)
}

// SetTrial tags subsequent recordings with the current exploration trial.
func (ix *Index) SetTrial(t int) { ix.trial.Store(int64(t)) }

// Record folds a sample into the key's statistics. Once the sample policy
// is satisfied further samples are ignored: under the default
// FixedSamples(1) policy this is exactly the paper's first-measurement-wins
// rule (§4.1 — mini-batch predictability makes one measurement suffice).
//
//astra:hotpath
func (ix *Index) Record(k Key, us float64) {
	pol := ix.Policy()
	sh := ix.shardFor(k)
	sh.mu.Lock()
	st, ok := sh.m[k]
	if ok && pol.Satisfied(st) {
		sh.mu.Unlock()
		return
	}
	if !ok {
		st = Stats{Trial: int(ix.trial.Load())}
		ix.size.Add(1)
	}
	st.Count++
	d := us - st.Mean
	st.Mean += d / float64(st.Count)
	st.M2 += d * (us - st.Mean)
	sh.m[Key(Intern(string(k)))] = st
	sh.mu.Unlock()
	ix.samples.Add(1)
	if ix.mSamples != nil {
		ix.mSamples.Inc()
	}
	if ix.mSize != nil {
		ix.mSize.Set(float64(ix.size.Load()))
	}
}

// get returns the current statistics for k under the shard lock.
//
//astra:hotpath
func (ix *Index) get(k Key) (Stats, bool) {
	sh := ix.shardFor(k)
	sh.mu.Lock()
	st, ok := sh.m[k]
	sh.mu.Unlock()
	return st, ok
}

// Has reports whether the key counts as measured — present and with enough
// samples to satisfy the policy. It counts toward the hit/miss statistics.
//
//astra:hotpath
func (ix *Index) Has(k Key) bool {
	st, ok := ix.get(k)
	measured := ok && ix.Policy().Satisfied(st)
	if measured {
		ix.hits.Add(1)
		if ix.mHits != nil {
			ix.mHits.Inc()
		}
	} else {
		ix.misses.Add(1)
		if ix.mMisses != nil {
			ix.mMisses.Inc()
		}
	}
	return measured
}

// Lookup returns the point-estimate view of k (the sample mean), present or
// not yet policy-satisfied alike.
func (ix *Index) Lookup(k Key) (Measurement, bool) {
	st, ok := ix.get(k)
	if !ok {
		return Measurement{}, false
	}
	return Measurement{ValueUs: st.Mean, Trial: st.Trial}, true
}

// LookupStats returns the full multi-sample record for k.
func (ix *Index) LookupStats(k Key) (Stats, bool) {
	return ix.get(k)
}

// SampleCount returns the number of samples recorded for k.
func (ix *Index) SampleCount(k Key) int {
	st, _ := ix.get(k)
	return st.Count
}

// Samples returns the total number of samples recorded this session. Unlike
// Len it grows while a key is re-sampled, which is what the explorer's
// progress guard watches.
func (ix *Index) Samples() int { return int(ix.samples.Load()) }

// better reports whether a beats b as the frozen choice. The primary order
// is the sample mean; when the means are statistically indistinguishable
// (overlapping ~95% confidence intervals) the lower upper-confidence-bound
// wins, so a consistently-fast choice beats one lucky sample. With
// single-sample statistics both intervals are empty and the comparison
// degenerates to the strict mean order of the seed implementation.
func better(a, b Stats) bool {
	if math.Abs(a.Mean-b.Mean) <= a.CIHalfWidthUs()+b.CIHalfWidthUs() {
		ua, ub := a.Mean+a.CIHalfWidthUs(), b.Mean+b.CIHalfWidthUs()
		if ua != ub {
			return ua < ub
		}
		return a.Mean < b.Mean
	}
	return a.Mean < b.Mean
}

// Best returns the winning choice among the given labels for (context,
// varID): lowest mean, with near-ties broken by confidence interval (see
// better). ok is false if none are measured.
func (ix *Index) Best(context, varID string, labels []string) (best int, us float64, ok bool) {
	best = -1
	var bs Stats
	for i, l := range labels {
		st, found := ix.get(K(context, varID, l))
		if !found {
			continue
		}
		if best < 0 || better(st, bs) {
			best, bs = i, st
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bs.Mean, true
}

// EvictPrefix removes every measurement whose key starts with the given
// context prefix and returns the number of entries removed. A fleet store
// that namespaces each job's keys under a job-signature base context (see
// wire.SessionConfig.ProfileContext) evicts a whole job's knowledge with one
// call when the store crosses its memory ceiling. Callers must pick prefixes
// that cannot alias across jobs (e.g. signatures with a terminator).
func (ix *Index) EvictPrefix(prefix string) int {
	if prefix == "" {
		return 0
	}
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if strings.HasPrefix(string(k), prefix) {
				delete(sh.m, k)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		ix.size.Add(int64(-n))
		if ix.mSize != nil {
			ix.mSize.Set(float64(ix.size.Load()))
		}
	}
	return n
}

// EvictVar removes every measurement of varID across all contexts and
// returns the number of entries removed. Thawing a variable evicts its
// entries so the explorer re-measures it; entries of later siblings
// invalidate on their own through the context mangling once the thawed
// variable re-freezes to a different choice.
func (ix *Index) EvictVar(varID string) int {
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if _, v, _ := k.Parts(); v == varID {
				delete(sh.m, k)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		ix.size.Add(int64(-n))
		if ix.mSize != nil {
			ix.mSize.Set(float64(ix.size.Load()))
		}
	}
	return n
}

// Len returns the number of stored measurements.
func (ix *Index) Len() int { return int(ix.size.Load()) }

// HitRate returns hits/(hits+misses) of Has queries; tests use it to verify
// that context changes invalidate exactly the dependent entries.
func (ix *Index) HitRate() float64 {
	h, m := ix.hits.Load(), ix.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// snapshot copies every stored (key, stats) pair. Iteration-order
// independence is the caller's job (sort, or a keyed map).
func (ix *Index) snapshot() map[Key]Stats {
	out := make(map[Key]Stats, ix.Len())
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		for k, st := range sh.m {
			out[k] = st
		}
		sh.mu.Unlock()
	}
	return out
}

// Entry is one stored (key, statistics) pair of a sorted snapshot.
type Entry struct {
	Key   Key
	Stats Stats
}

// Entries returns a point-in-time copy of every stored measurement, sorted
// by key. Bulk consumers that must stay deterministic regardless of shard
// layout — cost-model training over a fleet store, audits, exports — iterate
// this instead of the shards.
func (ix *Index) Entries() []Entry {
	snap := ix.snapshot()
	out := make([]Entry, 0, len(snap))
	for k, st := range snap { // nodeterm:ok sorted below
		out = append(out, Entry{Key: k, Stats: st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Dump renders the index sorted by key, for reports and debugging.
func (ix *Index) Dump() string {
	snap := ix.snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		st := snap[Key(k)]
		if st.Count > 1 {
			fmt.Fprintf(&b, "%s -> %.3fus ±%.3f (n=%d, trial %d)\n", k, st.Mean, st.CIHalfWidthUs(), st.Count, st.Trial)
		} else {
			fmt.Fprintf(&b, "%s -> %.3fus (trial %d)\n", k, st.Mean, st.Trial)
		}
	}
	return b.String()
}

// snapshotVersion is the current serialized format. Version 2 added
// multi-sample statistics; version-0/1 files (no version field) hold one
// Measurement per key and load as single-sample statistics.
const snapshotVersion = 2

// snapshotEntry is the serialized per-key record of the v2 format.
type snapshotEntry struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2,omitempty"`
	Trial int     `json:"trial"`
}

type snapshotFile struct {
	Version int                      `json:"version"`
	Entries map[string]snapshotEntry `json:"entries"`
}

// legacyEntry matches the pre-versioning single-sample snapshot format
// (Measurement serialized with Go's default field names).
type legacyEntry struct {
	ValueUs float64 `json:"ValueUs"`
	Trial   int     `json:"Trial"`
}

// Save serializes the index as versioned JSON. A saved index warm-starts a
// later session of the same job: the enumerator is deterministic, so the
// keys line up and exploration resumes (or completes) instantly — the
// profile-index analogue of a compilation cache.
func (ix *Index) Save(w io.Writer) error {
	m := ix.snapshot()
	snap := snapshotFile{Version: snapshotVersion, Entries: make(map[string]snapshotEntry, len(m))}
	for k, st := range m {
		snap.Entries[string(k)] = snapshotEntry{Count: st.Count, Mean: st.Mean, M2: st.M2, Trial: st.Trial}
	}
	return json.NewEncoder(w).Encode(&snap)
}

// LoadMode selects how Load treats the index's existing contents and
// session counters.
type LoadMode int32

// Load modes.
const (
	// LoadReplace is the historical behaviour: the snapshot replaces the
	// contents wholesale and the query statistics, session sample counter
	// and trial tag reset — right for a fresh session warm-starting from a
	// file, where pre-load counters belong to a different session.
	LoadReplace LoadMode = iota
	// LoadMerge folds the snapshot into the live contents instead: keys
	// already present keep their statistics (first-measurement-wins, like
	// Record), only absent keys are inserted, and the hit/miss/sample/trial
	// counters are preserved. A long-running server importing fleet
	// snapshots mid-run must use this mode — under LoadReplace an import
	// would silently zero the fleet's hit-rate metrics and discard every
	// measurement recorded since the snapshot was taken.
	LoadMerge
)

// SetLoadMode installs the mode subsequent Load calls obey (default
// LoadReplace, the historical behaviour).
func (ix *Index) SetLoadMode(m LoadMode) { ix.loadMode.Store(int32(m)) }

// Load installs a Save'd snapshot, accepting both the current multi-sample
// format and legacy single-sample saves (which load as one-sample
// statistics). Under the default LoadReplace mode the snapshot replaces the
// contents and resets the query statistics, session sample counter and
// trial tag — counters accumulated before the load belong to a different
// session, and keeping them would corrupt warm-start reporting and the
// explorer's progress guard. Under LoadMerge (SetLoadMode) the snapshot
// merges into the live contents and every counter is preserved.
func (ix *Index) Load(r io.Reader) error {
	var raw struct {
		Version int                        `json:"version"`
		Entries map[string]json.RawMessage `json:"entries"`
	}
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return fmt.Errorf("profile: load: %w", err)
	}
	if raw.Version > snapshotVersion {
		return fmt.Errorf("profile: load: snapshot version %d newer than supported %d", raw.Version, snapshotVersion)
	}
	m := make(map[Key]Stats, len(raw.Entries))
	for k, msg := range raw.Entries {
		if raw.Version >= 2 {
			var e snapshotEntry
			if err := json.Unmarshal(msg, &e); err != nil {
				return fmt.Errorf("profile: load: entry %q: %w", k, err)
			}
			count := e.Count
			if count < 1 {
				count = 1
			}
			m[Key(Intern(k))] = Stats{Count: count, Mean: e.Mean, M2: e.M2, Trial: e.Trial}
		} else {
			var e legacyEntry
			if err := json.Unmarshal(msg, &e); err != nil {
				return fmt.Errorf("profile: load: legacy entry %q: %w", k, err)
			}
			m[Key(Intern(k))] = Stats{Count: 1, Mean: e.ValueUs, Trial: e.Trial}
		}
	}
	if LoadMode(ix.loadMode.Load()) == LoadMerge {
		// Merge: live entries win (first-measurement-wins, matching
		// Record); counters stay — a live server's fleet statistics must
		// survive a snapshot import.
		added := 0
		for k, st := range m {
			sh := ix.shardFor(k)
			sh.mu.Lock()
			if _, ok := sh.m[k]; !ok {
				sh.m[k] = st
				added++
			}
			sh.mu.Unlock()
		}
		if added > 0 {
			ix.size.Add(int64(added))
		}
		if ix.mSize != nil {
			ix.mSize.Set(float64(ix.size.Load()))
		}
		return nil
	}
	// Replace contents wholesale: snapshot decode succeeded, so swap in the
	// new entries shard by shard. Size bookkeeping is delta-based so a
	// Record racing the load cannot strand the counter.
	delta := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		delta -= len(sh.m)
		sh.m = make(map[Key]Stats)
		sh.mu.Unlock()
	}
	for k, st := range m {
		sh := ix.shardFor(k)
		sh.mu.Lock()
		if _, ok := sh.m[k]; !ok {
			delta++
		}
		sh.m[k] = st
		sh.mu.Unlock()
	}
	ix.size.Add(int64(delta))
	ix.hits.Store(0)
	ix.misses.Store(0)
	ix.trial.Store(0)
	ix.samples.Store(0)
	if ix.mSize != nil {
		ix.mSize.Set(float64(ix.size.Load()))
	}
	return nil
}
