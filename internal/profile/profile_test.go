package profile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"astra/internal/obs"
)

func TestRecordOnce(t *testing.T) {
	ix := NewIndex()
	k := K("ctx", "var", "a")
	ix.SetTrial(3)
	ix.Record(k, 10)
	ix.SetTrial(4)
	ix.Record(k, 99) // predictable workload: first measurement wins
	m, ok := ix.Lookup(k)
	if !ok || m.ValueUs != 10 || m.Trial != 3 {
		t.Fatalf("Lookup = %+v, %v", m, ok)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestKeyManglingSeparatesContexts(t *testing.T) {
	// The same variable/choice under two allocation strategies must be two
	// distinct entries — this is the §4.6 invalidation mechanism.
	ix := NewIndex()
	ix.Record(K("/alloc=a0", "gemm3", "cublas"), 5)
	if ix.Has(K("/alloc=a1", "gemm3", "cublas")) {
		t.Fatal("context change should miss")
	}
	if !ix.Has(K("/alloc=a0", "gemm3", "cublas")) {
		t.Fatal("same context should hit")
	}
	if ix.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", ix.HitRate())
	}
}

func TestKeyUnambiguity(t *testing.T) {
	// No two distinct (ctx, var, choice) triples may collide.
	if K("a", "b", "c") == K("a#b", "", "c") || K("a", "b", "c") == K("a", "b=c", "") {
		t.Fatal("key mangling is ambiguous")
	}
}

func TestBest(t *testing.T) {
	ix := NewIndex()
	labels := []string{"cublas", "oai1", "oai2"}
	if _, _, ok := ix.Best("", "v", labels); ok {
		t.Fatal("Best on empty index")
	}
	ix.Record(K("", "v", "cublas"), 10)
	ix.Record(K("", "v", "oai1"), 7)
	best, us, ok := ix.Best("", "v", labels)
	if !ok || best != 1 || us != 7 {
		t.Fatalf("Best = %d/%v/%v", best, us, ok)
	}
	ix.Record(K("", "v", "oai2"), 3)
	best, us, _ = ix.Best("", "v", labels)
	if best != 2 || us != 3 {
		t.Fatalf("Best = %d/%v", best, us)
	}
}

func TestBestProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 || len(vals) > 20 {
			return true
		}
		ix := NewIndex()
		labels := make([]string, len(vals))
		minI, minV := 0, vals[0]
		for i, v := range vals {
			if v != v { // NaN breaks ordering; the wirer never produces it
				return true
			}
			labels[i] = string(rune('a' + i))
			ix.Record(K("c", "v", labels[i]), v)
			if v < minV {
				minI, minV = i, v
			}
		}
		best, us, ok := ix.Best("c", "v", labels)
		return ok && us == minV && vals[best] == minV && best <= minI+len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDump(t *testing.T) {
	ix := NewIndex()
	ix.Record(K("b", "v", "x"), 2)
	ix.Record(K("a", "v", "x"), 1)
	d := ix.Dump()
	if !strings.Contains(d, "a#v=x -> 1.000us") {
		t.Fatalf("Dump = %q", d)
	}
	if strings.Index(d, "a#v=x") > strings.Index(d, "b#v=x") {
		t.Fatal("Dump not sorted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := NewIndex()
	ix.SetTrial(7)
	ix.Record(K("ctx", "v", "a"), 12.5)
	ix.Record(K("", "w", "b"), 3)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2 := NewIndex()
	if err := ix2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 2 {
		t.Fatalf("Len = %d", ix2.Len())
	}
	m, ok := ix2.Lookup(K("ctx", "v", "a"))
	if !ok || m.ValueUs != 12.5 || m.Trial != 7 {
		t.Fatalf("Lookup = %+v %v", m, ok)
	}
	if err := ix2.Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHitRateResetAfterLoad(t *testing.T) {
	// Stats accumulated before a snapshot is loaded belong to a different
	// session; a warm-started index must report only its own queries.
	ix := NewIndex()
	ix.Record(K("", "v", "a"), 1)
	for i := 0; i < 10; i++ {
		ix.Has(K("", "v", "missing")) // drive the hit rate to 0
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ix.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if ix.HitRate() != 0 {
		t.Fatalf("stale hit rate %v after Load", ix.HitRate())
	}
	if !ix.Has(K("", "v", "a")) {
		t.Fatal("loaded entry missing")
	}
	if ix.HitRate() != 1 {
		t.Fatalf("warm hit rate = %v, want 1 (stale pre-load stats leaked)", ix.HitRate())
	}
	// The trial tag is reset too: new recordings start from trial 0.
	ix.Record(K("", "w", "b"), 2)
	if m, _ := ix.Lookup(K("", "w", "b")); m.Trial != 0 {
		t.Fatalf("post-load recording tagged trial %d", m.Trial)
	}
}

func TestInstrumentedIndex(t *testing.T) {
	reg := obs.NewRegistry()
	ix := NewIndex()
	ix.Instrument(reg)
	ix.Record(K("", "v", "a"), 1)
	ix.Has(K("", "v", "a"))
	ix.Has(K("", "v", "b"))
	if got := reg.Counter("profile.hits", "").Value(); got != 1 {
		t.Fatalf("profile.hits = %v", got)
	}
	if got := reg.Counter("profile.misses", "").Value(); got != 1 {
		t.Fatalf("profile.misses = %v", got)
	}
	if got := reg.Gauge("profile.index_size", "").Value(); got != 1 {
		t.Fatalf("profile.index_size = %v", got)
	}
}
