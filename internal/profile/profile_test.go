package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"astra/internal/obs"
)

func TestRecordOnce(t *testing.T) {
	ix := NewIndex()
	k := K("ctx", "var", "a")
	ix.SetTrial(3)
	ix.Record(k, 10)
	ix.SetTrial(4)
	ix.Record(k, 99) // predictable workload: first measurement wins
	m, ok := ix.Lookup(k)
	if !ok || m.ValueUs != 10 || m.Trial != 3 {
		t.Fatalf("Lookup = %+v, %v", m, ok)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestKeyManglingSeparatesContexts(t *testing.T) {
	// The same variable/choice under two allocation strategies must be two
	// distinct entries — this is the §4.6 invalidation mechanism.
	ix := NewIndex()
	ix.Record(K("/alloc=a0", "gemm3", "cublas"), 5)
	if ix.Has(K("/alloc=a1", "gemm3", "cublas")) {
		t.Fatal("context change should miss")
	}
	if !ix.Has(K("/alloc=a0", "gemm3", "cublas")) {
		t.Fatal("same context should hit")
	}
	if ix.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", ix.HitRate())
	}
}

func TestKeyUnambiguity(t *testing.T) {
	// No two distinct (ctx, var, choice) triples may collide.
	if K("a", "b", "c") == K("a#b", "", "c") || K("a", "b", "c") == K("a", "b=c", "") {
		t.Fatal("key mangling is ambiguous")
	}
}

func TestBest(t *testing.T) {
	ix := NewIndex()
	labels := []string{"cublas", "oai1", "oai2"}
	if _, _, ok := ix.Best("", "v", labels); ok {
		t.Fatal("Best on empty index")
	}
	ix.Record(K("", "v", "cublas"), 10)
	ix.Record(K("", "v", "oai1"), 7)
	best, us, ok := ix.Best("", "v", labels)
	if !ok || best != 1 || us != 7 {
		t.Fatalf("Best = %d/%v/%v", best, us, ok)
	}
	ix.Record(K("", "v", "oai2"), 3)
	best, us, _ = ix.Best("", "v", labels)
	if best != 2 || us != 3 {
		t.Fatalf("Best = %d/%v", best, us)
	}
}

func TestBestProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 || len(vals) > 20 {
			return true
		}
		ix := NewIndex()
		labels := make([]string, len(vals))
		minI, minV := 0, vals[0]
		for i, v := range vals {
			if v != v { // NaN breaks ordering; the wirer never produces it
				return true
			}
			labels[i] = string(rune('a' + i))
			ix.Record(K("c", "v", labels[i]), v)
			if v < minV {
				minI, minV = i, v
			}
		}
		best, us, ok := ix.Best("c", "v", labels)
		return ok && us == minV && vals[best] == minV && best <= minI+len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDump(t *testing.T) {
	ix := NewIndex()
	ix.Record(K("b", "v", "x"), 2)
	ix.Record(K("a", "v", "x"), 1)
	d := ix.Dump()
	if !strings.Contains(d, "a#v=x -> 1.000us") {
		t.Fatalf("Dump = %q", d)
	}
	if strings.Index(d, "a#v=x") > strings.Index(d, "b#v=x") {
		t.Fatal("Dump not sorted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := NewIndex()
	ix.SetTrial(7)
	ix.Record(K("ctx", "v", "a"), 12.5)
	ix.Record(K("", "w", "b"), 3)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2 := NewIndex()
	if err := ix2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 2 {
		t.Fatalf("Len = %d", ix2.Len())
	}
	m, ok := ix2.Lookup(K("ctx", "v", "a"))
	if !ok || m.ValueUs != 12.5 || m.Trial != 7 {
		t.Fatalf("Lookup = %+v %v", m, ok)
	}
	if err := ix2.Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHitRateResetAfterLoad(t *testing.T) {
	// Stats accumulated before a snapshot is loaded belong to a different
	// session; a warm-started index must report only its own queries.
	ix := NewIndex()
	ix.Record(K("", "v", "a"), 1)
	for i := 0; i < 10; i++ {
		ix.Has(K("", "v", "missing")) // drive the hit rate to 0
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ix.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if ix.HitRate() != 0 {
		t.Fatalf("stale hit rate %v after Load", ix.HitRate())
	}
	if !ix.Has(K("", "v", "a")) {
		t.Fatal("loaded entry missing")
	}
	if ix.HitRate() != 1 {
		t.Fatalf("warm hit rate = %v, want 1 (stale pre-load stats leaked)", ix.HitRate())
	}
	// The trial tag is reset too: new recordings start from trial 0.
	ix.Record(K("", "w", "b"), 2)
	if m, _ := ix.Lookup(K("", "w", "b")); m.Trial != 0 {
		t.Fatalf("post-load recording tagged trial %d", m.Trial)
	}
}

func TestKeyParts(t *testing.T) {
	ctx, v, c := K("/alloc=a0/se:1a2b", "gemm3", "cublas").Parts()
	if ctx != "/alloc=a0/se:1a2b" || v != "gemm3" || c != "cublas" {
		t.Fatalf("Parts = %q %q %q", ctx, v, c)
	}
	ctx, v, c = K("", "v", "x").Parts()
	if ctx != "" || v != "v" || c != "x" {
		t.Fatalf("Parts = %q %q %q", ctx, v, c)
	}
}

func TestMultiSampleStats(t *testing.T) {
	ix := NewIndex()
	ix.SetPolicy(FixedSamples(3))
	k := K("", "v", "a")
	for i, us := range []float64{10, 12, 14} {
		if ix.Has(k) {
			t.Fatalf("key measured after %d of 3 samples", i)
		}
		ix.Record(k, us)
	}
	if !ix.Has(k) {
		t.Fatal("key not measured after 3 samples")
	}
	st, ok := ix.LookupStats(k)
	if !ok || st.Count != 3 || st.Mean != 12 {
		t.Fatalf("Stats = %+v %v", st, ok)
	}
	if v := st.Variance(); math.Abs(v-4) > 1e-9 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if st.CIHalfWidthUs() <= 0 {
		t.Fatal("no confidence interval with 3 samples")
	}
	// Policy satisfied: further samples are ignored (first-N wins).
	ix.Record(k, 1000)
	if st, _ := ix.LookupStats(k); st.Count != 3 || st.Mean != 12 {
		t.Fatalf("post-satisfaction sample accepted: %+v", st)
	}
	if ix.Samples() != 3 {
		t.Fatalf("Samples = %d", ix.Samples())
	}
	if ix.SampleCount(k) != 3 || ix.SampleCount(K("", "v", "b")) != 0 {
		t.Fatal("SampleCount wrong")
	}
}

func TestCIPolicy(t *testing.T) {
	p := CIPolicy{RelWidth: 0.05, MinSamples: 2, MaxSamples: 6}
	// Identical samples: CI collapses to zero at MinSamples.
	if p.Satisfied(Stats{Count: 1, Mean: 10}) {
		t.Fatal("satisfied below MinSamples")
	}
	tight := Stats{Count: 2, Mean: 10, M2: 0}
	if !p.Satisfied(tight) {
		t.Fatal("zero-variance stats not satisfied at MinSamples")
	}
	// Wildly noisy samples: unsatisfied until MaxSamples caps it.
	noisy := Stats{Count: 3, Mean: 10, M2: 200}
	if p.Satisfied(noisy) {
		t.Fatal("noisy stats satisfied too early")
	}
	noisy.Count = 6
	if !p.Satisfied(noisy) {
		t.Fatal("MaxSamples cap not applied")
	}
	if FixedSamples(2).String() == "" || p.String() == "" {
		t.Fatal("policies must name themselves")
	}
}

func TestBestBreaksNearTiesByCI(t *testing.T) {
	// Choice a: lucky single-look mean 9.9 but huge spread. Choice b:
	// consistent 10.0 ± tiny. The CIs overlap, so the lower upper-bound
	// (b) must win despite a's lower mean.
	ix := NewIndex()
	ix.SetPolicy(FixedSamples(3))
	for _, us := range []float64{4, 9.8, 15.9} { // mean 9.9, wide CI
		ix.Record(K("", "v", "a"), us)
	}
	for _, us := range []float64{9.9, 10.0, 10.1} { // mean 10, narrow CI
		ix.Record(K("", "v", "b"), us)
	}
	best, _, ok := ix.Best("", "v", []string{"a", "b"})
	if !ok || best != 1 {
		t.Fatalf("Best = %d (ok=%v), want 1 (consistent choice)", best, ok)
	}
	// Clearly separated means: plain mean order regardless of spread.
	for _, us := range []float64{1, 2, 3} {
		ix.Record(K("", "v2", "fast"), us)
	}
	for _, us := range []float64{50, 51, 52} {
		ix.Record(K("", "v2", "slow"), us)
	}
	if best, _, _ := ix.Best("", "v2", []string{"slow", "fast"}); best != 1 {
		t.Fatalf("separated means: Best = %d", best)
	}
}

func TestVersionedSnapshotRoundTrip(t *testing.T) {
	ix := NewIndex()
	ix.SetPolicy(FixedSamples(3))
	ix.SetTrial(5)
	k := K("ctx", "v", "a")
	for _, us := range []float64{10, 12, 14} {
		ix.Record(k, us)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version":2`) {
		t.Fatalf("snapshot not versioned: %s", buf.String())
	}
	ix2 := NewIndex()
	ix2.SetPolicy(FixedSamples(3))
	if err := ix2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	st, ok := ix2.LookupStats(k)
	if !ok || st.Count != 3 || st.Mean != 12 || st.Trial != 5 {
		t.Fatalf("loaded stats = %+v %v", st, ok)
	}
	if math.Abs(st.Variance()-4) > 1e-9 {
		t.Fatalf("variance lost in round trip: %v", st.Variance())
	}
	if !ix2.Has(k) {
		t.Fatal("loaded multi-sample entry not measured")
	}
}

func TestLegacySingleSampleSnapshotLoads(t *testing.T) {
	// A pre-versioning snapshot (no version field, Measurement-shaped
	// entries) must load as single-sample statistics.
	legacy := `{"entries":{"ctx#v=a":{"ValueUs":12.5,"Trial":7},"#w=b":{"ValueUs":3,"Trial":0}}}`
	ix := NewIndex()
	if err := ix.Load(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	st, ok := ix.LookupStats(K("ctx", "v", "a"))
	if !ok || st.Count != 1 || st.Mean != 12.5 || st.Trial != 7 {
		t.Fatalf("legacy stats = %+v %v", st, ok)
	}
	if !ix.Has(K("ctx", "v", "a")) {
		t.Fatal("legacy entry not measured under default policy")
	}
	// A future version must be rejected, not silently misread.
	if err := ix.Load(strings.NewReader(`{"version":99,"entries":{}}`)); err == nil {
		t.Fatal("accepted snapshot from the future")
	}
}

func TestLoadResetsSampleStatistics(t *testing.T) {
	ix := NewIndex()
	ix.SetPolicy(FixedSamples(2))
	ix.Record(K("", "v", "a"), 1)
	ix.Record(K("", "v", "a"), 2)
	if ix.Samples() != 2 {
		t.Fatalf("Samples = %d", ix.Samples())
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ix.Load(&buf); err != nil {
		t.Fatal(err)
	}
	// The session sample counter resets with hits/misses; the per-key
	// statistics come back from the snapshot.
	if ix.Samples() != 0 {
		t.Fatalf("Samples = %d after Load, want 0", ix.Samples())
	}
	if st, _ := ix.LookupStats(K("", "v", "a")); st.Count != 2 {
		t.Fatalf("per-key stats lost: %+v", st)
	}
}

func TestEvictVar(t *testing.T) {
	ix := NewIndex()
	ix.Record(K("/alloc=a0", "gemm3", "cublas"), 5)
	ix.Record(K("/alloc=a1", "gemm3", "oai1"), 6)
	ix.Record(K("/alloc=a0", "gemm4", "cublas"), 7)
	if n := ix.EvictVar("gemm3"); n != 2 {
		t.Fatalf("evicted %d, want 2 (all contexts)", n)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.Has(K("/alloc=a0", "gemm3", "cublas")) {
		t.Fatal("evicted entry still measured")
	}
	if !ix.Has(K("/alloc=a0", "gemm4", "cublas")) {
		t.Fatal("unrelated entry evicted")
	}
	if n := ix.EvictVar("nothing"); n != 0 {
		t.Fatalf("evicted %d for unknown var", n)
	}
}

func TestInstrumentedIndex(t *testing.T) {
	reg := obs.NewRegistry()
	ix := NewIndex()
	ix.Instrument(reg)
	ix.Record(K("", "v", "a"), 1)
	ix.Has(K("", "v", "a"))
	ix.Has(K("", "v", "b"))
	if got := reg.Counter("profile.hits", "").Value(); got != 1 {
		t.Fatalf("profile.hits = %v", got)
	}
	if got := reg.Counter("profile.misses", "").Value(); got != 1 {
		t.Fatalf("profile.misses = %v", got)
	}
	if got := reg.Gauge("profile.index_size", "").Value(); got != 1 {
		t.Fatalf("profile.index_size = %v", got)
	}
	if got := reg.Counter("profile.samples", "").Value(); got != 1 {
		t.Fatalf("profile.samples = %v", got)
	}
}

// TestLoadMergePreservesCounters pins the live-server load semantics: under
// LoadMerge a snapshot import must neither zero the fleet's query/progress
// counters nor clobber measurements recorded since the snapshot was taken.
// (Under the default LoadReplace, Load resetting the counters is intended
// single-job warm-start behaviour — pinned by TestSaveLoadResetsCounters-style
// assertions above — but on a long-running server it silently zeroed the
// fleet hit-rate metrics mid-run.)
func TestLoadMergePreservesCounters(t *testing.T) {
	donor := NewIndex()
	donor.Record(K("jobA;", "v", "a"), 10)
	donor.Record(K("jobA;", "v", "b"), 20)
	var snap bytes.Buffer
	if err := donor.Save(&snap); err != nil {
		t.Fatal(err)
	}

	ix := NewIndex()
	ix.SetLoadMode(LoadMerge)
	ix.SetTrial(7)
	ix.Record(K("jobA;", "v", "a"), 99) // live measurement, must win over the snapshot's 10
	ix.Record(K("jobB;", "w", "x"), 5)
	ix.Has(K("jobA;", "v", "a")) // hit
	ix.Has(K("jobB;", "w", "y")) // miss
	if err := ix.Load(&snap); err != nil {
		t.Fatal(err)
	}
	if got := ix.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v after merge load, want 0.5 preserved", got)
	}
	if got := ix.Samples(); got != 2 {
		t.Fatalf("Samples = %d after merge load, want 2 preserved", got)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (one merged-in key)", ix.Len())
	}
	if m, ok := ix.Lookup(K("jobA;", "v", "a")); !ok || m.ValueUs != 99 {
		t.Fatalf("live entry clobbered by merge: %+v ok=%v", m, ok)
	}
	if m, ok := ix.Lookup(K("jobA;", "v", "b")); !ok || m.ValueUs != 20 {
		t.Fatalf("snapshot entry not merged: %+v ok=%v", m, ok)
	}
	// Trial tag preserved too: the next recording still carries trial 7.
	ix.Record(K("jobB;", "w", "y"), 6)
	if st, _ := ix.LookupStats(K("jobB;", "w", "y")); st.Trial != 7 {
		t.Fatalf("trial tag reset by merge load: %+v", st)
	}

	// Flipping back restores the historical replace+reset behaviour.
	ix.SetLoadMode(LoadReplace)
	var snap2 bytes.Buffer
	if err := donor.Save(&snap2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Load(&snap2); err != nil {
		t.Fatal(err)
	}
	if ix.Samples() != 0 || ix.HitRate() != 0 {
		t.Fatalf("LoadReplace kept counters: samples=%d hitrate=%v", ix.Samples(), ix.HitRate())
	}
	if ix.Len() != 2 {
		t.Fatalf("LoadReplace Len = %d, want 2", ix.Len())
	}
}

func TestEvictPrefix(t *testing.T) {
	ix := NewIndex()
	ix.Record(K("model=a;batch=1;", "v", "x"), 1)
	ix.Record(K("model=a;batch=1;/sub", "v2", "y"), 2)
	ix.Record(K("model=a;batch=12;", "v", "x"), 3)
	if n := ix.EvictPrefix(""); n != 0 {
		t.Fatalf("empty prefix evicted %d", n)
	}
	if n := ix.EvictPrefix("model=a;batch=1;"); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if !ix.Has(K("model=a;batch=12;", "v", "x")) {
		t.Fatal("sibling signature evicted")
	}
	if n := ix.EvictPrefix("model=zzz;"); n != 0 {
		t.Fatalf("unknown prefix evicted %d", n)
	}
}
