package profile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzIndexLoad hardens the snapshot loader: arbitrary bytes — corrupt,
// truncated, hostile, or valid v1/v2 saves — must either load cleanly or
// return an error, never panic. A successfully loaded index must survive a
// Save/Load round trip.
func FuzzIndexLoad(f *testing.F) {
	// Current v2 multi-sample format.
	f.Add([]byte(`{"version":2,"entries":{"root#gemm.chunk=4":{"count":3,"mean":12.5,"m2":0.3,"trial":7}}}`))
	// Legacy (pre-versioning) single-sample format.
	f.Add([]byte(`{"entries":{"root#gemm.chunk=4":{"ValueUs":12.5,"Trial":3}}}`))
	// Truncated mid-entry.
	f.Add([]byte(`{"version":2,"entries":{"a":{"count":`))
	// Future version.
	f.Add([]byte(`{"version":99,"entries":{}}`))
	// Wrong shapes and garbage.
	f.Add([]byte(`{"version":2,"entries":{"a":[1,2,3]}}`))
	f.Add([]byte(`{"version":2,"entries":{"a":{"count":-5,"mean":1e308,"m2":-1,"trial":-9}}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix := NewIndex()
		if err := ix.Load(bytes.NewReader(data)); err != nil {
			return // rejected cleanly: exactly what corrupt input should do
		}
		// Accepted: the index must be fully usable. Round-trip it.
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("loaded index failed to save: %v", err)
		}
		again := NewIndex()
		if err := again.Load(&buf); err != nil {
			t.Fatalf("round trip failed: %v\nsnapshot: %s", err, buf.Bytes())
		}
		if again.Len() != ix.Len() {
			t.Fatalf("round trip changed size: %d -> %d", ix.Len(), again.Len())
		}

		// Live-index discipline: the same snapshot must also load — in both
		// modes — while another goroutine is recording and querying, the way
		// a serving fleet store takes imports mid-run. The Len/size counter
		// must stay consistent with the stored contents afterwards.
		for _, mode := range []LoadMode{LoadReplace, LoadMerge} {
			live := NewIndex()
			live.SetLoadMode(mode)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := K("fuzz;", "v", string(rune('a'+i%8)))
					live.Record(k, float64(i))
					live.Has(k)
				}
			}()
			err1 := live.Load(bytes.NewReader(data))
			err2 := live.Load(&buf) // buf may be drained; error is fine
			close(stop)
			<-done
			_, _ = err1, err2 // either outcome is legal; no panic, no race
			want := strings.Count(live.Dump(), "\n")
			if live.Len() != want {
				t.Fatalf("mode %d: size counter %d diverged from %d stored entries", mode, live.Len(), want)
			}
		}
	})
}
