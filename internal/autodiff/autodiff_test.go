package autodiff

import (
	"testing"
	"testing/quick"

	"astra/internal/graph"
	"astra/internal/tensor"
)

// numericGrad estimates dLoss/dParam by central differences on the forward
// graph, the ground truth against which the symbolic backward is checked.
func numericGrad(g *graph.Graph, inputs graph.Env, params graph.Env, p *graph.Value) *tensor.Tensor {
	const eps = 1e-6
	base := params[p]
	out := tensor.New(base.Shape()...)
	for i := range base.Data() {
		orig := base.Data()[i]
		base.Data()[i] = orig + eps
		up := g.Run(inputs, params)[g.Loss].Data()[0]
		base.Data()[i] = orig - eps
		down := g.Run(inputs, params)[g.Loss].Data()[0]
		base.Data()[i] = orig
		out.Data()[i] = (up - down) / (2 * eps)
	}
	return out
}

type testModel struct {
	g      *graph.Graph
	inputs graph.Env
	params graph.Env
}

// buildMLP builds a model exercising most gradient rules: lookup, matmul,
// bias, nonlinearities, mul/sub/scale, concat/slice, softmax and CE.
func buildMLP(seed uint64) *testModel {
	rng := tensor.NewRNG(seed)
	g := graph.New()
	b := graph.NewBuilder(g)
	const batch, vocab, emb, hid, classes = 3, 7, 4, 6, 5
	ids := g.Input("ids", batch, 1)
	targets := g.Input("targets", batch, 1)
	table := g.Param("emb", tensor.Randn(rng, 0.5, vocab, emb))
	w1 := g.Param("w1", tensor.Randn(rng, 0.5, emb, hid))
	w2 := g.Param("w2", tensor.Randn(rng, 0.5, emb, hid))
	bias := g.Param("b1", tensor.Randn(rng, 0.5, 1, hid))
	wo := g.Param("wo", tensor.Randn(rng, 0.5, hid, classes))

	var logits *graph.Value
	b.InScope("mlp", func() {
		x := b.Lookup(table, ids)
		h1 := b.Tanh(b.AddBias(b.MatMul(x, w1), bias))
		h2 := b.Sigmoid(b.MatMul(x, w2))
		h := b.Mul(h1, h2)
		r := b.ReLU(b.Sub(h1, b.Scale(h2, 0.5)))
		h = b.Add(h, r)
		// exercise concat/slice/transpose/softmax paths
		cat := b.ConcatCols(h, h1)
		h = b.SliceCols(cat, 0, hid)
		h = b.Add(h, b.Transpose(b.Transpose(h2)))
		att := b.Softmax(h)
		h = b.Mul(h, att)
		logits = b.MatMul(h, wo)
	})
	b.CrossEntropy(logits, targets)

	inputs := graph.Env{}
	idT := tensor.New(batch, 1)
	tgT := tensor.New(batch, 1)
	for i := 0; i < batch; i++ {
		idT.Data()[i] = float64(rng.Intn(vocab))
		tgT.Data()[i] = float64(rng.Intn(classes))
	}
	inputs[ids] = idT
	inputs[targets] = tgT
	return &testModel{g: g, inputs: inputs, params: g.InitialParams()}
}

func TestBackwardMatchesNumericGradients(t *testing.T) {
	m := buildMLP(3)
	grads, err := Backward(m.g)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.g.Validate(); err != nil {
		t.Fatal(err)
	}
	env := m.g.Run(m.inputs, m.params)
	for _, p := range m.g.Params {
		gv, ok := grads[p]
		if !ok {
			t.Fatalf("no gradient for %s", p.Name)
		}
		sym := env[gv]
		num := numericGrad(m.g, m.inputs, m.params, p)
		if d := tensor.MaxAbsDiff(sym, num); d > 1e-4 {
			t.Errorf("param %s: symbolic vs numeric gradient diff %g", p.Name, d)
		}
	}
}

func TestBackwardNumericProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := buildMLP(seed | 1)
		grads, err := Backward(m.g)
		if err != nil {
			return false
		}
		env := m.g.Run(m.inputs, m.params)
		for _, p := range m.g.Params {
			if tensor.MaxAbsDiff(env[grads[p]], numericGrad(m.g, m.inputs, m.params, p)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardMarksProvenance(t *testing.T) {
	m := buildMLP(5)
	before := len(m.g.Nodes)
	if _, err := Backward(m.g); err != nil {
		t.Fatal(err)
	}
	if len(m.g.Nodes) <= before {
		t.Fatal("no backward nodes appended")
	}
	for _, n := range m.g.Nodes[before:] {
		if n.Prov.Pass != graph.Backward {
			t.Fatalf("backward node %v has pass %v", n, n.Prov.Pass)
		}
	}
	for _, n := range m.g.Nodes[:before] {
		if n.Prov.Pass != graph.Forward {
			t.Fatalf("forward node %v has pass %v", n, n.Prov.Pass)
		}
	}
}

func TestBackwardFlopsDominance(t *testing.T) {
	// The paper: ~two-thirds of compute is the backward pass. Each forward
	// GEMM spawns two backward GEMMs, so backward flops ≥ forward flops.
	m := buildMLP(7)
	var fwd int64
	for _, n := range m.g.Nodes {
		fwd += n.Flops()
	}
	if _, err := Backward(m.g); err != nil {
		t.Fatal(err)
	}
	var bwd int64
	for _, n := range m.g.Nodes {
		if n.Prov.Pass == graph.Backward {
			bwd += n.Flops()
		}
	}
	if bwd < fwd {
		t.Fatalf("backward flops %d < forward flops %d", bwd, fwd)
	}
}

func TestBackwardCreatesFusionLadders(t *testing.T) {
	// A value consumed by two GEMMs must yield an mm+mm+add accumulation
	// ladder in the backward pass (§4.4.1).
	rng := tensor.NewRNG(9)
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 2, 4)
	targets := g.Input("targets", 2, 1)
	w1 := g.Param("w1", tensor.Randn(rng, 0.5, 4, 4))
	w2 := g.Param("w2", tensor.Randn(rng, 0.5, 4, 4))
	wo := g.Param("wo", tensor.Randn(rng, 0.5, 4, 3))
	h := b.Add(b.MatMul(x, w1), b.MatMul(x, w2))
	b.CrossEntropy(b.MatMul(h, wo), targets)
	if _, err := Backward(g); err != nil {
		t.Fatal(err)
	}
	ladder := false
	for _, n := range g.Nodes {
		if n.Prov.Pass == graph.Backward && n.Op == graph.OpAdd {
			p0, p1 := n.Inputs[0].Producer, n.Inputs[1].Producer
			if p0 != nil && p1 != nil && p0.Op == graph.OpMatMul && p1.Op == graph.OpMatMul {
				ladder = true
			}
		}
	}
	if !ladder {
		t.Fatal("no mm+mm+add accumulation ladder in backward pass")
	}
}

func TestBackwardErrors(t *testing.T) {
	g := graph.New()
	if _, err := Backward(g); err == nil {
		t.Fatal("accepted graph without loss")
	}
	b := graph.NewBuilder(g)
	x := g.Input("x", 1, 2)
	y := b.Tanh(x)
	g.Loss = y
	if _, err := Backward(g); err == nil {
		t.Fatal("accepted non-cross-entropy loss")
	}
}

func TestBackwardSkipsDeadBranches(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 2, 3)
	targets := g.Input("targets", 2, 1)
	w := g.Param("w", tensor.Randn(rng, 0.5, 3, 4))
	dead := g.Param("dead", tensor.Randn(rng, 0.5, 3, 4))
	b.MatMul(x, dead) // unused result
	b.CrossEntropy(b.MatMul(x, w), targets)
	grads, err := Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grads[dead]; ok {
		t.Fatal("dead parameter received a gradient")
	}
	if _, ok := grads[w]; !ok {
		t.Fatal("live parameter missing gradient")
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	m := buildMLP(11)
	grads, err := Backward(m.g)
	if err != nil {
		t.Fatal(err)
	}
	loss0 := m.g.Run(m.inputs, m.params)[m.g.Loss].Data()[0]
	for step := 0; step < 20; step++ {
		env := m.g.Run(m.inputs, m.params)
		ApplySGD(m.g, env, m.params, 0.1)
		_ = grads
	}
	loss1 := m.g.Run(m.inputs, m.params)[m.g.Loss].Data()[0]
	if loss1 >= loss0 {
		t.Fatalf("SGD did not reduce loss: %v -> %v", loss0, loss1)
	}
}

func TestAttentionOpsGradients(t *testing.T) {
	// scale_cols / row_sums / broadcast_cols — the attention primitives —
	// checked against numeric gradients.
	rng := tensor.NewRNG(17)
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 3, 4)
	targets := g.Input("targets", 3, 1)
	ws := g.Param("ws", tensor.Randn(rng, 0.5, 4, 1))
	wo := g.Param("wo", tensor.Randn(rng, 0.5, 4, 3))
	s := b.MatMul(x, ws)                 // [3,1] per-row score
	weighted := b.ScaleCols(x, s)        // attention-style weighting
	pooled := b.RowSums(weighted)        // [3,1]
	spread := b.BroadcastCols(pooled, 4) // [3,4]
	h := b.Add(weighted, spread)
	b.CrossEntropy(b.MatMul(h, wo), targets)
	grads, err := Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	inputs := graph.Env{
		x:       tensor.Randn(rng, 1, 3, 4),
		targets: tensor.FromSlice([]float64{0, 2, 1}, 3, 1),
	}
	params := g.InitialParams()
	env := g.Run(inputs, params)
	for _, p := range g.Params {
		num := numericGrad(g, inputs, params, p)
		if d := tensor.MaxAbsDiff(env[grads[p]], num); d > 1e-4 {
			t.Errorf("param %s: gradient diff %g", p.Name, d)
		}
	}
}
