// Package autodiff implements reverse-mode automatic differentiation over
// the graph IR. It plays the role of the DL toolkit's automatic
// differentiation module from §5.1 of the paper: the model author writes
// only the forward pass; this package appends the backward pass to the same
// graph, with provenance marked Backward.
//
// Two properties of the generated backward graph matter for Astra:
//
//   - it contains the GEMM-accumulator "fusion ladders" of §4.4.1, because
//     gradients of values with several consumers are accumulated with add
//     nodes fed by mm nodes; and
//   - it accounts for roughly two-thirds of the training-step flops, as the
//     paper observes, because each forward GEMM induces two backward GEMMs.
package autodiff

import (
	"fmt"

	"astra/internal/graph"
	"astra/internal/tensor"
)

// Backward appends gradient computation for every parameter to g, seeding
// at g.Loss (which must be a cross_entropy node). It fills g.Grads and
// returns it. Nodes that do not influence the loss get no gradient.
func Backward(g *graph.Graph) (map[*graph.Value]*graph.Value, error) {
	if g.Loss == nil {
		return nil, fmt.Errorf("autodiff: graph has no loss")
	}
	lossNode := g.Loss.Producer
	if lossNode == nil || lossNode.Op != graph.OpCrossEntropy {
		return nil, fmt.Errorf("autodiff: loss must be produced by cross_entropy, got %v", lossNode)
	}

	// forward snapshot: Backward appends to g.Nodes, so iterate a copy.
	fwd := make([]*graph.Node, len(g.Nodes))
	copy(fwd, g.Nodes)

	// grads accumulates the (possibly partial) gradient value for each
	// forward value. accumulate() chains contributions with add nodes,
	// which is precisely what creates backward fusion ladders.
	grads := make(map[*graph.Value]*graph.Value)
	bprov := func(n *graph.Node) graph.Provenance {
		p := n.Prov
		p.Pass = graph.Backward
		return p
	}
	accumulate := func(prov graph.Provenance, v *graph.Value, contrib *graph.Value) {
		if prev, ok := grads[v]; ok {
			grads[v] = g.AddNode(graph.OpAdd, prov, graph.Attr{}, prev, contrib)
		} else {
			grads[v] = contrib
		}
	}

	// The loss gradient seed is the scalar 1; cross_entropy_grad bakes it
	// in (together with the 1/batch factor), so the loss node is handled
	// specially below and the seed itself never materialises.
	seeded := false

	for i := len(fwd) - 1; i >= 0; i-- {
		n := fwd[i]
		prov := bprov(n)
		if n == lossNode {
			logits, targets := n.Inputs[0], n.Inputs[1]
			dlogits := g.AddNode(graph.OpCrossEntropyGrad, prov, graph.Attr{}, logits, targets)
			accumulate(prov, logits, dlogits)
			seeded = true
			continue
		}
		gv, ok := grads[n.Out]
		if !ok {
			continue // value does not influence the loss
		}
		switch n.Op {
		case graph.OpMatMul:
			a, b := n.Inputs[0], n.Inputs[1]
			bt := g.AddNode(graph.OpTranspose, prov, graph.Attr{}, b)
			accumulate(prov, a, g.AddNode(graph.OpMatMul, prov, graph.Attr{}, gv, bt))
			at := g.AddNode(graph.OpTranspose, prov, graph.Attr{}, a)
			accumulate(prov, b, g.AddNode(graph.OpMatMul, prov, graph.Attr{}, at, gv))
		case graph.OpAdd:
			accumulate(prov, n.Inputs[0], gv)
			accumulate(prov, n.Inputs[1], gv)
		case graph.OpSub:
			accumulate(prov, n.Inputs[0], gv)
			accumulate(prov, n.Inputs[1], g.AddNode(graph.OpScale, prov, graph.Attr{Scalar: -1}, gv))
		case graph.OpMul:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpMul, prov, graph.Attr{}, gv, n.Inputs[1]))
			accumulate(prov, n.Inputs[1], g.AddNode(graph.OpMul, prov, graph.Attr{}, gv, n.Inputs[0]))
		case graph.OpScale:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpScale, prov, graph.Attr{Scalar: n.Attr.Scalar}, gv))
		case graph.OpSigmoid:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpSigmoidGrad, prov, graph.Attr{}, gv, n.Out))
		case graph.OpTanh:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpTanhGrad, prov, graph.Attr{}, gv, n.Out))
		case graph.OpReLU:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpReLUGrad, prov, graph.Attr{}, gv, n.Inputs[0]))
		case graph.OpAddBias:
			accumulate(prov, n.Inputs[0], gv)
			accumulate(prov, n.Inputs[1], reshapeBias(g, prov, gv, n.Inputs[1].Shape))
		case graph.OpSoftmax:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpSoftmaxGrad, prov, graph.Attr{}, gv, n.Out))
		case graph.OpConcatCols:
			off := 0
			for _, in := range n.Inputs {
				w := in.Shape.Cols()
				accumulate(prov, in, g.AddNode(graph.OpSliceCols, prov, graph.Attr{Lo: off, Hi: off + w}, gv))
				off += w
			}
		case graph.OpConcatRows:
			off := 0
			for _, in := range n.Inputs {
				h := in.Shape.Rows()
				accumulate(prov, in, g.AddNode(graph.OpSliceRows, prov, graph.Attr{Lo: off, Hi: off + h}, gv))
				off += h
			}
		case graph.OpSliceCols:
			total := n.Inputs[0].Shape.Cols()
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpPadCols, prov, graph.Attr{Lo: n.Attr.Lo, N: total}, gv))
		case graph.OpSliceRows:
			total := n.Inputs[0].Shape.Rows()
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpPadRows, prov, graph.Attr{Lo: n.Attr.Lo, N: total}, gv))
		case graph.OpTranspose:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpTranspose, prov, graph.Attr{}, gv))
		case graph.OpLookup:
			table, ids := n.Inputs[0], n.Inputs[1]
			accumulate(prov, table, g.AddNode(graph.OpLookupGrad, prov, graph.Attr{N: table.Shape.Rows()}, ids, gv))
		case graph.OpSumRows:
			accumulate(prov, n.Inputs[0],
				g.AddNode(graph.OpBroadcastRows, prov, graph.Attr{N: n.Inputs[0].Shape.Rows()}, gv))
		case graph.OpScaleCols:
			x, s := n.Inputs[0], n.Inputs[1]
			accumulate(prov, x, g.AddNode(graph.OpScaleCols, prov, graph.Attr{}, gv, s))
			gx := g.AddNode(graph.OpMul, prov, graph.Attr{}, gv, x)
			accumulate(prov, s, g.AddNode(graph.OpRowSums, prov, graph.Attr{}, gx))
		case graph.OpRowSums:
			accumulate(prov, n.Inputs[0],
				g.AddNode(graph.OpBroadcastCols, prov, graph.Attr{N: n.Inputs[0].Shape.Cols()}, gv))
		case graph.OpBroadcastCols:
			accumulate(prov, n.Inputs[0], g.AddNode(graph.OpRowSums, prov, graph.Attr{}, gv))
		case graph.OpCrossEntropy:
			return nil, fmt.Errorf("autodiff: cross_entropy at node %d is not the loss", n.ID)
		default:
			return nil, fmt.Errorf("autodiff: no gradient rule for %v", n.Op)
		}
	}
	if !seeded {
		return nil, fmt.Errorf("autodiff: loss node not visited")
	}
	for _, p := range g.Params {
		if gv, ok := grads[p]; ok {
			g.Grads[p] = gv
		}
	}
	return g.Grads, nil
}

// reshapeBias turns the [m,n] upstream gradient into the bias's own shape
// (a [1,n] row) by summing over rows.
func reshapeBias(g *graph.Graph, prov graph.Provenance, gv *graph.Value, biasShape tensor.Shape) *graph.Value {
	return g.AddNode(graph.OpSumRows, prov, graph.Attr{}, gv)
}
