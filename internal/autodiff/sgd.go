package autodiff

import "astra/internal/graph"

// ApplySGD performs an in-place stochastic-gradient-descent update of every
// parameter that has a gradient in g.Grads, reading gradient tensors from
// env (a completed graph.Run environment) and mutating params. The weight
// update is tiny compared to the forward/backward kernels, and all explored
// schedules are value-preserving, so training convergence is identical
// under every dispatcher — which is why the paper reports no accuracy
// numbers (§6.7).
func ApplySGD(g *graph.Graph, env graph.Env, params graph.Env, lr float64) {
	for _, p := range g.Params {
		gv, ok := g.Grads[p]
		if !ok {
			continue
		}
		gt := env[gv]
		pt := params[p]
		pd, gd := pt.Data(), gt.Data()
		for i := range pd {
			pd[i] -= lr * gd[i]
		}
	}
}
