// Package baselines implements the comparison dispatchers of the paper's
// evaluation: the native eager frameworks (PyTorch-like and
// TensorFlow-like), the XLA static optimizer, and the cuDNN hand-optimized
// compound kernels. All run on the same simulated device and the same
// value semantics as Astra, so every reported speedup is apples-to-apples.
package baselines

import (
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/graph"
	"astra/internal/kernels"
	"astra/internal/models"
	"astra/internal/wire"
)

// Result reports one dispatched mini-batch.
type Result struct {
	TimeUs  float64
	Kernels int
	Env     graph.Env
}

// Framework profiles the host-side dispatch cost of an eager framework.
type Framework struct {
	Name string
	// PerOpCPUUs is the interpreter + dispatcher cost per operator, on top
	// of the driver's kernel-launch overhead. Eager PyTorch pays Python
	// dispatch per op; graph-mode TensorFlow is cheaper per op.
	PerOpCPUUs float64
}

// PyTorch returns the eager PyTorch 0.4 profile used in Tables 2–6.
func PyTorch() Framework { return Framework{Name: "pytorch", PerOpCPUUs: 14} }

// TensorFlow returns the TF 1.8 graph-executor profile used in Table 9.
func TensorFlow() Framework { return Framework{Name: "tensorflow", PerOpCPUUs: 6} }

// RunNative dispatches the graph the way the stock framework does: one
// kernel per operator, default library, single stream, no fusion. View
// transposes (consumed only by GEMMs) are free, as in the real frameworks.
func RunNative(g *graph.Graph, dev *gpusim.Device, fw Framework, inputs, params graph.Env) Result {
	dev.Reset()
	views := enumerate.Views(g)
	var env graph.Env
	if inputs != nil {
		env = make(graph.Env, len(g.Values))
		for _, v := range g.Inputs {
			env[v] = inputs[v]
		}
		for _, v := range g.Values {
			if v.ConstData == nil {
				continue
			}
			if params != nil {
				if t, ok := params[v]; ok {
					env[v] = t
					continue
				}
			}
			env[v] = v.ConstData
		}
	}
	res := Result{}
	for _, n := range g.Nodes {
		if env != nil {
			graph.EvalNode(n, env)
		}
		if views[n] {
			continue
		}
		dev.AdvanceCPU(fw.PerOpCPUUs)
		dev.Launch(0, kernels.ForNode(n, kernels.CuBLAS))
		res.Kernels++
	}
	dev.Synchronize()
	res.TimeUs = dev.CPUTimeUs()
	res.Env = env
	return res
}

// RunXLA dispatches the graph through a static whole-graph optimizer in the
// mold of TensorFlow XLA (§6.6): maximal elementwise and GEMM fusion picked
// once at compile time with no measurement, a single stream, the default
// GEMM library — and the embedding pathology, where every lookup bounces
// through the host. The static maximal-fusion policy is exactly what makes
// XLA fragile: it fuses past the diminishing-return point and cannot
// un-fuse where measurement would have said otherwise.
func RunXLA(g *graph.Graph, dev *gpusim.Device, inputs, params graph.Env) Result {
	plan := enumerate.Enumerate(g, enumerate.Options{ElementwiseFusion: true})
	runner := wire.NewRunner(plan, dev, wire.RunnerConfig{
		PerOpCPUUs:            3, // compiled executor: minimal host cost
		MaxFusion:             true,
		EmbeddingHostTransfer: true,
	})
	br := runner.RunBatch(inputs, params)
	return Result{TimeUs: br.TotalUs, Kernels: br.Kernels, Env: br.Env}
}

// CuDNNCovered reports whether the hand-optimized compound kernels apply to
// the model: it must contain standard LSTM layers (scope segment "lstmN").
// MI-LSTM, subLSTM and SC-RNN are exactly the long-tail cells cuDNN does
// not implement, so they return false ("-" in the paper's tables).
func CuDNNCovered(m *models.Model) bool { return len(coveredScopes(m)) > 0 }

// coveredScopes returns the provenance scopes replaced by compound kernels.
func coveredScopes(m *models.Model) map[string]bool {
	out := map[string]bool{}
	for _, n := range m.G.Nodes {
		if isStandardLSTMScope(n.Prov.Scope) {
			out[n.Prov.Scope] = true
		}
	}
	return out
}

// isStandardLSTMScope matches "lstm<digits>" as the final scope segment —
// the naming the model zoo gives standard LSTM layers. "milstm" and
// "sublstm" deliberately do not match: cuDNN has no kernel for them.
func isStandardLSTMScope(scope string) bool {
	i := len(scope)
	for i > 0 && scope[i-1] >= '0' && scope[i-1] <= '9' {
		i--
	}
	if i == len(scope) { // no trailing digits
		return false
	}
	prefix := scope[:i]
	const tag = "lstm"
	if len(prefix) < len(tag) || prefix[len(prefix)-len(tag):] != tag {
		return false
	}
	// The segment must be exactly "lstm<digits>": either the whole scope
	// or preceded by a dot.
	head := prefix[:len(prefix)-len(tag)]
	return head == "" || head[len(head)-1] == '.'
}

// lstmLayer describes one covered layer recovered from the graph.
type lstmLayer struct {
	scope     string
	inDim     int
	hidden    int
	timesteps int
}

// RunCuDNN dispatches the model with cuDNN-style compound kernels for every
// covered LSTM layer and the eager framework for everything else (the
// paper's "PyTorch+cuDNN" configuration). ok is false when the model has no
// covered layers.
//
// The compound schedule per layer follows cuDNN's actual structure
// (Appleyard et al. [4]): the input GEMMs of all timesteps are batched into
// one large GEMM per layer; each timestep then needs only one fused
// recurrent GEMM (all four gates) plus one fused pointwise kernel; the
// backward pass mirrors this with one data-gradient GEMM and pointwise per
// step plus two batched weight-gradient GEMMs per layer.
func RunCuDNN(m *models.Model, dev *gpusim.Device, fw Framework, inputs, params graph.Env) (Result, bool) {
	covered := coveredScopes(m)
	if len(covered) == 0 {
		return Result{}, false
	}
	dev.Reset()
	views := enumerate.Views(m.G)

	layers := map[string]*lstmLayer{}
	for _, n := range m.G.Nodes {
		if !covered[n.Prov.Scope] || n.Op != graph.OpMatMul || n.Prov.Pass != graph.Forward {
			continue
		}
		l := layers[n.Prov.Scope]
		if l == nil {
			l = &lstmLayer{scope: n.Prov.Scope, hidden: m.Cfg.Hidden}
			layers[n.Prov.Scope] = l
		}
		if n.Prov.Timestep+1 > l.timesteps {
			l.timesteps = n.Prov.Timestep + 1
		}
		// The x-side GEMM reveals the layer input width.
		if k := n.Inputs[0].Shape.Cols(); k != m.Cfg.Hidden && k > l.inDim {
			l.inDim = k
		}
	}
	for _, l := range layers {
		if l.inDim == 0 {
			l.inDim = m.Cfg.Hidden
		}
	}

	res := Result{}
	b := m.Cfg.Batch
	launch := func(spec gpusim.KernelSpec) {
		dev.AdvanceCPU(1) // compound kernels amortize framework dispatch
		dev.Launch(0, spec)
		res.Kernels++
	}
	// cuDNN ships its own GEMM kernels, roughly cuBLAS-quality; the win
	// comes from its schedule (batching and fusion), not magic kernels.
	bestGEMM := func(s kernels.GEMMShape) gpusim.KernelSpec {
		return kernels.GEMM(kernels.CuBLAS, s)
	}
	dispatchLayer := func(l *lstmLayer) {
		// Forward: batched input GEMM, then per-step recurrent GEMM +
		// fused cell pointwise.
		launch(bestGEMM(kernels.GEMMShape{M: l.timesteps * b, K: l.inDim, N: 4 * l.hidden}))
		for t := 0; t < l.timesteps; t++ {
			launch(bestGEMM(kernels.GEMMShape{M: b, K: l.hidden, N: 4 * l.hidden}))
			launch(kernels.FusedElementwise(10, b*l.hidden))
		}
		// Backward: per-step data-gradient GEMM + pointwise, then two
		// batched weight-gradient GEMMs.
		for t := 0; t < l.timesteps; t++ {
			launch(bestGEMM(kernels.GEMMShape{M: b, K: 4 * l.hidden, N: l.inDim + l.hidden}))
			launch(kernels.FusedElementwise(10, b*l.hidden))
		}
		launch(bestGEMM(kernels.GEMMShape{M: l.inDim, K: l.timesteps * b, N: 4 * l.hidden}))
		launch(bestGEMM(kernels.GEMMShape{M: l.hidden, K: l.timesteps * b, N: 4 * l.hidden}))
	}

	// Walk the graph in order: uncovered nodes dispatch natively; each
	// covered layer's compound schedule is dispatched when its first node
	// is reached.
	dispatched := map[string]bool{}
	for _, n := range m.G.Nodes {
		if covered[n.Prov.Scope] {
			if n.Prov.Pass == graph.Forward && !dispatched[n.Prov.Scope] {
				dispatched[n.Prov.Scope] = true
				dispatchLayer(layers[n.Prov.Scope])
			}
			continue
		}
		if views[n] {
			continue
		}
		dev.AdvanceCPU(fw.PerOpCPUUs)
		dev.Launch(0, kernels.ForNode(n, kernels.CuBLAS))
		res.Kernels++
	}
	dev.Synchronize()
	res.TimeUs = dev.CPUTimeUs()

	// Values: the compound kernels are bit-compatible with the graph's own
	// math, so the oracle just runs the graph.
	if inputs != nil {
		res.Env = m.G.Run(inputs, params)
	}
	return res, true
}
