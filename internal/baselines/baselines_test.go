package baselines

import (
	"testing"

	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/tensor"
)

func tinyModel(t *testing.T, name string) *models.Model {
	t.Helper()
	build, ok := models.Get(name)
	if !ok {
		t.Fatalf("model %q", name)
	}
	return build(models.TinyConfig(name, 2))
}

func TestNativeValueMatchesReference(t *testing.T) {
	for _, name := range models.Names() {
		m := tinyModel(t, name)
		in := m.MakeInputs(3)
		res := RunNative(m.G, gpusim.NewDevice(gpusim.P100()), PyTorch(), in, nil)
		ref := m.G.Run(in, nil)
		if tensor.MaxAbsDiff(res.Env[m.G.Loss], ref[m.G.Loss]) != 0 {
			t.Errorf("%s: native loss differs from reference", name)
		}
	}
}

func TestXLAValueMatchesReference(t *testing.T) {
	for _, name := range models.Names() {
		m := tinyModel(t, name)
		in := m.MakeInputs(4)
		res := RunXLA(m.G, gpusim.NewDevice(gpusim.P100()), in, nil)
		ref := m.G.Run(in, nil)
		if tensor.MaxAbsDiff(res.Env[m.G.Loss], ref[m.G.Loss]) != 0 {
			t.Errorf("%s: XLA loss differs from reference", name)
		}
	}
}

func TestFrameworkProfiles(t *testing.T) {
	if PyTorch().PerOpCPUUs <= TensorFlow().PerOpCPUUs {
		t.Fatal("eager PyTorch should cost more per op than graph-mode TF")
	}
	m := tinyModel(t, "scrnn")
	pyt := RunNative(m.G, gpusim.NewDevice(gpusim.P100()), PyTorch(), nil, nil)
	tf := RunNative(m.G, gpusim.NewDevice(gpusim.P100()), TensorFlow(), nil, nil)
	if pyt.TimeUs <= tf.TimeUs {
		t.Fatalf("PyTorch (%v) should be slower than TF (%v) on tiny graphs", pyt.TimeUs, tf.TimeUs)
	}
	if pyt.Kernels != tf.Kernels {
		t.Fatal("same graph, same kernel count expected")
	}
}

func TestNativeSkipsViewTransposes(t *testing.T) {
	m := tinyModel(t, "stackedlstm")
	res := RunNative(m.G, gpusim.NewDevice(gpusim.P100()), PyTorch(), nil, nil)
	if res.Kernels >= len(m.G.Nodes) {
		t.Fatalf("kernels %d >= nodes %d: views not skipped", res.Kernels, len(m.G.Nodes))
	}
}

func TestCuDNNCoverage(t *testing.T) {
	// Coverage must match the paper's tables: stacked LSTM and GNMT are
	// (at least partly) covered; the long-tail cells are not.
	covered := map[string]bool{
		"scrnn": false, "milstm": false, "sublstm": false,
		"stackedlstm": true, "gnmt": true,
	}
	for name, want := range covered {
		m := tinyModel(t, name)
		if got := CuDNNCovered(m); got != want {
			t.Errorf("CuDNNCovered(%s) = %v, want %v", name, got, want)
		}
		_, ok := RunCuDNN(m, gpusim.NewDevice(gpusim.P100()), PyTorch(), nil, nil)
		if ok != want {
			t.Errorf("RunCuDNN(%s) ok = %v, want %v", name, ok, want)
		}
	}
}

func TestIsStandardLSTMScope(t *testing.T) {
	cases := map[string]bool{
		"lstm0":     true,
		"lstm12":    true,
		"enc.lstm3": true,
		"dec.lstm0": true,
		"milstm":    false,
		"sublstm":   false,
		"sublstm0":  false,
		"lstm":      false,
		"head":      false,
		"xlstm0y":   false,
		"":          false,
	}
	for scope, want := range cases {
		if got := isStandardLSTMScope(scope); got != want {
			t.Errorf("isStandardLSTMScope(%q) = %v, want %v", scope, got, want)
		}
	}
}

func TestCuDNNBeatsNativeOnStackedLSTM(t *testing.T) {
	// The whole point of the hand-optimized kernels (§2.4): large speedup
	// on the covered model at paper scale.
	m := func() *models.Model {
		build, _ := models.Get("stackedlstm")
		return build(models.DefaultConfig("stackedlstm", 16))
	}()
	nat := RunNative(m.G, gpusim.NewDevice(gpusim.P100()), PyTorch(), nil, nil)
	cud, ok := RunCuDNN(m, gpusim.NewDevice(gpusim.P100()), PyTorch(), nil, nil)
	if !ok {
		t.Fatal("stacked LSTM not covered")
	}
	if cud.TimeUs >= nat.TimeUs {
		t.Fatalf("cuDNN (%v) not faster than native (%v)", cud.TimeUs, nat.TimeUs)
	}
	if cud.Kernels >= nat.Kernels {
		t.Fatalf("cuDNN launches %d kernels >= native %d", cud.Kernels, nat.Kernels)
	}
}

func TestCuDNNValueMatchesReference(t *testing.T) {
	m := tinyModel(t, "stackedlstm")
	in := m.MakeInputs(5)
	res, ok := RunCuDNN(m, gpusim.NewDevice(gpusim.P100()), PyTorch(), in, nil)
	if !ok {
		t.Fatal("not covered")
	}
	ref := m.G.Run(in, nil)
	if tensor.MaxAbsDiff(res.Env[m.G.Loss], ref[m.G.Loss]) != 0 {
		t.Fatal("cuDNN loss differs from reference")
	}
}

func TestXLAEmbeddingPathology(t *testing.T) {
	// §6.6: with embeddings present XLA is worse than native TF, because
	// every lookup bounces through the host; removing embeddings flips it.
	build, _ := models.Get("scrnn")
	cfg := models.DefaultConfig("scrnn", 16)
	withEmb := build(cfg)
	cfg.Embedding = false
	noEmb := build(cfg)

	tfWith := RunNative(withEmb.G, gpusim.NewDevice(gpusim.P100()), TensorFlow(), nil, nil)
	xlaWith := RunXLA(withEmb.G, gpusim.NewDevice(gpusim.P100()), nil, nil)
	if xlaWith.TimeUs <= tfWith.TimeUs {
		t.Fatalf("XLA with embeddings (%v) should lose to TF (%v)", xlaWith.TimeUs, tfWith.TimeUs)
	}

	tfNo := RunNative(noEmb.G, gpusim.NewDevice(gpusim.P100()), TensorFlow(), nil, nil)
	xlaNo := RunXLA(noEmb.G, gpusim.NewDevice(gpusim.P100()), nil, nil)
	if xlaNo.TimeUs >= tfNo.TimeUs {
		t.Fatalf("XLA without embeddings (%v) should beat TF (%v)", xlaNo.TimeUs, tfNo.TimeUs)
	}
}

func TestXLAFewerKernelsThanNative(t *testing.T) {
	m := tinyModel(t, "milstm")
	nat := RunNative(m.G, gpusim.NewDevice(gpusim.P100()), TensorFlow(), nil, nil)
	xla := RunXLA(m.G, gpusim.NewDevice(gpusim.P100()), nil, nil)
	if xla.Kernels >= nat.Kernels {
		t.Fatalf("XLA fused to %d kernels, native %d", xla.Kernels, nat.Kernels)
	}
}
