package adapt

import (
	"fmt"
	"reflect"
	"testing"

	"astra/internal/profile"
)

// scriptedPrior serves canned plans per variable ID and records every call.
type scriptedPrior struct {
	plans       map[string]PriorPlan
	observed    []string
	planCalls   int
	invalidated int
}

func (p *scriptedPrior) Plan(ctx, varID string, labels []string) PriorPlan {
	p.planCalls++
	return p.plans[varID]
}

func (p *scriptedPrior) Observe(ctx, varID, label string, us float64) {
	p.observed = append(p.observed, fmt.Sprintf("%s#%s=%s:%g", ctx, varID, label, us))
}

func (p *scriptedPrior) Invalidate() { p.invalidated++ }

// costs drives a single leaf var with fixed per-choice costs.
func leafCosts(v *Var, byChoice []float64) func() map[string]float64 {
	return func() map[string]float64 {
		return map[string]float64{v.ID: byChoice[v.Current()]}
	}
}

func TestPriorRankOrderFollowed(t *testing.T) {
	v := NewVar("v", "a", "b", "c")
	prior := &scriptedPrior{plans: map[string]PriorPlan{
		"v": {Order: []int{2, 0, 1}},
	}}
	e := NewExplorerPrior(LeafNode(v), profile.NewIndex(), "", prior)
	var measured []int
	for !e.Done() {
		if v.Recording() {
			measured = append(measured, v.Current())
		}
		e.Observe(leafCosts(v, []float64{5, 1, 9})())
		e.Advance()
	}
	if want := []int{2, 0, 1}; !reflect.DeepEqual(measured, want) {
		t.Fatalf("measured order %v, want %v", measured, want)
	}
	// Measurement still decides: choice 1 (cost 1) wins despite rank 2.
	if !v.Frozen() || v.Current() != 1 {
		t.Fatalf("frozen=%v choice=%d, want best 1", v.Frozen(), v.Current())
	}
	st := e.PriorStats()
	if st.Hits != 0 || st.Misses != 1 || st.RankInversions != 2 {
		t.Fatalf("stats = %+v, want miss with rank inversion 2", st)
	}
}

func TestPriorPruningSkipsCandidates(t *testing.T) {
	v := NewVar("v", "a", "b", "c", "d")
	prior := &scriptedPrior{plans: map[string]PriorPlan{
		"v": {Order: []int{1, 0, 2, 3}, Pruned: []bool{false, false, true, true}},
	}}
	ix := profile.NewIndex()
	e := NewExplorerPrior(LeafNode(v), ix, "", prior)
	trials := drive(t, e, leafCosts(v, []float64{4, 2, 1, 1}), 50)
	// Only the two unpruned candidates were measured.
	if trials > 3 {
		t.Fatalf("pruned exploration took %d trials, want <= 3", trials)
	}
	for c, want := range []bool{true, true, false, false} {
		if ix.Has(v.KeyFor(c)) != want {
			t.Fatalf("choice %d measured=%v, want %v", c, ix.Has(v.KeyFor(c)), want)
		}
	}
	// Best of the measured set wins — the pruned true-best (cost 1) is
	// simply absent, and the prior's top rank (choice 1) is the hit.
	if v.Current() != 1 {
		t.Fatalf("froze at %d, want 1", v.Current())
	}
	st := e.PriorStats()
	if st.Hits != 1 || st.Misses != 0 || st.Pruned != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 pruned", st)
	}
}

func TestPrunedChoicesAudit(t *testing.T) {
	v := NewVar("v", "a", "b", "c", "d")
	prior := &scriptedPrior{plans: map[string]PriorPlan{
		"v": {Order: []int{1, 0, 2, 3}, Pruned: []bool{false, false, true, true}},
	}}
	e := NewExplorerPrior(LeafNode(v), profile.NewIndex(), "", prior)
	drive(t, e, leafCosts(v, []float64{4, 2, 1, 1}), 50)
	if got, want := e.PrunedChoices(), []string{"v=c", "v=d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("PrunedChoices = %v, want %v", got, want)
	}

	// No prior: the audit trail stays empty through a full exploration.
	v2 := NewVar("v", "a", "b")
	e2 := NewExplorer(LeafNode(v2), profile.NewIndex())
	drive(t, e2, leafCosts(v2, []float64{2, 1}), 50)
	if got := e2.PrunedChoices(); len(got) != 0 {
		t.Fatalf("prior-free audit trail = %v, want empty", got)
	}
}

func TestPriorMalformedPlansDiscarded(t *testing.T) {
	bad := []PriorPlan{
		{Order: []int{0, 1}},                                      // wrong length
		{Order: []int{0, 0, 2}},                                   // duplicate
		{Order: []int{0, 1, 3}},                                   // out of range
		{Order: []int{0, 1, 2}, Pruned: []bool{true}},             // pruned length
		{Order: []int{0, 1, 2}, Pruned: []bool{true, true, true}}, // all pruned
		{Pruned: []bool{true, true, true}},                        // all pruned, no order
	}
	for i, plan := range bad {
		v := NewVar("v", "a", "b", "c")
		prior := &scriptedPrior{plans: map[string]PriorPlan{"v": plan}}
		ix := profile.NewIndex()
		e := NewExplorerPrior(LeafNode(v), ix, "", prior)
		drive(t, e, leafCosts(v, []float64{3, 1, 2}), 50)
		// Discarded wholesale: every candidate measured, best frozen.
		for c := range v.Labels {
			if !ix.Has(v.KeyFor(c)) {
				t.Fatalf("plan %d: choice %d not measured after malformed plan", i, c)
			}
		}
		if v.Current() != 1 {
			t.Fatalf("plan %d: froze at %d, want 1", i, v.Current())
		}
		if st := e.PriorStats(); st.Pruned != 0 {
			t.Fatalf("plan %d: pruned count %d from discarded plan", i, st.Pruned)
		}
	}
}

func TestPriorObserveForwarding(t *testing.T) {
	v := NewVar("v", "a", "b")
	prior := &scriptedPrior{}
	e := NewExplorerPrior(LeafNode(v), profile.NewIndex(), "base", prior)
	drive(t, e, leafCosts(v, []float64{7, 3}), 50)
	want := []string{"base#v=a:7", "base#v=b:3"}
	if !reflect.DeepEqual(prior.observed, want) {
		t.Fatalf("observed %v, want %v", prior.observed, want)
	}
}

func TestPriorPlanCachedPerContext(t *testing.T) {
	v := NewVar("v", "a", "b", "c")
	prior := &scriptedPrior{plans: map[string]PriorPlan{"v": {Order: []int{1, 0, 2}}}}
	e := NewExplorerPrior(LeafNode(v), profile.NewIndex(), "", prior)
	drive(t, e, leafCosts(v, []float64{2, 1, 3}), 50)
	if prior.planCalls != 1 {
		t.Fatalf("Plan called %d times for one (var, context), want 1", prior.planCalls)
	}
}

func TestThawInvalidatesPlansAndReplans(t *testing.T) {
	v := NewVar("v", "a", "b")
	prior := &scriptedPrior{plans: map[string]PriorPlan{"v": {Order: []int{1, 0}}}}
	e := NewExplorerPrior(LeafNode(v), profile.NewIndex(), "", prior)
	drive(t, e, leafCosts(v, []float64{5, 2}), 50)
	calls := prior.planCalls
	e.Thaw()
	if prior.invalidated != 1 {
		t.Fatalf("Thaw invalidated %d times, want 1", prior.invalidated)
	}
	drive(t, e, leafCosts(v, []float64{1, 2}), 50)
	if prior.planCalls <= calls {
		t.Fatalf("no re-plan after thaw (calls %d -> %d)", calls, prior.planCalls)
	}
	// Post-drift re-measurement decides fresh: choice 0 now wins.
	if v.Current() != 0 {
		t.Fatalf("post-thaw froze at %d, want 0", v.Current())
	}
}

// TestZeroPlanIdenticalToNoPrior pins the ModeTrain guarantee: a prior that
// returns only zero plans must not perturb exploration at all.
func TestZeroPlanIdenticalToNoPrior(t *testing.T) {
	build := func() (*Tree, []*Var, func() map[string]float64) {
		a := NewVar("a", "0", "1", "2")
		b := NewVar("b", "0", "1")
		c := NewVar("c", "0", "1")
		tree := NewNode("root", Prefix,
			LeafNode(a),
			NewNode("ex", Exhaustive, LeafNode(b), LeafNode(c)),
		)
		metrics := func() map[string]float64 {
			m := map[string]float64{}
			m["a"] = []float64{3, 1, 2}[a.Current()]
			joint := 10.0
			if b.Current() == 1 && c.Current() == 0 {
				joint = 2
			}
			m["ex"] = joint
			return m
		}
		return tree, []*Var{a, b, c}, metrics
	}

	treeA, varsA, metricsA := build()
	ea := NewExplorer(treeA, profile.NewIndex())
	trialsA := drive(t, ea, metricsA, 100)

	treeB, varsB, metricsB := build()
	eb := NewExplorerPrior(treeB, profile.NewIndex(), "", &scriptedPrior{})
	trialsB := drive(t, eb, metricsB, 100)

	if trialsA != trialsB {
		t.Fatalf("zero-plan prior changed trial count: %d vs %d", trialsA, trialsB)
	}
	for i := range varsA {
		if varsA[i].Current() != varsB[i].Current() {
			t.Fatalf("var %s froze differently: %d vs %d", varsA[i].ID, varsA[i].Current(), varsB[i].Current())
		}
	}
	if st := eb.PriorStats(); st != (PriorStats{}) {
		t.Fatalf("zero-plan prior accrued stats: %+v", st)
	}
}

func TestPriorExhaustiveCompositePlan(t *testing.T) {
	// The exhaustive composite var is planned like a leaf: its labels are
	// the joint tuples. Prune the known-bad half.
	a := NewVar("a", "0", "1")
	b := NewVar("b", "0", "1")
	tree := NewNode("ex", Exhaustive, LeafNode(a), LeafNode(b))
	// Labels of the composite: "a=0,b=0", "a=0,b=1", "a=1,b=0", "a=1,b=1".
	prior := &scriptedPrior{plans: map[string]PriorPlan{
		"ex": {Order: []int{3, 2, 1, 0}, Pruned: []bool{true, false, false, false}},
	}}
	ix := profile.NewIndex()
	e := NewExplorerPrior(tree, ix, "", prior)
	trials := drive(t, e, func() map[string]float64 {
		cost := 10.0
		if a.Current() == 1 && b.Current() == 1 {
			cost = 1
		}
		return map[string]float64{"ex": cost}
	}, 50)
	if trials > 4 {
		t.Fatalf("pruned exhaustive took %d trials", trials)
	}
	if a.Current() != 1 || b.Current() != 1 {
		t.Fatalf("froze at a=%d b=%d, want 1/1", a.Current(), b.Current())
	}
	st := e.PriorStats()
	if st.Pruned != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 pruned / 1 hit", st)
	}
}
