package adapt

import (
	"strings"
	"testing"

	"astra/internal/profile"
)

// drive runs the explorer against a synthetic cost model until convergence,
// returning the trial count. metrics(e) must return the per-variable
// measurements for the current configuration.
func drive(t *testing.T, e *Explorer, metrics func() map[string]float64, maxTrials int) int {
	t.Helper()
	for !e.Done() {
		if e.Trials() > maxTrials {
			t.Fatalf("exploration exceeded %d trials", maxTrials)
		}
		e.Observe(metrics())
		e.Advance()
	}
	return e.Trials()
}

func TestVarBasics(t *testing.T) {
	v := NewVar("v", "a", "b", "c")
	if v.Current() != 0 || v.CurrentLabel() != "a" {
		t.Fatal("fresh var not at default")
	}
	v.current = 2
	v.frozen = true
	v.Initialize()
	if v.Current() != 0 || v.Frozen() {
		t.Fatal("Initialize did not reset")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewVar accepted empty labels")
			}
		}()
		NewVar("x")
	}()
}

func TestParallelExplorationIsAdditive(t *testing.T) {
	// 5 independent variables x 3 choices: parallel exploration needs ~3
	// trials, not 3^5 (§4.5.1's worked example).
	ix := profile.NewIndex()
	vars := make([]*Var, 5)
	leaves := make([]*Tree, 5)
	for i := range vars {
		vars[i] = NewVar(string(rune('a'+i)), "c0", "c1", "c2")
		leaves[i] = LeafNode(vars[i])
	}
	best := []int{2, 0, 1, 2, 0}
	e := NewExplorer(NewNode("root", Parallel, leaves...), ix)
	trials := drive(t, e, func() map[string]float64 {
		m := map[string]float64{}
		for i, v := range vars {
			cost := 10.0
			if v.Current() == best[i] {
				cost = 1
			}
			m[v.ID] = cost + float64(i)
		}
		return m
	}, 50)
	if trials > 4 {
		t.Fatalf("parallel exploration took %d trials, want <= 4", trials)
	}
	for i, v := range vars {
		if !v.Frozen() || v.Current() != best[i] {
			t.Fatalf("var %d frozen=%v choice=%d, want best %d", i, v.Frozen(), v.Current(), best[i])
		}
	}
}

func TestExhaustiveFindsInteractingOptimum(t *testing.T) {
	// Two interacting variables: the best joint choice is not the best of
	// each in isolation — exhaustive mode must still find it.
	ix := profile.NewIndex()
	a := NewVar("a", "0", "1")
	b := NewVar("b", "0", "1")
	node := NewNode("epoch", Exhaustive, LeafNode(a), LeafNode(b))
	cost := map[[2]int]float64{
		{0, 0}: 5, {0, 1}: 4, {1, 0}: 4, {1, 1}: 1, // interaction: (1,1) wins
	}
	e := NewExplorer(node, ix)
	trials := drive(t, e, func() map[string]float64 {
		return map[string]float64{"epoch": cost[[2]int{a.Current(), b.Current()}]}
	}, 20)
	if trials != 4 {
		t.Fatalf("exhaustive over 2x2 took %d trials, want 4", trials)
	}
	if a.Current() != 1 || b.Current() != 1 {
		t.Fatalf("converged to (%d,%d), want (1,1)", a.Current(), b.Current())
	}
}

func TestExhaustiveRequiresLeaves(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustive accepted a subtree child")
		}
	}()
	inner := NewNode("p", Parallel, LeafNode(NewVar("x", "a")))
	NewNode("e", Exhaustive, inner)
}

func TestPrefixIsHistoryAware(t *testing.T) {
	// Child b's best depends on child a's frozen choice. Prefix order must
	// freeze a first and then find b's conditional best.
	ix := profile.NewIndex()
	a := NewVar("a", "0", "1")
	b := NewVar("b", "0", "1")
	node := NewNode("superepoch", Prefix, LeafNode(a), LeafNode(b))
	// a=1 is best alone. Given a=1, b=0 is best (b=1 would be best under
	// a=0 — the conditional structure).
	costA := []float64{10, 5}
	costB := map[[2]int]float64{{0, 0}: 9, {0, 1}: 3, {1, 0}: 2, {1, 1}: 6}
	e := NewExplorer(node, ix)
	drive(t, e, func() map[string]float64 {
		return map[string]float64{
			"a": costA[a.Current()],
			"b": costA[a.Current()] + costB[[2]int{a.Current(), b.Current()}],
		}
	}, 20)
	if a.Current() != 1 {
		t.Fatalf("a converged to %d, want 1", a.Current())
	}
	if b.Current() != 0 {
		t.Fatalf("b converged to %d, want 0 (conditional best under a=1)", b.Current())
	}
}

func TestPrefixIsAdditiveInChildren(t *testing.T) {
	// k children with c choices each: ~k*c trials, not c^k (§4.5.4).
	ix := profile.NewIndex()
	const k, c = 6, 4
	vars := make([]*Var, k)
	leaves := make([]*Tree, k)
	for i := range vars {
		labels := make([]string, c)
		for j := range labels {
			labels[j] = string(rune('0' + j))
		}
		vars[i] = NewVar(string(rune('a'+i)), labels...)
		leaves[i] = LeafNode(vars[i])
	}
	e := NewExplorer(NewNode("se", Prefix, leaves...), ix)
	trials := drive(t, e, func() map[string]float64 {
		m := map[string]float64{}
		for _, v := range vars {
			m[v.ID] = float64(1 + (v.Current()+3)%c)
		}
		return m
	}, 200)
	if trials > k*c+k {
		t.Fatalf("prefix exploration took %d trials, want <= %d", trials, k*c+k)
	}
}

func TestForkExploresSubtreePerPolicyAndValidates(t *testing.T) {
	// Policy (allocation strategy) with 2 choices; subtree has one var with
	// 2 choices whose cost depends on the policy. Policy p1 enables the
	// globally best config even though p0's default looks fine.
	ix := profile.NewIndex()
	policy := NewVar("alloc", "p0", "p1")
	x := NewVar("x", "x0", "x1")
	tree := NewNode("root", Fork, LeafNode(policy), LeafNode(x))
	cost := map[[2]int]float64{
		{0, 0}: 5, {0, 1}: 4, // under p0 the best is 4
		{1, 0}: 6, {1, 1}: 2, // under p1 the best is 2 — global winner
	}
	e := NewExplorer(tree, ix)
	trials := drive(t, e, func() map[string]float64 {
		c := cost[[2]int{policy.Current(), x.Current()}]
		return map[string]float64{"x": c, "alloc": c}
	}, 50)
	if policy.Current() != 1 {
		t.Fatalf("policy converged to %s", policy.CurrentLabel())
	}
	if x.Current() != 1 {
		t.Fatalf("x converged to %s", x.CurrentLabel())
	}
	// Expected trial budget: per policy, 2 subtree trials + 1 validation.
	if trials > 8 {
		t.Fatalf("fork took %d trials", trials)
	}
	// Context mangling: x must have been measured separately per policy.
	if _, ok := ix.Lookup(profile.K("/alloc=p0", "x", "x0")); !ok {
		t.Fatal("missing x measurement under p0 context")
	}
	if _, ok := ix.Lookup(profile.K("/alloc=p1", "x", "x0")); !ok {
		t.Fatal("missing x measurement under p1 context")
	}
}

func TestForkValidationUsesBestSubConfig(t *testing.T) {
	// The end-to-end validation trial for each policy must run with the
	// subtree frozen at its best choice under that policy.
	ix := profile.NewIndex()
	policy := NewVar("alloc", "p0", "p1")
	x := NewVar("x", "x0", "x1")
	tree := NewNode("root", Fork, LeafNode(policy), LeafNode(x))
	e := NewExplorer(tree, ix)
	sawValidation := map[string]int{}
	drive(t, e, func() map[string]float64 {
		cost := map[[2]int]float64{{0, 0}: 5, {0, 1}: 1, {1, 0}: 3, {1, 1}: 7}[[2]int{policy.Current(), x.Current()}]
		if policy.Recording() {
			sawValidation[policy.CurrentLabel()] = x.Current()
		}
		return map[string]float64{"x": cost, "alloc": cost}
	}, 50)
	if sawValidation["p0"] != 1 {
		t.Fatalf("p0 validated with x=%d, want best x=1", sawValidation["p0"])
	}
	if sawValidation["p1"] != 0 {
		t.Fatalf("p1 validated with x=%d, want best x=0", sawValidation["p1"])
	}
	if policy.CurrentLabel() != "p0" {
		t.Fatalf("policy = %s, want p0 (validated 1 vs 3)", policy.CurrentLabel())
	}
}

func TestNestedTreeConverges(t *testing.T) {
	// A realistic composite: Fork(alloc, Parallel(fusion vars, Prefix(epochs...))).
	ix := profile.NewIndex()
	alloc := NewVar("alloc", "a0", "a1")
	f1 := NewVar("fuse1", "1", "2", "4")
	f2 := NewVar("fuse2", "1", "2", "4")
	e1a := NewVar("e1k1", "s0", "s1")
	e1b := NewVar("e1k2", "s0", "s1")
	e2 := NewVar("e2k1", "s0", "s1")
	tree := NewNode("root", Fork,
		LeafNode(alloc),
		NewNode("body", Parallel,
			LeafNode(f1),
			LeafNode(f2),
			NewNode("se0", Prefix,
				NewNode("epoch1", Exhaustive, LeafNode(e1a), LeafNode(e1b)),
				LeafNode(e2),
			),
		),
	)
	e := NewExplorer(tree, ix)
	allVars := []*Var{f1, f2, e2}
	trials := drive(t, e, func() map[string]float64 {
		m := map[string]float64{}
		base := 1.0
		if alloc.Current() == 1 {
			base = 0.5
		}
		for _, v := range allVars {
			m[v.ID] = base * float64(1+v.Current())
		}
		m["epoch1"] = base * float64(1+e1a.Current()+e1b.Current())
		m["alloc"] = base * 10
		return m
	}, 200)
	if alloc.CurrentLabel() != "a1" {
		t.Fatalf("alloc = %s", alloc.CurrentLabel())
	}
	if trials > 60 {
		t.Fatalf("nested exploration took %d trials", trials)
	}
	for _, v := range e.Vars() {
		if !v.Frozen() {
			t.Fatalf("var %s not frozen after convergence", v.ID)
		}
	}
}

func TestStuckExplorationSurfacesStickyError(t *testing.T) {
	// A custom-wirer that never measures the active variables must not
	// crash the process: Advance reports a sticky error, Done turns true so
	// session loops terminate, and the variables stay unvalidated.
	ix := profile.NewIndex()
	v := NewVar("v", "a", "b")
	e := NewExplorer(LeafNode(v), ix)
	for i := 0; i < 100; i++ {
		e.Observe(map[string]float64{}) // never measures v
		if !e.Advance() {
			break
		}
	}
	if e.Err() == nil {
		t.Fatal("stuck exploration produced no error")
	}
	if !e.Done() {
		t.Fatal("errored exploration must report Done so session loops exit")
	}
	if e.Advance() {
		t.Fatal("Advance after sticky error kept going")
	}
	if !strings.Contains(e.Err().Error(), "stuck") {
		t.Fatalf("unhelpful error: %v", e.Err())
	}
}

func TestPrefixContextAccumulatesAllEarlierSiblings(t *testing.T) {
	// With ≥3 prefix children, the context of child c must depend on the
	// frozen choices of *all* earlier siblings. Child b has a single choice,
	// so its digest never changes: rebuilding c's context from b alone
	// (the old bug) would make c blind to a's frozen choice.
	run := func(costA []float64) (string, *Var) {
		ix := profile.NewIndex()
		a := NewVar("a", "0", "1")
		b := NewVar("b", "only")
		c := NewVar("c", "0", "1")
		e := NewExplorer(NewNode("se", Prefix, LeafNode(a), LeafNode(b), LeafNode(c)), ix)
		drive(t, e, func() map[string]float64 {
			return map[string]float64{
				"a": costA[a.Current()],
				"b": 1,
				"c": float64(1 + c.Current()),
			}
		}, 50)
		return c.Context(), a
	}
	ctxA0, a0 := run([]float64{1, 2}) // a freezes to 0
	ctxA1, a1 := run([]float64{2, 1}) // a freezes to 1
	if a0.Current() != 0 || a1.Current() != 1 {
		t.Fatalf("setup broken: a froze to %d and %d", a0.Current(), a1.Current())
	}
	if ctxA0 == ctxA1 {
		t.Fatalf("c's context %q ignores a's frozen choice (b's digest repeats)", ctxA0)
	}
}

func TestThawReExploresWithFreshMeasurements(t *testing.T) {
	// Converge, then shift the cost model (a drifting device) and Thaw: the
	// explorer must evict the stale measurements, re-explore, and land on
	// the new best.
	ix := profile.NewIndex()
	a := NewVar("a", "0", "1")
	b := NewVar("b", "0", "1")
	e := NewExplorer(NewNode("root", Parallel, LeafNode(a), LeafNode(b)), ix)
	cost := map[string][]float64{"a": {1, 5}, "b": {5, 1}}
	metrics := func() map[string]float64 {
		return map[string]float64{"a": cost["a"][a.Current()], "b": cost["b"][b.Current()]}
	}
	drive(t, e, metrics, 20)
	if a.Current() != 0 || b.Current() != 1 {
		t.Fatalf("pre-drift converged to (%d,%d)", a.Current(), b.Current())
	}

	cost["a"] = []float64{5, 1} // the device drifted: a's best flipped
	if evicted := e.Thaw("a"); evicted == 0 {
		t.Fatal("Thaw evicted nothing")
	}
	if e.Done() {
		t.Fatal("thawed explorer claims convergence")
	}
	if b.Frozen() != true {
		t.Fatal("untouched variable b lost its frozen state")
	}
	drive(t, e, metrics, 40)
	if a.Current() != 1 {
		t.Fatalf("post-drift a = %d, want 1", a.Current())
	}
	if e.Reexplorations() != 1 {
		t.Fatalf("Reexplorations = %d", e.Reexplorations())
	}

	// Thaw with no arguments thaws everything.
	if e.Thaw() == 0 {
		t.Fatal("full thaw evicted nothing")
	}
	if frozen, _ := e.FrozenCount(); frozen != 0 {
		t.Fatalf("%d vars still frozen after full thaw", frozen)
	}
	drive(t, e, metrics, 40)
	if !e.Done() || e.Err() != nil {
		t.Fatal("full re-exploration did not reconverge")
	}
}

func TestMultiSamplePolicyKeepsRecordingUntilSatisfied(t *testing.T) {
	// Under a FixedSamples(3) policy the explorer must hold each choice
	// active for three trials and freeze on the better *mean*, not on a
	// lucky first sample.
	ix := profile.NewIndex()
	ix.SetPolicy(profile.FixedSamples(3))
	v := NewVar("v", "good", "bad")
	e := NewExplorer(LeafNode(v), ix)
	// good: noisy around 10 with one lucky-looking 6; bad: consistent 9.
	seq := map[string][]float64{
		"good": {14, 10, 12},
		"bad":  {9, 9, 9},
	}
	seen := map[string]int{}
	drive(t, e, func() map[string]float64 {
		l := v.CurrentLabel()
		s := seq[l][seen[l]%3]
		seen[l]++
		return map[string]float64{"v": s}
	}, 20)
	if got := ix.SampleCount(profile.K("", "v", "good")); got != 3 {
		t.Fatalf("good sampled %d times, want 3", got)
	}
	if got := ix.SampleCount(profile.K("", "v", "bad")); got != 3 {
		t.Fatalf("bad sampled %d times, want 3", got)
	}
	if v.CurrentLabel() != "bad" {
		t.Fatalf("froze on %s; mean of 'bad' (9) beats mean of 'good' (12)", v.CurrentLabel())
	}
	if e.Trials() != 6 {
		t.Fatalf("took %d trials, want 6 (2 choices x 3 samples)", e.Trials())
	}
}

func TestTreeRenderAndSize(t *testing.T) {
	tree := NewNode("root", Parallel,
		LeafNode(NewVar("a", "x", "y")),
		NewNode("e", Exhaustive, LeafNode(NewVar("b", "x")), LeafNode(NewVar("c", "x"))),
	)
	r := tree.Render()
	for _, want := range []string{"+ root (parallel)", "- a [2 choices]", "+ e (exhaustive)"} {
		if !strings.Contains(r, want) {
			t.Fatalf("Render missing %q:\n%s", want, r)
		}
	}
	if tree.Size() != 2 { // leaf a + exhaustive composite
		t.Fatalf("Size = %d", tree.Size())
	}
}

func TestSingleChoiceVarsConvergeImmediately(t *testing.T) {
	ix := profile.NewIndex()
	v := NewVar("only", "theone")
	e := NewExplorer(LeafNode(v), ix)
	trials := drive(t, e, func() map[string]float64 {
		return map[string]float64{"only": 1}
	}, 5)
	if trials > 1 {
		t.Fatalf("single choice took %d trials", trials)
	}
}

func TestModeString(t *testing.T) {
	if Parallel.String() != "parallel" || Prefix.String() != "prefix" ||
		Exhaustive.String() != "exhaustive" || Fork.String() != "fork" {
		t.Fatal("mode names wrong")
	}
}
