package adapt

import (
	"strings"
	"testing"

	"astra/internal/profile"
)

// drive runs the explorer against a synthetic cost model until convergence,
// returning the trial count. metrics(e) must return the per-variable
// measurements for the current configuration.
func drive(t *testing.T, e *Explorer, metrics func() map[string]float64, maxTrials int) int {
	t.Helper()
	for !e.Done() {
		if e.Trials() > maxTrials {
			t.Fatalf("exploration exceeded %d trials", maxTrials)
		}
		e.Observe(metrics())
		e.Advance()
	}
	return e.Trials()
}

func TestVarBasics(t *testing.T) {
	v := NewVar("v", "a", "b", "c")
	if v.Current() != 0 || v.CurrentLabel() != "a" {
		t.Fatal("fresh var not at default")
	}
	v.current = 2
	v.frozen = true
	v.Initialize()
	if v.Current() != 0 || v.Frozen() {
		t.Fatal("Initialize did not reset")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewVar accepted empty labels")
			}
		}()
		NewVar("x")
	}()
}

func TestParallelExplorationIsAdditive(t *testing.T) {
	// 5 independent variables x 3 choices: parallel exploration needs ~3
	// trials, not 3^5 (§4.5.1's worked example).
	ix := profile.NewIndex()
	vars := make([]*Var, 5)
	leaves := make([]*Tree, 5)
	for i := range vars {
		vars[i] = NewVar(string(rune('a'+i)), "c0", "c1", "c2")
		leaves[i] = LeafNode(vars[i])
	}
	best := []int{2, 0, 1, 2, 0}
	e := NewExplorer(NewNode("root", Parallel, leaves...), ix)
	trials := drive(t, e, func() map[string]float64 {
		m := map[string]float64{}
		for i, v := range vars {
			cost := 10.0
			if v.Current() == best[i] {
				cost = 1
			}
			m[v.ID] = cost + float64(i)
		}
		return m
	}, 50)
	if trials > 4 {
		t.Fatalf("parallel exploration took %d trials, want <= 4", trials)
	}
	for i, v := range vars {
		if !v.Frozen() || v.Current() != best[i] {
			t.Fatalf("var %d frozen=%v choice=%d, want best %d", i, v.Frozen(), v.Current(), best[i])
		}
	}
}

func TestExhaustiveFindsInteractingOptimum(t *testing.T) {
	// Two interacting variables: the best joint choice is not the best of
	// each in isolation — exhaustive mode must still find it.
	ix := profile.NewIndex()
	a := NewVar("a", "0", "1")
	b := NewVar("b", "0", "1")
	node := NewNode("epoch", Exhaustive, LeafNode(a), LeafNode(b))
	cost := map[[2]int]float64{
		{0, 0}: 5, {0, 1}: 4, {1, 0}: 4, {1, 1}: 1, // interaction: (1,1) wins
	}
	e := NewExplorer(node, ix)
	trials := drive(t, e, func() map[string]float64 {
		return map[string]float64{"epoch": cost[[2]int{a.Current(), b.Current()}]}
	}, 20)
	if trials != 4 {
		t.Fatalf("exhaustive over 2x2 took %d trials, want 4", trials)
	}
	if a.Current() != 1 || b.Current() != 1 {
		t.Fatalf("converged to (%d,%d), want (1,1)", a.Current(), b.Current())
	}
}

func TestExhaustiveRequiresLeaves(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustive accepted a subtree child")
		}
	}()
	inner := NewNode("p", Parallel, LeafNode(NewVar("x", "a")))
	NewNode("e", Exhaustive, inner)
}

func TestPrefixIsHistoryAware(t *testing.T) {
	// Child b's best depends on child a's frozen choice. Prefix order must
	// freeze a first and then find b's conditional best.
	ix := profile.NewIndex()
	a := NewVar("a", "0", "1")
	b := NewVar("b", "0", "1")
	node := NewNode("superepoch", Prefix, LeafNode(a), LeafNode(b))
	// a=1 is best alone. Given a=1, b=0 is best (b=1 would be best under
	// a=0 — the conditional structure).
	costA := []float64{10, 5}
	costB := map[[2]int]float64{{0, 0}: 9, {0, 1}: 3, {1, 0}: 2, {1, 1}: 6}
	e := NewExplorer(node, ix)
	drive(t, e, func() map[string]float64 {
		return map[string]float64{
			"a": costA[a.Current()],
			"b": costA[a.Current()] + costB[[2]int{a.Current(), b.Current()}],
		}
	}, 20)
	if a.Current() != 1 {
		t.Fatalf("a converged to %d, want 1", a.Current())
	}
	if b.Current() != 0 {
		t.Fatalf("b converged to %d, want 0 (conditional best under a=1)", b.Current())
	}
}

func TestPrefixIsAdditiveInChildren(t *testing.T) {
	// k children with c choices each: ~k*c trials, not c^k (§4.5.4).
	ix := profile.NewIndex()
	const k, c = 6, 4
	vars := make([]*Var, k)
	leaves := make([]*Tree, k)
	for i := range vars {
		labels := make([]string, c)
		for j := range labels {
			labels[j] = string(rune('0' + j))
		}
		vars[i] = NewVar(string(rune('a'+i)), labels...)
		leaves[i] = LeafNode(vars[i])
	}
	e := NewExplorer(NewNode("se", Prefix, leaves...), ix)
	trials := drive(t, e, func() map[string]float64 {
		m := map[string]float64{}
		for _, v := range vars {
			m[v.ID] = float64(1 + (v.Current()+3)%c)
		}
		return m
	}, 200)
	if trials > k*c+k {
		t.Fatalf("prefix exploration took %d trials, want <= %d", trials, k*c+k)
	}
}

func TestForkExploresSubtreePerPolicyAndValidates(t *testing.T) {
	// Policy (allocation strategy) with 2 choices; subtree has one var with
	// 2 choices whose cost depends on the policy. Policy p1 enables the
	// globally best config even though p0's default looks fine.
	ix := profile.NewIndex()
	policy := NewVar("alloc", "p0", "p1")
	x := NewVar("x", "x0", "x1")
	tree := NewNode("root", Fork, LeafNode(policy), LeafNode(x))
	cost := map[[2]int]float64{
		{0, 0}: 5, {0, 1}: 4, // under p0 the best is 4
		{1, 0}: 6, {1, 1}: 2, // under p1 the best is 2 — global winner
	}
	e := NewExplorer(tree, ix)
	trials := drive(t, e, func() map[string]float64 {
		c := cost[[2]int{policy.Current(), x.Current()}]
		return map[string]float64{"x": c, "alloc": c}
	}, 50)
	if policy.Current() != 1 {
		t.Fatalf("policy converged to %s", policy.CurrentLabel())
	}
	if x.Current() != 1 {
		t.Fatalf("x converged to %s", x.CurrentLabel())
	}
	// Expected trial budget: per policy, 2 subtree trials + 1 validation.
	if trials > 8 {
		t.Fatalf("fork took %d trials", trials)
	}
	// Context mangling: x must have been measured separately per policy.
	if _, ok := ix.Lookup(profile.K("/alloc=p0", "x", "x0")); !ok {
		t.Fatal("missing x measurement under p0 context")
	}
	if _, ok := ix.Lookup(profile.K("/alloc=p1", "x", "x0")); !ok {
		t.Fatal("missing x measurement under p1 context")
	}
}

func TestForkValidationUsesBestSubConfig(t *testing.T) {
	// The end-to-end validation trial for each policy must run with the
	// subtree frozen at its best choice under that policy.
	ix := profile.NewIndex()
	policy := NewVar("alloc", "p0", "p1")
	x := NewVar("x", "x0", "x1")
	tree := NewNode("root", Fork, LeafNode(policy), LeafNode(x))
	e := NewExplorer(tree, ix)
	sawValidation := map[string]int{}
	drive(t, e, func() map[string]float64 {
		cost := map[[2]int]float64{{0, 0}: 5, {0, 1}: 1, {1, 0}: 3, {1, 1}: 7}[[2]int{policy.Current(), x.Current()}]
		if policy.Recording() {
			sawValidation[policy.CurrentLabel()] = x.Current()
		}
		return map[string]float64{"x": cost, "alloc": cost}
	}, 50)
	if sawValidation["p0"] != 1 {
		t.Fatalf("p0 validated with x=%d, want best x=1", sawValidation["p0"])
	}
	if sawValidation["p1"] != 0 {
		t.Fatalf("p1 validated with x=%d, want best x=0", sawValidation["p1"])
	}
	if policy.CurrentLabel() != "p0" {
		t.Fatalf("policy = %s, want p0 (validated 1 vs 3)", policy.CurrentLabel())
	}
}

func TestNestedTreeConverges(t *testing.T) {
	// A realistic composite: Fork(alloc, Parallel(fusion vars, Prefix(epochs...))).
	ix := profile.NewIndex()
	alloc := NewVar("alloc", "a0", "a1")
	f1 := NewVar("fuse1", "1", "2", "4")
	f2 := NewVar("fuse2", "1", "2", "4")
	e1a := NewVar("e1k1", "s0", "s1")
	e1b := NewVar("e1k2", "s0", "s1")
	e2 := NewVar("e2k1", "s0", "s1")
	tree := NewNode("root", Fork,
		LeafNode(alloc),
		NewNode("body", Parallel,
			LeafNode(f1),
			LeafNode(f2),
			NewNode("se0", Prefix,
				NewNode("epoch1", Exhaustive, LeafNode(e1a), LeafNode(e1b)),
				LeafNode(e2),
			),
		),
	)
	e := NewExplorer(tree, ix)
	allVars := []*Var{f1, f2, e2}
	trials := drive(t, e, func() map[string]float64 {
		m := map[string]float64{}
		base := 1.0
		if alloc.Current() == 1 {
			base = 0.5
		}
		for _, v := range allVars {
			m[v.ID] = base * float64(1+v.Current())
		}
		m["epoch1"] = base * float64(1+e1a.Current()+e1b.Current())
		m["alloc"] = base * 10
		return m
	}, 200)
	if alloc.CurrentLabel() != "a1" {
		t.Fatalf("alloc = %s", alloc.CurrentLabel())
	}
	if trials > 60 {
		t.Fatalf("nested exploration took %d trials", trials)
	}
	for _, v := range e.Vars() {
		if !v.Frozen() {
			t.Fatalf("var %s not frozen after convergence", v.ID)
		}
	}
}

func TestStuckExplorationPanics(t *testing.T) {
	ix := profile.NewIndex()
	v := NewVar("v", "a", "b")
	e := NewExplorer(LeafNode(v), ix)
	defer func() {
		if recover() == nil {
			t.Fatal("expected stuck-exploration panic")
		}
	}()
	for i := 0; i < 100; i++ {
		e.Observe(map[string]float64{}) // never measures v
		e.Advance()
	}
}

func TestTreeRenderAndSize(t *testing.T) {
	tree := NewNode("root", Parallel,
		LeafNode(NewVar("a", "x", "y")),
		NewNode("e", Exhaustive, LeafNode(NewVar("b", "x")), LeafNode(NewVar("c", "x"))),
	)
	r := tree.Render()
	for _, want := range []string{"+ root (parallel)", "- a [2 choices]", "+ e (exhaustive)"} {
		if !strings.Contains(r, want) {
			t.Fatalf("Render missing %q:\n%s", want, r)
		}
	}
	if tree.Size() != 2 { // leaf a + exhaustive composite
		t.Fatalf("Size = %d", tree.Size())
	}
}

func TestSingleChoiceVarsConvergeImmediately(t *testing.T) {
	ix := profile.NewIndex()
	v := NewVar("only", "theone")
	e := NewExplorer(LeafNode(v), ix)
	trials := drive(t, e, func() map[string]float64 {
		return map[string]float64{"only": 1}
	}, 5)
	if trials > 1 {
		t.Fatalf("single choice took %d trials", trials)
	}
}

func TestModeString(t *testing.T) {
	if Parallel.String() != "parallel" || Prefix.String() != "prefix" ||
		Exhaustive.String() != "exhaustive" || Fork.String() != "fork" {
		t.Fatal("mode names wrong")
	}
}
