// Package adapt implements Astra's adaptive variables and the update tree
// that drives online exploration (§4.4.2 and §4.5 of the paper).
//
// An adaptive variable is the unit of adaptation: a named choice among a
// small set of labelled options (which GEMM library, which fusion chunk
// size, which stream for a kernel, which allocation strategy). Variables
// are arranged in an update tree whose internal nodes are annotated with an
// exploration mode:
//
//   - Parallel: children explore simultaneously — fine-grained profiling
//     makes their measurements independent, so the state space is additive
//     (§4.5.1).
//   - Prefix: children explore one after another; earlier siblings freeze
//     at their best before a later sibling starts, and their frozen labels
//     become part of the later sibling's profile context (§4.5.4).
//   - Exhaustive: the children (which must be leaves) are explored as a
//     single composite variable over the cartesian product of their
//     choices — used inside epochs where stream assignment is
//     history-sensitive (§4.5.3).
//   - Fork: the first child is a policy variable (e.g. the allocation
//     strategy) whose current label prefixes the context of the whole
//     subtree; each policy choice is explored to completion, then validated
//     end-to-end, before the next policy choice begins (§4.5.2).
//
// The Explorer walks the tree once per mini-batch trial: it decides the
// configuration to run, the custom-wirer executes and measures it, and
// Observe feeds the measurements back into the profile index under
// context-mangled keys.
package adapt

import (
	"fmt"
	"strings"

	"astra/internal/profile"
)

// Var is an adaptive variable: the paper's initialize / iterate /
// get_profile_value unit. The explorer owns iteration; callers read
// Current to build the schedule for the next trial.
type Var struct {
	ID     string
	Labels []string

	current   int
	frozen    bool
	frozenCtx string
	ctx       string
	record    bool // set by the explorer walk: measure this var this trial

	// Per-context key cache: the explorer probes every choice's profile key
	// on each walk, and rebuilding the mangled strings each trial dominated
	// the setup allocations. The cache is invalidated by context change.
	keyCtx string
	keys   []profile.Key

	// Per-context prior-plan cache, mirroring the key cache: the explorer
	// asks the attached Prior for a visit plan once per (variable, context)
	// and reuses it across trials. planOK distinguishes "no plan yet" from
	// a cached zero plan; Explorer.invalidatePlans clears it on thaw.
	planCtx string
	plan    PriorPlan
	planOK  bool
}

// NewVar builds a variable with the given choice labels.
func NewVar(id string, labels ...string) *Var {
	if id == "" || len(labels) == 0 {
		panic("adapt: variable needs an ID and at least one label")
	}
	return &Var{ID: id, Labels: labels}
}

// Current returns the active choice index.
func (v *Var) Current() int { return v.current }

// SetChoice overrides the active choice directly, bypassing the explorer.
// External tuners (e.g. the random-mutation ablation baseline) use it; the
// explorer's own walk always goes through setup.
func (v *Var) SetChoice(c int) {
	if c < 0 || c >= len(v.Labels) {
		panic(fmt.Sprintf("adapt: choice %d of %d for %s", c, len(v.Labels), v.ID))
	}
	v.current = c
}

// CurrentLabel returns the active choice label.
func (v *Var) CurrentLabel() string { return v.Labels[v.current] }

// Context returns the profile-context prefix the variable was last walked
// under; profile keys for its measurements use it.
func (v *Var) Context() string { return v.ctx }

// Frozen reports whether the variable has settled on its best choice for
// the current context.
func (v *Var) Frozen() bool { return v.frozen && v.frozenCtx == v.ctx }

// Initialize resets the variable to its default choice (§4.4.2).
func (v *Var) Initialize() {
	v.current = 0
	v.frozen = false
	v.frozenCtx = ""
	v.planOK = false
	v.plan = PriorPlan{}
}

// Key returns the profile key for the variable's current (context, choice).
//
//astra:hotpath
func (v *Var) Key() profile.Key { return v.KeyFor(v.current) }

// KeyFor returns the profile key of choice c under the variable's current
// context, from a per-context cache: the keys for all of a variable's
// choices are built once per context and reused across trials.
//
//astra:hotpath
func (v *Var) KeyFor(c int) profile.Key {
	if v.keyCtx != v.ctx || len(v.keys) != len(v.Labels) {
		if cap(v.keys) < len(v.Labels) {
			v.keys = make([]profile.Key, len(v.Labels)) // lint:ok hotpath cache (re)build, once per context change
		} else {
			v.keys = v.keys[:len(v.Labels)]
		}
		for i, l := range v.Labels {
			v.keys[i] = profile.K(v.ctx, v.ID, l)
		}
		v.keyCtx = v.ctx
	}
	return v.keys[c]
}

// Mode annotates internal tree nodes.
type Mode int

// Exploration modes.
const (
	Parallel Mode = iota
	Prefix
	Exhaustive
	Fork
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Prefix:
		return "prefix"
	case Exhaustive:
		return "exhaustive"
	case Fork:
		return "fork"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Tree is an update-tree node: either a leaf holding a variable, or an
// internal node with a mode and children.
type Tree struct {
	Title    string
	Mode     Mode
	Var      *Var    // non-nil for leaves
	Children []*Tree // internal nodes

	comp *Var // synthetic composite variable for Exhaustive nodes
}

// LeafNode wraps a variable as a leaf.
func LeafNode(v *Var) *Tree { return &Tree{Title: v.ID, Var: v} }

// NewNode builds an internal node.
func NewNode(title string, mode Mode, children ...*Tree) *Tree {
	if len(children) == 0 {
		panic("adapt: internal node needs children")
	}
	n := &Tree{Title: title, Mode: mode, Children: children}
	if mode == Exhaustive {
		for _, c := range children {
			if c.Var == nil {
				panic("adapt: exhaustive children must be leaves")
			}
		}
		n.comp = &Var{ID: title, Labels: tupleLabels(children)}
	}
	if mode == Fork {
		if len(children) != 2 || children[0].Var == nil {
			panic("adapt: fork needs a leaf policy child and one subtree child")
		}
	}
	return n
}

func tupleLabels(children []*Tree) []string {
	labels := []string{""}
	for _, c := range children {
		var next []string
		for _, prefix := range labels {
			for _, l := range c.Var.Labels {
				if prefix == "" {
					next = append(next, l)
				} else {
					next = append(next, prefix+","+l)
				}
			}
		}
		labels = next
	}
	return labels
}

// CompositeVar returns the synthetic variable of an Exhaustive node (nil
// for other nodes); the custom-wirer uses it to know when the node's epoch
// needs a measurement.
func (t *Tree) CompositeVar() *Var { return t.comp }

// Vars returns every variable in the subtree (composite variables of
// Exhaustive nodes included), in walk order.
func (t *Tree) Vars() []*Var {
	var out []*Var
	t.walkVars(&out)
	return out
}

func (t *Tree) walkVars(out *[]*Var) {
	if t.Var != nil {
		*out = append(*out, t.Var)
		return
	}
	if t.comp != nil {
		*out = append(*out, t.comp)
	}
	for _, c := range t.Children {
		c.walkVars(out)
	}
}

// Initialize resets the whole subtree to default choices.
func (t *Tree) Initialize() {
	for _, v := range t.Vars() {
		v.Initialize()
	}
}

// Size returns the number of leaf variables (Exhaustive composites count
// once).
func (t *Tree) Size() int {
	if t.Var != nil {
		return 1
	}
	if t.Mode == Exhaustive {
		return 1
	}
	n := 0
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Render draws the tree as indented text (Figure 2's structure).
func (t *Tree) Render() string {
	var b strings.Builder
	t.render(&b, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if t.Var != nil {
		fmt.Fprintf(b, "%s- %s [%d choices]\n", indent, t.Var.ID, len(t.Var.Labels))
		return
	}
	fmt.Fprintf(b, "%s+ %s (%s)\n", indent, t.Title, t.Mode)
	for _, c := range t.Children {
		c.render(b, depth+1)
	}
}
