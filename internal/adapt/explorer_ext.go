package adapt

// Recording reports whether the explorer marked this variable for
// measurement in the current trial. The custom-wirer uses it to decide
// which profiling regions need event pairs (everything else is already in
// the index).
func (v *Var) Recording() bool { return v.record }
