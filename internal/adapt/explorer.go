package adapt

import (
	"fmt"
	"hash/fnv"
	"sort"

	"astra/internal/obs"
	"astra/internal/profile"
)

// Explorer drives an update tree through the exploration state space, one
// configuration per mini-batch trial. Usage (by the custom-wirer):
//
//	e := NewExplorer(tree, index)
//	for !e.Done() {
//	    metrics := runMiniBatchWithCurrentChoices()
//	    e.Observe(metrics)
//	    e.Advance()
//	}
//	// every variable is now frozen at its best choice
type Explorer struct {
	root *Tree
	ix   *profile.Index
	// base is the root profile context every key is mangled under. The
	// default "" reproduces the single-job layout; a long-running service
	// sharing one index across jobs namespaces each job's keys with its job
	// signature so mixed tenants never collide (see internal/serve).
	base   string
	vars   []*Var
	done   bool
	trials int
	err    error

	// noProgress counts consecutive Advance calls that neither recorded
	// new samples nor finished exploration; it guards against a
	// custom-wirer that fails to measure the active variables.
	noProgress  int
	lastSamples int
	// reexplorations counts Thaw calls — in-session re-explorations
	// triggered by drift or an explicit re-tune.
	reexplorations int

	// frozeAt records, per variable ID, the trial at which the variable
	// last transitioned to frozen — the exploration-convergence timeline.
	// A variable whose context changes (a higher-level policy moved) thaws
	// and re-freezes later; the map keeps the final freeze.
	frozeAt    map[string]int
	wasFrozen  map[string]bool
	mTrials    *obs.Counter
	mFrozen    *obs.Gauge
	mVarsTotal *obs.Gauge
	mReexplore *obs.Counter

	// prior, when non-nil, reorders and prunes each variable's candidate
	// visit sequence from learned cost predictions (see prior.go and
	// internal/costmodel). Frozen choices are still always measured bests.
	prior      Prior
	priorStats PriorStats
	// prunedEver audits every "varID=label" any plan pruned (see
	// PrunedChoices) — harness cells assert a cold run's winners are
	// disjoint from it.
	prunedEver                  map[string]bool
	mPriorHits, mPriorMisses    *obs.Counter
	mPriorPruned, mPriorRankInv *obs.Counter
}

// NewExplorer initializes the tree and positions it at the first
// configuration to measure.
func NewExplorer(root *Tree, ix *profile.Index) *Explorer {
	return NewExplorerAt(root, ix, "")
}

// NewExplorerAt is NewExplorer with an explicit base profile context: every
// key the exploration records or probes is mangled under baseCtx instead of
// the root context "". Exploration behaviour is identical for any baseCtx —
// the context only shifts key identity — which is what lets many concurrent
// jobs share one profile.Index without cross-talk, each under its own
// namespace, while identical jobs (same baseCtx) warm-start off each other.
func NewExplorerAt(root *Tree, ix *profile.Index, baseCtx string) *Explorer {
	return NewExplorerPrior(root, ix, baseCtx, nil)
}

// NewExplorerPrior is NewExplorerAt with a learned cost-model prior attached
// (nil for none). The prior must be set at construction: the first tree walk
// happens here, and the visit plan of the very first variable already
// depends on it.
func NewExplorerPrior(root *Tree, ix *profile.Index, baseCtx string, prior Prior) *Explorer {
	e := &Explorer{
		root: root, ix: ix, base: baseCtx, vars: root.Vars(), prior: prior,
		frozeAt: map[string]int{}, wasFrozen: map[string]bool{},
	}
	root.Initialize()
	ix.SetTrial(0)
	e.done = e.setup(root, e.base)
	e.noteFreezes()
	return e
}

// Instrument attaches a metrics registry: Advance keeps explore.trials,
// explore.frozen_vars and explore.vars_total current.
func (e *Explorer) Instrument(reg *obs.Registry) {
	e.mTrials = reg.Counter("explore.trials", "exploration mini-batches consumed")
	e.mFrozen = reg.Gauge("explore.frozen_vars", "adaptive variables frozen at their best choice")
	e.mVarsTotal = reg.Gauge("explore.vars_total", "adaptive variables in the update tree")
	e.mReexplore = reg.Counter("explore.reexplorations", "in-session thaw/re-explore rounds")
	if e.prior != nil {
		e.mPriorHits = reg.Counter("costmodel.prior_hits", "freezes where the prior's top-ranked candidate won")
		e.mPriorMisses = reg.Counter("costmodel.prior_misses", "freezes where the measured best was not ranked first")
		e.mPriorPruned = reg.Counter("costmodel.pruned", "candidate measurements skipped by cost-model pruning")
		e.mPriorRankInv = reg.Counter("costmodel.rank_inversions", "summed predicted-rank positions of measured bests on prior misses")
		e.mPriorHits.Add(float64(e.priorStats.Hits))
		e.mPriorMisses.Add(float64(e.priorStats.Misses))
		e.mPriorPruned.Add(float64(e.priorStats.Pruned))
		e.mPriorRankInv.Add(float64(e.priorStats.RankInversions))
	}
	frozen, total := e.FrozenCount()
	e.mFrozen.Set(float64(frozen))
	e.mVarsTotal.Set(float64(total))
}

// noteFreezes updates the convergence timeline after a tree walk: each
// unfrozen→frozen transition is stamped with the current trial count.
func (e *Explorer) noteFreezes() {
	for _, v := range e.vars {
		f := v.Frozen()
		if f && !e.wasFrozen[v.ID] {
			e.frozeAt[v.ID] = e.trials
		}
		e.wasFrozen[v.ID] = f
	}
	if e.mFrozen != nil {
		frozen, total := e.FrozenCount()
		e.mFrozen.Set(float64(frozen))
		e.mVarsTotal.Set(float64(total))
	}
}

// FrozenCount returns how many variables are currently frozen at their
// best choice, and the total variable count.
func (e *Explorer) FrozenCount() (frozen, total int) {
	for _, v := range e.vars {
		if v.Frozen() {
			frozen++
		}
	}
	return frozen, len(e.vars)
}

// FrozenVarIDs returns the IDs of the currently frozen variables, sorted —
// the stable form event logs and analyzers diff across batches.
func (e *Explorer) FrozenVarIDs() []string {
	var out []string
	for _, v := range e.vars {
		if v.Frozen() {
			out = append(out, v.ID)
		}
	}
	sort.Strings(out)
	return out
}

// ConvergencePoint is one entry of the exploration-convergence timeline.
type ConvergencePoint struct {
	VarID string
	Trial int // trials consumed when the variable (last) froze
}

// ConvergenceTimeline returns, for every variable that has frozen, the
// trial at which it last converged — sorted by trial, then ID. After Done
// this is the full §6.3-style convergence account of the session.
func (e *Explorer) ConvergenceTimeline() []ConvergencePoint {
	out := make([]ConvergencePoint, 0, len(e.frozeAt))
	for id, tr := range e.frozeAt {
		if !e.wasFrozen[id] {
			continue // thawed since; not converged right now
		}
		out = append(out, ConvergencePoint{VarID: id, Trial: tr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trial != out[j].Trial {
			return out[i].Trial < out[j].Trial
		}
		return out[i].VarID < out[j].VarID
	})
	return out
}

// Done reports whether exploration has stopped: every variable frozen at
// its best choice for its final context, or exploration failed (see Err).
func (e *Explorer) Done() bool { return e.done || e.err != nil }

// Err returns the sticky exploration error: non-nil once Advance detects
// stuck exploration (the custom-wirer stopped measuring the active
// variables). A session with a non-nil Err failed; its variables are not at
// validated bests.
func (e *Explorer) Err() error { return e.err }

// Reexplorations returns how many thaw/re-explore rounds the session ran.
func (e *Explorer) Reexplorations() int { return e.reexplorations }

// Trials returns the number of mini-batches consumed by exploration so far
// — the "number of configs" of Table 7.
func (e *Explorer) Trials() int { return e.trials }

// Vars returns the tree's variables (stable order).
func (e *Explorer) Vars() []*Var { return e.vars }

// Observe records the metrics measured for the current trial. The map is
// keyed by variable ID; only variables the walk marked as actively
// exploring are recorded, each under its context-mangled key.
func (e *Explorer) Observe(metrics map[string]float64) {
	for _, v := range e.vars {
		if !v.record {
			continue
		}
		m, ok := metrics[v.ID]
		if !ok {
			continue
		}
		e.ix.Record(v.Key(), m)
		if e.prior != nil {
			e.prior.Observe(v.ctx, v.ID, v.CurrentLabel(), m)
		}
	}
}

// Advance moves the tree to the next configuration. It must be called
// after Observe; when it returns false the exploration is complete and all
// variables hold their best choices.
func (e *Explorer) Advance() bool {
	if e.done || e.err != nil {
		return false
	}
	// Progress means Observe recorded new samples since the last Advance
	// (multi-sample policies re-measure the same key, so the index length
	// alone is not the signal); a custom-wirer that never measures the
	// active variables would loop on the same configuration forever. The
	// error is sticky: library code must not panic on a misbehaving wirer.
	if e.ix.Samples() == e.lastSamples {
		e.noProgress++
		if e.noProgress > 10 {
			e.err = fmt.Errorf("adapt: exploration stuck after %d trials — active variables are not being measured", e.trials)
			return false
		}
	} else {
		e.noProgress = 0
	}
	e.lastSamples = e.ix.Samples()
	e.trials++
	e.ix.SetTrial(e.trials)
	if e.mTrials != nil {
		e.mTrials.Inc()
	}
	e.done = e.setup(e.root, e.base)
	e.noteFreezes()
	return !e.done
}

// Thaw unfreezes the given variables (every variable in the tree when none
// are named), evicts their profile measurements in all contexts, and
// re-enters exploration. Dependent measurements of later prefix siblings
// are invalidated by the context-mangling machinery on their own: when a
// thawed variable re-freezes to a different choice its digest changes, the
// dependent keys miss, and exactly the affected subtree re-measures. The
// wired-phase drift watchdog calls this with no arguments — after a device
// characteristic shifts, every old measurement is suspect. Returns the
// number of evicted index entries.
func (e *Explorer) Thaw(varIDs ...string) int {
	ids := map[string]bool{}
	if len(varIDs) == 0 {
		for _, v := range e.vars {
			ids[v.ID] = true
		}
	} else {
		for _, id := range varIDs {
			ids[id] = true
		}
	}
	evicted := 0
	for _, v := range e.vars {
		if !ids[v.ID] {
			continue
		}
		v.frozen = false
		v.frozenCtx = ""
		e.wasFrozen[v.ID] = false
		delete(e.frozeAt, v.ID)
		evicted += e.ix.EvictVar(v.ID)
	}
	e.reexplorations++
	if e.mReexplore != nil {
		e.mReexplore.Inc()
	}
	// The thaw evicted the measurements the prior's recent knowledge came
	// from (drift: the device changed under us) — decay the model and drop
	// every cached plan so re-exploration re-ranks against state that the
	// re-measurements about to stream in can dominate.
	e.invalidatePlans()
	e.noProgress = 0
	e.lastSamples = e.ix.Samples()
	e.ReExplore()
	return evicted
}

// ReExplore re-walks the tree against the current index contents and
// recomputes convergence — call it after mutating the index (Thaw does this
// itself). It returns true when exploration has work to do again.
func (e *Explorer) ReExplore() bool {
	e.done = e.setup(e.root, e.base)
	e.noteFreezes()
	return !e.done
}

// setup walks the subtree, assigns contexts, selects the next choice to
// measure for actively-exploring variables, and returns whether the
// subtree has fully converged under ctx.
func (e *Explorer) setup(t *Tree, ctx string) bool {
	switch {
	case t.Var != nil:
		return e.setupLeaf(t.Var, ctx)
	case t.Mode == Parallel:
		done := true
		for _, c := range t.Children {
			if !e.setup(c, ctx) {
				done = false
			}
		}
		return done
	case t.Mode == Prefix:
		return e.setupPrefix(t, ctx)
	case t.Mode == Exhaustive:
		return e.setupExhaustive(t, ctx)
	case t.Mode == Fork:
		return e.setupFork(t, ctx)
	}
	panic(fmt.Sprintf("adapt: unknown mode %v", t.Mode))
}

func (e *Explorer) setupLeaf(v *Var, ctx string) bool {
	v.ctx = ctx
	v.record = false
	if v.frozen && v.frozenCtx == ctx {
		return true
	}
	v.frozen = false
	plan := e.planFor(v)
	for i := range v.Labels {
		c := plan.visit(i)
		if plan.pruned(c) {
			continue
		}
		if !e.ix.Has(v.KeyFor(c)) {
			v.current = c
			v.record = true
			return false
		}
	}
	// Best ranks only measured keys, so pruned (hence unmeasured)
	// candidates are simply absent from the decision.
	best, _, ok := e.ix.Best(ctx, v.ID, v.Labels)
	if !ok {
		panic("adapt: all choices measured but no best — empty label set?")
	}
	v.current = best
	v.frozen = true
	v.frozenCtx = ctx
	e.notePriorOutcome(v, best)
	return true
}

// setupPrefix explores children left to right. Earlier siblings freeze at
// their best and a digest of their frozen labels becomes part of the later
// siblings' context, making the exploration history-aware while staying
// additive in the number of children (§4.5.4). The digests of *all* earlier
// siblings accumulate into the context: rebuilding it from only the
// immediately-preceding sibling would let a change in child A's frozen
// choice go unnoticed by child C whenever child B's digest repeats.
func (e *Explorer) setupPrefix(t *Tree, ctx string) bool {
	childCtx := ctx
	for i, child := range t.Children {
		done := e.setup(child, childCtx)
		if !done {
			for _, later := range t.Children[i+1:] {
				e.pin(later, childCtx+"/pending")
			}
			return false
		}
		childCtx = childCtx + "/" + t.Title + ":" + digest(child)
	}
	return true
}

// digest summarises the frozen choices of a subtree compactly for use as a
// context component.
func digest(t *Tree) string {
	h := fnv.New32a()
	for _, v := range t.Vars() {
		h.Write([]byte(v.ID))
		h.Write([]byte{'='})
		h.Write([]byte(v.CurrentLabel()))
		h.Write([]byte{';'})
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// pin assigns a non-final context to a subtree and marks it unrecordable:
// it runs at its current (initialized) choices while an earlier prefix
// sibling is still exploring.
func (e *Explorer) pin(t *Tree, ctx string) {
	for _, v := range t.Vars() {
		v.ctx = ctx
		v.record = false
	}
	if t.comp != nil {
		e.applyTuple(t, t.comp.current)
	}
	for _, c := range t.Children {
		if c.Var == nil {
			e.pin(c, ctx)
		}
	}
}

// setupExhaustive treats the node's leaves as one composite variable over
// the cartesian product of their choices (§4.5.3: within an epoch the
// assignment is history-sensitive, so brute force is required).
func (e *Explorer) setupExhaustive(t *Tree, ctx string) bool {
	v := t.comp
	v.ctx = ctx
	v.record = false
	for _, c := range t.Children {
		c.Var.ctx = ctx
		c.Var.record = false
	}
	freezeChildren := func() {
		for _, c := range t.Children {
			c.Var.frozen = true
			c.Var.frozenCtx = ctx
		}
	}
	if v.frozen && v.frozenCtx == ctx {
		e.applyTuple(t, v.current)
		freezeChildren()
		return true
	}
	v.frozen = false
	plan := e.planFor(v)
	for i := range v.Labels {
		c := plan.visit(i)
		if plan.pruned(c) {
			continue
		}
		if !e.ix.Has(v.KeyFor(c)) {
			v.current = c
			v.record = true
			e.applyTuple(t, c)
			return false
		}
	}
	best, _, ok := e.ix.Best(ctx, v.ID, v.Labels)
	if !ok {
		panic("adapt: exhaustive node with no measurements")
	}
	v.current = best
	v.frozen = true
	v.frozenCtx = ctx
	e.notePriorOutcome(v, best)
	e.applyTuple(t, best)
	freezeChildren()
	return true
}

// applyTuple decomposes a composite choice index into the children's
// individual choices (first child most significant).
func (e *Explorer) applyTuple(t *Tree, idx int) {
	for i := len(t.Children) - 1; i >= 0; i-- {
		n := len(t.Children[i].Var.Labels)
		t.Children[i].Var.current = idx % n
		idx /= n
	}
}

// setupFork explores the policy variable's subtree to completion under each
// policy choice, takes one end-to-end validation measurement of the best
// configuration per choice, and finally freezes the policy at the fastest
// validated choice (§4.5.2). The cost-model prior is deliberately not
// consulted for the policy variable itself: fork policies exist to be
// validated end-to-end, and pruning one would skip exactly that validation.
// The subtree under each policy still benefits — its variables re-plan per
// policy context, and the model's features are context-free, so the prior
// transfers across the fork's branches.
func (e *Explorer) setupFork(t *Tree, ctx string) bool {
	policy := t.Children[0].Var
	sub := t.Children[1]
	policy.ctx = ctx
	policy.record = false
	subCtx := func() string {
		return ctx + "/" + policy.ID + "=" + policy.CurrentLabel()
	}
	if policy.frozen && policy.frozenCtx == ctx {
		e.setup(sub, subCtx())
		return true
	}
	policy.frozen = false
	for {
		subDone := e.setup(sub, subCtx())
		if !subDone {
			return false
		}
		// Subtree converged under this policy choice: validate the best
		// configuration end-to-end once, attributing the measurement to
		// the policy choice itself.
		if !e.ix.Has(policy.KeyFor(policy.current)) {
			policy.record = true
			return false
		}
		// Move to the next unmeasured policy choice, if any.
		advanced := false
		for c := range policy.Labels {
			if !e.ix.Has(policy.KeyFor(c)) {
				policy.current = c
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	best, _, ok := e.ix.Best(ctx, policy.ID, policy.Labels)
	if !ok {
		panic("adapt: fork with no validated policies")
	}
	policy.current = best
	policy.frozen = true
	policy.frozenCtx = ctx
	e.setup(sub, subCtx())
	return true
}
