package adapt

import "sort"

// Prior is a learned cost-model hook into the explorer (the AutoTVM-style
// "learning to optimize tensor programs" direction, see internal/costmodel
// and docs/COSTMODEL.md): before a variable's candidates are measured, the
// prior may reorder the visit sequence so the predicted-best is tried first,
// and prune candidates predicted to be dominated beyond a confidence margin.
// The explorer remains measurement-driven — a prior never decides a frozen
// choice, it only shapes which candidates get measured and in what order —
// so the safety properties of online exploration (the frozen choice is a
// measured best) are unchanged.
//
// Implementations must be deterministic: Plan is a pure function of the
// model state, and model state must depend only on the observation sequence.
// The explorer caches each variable's plan per context, so Plan is called
// once per (variable, context), not per trial.
type Prior interface {
	// Plan returns visit advice for varID's labels under ctx. The zero
	// value (nil Order) means "no advice": the explorer visits candidates
	// in label order and prunes nothing.
	Plan(ctx, varID string, labels []string) PriorPlan
	// Observe feeds one recorded measurement back into the model, in the
	// same (context, variable, label) coordinates Plan is queried with.
	Observe(ctx, varID, label string, us float64)
	// Invalidate marks the model's knowledge suspect — the explorer calls
	// it when a drift thaw evicts the measurements the model was trained
	// on, so post-drift re-exploration re-plans against decayed state that
	// fresh observations can quickly overwrite.
	Invalidate()
}

// PriorPlan is a prior's advice for one variable in one context.
type PriorPlan struct {
	// Order is a permutation of the label indices giving the visit order
	// (predicted-fastest first). nil means label order.
	Order []int
	// Pruned marks label indices the explorer should not measure at all.
	// nil means nothing pruned. A pruned candidate can still win later:
	// if every unpruned candidate's measurement is evicted and re-taken
	// the pruned ones stay skipped, but Best only ranks measured keys, so
	// a pruned candidate is simply absent, never mis-ranked.
	Pruned []bool
}

// sanitizePlan validates a prior's advice against the variable's label
// count. A malformed plan (wrong lengths, not a permutation, everything
// pruned) is discarded wholesale — a buggy or hostile prior must never be
// able to wedge exploration.
func sanitizePlan(p PriorPlan, n int) PriorPlan {
	if p.Order != nil {
		if len(p.Order) != n {
			return PriorPlan{}
		}
		seen := make([]bool, n)
		for _, c := range p.Order {
			if c < 0 || c >= n || seen[c] {
				return PriorPlan{}
			}
			seen[c] = true
		}
	}
	if p.Pruned != nil {
		if len(p.Pruned) != n {
			return PriorPlan{}
		}
		unpruned := 0
		for _, pr := range p.Pruned {
			if !pr {
				unpruned++
			}
		}
		if unpruned == 0 {
			return PriorPlan{}
		}
	}
	return p
}

// PriorStats counts prior outcomes across a session: how often the
// predicted-best candidate (Order[0]) turned out to be the measured best
// when a variable froze, how many candidate measurements pruning skipped,
// and how far off the predicted ranking was when it missed.
type PriorStats struct {
	// Hits counts freezes where the measured best was the prior's top
	// prediction; Misses the freezes where it was not.
	Hits   int
	Misses int
	// Pruned counts candidate measurements skipped by pruning.
	Pruned int
	// RankInversions sums, over misses, the position of the measured best
	// in the predicted order — 0 when the prior always ranked the winner
	// first.
	RankInversions int
}

// PriorStats returns the session's accumulated prior outcomes (zero when no
// prior is attached).
func (e *Explorer) PriorStats() PriorStats { return e.priorStats }

// planFor returns the (sanitized, cached) prior plan for v under its
// current context. With no prior attached it returns the zero plan, which
// the setup loops treat as label-order/no-pruning.
func (e *Explorer) planFor(v *Var) PriorPlan {
	if e.prior == nil {
		return PriorPlan{}
	}
	if v.planCtx != v.ctx || !v.planOK {
		v.plan = sanitizePlan(e.prior.Plan(v.ctx, v.ID, v.Labels), len(v.Labels))
		v.planCtx = v.ctx
		v.planOK = true
		for c, pr := range v.plan.Pruned {
			if pr {
				e.priorStats.Pruned++
				if e.mPriorPruned != nil {
					e.mPriorPruned.Inc()
				}
				if e.prunedEver == nil {
					e.prunedEver = map[string]bool{}
				}
				e.prunedEver[v.ID+"="+v.Labels[c]] = true
			}
		}
	}
	return v.plan
}

// PrunedChoices returns every "varID=label" the prior pruned at any point
// of the session (any context), sorted. It is the safety audit trail: a
// choice absent from this set was always eligible for measurement, so a
// frozen binding can only have beaten candidates the prior left in play or
// ones it explicitly pruned — and the latter are all listed here.
func (e *Explorer) PrunedChoices() []string {
	out := make([]string, 0, len(e.prunedEver))
	for k := range e.prunedEver { // nodeterm:ok sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// visit returns the i-th candidate in plan order.
func (p PriorPlan) visit(i int) int {
	if p.Order == nil {
		return i
	}
	return p.Order[i]
}

// pruned reports whether candidate c is pruned.
func (p PriorPlan) pruned(c int) bool { return p.Pruned != nil && p.Pruned[c] }

// notePriorOutcome scores a freeze decision against the plan that guided it
// and updates the hit/miss/rank-inversion counters.
func (e *Explorer) notePriorOutcome(v *Var, best int) {
	if e.prior == nil || v.plan.Order == nil {
		return
	}
	pos := 0
	for i, c := range v.plan.Order {
		if c == best {
			pos = i
			break
		}
	}
	if pos == 0 {
		e.priorStats.Hits++
		if e.mPriorHits != nil {
			e.mPriorHits.Inc()
		}
		return
	}
	e.priorStats.Misses++
	e.priorStats.RankInversions += pos
	if e.mPriorMisses != nil {
		e.mPriorMisses.Inc()
	}
	if e.mPriorRankInv != nil {
		e.mPriorRankInv.Add(float64(pos))
	}
}

// invalidatePlans drops every cached plan (and tells the prior), so the next
// walk re-plans against the prior's current state.
func (e *Explorer) invalidatePlans() {
	if e.prior == nil {
		return
	}
	e.prior.Invalidate()
	for _, v := range e.vars {
		v.planOK = false
		v.plan = PriorPlan{}
	}
}
