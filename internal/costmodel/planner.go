package costmodel

import (
	"math"
	"sort"

	"astra/internal/adapt"
)

// Mode selects how much of the model's advice a Planner applies.
type Mode int

const (
	// ModeTrain only feeds the session's observations into the model.
	// Plans are empty, so exploration order and candidate set are exactly
	// what they would be with no prior — the donor/teacher configuration,
	// and the always-safe default for sessions that must stay comparable
	// to prior-free baselines (the serve layer's default).
	ModeTrain Mode = iota
	// ModeRank reorders candidate visits by predicted cost (likely-best
	// first) and prunes nothing: every candidate is still measured, so the
	// frozen result is provably unchanged — only the order (and therefore
	// the time spent running bad configurations while exploring) moves.
	ModeRank
	// ModeFull ranks and additionally prunes candidates predicted to be
	// dominated beyond the margin, subject to the MinSurvivors valve —
	// the trials-to-freeze saver.
	ModeFull
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeTrain:
		return "train"
	case ModeRank:
		return "rank"
	case ModeFull:
		return "full"
	}
	return "mode?"
}

// PlannerConfig tunes a Planner. The zero value means ModeTrain with
// default thresholds.
type PlannerConfig struct {
	Mode Mode
	// MarginFrac is the domination margin: a candidate is pruned only when
	// its predicted cost exceeds the predicted best by more than this
	// fraction (log-space ratio). The margin is the safety knob — it must
	// exceed the model's relative error for the true best to survive
	// pruning. Default 0.35 (predicted ≥35% slower).
	MarginFrac float64
	// MinSurvivors is the K-survivor valve: the top-K candidates of the
	// predicted order are never pruned, whatever the margin says, so a
	// maximally wrong model still leaves a measured choice between
	// alternatives. Default 2.
	MinSurvivors int
	// MaxLevel bounds which backoff levels are trusted for pruning:
	// candidates whose prediction (or whose best-rival's prediction) came
	// from a level above it are ranked but never pruned. Default 1 — shape
	// neighbours may prune, the global L2 class stats may only rank.
	MaxLevel int
}

func (c PlannerConfig) marginFrac() float64 {
	if c.MarginFrac > 0 {
		return c.MarginFrac
	}
	return 0.35
}

func (c PlannerConfig) minSurvivors() int {
	if c.MinSurvivors > 0 {
		return c.MinSurvivors
	}
	return 2
}

func (c PlannerConfig) maxLevel() int {
	if c.MaxLevel > 0 {
		return c.MaxLevel
	}
	return 1
}

// Planner adapts a Model to the adapt.Prior interface for one session: it
// answers the explorer's plan queries from the model's predictions under
// the session's Meta, and routes the explorer's measurements back into the
// model. Planners are cheap; models are the shared state (one per tenant in
// the serve layer, one per harness cell). Plan is a pure function of the
// model state, so sessions stay deterministic.
type Planner struct {
	model *Model
	meta  Meta
	cfg   PlannerConfig
}

// NewPlanner binds a model to one session's metadata and mode.
func NewPlanner(model *Model, meta Meta, cfg PlannerConfig) *Planner {
	return &Planner{model: model, meta: meta, cfg: cfg}
}

// Model returns the underlying shared model.
func (p *Planner) Model() *Model { return p.model }

// Meta returns the session metadata the planner predicts under.
func (p *Planner) Meta() Meta { return p.meta }

// Observe implements adapt.Prior: the explorer's recorded measurements
// train the model incrementally, whatever the mode — so a cold session is
// automatically the next session's teacher, and post-drift re-measurements
// refresh the prior while re-exploration is still running.
func (p *Planner) Observe(ctx, varID, label string, us float64) {
	p.model.Observe(p.meta, varID, label, us)
}

// Invalidate implements adapt.Prior: a drift thaw decays the model's
// observation weights so the stale knowledge yields quickly to the
// re-measurements Observe is about to stream in.
func (p *Planner) Invalidate() { p.model.Decay() }

// Plan implements adapt.Prior: rank (and in ModeFull prune) varID's
// candidates by predicted cost. Variables the model knows nothing about get
// the zero plan (label order, nothing pruned). The context is unused — the
// model's features are deliberately context-free (see TrainIndex).
func (p *Planner) Plan(ctx, varID string, labels []string) adapt.PriorPlan {
	if p.cfg.Mode == ModeTrain || len(labels) < 2 {
		return adapt.PriorPlan{}
	}
	type cand struct {
		idx   int
		pred  float64
		level int
		ok    bool
	}
	cands := make([]cand, len(labels))
	known := 0
	for i, l := range labels {
		pred, level, ok := p.model.Predict(p.meta, varID, l)
		cands[i] = cand{idx: i, pred: pred, level: level, ok: ok}
		if ok {
			known++
		}
	}
	if known == 0 {
		return adapt.PriorPlan{}
	}
	// Predicted candidates first (fastest first), unpredicted ones after in
	// label order; ties break on label index. Fully deterministic.
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.ok != b.ok {
			return a.ok
		}
		if a.ok && a.pred != b.pred {
			return a.pred < b.pred
		}
		return a.idx < b.idx
	})
	plan := adapt.PriorPlan{Order: make([]int, len(cands))}
	for i, c := range cands {
		plan.Order[i] = c.idx
	}
	if p.cfg.Mode != ModeFull {
		return plan
	}
	// Prune beyond the margin. Only predictions from trusted levels prune;
	// the best trusted prediction is the reference. Unpredicted candidates
	// are never pruned (no evidence either way), and the top-K of the
	// predicted order survive unconditionally.
	best := math.Inf(1)
	for _, c := range cands {
		if c.ok && c.level <= p.cfg.maxLevel() && c.pred < best {
			best = c.pred
		}
	}
	if math.IsInf(best, 1) {
		return plan
	}
	margin := math.Log1p(p.cfg.marginFrac())
	pruned := make([]bool, len(labels))
	any := false
	for rank, c := range cands {
		if rank < p.cfg.minSurvivors() {
			continue
		}
		if c.ok && c.level <= p.cfg.maxLevel() && c.pred-best > margin {
			pruned[c.idx] = true
			any = true
		}
	}
	if any {
		plan.Pruned = pruned
	}
	return plan
}
