package costmodel

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// FuzzModelLoad mirrors profile.FuzzIndexLoad for the cost-model snapshot
// format: a hostile snapshot must either be rejected with an error (leaving
// the model untouched) or be fully usable — never a panic, never a
// half-load.
func FuzzModelLoad(f *testing.F) {
	// A genuine snapshot.
	seed := func() []byte {
		m := NewModel()
		m.Observe(testMeta, "g0.chunk", "2", 100)
		m.Observe(testMeta, "u1.lib", "fast", 40)
		var b bytes.Buffer
		if err := m.Save(&b); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-object
	f.Add([]byte(`{"version":1,"updates":0,"buckets":{}}`))
	f.Add([]byte(`{"version":99,"updates":1,"buckets":{}}`))
	f.Add([]byte(`{"version":1,"updates":-4,"buckets":{}}`))
	f.Add([]byte(`{"version":1,"updates":1,"buckets":{"0|x|":{"n":0,"mean":1}}}`))
	f.Add([]byte(`{"version":1,"updates":1,"buckets":{"0|x|":{"n":70000,"mean":1}}}`))
	f.Add([]byte(`{"version":1,"updates":1,"buckets":{"bogus":{"n":1,"mean":1}}}`))
	f.Add([]byte(`{"version":1,"updates":1,"buckets":{"0|x|":{"n":1,"mean":1e999}}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewModel()
		m.Observe(testMeta, "pre.chunk", "1", 77) // pre-existing state
		preLen, preUpdates := m.Len(), m.Updates()
		if err := m.Load(bytes.NewReader(data)); err != nil {
			// Rejected cleanly: the model must be exactly as it was.
			if m.Len() != preLen || m.Updates() != preUpdates {
				t.Fatalf("failed load mutated model: %d/%d -> %d/%d",
					preLen, preUpdates, m.Len(), m.Updates())
			}
			if _, _, ok := m.Predict(testMeta, "pre.chunk", "1"); !ok {
				t.Fatalf("failed load lost prior bucket")
			}
			return
		}
		// Accepted: must round-trip byte-identically and stay predictable.
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("loaded model failed to save: %v", err)
		}
		again := NewModel()
		if err := again.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round trip failed: %v\nsnapshot: %s", err, buf.Bytes())
		}
		if again.Len() != m.Len() || again.Updates() != m.Updates() {
			t.Fatalf("round trip changed state: %d/%d -> %d/%d",
				m.Len(), m.Updates(), again.Len(), again.Updates())
		}
		// A loaded model must serve Observe/Predict without issue.
		m.Observe(testMeta, "post.lib", "x", 5)
		if _, _, ok := m.Predict(testMeta, "post.lib", "x"); !ok {
			t.Fatalf("loaded model rejected new observations")
		}
	})
}

// TestConcurrentTrainPredictLoad is the race soak: one goroutine streams
// observations in, one predicts, one snapshots and re-loads — the shared
// fleet-model usage pattern under `make race`.
func TestConcurrentTrainPredictLoad(t *testing.T) {
	m := NewModel()
	m.Observe(testMeta, "g0.chunk", "2", 100)
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		labels := []string{"1", "2", "4", "8"}
		for i := 0; i < iters; i++ {
			m.Observe(testMeta, "g0.chunk", labels[i%len(labels)], float64(50+i%100))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			m.Predict(testMeta, "g0.chunk", "2")
			m.Predict(Meta{Model: "other"}, "x.chunk", "4")
			m.Len()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/20; i++ {
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Errorf("save under load: %v", err)
				return
			}
			fresh := NewModel()
			if err := fresh.Load(bytes.NewReader(buf.Bytes())); err != nil {
				t.Errorf("load under load: %v", err)
				return
			}
			if i%5 == 0 {
				m.Decay()
			}
		}
	}()
	wg.Wait()
	if _, _, ok := m.Predict(testMeta, "g0.chunk", "2"); !ok {
		t.Fatalf("model unusable after concurrent soak")
	}
}

// TestLoadTruncatedReader pins clean handling of a reader that errors
// mid-stream (not just malformed bytes).
func TestLoadTruncatedReader(t *testing.T) {
	m := NewModel()
	m.Observe(testMeta, "g0.chunk", "2", 100)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewModel()
	if err := fresh.Load(io.LimitReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()/2))); err == nil {
		t.Fatalf("mid-stream EOF accepted")
	}
	if fresh.Len() != 0 {
		t.Fatalf("failed load left %d buckets", fresh.Len())
	}
}
