// Package costmodel implements a learned cost-model prior for Astra's
// online exploration — the AutoTVM-style "learning to optimize tensor
// programs" direction from PAPERS.md, adapted to Astra's adaptive-variable
// vocabulary (see docs/COSTMODEL.md).
//
// The model is deliberately not a gradient-boosted anything: it is a
// hierarchy of bucketed running means over log(µs), keyed by feature tuples
// extracted from adaptive-variable IDs and session metadata. Three backoff
// levels trade specificity for transfer:
//
//	L0  model | scale | varID | label | batch-bucket | workers | fabric
//	L1  model | varID | label | workers | fabric      (neighbour shapes)
//	L2  varClass | label                              (global label effect)
//
// A prediction answers from the most specific level that has data. Backoff
// is the transfer mechanism: a new batch size of a known model answers from
// L1 (same variables, different shape), a brand-new model answers from L2
// (e.g. "chunk=1 is always dominated by launch overhead"). Training is
// incremental (Observe) or bulk from a profile.Index snapshot (TrainIndex);
// both are deterministic functions of the observation sequence, which keeps
// exploration byte-identical at any parallelism — planning happens per
// session against a model trained before the session starts, or against
// observations the session itself made in its own deterministic order.
//
// The model predicts in log space: schedule costs span orders of magnitude
// across variables, and ratios — not differences — are what rank and prune
// decisions need.
package costmodel

import (
	"math"
	"strconv"
	"strings"
	"sync"

	"astra/internal/obs"
	"astra/internal/profile"
)

// Meta pins the session facts the feature tuples draw on. The zero value is
// valid (everything lands in catch-all buckets); fill what you know.
type Meta struct {
	// Model is the zoo model name, Scale its sizing ("default", "tiny").
	Model string
	Scale string
	// Batch is the per-device mini-batch size.
	Batch int
	// Workers is the data-parallel degree, Fabric the interconnect name
	// (both zero/empty for single-GPU sessions).
	Workers int
	Fabric  string
}

// MetaFromSignature parses a serve job signature
// ("model=…;scale=…;batch=…;level=…;streams=…;workers=…;fabric=…;") back
// into the fields the cost model features use. Unknown or malformed fields
// are left at their zero values — the signature format is stable
// (serve.Job.Signature), but the model must never fail on a foreign string.
func MetaFromSignature(sig string) Meta {
	var m Meta
	for _, part := range strings.Split(sig, ";") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		switch k {
		case "model":
			m.Model = v
		case "scale":
			m.Scale = v
		case "batch":
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				m.Batch = n
			}
		case "workers":
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				m.Workers = n
			}
		case "fabric":
			m.Fabric = v
		}
	}
	return m
}

// varClass buckets an adaptive-variable ID into the enumerator's variable
// families — the coarsest feature the L2 backoff level keys on. The strings
// are constants so classification never allocates.
func varClass(varID string) string {
	switch {
	case strings.HasSuffix(varID, ".chunk"):
		return "chunk"
	case strings.HasSuffix(varID, ".lib"):
		return "lib"
	case varID == "comm.bucket_kb":
		return "comm.bucket"
	case varID == "comm.place":
		return "comm.place"
	case varID == "alloc":
		return "alloc"
	case strings.Contains(varID, ".ep"):
		// Stream-assignment leaves ("se0.ep1.c2") and the exhaustive
		// composites over them ("se0.ep1") share timing structure.
		return "stream"
	default:
		return "other"
	}
}

// batchBucket coarsens a per-device batch size to its power-of-two bucket
// (the bit length), so L0 groups shapes the way GEMM cost scales.
func batchBucket(batch int) int {
	b := 0
	for batch > 0 {
		b++
		batch >>= 1
	}
	return b
}

// FNV-1a 64, inlined: the prediction hot path hashes feature tuples
// directly into map keys with zero allocations. The hashed byte sequence is
// exactly the bucket's readable key string (each part's bytes followed by
// '|'), so snapshots can rebuild the map from the readable keys alone.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

//astra:hotpath
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return (h ^ '|') * fnvPrime64
}

//astra:hotpath
func hashUint(h uint64, v int) uint64 {
	if v < 0 {
		v = 0
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for ; i < len(buf); i++ {
		h = (h ^ uint64(buf[i])) * fnvPrime64
	}
	return (h ^ '|') * fnvPrime64
}

// hashKeyString hashes a readable bucket key — the load path's way back
// from serialized keys to map slots.
func hashKeyString(k string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * fnvPrime64
	}
	return h
}

// Levels is the number of backoff levels.
const Levels = 3

//astra:hotpath
func hashL0(meta Meta, varID, label string) uint64 {
	h := hashString(fnvOffset64, "0")
	h = hashString(h, meta.Model)
	h = hashString(h, meta.Scale)
	h = hashString(h, varID)
	h = hashString(h, label)
	h = hashUint(h, batchBucket(meta.Batch))
	h = hashUint(h, meta.Workers)
	return hashString(h, meta.Fabric)
}

//astra:hotpath
func hashL1(meta Meta, varID, label string) uint64 {
	h := hashString(fnvOffset64, "1")
	h = hashString(h, meta.Model)
	h = hashString(h, varID)
	h = hashString(h, label)
	h = hashUint(h, meta.Workers)
	return hashString(h, meta.Fabric)
}

//astra:hotpath
func hashL2(varID, label string) uint64 {
	h := hashString(fnvOffset64, "2")
	h = hashString(h, varClass(varID))
	return hashString(h, label)
}

// Readable-key builders — the slow-path twins of the hash functions, used
// once per new bucket and for snapshots. keyL*(…) must serialize exactly
// the byte sequence hashL*(…) hashes; TestKeyHashConsistency pins that.
func keyL0(meta Meta, varID, label string) string {
	return "0|" + meta.Model + "|" + meta.Scale + "|" + varID + "|" + label + "|" +
		strconv.Itoa(batchBucket(meta.Batch)) + "|" + strconv.Itoa(max0(meta.Workers)) + "|" + meta.Fabric + "|"
}

func keyL1(meta Meta, varID, label string) string {
	return "1|" + meta.Model + "|" + varID + "|" + label + "|" +
		strconv.Itoa(max0(meta.Workers)) + "|" + meta.Fabric + "|"
}

func keyL2(varID, label string) string {
	return "2|" + varClass(varID) + "|" + label + "|"
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// maxBucketWeight saturates a bucket's sample count: beyond it the running
// mean becomes an exponential moving average with weight 1/maxBucketWeight,
// so fresh observations (post-drift re-measurements, fleet updates) always
// move a bucket instead of drowning in its history.
const maxBucketWeight = 64

// bucket is one feature tuple's running statistic over log(µs).
type bucket struct {
	key  string  // readable feature tuple (serialization + debugging)
	n    int     // saturating observation weight
	mean float64 // running mean of log(µs)
}

// Model is the learned cost model: a concurrent-safe bucket table over the
// three feature levels. A Model may be shared by concurrent sessions (the
// serve layer trains one per tenant); Predict takes a read lock, Observe a
// write lock.
type Model struct {
	mu      sync.RWMutex
	buckets map[uint64]*bucket
	updates int64

	mUpdates *obs.Counter
	mBuckets *obs.Gauge
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{buckets: make(map[uint64]*bucket)}
}

// Instrument attaches a metrics registry: costmodel.train_updates counts
// observations folded in, costmodel.buckets tracks the table size.
func (m *Model) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mUpdates = reg.Counter("costmodel.train_updates", "observations folded into the cost model")
	m.mBuckets = reg.Gauge("costmodel.buckets", "feature buckets in the cost model")
	m.mUpdates.Add(float64(m.updates))
	m.mBuckets.Set(float64(len(m.buckets)))
}

// Updates returns how many observations have been folded in.
func (m *Model) Updates() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.updates
}

// Len returns the number of feature buckets.
func (m *Model) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.buckets)
}

// observeBucket folds x into the bucket at hash h, creating it (with its
// readable key from mkKey) on first sight. Caller holds the write lock.
func (m *Model) observeBucket(h uint64, mkKey func() string, x float64) {
	b := m.buckets[h]
	if b == nil {
		b = &bucket{key: mkKey()}
		m.buckets[h] = b
	}
	if b.n < maxBucketWeight {
		b.n++
	}
	b.mean += (x - b.mean) / float64(b.n)
}

// Observe folds one measurement into every feature level. Non-positive and
// non-finite values are ignored — log space is the model's native scale.
func (m *Model) Observe(meta Meta, varID, label string, us float64) {
	if !(us > 0) || math.IsInf(us, 1) {
		return
	}
	x := math.Log(us)
	m.mu.Lock()
	m.observeBucket(hashL0(meta, varID, label), func() string { return keyL0(meta, varID, label) }, x)
	m.observeBucket(hashL1(meta, varID, label), func() string { return keyL1(meta, varID, label) }, x)
	m.observeBucket(hashL2(varID, label), func() string { return keyL2(varID, label) }, x)
	m.updates++
	nb := len(m.buckets)
	mu, mb := m.mUpdates, m.mBuckets
	m.mu.Unlock()
	if mu != nil {
		mu.Inc()
	}
	if mb != nil {
		mb.Set(float64(nb))
	}
}

// TrainIndex bulk-trains the model from a profile index snapshot — the
// fleet store as training set. Iteration is over the sorted entry list, so
// the resulting model state is independent of shard layout and map order.
// The context component of each key is deliberately dropped: the model
// learns context-free label effects, which is what lets knowledge transfer
// across prefix digests, fork branches and job namespaces. Returns the
// number of observations folded in.
func (m *Model) TrainIndex(ix *profile.Index, meta Meta) int {
	n := 0
	for _, e := range ix.Entries() {
		_, varID, label := e.Key.Parts()
		if varID == "" || label == "" {
			continue
		}
		m.Observe(meta, varID, label, e.Stats.Mean)
		n++
	}
	return n
}

// Predict returns the predicted log(µs) for (varID, label) under meta, the
// backoff level that answered (0 most specific), and whether any level had
// data. The hot path: zero allocations, read lock only.
//
//astra:hotpath
func (m *Model) Predict(meta Meta, varID, label string) (logUs float64, level int, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if b := m.buckets[hashL0(meta, varID, label)]; b != nil {
		return b.mean, 0, true
	}
	if b := m.buckets[hashL1(meta, varID, label)]; b != nil {
		return b.mean, 1, true
	}
	if b := m.buckets[hashL2(varID, label)]; b != nil {
		return b.mean, 2, true
	}
	return 0, 0, false
}

// Decay halves every bucket's observation weight, making the next
// observations move the means roughly twice as fast while predictions stay
// available. The drift path calls it (via Planner.Invalidate): after a
// device shifts, the old knowledge should rank but not resist relearning.
func (m *Model) Decay() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.buckets { // nodeterm:ok per-bucket op, order-independent
		if b.n > 1 {
			b.n /= 2
		}
	}
}
