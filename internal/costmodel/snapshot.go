package costmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// SnapshotVersion is the current serialized model format.
const SnapshotVersion = 1

// snapshotBucket is one serialized feature bucket.
type snapshotBucket struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
}

// snapshotFile is the on-disk form: readable feature keys map to their
// statistics; the hash table rebuilds from the keys on load (the hash is
// FNV-1a over the key bytes, see hashKeyString).
type snapshotFile struct {
	Version int                       `json:"version"`
	Updates int64                     `json:"updates"`
	Buckets map[string]snapshotBucket `json:"buckets"`
}

// Save serializes the model as versioned JSON. Output bytes are
// deterministic for a given model state: the JSON encoder sorts map keys.
func (m *Model) Save(w io.Writer) error {
	m.mu.RLock()
	snap := snapshotFile{Version: SnapshotVersion, Updates: m.updates,
		Buckets: make(map[string]snapshotBucket, len(m.buckets))}
	for _, b := range m.buckets { // nodeterm:ok JSON encoder sorts map keys
		snap.Buckets[b.key] = snapshotBucket{N: b.n, Mean: b.mean}
	}
	m.mu.RUnlock()
	return json.NewEncoder(w).Encode(&snap)
}

// Load installs a Save'd snapshot, replacing the model's contents. The
// decode is validate-then-swap: a malformed, truncated, hostile or
// future-versioned snapshot returns an error and leaves the model exactly
// as it was — never a panic, never a half-load. Accepted invariants: known
// version, well-formed level-prefixed keys, positive bounded weights,
// finite means.
func (m *Model) Load(r io.Reader) error {
	var raw snapshotFile
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return fmt.Errorf("costmodel: load: %w", err)
	}
	if raw.Version < 1 {
		return fmt.Errorf("costmodel: load: missing or invalid snapshot version %d", raw.Version)
	}
	if raw.Version > SnapshotVersion {
		return fmt.Errorf("costmodel: load: snapshot version %d newer than supported %d", raw.Version, SnapshotVersion)
	}
	if raw.Updates < 0 {
		return fmt.Errorf("costmodel: load: negative update count %d", raw.Updates)
	}
	keys := make([]string, 0, len(raw.Buckets))
	for k := range raw.Buckets { // nodeterm:ok sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	next := make(map[uint64]*bucket, len(raw.Buckets))
	for _, k := range keys {
		sb := raw.Buckets[k]
		if len(k) < 3 || !strings.HasSuffix(k, "|") ||
			(!strings.HasPrefix(k, "0|") && !strings.HasPrefix(k, "1|") && !strings.HasPrefix(k, "2|")) {
			return fmt.Errorf("costmodel: load: malformed feature key %q", k)
		}
		if sb.N < 1 || sb.N > maxBucketWeight {
			return fmt.Errorf("costmodel: load: key %q: weight %d out of range [1, %d]", k, sb.N, maxBucketWeight)
		}
		if math.IsNaN(sb.Mean) || math.IsInf(sb.Mean, 0) {
			return fmt.Errorf("costmodel: load: key %q: non-finite mean", k)
		}
		h := hashKeyString(k)
		if _, dup := next[h]; dup {
			return fmt.Errorf("costmodel: load: duplicate feature key hash for %q", k)
		}
		next[h] = &bucket{key: k, n: sb.N, mean: sb.Mean}
	}
	m.mu.Lock()
	m.buckets = next
	m.updates = raw.Updates
	mb := m.mBuckets
	n := len(next)
	m.mu.Unlock()
	if mb != nil {
		mb.Set(float64(n))
	}
	return nil
}
