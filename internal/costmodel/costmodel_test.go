package costmodel

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"astra/internal/adapt"
	"astra/internal/obs"
	"astra/internal/profile"
)

var testMeta = Meta{Model: "scrnn", Scale: "default", Batch: 16, Workers: 4, Fabric: "pcie3"}

// TestKeyHashConsistency pins the core invariant of the zero-alloc hot
// path: the incremental FNV hash of a feature tuple equals the plain FNV
// hash of its readable key string. Snapshots depend on it — Load rebuilds
// the hash table from readable keys alone.
func TestKeyHashConsistency(t *testing.T) {
	metas := []Meta{
		{},
		testMeta,
		{Model: "sublstm", Scale: "tiny", Batch: 1, Workers: 1, Fabric: "nvlink1"},
		{Model: "m|odel", Scale: "s", Batch: 1 << 20, Workers: -3, Fabric: ""},
	}
	vars := []struct{ id, label string }{
		{"g0.chunk", "2"},
		{"u3.lib", "fast"},
		{"comm.bucket_kb", "512"},
		{"comm.place", "dedicated"},
		{"alloc", "pool"},
		{"se0.ep1.c2", "s1"},
		{"", ""},
		{"weird|id", "weird|label"},
	}
	for _, m := range metas {
		for _, v := range vars {
			if got, want := hashL0(m, v.id, v.label), hashKeyString(keyL0(m, v.id, v.label)); got != want {
				t.Errorf("L0 hash mismatch for %+v %q=%q: key %q", m, v.id, v.label, keyL0(m, v.id, v.label))
			}
			if got, want := hashL1(m, v.id, v.label), hashKeyString(keyL1(m, v.id, v.label)); got != want {
				t.Errorf("L1 hash mismatch for %+v %q=%q: key %q", m, v.id, v.label, keyL1(m, v.id, v.label))
			}
			if got, want := hashL2(v.id, v.label), hashKeyString(keyL2(v.id, v.label)); got != want {
				t.Errorf("L2 hash mismatch for %q=%q: key %q", v.id, v.label, keyL2(v.id, v.label))
			}
		}
	}
}

func TestVarClass(t *testing.T) {
	cases := map[string]string{
		"g0.chunk":       "chunk",
		"lstm0.lib":      "lib",
		"comm.bucket_kb": "comm.bucket",
		"comm.place":     "comm.place",
		"alloc":          "alloc",
		"se0.ep1.c2":     "stream",
		"se2.ep0":        "stream",
		"mystery":        "other",
	}
	for id, want := range cases {
		if got := varClass(id); got != want {
			t.Errorf("varClass(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestBatchBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 15: 4, 16: 5, 64: 7}
	for in, want := range cases {
		if got := batchBucket(in); got != want {
			t.Errorf("batchBucket(%d) = %d, want %d", in, got, want)
		}
	}
	// Batches in the same power-of-two bucket share an L0 key.
	a := Meta{Model: "m", Batch: 9}
	b := Meta{Model: "m", Batch: 15}
	if keyL0(a, "v", "l") != keyL0(b, "v", "l") {
		t.Errorf("batches 9 and 15 should share an L0 bucket")
	}
}

func TestMetaFromSignature(t *testing.T) {
	sig := "model=scrnn;scale=default;batch=16;level=FK;streams=4;workers=4;fabric=pcie3;"
	got := MetaFromSignature(sig)
	if got != testMeta {
		t.Errorf("MetaFromSignature = %+v, want %+v", got, testMeta)
	}
	// Hostile strings never panic and leave zero values.
	for _, s := range []string{"", ";;;", "batch=-4;workers=zz", "model"} {
		m := MetaFromSignature(s)
		if m.Batch != 0 || m.Workers != 0 {
			t.Errorf("MetaFromSignature(%q) = %+v, want zero numerics", s, m)
		}
	}
}

// TestObservePredictBackoff exercises the three-level backoff: exact shape
// answers from L0, a new batch of a known model from L1, a brand-new model
// from the global L2 class stats.
func TestObservePredictBackoff(t *testing.T) {
	m := NewModel()
	if _, _, ok := m.Predict(testMeta, "g0.chunk", "2"); ok {
		t.Fatalf("empty model predicted something")
	}
	m.Observe(testMeta, "g0.chunk", "2", 100)

	if p, lvl, ok := m.Predict(testMeta, "g0.chunk", "2"); !ok || lvl != 0 || math.Abs(p-math.Log(100)) > 1e-12 {
		t.Fatalf("exact-shape predict = (%v, %d, %v), want (log 100, 0, true)", p, lvl, ok)
	}
	bigBatch := testMeta
	bigBatch.Batch = 256
	if _, lvl, ok := m.Predict(bigBatch, "g0.chunk", "2"); !ok || lvl != 1 {
		t.Fatalf("neighbour-shape predict level = %d (ok=%v), want 1", lvl, ok)
	}
	newModel := Meta{Model: "fresh", Batch: 8}
	if _, lvl, ok := m.Predict(newModel, "g9.chunk", "2"); !ok || lvl != 2 {
		t.Fatalf("new-model predict level = %d (ok=%v), want 2", lvl, ok)
	}
	// Different label of the same class: no data anywhere.
	if _, _, ok := m.Predict(newModel, "g9.chunk", "8"); ok {
		t.Fatalf("unseen label predicted")
	}
	// Garbage observations are ignored.
	before := m.Updates()
	m.Observe(testMeta, "g0.chunk", "2", 0)
	m.Observe(testMeta, "g0.chunk", "2", -5)
	m.Observe(testMeta, "g0.chunk", "2", math.Inf(1))
	m.Observe(testMeta, "g0.chunk", "2", math.NaN())
	if m.Updates() != before {
		t.Fatalf("non-positive/non-finite observations were folded in")
	}
}

func TestBucketSaturationAndDecay(t *testing.T) {
	m := NewModel()
	for i := 0; i < 10*maxBucketWeight; i++ {
		m.Observe(testMeta, "g0.chunk", "2", 100)
	}
	// Saturated weight lets fresh values move the mean by ≥ 1/maxWeight.
	m.Observe(testMeta, "g0.chunk", "2", 1000)
	p1, _, _ := m.Predict(testMeta, "g0.chunk", "2")
	if step := p1 - math.Log(100); step < (math.Log(1000)-math.Log(100))/(maxBucketWeight+1) {
		t.Fatalf("saturated bucket barely moved: step %v", step)
	}
	// Decay halves weights, so the same new value moves ~2x as far.
	m2 := NewModel()
	for i := 0; i < 10*maxBucketWeight; i++ {
		m2.Observe(testMeta, "g0.chunk", "2", 100)
	}
	m2.Decay()
	m2.Observe(testMeta, "g0.chunk", "2", 1000)
	p2, _, _ := m2.Predict(testMeta, "g0.chunk", "2")
	if p2 <= p1 {
		t.Fatalf("decayed bucket should adapt faster: %v vs %v", p2, p1)
	}
}

func TestTrainIndexDeterministicAndContextFree(t *testing.T) {
	ix := profile.NewIndex()
	ix.Record(profile.Key("ctxA#g0.chunk=2"), 100)
	ix.Record(profile.Key("ctxB#g0.chunk=2"), 200)
	ix.Record(profile.Key("ctxA#g0.chunk=8"), 400)
	ix.Record(profile.Key("#u0.lib=fast"), 50)
	ix.Record(profile.Key("plainchoice"), 10) // no var/label: skipped

	m := NewModel()
	n := m.TrainIndex(ix, testMeta)
	if n != 4 {
		t.Fatalf("TrainIndex folded %d entries, want 4", n)
	}
	// Context dropped: both g0.chunk=2 contexts land in one bucket.
	p, lvl, ok := m.Predict(testMeta, "g0.chunk", "2")
	if !ok || lvl != 0 {
		t.Fatalf("predict after TrainIndex: ok=%v lvl=%d", ok, lvl)
	}
	want := (math.Log(100) + math.Log(200)) / 2
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("context-free mean = %v, want %v", p, want)
	}
	// Same index, fresh model: identical state (snapshot bytes equal).
	m2 := NewModel()
	m2.TrainIndex(ix, testMeta)
	var b1, b2 bytes.Buffer
	if err := m.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("TrainIndex not deterministic across runs")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := NewModel()
	m.Observe(testMeta, "g0.chunk", "2", 100)
	m.Observe(testMeta, "g0.chunk", "8", 300)
	m.Observe(Meta{Model: "sublstm", Batch: 8}, "lstm0.lib", "fused", 900)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	loaded := NewModel()
	if err := loaded.Load(strings.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != m.Len() || loaded.Updates() != m.Updates() {
		t.Fatalf("round-trip size: %d/%d buckets, %d/%d updates",
			loaded.Len(), m.Len(), loaded.Updates(), m.Updates())
	}
	for _, q := range []struct {
		meta       Meta
		varID, lbl string
	}{
		{testMeta, "g0.chunk", "2"},
		{testMeta, "g0.chunk", "8"},
		{Meta{Model: "sublstm", Batch: 8}, "lstm0.lib", "fused"},
		{Meta{Model: "other"}, "x.chunk", "2"}, // L2 backoff
	} {
		p0, l0, ok0 := m.Predict(q.meta, q.varID, q.lbl)
		p1, l1, ok1 := loaded.Predict(q.meta, q.varID, q.lbl)
		if p0 != p1 || l0 != l1 || ok0 != ok1 {
			t.Errorf("round-trip predict(%+v, %s, %s): (%v,%d,%v) vs (%v,%d,%v)",
				q.meta, q.varID, q.lbl, p0, l0, ok0, p1, l1, ok1)
		}
	}
	// Save is deterministic.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatalf("re-save differs from original save")
	}
}

func TestLoadRejectsHostileSnapshots(t *testing.T) {
	good := func() string {
		m := NewModel()
		m.Observe(testMeta, "g0.chunk", "2", 100)
		var b bytes.Buffer
		if err := m.Save(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}()
	bad := []struct{ name, in string }{
		{"empty", ""},
		{"garbage", "not json at all"},
		{"truncated", good[:len(good)/2]},
		{"missing version", `{"updates":1,"buckets":{}}`},
		{"future version", `{"version":99,"updates":1,"buckets":{}}`},
		{"negative updates", `{"version":1,"updates":-1,"buckets":{}}`},
		{"bad key prefix", `{"version":1,"updates":1,"buckets":{"9|x|":{"n":1,"mean":1}}}`},
		{"bad key suffix", `{"version":1,"updates":1,"buckets":{"0|x":{"n":1,"mean":1}}}`},
		{"zero weight", `{"version":1,"updates":1,"buckets":{"0|x|":{"n":0,"mean":1}}}`},
		{"huge weight", `{"version":1,"updates":1,"buckets":{"0|x|":{"n":9999,"mean":1}}}`},
		{"trailing junk type", `{"version":1,"updates":"one","buckets":{}}`},
	}
	for _, tc := range bad {
		m := NewModel()
		m.Observe(testMeta, "u0.lib", "slow", 500) // pre-existing state
		if err := m.Load(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: hostile snapshot accepted", tc.name)
		}
		// Never a half-load: prior state intact.
		if _, _, ok := m.Predict(testMeta, "u0.lib", "slow"); !ok {
			t.Errorf("%s: failed load clobbered model state", tc.name)
		}
	}
}

func TestInstrumentMetrics(t *testing.T) {
	m := NewModel()
	m.Observe(testMeta, "g0.chunk", "2", 100)
	reg := obs.NewRegistry()
	m.Instrument(reg)
	m.Observe(testMeta, "g0.chunk", "8", 200)
	snap := reg.Snapshot()
	if got := snap["costmodel.train_updates"].Value; got != 2 {
		t.Errorf("train_updates = %v, want 2 (1 seeded + 1 live)", got)
	}
	if got := snap["costmodel.buckets"].Value; got != float64(m.Len()) {
		t.Errorf("buckets gauge = %v, want %d", got, m.Len())
	}
}

func plannerFixture(t *testing.T, mode Mode) *Planner {
	t.Helper()
	m := NewModel()
	// Chunk 2 fast, 4 close, 8 and 1 dominated.
	for i := 0; i < 4; i++ {
		m.Observe(testMeta, "g0.chunk", "2", 100)
		m.Observe(testMeta, "g0.chunk", "4", 110)
		m.Observe(testMeta, "g0.chunk", "8", 300)
		m.Observe(testMeta, "g0.chunk", "1", 900)
	}
	return NewPlanner(m, testMeta, PlannerConfig{Mode: mode})
}

func TestPlannerModeTrain(t *testing.T) {
	p := plannerFixture(t, ModeTrain)
	plan := p.Plan("", "g0.chunk", []string{"1", "2", "4", "8"})
	if plan.Order != nil || plan.Pruned != nil {
		t.Fatalf("ModeTrain produced a non-zero plan: %+v", plan)
	}
	// Observe still trains.
	before := p.Model().Updates()
	p.Observe("", "g0.chunk", "2", 120)
	if p.Model().Updates() != before+1 {
		t.Fatalf("ModeTrain Observe did not train")
	}
}

func TestPlannerModeRank(t *testing.T) {
	p := plannerFixture(t, ModeRank)
	plan := p.Plan("", "g0.chunk", []string{"1", "2", "4", "8"})
	want := []int{1, 2, 3, 0} // 2, 4, 8, 1 by predicted cost
	if len(plan.Order) != 4 {
		t.Fatalf("rank plan order = %v", plan.Order)
	}
	for i, w := range want {
		if plan.Order[i] != w {
			t.Fatalf("rank order = %v, want %v", plan.Order, want)
		}
	}
	if plan.Pruned != nil {
		t.Fatalf("ModeRank pruned: %v", plan.Pruned)
	}
}

func TestPlannerModeFullPrunesDominated(t *testing.T) {
	p := plannerFixture(t, ModeFull)
	plan := p.Plan("", "g0.chunk", []string{"1", "2", "4", "8"})
	if plan.Pruned == nil {
		t.Fatalf("ModeFull pruned nothing")
	}
	// 2 and 4 survive (top-K=2), 8 (3x) and 1 (9x) are beyond the 35% margin.
	wantPruned := []bool{true, false, false, true}
	for i, w := range wantPruned {
		if plan.Pruned[i] != w {
			t.Fatalf("pruned = %v, want %v", plan.Pruned, wantPruned)
		}
	}
}

func TestPlannerMarginAndSurvivorValve(t *testing.T) {
	m := NewModel()
	m.Observe(testMeta, "g0.chunk", "2", 100)
	m.Observe(testMeta, "g0.chunk", "4", 110)
	m.Observe(testMeta, "g0.chunk", "8", 120)
	// All within 35%: nothing prunable.
	p := NewPlanner(m, testMeta, PlannerConfig{Mode: ModeFull})
	if plan := p.Plan("", "g0.chunk", []string{"2", "4", "8"}); plan.Pruned != nil {
		t.Fatalf("close candidates pruned: %v", plan.Pruned)
	}
	// Tiny margin prunes beyond top-K but the valve keeps K survivors even
	// when everything past the best is "dominated".
	p = NewPlanner(m, testMeta, PlannerConfig{Mode: ModeFull, MarginFrac: 0.01, MinSurvivors: 2})
	plan := p.Plan("", "g0.chunk", []string{"2", "4", "8"})
	if plan.Pruned == nil {
		t.Fatalf("tiny margin pruned nothing")
	}
	survivors := 0
	for _, pr := range plan.Pruned {
		if !pr {
			survivors++
		}
	}
	if survivors != 2 {
		t.Fatalf("survivors = %d, want 2", survivors)
	}
	if plan.Pruned[0] {
		t.Fatalf("predicted best was pruned")
	}
}

func TestPlannerUnknownAndL2Behaviour(t *testing.T) {
	m := NewModel()
	p := NewPlanner(m, testMeta, PlannerConfig{Mode: ModeFull})
	// Empty model: zero plan.
	if plan := p.Plan("", "g0.chunk", []string{"1", "2"}); plan.Order != nil {
		t.Fatalf("empty model produced a plan")
	}
	// Only-L2 knowledge ranks but never prunes (MaxLevel default 1).
	m.Observe(Meta{Model: "donor"}, "x9.chunk", "1", 900)
	m.Observe(Meta{Model: "donor"}, "x9.chunk", "2", 100)
	plan := p.Plan("", "g0.chunk", []string{"1", "2"})
	if len(plan.Order) != 2 || plan.Order[0] != 1 {
		t.Fatalf("L2 rank order = %v, want [1 0]", plan.Order)
	}
	if plan.Pruned != nil {
		t.Fatalf("L2-only predictions pruned: %v", plan.Pruned)
	}
	// Unpredicted candidates sort after predicted ones and are never pruned.
	m2 := NewModel()
	for i := 0; i < 4; i++ {
		m2.Observe(testMeta, "g0.chunk", "2", 100)
	}
	p2 := NewPlanner(m2, testMeta, PlannerConfig{Mode: ModeFull, MarginFrac: 0.01, MinSurvivors: 1})
	plan2 := p2.Plan("", "g0.chunk", []string{"zz", "2"})
	if plan2.Order[0] != 1 || plan2.Order[1] != 0 {
		t.Fatalf("order = %v, want predicted candidate first", plan2.Order)
	}
	if plan2.Pruned != nil {
		t.Fatalf("unpredicted candidate pruned: %v", plan2.Pruned)
	}
}

// TestPlannerImplementsPrior pins the interface contract at compile time
// and the Invalidate→Decay wiring at run time.
func TestPlannerImplementsPrior(t *testing.T) {
	var _ adapt.Prior = (*Planner)(nil)
	p := plannerFixture(t, ModeFull)
	for i := 0; i < 8; i++ {
		p.Observe("", "g0.chunk", "2", 100)
	}
	before, _, _ := p.Model().Predict(testMeta, "g0.chunk", "2")
	p.Invalidate()
	p.Observe("", "g0.chunk", "2", 1000)
	after, _, _ := p.Model().Predict(testMeta, "g0.chunk", "2")
	if after <= before {
		t.Fatalf("post-Invalidate observation did not move the mean up")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{ModeTrain: "train", ModeRank: "rank", ModeFull: "full", Mode(99): "mode?"} {
		if got := m.String(); got != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestPlannerConfigDefaults(t *testing.T) {
	var zero PlannerConfig
	if zero.marginFrac() != 0.35 || zero.minSurvivors() != 2 || zero.maxLevel() != 1 {
		t.Fatalf("zero config thresholds = %v/%v/%v, want 0.35/2/1",
			zero.marginFrac(), zero.minSurvivors(), zero.maxLevel())
	}
	set := PlannerConfig{MarginFrac: 0.1, MinSurvivors: 5, MaxLevel: 2}
	if set.marginFrac() != 0.1 || set.minSurvivors() != 5 || set.maxLevel() != 2 {
		t.Fatalf("explicit thresholds not honoured: %v/%v/%v",
			set.marginFrac(), set.minSurvivors(), set.maxLevel())
	}
}

func TestPlannerAccessors(t *testing.T) {
	m := NewModel()
	p := NewPlanner(m, testMeta, PlannerConfig{Mode: ModeRank})
	if p.Model() != m {
		t.Fatal("Model() did not return the bound model")
	}
	if p.Meta() != testMeta {
		t.Fatalf("Meta() = %+v, want %+v", p.Meta(), testMeta)
	}
}
