package wire

import (
	"bytes"
	"strings"
	"testing"

	"astra/internal/adapt"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/profile"
	"astra/internal/tensor"
)

// recordingPrior counts the prior callbacks a session issues without ever
// giving advice — attaching it must not change exploration at all.
type recordingPrior struct {
	observed    int
	invalidated int
}

func (r *recordingPrior) Plan(ctx, varID string, labels []string) adapt.PriorPlan {
	return adapt.PriorPlan{}
}
func (r *recordingPrior) Observe(ctx, varID, label string, us float64) { r.observed++ }
func (r *recordingPrior) Invalidate()                                  { r.invalidated++ }

func tinySession(t *testing.T, name string, preset enumerate.Preset, eval bool) *Session {
	t.Helper()
	build, ok := models.Get(name)
	if !ok {
		t.Fatalf("model %q", name)
	}
	m := build(models.TinyConfig(name, 2))
	return NewSession(m, SessionConfig{
		Device:     gpusim.P100(),
		Options:    enumerate.PresetOptions(preset),
		Runner:     RunnerConfig{PerOpCPUUs: 2},
		EvalValues: eval,
	})
}

func TestExplorationConvergesAllModels(t *testing.T) {
	for _, name := range models.Names() {
		s := tinySession(t, name, enumerate.PresetAll, false)
		trials := s.Explore()
		if trials <= 0 {
			t.Errorf("%s: no exploration trials", name)
		}
		if !s.Done() {
			t.Errorf("%s: not converged", name)
		}
		for _, v := range s.Exp.Vars() {
			if !v.Frozen() {
				t.Errorf("%s: var %s not frozen", name, v.ID)
			}
		}
	}
}

func TestValuePreservationDuringExploration(t *testing.T) {
	// Work conservation (§4.2): every exploration mini-batch computes
	// exactly what the unoptimized graph computes. Compare each trial's
	// loss against the reference executor, bit for bit.
	for _, name := range models.Names() {
		s := tinySession(t, name, enumerate.PresetAll, true)
		for i := 0; i < 30 && !s.Done(); i++ {
			seed := s.batchSeed
			res := s.Step()
			want := s.Model.G.Run(s.Model.MakeInputs(seed), s.Params)
			got := res.Env[s.Model.G.Loss].Data()[0]
			ref := want[s.Model.G.Loss].Data()[0]
			if got != ref {
				t.Fatalf("%s trial %d: loss %v != reference %v", name, i, got, ref)
			}
		}
	}
}

func TestValuePreservationAfterWiring(t *testing.T) {
	s := tinySession(t, "sublstm", enumerate.PresetAll, true)
	s.Explore()
	seed := s.batchSeed
	res := s.Step()
	ref := s.Model.G.Run(s.Model.MakeInputs(seed), s.Params)
	if res.Env[s.Model.G.Loss].Data()[0] != ref[s.Model.G.Loss].Data()[0] {
		t.Fatal("wired schedule changed the loss")
	}
	// Gradients too: value preservation must cover the backward pass.
	for p, gv := range s.Model.G.Grads {
		if tensor.MaxAbsDiff(res.Env[gv], ref[gv]) != 0 {
			t.Fatalf("gradient of %s differs under wired schedule", p.Name)
		}
	}
}

func TestWiredConfigBeatsDefault(t *testing.T) {
	// The measured best configuration must not be slower than the default
	// (first) configuration — measurement picked it.
	for _, name := range []string{"scrnn", "sublstm"} {
		s := tinySession(t, name, enumerate.PresetAll, false)
		first := s.Step() // default configuration, observed by explorer
		s.Explore()
		wired := s.Step()
		if wired.TotalUs > first.TotalUs*1.01 {
			t.Errorf("%s: wired %0.1fus slower than default %0.1fus", name, wired.TotalUs, first.TotalUs)
		}
	}
}

func TestWiredDeterministic(t *testing.T) {
	s := tinySession(t, "milstm", enumerate.PresetAll, false)
	s.Explore()
	a := s.Step().TotalUs
	b := s.Step().TotalUs
	if a != b {
		t.Fatalf("wired batches differ: %v vs %v", a, b)
	}
}

func TestDriftWatchdogThawsAndRewiresInSession(t *testing.T) {
	// End-to-end §4.6 drift story: explore → wire → clock throttles
	// mid-wired-phase → watchdog detects sustained deviation → explorer
	// thaws, stale measurements are evicted, exploration re-runs and a new
	// configuration is wired — all inside one session, no restart.
	build, _ := models.Get("sublstm")
	// Short sequence keeps exploration fast; a wide hidden dim keeps the
	// batch GPU-bound, so a clock throttle actually moves the batch time
	// (a dispatch-bound tiny model hides kernel slowdowns entirely).
	cfg := models.Config{Batch: 16, SeqLen: 4, Hidden: 2048, Embed: 256, Vocab: 100, Embedding: true, Backward: true}
	mkSession := func(faults gpusim.FaultConfig, prior adapt.Prior) *Session {
		dev := gpusim.P100()
		dev.Faults = faults
		return NewSession(build(cfg), SessionConfig{
			Device:  dev,
			Options: enumerate.PresetOptions(enumerate.PresetFKS),
			Runner:  RunnerConfig{PerOpCPUUs: 2},
			Prior:   prior,
		})
	}

	// Dry run to learn how many batches exploration takes for this model,
	// so the throttle window can be placed a few batches into wired phase.
	dry := mkSession(gpusim.FaultConfig{}, nil)
	dry.Explore()

	// The attached prior must see the whole story too: observations during
	// both explorations, and an Invalidate when the thaw evicts the
	// measurements it was trained on (docs/COSTMODEL.md, drift feedback).
	rec := &recordingPrior{}
	s := mkSession(gpusim.FaultConfig{
		ThrottleStartBatch: dry.Batches + 5,
		ThrottleFactor:     1.5, // open-ended window: throttled to session end
	}, rec)
	s.Drift = DriftConfig{Enabled: true}

	firstTrials := s.Explore()
	if firstTrials != dry.Trials {
		t.Fatalf("fault-config session explored %d trials, dry run %d", firstTrials, dry.Trials)
	}
	fedCold := rec.observed
	if fedCold == 0 {
		t.Fatal("prior saw no observations during exploration")
	}
	if rec.invalidated != 0 {
		t.Fatalf("prior invalidated %d times before any drift", rec.invalidated)
	}
	preDrift := s.Step().TotalUs
	for i := 0; i < 100 && s.DriftEvents == 0; i++ {
		s.Step()
	}
	if s.DriftEvents != 1 {
		t.Fatalf("drift watchdog did not fire (events = %d)", s.DriftEvents)
	}
	if s.Done() {
		t.Fatal("explorer not thawed after drift event")
	}
	if s.Exp.Reexplorations() != 1 {
		t.Fatalf("reexplorations = %d, want 1", s.Exp.Reexplorations())
	}
	if rec.invalidated != 1 {
		t.Fatalf("drift thaw invalidated the prior %d times, want 1", rec.invalidated)
	}
	// Re-exploration must converge again under the throttled clock…
	extra := s.Explore()
	if s.Err() != nil {
		t.Fatalf("re-exploration failed: %v", s.Err())
	}
	if extra <= firstTrials {
		t.Fatalf("total trials %d did not grow past first exploration %d", extra, firstTrials)
	}
	if rec.observed <= fedCold {
		t.Fatalf("re-exploration fed the prior no fresh measurements (%d then, %d now)", fedCold, rec.observed)
	}
	// …and the re-wired schedule runs stably: the watchdog re-arms on the
	// new expectation, so the (still throttled) steady state is not drift.
	post := s.Step().TotalUs
	if post <= preDrift {
		t.Fatalf("throttled wired batch %v not slower than pre-drift %v", post, preDrift)
	}
	for i := 0; i < 20; i++ {
		s.Step()
	}
	if s.DriftEvents != 1 {
		t.Fatalf("watchdog re-fired on stable throttled clock (events = %d)", s.DriftEvents)
	}
	if !s.Done() {
		t.Fatal("session did not re-converge")
	}
}

func TestMetricsCoverRecordingVars(t *testing.T) {
	s := tinySession(t, "stackedlstm", enumerate.PresetAll, false)
	for i := 0; i < 5 && !s.Done(); i++ {
		res := s.Runner.RunBatch(nil, nil)
		for _, v := range s.Exp.Vars() {
			if v.Recording() {
				if _, ok := res.Metrics[v.ID]; !ok {
					t.Fatalf("no metric for recording var %s", v.ID)
				}
			}
		}
		s.Exp.Observe(res.Metrics)
		s.Exp.Advance()
	}
}

func TestPresetsMonotoneOnWiredTime(t *testing.T) {
	// More adaptation dimensions must never make the wired schedule
	// slower (the explorer can always keep the previous best).
	times := map[enumerate.Preset]float64{}
	for _, p := range []enumerate.Preset{enumerate.PresetF, enumerate.PresetFK, enumerate.PresetFKS, enumerate.PresetAll} {
		s := tinySession(t, "sublstm", p, false)
		s.Explore()
		times[p] = s.Step().TotalUs
	}
	if times[enumerate.PresetFK] > times[enumerate.PresetF]*1.02 {
		t.Errorf("FK (%v) slower than F (%v)", times[enumerate.PresetFK], times[enumerate.PresetF])
	}
	if times[enumerate.PresetFKS] > times[enumerate.PresetFK]*1.02 {
		t.Errorf("FKS (%v) slower than FK (%v)", times[enumerate.PresetFKS], times[enumerate.PresetFK])
	}
	if times[enumerate.PresetAll] > times[enumerate.PresetFKS]*1.02 {
		t.Errorf("All (%v) slower than FKS (%v)", times[enumerate.PresetAll], times[enumerate.PresetFKS])
	}
}

func TestSchedulePreservesDependencies(t *testing.T) {
	// The eval path panics if any dispatched node reads an unbound value:
	// driving every exploration configuration with values on is a full
	// dependency check of every schedule tried.
	s := tinySession(t, "gnmt", enumerate.PresetAll, true)
	for i := 0; i < 40 && !s.Done(); i++ {
		s.Step()
	}
}

func TestProfilingOverheadSmall(t *testing.T) {
	// §6.4: always-on profiling costs <0.5% — check at paper scale.
	m := models.SCRNN(models.DefaultConfig("scrnn", 32))
	s := NewSession(m, SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetAll),
		Runner:  RunnerConfig{PerOpCPUUs: 2},
	})
	res := s.Step()
	frac := res.ProfilingOverheadUs() / res.TotalUs
	if frac >= 0.005 {
		t.Fatalf("profiling overhead %.3f%% >= 0.5%%", frac*100)
	}
	if res.Events == 0 {
		t.Fatal("profiling recorded no events")
	}
}

func TestTrainingLoopWithSGD(t *testing.T) {
	s := tinySession(t, "scrnn", enumerate.PresetFK, true)
	s.LearningRate = 0.2
	first := s.Step()
	for i := 0; i < 15; i++ {
		s.Step()
	}
	last := s.Step()
	l0 := first.Env[s.Model.G.Loss].Data()[0]
	l1 := last.Env[s.Model.G.Loss].Data()[0]
	if l1 >= l0 {
		t.Fatalf("training did not reduce loss: %v -> %v", l0, l1)
	}
}

func TestSessionWithoutTree(t *testing.T) {
	// No adaptation dimensions at all: the session degenerates to a fixed
	// dispatcher.
	m := models.SCRNN(models.TinyConfig("scrnn", 2))
	s := NewSession(m, SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.Options{ElementwiseFusion: true},
		Runner:  RunnerConfig{PerOpCPUUs: 2},
	})
	if !s.Done() || s.Explore() != 0 {
		t.Fatal("tree-less session should be immediately done")
	}
	if s.Step().TotalUs <= 0 {
		t.Fatal("no time simulated")
	}
}

func TestScheduleReport(t *testing.T) {
	s := tinySession(t, "stackedlstm", enumerate.PresetAll, false)
	s.Explore()
	r := s.Report()
	if r.Alloc == "" || len(r.Groups) == 0 {
		t.Fatalf("empty report: %+v", r)
	}
	if r.SuperEpochs == 0 || r.Epochs < r.SuperEpochs {
		t.Fatalf("bad epoch counts: %+v", r)
	}
	if len(r.StreamSplit) < 2 {
		t.Fatalf("stream adaptation produced no split: %v", r.StreamSplit)
	}
	fused := 0
	for _, g := range r.Groups {
		if g.Chunk != "1" {
			fused++
		}
	}
	if fused == 0 {
		t.Fatal("wired schedule fused nothing")
	}
	txt := r.String()
	for _, want := range []string{"allocation strategy:", "stream assignment:", "fusion groups:"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("report missing %q:\n%s", want, txt)
		}
	}
}

func TestWarmStartFromSavedIndex(t *testing.T) {
	// Explore once, snapshot the profile index, start a fresh session of
	// the same job with it: exploration completes with zero new trials and
	// the wired schedule matches.
	cold := tinySession(t, "sublstm", enumerate.PresetFKS, false)
	cold.Explore()
	coldWired := cold.Step().TotalUs

	var buf bytes.Buffer
	if err := cold.Ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix := profile.NewIndex()
	if err := ix.Load(&buf); err != nil {
		t.Fatal(err)
	}

	build, _ := models.Get("sublstm")
	m2 := build(models.TinyConfig("sublstm", 2))
	warm := NewSession(m2, SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(enumerate.PresetFKS),
		Runner:  RunnerConfig{PerOpCPUUs: 2},
		Index:   ix,
	})
	if !warm.Done() {
		t.Fatal("warm session should be converged before any trial")
	}
	if trials := warm.Explore(); trials != 0 {
		t.Fatalf("warm exploration ran %d trials", trials)
	}
	if w := warm.Step().TotalUs; w != coldWired {
		t.Fatalf("warm wired %v != cold wired %v", w, coldWired)
	}
}

func TestFourStreamAdaptation(t *testing.T) {
	// NumStreams > 2: moved units spread across the auxiliary streams;
	// the wired schedule must not be slower than the 2-stream one (the
	// explorer can always leave streams unused).
	build, _ := models.Get("sublstm")
	wired := map[int]float64{}
	for _, streams := range []int{2, 4} {
		m := build(models.TinyConfig("sublstm", 2))
		opts := enumerate.PresetOptions(enumerate.PresetFKS)
		opts.NumStreams = streams
		s := NewSession(m, SessionConfig{
			Device:  gpusim.P100(),
			Options: opts,
			Runner:  RunnerConfig{PerOpCPUUs: 2},
		})
		s.Explore()
		wired[streams] = s.Step().TotalUs
		if got := s.Runner.Dev.NumStreams(); got < streams {
			t.Fatalf("device has %d streams, want >= %d", got, streams)
		}
	}
	if wired[4] > wired[2]*1.02 {
		t.Fatalf("4 streams (%v) slower than 2 (%v)", wired[4], wired[2])
	}
}
