package wire

import (
	"fmt"
	"math"

	"astra/internal/adapt"
	"astra/internal/analyze"
	"astra/internal/autodiff"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/graph"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/profile"
	"astra/internal/verify"
)

// Session ties the whole pipeline together for one training job: the
// enumerated plan, the simulated device, the profile index and the
// explorer. Exploration is work-conserving (§4.2): every exploration
// mini-batch performs the full, value-preserving training computation; only
// its schedule varies.
type Session struct {
	Model  *models.Model
	Plan   *enumerate.Plan
	Runner *Runner
	Ix     *profile.Index
	Exp    *adapt.Explorer // nil when the plan has no adaptive variables

	// Peers are the other workers of a multi-GPU session (ranks 1..n−1),
	// each with its own simulated device but sharing the plan — identical
	// replicas stepping in lockstep, the way synchronous data parallelism
	// works. Step runs every peer and reports the slowest worker.
	Peers []*Runner

	// EvalValues runs the CPU value oracle each batch (slow; tests and
	// examples only — timing never depends on it).
	EvalValues bool
	// LearningRate > 0 applies SGD updates after each batch when
	// EvalValues is set, making the session a real training loop.
	LearningRate float64
	// Params holds the live parameter tensors when training with values.
	Params graph.Env

	batchSeed uint64
	// Trials counts exploration mini-batches (the Table 7 metric).
	Trials int
	// ExploreUs accumulates simulated time spent while exploring.
	ExploreUs float64
	// Batches counts every mini-batch run (exploring and wired).
	Batches int
	// ClockUs is the session-wide simulated clock: the sum of all batch
	// times. Telemetry spans are placed on this clock.
	ClockUs float64
	// ProfOverheadUs accumulates the CPU cost of profiling-only events
	// across the session (the numerator of the §6.4 <0.5% claim).
	ProfOverheadUs float64

	// Obs, when attached via Instrument, receives spans, metrics and trial
	// events for every batch.
	Obs *obs.Telemetry
	// TraceDetailBatches bounds how many exploration batches and how many
	// wired batches export kernel-level detail (device spans, launch-queue
	// spans, per-unit dispatch spans). Trial spans, counter tracks, metrics
	// and event-log records always cover the whole session. 0 means
	// DefaultTraceDetailBatches; negative means unlimited (multi-hundred-MB
	// traces for paper-scale sessions).
	TraceDetailBatches int
	wiredBatches       int

	// VerifyConfigs counts the distinct configurations the plan verifier
	// checked this session (the schedule-unit graph and allocation
	// strategies are checked once at wire time; each explored binding is
	// checked before its first measurement). VerifyFindings counts the
	// findings; any finding folds into Err as a sticky *verify.Error.
	VerifyConfigs  int
	VerifyFindings int
	verifyOn       bool
	verifySpec     verify.Spec
	verifySeen     map[string]bool
	verifyErr      *verify.Error
	stepVerify     []string // findings surfaced by the current Step

	// Drift configures the wired-phase watchdog; the zero value disables it.
	Drift DriftConfig
	// DriftEvents counts watchdog firings (thaw + re-explore) this session.
	DriftEvents   int
	driftExpectUs float64 // frozen expectation: first wired batch after (re-)wiring
	driftEWMA     float64
	driftBreach   int

	meta sessionMeta
}

// sessionMeta pins the construction facts of the session — the model, its
// scale, and the cost constants the devices simulate under. It is stamped
// onto every event-log record so astra-whatif -check can rebuild an
// equivalent session from the log alone.
type sessionMeta struct {
	Model            string
	ModelScale       string
	PerDeviceBatch   int
	Preset           string
	NumStreams       int
	Seed             uint64
	PerOpCPUUs       float64
	LaunchOverheadUs float64
	KernelSetupUs    float64
	Noisy            bool
}

// DriftConfig tunes the wired-phase drift watchdog (§4.6: hardware drift —
// thermal throttling, clock autoboost decay — invalidates frozen choices).
// The watchdog tracks an EWMA of wired batch times against the expectation
// frozen at wiring time; sustained relative deviation thaws the explorer so
// exploration resumes in-session, work-conserving as ever.
type DriftConfig struct {
	// Enabled turns the watchdog on.
	Enabled bool
	// Alpha is the EWMA smoothing factor (0 < Alpha <= 1); default 0.25.
	Alpha float64
	// Tolerance is the relative deviation of the EWMA from the wired
	// expectation that counts as a breach; default 0.08.
	Tolerance float64
	// Patience is how many consecutive breaching batches fire the
	// watchdog; default 3.
	Patience int
}

func (c DriftConfig) alpha() float64 {
	if c.Alpha > 0 && c.Alpha <= 1 {
		return c.Alpha
	}
	return 0.25
}

func (c DriftConfig) tolerance() float64 {
	if c.Tolerance > 0 {
		return c.Tolerance
	}
	return 0.08
}

func (c DriftConfig) patience() int {
	if c.Patience > 0 {
		return c.Patience
	}
	return 3
}

// observeWired feeds one wired batch time to the watchdog and reports
// whether it fired (thawing the explorer back into exploration).
func (s *Session) observeWired(batchUs float64) bool {
	if !s.Drift.Enabled || s.Exp == nil {
		return false
	}
	if s.driftExpectUs == 0 {
		s.driftExpectUs = batchUs
		s.driftEWMA = batchUs
		s.driftBreach = 0
		return false
	}
	a := s.Drift.alpha()
	s.driftEWMA = a*batchUs + (1-a)*s.driftEWMA
	dev := math.Abs(s.driftEWMA-s.driftExpectUs) / s.driftExpectUs
	if dev <= s.Drift.tolerance() {
		s.driftBreach = 0
		return false
	}
	s.driftBreach++
	if s.driftBreach < s.Drift.patience() {
		return false
	}
	// Sustained drift: the frozen configuration's measurements no longer
	// describe the hardware. Evict and re-explore.
	s.DriftEvents++
	s.driftExpectUs = 0
	s.driftEWMA = 0
	s.driftBreach = 0
	s.Exp.Thaw()
	if s.Obs != nil {
		s.Obs.Metrics.Counter("session.drift_events", "").Inc()
	}
	return true
}

// DefaultTraceDetailBatches keeps a full exploration session's trace
// loadable in Perfetto: kernel-level detail for this many exploration and
// wired batches each, counters and trial spans for everything.
const DefaultTraceDetailBatches = 8

// traceDetail reports whether the next batch gets kernel-level spans.
func (s *Session) traceDetail(exploring bool) bool {
	limit := s.TraceDetailBatches
	if limit == 0 {
		limit = DefaultTraceDetailBatches
	}
	if limit < 0 {
		return true
	}
	if exploring {
		return s.Batches < limit
	}
	return s.wiredBatches < limit
}

// SessionConfig configures NewSession.
type SessionConfig struct {
	Device       gpusim.Config
	Options      enumerate.Options
	Runner       RunnerConfig
	EvalValues   bool
	LearningRate float64
	// Comm enables multi-worker data-parallel stepping with event-level
	// gradient exchange (Comm.Workers >= 2). The enumerate Options must
	// carry the same worker count for the comm variables to exist.
	Comm CommConfig
	// Index warm-starts the session with a previously saved profile index
	// (profile.Index.Save/Load). The enumerator is deterministic, so a
	// snapshot from an earlier run of the same job makes exploration
	// resume where it left off — or skip straight to the wired schedule.
	Index *profile.Index
	// ProfileContext namespaces every profile key the session records or
	// probes under this base context (default ""). Sessions of different
	// jobs sharing one Index must set it to a per-job signature so their
	// keys never collide; sessions with the same ProfileContext warm-start
	// off each other's measurements (the paper's §5 shared profile store).
	// Exploration behaviour is invariant to its value.
	ProfileContext string
	// Prior attaches a learned cost model to the explorer (see
	// internal/costmodel and docs/COSTMODEL.md): candidate visit order is
	// re-ranked by predicted cost and dominated candidates may be pruned,
	// cutting trials-to-freeze; the explorer's measurements train the
	// model in return (including post-drift re-measurements, so a drift
	// thaw re-plans from refreshed knowledge). nil disables the prior;
	// frozen choices are measured bests either way.
	Prior adapt.Prior
	// SkipVerify disables the plan verifier. By default the session
	// verifies the graph, unit partition and every allocation strategy at
	// wire time, and each explored configuration before measuring it;
	// findings surface as verify.* metrics and a sticky Err.
	SkipVerify bool
}

// NewSession compiles the model and prepares the runtime.
func NewSession(m *models.Model, cfg SessionConfig) *Session {
	plan := enumerate.Enumerate(m.G, cfg.Options)
	dev := gpusim.NewDevice(cfg.Device)
	rcfg := cfg.Runner
	rcfg.Profile = true
	rcfg.Comm = cfg.Comm
	rcfg.Comm.Rank = 0
	ix := cfg.Index
	if ix == nil {
		ix = profile.NewIndex()
	}
	s := &Session{
		Model:        m,
		Plan:         plan,
		Runner:       NewRunner(plan, dev, rcfg),
		Ix:           ix,
		EvalValues:   cfg.EvalValues,
		LearningRate: cfg.LearningRate,
	}
	for rank := 1; rank < cfg.Comm.Workers; rank++ {
		// Each peer simulates its own device. The seed is derived per
		// rank, so jitter and fault streams are independent across
		// workers (and still reproducible run to run); with noise off the
		// replicas are bit-identical.
		dcfg := cfg.Device
		dcfg.Seed = cfg.Device.Seed + uint64(rank)*0x9E3779B97F4A7C15
		prcfg := rcfg
		prcfg.Comm.Rank = rank
		s.Peers = append(s.Peers, NewRunner(plan, gpusim.NewDevice(dcfg), prcfg))
	}
	if cfg.EvalValues {
		s.Params = m.G.InitialParams()
	}
	s.meta = sessionMeta{
		Model:            m.Name,
		ModelScale:       modelScale(m),
		PerDeviceBatch:   m.Cfg.Batch,
		Preset:           plan.Opts.Preset,
		NumStreams:       plan.Opts.NumStreams,
		Seed:             cfg.Device.Seed,
		PerOpCPUUs:       cfg.Runner.PerOpCPUUs,
		LaunchOverheadUs: cfg.Device.LaunchOverheadUs,
		KernelSetupUs:    cfg.Device.KernelSetupUs,
		Noisy:            cfg.Device.Autoboost || cfg.Device.Faults.Enabled(),
	}
	if plan.Tree != nil {
		s.Exp = adapt.NewExplorerPrior(plan.Tree, s.Ix, cfg.ProfileContext, cfg.Prior)
	}
	if !cfg.SkipVerify {
		s.verifyOn = true
		s.verifySeen = map[string]bool{}
		s.verifySpec = verify.Spec{
			Workers:   cfg.Comm.Workers,
			BucketKB:  cfg.Comm.DefaultBucketKB,
			Placement: cfg.Comm.DefaultPlacement,
			MaxFusion: cfg.Runner.MaxFusion,
		}
		// Plan-level analyses run once: the graph IR, the unit partition,
		// and every allocation strategy the explorer could pick.
		r := verify.CheckGraph(plan.G)
		r.Merge(verify.CheckUnits(plan))
		for _, a := range plan.Allocs {
			r.Merge(verify.CheckStrategy(a, plan.G.Values, plan.Requests))
		}
		s.recordVerify(r)
	}
	return s
}

// recordVerify folds one verifier report into the session: counters, the
// sticky error, and the per-step finding list telemetry attaches to the
// batch's event record.
func (s *Session) recordVerify(r *verify.Report) {
	s.VerifyConfigs += r.Configs
	if s.Obs != nil {
		s.Obs.Metrics.Counter("verify.configs", "").Add(float64(r.Configs))
	}
	if r.OK() {
		return
	}
	s.VerifyFindings += len(r.Findings)
	if s.verifyErr == nil {
		s.verifyErr = &verify.Error{}
	}
	s.verifyErr.Findings = append(s.verifyErr.Findings, r.Findings...)
	for _, f := range r.Findings {
		s.stepVerify = append(s.stepVerify, f.String())
	}
	if s.Obs != nil {
		s.Obs.Metrics.Counter("verify.findings", "").Add(float64(len(r.Findings)))
	}
}

// verifyStep checks the configuration the next batch will run under, once
// per distinct binding. The explorer advanced the variables at the end of
// the previous Step, so the current bindings are exactly what dispatches.
func (s *Session) verifyStep() {
	if !s.verifyOn {
		return
	}
	s.stepVerify = s.stepVerify[:0]
	sig := verify.Signature(s.Plan)
	if s.verifySeen[sig] {
		return
	}
	s.verifySeen[sig] = true
	s.recordVerify(verify.CheckConfig(s.Plan, s.verifySpec))
}

// Instrument attaches a telemetry bundle to the whole pipeline: the runner
// (dispatch spans), the explorer (trial/frozen-variable metrics) and the
// profile index (hit/miss counters). Subsequent Steps emit one trial span,
// one set of counter samples and one event-log record per mini-batch, and
// merge the device's kernel records into the session trace.
func (s *Session) Instrument(tel *obs.Telemetry) {
	s.Obs = tel
	s.Runner.Instrument(tel)
	s.Ix.Instrument(tel.Metrics)
	if s.Exp != nil {
		s.Exp.Instrument(tel.Metrics)
	}
	tel.Trace.SetProcessName(obs.PIDExplore, "exploration")
	// Pre-register the session metrics so an exposition before the first
	// batch already shows the schema.
	tel.Metrics.Histogram("batch.total_us", "simulated mini-batch time")
	tel.Metrics.Counter("session.sim_time_us", "total simulated session time")
	tel.Metrics.Counter("wirer.profiling_overhead_us", "CPU cost of profiling-only events")
	tel.Metrics.Counter("wirer.kernels", "kernels launched")
	tel.Metrics.Counter("wirer.events", "cudaEvents recorded or waited on")
	tel.Metrics.Gauge("profile.hit_rate", "profile index hit rate")
	tel.Metrics.Gauge("sim.pool_reused", "simulator hot-path objects served from free-lists")
	tel.Metrics.Gauge("sim.pool_allocated", "simulator hot-path objects freshly allocated")
	tel.Metrics.Counter("session.drift_events", "wired-phase drift watchdog firings")
	// Trace-analytics summaries: internal/analyze runs on every batch's
	// kernel profiles and folds the headline numbers into the registry.
	tel.Metrics.Counter("analyze.critical_path_us", "critical-path length summed over analyzed batches")
	tel.Metrics.Counter("analyze.path_dispatch_us", "critical-path time attributed to CPU dispatch")
	tel.Metrics.Counter("analyze.exposed_comm_us", "communication time not hidden behind compute")
	tel.Metrics.Counter("analyze.launch_gap_us", "device idle waiting on kernel launches")
	tel.Metrics.Counter("analyze.barrier_wait_us", "device idle at super-epoch barriers")
	tel.Metrics.Counter("analyze.bucket_stall_us", "comm stream idle waiting on gradient buckets")
	tel.Metrics.Counter("analyze.straggler_wait_us", "worker idle waiting for the slowest worker")
	tel.Metrics.Gauge("analyze.overlap_efficiency", "achieved/ideal comm overlap of the last analyzed batch")
	// The wire-time verification ran before telemetry attached; seed the
	// counters with what has accumulated so far.
	tel.Metrics.Counter("verify.configs", "distinct configurations checked by the plan verifier").Add(float64(s.VerifyConfigs))
	tel.Metrics.Counter("verify.findings", "plan-verifier findings (safety violations)").Add(float64(s.VerifyFindings))
	if len(s.Peers) > 0 {
		tel.Metrics.Gauge("distsim.workers", "data-parallel worker count").Set(float64(len(s.Peers) + 1))
		tel.Metrics.Histogram("distsim.comm_us", "per-batch gradient-exchange link-busy time")
		tel.Metrics.Counter("distsim.comm_kernels", "ring all-reduce step kernels launched")
	}
}

// CloseTelemetry emits the session-level root span; call once after the
// last batch, before exporting the trace.
func (s *Session) CloseTelemetry() {
	if s.Obs == nil {
		return
	}
	s.Obs.Trace.AddSpan(obs.PIDDispatch, obs.TIDBatches,
		"session "+s.Model.Name, "session", 0, s.ClockUs, map[string]interface{}{
			"model":   s.Model.Name,
			"batches": s.Batches,
			"trials":  s.Trials,
		})
}

// explorerBindings snapshots the choice labels of the variables the
// explorer actively measured this trial — the delta of the configuration.
// (A full binding of every variable would repeat ~O(vars) entries per trial
// and dominate the log; the recording set is exactly what this trial's
// measurements attach to.)
func (s *Session) explorerBindings() map[string]string {
	if s.Exp == nil {
		return nil
	}
	out := map[string]string{}
	for _, v := range s.Exp.Vars() {
		if v.Recording() {
			out[v.ID] = v.CurrentLabel()
		}
	}
	return out
}

// collectProfiles snapshots every worker's kernel timeline for the batch
// just run (device records stay valid until the next Reset). The comm
// stream index is stamped on so the analyzer can tell exchange lanes from
// compute lanes without parsing kernel names.
func (s *Session) collectProfiles() []obs.BatchProfile {
	out := make([]obs.BatchProfile, 0, 1+len(s.Peers))
	p := s.Runner.Dev.Profile(0)
	if s.Runner.Cfg.Comm.Enabled() {
		p.CommStream = s.Runner.CommStream()
	}
	out = append(out, p)
	for i, peer := range s.Peers {
		pp := peer.Dev.Profile(i + 1)
		if peer.Cfg.Comm.Enabled() {
			pp.CommStream = peer.CommStream()
		}
		out = append(out, pp)
	}
	return out
}

// recordBatchTelemetry emits the batch's span, counter samples, registry
// updates and event-log record. startUs is the session clock at batch
// start; bindings were captured before the explorer advanced, froze lists
// the variables that froze during it.
func (s *Session) recordBatchTelemetry(res *BatchResult, bindings map[string]string, froze []string, exploring, detail, drift bool) {
	tel := s.Obs
	startUs := s.ClockUs
	endUs := startUs + res.TotalUs

	// Trial span on the dispatch timeline (nested inside the session span).
	name := fmt.Sprintf("batch %d (wired)", s.Batches)
	phase := "wired"
	if exploring {
		name = fmt.Sprintf("trial %d", s.Trials)
		phase = "explore"
	}
	args := map[string]interface{}{"kernels": res.Kernels}
	if len(res.WorkerUs) > 0 {
		args["workers"] = len(res.WorkerUs)
		args["comm_us"] = res.CommUs
	}
	for k, v := range bindings { // nodeterm:ok order-independent map-to-map copy
		args["bind."+k] = v
	}
	tel.Trace.AddSpan(obs.PIDDispatch, obs.TIDBatches, name, phase, startUs, res.TotalUs, args)

	// Device streams and launch queues, shifted onto the session clock —
	// only for detail batches, so long sessions stay loadable. Peers land
	// in their own pid blocks; each worker's comm stream gets a named lane
	// so the overlap (or lack of it) reads directly off the trace.
	if detail {
		s.Runner.Dev.ExportSpans(tel.Trace, startUs)
		s.nameCommLane(obs.PIDDevice, s.Runner)
		for i, p := range s.Peers {
			rank := i + 1
			devPID := obs.WorkerPID(obs.PIDDevice, rank)
			p.Dev.ExportSpansTo(tel.Trace, startUs, devPID,
				obs.WorkerPID(obs.PIDQueue, rank), fmt.Sprintf("worker %d ", rank))
			s.nameCommLane(devPID, p)
		}
	}

	// Exploration counter tracks.
	frozen, total := 0, 0
	if s.Exp != nil {
		frozen, total = s.Exp.FrozenCount()
	}
	tel.Trace.AddCounter(obs.PIDExplore, "explore.trials", endUs, map[string]float64{"trials": float64(s.Trials)})
	tel.Trace.AddCounter(obs.PIDExplore, "explore.frozen_vars", endUs, map[string]float64{"frozen": float64(frozen)})
	tel.Trace.AddCounter(obs.PIDExplore, "batch.total_us", endUs, map[string]float64{"us": res.TotalUs})
	tel.Trace.AddCounter(obs.PIDExplore, "profile.hit_rate", endUs, map[string]float64{"rate": s.Ix.HitRate()})

	// Metrics registry.
	tel.Metrics.Histogram("batch.total_us", "").Observe(res.TotalUs)
	tel.Metrics.Counter("session.sim_time_us", "").Add(res.TotalUs)
	tel.Metrics.Counter("wirer.profiling_overhead_us", "").Add(res.ProfilingOverheadUs())
	tel.Metrics.Counter("wirer.kernels", "").Add(float64(res.Kernels))
	tel.Metrics.Counter("wirer.events", "").Add(float64(res.Events))
	tel.Metrics.Gauge("profile.hit_rate", "").Set(s.Ix.HitRate())
	reused, allocated := s.Runner.Dev.PoolCounters()
	tel.Metrics.Gauge("sim.pool_reused", "").Set(float64(reused))
	tel.Metrics.Gauge("sim.pool_allocated", "").Set(float64(allocated))
	workers := 0
	if len(res.WorkerUs) > 0 {
		workers = len(res.WorkerUs)
		tel.Metrics.Histogram("distsim.comm_us", "").Observe(res.CommUs)
		tel.Metrics.Counter("distsim.comm_kernels", "").Add(float64(res.CommKernels))
		tel.Trace.AddCounter(obs.PIDExplore, "distsim.comm_us", endUs, map[string]float64{"us": res.CommUs})
	}

	// One structured record per mini-batch, carrying the full per-worker
	// kernel profiles — an event log alone is enough for astra-analyze.
	reexp := 0
	var pstats adapt.PriorStats
	if s.Exp != nil {
		reexp = s.Exp.Reexplorations()
		pstats = s.Exp.PriorStats()
	}
	ev := obs.TrialEvent{
		Batch:          s.Batches,
		Trial:          s.Trials,
		Phase:          phase,
		StartUs:        startUs,
		BatchUs:        res.TotalUs,
		Kernels:        res.Kernels,
		Events:         res.Events,
		ProfOverheadUs: res.ProfilingOverheadUs(),
		HitRate:        s.Ix.HitRate(),
		FrozenVars:     frozen,
		TotalVars:      total,
		Bindings:       bindings,
		Metrics:        res.Metrics,
		Drift:          drift,
		Workers:        workers,
		CommUs:         res.CommUs,
		WorkerUs:       res.WorkerUs,
		VerifyFindings: append([]string(nil), s.stepVerify...),
		Fabric:         s.Runner.Cfg.Comm.Fabric,
		Froze:          froze,
		Reexplorations: reexp,
		PriorHits:      pstats.Hits,
		PriorMisses:    pstats.Misses,
		PriorPruned:    pstats.Pruned,
		PriorRankInv:   pstats.RankInversions,
		Profiles:       s.collectProfiles(),

		Model:            s.meta.Model,
		ModelScale:       s.meta.ModelScale,
		PerDeviceBatch:   s.meta.PerDeviceBatch,
		Preset:           s.meta.Preset,
		NumStreams:       s.meta.NumStreams,
		Seed:             s.meta.Seed,
		PerOpCPUUs:       s.meta.PerOpCPUUs,
		LaunchOverheadUs: s.meta.LaunchOverheadUs,
		KernelSetupUs:    s.meta.KernelSetupUs,
		Noisy:            s.meta.Noisy,
	}

	// Fold the batch's trace analytics into the registry. The analyzer
	// reads the profiles just collected; its reconciliations are exact, so
	// these counters partition simulated time, never estimate it.
	if ba, err := analyze.AnalyzeBatch(&ev); err == nil && ba != nil {
		tel.Metrics.Counter("analyze.critical_path_us", "").Add(ba.WallUs)
		tel.Metrics.Counter("analyze.path_dispatch_us", "").Add(ba.PathBlame[analyze.ClassDispatch])
		tel.Metrics.Counter("analyze.exposed_comm_us", "").Add(ba.Overlap.ExposedUs)
		tel.Metrics.Counter("analyze.launch_gap_us", "").Add(ba.IdleUs[analyze.IdleLaunchGap])
		tel.Metrics.Counter("analyze.barrier_wait_us", "").Add(ba.IdleUs[analyze.IdleBarrierWait])
		tel.Metrics.Counter("analyze.bucket_stall_us", "").Add(ba.IdleUs[analyze.IdleBucketStall])
		tel.Metrics.Counter("analyze.straggler_wait_us", "").Add(ba.IdleUs[analyze.IdleStragglerWait])
		tel.Metrics.Gauge("analyze.overlap_efficiency", "").Set(ba.Overlap.Efficiency)
	}
	_ = tel.Events.Emit(ev)
}

// nameCommLane labels a worker's communication stream in the trace; a no-op
// for single-worker runners.
func (s *Session) nameCommLane(devPID int, r *Runner) {
	if s.Obs == nil || !r.Cfg.Comm.Enabled() {
		return
	}
	name := "comm stream"
	if f := r.Cfg.Comm.Fabric; f != "" {
		name = "comm stream (" + f + ")"
	}
	s.Obs.Trace.SetThreadName(devPID, r.CommStream(), name)
}

// Step runs one training mini-batch with the current configuration. While
// exploration is in progress the measurements feed the explorer, which then
// advances to the next configuration; afterwards batches run with the
// wired-in best configuration.
func (s *Session) Step() BatchResult {
	exploring := s.Exp != nil && !s.Exp.Done()
	s.verifyStep()
	detail := false
	if s.Obs != nil {
		detail = s.traceDetail(exploring)
		s.Runner.SetTraceOffset(s.ClockUs, detail)
	}
	var res BatchResult
	if s.EvalValues {
		in := s.Model.MakeInputs(s.batchSeed)
		s.batchSeed++
		res = s.Runner.RunBatch(in, s.Params)
		if s.LearningRate > 0 {
			autodiff.ApplySGD(s.Model.G, res.Env, s.Params, s.LearningRate)
		}
	} else {
		res = s.Runner.RunBatch(nil, nil)
	}
	if len(s.Peers) > 0 {
		// Synchronous data parallelism: every worker steps the same plan
		// binding, and the cluster's batch time is the slowest worker's.
		// Worker 0's metrics stay the explorer's signal — with the default
		// noise-free device the replicas are identical, so its e2e IS the
		// cluster step; under per-worker noise it is the unbiased proxy.
		res.WorkerUs = append(res.WorkerUs, res.TotalUs)
		for _, p := range s.Peers {
			pr := p.RunBatch(nil, nil)
			res.WorkerUs = append(res.WorkerUs, pr.TotalUs)
			if pr.TotalUs > res.TotalUs {
				res.TotalUs = pr.TotalUs
			}
		}
	}
	var bindings map[string]string
	var froze []string
	drift := false
	if exploring {
		var prevFrozen []string
		if s.Obs != nil {
			// Capture the tried configuration before Advance moves on, and
			// the frozen set before this batch's measurements land.
			bindings = s.explorerBindings()
			prevFrozen = s.Exp.FrozenVarIDs()
		}
		s.Exp.Observe(res.Metrics)
		s.Exp.Advance()
		s.Trials++
		s.ExploreUs += res.TotalUs
		// Any wired expectation is stale once exploration runs again.
		s.driftExpectUs = 0
		if s.Obs != nil {
			froze = newlyFrozen(prevFrozen, s.Exp.FrozenVarIDs())
		}
	}
	s.Batches++
	if !exploring {
		s.wiredBatches++
		drift = s.observeWired(res.TotalUs)
	}
	s.ProfOverheadUs += res.ProfilingOverheadUs()
	if s.Obs != nil {
		s.recordBatchTelemetry(&res, bindings, froze, exploring, detail, drift)
	}
	s.ClockUs += res.TotalUs
	return res
}

// modelScale classifies how a model was sized relative to the zoo's
// canonical configurations: "default" (§6.1 evaluation scale), "tiny" (the
// test scale), or "custom" for hand-built configs an event log cannot
// reconstruct. The comparison masks the RNG seed — it sizes nothing.
func modelScale(m *models.Model) string {
	if _, ok := models.Get(m.Name); !ok {
		return "custom" // hand-built cell, no canonical config to compare to
	}
	masked := m.Cfg
	masked.Seed = 0
	def := models.DefaultConfig(m.Name, m.Cfg.Batch)
	def.Seed = 0
	if masked == def {
		return "default"
	}
	tiny := models.TinyConfig(m.Name, m.Cfg.Batch)
	tiny.Seed = 0
	if masked == tiny {
		return "tiny"
	}
	return "custom"
}

// newlyFrozen returns the IDs in cur but not prev; both inputs are sorted
// (adapt.Explorer.FrozenVarIDs), so one merge pass suffices and the result
// stays sorted.
func newlyFrozen(prev, cur []string) []string {
	var out []string
	i := 0
	for _, id := range cur {
		for i < len(prev) && prev[i] < id {
			i++
		}
		if i < len(prev) && prev[i] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Explore runs mini-batches until the exploration converges, returning the
// number of configurations tried. A plan with no adaptive variables
// returns 0.
func (s *Session) Explore() int {
	if s.Exp == nil {
		return 0
	}
	for !s.Exp.Done() {
		s.Step()
	}
	return s.Exp.Trials()
}

// Done reports whether exploration has converged.
func (s *Session) Done() bool { return s.Exp == nil || s.Exp.Done() }

// Err reports a failed exploration (stuck explorer) or a failed
// verification. A non-nil error means the session is not trustworthy: a
// *verify.Error (unwrap with errors.As) marks a semantically unsafe plan or
// configuration — the analyses found a race, an aliasing overlap, an
// illegal fusion or a broken exchange — while an explorer error means the
// configuration search cannot make progress. Both are sticky.
func (s *Session) Err() error {
	if s.verifyErr != nil {
		return s.verifyErr
	}
	if s.Exp == nil {
		return nil
	}
	return s.Exp.Err()
}

// WiredTimeUs runs one post-exploration batch and returns its time.
func (s *Session) WiredTimeUs() float64 { return s.Step().TotalUs }
