package wire

import (
	"astra/internal/adapt"
	"astra/internal/autodiff"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/graph"
	"astra/internal/models"
	"astra/internal/profile"
)

// Session ties the whole pipeline together for one training job: the
// enumerated plan, the simulated device, the profile index and the
// explorer. Exploration is work-conserving (§4.2): every exploration
// mini-batch performs the full, value-preserving training computation; only
// its schedule varies.
type Session struct {
	Model  *models.Model
	Plan   *enumerate.Plan
	Runner *Runner
	Ix     *profile.Index
	Exp    *adapt.Explorer // nil when the plan has no adaptive variables

	// EvalValues runs the CPU value oracle each batch (slow; tests and
	// examples only — timing never depends on it).
	EvalValues bool
	// LearningRate > 0 applies SGD updates after each batch when
	// EvalValues is set, making the session a real training loop.
	LearningRate float64
	// Params holds the live parameter tensors when training with values.
	Params graph.Env

	batchSeed uint64
	// Trials counts exploration mini-batches (the Table 7 metric).
	Trials int
	// ExploreUs accumulates simulated time spent while exploring.
	ExploreUs float64
}

// SessionConfig configures NewSession.
type SessionConfig struct {
	Device       gpusim.Config
	Options      enumerate.Options
	Runner       RunnerConfig
	EvalValues   bool
	LearningRate float64
	// Index warm-starts the session with a previously saved profile index
	// (profile.Index.Save/Load). The enumerator is deterministic, so a
	// snapshot from an earlier run of the same job makes exploration
	// resume where it left off — or skip straight to the wired schedule.
	Index *profile.Index
}

// NewSession compiles the model and prepares the runtime.
func NewSession(m *models.Model, cfg SessionConfig) *Session {
	plan := enumerate.Enumerate(m.G, cfg.Options)
	dev := gpusim.NewDevice(cfg.Device)
	rcfg := cfg.Runner
	rcfg.Profile = true
	ix := cfg.Index
	if ix == nil {
		ix = profile.NewIndex()
	}
	s := &Session{
		Model:        m,
		Plan:         plan,
		Runner:       NewRunner(plan, dev, rcfg),
		Ix:           ix,
		EvalValues:   cfg.EvalValues,
		LearningRate: cfg.LearningRate,
	}
	if cfg.EvalValues {
		s.Params = m.G.InitialParams()
	}
	if plan.Tree != nil {
		s.Exp = adapt.NewExplorer(plan.Tree, s.Ix)
	}
	return s
}

// Step runs one training mini-batch with the current configuration. While
// exploration is in progress the measurements feed the explorer, which then
// advances to the next configuration; afterwards batches run with the
// wired-in best configuration.
func (s *Session) Step() BatchResult {
	var res BatchResult
	if s.EvalValues {
		in := s.Model.MakeInputs(s.batchSeed)
		s.batchSeed++
		res = s.Runner.RunBatch(in, s.Params)
		if s.LearningRate > 0 {
			autodiff.ApplySGD(s.Model.G, res.Env, s.Params, s.LearningRate)
		}
	} else {
		res = s.Runner.RunBatch(nil, nil)
	}
	if s.Exp != nil && !s.Exp.Done() {
		s.Exp.Observe(res.Metrics)
		s.Exp.Advance()
		s.Trials++
		s.ExploreUs += res.TotalUs
	}
	return res
}

// Explore runs mini-batches until the exploration converges, returning the
// number of configurations tried. A plan with no adaptive variables
// returns 0.
func (s *Session) Explore() int {
	if s.Exp == nil {
		return 0
	}
	for !s.Exp.Done() {
		s.Step()
	}
	return s.Exp.Trials()
}

// Done reports whether exploration has converged.
func (s *Session) Done() bool { return s.Exp == nil || s.Exp.Done() }

// WiredTimeUs runs one post-exploration batch and returns its time.
func (s *Session) WiredTimeUs() float64 { return s.Step().TotalUs }
