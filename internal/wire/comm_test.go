package wire

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
)

func commSession(t *testing.T, workers int, adapt bool, cfgMod func(*SessionConfig)) *Session {
	t.Helper()
	build, ok := models.Get("sublstm")
	if !ok {
		t.Fatal("model sublstm")
	}
	m := build(models.TinyConfig("sublstm", 2))
	opts := enumerate.PresetOptions(enumerate.PresetFK)
	opts.CommAdapt = adapt
	opts.Workers = workers
	cfg := SessionConfig{
		Device:  gpusim.P100(),
		Options: opts,
		Runner:  RunnerConfig{PerOpCPUUs: 2},
		Comm: CommConfig{
			Workers:    workers,
			BytesPerUs: 11000,
			LatencyUs:  8,
			Fabric:     "pcie3",
		},
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	return NewSession(m, cfg)
}

func TestCommDisabledBelowTwoWorkers(t *testing.T) {
	s := commSession(t, 1, true, nil)
	if len(s.Peers) != 0 {
		t.Fatalf("single-worker session grew %d peers", len(s.Peers))
	}
	if s.Plan.CommBucketVar != nil || s.Plan.CommPlaceVar != nil {
		t.Fatal("comm variables enumerated for a single worker")
	}
	res := s.Step()
	if res.CommKernels != 0 || len(res.WorkerUs) != 0 {
		t.Fatalf("single-worker batch exchanged gradients: %+v", res)
	}
}

func TestCommVariablesEnumerated(t *testing.T) {
	s := commSession(t, 4, true, nil)
	if s.Plan.CommBucketVar == nil || s.Plan.CommPlaceVar == nil {
		t.Fatal("comm variables missing with CommAdapt on")
	}
	if len(s.Plan.Grads) == 0 {
		t.Fatal("no gradient sites")
	}
	if s.Plan.GradBytes() <= 0 {
		t.Fatal("no gradient payload")
	}
	// Every parameter with a gradient must have a site, in dispatch order.
	order := map[*enumerate.Unit]int{}
	seq := 0
	for _, se := range s.Plan.Supers {
		for _, ep := range se.Epochs {
			for _, u := range ep.Units {
				order[u] = seq
				seq++
			}
		}
	}
	prev := -1
	for _, g := range s.Plan.Grads {
		if order[g.Unit] < prev {
			t.Fatal("gradient sites out of dispatch order")
		}
		prev = order[g.Unit]
		if g.Bytes <= 0 {
			t.Fatalf("gradient %v has no payload", g.Param)
		}
	}
}

func TestBucketPartitionRespectsCap(t *testing.T) {
	s := commSession(t, 4, false, func(cfg *SessionConfig) {
		cfg.Comm.DefaultBucketKB = 1 // 1 KB cap: tiny model grads overflow it
	})
	cs := s.Runner.prepareComm()
	if cs == nil {
		t.Fatal("no comm state")
	}
	if len(cs.buckets) < 2 {
		t.Fatalf("1 KB cap produced %d bucket(s)", len(cs.buckets))
	}
	var total int64
	grads := 0
	for i, b := range cs.buckets {
		total += b.bytes
		grads += b.grads
		// Every bucket but the last must have hit the cap.
		if i < len(cs.buckets)-1 && b.bytes < 1024 {
			t.Fatalf("bucket %d closed below cap: %d bytes", i, b.bytes)
		}
	}
	if total != s.Plan.GradBytes() {
		t.Fatalf("buckets hold %d bytes, gradients total %d", total, s.Plan.GradBytes())
	}
	if grads != len(s.Plan.Grads) {
		t.Fatalf("buckets hold %d gradients, plan has %d", grads, len(s.Plan.Grads))
	}

	// Cap 0: one bucket with everything.
	one := commSession(t, 4, false, nil)
	cs = one.Runner.prepareComm()
	if len(cs.buckets) != 1 || cs.buckets[0].bytes != one.Plan.GradBytes() {
		t.Fatalf("uncapped partition: %+v", cs.buckets)
	}
}

func TestCommPlacementStreams(t *testing.T) {
	overlap := commSession(t, 4, false, nil)
	cs := overlap.Runner.prepareComm()
	if cs.stream != overlap.Runner.CommStream() || cs.stream == 0 {
		t.Fatalf("default placement should use the dedicated comm stream, got %d", cs.stream)
	}
	bulk := commSession(t, 4, false, func(cfg *SessionConfig) {
		cfg.Comm.DefaultPlacement = "main"
	})
	if cs = bulk.Runner.prepareComm(); cs.stream != 0 {
		t.Fatalf("main placement should use stream 0, got %d", cs.stream)
	}
}

func TestMultiWorkerStepAggregates(t *testing.T) {
	s := commSession(t, 4, true, nil)
	s.Explore()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	res := s.Step()
	if len(res.WorkerUs) != 4 {
		t.Fatalf("WorkerUs = %v", res.WorkerUs)
	}
	max := 0.0
	for _, w := range res.WorkerUs {
		if w > max {
			max = w
		}
	}
	if res.TotalUs != max {
		t.Fatalf("cluster step %v != slowest worker %v", res.TotalUs, max)
	}
	if res.CommKernels == 0 || res.CommUs <= 0 {
		t.Fatalf("wired batch exchanged nothing: %+v", res)
	}
}

// workerRecordDump serializes one worker's device records for byte-level
// comparison across runs.
func workerRecordDump(b *bytes.Buffer, rank int, recs []*gpusim.KernelRecord) {
	for _, r := range recs {
		fmt.Fprintf(b, "w%d %s s%d launch=%.6f start=%.6f end=%.6f tiles=%d\n",
			rank, r.Name, r.Stream, r.LaunchUs, r.StartUs, r.EndUs, r.Tiles)
	}
}

// TestMultiGPUSameSeedByteIdentical is the multi-worker determinism
// regression: two identical sessions (same seed, autoboost jitter on, comm
// exploration on) must produce byte-identical session event logs AND
// byte-identical per-worker kernel timelines for the final wired batch.
func TestMultiGPUSameSeedByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte) {
		s := commSession(t, 3, true, func(cfg *SessionConfig) {
			cfg.Device.Autoboost = true
		})
		tel := obs.NewTelemetry()
		var events bytes.Buffer
		tel.SetEventSink(&events)
		s.Instrument(tel)
		s.Explore()
		for i := 0; i < 2; i++ {
			s.Step()
		}
		var recs bytes.Buffer
		workerRecordDump(&recs, 0, s.Runner.Dev.Records())
		for i, p := range s.Peers {
			workerRecordDump(&recs, i+1, p.Dev.Records())
		}
		return events.Bytes(), recs.Bytes()
	}
	ev1, rec1 := run()
	ev2, rec2 := run()
	if len(ev1) == 0 || len(rec1) == 0 {
		t.Fatal("empty run")
	}
	if !bytes.Equal(ev1, ev2) {
		t.Fatal("same-seed multi-GPU sessions produced different event logs")
	}
	if !bytes.Equal(rec1, rec2) {
		t.Fatal("same-seed multi-GPU sessions produced different per-worker kernel timelines")
	}
}

// TestPeerSeedsDiffer: the peers' devices must not share the base RNG
// stream, or per-worker noise would be perfectly correlated and the
// max-over-workers aggregation meaningless.
func TestPeerSeedsDiffer(t *testing.T) {
	s := commSession(t, 3, false, func(cfg *SessionConfig) {
		cfg.Device.Autoboost = true // jitter makes seed differences visible
	})
	res := s.Step()
	if len(res.WorkerUs) != 3 {
		t.Fatalf("WorkerUs = %v", res.WorkerUs)
	}
	if res.WorkerUs[0] == res.WorkerUs[1] && res.WorkerUs[1] == res.WorkerUs[2] {
		t.Fatal("all workers identical under jitter: peer seeds not derived")
	}
}

// TestMultiWorkerTelemetry: an instrumented multi-GPU session must put each
// worker's device in its own trace pid block, name the comm-stream lanes,
// register the distsim.* metrics, and stamp the per-worker fields onto
// every event-log record.
func TestMultiWorkerTelemetry(t *testing.T) {
	s := commSession(t, 3, true, nil)
	tel := obs.NewTelemetry()
	var events bytes.Buffer
	tel.SetEventSink(&events)
	s.Instrument(tel)
	s.Explore()
	s.Step()
	s.CloseTelemetry()

	// Per-worker pid blocks: rank 1's device pid must appear among spans.
	peerPID := obs.WorkerPID(obs.PIDDevice, 1)
	found := false
	for _, ev := range tel.Trace.Events() {
		if ev.PID == peerPID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no spans on peer device pid %d", peerPID)
	}

	var prom bytes.Buffer
	if err := tel.Metrics.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distsim_workers", "distsim_comm_us", "distsim_comm_kernels"} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, prom.String())
		}
	}

	recs, err := obs.ReadTrialEvents(bytes.NewReader(events.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no event records")
	}
	for _, r := range recs {
		if r.Workers != 3 || len(r.WorkerUs) != 3 {
			t.Fatalf("record missing worker fields: %+v", r)
		}
		if r.CommUs <= 0 {
			t.Fatalf("record missing comm time: %+v", r)
		}
	}
}
