package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
)

func instrumentedSession(t *testing.T, name string) (*Session, *obs.Telemetry, *bytes.Buffer) {
	t.Helper()
	s := tinySession(t, name, enumerate.PresetAll, false)
	tel := obs.NewTelemetry()
	var events bytes.Buffer
	tel.SetEventSink(&events)
	s.Instrument(tel)
	return s, tel, &events
}

func TestSameSeedSessionsByteIdenticalTimelines(t *testing.T) {
	// Regression: superEpochBarrier used to iterate the used-stream map in
	// Go's randomized order while every RecordEvent/WaitEvent advances the
	// simulated CPU clock, so two identical runs could produce different
	// event timelines. Two same-seed sessions must now emit byte-identical
	// event logs — autoboost jitter, multi-stream barriers and all.
	run := func() []byte {
		build, ok := models.Get("sublstm")
		if !ok {
			t.Fatal("model sublstm")
		}
		m := build(models.TinyConfig("sublstm", 2))
		dev := gpusim.P100()
		dev.Autoboost = true
		s := NewSession(m, SessionConfig{
			Device:  dev,
			Options: enumerate.PresetOptions(enumerate.PresetAll),
			Runner:  RunnerConfig{PerOpCPUUs: 2},
		})
		tel := obs.NewTelemetry()
		var events bytes.Buffer
		tel.SetEventSink(&events)
		s.Instrument(tel)
		s.Explore()
		for i := 0; i < 3; i++ {
			s.Step()
		}
		return events.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed sessions produced different event timelines")
	}
}

func TestEventLogMatchesExplorerTrials(t *testing.T) {
	// Round trip: every exploration trial must produce exactly one JSONL
	// record, and its bindings must be the configuration the explorer had
	// staged (on the variables it was measuring) before the batch ran.
	s, _, events := instrumentedSession(t, "sublstm")
	var wantBindings []map[string]string
	for !s.Done() {
		staged := map[string]string{}
		for _, v := range s.Exp.Vars() {
			if v.Recording() {
				staged[v.ID] = v.CurrentLabel()
			}
		}
		wantBindings = append(wantBindings, staged)
		s.Step()
	}
	s.Step() // one wired batch, to check phase separation

	got, err := obs.ReadTrialEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	var explore, wired []obs.TrialEvent
	for _, ev := range got {
		switch ev.Phase {
		case "explore":
			explore = append(explore, ev)
		case "wired":
			wired = append(wired, ev)
		default:
			t.Fatalf("unknown phase %q", ev.Phase)
		}
	}
	if len(explore) != s.Trials || len(explore) != len(wantBindings) {
		t.Fatalf("explore records = %d, trials = %d, staged = %d",
			len(explore), s.Trials, len(wantBindings))
	}
	if len(wired) != 1 {
		t.Fatalf("wired records = %d", len(wired))
	}
	for i, ev := range explore {
		if ev.Trial != i+1 {
			t.Fatalf("record %d has trial %d", i, ev.Trial)
		}
		if len(ev.Bindings) != len(wantBindings[i]) {
			t.Fatalf("trial %d: %d bindings, want %d", ev.Trial, len(ev.Bindings), len(wantBindings[i]))
		}
		for id, label := range wantBindings[i] {
			if ev.Bindings[id] != label {
				t.Fatalf("trial %d: binding %s = %q, explorer staged %q",
					ev.Trial, id, ev.Bindings[id], label)
			}
		}
		if ev.BatchUs <= 0 || ev.Kernels <= 0 {
			t.Fatalf("trial %d: empty batch stats %+v", ev.Trial, ev)
		}
	}
	// The timeline must be contiguous on the session clock.
	clock := 0.0
	for _, ev := range got {
		if ev.StartUs != clock {
			t.Fatalf("batch %d starts at %v, clock at %v", ev.Batch, ev.StartUs, clock)
		}
		clock += ev.BatchUs
	}
	if clock != s.ClockUs {
		t.Fatalf("event clock %v != session clock %v", clock, s.ClockUs)
	}
}

func TestSessionTraceHasNamedTracks(t *testing.T) {
	s, tel, _ := instrumentedSession(t, "scrnn")
	s.Explore()
	s.Step()
	s.CloseTelemetry()
	var buf bytes.Buffer
	if err := tel.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace obs.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	counterTracks := map[string]bool{}
	sessionSpan, kernelSpans, dispatchSpans := false, 0, 0
	for _, e := range trace.TraceEvents {
		switch {
		case e.Phase == "M" && e.Name == "process_name":
			procs[e.Args["name"].(string)] = true
		case e.Phase == "C":
			counterTracks[e.Name] = true
		case e.Phase == "X" && e.Category == "session":
			sessionSpan = true
		case e.Phase == "X" && e.Category == "kernel":
			kernelSpans++
		case e.Phase == "X" && e.Category == "dispatch":
			dispatchSpans++
		}
	}
	// The acceptance bar: >= 3 named track groups — device streams, CPU
	// dispatch and the exploration counters (plus the launch queue).
	for _, want := range []string{"device", "launch queue", "cpu dispatch", "exploration"} {
		if !procs[want] {
			t.Fatalf("trace missing process %q (have %v)", want, procs)
		}
	}
	for _, want := range []string{"explore.trials", "explore.frozen_vars", "batch.total_us", "profile.hit_rate"} {
		if !counterTracks[want] {
			t.Fatalf("trace missing counter track %q (have %v)", want, counterTracks)
		}
	}
	if !sessionSpan {
		t.Fatal("no session root span")
	}
	if kernelSpans == 0 || dispatchSpans == 0 {
		t.Fatalf("kernel spans = %d, dispatch spans = %d", kernelSpans, dispatchSpans)
	}
}

func TestSessionMetricsRegistry(t *testing.T) {
	s, tel, _ := instrumentedSession(t, "sublstm")
	s.Explore()
	s.Step()
	reg := tel.Metrics
	if got := reg.Counter("explore.trials", "").Value(); got != float64(s.Trials) {
		t.Fatalf("explore.trials = %v, session trials = %d", got, s.Trials)
	}
	frozen, total := s.Exp.FrozenCount()
	if frozen != total {
		t.Fatalf("converged session has %d/%d frozen", frozen, total)
	}
	if got := reg.Gauge("explore.frozen_vars", "").Value(); got != float64(frozen) {
		t.Fatalf("explore.frozen_vars = %v, want %d", got, frozen)
	}
	simUs := reg.Counter("session.sim_time_us", "").Value()
	if simUs != s.ClockUs {
		t.Fatalf("session.sim_time_us = %v, clock = %v", simUs, s.ClockUs)
	}
	overhead := reg.Counter("wirer.profiling_overhead_us", "").Value()
	if overhead != s.ProfOverheadUs {
		t.Fatalf("wirer.profiling_overhead_us = %v, session total = %v", overhead, s.ProfOverheadUs)
	}
	// §6.4: the always-on profiling must stay under 0.5% of simulated time
	// across the whole session, not just one batch.
	if frac := overhead / simUs; frac >= 0.005 {
		t.Fatalf("session profiling overhead %.3f%% >= 0.5%%", frac*100)
	}
	if h := reg.Histogram("batch.total_us", ""); int(h.Count()) != s.Batches {
		t.Fatalf("batch.total_us count = %d, batches = %d", h.Count(), s.Batches)
	}
	// Prometheus exposition renders without error and includes the session
	// metrics.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"explore_trials", "profile_hit_rate", "batch_total_us_bucket", "wirer_profiling_overhead_us"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}

func TestConvergenceTimelineCoversAllVars(t *testing.T) {
	s, _, _ := instrumentedSession(t, "stackedlstm")
	s.Explore()
	points := s.Exp.ConvergenceTimeline()
	if len(points) != len(s.Exp.Vars()) {
		t.Fatalf("timeline has %d points for %d vars", len(points), len(s.Exp.Vars()))
	}
	last := 0
	for _, p := range points {
		if p.Trial < last {
			t.Fatal("timeline not sorted by trial")
		}
		last = p.Trial
		if p.Trial > s.Trials {
			t.Fatalf("%s froze at trial %d > total %d", p.VarID, p.Trial, s.Trials)
		}
	}
	if last != s.Trials {
		t.Fatalf("last variable froze at trial %d, exploration took %d", last, s.Trials)
	}
}

func TestTraceDetailCap(t *testing.T) {
	// Kernel-level spans are bounded by TraceDetailBatches so paper-scale
	// sessions stay Perfetto-loadable; trial spans keep covering every
	// batch regardless.
	s, tel, _ := instrumentedSession(t, "sublstm")
	s.TraceDetailBatches = 2
	cutoff := 0.0
	for i := 0; i < 2; i++ {
		cutoff += s.Step().TotalUs // detail batches
	}
	for i := 0; i < 3 && !s.Done(); i++ {
		s.Step() // past the cap: no kernel spans
	}
	kernels, trialSpans := 0, 0
	for _, e := range tel.Trace.Events() {
		switch e.Category {
		case "kernel":
			kernels++
			if e.TimeUs >= cutoff {
				t.Fatalf("kernel span at %v past detail cutoff %v", e.TimeUs, cutoff)
			}
		case "explore":
			trialSpans++
		}
	}
	if kernels == 0 {
		t.Fatal("no kernel spans from the detail batches")
	}
	if trialSpans != s.Batches {
		t.Fatalf("trial spans = %d, batches = %d", trialSpans, s.Batches)
	}
}

func TestUninstrumentedSessionUnchanged(t *testing.T) {
	// Telemetry off: identical simulated times (the instrumentation reads
	// clocks, it never advances them).
	plain := tinySession(t, "sublstm", enumerate.PresetAll, false)
	plain.Explore()
	plainWired := plain.Step().TotalUs

	inst, _, _ := instrumentedSession(t, "sublstm")
	inst.Explore()
	instWired := inst.Step().TotalUs
	if plainWired != instWired {
		t.Fatalf("telemetry changed simulated time: %v != %v", instWired, plainWired)
	}
	if plain.Trials != inst.Trials {
		t.Fatalf("telemetry changed trial count: %d != %d", inst.Trials, plain.Trials)
	}
}
