package wire

import (
	"fmt"
	"strconv"
	"strings"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
)

// CommConfig configures event-level gradient exchange for one data-parallel
// worker. The ring all-reduce of a gradient bucket is issued as 2·(n−1)
// communication kernels on a per-worker comm stream, gated by an event the
// producing compute stream records when the bucket's last gradient is done
// — so exchange overlaps the remaining backward pass instead of
// serializing behind it, and the simulator (not a formula) decides what the
// overlap is worth.
type CommConfig struct {
	// Workers is the data-parallel degree; values below 2 disable comm.
	Workers int
	// Rank identifies this worker (0-based); it only labels spans — the
	// ring is symmetric, so every rank issues the same step sequence.
	Rank int
	// BytesPerUs and LatencyUs describe one fabric link, matching
	// distsim.Interconnect.
	BytesPerUs float64
	LatencyUs  float64
	// Fabric names the interconnect for spans and reports.
	Fabric string
	// DefaultBucketKB is the gradient-bucket byte cap (in KB) used when the
	// plan has no comm.bucket_kb variable; 0 means a single bucket holding
	// every gradient.
	DefaultBucketKB int
	// DefaultPlacement is the comm-stream placement used when the plan has
	// no comm.place variable: "comm" (dedicated stream, overlapped) or
	// "main" (stream 0, serialized behind compute). Empty means "comm".
	DefaultPlacement string
}

// Enabled reports whether the configuration describes a real exchange.
func (c CommConfig) Enabled() bool { return c.Workers >= 2 && c.BytesPerUs > 0 }

// commKernelPrefix tags communication kernels in the device records so
// per-batch comm statistics and trace lanes can be attributed.
const commKernelPrefix = "allreduce."

// commBucket is one gradient bucket of the current batch: its payload, the
// unit whose dispatch completes its last gradient, and every distinct unit
// producing one of its gradients (the readiness events must cover all of
// them — units in the same epoch can sit on different streams).
type commBucket struct {
	bytes    int64
	grads    int
	lastUnit *enumerate.Unit
	units    []*enumerate.Unit
}

// commState is the per-batch bucketing plan.
type commState struct {
	buckets []commBucket
	// atUnit maps a schedule unit to the bucket indices it completes;
	// buckets are launched in index order as their units dispatch.
	atUnit map[*enumerate.Unit][]int
	// stream is the stream comm kernels are issued on this batch.
	stream int
}

// bucketCapBytes resolves the active bucket byte cap: the comm.bucket_kb
// variable when the plan explores it, the configured default otherwise.
// 0 means unbounded (a single bucket).
func (r *Runner) bucketCapBytes() int64 {
	if v := r.Plan.CommBucketVar; v != nil {
		label := v.CurrentLabel()
		if label == "all" {
			return 0
		}
		kb, err := strconv.ParseInt(label, 10, 64)
		if err != nil || kb <= 0 {
			panic(fmt.Sprintf("wire: bad bucket label %q", label))
		}
		return kb * 1024
	}
	return int64(r.Cfg.Comm.DefaultBucketKB) * 1024
}

// commPlacement resolves the active placement label.
func (r *Runner) commPlacement() string {
	if v := r.Plan.CommPlaceVar; v != nil {
		return v.CurrentLabel()
	}
	if r.Cfg.Comm.DefaultPlacement != "" {
		return r.Cfg.Comm.DefaultPlacement
	}
	return "comm"
}

// CommStream returns the stream index dedicated to communication kernels
// (meaningful only when comm is enabled).
func (r *Runner) CommStream() int { return r.commStream }

// prepareComm computes the batch's bucketing plan from the current variable
// bindings: gradients pack into buckets in dispatch order, and a bucket
// closes once its payload reaches the cap.
func (r *Runner) prepareComm() *commState {
	if !r.Cfg.Comm.Enabled() || len(r.Plan.Grads) == 0 {
		return nil
	}
	cap := r.bucketCapBytes()
	cs := &commState{atUnit: map[*enumerate.Unit][]int{}, stream: 0}
	if r.commPlacement() == "comm" {
		cs.stream = r.commStream
	}
	var cur commBucket
	flush := func() {
		if cur.grads == 0 {
			return
		}
		cs.atUnit[cur.lastUnit] = append(cs.atUnit[cur.lastUnit], len(cs.buckets))
		cs.buckets = append(cs.buckets, cur)
		cur = commBucket{}
	}
	for _, g := range r.Plan.Grads {
		cur.bytes += g.Bytes
		cur.grads++
		cur.lastUnit = g.Unit
		if len(cur.units) == 0 || cur.units[len(cur.units)-1] != g.Unit {
			cur.units = append(cur.units, g.Unit)
		}
		if cap > 0 && cur.bytes >= cap {
			flush()
		}
	}
	flush()
	return cs
}

// launchBucketAllReduce issues one bucket's ring all-reduce: a readiness
// event on every stream that produced one of the bucket's gradients,
// cross-stream waits, then 2·(n−1) step kernels. Each step moves bytes/n
// over one link (§: classic two-phase ring), so its kernel runs for the
// serialization time plus the per-hop latency. With identical deterministic
// replicas, every worker reaches the readiness events at the same simulated
// time, so gating on the local events is exactly the global ring
// dependency; under per-worker noise it is the optimistic bound, and the
// cluster step still aggregates as the max over workers.
//
// Covering every producing stream matters: a bucket can span units of the
// same epoch assigned to different streams, and the dispatch-order trigger
// (the last unit) says nothing about the other streams' progress. The plan
// verifier's comm.order analysis checks exactly this edge.
func (r *Runner) launchBucketAllReduce(st *dispatchState, cs *commState, bucket int, producedOn int) {
	b := cs.buckets[bucket]
	readyOn := map[int]bool{}
	for _, u := range b.units {
		s, ok := st.unitStream[u]
		if !ok {
			s = producedOn
		}
		if readyOn[s] {
			continue
		}
		readyOn[s] = true
		ready := r.recordEvent(st, s)
		if cs.stream != s {
			r.Dev.WaitEventTag(cs.stream, ready, "bucket")
			st.events++
		}
	}
	n := r.Cfg.Comm.Workers
	steps := 2 * (n - 1)
	perStepUs := float64(b.bytes)/float64(n)/r.Cfg.Comm.BytesPerUs + r.Cfg.Comm.LatencyUs
	for k := 0; k < steps; k++ {
		r.launch(st, cs.stream, gpusim.KernelSpec{
			Name:       fmt.Sprintf("%sb%d.s%d", commKernelPrefix, bucket, k),
			Tiles:      1,
			TileTimeUs: perStepUs,
			SetupUs:    0.5,
		})
	}
}

// maybeLaunchComm fires the all-reduce of every bucket the just-dispatched
// unit completes.
func (r *Runner) maybeLaunchComm(st *dispatchState, cs *commState, u *enumerate.Unit, stream int) {
	if cs == nil {
		return
	}
	for _, b := range cs.atUnit[u] {
		r.launchBucketAllReduce(st, cs, b, stream)
	}
}

// commStats scans the device records for communication kernels and fills
// the batch result's comm accounting: total link-busy time, the span from
// first to last comm kernel, and the kernel count.
func commStats(recs []*gpusim.KernelRecord, res *BatchResult) {
	first, last := 0.0, 0.0
	seen := false
	for _, rec := range recs {
		if !strings.HasPrefix(rec.Name, commKernelPrefix) {
			continue
		}
		res.CommKernels++
		res.CommUs += rec.DurationUs()
		if !seen || rec.StartUs < first {
			first = rec.StartUs
		}
		if rec.EndUs > last {
			last = rec.EndUs
		}
		seen = true
	}
	if seen {
		res.CommSpanUs = last - first
	}
}
