// Package wire implements Astra's runtime half: the custom-wirer (§4.7).
// It takes the enumerator's templated schedule and, for the current binding
// of every adaptive variable, dispatches one mini-batch onto the simulated
// GPU — fused GEMM chunks, gather copies for non-contiguous operands,
// multi-stream assignment with event synchronization, super-epoch barriers
// — while wrapping every region of interest in cudaEvent pairs for
// fine-grained profiling (§5.2). After the batch it extracts one metric per
// adaptive variable and hands them to the explorer.
package wire

import (
	"fmt"
	"math"
	"strconv"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/graph"
	"astra/internal/kernels"
	"astra/internal/obs"
)

// RunnerConfig tunes the dispatcher.
type RunnerConfig struct {
	// PerOpCPUUs is the dispatcher's own CPU cost per kernel launch on top
	// of the driver launch overhead. Astra interposes below the framework
	// (§5.1), so this is small compared to an eager framework's per-op
	// cost.
	PerOpCPUUs float64
	// MaxFusion pins every fusion group at its maximal chunk when the
	// plan has no chunk variables — the static-fusion policy used to model
	// XLA (package baselines).
	MaxFusion bool
	// EmbeddingHostTransfer forces a host round-trip per embedding lookup
	// (XLA's embedding pathology, §6.6).
	EmbeddingHostTransfer bool
	// Profile enables the cudaEvent instrumentation. Astra keeps it
	// always on (overhead <0.5%, §6.4); baselines run without it.
	Profile bool
	// Comm configures event-level data-parallel gradient exchange; the
	// zero value disables it (single-worker sessions).
	Comm CommConfig
}

// BatchResult reports one dispatched mini-batch.
type BatchResult struct {
	// Metrics maps adaptive-variable IDs to their profiled values (µs).
	Metrics map[string]float64
	// TotalUs is the wall-clock time of the mini-batch (CPU timeline,
	// which includes waiting for the device at the end).
	TotalUs float64
	// Kernels is the number of kernels launched.
	Kernels int
	// Events is the number of cudaEvents recorded or waited on,
	// including cross-stream synchronization (each costs 0.2 µs of CPU).
	Events int
	// ProfEvents counts the events recorded purely for profiling.
	ProfEvents int
	// CommKernels counts ring all-reduce step kernels issued, and CommUs
	// sums their device time (link-busy time). CommSpanUs is the interval
	// from the first comm kernel's start to the last one's end — with a
	// single bucket on the main stream this is the serialized exchange
	// time the analytic RingAllReduceUs formula models.
	CommKernels int
	CommUs      float64
	CommSpanUs  float64
	// WorkerUs lists every worker's batch time when the session steps a
	// multi-worker cluster; TotalUs is then their max.
	WorkerUs []float64
	// Env holds the computed values when value evaluation was requested.
	Env graph.Env
}

// ProfilingOverheadUs returns the CPU time spent on profiling-only event
// bookkeeping (0.2 µs per event, matching gpusim's accounting). Events that
// exist to synchronize streams are schedule cost, not profiling cost.
func (r *BatchResult) ProfilingOverheadUs() float64 { return 0.2 * float64(r.ProfEvents) }

// Runner dispatches mini-batches for a plan.
type Runner struct {
	Plan *enumerate.Plan
	Dev  *gpusim.Device
	Cfg  RunnerConfig

	// obs, when attached, receives per-unit dispatch spans on the CPU
	// timeline and the per-batch wirer span; traceOffsetUs places each
	// batch's device-relative clock onto the session-wide clock.
	// traceDetail gates the per-unit spans (the session bounds how many
	// batches get kernel-level detail so long traces stay loadable).
	obs           *obs.Telemetry
	traceOffsetUs float64
	traceDetail   bool

	// commStream is the dedicated communication stream (the first stream
	// index beyond the compute streams) when comm is enabled.
	commStream int

	// st is the reusable per-batch dispatch state: RunBatch clears and
	// reuses its maps and scratch slices instead of reallocating them every
	// mini-batch, which removed the dominant map churn from the inner loop.
	st dispatchState
}

// Instrument attaches a telemetry bundle; subsequent batches emit dispatch
// spans onto its tracer.
func (r *Runner) Instrument(tel *obs.Telemetry) {
	r.obs = tel
	tel.Trace.SetProcessName(obs.PIDDispatch, "cpu dispatch")
	tel.Trace.SetThreadName(obs.PIDDispatch, obs.TIDBatches, "session / trials")
	tel.Trace.SetThreadName(obs.PIDDispatch, obs.TIDWirer, "wirer dispatch")
}

// SetTraceOffset sets the session-clock offset applied to the next batch's
// spans (the session's clock at the batch's start) and whether the batch
// gets per-unit dispatch detail.
func (r *Runner) SetTraceOffset(us float64, detail bool) {
	r.traceOffsetUs = us
	r.traceDetail = detail
}

// NewRunner builds a runner and sizes the device's stream set. With comm
// enabled, one extra stream beyond the compute streams is reserved for
// communication kernels.
func NewRunner(plan *enumerate.Plan, dev *gpusim.Device, cfg RunnerConfig) *Runner {
	if plan.Opts.StreamAdapt {
		dev.EnsureStreams(plan.Opts.NumStreams)
	}
	r := &Runner{Plan: plan, Dev: dev, Cfg: cfg}
	if cfg.Comm.Enabled() {
		compute := 1
		if plan.Opts.StreamAdapt {
			compute = plan.Opts.NumStreams
		}
		r.commStream = compute
		dev.EnsureStreams(compute + 1)
	}
	return r
}

// dispatchState carries the per-batch bookkeeping.
type dispatchState struct {
	env        graph.Env
	evalValues bool
	kernels    int
	events     int // all events+waits (sync bookkeeping included)
	profEvents int // events recorded purely for profiling
	// region events for metric extraction
	groupSpan map[*enumerate.Unit][2]*gpusim.Event
	unitSpan  map[*enumerate.Unit][2]*gpusim.Event
	epochEnds map[*enumerate.Epoch][]*gpusim.Event
	seStart   map[*enumerate.SuperEpoch]*gpusim.Event
	span      [2]*gpusim.Event
	// cross-stream synchronization
	prevEpochEvents []*gpusim.Event
	prevEpochStream []int
	// usedStreams[s] reports stream s has carried work this batch; indexed
	// by stream ID so iteration is naturally ordered (no map-order sort).
	usedStreams []bool
	// unitStream records each dispatched unit's stream, so comm readiness
	// events can cover every stream a bucket's gradients were produced on.
	unitStream map[*enumerate.Unit]int
	// per-epoch scratch, reused across epochs and batches
	assign      map[*enumerate.Unit]int
	waited      []bool
	streamsUsed []bool
	// barrierEvents holds the latest super-epoch barrier's record events:
	// a stream entering the schedule for the first time after a barrier
	// must wait on them, since the barrier's all-pairs synchronization only
	// covered the streams used so far.
	barrierEvents []*gpusim.Event
	barrierStream []int
	// comm is the batch's gradient-bucketing plan (nil when comm is off).
	// The comm stream deliberately stays out of usedStreams: super-epoch
	// barriers exist to isolate schedule exploration, and syncing the
	// exchange at every barrier would serialize it behind compute again.
	comm *commState
}

// resetState clears the runner's reusable dispatch state for a new batch.
// Maps are cleared in place and scratch slices re-sliced to zero length so
// their capacity carries over from batch to batch.
func (r *Runner) resetState() *dispatchState {
	st := &r.st
	st.env = nil
	st.evalValues = false
	st.kernels, st.events, st.profEvents = 0, 0, 0
	if st.groupSpan == nil {
		st.groupSpan = map[*enumerate.Unit][2]*gpusim.Event{}
		st.unitSpan = map[*enumerate.Unit][2]*gpusim.Event{}
		st.epochEnds = map[*enumerate.Epoch][]*gpusim.Event{}
		st.seStart = map[*enumerate.SuperEpoch]*gpusim.Event{}
		st.unitStream = map[*enumerate.Unit]int{}
		st.assign = map[*enumerate.Unit]int{}
	} else {
		clear(st.groupSpan)
		clear(st.unitSpan)
		clear(st.epochEnds)
		clear(st.seStart)
		clear(st.unitStream)
		clear(st.assign)
	}
	n := r.Dev.NumStreams()
	if cap(st.usedStreams) < n {
		st.usedStreams = make([]bool, n)
		st.waited = make([]bool, n)
		st.streamsUsed = make([]bool, n)
	} else {
		st.usedStreams = st.usedStreams[:n]
		st.waited = st.waited[:n]
		st.streamsUsed = st.streamsUsed[:n]
		for i := range st.usedStreams {
			st.usedStreams[i] = false
		}
	}
	st.usedStreams[0] = true
	st.span = [2]*gpusim.Event{}
	st.prevEpochEvents = st.prevEpochEvents[:0]
	st.prevEpochStream = st.prevEpochStream[:0]
	st.barrierEvents = st.barrierEvents[:0]
	st.barrierStream = st.barrierStream[:0]
	st.comm = nil
	return st
}

// RunBatch dispatches one mini-batch with the plan's current variable
// bindings. When inputs is non-nil the values are computed through the CPU
// oracle in dispatch order (catching any dependency-violating schedule);
// otherwise only timing is simulated.
func (r *Runner) RunBatch(inputs graph.Env, params graph.Env) BatchResult {
	dev := r.Dev
	dev.Reset()
	st := r.resetState()
	st.evalValues = inputs != nil
	st.comm = r.prepareComm()
	if st.evalValues {
		st.env = make(graph.Env, len(r.Plan.G.Values))
		for _, v := range r.Plan.G.Inputs {
			t, ok := inputs[v]
			if !ok {
				panic(fmt.Sprintf("wire: unbound input %s (%s)", v, v.Name))
			}
			st.env[v] = t
		}
		for _, v := range r.Plan.G.Values {
			if v.ConstData == nil {
				continue
			}
			if params != nil {
				if t, ok := params[v]; ok {
					st.env[v] = t
					continue
				}
			}
			st.env[v] = v.ConstData
		}
	}

	if r.Cfg.Profile {
		st.span[0] = r.recordProfEvent(st, 0)
	}
	for _, se := range r.Plan.Supers {
		if r.Cfg.Profile && r.multiStream() && r.superEpochRecording(se) {
			st.seStart[se] = r.recordProfEvent(st, 0)
		}
		for _, ep := range se.Epochs {
			r.dispatchEpoch(st, se, ep)
		}
		r.superEpochBarrier(st)
	}
	// The batch ends only when the gradient exchange has: the optimizer
	// consumes the reduced gradients, so stream 0 joins on the comm stream
	// before the end-of-batch span is recorded.
	if st.comm != nil && st.comm.stream != 0 {
		done := r.recordEvent(st, st.comm.stream)
		r.Dev.WaitEventTag(0, done, "commjoin")
		st.events++
	}
	if r.Cfg.Profile {
		st.span[1] = r.recordProfEvent(st, 0)
	}
	dev.Synchronize()

	res := BatchResult{
		Metrics:    map[string]float64{},
		TotalUs:    dev.CPUTimeUs(),
		Kernels:    st.kernels,
		Events:     st.events,
		ProfEvents: st.profEvents,
		Env:        st.env,
	}
	if st.comm != nil {
		commStats(dev.Records(), &res)
	}
	if r.Cfg.Profile {
		r.extractMetrics(st, &res)
	}
	if r.obs != nil {
		r.obs.Trace.AddSpan(obs.PIDDispatch, obs.TIDWirer, "dispatch batch", "wirer",
			r.traceOffsetUs, res.TotalUs, map[string]interface{}{
				"kernels": res.Kernels,
				"events":  res.Events,
			})
	}
	return res
}

// superEpochRecording reports whether any epoch variable in the super-epoch
// needs a measurement this trial.
func (r *Runner) superEpochRecording(se *enumerate.SuperEpoch) bool {
	for _, ep := range se.Epochs {
		if v := r.Plan.EpochVars[ep]; v != nil && v.Recording() {
			return true
		}
	}
	return false
}

func (r *Runner) multiStream() bool {
	return r.Plan.Opts.StreamAdapt && r.Plan.Opts.NumStreams >= 2
}

// recordEvent places a synchronization event and counts it.
//
//astra:hotpath
func (r *Runner) recordEvent(st *dispatchState, stream int) *gpusim.Event {
	st.events++
	return r.Dev.RecordEvent(stream)
}

// recordProfEvent marks an event as pure profiling instrumentation; its
// cost is what the §6.4 "<0.5% overhead" claim is about. Synchronization
// events exist for correctness regardless of profiling.
//
//astra:hotpath
func (r *Runner) recordProfEvent(st *dispatchState, stream int) *gpusim.Event {
	st.profEvents++
	return r.recordEvent(st, stream)
}

// streamAssignment assigns each unit of the epoch a stream: class variables
// say how many of each equivalence class go to stream 1 (§4.5.5); classes
// without a variable (capped or stream adaptation off) stay on stream 0.
// The returned map is the state's scratch map, valid until the next epoch.
//
//astra:hotpath
func (r *Runner) streamAssignment(st *dispatchState, ep *enumerate.Epoch) map[*enumerate.Unit]int {
	if st.assign == nil {
		st.assign = map[*enumerate.Unit]int{} // lint:ok hotpath lazy scratch-map init, once per runner state
	}
	out := st.assign
	clear(out)
	if !r.multiStream() {
		for _, u := range ep.Units {
			out[u] = 0
		}
		return out
	}
	aux := r.Plan.Opts.NumStreams - 1 // streams 1..S-1 take the moved units
	for _, cls := range ep.Classes {
		v := r.Plan.StreamVars[cls]
		k := 0
		if v != nil {
			k, _ = strconv.Atoi(v.CurrentLabel())
		}
		for i, u := range cls.Units {
			if i < k {
				// Spread the moved units across the auxiliary streams
				// round-robin; with 2 streams this is the paper's
				// "k to stream 1" split.
				out[u] = 1 + i%aux
			} else {
				out[u] = 0
			}
		}
	}
	return out
}

func (r *Runner) dispatchEpoch(st *dispatchState, se *enumerate.SuperEpoch, ep *enumerate.Epoch) {
	assign := r.streamAssignment(st, ep)
	// Cross-stream ordering: before using a stream in this epoch, wait on
	// the previous epoch's end events of the *other* streams. A stream
	// entering the schedule for the first time additionally waits on the
	// latest super-epoch barrier's events: the barrier's all-pairs
	// synchronization only covered the streams used before it, so without
	// the catch-up a fresh stream would race work from earlier super-epochs
	// (found by the plan verifier's happens-before analysis).
	waited := st.waited
	for i := range waited {
		waited[i] = false
	}
	ensureOrdered := func(stream int) {
		if waited[stream] {
			return
		}
		waited[stream] = true
		if !st.usedStreams[stream] {
			for i, ev := range st.barrierEvents {
				if st.barrierStream[i] != stream {
					r.Dev.WaitEventTag(stream, ev, "barrier")
					st.events++
				}
			}
		}
		for i, ev := range st.prevEpochEvents {
			if st.prevEpochStream[i] != stream {
				r.Dev.WaitEventTag(stream, ev, "epoch")
				st.events++ // waits cost the same bookkeeping CPU time
			}
		}
	}
	streamsUsed := st.streamsUsed
	for i := range streamsUsed {
		streamsUsed[i] = false
	}
	for _, u := range ep.Units {
		stream := assign[u]
		ensureOrdered(stream)
		streamsUsed[stream] = true
		st.usedStreams[stream] = true
		st.unitStream[u] = stream
		r.dispatchUnit(st, u, stream)
		r.maybeLaunchComm(st, st.comm, u, stream)
	}
	// Record this epoch's end on each used stream for the next epoch and
	// for the epoch completion metric.
	if r.multiStream() {
		st.prevEpochEvents = st.prevEpochEvents[:0]
		st.prevEpochStream = st.prevEpochStream[:0]
		var ends []*gpusim.Event
		for s := 0; s < r.Plan.Opts.NumStreams; s++ {
			if !streamsUsed[s] {
				continue
			}
			ev := r.recordEvent(st, s)
			st.prevEpochEvents = append(st.prevEpochEvents, ev)
			st.prevEpochStream = append(st.prevEpochStream, s)
			ends = append(ends, ev)
		}
		if r.Cfg.Profile && r.Plan.EpochVarID[ep] != "" && st.seStart[se] != nil {
			st.epochEnds[ep] = ends
		}
	}
}

// superEpochBarrier force-synchronizes all streams (§4.5.3), resetting
// scheduling history so super-epochs explore independently.
func (r *Runner) superEpochBarrier(st *dispatchState) {
	if !r.multiStream() {
		return
	}
	// usedStreams is indexed by stream ID, so iterating it is already the
	// sorted order determinism requires: RecordEvent/WaitEvent each advance
	// the simulated CPU clock, so an unordered walk would make event
	// timestamps differ between identical runs.
	streams := make([]int, 0, len(st.usedStreams))
	for s, used := range st.usedStreams {
		if used {
			streams = append(streams, s)
		}
	}
	evs := make([]*gpusim.Event, len(streams))
	for i, s := range streams {
		evs[i] = r.recordEvent(st, s)
	}
	for i, s := range streams {
		for j, ev := range evs {
			if j == i {
				continue // a stream need not wait on its own event
			}
			r.Dev.WaitEventTag(s, ev, "barrier")
			st.events++
		}
	}
	st.prevEpochEvents = nil
	st.prevEpochStream = nil
	// Keep the barrier's records: a stream first used after this barrier
	// waits on them to catch up with everything dispatched before it.
	st.barrierEvents = append(st.barrierEvents[:0], evs...)
	st.barrierStream = append(st.barrierStream[:0], streams...)
}

// unitLabel names a schedule unit for the dispatch trace track.
func unitLabel(u *enumerate.Unit) string {
	switch u.Kind {
	case enumerate.UnitGEMMGroup:
		return "group " + u.Group.ID
	case enumerate.UnitEWChain:
		return fmt.Sprintf("ew-chain[%d]", len(u.Nodes))
	default:
		return u.Nodes[0].Op.String()
	}
}

// dispatchUnit launches the kernels of one schedule unit on its stream.
//
//astra:hotpath
func (r *Runner) dispatchUnit(st *dispatchState, u *enumerate.Unit, stream int) {
	if r.obs != nil && r.traceDetail {
		t0 := r.Dev.CPUTimeUs()
		// lint:ok hotpath trace-detail closure, only runs when -trace-detail is on
		defer func() {
			r.obs.Trace.AddSpan(obs.PIDDispatch, obs.TIDWirer, unitLabel(u), "dispatch",
				r.traceOffsetUs+t0, r.Dev.CPUTimeUs()-t0, map[string]interface{}{"stream": stream})
		}()
	}
	// Event pairs wrap only regions whose adaptive variables still need a
	// measurement this trial: converged regions are never re-measured
	// (§4.1 — one measurement suffices), which is what keeps the always-on
	// instrumentation under the 0.5%% budget of §6.4.
	profileUnit := false
	if r.Cfg.Profile {
		if v := r.Plan.KernelVars[u]; v != nil && v.Recording() {
			profileUnit = true
		}
		if u.Kind == enumerate.UnitGEMMGroup {
			if v := r.Plan.ChunkVars[u.Group]; v != nil && v.Recording() {
				profileUnit = true
			}
		}
	}
	var start *gpusim.Event
	if profileUnit {
		start = r.recordProfEvent(st, stream)
	}
	switch u.Kind {
	case enumerate.UnitSingle:
		n := u.Nodes[0]
		if r.Cfg.EmbeddingHostTransfer && (n.Op == graph.OpLookup || n.Op == graph.OpLookupGrad) {
			// XLA's embedding pathology: the lookup bounces through the
			// host (§6.6) instead of staying on the device.
			r.Dev.HostTransfer(stream, int64(n.Out.Shape.NumElements())*8)
		}
		r.launch(st, stream, kernels.ForNode(n, r.libFor(u)))
		r.eval(st, n)
	case enumerate.UnitEWChain:
		elems := 0
		for _, n := range u.Nodes {
			if e := n.Out.Shape.NumElements(); e > elems {
				elems = e
			}
		}
		r.launch(st, stream, kernels.FusedElementwise(len(u.Nodes), elems))
		for _, n := range u.Nodes {
			r.eval(st, n)
		}
	case enumerate.UnitGEMMGroup:
		r.dispatchGroup(st, u, stream)
	}
	if profileUnit {
		end := r.recordProfEvent(st, stream)
		if u.Kind == enumerate.UnitGEMMGroup {
			st.groupSpan[u] = [2]*gpusim.Event{start, end}
		} else {
			st.unitSpan[u] = [2]*gpusim.Event{start, end}
		}
	}
}

// chunkSize reads the group's chunk variable (or the fixed policy).
//
//astra:hotpath
func (r *Runner) chunkSize(u *enumerate.Unit) int {
	if v := r.Plan.ChunkVars[u.Group]; v != nil {
		c, err := strconv.Atoi(v.CurrentLabel())
		if err != nil || c < 1 {
			panic(fmt.Sprintf("wire: bad chunk label %q", v.CurrentLabel()))
		}
		return c
	}
	if r.Cfg.MaxFusion {
		return len(u.Group.GEMMs)
	}
	return 1
}

// libFor reads the unit's kernel-library variable (or the default).
//
//astra:hotpath
func (r *Runner) libFor(u *enumerate.Unit) kernels.Library {
	if v := r.Plan.KernelVars[u]; v != nil {
		return kernels.Library(v.Current())
	}
	return kernels.CuBLAS
}

// dispatchGroup launches a fusion group at the current chunk granularity:
// ceil(n/chunk) fused GEMMs, gather copies when the active allocation does
// not keep the chunk's operands contiguous, and the residual accumulator
// adds of a partially-fused ladder.
//
//astra:hotpath
func (r *Runner) dispatchGroup(st *dispatchState, u *enumerate.Unit, stream int) {
	grp := u.Group
	chunk := r.chunkSize(u)
	lib := r.libFor(u)
	contiguous := grp.ReqID != "" && r.Plan.Alloc().Contiguous(grp.ReqID)

	n := len(grp.GEMMs)
	numChunks := (n + chunk - 1) / chunk
	for c := 0; c < numChunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		members := grp.GEMMs[lo:hi]
		if len(members) == 1 {
			r.launch(st, stream, kernels.ForNode(members[0], lib))
			continue
		}
		if !contiguous {
			// Gather the chunk's operands into a scratch block first.
			var bytes int64
			for _, m := range members {
				bytes += int64(operandBytes(grp, m))
			}
			r.launch(st, stream, kernels.Copy(bytes))
		}
		r.launch(st, stream, kernels.GEMM(lib, fusedShape(grp, members)))
	}
	// Residual ladder accumulation across chunk outputs.
	if grp.Kind == enumerate.Ladder && numChunks > 1 {
		elems := grp.GEMMs[0].Out.Shape.NumElements()
		for i := 0; i < numChunks-1; i++ {
			r.launch(st, stream, kernels.Elementwise("add", elems))
		}
	}
	for _, node := range u.Nodes {
		r.eval(st, node)
	}
}

// operandBytes returns the bytes of the member's fusable operand.
func operandBytes(grp *enumerate.FusionGroup, m *graph.Node) int {
	side := 1
	if grp.Kind == enumerate.SharedRight {
		side = 0
	}
	return m.Inputs[side].Shape.NumElements() * 8
}

// fusedShape computes the fused GEMM problem size for a chunk of members.
func fusedShape(grp *enumerate.FusionGroup, members []*graph.Node) kernels.GEMMShape {
	first := members[0]
	s := kernels.GEMMShape{
		M: first.Inputs[0].Shape.Rows(),
		K: first.Inputs[0].Shape.Cols(),
		N: first.Inputs[1].Shape.Cols(),
	}
	for _, m := range members[1:] {
		switch grp.Kind {
		case enumerate.SharedLeft:
			s.N += m.Inputs[1].Shape.Cols()
		case enumerate.SharedRight:
			s.M += m.Inputs[0].Shape.Rows()
		case enumerate.Ladder:
			s.K += m.Inputs[0].Shape.Cols()
		}
	}
	return s
}

// launch forwards one kernel spec to the device and counts it.
//
//astra:hotpath
func (r *Runner) launch(st *dispatchState, stream int, spec gpusim.KernelSpec) {
	r.Dev.AdvanceCPU(r.Cfg.PerOpCPUUs)
	r.Dev.Launch(stream, spec)
	st.kernels++
}

// eval computes a node's value on the CPU oracle, materializing any view
// transposes its inputs read through.
//
//astra:hotpath
func (r *Runner) eval(st *dispatchState, n *graph.Node) {
	if !st.evalValues {
		return
	}
	for _, in := range n.Inputs {
		if _, ok := st.env[in]; ok {
			continue
		}
		p := in.Producer
		if p != nil && p.Op == graph.OpTranspose {
			graph.EvalNode(p, st.env)
			continue
		}
		panic(fmt.Sprintf("wire: schedule violates dependencies: %s needs %s", n, in))
	}
	graph.EvalNode(n, st.env)
}

// extractMetrics turns the recorded event pairs into the per-variable
// metrics the explorer observes (§4.7): per-group times for chunk and
// library variables, per-epoch completion times for the stream composites,
// and the end-to-end batch time for the allocation policy.
func (r *Runner) extractMetrics(st *dispatchState, res *BatchResult) {
	// Each unit maps to its own group/kernel var, so the writes below hit
	// distinct metric keys in any order.
	for u, span := range st.groupSpan { // nodeterm:ok distinct metric key per unit
		t := gpusim.Elapsed(span[0], span[1])
		if v := r.Plan.ChunkVars[u.Group]; v != nil {
			res.Metrics[v.ID] = t
		}
		if v := r.Plan.KernelVars[u]; v != nil {
			res.Metrics[v.ID] = t
		}
	}
	for u, span := range st.unitSpan { // nodeterm:ok distinct metric key per unit
		if v := r.Plan.KernelVars[u]; v != nil {
			res.Metrics[v.ID] = gpusim.Elapsed(span[0], span[1])
		}
	}
	for _, se := range r.Plan.Supers {
		start, ok := st.seStart[se]
		if !ok {
			continue
		}
		for _, ep := range se.Epochs {
			id := r.Plan.EpochVarID[ep]
			ends := st.epochEnds[ep]
			if id == "" || len(ends) == 0 {
				continue
			}
			end := math.Inf(-1)
			for _, ev := range ends {
				if t := ev.TimeUs(); t > end {
					end = t
				}
			}
			res.Metrics[id] = end - start.TimeUs()
			// Class variables inside the epoch share the epoch metric: the
			// composite exhaustive variable is the one recorded, but the
			// explorer may also attribute to leaves when epochs are tiny.
			for _, cls := range ep.Classes {
				if v := r.Plan.StreamVars[cls]; v != nil {
					res.Metrics[v.ID] = res.Metrics[id]
				}
			}
		}
	}
	if st.span[0] != nil && st.span[1] != nil {
		total := gpusim.Elapsed(st.span[0], st.span[1])
		if r.Plan.AllocVar != nil {
			res.Metrics[r.Plan.AllocVar.ID] = total
		}
		// The comm variables are judged end-to-end: overlap quality shows
		// up only in the whole batch time, never in the exchange span
		// alone.
		if r.Plan.CommBucketVar != nil {
			res.Metrics[r.Plan.CommBucketVar.ID] = total
		}
		if r.Plan.CommPlaceVar != nil {
			res.Metrics[r.Plan.CommPlaceVar.ID] = total
		}
		res.Metrics["e2e"] = total
	}
}
