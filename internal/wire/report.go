package wire

import (
	"fmt"
	"sort"
	"strings"

	"astra/internal/enumerate"
)

// ScheduleReport summarizes the wired configuration in human-readable form:
// what the custom-wirer decided for every adaptation dimension. astra-run
// prints it; tests assert on its structure.
type ScheduleReport struct {
	Alloc       string
	Groups      []GroupDecision
	StreamSplit map[int]int // stream -> units assigned
	SuperEpochs int
	Epochs      int
}

// GroupDecision records the wired choice for one fusion group.
type GroupDecision struct {
	ID         string
	Kind       string
	Members    int
	Chunk      string
	Library    string
	Contiguous bool
}

// Report builds the schedule report for the session's current variable
// bindings (call after Explore for the wired configuration).
func (s *Session) Report() ScheduleReport {
	p := s.Plan
	r := ScheduleReport{
		Alloc:       p.Alloc().Name,
		StreamSplit: map[int]int{},
		SuperEpochs: len(p.Supers),
	}
	for _, se := range p.Supers {
		r.Epochs += len(se.Epochs)
	}
	byUnit := map[*enumerate.FusionGroup]*enumerate.Unit{}
	for _, u := range p.Units {
		if u.Group != nil {
			byUnit[u.Group] = u
		}
	}
	for _, g := range p.Groups {
		d := GroupDecision{
			ID:      g.ID,
			Kind:    g.Kind.String(),
			Members: len(g.GEMMs),
			Chunk:   "1",
			Library: "cublas",
		}
		if v := p.ChunkVars[g]; v != nil {
			d.Chunk = v.CurrentLabel()
		}
		if u := byUnit[g]; u != nil {
			if v := p.KernelVars[u]; v != nil {
				d.Library = v.CurrentLabel()
			}
		}
		d.Contiguous = g.ReqID != "" && p.Alloc().Contiguous(g.ReqID)
		r.Groups = append(r.Groups, d)
	}
	sort.Slice(r.Groups, func(i, j int) bool { return r.Groups[i].ID < r.Groups[j].ID })
	if p.Opts.StreamAdapt {
		for _, se := range p.Supers {
			for _, ep := range se.Epochs {
				assign := s.Runner.streamAssignment(&s.Runner.st, ep)
				for _, st := range assign { // nodeterm:ok commutative counting
					r.StreamSplit[st]++
				}
			}
		}
	}
	return r
}

// String renders the report.
func (r ScheduleReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "allocation strategy: %s\n", r.Alloc)
	fmt.Fprintf(&b, "schedule: %d super-epochs, %d epochs\n", r.SuperEpochs, r.Epochs)
	if len(r.StreamSplit) > 0 {
		streams := make([]int, 0, len(r.StreamSplit))
		for s := range r.StreamSplit { // nodeterm:ok keys sorted below
			streams = append(streams, s)
		}
		sort.Ints(streams)
		parts := make([]string, len(streams))
		for i, s := range streams {
			parts[i] = fmt.Sprintf("stream %d: %d units", s, r.StreamSplit[s])
		}
		fmt.Fprintf(&b, "stream assignment: %s\n", strings.Join(parts, ", "))
	}
	fused, unfused := 0, 0
	for _, g := range r.Groups {
		if g.Chunk == "1" {
			unfused++
		} else {
			fused++
		}
	}
	fmt.Fprintf(&b, "fusion groups: %d wired fused, %d wired unfused\n", fused, unfused)
	shown := 0
	for _, g := range r.Groups {
		if g.Chunk == "1" {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %-12s members=%-3d chunk=%-3s lib=%-7s contiguous=%v\n",
			g.ID, g.Kind, g.Members, g.Chunk, g.Library, g.Contiguous)
		shown++
		if shown >= 12 {
			fmt.Fprintf(&b, "  ... (%d more)\n", fused-shown)
			break
		}
	}
	return b.String()
}
