// Package kernels provides the simulated kernel libraries: cost models
// that translate graph operators into gpusim.KernelSpec launches.
//
// Three GEMM libraries stand in for the paper's cuBLAS, OpenAI-GEMM and a
// second OpenAI kernel variant (§3.1, Table 1). Each picks its own tile
// shape and efficiency as a function of the operand shape, with deliberate
// performance cliffs, so the fastest library depends on (M, K, N) in a way
// that is hard to predict statically — the property that motivates Astra's
// measurement-driven kernel selection.
//
// The time model is wave-quantized: a GEMM of shape (M×K)·(K×N) is tiled
// into ⌈M/tm⌉·⌈N/tn⌉ tiles; each tile occupies one SM for
// 2·tm·tn·K / (perSMFlops · eff) microseconds. Tile counts below the SM
// count leave the machine underutilized — that single mechanism yields the
// fusion wins, the diminishing returns of very large fusion groups, the
// §3.2 "fused is slower" anomaly (via the cuBLAS large-M tile cliff), and
// the multi-stream wins the paper reports.
package kernels

import (
	"fmt"

	"astra/internal/gpusim"
	"astra/internal/graph"
)

// perSMFlopsUs is the peak per-SM throughput (flops/µs): 9.3 TFLOPS over
// 56 SMs, the P100 numbers from §2.3 of the paper.
const perSMFlopsUs = 9.3e6 / 56

// numSMs mirrors the simulated device; cost models use it only to decide
// split-K factors (real libraries know the device they target).
const numSMs = 56

// elemsPerTile is the element count one SM processes per elementwise tile.
const elemsPerTile = 2048

// elemRatePerSMUs is the per-SM elementwise throughput (elements/µs),
// derived from P100 HBM bandwidth (~720 GB/s over 56 SMs, 3 accesses of 8
// bytes per element).
const elemRatePerSMUs = 720e3 / 56 / (3 * 8)

// Library identifies a GEMM kernel library.
type Library int

// The simulated GEMM libraries.
const (
	CuBLAS Library = iota
	OpenAI1
	OpenAI2
	numLibraries
)

// Libraries returns all GEMM libraries in preference order (CuBLAS first,
// matching the frameworks' default).
func Libraries() []Library { return []Library{CuBLAS, OpenAI1, OpenAI2} }

// String names the library as in Table 1.
func (l Library) String() string {
	switch l {
	case CuBLAS:
		return "cublas"
	case OpenAI1:
		return "oai1"
	case OpenAI2:
		return "oai2"
	}
	return fmt.Sprintf("lib(%d)", int(l))
}

// GEMMShape is the (M×K)·(K×N) problem size.
type GEMMShape struct{ M, K, N int }

// String renders the shape as in Table 1 ("MxKxN").
func (s GEMMShape) String() string { return fmt.Sprintf("%dx%dx%d", s.M, s.K, s.N) }

// Flops returns the multiply-add count of the GEMM.
func (s GEMMShape) Flops() int64 { return 2 * int64(s.M) * int64(s.K) * int64(s.N) }

// fitTile returns the smallest power-of-two tile height in [8, max] that
// covers dim, or max if dim exceeds it. Small tile heights carry an
// efficiency penalty (skinny tiles have poor compute intensity), which is
// how small mini-batches end up latency-bound.
func fitTile(dim, max int) int {
	for t := 8; t < max; t *= 2 {
		if t >= dim {
			return t
		}
	}
	return max
}

// skinnyPenalty scales efficiency down for short tiles.
func skinnyPenalty(tm int) float64 { return float64(tm) / float64(tm+16) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// gemmPlan is a library's concrete tiling decision for a shape.
type gemmPlan struct {
	tm, tn int
	eff    float64
	splitK int // 1 = no split
}

func (l Library) plan(s GEMMShape) gemmPlan {
	switch l {
	case CuBLAS:
		p := gemmPlan{tn: 64, splitK: 1}
		p.tm = fitTile(s.M, 64)
		p.eff = 0.92 * skinnyPenalty(p.tm)
		if s.N >= 2048 {
			// cuBLAS (CUDA 8 era) loses ground on very wide N.
			p.eff *= 0.85
		}
		if s.M >= 512 {
			// Large-M tile switch: wider tiles, register-pressure cliff.
			// This is the §3.2 anomaly: a fused 512-row GEMM can lose to
			// two parallel 256-row GEMMs.
			p.tm = 128
			p.eff = 0.92 * 0.88 * skinnyPenalty(128)
		}
		// Split-K: when the grid is too small to fill the machine and the
		// reduction dimension is deep, cuBLAS splits K for parallelism at
		// a small reduction cost.
		tiles := ceilDiv(s.M, p.tm) * ceilDiv(s.N, p.tn)
		if tiles < numSMs && s.K >= 1024 {
			split := ceilDiv(numSMs, tiles)
			if split > 4 {
				split = 4
			}
			if split > 1 {
				p.splitK = split
				p.eff *= 0.93
			}
		}
		return p
	case OpenAI1:
		p := gemmPlan{tn: 64, splitK: 1}
		p.tm = fitTile(s.M, 64)
		switch {
		case s.N >= 2048:
			// Wide N is OpenAI1's sweet spot (Table 1 row 1): its
			// persistent-block kernel approaches peak per-SM throughput.
			p.eff = 0.99 * skinnyPenalty(p.tm)
		case s.K > 2048:
			// Deep reductions thrash its shared-memory staging
			// (Table 1 row 2).
			if p.tm > 32 {
				p.tm = 32
			}
			p.eff = 0.62 * skinnyPenalty(p.tm)
		default:
			p.eff = 0.90 * skinnyPenalty(p.tm)
		}
		return p
	default: // OpenAI2
		p := gemmPlan{tn: 32, splitK: 1}
		p.tm = fitTile(s.M, 64)
		if s.N >= 2048 {
			// Narrow tiles with a huge grid: pathological for wide N.
			p.eff = 0.11 * skinnyPenalty(p.tm)
		} else {
			p.eff = 0.82 * skinnyPenalty(p.tm)
		}
		return p
	}
}

// GEMM returns the kernel spec for running shape s with library l.
func GEMM(l Library, s GEMMShape) gpusim.KernelSpec {
	if s.M <= 0 || s.K <= 0 || s.N <= 0 {
		panic(fmt.Sprintf("kernels: bad GEMM shape %v", s))
	}
	p := l.plan(s)
	tiles := ceilDiv(s.M, p.tm) * ceilDiv(s.N, p.tn) * p.splitK
	kPerSplit := float64(s.K) / float64(p.splitK)
	tileTime := 2 * float64(p.tm) * float64(p.tn) * kPerSplit / (perSMFlopsUs * p.eff)
	// Kernels spanning more than one wave pipeline several thread blocks
	// per SM, which smooths the wave-quantization cliff: subdivide their
	// tiles. Sub-wave kernels stay latency-bound at one full tile time.
	if tiles > numSMs {
		f := ceilDiv(tiles, numSMs)
		if f > 4 {
			f = 4
		}
		tiles *= f
		tileTime /= float64(f)
	}
	return gpusim.KernelSpec{
		Name:       fmt.Sprintf("gemm_%s_%s", l, s),
		Tiles:      tiles,
		TileTimeUs: tileTime,
	}
}

// GEMMTimeAloneUs returns the device time of the GEMM when it runs alone on
// an idle device (setup excluded): waves × tile time. Reports and tests use
// it; dispatchers always go through the simulator instead.
func GEMMTimeAloneUs(l Library, s GEMMShape) float64 {
	spec := GEMM(l, s)
	waves := ceilDiv(spec.Tiles, numSMs)
	return float64(waves) * spec.TileTimeUs
}

// Elementwise returns the kernel spec for a single pointwise operator over
// n elements.
func Elementwise(name string, elems int) gpusim.KernelSpec {
	if elems <= 0 {
		panic("kernels: elementwise with no elements")
	}
	return gpusim.KernelSpec{
		Name:       "ew_" + name,
		Tiles:      ceilDiv(elems, elemsPerTile),
		TileTimeUs: elemsPerTile / elemRatePerSMUs,
	}
}

// FusedElementwise returns the spec for a JIT-fused chain of ops pointwise
// operators over elems elements. Fusion keeps intermediates in registers:
// the fused kernel reads inputs and writes the output once, so each extra
// op adds only its arithmetic (~20% of a standalone pass), not its memory
// traffic.
func FusedElementwise(ops, elems int) gpusim.KernelSpec {
	if ops <= 0 {
		panic("kernels: fused elementwise with no ops")
	}
	spec := Elementwise(fmt.Sprintf("fused%d", ops), elems)
	spec.TileTimeUs *= 1 + 0.2*float64(ops-1)
	return spec
}

// Copy returns the spec for a device-to-device copy of n bytes — the price
// of gathering fusion operands that the allocation strategy did not place
// contiguously (§3.2).
func Copy(bytes int64) gpusim.KernelSpec {
	if bytes <= 0 {
		bytes = 1
	}
	const bytesPerTile = elemsPerTile * 8
	// Copies move 2 bytes per byte payload (read + write) of the 3-access
	// budget in elemRatePerSMUs, so they run 1.5x the elementwise rate.
	rate := elemRatePerSMUs * 8 * 1.5
	return gpusim.KernelSpec{
		Name:       "copy",
		Tiles:      int((bytes + bytesPerTile - 1) / bytesPerTile),
		TileTimeUs: bytesPerTile / rate,
	}
}

// RowKernel returns the spec for row-structured kernels (softmax, CE and
// their gradients): elementwise traffic with a small arithmetic surcharge.
func RowKernel(name string, elems int) gpusim.KernelSpec {
	spec := Elementwise(name, elems)
	spec.TileTimeUs *= 1.6
	return spec
}

// ForNode maps a graph node to its kernel spec. GEMM nodes take the library
// choice; every other operator has a single implementation. The returned
// spec is what the dispatchers hand to gpusim.Device.Launch.
func ForNode(n *graph.Node, lib Library) gpusim.KernelSpec {
	switch n.Op {
	case graph.OpMatMul:
		s := GEMMShape{
			M: n.Inputs[0].Shape.Rows(),
			K: n.Inputs[0].Shape.Cols(),
			N: n.Inputs[1].Shape.Cols(),
		}
		return GEMM(lib, s)
	case graph.OpSoftmax, graph.OpCrossEntropy, graph.OpCrossEntropyGrad, graph.OpSoftmaxGrad:
		return RowKernel(n.Op.String(), n.Inputs[0].Shape.NumElements())
	case graph.OpConcatCols, graph.OpConcatRows, graph.OpSliceCols, graph.OpSliceRows,
		graph.OpPadCols, graph.OpPadRows, graph.OpTranspose, graph.OpBroadcastRows,
		graph.OpBroadcastCols, graph.OpRowSums, graph.OpSumRows:
		// Data-movement kernels read and write (about) their output; a
		// slice never touches the rest of its input.
		return Copy(int64(n.Out.Shape.NumElements()) * 8 * 2)
	case graph.OpScaleCols:
		return Elementwise(n.Op.String(), n.Out.Shape.NumElements())
	case graph.OpLookup, graph.OpLookupGrad:
		return Copy(int64(n.Out.Shape.NumElements()) * 8 * 2)
	default:
		if !n.Op.IsElementwise() {
			panic(fmt.Sprintf("kernels: no kernel for op %v", n.Op))
		}
		return Elementwise(n.Op.String(), n.Out.Shape.NumElements())
	}
}
