package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"astra/internal/gpusim"
	"astra/internal/graph"
	"astra/internal/tensor"
)

func TestTable1LibraryOrdering(t *testing.T) {
	// Table 1 of the paper: for 64x1024x4096 (forward fused GEMM),
	// OAI1 < cuBlas << OAI2; for 64x4096x1024 (backward GEMM),
	// cuBlas < OAI2 < OAI1. The best library is shape-dependent.
	fwd := GEMMShape{M: 64, K: 1024, N: 4096}
	cb, o1, o2 := GEMMTimeAloneUs(CuBLAS, fwd), GEMMTimeAloneUs(OpenAI1, fwd), GEMMTimeAloneUs(OpenAI2, fwd)
	if !(o1 < cb && cb < o2) {
		t.Fatalf("fwd %v: cublas=%.1f oai1=%.1f oai2=%.1f, want oai1 < cublas < oai2", fwd, cb, o1, o2)
	}
	if o2 < 3*cb {
		t.Fatalf("fwd: oai2 (%.1f) should be pathological vs cublas (%.1f)", o2, cb)
	}
	bwd := GEMMShape{M: 64, K: 4096, N: 1024}
	cb, o1, o2 = GEMMTimeAloneUs(CuBLAS, bwd), GEMMTimeAloneUs(OpenAI1, bwd), GEMMTimeAloneUs(OpenAI2, bwd)
	if !(cb < o2 && o2 < o1) {
		t.Fatalf("bwd %v: cublas=%.1f oai1=%.1f oai2=%.1f, want cublas < oai2 < oai1", bwd, cb, o1, o2)
	}
}

func TestSection32FusionAnomaly(t *testing.T) {
	// §3.2: two (256x1024)x(1024x1024) GEMMs on two streams beat the fused
	// (512x1024)x(1024x1024) GEMM, because cuBLAS crosses its large-M tile
	// cliff at M=512.
	cfg := gpusim.P100()
	small := GEMM(CuBLAS, GEMMShape{M: 256, K: 1024, N: 1024})

	par := gpusim.NewDevice(cfg)
	par.EnsureStreams(2)
	par.Launch(0, small)
	par.Launch(1, small)
	par.Synchronize()
	parEnd := 0.0
	for _, r := range par.Records() {
		parEnd = math.Max(parEnd, r.EndUs)
	}

	fusedDev := gpusim.NewDevice(cfg)
	f := fusedDev.Launch(0, GEMM(CuBLAS, GEMMShape{M: 512, K: 1024, N: 1024}))
	fusedDev.Synchronize()

	if parEnd >= f.EndUs {
		t.Fatalf("anomaly not reproduced: parallel ends %.1f, fused ends %.1f", parEnd, f.EndUs)
	}
	// The paper's magnitudes: 172us vs 211us — same order of magnitude and
	// a fused/parallel ratio between 1.1x and 2.5x.
	ratio := f.EndUs / parEnd
	if ratio < 1.05 || ratio > 2.5 {
		t.Fatalf("fused/parallel ratio %.2f outside plausible band", ratio)
	}
}

func TestFusionUsuallyWins(t *testing.T) {
	// Away from the cliff, fusing four small GEMMs into one is faster than
	// running them sequentially (launch amortization + utilization).
	cfg := gpusim.P100()
	seq := gpusim.NewDevice(cfg)
	for i := 0; i < 4; i++ {
		seq.Launch(0, GEMM(CuBLAS, GEMMShape{M: 64, K: 512, N: 512}))
	}
	seq.Synchronize()
	seqTime := seq.CPUTimeUs()

	fused := gpusim.NewDevice(cfg)
	fused.Launch(0, GEMM(CuBLAS, GEMMShape{M: 64, K: 512, N: 2048}))
	fused.Synchronize()
	fusedTime := fused.CPUTimeUs()

	if fusedTime >= seqTime {
		t.Fatalf("fusion did not win: fused %.1f vs sequential %.1f", fusedTime, seqTime)
	}
}

func TestGEMMTimeGrowsSublinearlyWithBatch(t *testing.T) {
	// Small mini-batches are latency-bound: batch 64 costs much less than
	// 8x batch 8 (this is why the paper's speedups shrink as batch grows).
	t8 := GEMMTimeAloneUs(CuBLAS, GEMMShape{M: 8, K: 1024, N: 1024})
	t64 := GEMMTimeAloneUs(CuBLAS, GEMMShape{M: 64, K: 1024, N: 1024})
	t256 := GEMMTimeAloneUs(CuBLAS, GEMMShape{M: 256, K: 1024, N: 1024})
	if t64 >= 8*t8 {
		t.Fatalf("batch 64 (%.1f) should cost less than 8x batch 8 (%.1f)", t64, t8)
	}
	if t256 <= t64 {
		t.Fatalf("batch 256 (%.1f) should cost more than batch 64 (%.1f)", t256, t64)
	}
}

func TestGEMMSpecSanityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		s := GEMMShape{M: 1 + rng.Intn(1024), K: 1 + rng.Intn(4096), N: 1 + rng.Intn(4096)}
		for _, lib := range Libraries() {
			spec := GEMM(lib, s)
			if spec.Tiles <= 0 || spec.TileTimeUs <= 0 || math.IsNaN(spec.TileTimeUs) {
				return false
			}
			// Wave time must never beat the machine's peak: total SM-time
			// >= flops / (perSM peak * SMs).
			smTime := float64(spec.Tiles) * spec.TileTimeUs
			if smTime*perSMFlopsUs < float64(s.Flops())*0.99 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBestLibraryIsShapeDependent(t *testing.T) {
	// At least two different libraries must win somewhere across a shape
	// sweep — otherwise kernel-selection adaptation would be pointless.
	winners := map[Library]bool{}
	for _, m := range []int{8, 64, 512} {
		for _, k := range []int{256, 1024, 4096} {
			for _, n := range []int{256, 1024, 4096} {
				best, bestT := CuBLAS, math.Inf(1)
				for _, lib := range Libraries() {
					if tt := GEMMTimeAloneUs(lib, GEMMShape{M: m, K: k, N: n}); tt < bestT {
						best, bestT = lib, tt
					}
				}
				winners[best] = true
			}
		}
	}
	if len(winners) < 2 {
		t.Fatalf("only %d library ever wins: %v", len(winners), winners)
	}
}

func TestElementwiseAndFusedElementwise(t *testing.T) {
	single := Elementwise("tanh", 100000)
	if want := (100000 + elemsPerTile - 1) / elemsPerTile; single.Tiles != want {
		t.Fatalf("tiles = %d, want %d", single.Tiles, want)
	}
	fused := FusedElementwise(4, 100000)
	if fused.TileTimeUs <= single.TileTimeUs {
		t.Fatal("fused chain should cost more per tile than one op")
	}
	if fused.TileTimeUs >= 4*single.TileTimeUs {
		t.Fatal("fused chain must be cheaper than 4 separate passes")
	}
	// End-to-end with launch overhead, fusion must win.
	cfg := gpusim.P100()
	seq := gpusim.NewDevice(cfg)
	for i := 0; i < 4; i++ {
		seq.Launch(0, single)
	}
	seq.Synchronize()
	f := gpusim.NewDevice(cfg)
	f.Launch(0, fused)
	f.Synchronize()
	if f.CPUTimeUs() >= seq.CPUTimeUs() {
		t.Fatalf("elementwise fusion lost: %v vs %v", f.CPUTimeUs(), seq.CPUTimeUs())
	}
}

func TestCopyScalesWithBytes(t *testing.T) {
	small := Copy(1 << 12)
	big := Copy(1 << 24)
	if big.Tiles <= small.Tiles {
		t.Fatal("copy tiles should grow with bytes")
	}
	if Copy(0).Tiles <= 0 {
		t.Fatal("zero-byte copy should still be a valid launch")
	}
}

func TestForNodeCoversAllModelOps(t *testing.T) {
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 4, 8)
	ids := g.Input("ids", 4, 1)
	tgt := g.Input("t", 4, 1)
	w := g.Param("w", tensor.New(8, 8))
	emb := g.Param("e", tensor.New(16, 8))
	h := b.MatMul(x, w)
	h = b.Add(h, x)
	h = b.Tanh(h)
	h = b.Mul(h, b.Sigmoid(x))
	h = b.Sub(h, b.Scale(x, 0.5))
	h = b.ReLU(h)
	h = b.AddBias(h, g.Param("b", tensor.New(1, 8)))
	_ = b.Softmax(h)
	_ = b.ConcatCols(h, h)
	_ = b.SliceCols(h, 0, 4)
	_ = b.Transpose(h)
	_ = b.Lookup(emb, ids)
	b.CrossEntropy(b.MatMul(h, g.Param("wo", tensor.New(8, 4))), tgt)
	for _, n := range g.Nodes {
		spec := ForNode(n, CuBLAS)
		if spec.Tiles <= 0 || spec.TileTimeUs <= 0 {
			t.Fatalf("bad spec for %v: %+v", n.Op, spec)
		}
		if n.Op == graph.OpMatMul && spec.Name[:5] != "gemm_" {
			t.Fatalf("matmul mapped to %q", spec.Name)
		}
	}
}

func TestForNodeGEMMUsesLibrary(t *testing.T) {
	g := graph.New()
	b := graph.NewBuilder(g)
	x := g.Input("x", 64, 1024)
	w := g.Param("w", tensor.New(1024, 4096))
	mm := b.MatMul(x, w)
	a := ForNode(mm.Producer, CuBLAS)
	o := ForNode(mm.Producer, OpenAI1)
	if a.Name == o.Name {
		t.Fatal("library not reflected in kernel")
	}
	if a.Tiles == o.Tiles && a.TileTimeUs == o.TileTimeUs {
		t.Fatal("libraries produced identical plans for a shape they should disagree on")
	}
}

func TestGEMMShapeString(t *testing.T) {
	s := GEMMShape{M: 64, K: 1024, N: 4096}
	if s.String() != "64x1024x4096" {
		t.Fatalf("String = %q", s.String())
	}
	if s.Flops() != 2*64*1024*4096 {
		t.Fatalf("Flops = %d", s.Flops())
	}
}

func TestBadShapesPanic(t *testing.T) {
	for _, s := range []GEMMShape{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("accepted %v", s)
				}
			}()
			GEMM(CuBLAS, s)
		}()
	}
}
