package distsim

import (
	"math"
	"testing"

	"astra/internal/enumerate"
)

func TestRingAllReduceFormula(t *testing.T) {
	ic := Interconnect{Name: "t", BytesPerUs: 1000, LatencyUs: 2}
	if got := ic.RingAllReduceUs(1<<20, 1); got != 0 {
		t.Fatalf("single worker should not communicate: %v", got)
	}
	// 4 workers: 6 steps, each moving bytes/4.
	bytes := int64(4000)
	want := 6.0 * (1000.0/1000.0 + 2)
	if got := ic.RingAllReduceUs(bytes, 4); got != want {
		t.Fatalf("RingAllReduce = %v, want %v", got, want)
	}
	// Bandwidth-bound regime: time grows sublinearly with workers (the
	// 2(n-1)/n factor approaches 2).
	big := int64(1 << 26)
	t2 := ic.RingAllReduceUs(big, 2)
	t8 := ic.RingAllReduceUs(big, 8)
	if t8 > 2*t2 {
		t.Fatalf("ring scaling broken: n=2 %v, n=8 %v", t2, t8)
	}
}

func TestFabrics(t *testing.T) {
	if NVLink().BytesPerUs <= PCIe().BytesPerUs {
		t.Fatal("NVLink should be faster than PCIe")
	}
	bytes := int64(1 << 24)
	if NVLink().RingAllReduceUs(bytes, 4) >= PCIe().RingAllReduceUs(bytes, 4) {
		t.Fatal("NVLink all-reduce should beat PCIe")
	}
	if _, ok := FabricByName("pcie3"); !ok {
		t.Fatal("pcie3 not found")
	}
	if _, ok := FabricByName("token-ring"); ok {
		t.Fatal("bogus fabric found")
	}
}

func TestStepValidation(t *testing.T) {
	c := &Cluster{Interconnect: PCIe()}
	if _, err := c.Step("scrnn", 32, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := c.Step("scrnn", 30, 4); err == nil {
		t.Fatal("indivisible batch accepted")
	}
	if _, err := c.Step("nope", 32, 2); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := c.StepFixed("scrnn", 32, 2, Schedule{Bucket: "x", Placement: "main"}); err == nil {
		t.Fatal("bad bucket label accepted")
	}
}

func TestSchedules(t *testing.T) {
	scheds := Schedules(16 << 20)
	if len(scheds) < 4 {
		t.Fatalf("schedule space too small: %d", len(scheds))
	}
	seenAllMain := false
	for _, s := range scheds {
		if s == BulkSync() {
			seenAllMain = true
		}
	}
	if !seenAllMain {
		t.Fatal("bulk-sync schedule not in the sweep space")
	}
}

func TestDataParallelTradeoff(t *testing.T) {
	// The fundamental shape: per-device compute falls with more workers,
	// the (analytic) all-reduce term rises, and there is a sweet spot —
	// measured, not modeled.
	c := &Cluster{Interconnect: PCIe(), Preset: enumerate.PresetFK}
	results, best, err := c.BestWorkers("scrnn", 64, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].PerDeviceUs >= results[i-1].PerDeviceUs {
			t.Errorf("per-device compute did not fall: n=%d %v >= n=%d %v",
				results[i].Workers, results[i].PerDeviceUs, results[i-1].Workers, results[i-1].PerDeviceUs)
		}
		if results[i].AllReduceUs <= results[i-1].AllReduceUs {
			t.Errorf("all-reduce did not rise with workers")
		}
	}
	if results[0].AllReduceUs != 0 || results[0].CommUs != 0 {
		t.Fatalf("n=1 should have no all-reduce: %+v", results[0])
	}
	for _, r := range results[1:] {
		if r.CommUs <= 0 || r.CommSpanUs <= 0 {
			t.Fatalf("n=%d exchanged no gradients: %+v", r.Workers, r)
		}
		if r.StepUs < r.PerDeviceUs {
			t.Fatalf("n=%d step faster than compute alone: %+v", r.Workers, r)
		}
		if r.Bucket == "" || r.Placement == "" {
			t.Fatalf("n=%d missing explored comm schedule: %+v", r.Workers, r)
		}
	}
	if best < 0 || results[best].ThroughputRows <= results[0].ThroughputRows*0.99 {
		t.Fatalf("scaling never beat one worker: best=%d %+v", best, results[best])
	}
}

func TestFasterFabricShiftsSweetSpot(t *testing.T) {
	// On a faster interconnect the best worker count must be at least as
	// large — the crossover moves right.
	slow := &Cluster{Interconnect: Interconnect{Name: "slow", BytesPerUs: 1500, LatencyUs: 20}, Preset: enumerate.PresetFK}
	fast := &Cluster{Interconnect: NVLink(), Preset: enumerate.PresetFK}
	cands := []int{1, 2, 4, 8}
	_, bestSlow, err := slow.BestWorkers("scrnn", 64, cands)
	if err != nil {
		t.Fatal(err)
	}
	_, bestFast, err := fast.BestWorkers("scrnn", 64, cands)
	if err != nil {
		t.Fatal(err)
	}
	if cands[bestFast] < cands[bestSlow] {
		t.Fatalf("faster fabric chose fewer workers (%d) than slower (%d)", cands[bestFast], cands[bestSlow])
	}
}

// TestEventCrossChecksAnalytic is the model-validation bridge: one bucket,
// serialized on the main stream, is exactly the regime the closed-form ring
// formula describes, so the measured first-to-last comm kernel span must
// converge to it within 5% (the residue is per-kernel setup cost).
func TestEventCrossChecksAnalytic(t *testing.T) {
	for _, ic := range Fabrics() {
		c := &Cluster{Interconnect: ic, Preset: enumerate.PresetFK}
		r, err := c.StepBulkSync("scrnn", 64, 4)
		if err != nil {
			t.Fatal(err)
		}
		if r.AllReduceUs <= 0 || r.CommSpanUs <= 0 {
			t.Fatalf("%s: empty exchange: %+v", ic.Name, r)
		}
		if rel := math.Abs(r.CommSpanUs-r.AllReduceUs) / r.AllReduceUs; rel > 0.05 {
			t.Errorf("%s: event-level span %v vs analytic %v (%.1f%% off)",
				ic.Name, r.CommSpanUs, r.AllReduceUs, 100*rel)
		}
		// Bulk-sync means exchange strictly after compute: the step must
		// decompose into the two parts.
		if r.StepUs < r.PerDeviceUs+r.CommSpanUs*0.95 {
			t.Errorf("%s: bulk-sync step %v < compute %v + exchange %v",
				ic.Name, r.StepUs, r.PerDeviceUs, r.CommSpanUs)
		}
	}
}

// TestOverlapBeatsBulkSync: a bucketed exchange on a dedicated comm stream
// hides communication behind the remaining backward pass, so the measured
// step must beat the bulk-synchronous baseline — the point of the whole
// comm dimension.
func TestOverlapBeatsBulkSync(t *testing.T) {
	c := &Cluster{Interconnect: PCIe(), Preset: enumerate.PresetFK}
	bulk, err := c.StepBulkSync("scrnn", 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	explored, err := c.Step("scrnn", 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if explored.StepUs >= bulk.StepUs {
		t.Fatalf("explored schedule (%v, bucket=%s place=%s) did not beat bulk-sync (%v)",
			explored.StepUs, explored.Bucket, explored.Placement, bulk.StepUs)
	}
}

// TestExploredMatchesExhaustive: the online explorer's frozen communication
// schedule must land within 2% of the best fixed schedule found by
// exhaustively measuring the whole space.
func TestExploredMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	c := &Cluster{Interconnect: PCIe(), Preset: enumerate.PresetFK}
	sweep, best, err := c.Exhaustive("scrnn", 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	explored, err := c.Step("scrnn", 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	bestUs := sweep[best].StepUs
	if explored.StepUs > bestUs*1.02 {
		t.Fatalf("explored %v (bucket=%s place=%s) vs exhaustive best %v (bucket=%s place=%s): gap %.2f%%",
			explored.StepUs, explored.Bucket, explored.Placement,
			bestUs, sweep[best].Bucket, sweep[best].Placement,
			100*(explored.StepUs/bestUs-1))
	}
}
