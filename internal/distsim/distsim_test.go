package distsim

import (
	"testing"

	"astra/internal/enumerate"
)

func TestRingAllReduceFormula(t *testing.T) {
	ic := Interconnect{Name: "t", BytesPerUs: 1000, LatencyUs: 2}
	if got := ic.RingAllReduceUs(1<<20, 1); got != 0 {
		t.Fatalf("single worker should not communicate: %v", got)
	}
	// 4 workers: 6 steps, each moving bytes/4.
	bytes := int64(4000)
	want := 6.0 * (1000.0/1000.0 + 2)
	if got := ic.RingAllReduceUs(bytes, 4); got != want {
		t.Fatalf("RingAllReduce = %v, want %v", got, want)
	}
	// Bandwidth-bound regime: time grows sublinearly with workers (the
	// 2(n-1)/n factor approaches 2).
	big := int64(1 << 26)
	t2 := ic.RingAllReduceUs(big, 2)
	t8 := ic.RingAllReduceUs(big, 8)
	if t8 > 2*t2 {
		t.Fatalf("ring scaling broken: n=2 %v, n=8 %v", t2, t8)
	}
}

func TestFabrics(t *testing.T) {
	if NVLink().BytesPerUs <= PCIe().BytesPerUs {
		t.Fatal("NVLink should be faster than PCIe")
	}
	bytes := int64(1 << 24)
	if NVLink().RingAllReduceUs(bytes, 4) >= PCIe().RingAllReduceUs(bytes, 4) {
		t.Fatal("NVLink all-reduce should beat PCIe")
	}
}

func TestStepValidation(t *testing.T) {
	c := &Cluster{Interconnect: PCIe()}
	if _, err := c.Step("scrnn", 32, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := c.Step("scrnn", 30, 4); err == nil {
		t.Fatal("indivisible batch accepted")
	}
	if _, err := c.Step("nope", 32, 2); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDataParallelTradeoff(t *testing.T) {
	// The fundamental shape: per-device compute falls with more workers,
	// all-reduce rises, and there is a sweet spot — measured, not modeled.
	c := &Cluster{Interconnect: PCIe(), Preset: enumerate.PresetFK}
	results, best, err := c.BestWorkers("scrnn", 64, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].PerDeviceUs >= results[i-1].PerDeviceUs {
			t.Errorf("per-device compute did not fall: n=%d %v >= n=%d %v",
				results[i].Workers, results[i].PerDeviceUs, results[i-1].Workers, results[i-1].PerDeviceUs)
		}
		if results[i].AllReduceUs <= results[i-1].AllReduceUs {
			t.Errorf("all-reduce did not rise with workers")
		}
	}
	if results[0].AllReduceUs != 0 {
		t.Fatal("n=1 should have no all-reduce")
	}
	if best < 0 || results[best].ThroughputRows <= results[0].ThroughputRows*0.99 {
		t.Fatalf("scaling never beat one worker: best=%d %+v", best, results[best])
	}
}

func TestFasterFabricShiftsSweetSpot(t *testing.T) {
	// On a faster interconnect the best worker count must be at least as
	// large — the crossover moves right.
	slow := &Cluster{Interconnect: Interconnect{Name: "slow", BytesPerUs: 1500, LatencyUs: 20}, Preset: enumerate.PresetFK}
	fast := &Cluster{Interconnect: NVLink(), Preset: enumerate.PresetFK}
	cands := []int{1, 2, 4, 8}
	_, bestSlow, err := slow.BestWorkers("scrnn", 64, cands)
	if err != nil {
		t.Fatal(err)
	}
	_, bestFast, err := fast.BestWorkers("scrnn", 64, cands)
	if err != nil {
		t.Fatal(err)
	}
	if cands[bestFast] < cands[bestSlow] {
		t.Fatalf("faster fabric chose fewer workers (%d) than slower (%d)", cands[bestFast], cands[bestSlow])
	}
}
